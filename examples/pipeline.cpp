// A three-stage pipeline over bounded buffers — the producer-consumer
// paradigm from the paper's informal description, composed:
//
//   source --(raw)--> workers x N --(squared)--> sink
//
// Each buffer is a Mutex + two Conditions; every stage uses the Mesa
// predicate-loop discipline. A poison value shuts the pipeline down.
//
//   $ ./examples/pipeline [workers] [items]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/threads/threads.h"
#include "src/workload/bounded_buffer.h"

namespace {

constexpr std::uint64_t kPoison = ~0ULL;

using Buffer = taos::workload::BoundedBuffer<taos::Mutex, taos::Condition>;

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t items = argc > 2
                                  ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                                  : 10000;

  Buffer raw(16);
  Buffer squared(16);

  // Source: feeds 1..items, then one poison pill per worker.
  taos::Thread source = taos::Thread::Fork([&] {
    for (std::uint64_t i = 1; i <= items; ++i) {
      raw.Put(i);
    }
    for (int w = 0; w < workers; ++w) {
      raw.Put(kPoison);
    }
  });

  // Workers: square each value. Each forwards exactly one poison pill.
  std::vector<taos::Thread> stage;
  for (int w = 0; w < workers; ++w) {
    stage.push_back(taos::Thread::Fork([&] {
      for (;;) {
        const std::uint64_t v = raw.Get();
        if (v == kPoison) {
          squared.Put(kPoison);
          return;
        }
        squared.Put(v * v);
      }
    }));
  }

  // Sink: accumulates until every worker's poison arrived.
  std::uint64_t sum = 0;
  std::uint64_t received = 0;
  int poisons = 0;
  while (poisons < workers) {
    const std::uint64_t v = squared.Get();
    if (v == kPoison) {
      ++poisons;
    } else {
      sum += v;
      ++received;
    }
  }

  source.Join();
  for (taos::Thread& t : stage) {
    t.Join();
  }

  // sum of squares 1..n
  const std::uint64_t n = items;
  const std::uint64_t expect = n * (n + 1) * (2 * n + 1) / 6;
  std::printf("pipeline: %d workers, %llu items\n", workers,
              static_cast<unsigned long long>(items));
  std::printf("  received %llu items, sum of squares = %llu (expect %llu)\n",
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(expect));
  return sum == expect && received == items ? 0 : 1;
}
