// Readers-writers: the paper's own motivating example for Broadcast —
// "releasing a 'writer' lock on a file might permit all 'readers' to
// resume". A readers-writer lock built from one Mutex and two Conditions
// protects a small "file"; readers check its invariant, writers mutate it.
//
//   $ ./examples/readers_writers [readers] [writers] [iters]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/threads/threads.h"
#include "src/workload/rwlock.h"

namespace {

struct File {
  // Invariant: b == 2 * a. Only ever violated mid-write, which readers must
  // never observe.
  long a = 0;
  long b = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int readers = argc > 1 ? std::atoi(argv[1]) : 6;
  const int writers = argc > 2 ? std::atoi(argv[2]) : 2;
  const long iters = argc > 3 ? std::atol(argv[3]) : 20000;

  taos::workload::RWLock<taos::Mutex, taos::Condition> lock;
  File file;
  std::atomic<long> reads{0};
  std::atomic<long> dirty_reads{0};

  std::vector<taos::Thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.push_back(taos::Thread::Fork([&] {
      for (long i = 0; i < iters; ++i) {
        lock.AcquireRead();
        if (file.b != 2 * file.a) {
          dirty_reads.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        lock.ReleaseRead();
      }
    }));
  }
  for (int w = 0; w < writers; ++w) {
    threads.push_back(taos::Thread::Fork([&] {
      for (long i = 0; i < iters; ++i) {
        lock.AcquireWrite();
        ++file.a;          // the invariant is briefly false here...
        file.b = 2 * file.a;  // ...and restored before release
        lock.ReleaseWrite();
      }
    }));
  }
  for (taos::Thread& t : threads) {
    t.Join();
  }

  std::printf("readers_writers: %d readers x %ld, %d writers x %ld\n",
              readers, iters, writers, iters);
  std::printf("  reads performed : %ld\n", reads.load());
  std::printf("  dirty reads     : %ld (must be 0)\n", dirty_reads.load());
  std::printf("  final file      : a=%ld b=%ld (b must be 2a)\n", file.a,
              file.b);
  return dirty_reads.load() == 0 && file.b == 2 * file.a ? 0 : 1;
}
