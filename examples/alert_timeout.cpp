// Timeouts and aborts via alerting — the paper's stated use case: "Alerting
// provides a polite form of interrupt [...] typically to implement things
// such as timeouts and aborts [...] at an abstraction level higher than
// that in which the thread is blocked."
//
// A "server" answers requests; one request is served promptly, one is
// never served (the waiter gives up via timeout), and one long computation
// is aborted outright by alerting the worker.
//
//   $ ./examples/alert_timeout

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/threads/threads.h"
#include "src/workload/timeout.h"

namespace {

struct Mailbox {
  taos::Mutex m;
  taos::Condition arrived;
  bool has_reply = false;  // protected by m
};

void PromptReply() {
  Mailbox box;
  taos::Thread server = taos::Thread::Fork([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      taos::Lock lock(box.m);
      box.has_reply = true;
    }
    box.arrived.Signal();
  });
  box.m.Acquire();
  const bool ok = taos::workload::WaitWithTimeout(
      box.m, box.arrived, [&box] { return box.has_reply; },
      std::chrono::milliseconds(2000));
  box.m.Release();
  server.Join();
  std::printf("[reply]   served before deadline: %s (expect yes)\n",
              ok ? "yes" : "no");
}

void TimedOut() {
  Mailbox box;  // nobody will ever reply
  box.m.Acquire();
  const auto start = std::chrono::steady_clock::now();
  const bool ok = taos::workload::WaitWithTimeout(
      box.m, box.arrived, [&box] { return box.has_reply; },
      std::chrono::milliseconds(50));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  box.m.Release();
  std::printf("[timeout] gave up after ~%lld ms: %s (expect timed out)\n",
              static_cast<long long>(waited.count()),
              ok ? "served?!" : "timed out");
}

void AbortedComputation() {
  // The decision to abort happens above the level where the worker blocks:
  // the aborter holds only a thread handle, not the semaphore.
  taos::Semaphore tape;
  tape.P();  // the "input" never arrives
  bool aborted = false;
  taos::Thread worker = taos::Thread::Fork([&] {
    try {
      for (;;) {
        taos::AlertP(tape);  // would consume input if any came
      }
    } catch (const taos::Alerted&) {
      aborted = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  taos::Alert(worker.Handle());
  worker.Join();
  std::printf("[abort]   worker acknowledged abort: %s (expect yes)\n",
              aborted ? "yes" : "no");
}

}  // namespace

int main() {
  std::printf("alerting as timeout/abort (SRC Report 20, Alerting section)\n");
  PromptReply();
  TimedOut();
  AbortedComputation();
  return 0;
}
