// Everything composed: a miniature RPC server built from the Threads
// vocabulary — a worker pool (Mutex + Conditions + Broadcast shutdown +
// Alert cancellation), per-request reply mailboxes, and client-side
// deadlines via the alerting timeout idiom.
//
//   $ ./examples/rpc_server

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/threads/threads.h"
#include "src/workload/thread_pool.h"
#include "src/workload/timeout.h"

namespace {

using taos::workload::ThreadPool;
using taos::workload::WaitWithTimeout;

struct Reply {
  taos::Mutex m;
  taos::Condition arrived;
  bool ready = false;  // protected by m
  int value = 0;       // protected by m
};

// A "server method": compute for `work_ms`, then deliver.
void Serve(Reply* reply, int value, int work_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(work_ms));
  {
    taos::Lock lock(reply->m);
    reply->ready = true;
    reply->value = value;
  }
  reply->arrived.Signal();
}

// Client call with a deadline. Returns true and fills *out on success.
bool Call(ThreadPool& pool, int value, int work_ms, int deadline_ms,
          int* out) {
  auto reply = std::make_shared<Reply>();
  if (!pool.Submit([reply, value, work_ms] {
        Serve(reply.get(), value, work_ms);
      })) {
    return false;  // server shutting down
  }
  reply->m.Acquire();
  const bool ok = WaitWithTimeout(
      reply->m, reply->arrived, [&reply] { return reply->ready; },
      std::chrono::milliseconds(deadline_ms));
  if (ok) {
    *out = reply->value;
  }
  reply->m.Release();
  return ok;
}

}  // namespace

int main() {
  std::printf("mini RPC server on the Threads primitives\n");
  ThreadPool pool(3, 16);

  // 1. A prompt call succeeds well inside its deadline.
  int value = 0;
  bool ok = Call(pool, 42, /*work_ms=*/5, /*deadline_ms=*/1000, &value);
  std::printf("[fast]  ok=%d value=%d (expect ok=1 value=42)\n", ok, value);

  // 2. A slow call times out; the reply mailbox outlives the caller via
  //    shared_ptr, so the late Serve is harmless.
  value = -1;
  ok = Call(pool, 7, /*work_ms=*/500, /*deadline_ms=*/40, &value);
  std::printf("[slow]  ok=%d (expect 0: deadline beat the server)\n", ok);

  // 3. Parallel clients.
  int v1 = 0;
  int v2 = 0;
  int v3 = 0;
  taos::Thread c1 = taos::Thread::Fork(
      [&] { Call(pool, 1, 10, 1000, &v1); });
  taos::Thread c2 = taos::Thread::Fork(
      [&] { Call(pool, 2, 10, 1000, &v2); });
  taos::Thread c3 = taos::Thread::Fork(
      [&] { Call(pool, 3, 10, 1000, &v3); });
  c1.Join();
  c2.Join();
  c3.Join();
  std::printf("[par]   replies %d %d %d (expect 1 2 3)\n", v1, v2, v3);

  // 4. Shutdown: workers idle in AlertWait are interrupted politely.
  pool.Cancel();
  std::printf("[down]  executed=%llu dropped=%llu, submit now refused: %s\n",
              static_cast<unsigned long long>(pool.tasks_executed()),
              static_cast<unsigned long long>(pool.tasks_dropped()),
              pool.Submit([] {}) ? "NO (bug)" : "yes");
  return 0;
}
