// The formal side of the paper, live: run the model checker over the
// simulated Firefly and watch it (a) verify the eventcount design against
// the wakeup-waiting race, (b) dig up the lost-signal schedule when the
// eventcount is removed, and (c) replay that counterexample as a trace of
// spec-level atomic actions.
//
//   $ ./examples/spec_explorer

#include <cstdio>

#include "src/model/explorer.h"
#include "src/model/litmus.h"

int main() {
  using namespace taos::model;

  std::printf("model-checking the wakeup-waiting race (paper, Informal\n");
  std::printf("Description + Implementation sections)\n\n");

  ExplorerOptions opts;
  opts.machine.cpus = 2;
  opts.max_runs = 20000;
  opts.check_traces = true;  // verify every schedule against the spec

  {
    Explorer ex(opts);
    ExplorationResult r = ex.Explore(WakeupRaceLitmus(true));
    std::printf("WITH eventcount   : %s\n", r.ToString().c_str());
  }

  ExplorationResult broken;
  {
    ExplorerOptions raw = opts;
    raw.check_traces = false;  // the ablated implementation is not traced
    Explorer ex(raw);
    broken = ex.Explore(WakeupRaceLitmus(false));
    std::printf("WITHOUT eventcount: %s\n", broken.ToString().c_str());
  }

  if (!broken.counterexample.empty()) {
    std::printf("\ncounterexample schedule (%zu choices):",
                broken.counterexample.size());
    for (std::uint32_t c : broken.counterexample) {
      std::printf(" %u", c);
    }
    std::printf("\nreplaying deterministically: ");
    ExplorerOptions replay_opts;
    replay_opts.machine = opts.machine;
    replay_opts.check_traces = false;
    Explorer ex(replay_opts);
    std::vector<taos::spec::Action> trace;
    const std::string verdict =
        ex.Replay(WakeupRaceLitmus(false), broken.counterexample, &trace);
    std::printf("%s\n", verdict.c_str());
    std::printf("\nthe schedule's spec-level actions up to the deadlock:\n");
    std::size_t i = 0;
    for (const auto& a : trace) {
      std::printf("  %2zu: %s\n", i++, a.ToString().c_str());
    }
    std::printf(
        "\nThe Signal landed between the waiter's Enqueue and its Block —\n"
        "with the eventcount comparison ablated, Block put the waiter to\n"
        "sleep anyway, and no Resume ever follows: the wakeup-waiting\n"
        "race the eventcount exists to close.\n");
  }
  return 0;
}
