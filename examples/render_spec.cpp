// Prints the formal specification — in the corrected form and, with
// --buggy, in the originally released form whose AlertWait error the paper
// reports. The text is generated from the same configuration object that
// drives the executable semantics, so document and checker cannot drift.
//
//   $ ./examples/render_spec [--buggy] [--prerelease]

#include <cstdio>
#include <cstring>

#include "src/spec/render.h"

int main(int argc, char** argv) {
  taos::spec::SpecConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--buggy") == 0) {
      config.alert_wait = taos::spec::AlertWaitVariant::kOriginalBuggy;
    } else if (std::strcmp(argv[i], "--prerelease") == 0) {
      config.alert_choice = taos::spec::AlertChoicePolicy::kPreferAlerted;
    } else {
      std::fprintf(stderr, "usage: %s [--buggy] [--prerelease]\n", argv[0]);
      return 2;
    }
  }
  std::fputs(taos::spec::RenderSpecification(config).c_str(), stdout);
  return 0;
}
