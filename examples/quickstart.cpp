// Quickstart: a tour of the Threads synchronization interface.
//
//   $ ./examples/quickstart
//
// Covers, in order: LOCK-style critical sections, condition variables with
// the Mesa predicate-loop discipline, binary semaphores, and alerting.

#include <cstdio>
#include <vector>

#include "src/threads/threads.h"

namespace {

// 1. Mutual exclusion: all reads and writes of shared variables happen
//    inside critical sections bracketed by Acquire/Release — here via the
//    RAII Lock, the C++ rendering of Modula-2+'s LOCK e DO ... END.
void MutualExclusionDemo() {
  taos::Mutex m;
  long counter = 0;  // protected by m

  std::vector<taos::Thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.push_back(taos::Thread::Fork([&m, &counter] {
      for (int i = 0; i < 100000; ++i) {
        taos::Lock lock(m);
        ++counter;
      }
    }));
  }
  for (taos::Thread& t : workers) {
    t.Join();
  }
  std::printf("[mutex]      4 threads x 100000 increments = %ld (expect 400000)\n",
              counter);
}

// 2. Condition variables: a thread Waits inside a predicate loop — return
//    from Wait is only a hint that must be confirmed.
void ConditionDemo() {
  taos::Mutex m;
  taos::Condition non_empty;
  std::vector<int> queue;  // protected by m
  long consumed_sum = 0;

  taos::Thread consumer = taos::Thread::Fork([&] {
    for (int got = 0; got < 100;) {
      taos::Lock lock(m);
      while (queue.empty()) {   // re-evaluate: the wakeup is a hint
        non_empty.Wait(m);      // atomically releases m and suspends
      }
      consumed_sum += queue.back();
      queue.pop_back();
      ++got;
    }
  });

  for (int i = 1; i <= 100; ++i) {
    {
      taos::Lock lock(m);
      queue.push_back(i);
    }
    non_empty.Signal();  // after leaving the critical section is fine
  }
  consumer.Join();
  std::printf("[condition]  consumer summed 1..100 = %ld (expect 5050)\n",
              consumed_sum);
}

// 3. Semaphores: P/V with no notion of a holder — the primitive for
//    synchronizing with interrupt-like contexts.
void SemaphoreDemo() {
  taos::Semaphore sem;
  sem.P();  // arm: the next P waits for a V

  int data = 0;
  taos::Thread device = taos::Thread::Fork([&] {
    data = 42;  // "device" produces
    sem.V();    // interrupt routine: unblock the driver (no mutex involved)
  });
  sem.P();  // driver waits for the interrupt
  std::printf("[semaphore]  driver observed device data = %d (expect 42)\n",
              data);
  device.Join();
  sem.V();
}

// 4. Alerting: a polite interrupt for timeouts and aborts. The worker
//    blocks in AlertWait; Alert makes it raise Alerted, with the mutex
//    reacquired before the exception propagates.
void AlertDemo() {
  taos::Mutex m;
  taos::Condition never;
  bool cancelled = false;

  taos::Thread worker = taos::Thread::Fork([&] {
    taos::Lock lock(m);
    try {
      for (;;) {
        taos::AlertWait(m, never);  // the condition is never signalled
      }
    } catch (const taos::Alerted&) {
      cancelled = true;  // still inside the critical section here
    }
  });
  taos::Alert(worker.Handle());  // request: desist
  worker.Join();
  std::printf("[alert]      worker cancelled via Alerted = %s (expect true)\n",
              cancelled ? "true" : "false");
}

}  // namespace

int main() {
  std::printf("Taos Threads quickstart (SRC Report 20 reproduction)\n");
  MutualExclusionDemo();
  ConditionDemo();
  SemaphoreDemo();
  AlertDemo();
  std::printf("done.\n");
  return 0;
}
