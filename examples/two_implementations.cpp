// The paper keeps two implementations of the same interface:
//
//   "We have two implementations of the Threads package. One runs within
//    any single process on a normal Unix system [coroutines]. Our other
//    implementation runs on the Firefly, and uses multiple processors to
//    provide true concurrency."
//
// ...and argues that the specification insulates clients from the choice.
// This example runs the *same* producer-consumer program (textually, via a
// template over the primitives) on three substrates: the OS-thread
// library, the coroutine scheduler, and the simulated Firefly.
//
//   $ ./examples/two_implementations

#include <cstdio>

#include "src/base/stopwatch.h"
#include "src/coro/sync.h"
#include "src/firefly/sync.h"
#include "src/threads/threads.h"

namespace {

constexpr int kRounds = 5000;

// One producer fills a single cell, one consumer drains it; both use the
// canonical predicate-loop discipline. `Api` supplies the types and the
// fork mechanism for a substrate.
template <typename Api>
long RunCellPingPong(Api& api) {
  auto m = api.MakeMutex();
  auto c = api.MakeCondition();
  int cell = 0;
  long sum = 0;
  api.Fork([&] {
    for (int r = 1; r <= kRounds; ++r) {
      m->Acquire();
      while (cell != 0) {
        c->Wait(*m);
      }
      cell = r;
      m->Release();
      c->Signal();
    }
  });
  api.Fork([&] {
    for (int r = 1; r <= kRounds; ++r) {
      m->Acquire();
      while (cell == 0) {
        c->Wait(*m);
      }
      sum += cell;
      cell = 0;
      m->Release();
      c->Signal();
    }
  });
  api.RunAll();
  return sum;
}

struct ThreadsApi {
  std::vector<taos::Thread> threads;
  auto MakeMutex() { return std::make_unique<taos::Mutex>(); }
  auto MakeCondition() { return std::make_unique<taos::Condition>(); }
  template <typename Fn>
  void Fork(Fn fn) {
    threads.push_back(taos::Thread::Fork(std::move(fn)));
  }
  void RunAll() {
    for (auto& t : threads) {
      t.Join();
    }
  }
};

struct CoroApi {
  taos::coro::Scheduler scheduler;
  auto MakeMutex() { return std::make_unique<taos::coro::Mutex>(); }
  auto MakeCondition() { return std::make_unique<taos::coro::Condition>(); }
  template <typename Fn>
  void Fork(Fn fn) {
    scheduler.Fork(std::move(fn));
  }
  void RunAll() { scheduler.Run(); }
};

struct FireflyApi {
  taos::firefly::Machine machine{taos::firefly::MachineConfig{.cpus = 2}};
  auto MakeMutex() {
    return std::make_unique<taos::firefly::Mutex>(machine);
  }
  auto MakeCondition() {
    return std::make_unique<taos::firefly::Condition>(machine);
  }
  template <typename Fn>
  void Fork(Fn fn) {
    machine.Fork(std::move(fn));
  }
  void RunAll() { machine.Run(); }
};

}  // namespace

int main() {
  const long expect = static_cast<long>(kRounds) * (kRounds + 1) / 2;
  std::printf("one program, three implementations of the Threads spec\n");
  std::printf("(%d producer/consumer rounds; expected sum %ld)\n\n", kRounds,
              expect);

  {
    taos::Stopwatch w;
    ThreadsApi api;
    const long sum = RunCellPingPong(api);
    std::printf("  OS threads        : sum=%ld  %8.2f ms\n", sum,
                w.ElapsedSeconds() * 1e3);
  }
  {
    taos::Stopwatch w;
    CoroApi api;
    const long sum = RunCellPingPong(api);
    std::printf("  coroutines (Unix) : sum=%ld  %8.2f ms\n", sum,
                w.ElapsedSeconds() * 1e3);
  }
  {
    taos::Stopwatch w;
    FireflyApi api;
    const long sum = RunCellPingPong(api);
    std::printf("  simulated Firefly : sum=%ld  %8.2f ms\n", sum,
                w.ElapsedSeconds() * 1e3);
  }
  std::printf(
      "\nSame client code, same answers, three mechanisms — the point of\n"
      "specifying the interface rather than the implementation.\n");
  return 0;
}
