// E4 — producer-consumer throughput through a bounded buffer, per
// primitives family:
//
//   Taos       Mutex + Condition (eventcount design)
//   Naive      Mutex + semaphore-encoded condition (the paper's strawman;
//              only run 1x1 where it is correct)
//   Std        std::mutex + std::condition_variable
//   Hoare      Hoare monitor (signal passes the monitor; two extra context
//              switches per handoff — the cost the paper's looser spec
//              avoids)
//
// Each iteration moves `items` values end to end; items/sec is reported.

#include <benchmark/benchmark.h>

#include "src/baseline/naive_condition.h"
#include "src/baseline/reed_kanodia.h"
#include "src/baseline/std_sync.h"
#include "src/threads/threads.h"
#include "src/workload/bounded_buffer.h"
#include "src/workload/prodcons.h"

namespace {

using taos::workload::BoundedBuffer;
using taos::workload::ExpectedChecksum;
using taos::workload::HoareBoundedBuffer;
using taos::workload::RunProducerConsumer;

constexpr std::uint64_t kItems = 5000;

template <typename BufferFactory>
void RunBench(benchmark::State& state, BufferFactory make_buffer) {
  const int producers = static_cast<int>(state.range(0));
  const int consumers = static_cast<int>(state.range(1));
  const std::size_t capacity = static_cast<std::size_t>(state.range(2));
  std::uint64_t items_total = 0;
  std::uint64_t nanos_total = 0;
  for (auto _ : state) {
    auto buffer = make_buffer(capacity);
    auto result =
        RunProducerConsumer(*buffer, producers, consumers, kItems);
    if (result.checksum != ExpectedChecksum(producers, kItems)) {
      state.SkipWithError("checksum mismatch: items lost or duplicated");
      return;
    }
    items_total += result.items;
    nanos_total += result.nanos;
  }
  // Wall-clock throughput measured inside the driver (the benchmark thread
  // itself mostly sleeps, so CPU-time-based rates would mislead).
  state.counters["items_per_sec_wall"] =
      nanos_total == 0 ? 0.0
                       : static_cast<double>(items_total) * 1e9 /
                             static_cast<double>(nanos_total);
}

void BM_Taos(benchmark::State& state) {
  RunBench(state, [](std::size_t cap) {
    return std::make_unique<BoundedBuffer<taos::Mutex, taos::Condition>>(cap);
  });
}

void BM_Naive(benchmark::State& state) {
  RunBench(state, [](std::size_t cap) {
    return std::make_unique<
        BoundedBuffer<taos::Mutex, taos::baseline::NaiveCondition>>(cap);
  });
}

void BM_Std(benchmark::State& state) {
  RunBench(state, [](std::size_t cap) {
    return std::make_unique<BoundedBuffer<taos::baseline::StdMutex,
                                          taos::baseline::StdCondition>>(cap);
  });
}

void BM_Hoare(benchmark::State& state) {
  RunBench(state,
           [](std::size_t cap) {
             return std::make_unique<HoareBoundedBuffer>(cap);
           });
}

// Reed & Kanodia's two-eventcount buffer: single producer/consumer only,
// no lock on the data path.
void BM_ReedKanodia(benchmark::State& state) {
  RunBench(state, [](std::size_t cap) {
    return std::make_unique<taos::baseline::RKBoundedBuffer>(cap);
  });
}

// {producers, consumers, capacity}
BENCHMARK(BM_Taos)
    ->Args({1, 1, 1})
    ->Args({1, 1, 16})
    ->Args({2, 2, 16})
    ->Args({4, 4, 16})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Naive)
    ->Args({1, 1, 1})
    ->Args({1, 1, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_Std)
    ->Args({1, 1, 1})
    ->Args({1, 1, 16})
    ->Args({2, 2, 16})
    ->Args({4, 4, 16})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Hoare)
    ->Args({1, 1, 1})
    ->Args({1, 1, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ReedKanodia)
    ->Args({1, 1, 1})
    ->Args({1, 1, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("prodcons");
