// E4b — the readers-writer lock built from one Mutex and two Conditions
// (the paper's Broadcast example): throughput across read/write mixes and
// primitive families. Broadcast earns its keep exactly when a writer's
// release must resume many readers at once.

#include <benchmark/benchmark.h>

#include <thread>

#include "src/baseline/std_sync.h"
#include "src/threads/threads.h"
#include "src/workload/rwlock.h"

namespace {

using taos::workload::NativeRWLock;
using taos::workload::RunReadersWriters;
using taos::workload::RWLock;

template <typename LockT>
void RunRW(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  const int writers = static_cast<int>(state.range(1));
  // Core-count honesty: the mix always runs readers+writers threads, so on
  // a single-CPU host the throughput is scheduling noise, not reader
  // concurrency. Record num_cpus and refuse to report in that case.
  const unsigned num_cpus = std::thread::hardware_concurrency();
  state.counters["num_cpus"] = static_cast<double>(num_cpus);
  if (num_cpus <= 1 && readers + writers > 1) {
    state.SkipWithError(
        "1 CPU: reader/writer throughput would be scheduling noise");
    for (auto _ : state) {
    }
    return;
  }
  constexpr std::uint64_t kIters = 300;
  std::uint64_t ops = 0;
  std::uint64_t nanos = 0;
  for (auto _ : state) {
    LockT lock;
    auto r = RunReadersWriters(lock, readers, writers, kIters,
                               /*read_work=*/10, /*write_work=*/30);
    if (!r.invariant_ok) {
      state.SkipWithError("reader/writer invariant violated");
      return;
    }
    ops += r.reads + r.writes;
    nanos += r.nanos;
  }
  state.counters["ops_per_sec_wall"] =
      nanos == 0 ? 0.0
                 : static_cast<double>(ops) * 1e9 /
                       static_cast<double>(nanos);
}

void BM_TaosRWLock(benchmark::State& state) {
  RunRW<RWLock<taos::Mutex, taos::Condition>>(state);
}
// The real primitive (taos::ReaderWriterMutex): reader admission is one CAS
// on the shared word instead of a mutex-protected counter, and a writer's
// release wakes every queued reader directly rather than via Broadcast.
void BM_TaosNativeRWLock(benchmark::State& state) {
  RunRW<NativeRWLock>(state);
}
void BM_StdRWLock(benchmark::State& state) {
  RunRW<RWLock<taos::baseline::StdMutex, taos::baseline::StdCondition>>(
      state);
}

// {readers, writers}
BENCHMARK(BM_TaosRWLock)
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({2, 2})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_TaosNativeRWLock)
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({2, 2})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_StdRWLock)
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({2, 2})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("rwlock");
