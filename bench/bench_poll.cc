// E33 — multi-object wait: the fan-in server shape. N producers feed a
// single consumer through K bounded queues, two ways:
//
//   WaitAny     one receiver thread multiplexes all K queues through
//               Poll::WaitAny over their readable() events — the
//               motivating client shape (one server thread, many request
//               sources), K-1 threads cheaper.
//   Dedicated   K receiver threads, one blocking Recv loop per queue —
//               the shape you are forced into without multi-object wait.
//
// Each iteration moves `items` values end to end; items/sec (wall) is
// reported, plus a single-threaded WaitAny fast-path entry (member already
// set — no registration, no park) that is meaningful on any host. Emits
// BENCH_poll.json.
//
// Honesty rules match bench_locks (E31): every entry records num_cpus, and
// entries whose claim is about concurrent handoff REFUSE to report on a
// single-CPU host — producers, consumers and the poller time-sharing one
// core measure the scheduler, not the wait machinery. The refusal is a
// skipped entry with an error string in the JSON, which is itself the
// honest datum. (The process-wide lock backend is stamped at the report
// level by bench_main.)

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/threads/threads.h"

namespace {

using taos::Event;
using taos::EventReset;
using taos::MessageQueue;
using taos::Poll;
using taos::QueueResult;
using taos::Thread;

constexpr std::uint64_t kItems = 4000;  // total per iteration, split evenly
constexpr std::size_t kCapacity = 16;

// Records the core count on the entry and refuses concurrent-handoff claims
// on one CPU. Returns true when the benchmark must bail (after draining
// state).
bool RefuseContendedOn1Cpu(benchmark::State& state) {
  const unsigned n = std::thread::hardware_concurrency();
  state.counters["num_cpus"] = static_cast<double>(n);
  if (n <= 1) {
    state.SkipWithError(
        "1 CPU: fan-in handoff numbers would be scheduling noise");
    return true;
  }
  return false;
}

struct FanInResult {
  std::uint64_t items = 0;
  std::uint64_t checksum = 0;
  std::uint64_t nanos = 0;
};

// P producers push kItems/P values each, round-robin assigned to K queues
// by producer index; the last producer out of each queue closes it, so
// receivers drain to kClosed with no side-channel counts. `waitany` picks
// the receiver shape.
FanInResult RunFanIn(int producers, int queues, bool waitany) {
  std::vector<std::unique_ptr<MessageQueue<std::uint64_t>>> qs;
  std::vector<std::unique_ptr<std::atomic<int>>> live;  // producers per queue
  qs.reserve(queues);
  for (int q = 0; q < queues; ++q) {
    qs.push_back(std::make_unique<MessageQueue<std::uint64_t>>(kCapacity));
    live.push_back(std::make_unique<std::atomic<int>>(0));
  }
  for (int p = 0; p < producers; ++p) {
    live[p % queues]->fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t per_producer = kItems / producers;
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> checksum{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<Thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.push_back(Thread::Fork([&, p] {
      MessageQueue<std::uint64_t>& q = *qs[p % queues];
      for (std::uint64_t v = 0; v < per_producer; ++v) {
        (void)q.Send(v);
      }
      if (live[p % queues]->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        q.Close();  // last producer out: receivers drain then see kClosed
      }
    }));
  }
  if (waitany) {
    threads.push_back(Thread::Fork([&] {
      Poll poll;
      for (auto& q : qs) {
        poll.Add(q->readable());
      }
      std::vector<bool> closed(qs.size(), false);
      std::size_t closed_count = 0;
      std::uint64_t sum = 0;
      std::uint64_t count = 0;
      while (closed_count < qs.size()) {
        const std::size_t idx = poll.WaitAny();
        std::uint64_t v;
        switch (qs[idx]->TryRecv(&v)) {
          case QueueResult::kOk:
            sum += v;
            ++count;
            break;
          case QueueResult::kClosed:
            if (!closed[idx]) {
              closed[idx] = true;
              ++closed_count;
            }
            break;
          default:  // kWouldBlock: readable() is a hint, not a handoff
            break;
        }
      }
      checksum.fetch_add(sum, std::memory_order_relaxed);
      received.fetch_add(count, std::memory_order_relaxed);
    }));
  } else {
    for (int q = 0; q < queues; ++q) {
      threads.push_back(Thread::Fork([&, q] {
        std::uint64_t sum = 0;
        std::uint64_t count = 0;
        std::uint64_t v;
        while (qs[q]->Recv(&v) == QueueResult::kOk) {
          sum += v;
          ++count;
        }
        checksum.fetch_add(sum, std::memory_order_relaxed);
        received.fetch_add(count, std::memory_order_relaxed);
      }));
    }
  }
  for (Thread& t : threads) {
    t.Join();
  }
  FanInResult r;
  r.nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  r.items = received.load(std::memory_order_relaxed);
  r.checksum = checksum.load(std::memory_order_relaxed);
  return r;
}

void FanInBench(benchmark::State& state, bool waitany) {
  if (RefuseContendedOn1Cpu(state)) {
    for (auto _ : state) {
    }
    return;
  }
  const int producers = static_cast<int>(state.range(0));
  const int queues = static_cast<int>(state.range(1));
  const std::uint64_t per_producer = kItems / producers;
  const std::uint64_t expect_sum = static_cast<std::uint64_t>(producers) *
                                   (per_producer * (per_producer - 1) / 2);
  std::uint64_t items_total = 0;
  std::uint64_t nanos_total = 0;
  for (auto _ : state) {
    const FanInResult r = RunFanIn(producers, queues, waitany);
    if (r.items != per_producer * producers || r.checksum != expect_sum) {
      state.SkipWithError("checksum mismatch: items lost or duplicated");
      return;
    }
    items_total += r.items;
    nanos_total += r.nanos;
  }
  // Wall-clock throughput measured inside the driver (the benchmark thread
  // itself mostly sleeps, so CPU-time-based rates would mislead).
  state.counters["items_per_sec_wall"] =
      nanos_total == 0 ? 0.0
                       : static_cast<double>(items_total) * 1e9 /
                             static_cast<double>(nanos_total);
  state.counters["receiver_threads"] =
      static_cast<double>(waitany ? 1 : queues);
}

void BM_FanInWaitAny(benchmark::State& state) { FanInBench(state, true); }
void BM_FanInDedicated(benchmark::State& state) { FanInBench(state, false); }

// Single-threaded WaitAny with a member already set: no registration, no
// park — the scan-and-consume path alone. Valid on any core count (nothing
// contends), so it still reports on the 1-CPU CI host.
void BM_WaitAnyFastPath(benchmark::State& state) {
  state.counters["num_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  Poll poll;
  poll.Add(a);
  poll.Add(b);
  for (auto _ : state) {
    b.Set();
    benchmark::DoNotOptimize(poll.WaitAny());
  }
}

// Same path through Event alone: Set-then-Wait on an auto event, the
// quiescent pulse a fan-in server pays per request even with no queueing.
void BM_EventSetThenWait(benchmark::State& state) {
  state.counters["num_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  Event e(EventReset::kAuto);
  for (auto _ : state) {
    e.Set();
    e.Wait();
  }
}

// {producers, queues}
BENCHMARK(BM_FanInWaitAny)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_FanInDedicated)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_WaitAnyFastPath);
BENCHMARK(BM_EventSetThenWait);

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("poll");
