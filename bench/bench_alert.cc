// E10/E11 — alerting costs and the RETURNS/RAISES nondeterminism rate.
//
//   AlertTestAlert        post + poll an alert, no blocking involved
//   TestAlertNegative     the common no-alert-pending poll
//   AlertWakesAlertP      end-to-end: alert a blocked AlertP, thread raises
//   AlertWakesAlertWait   end-to-end: alert a blocked AlertWait
//   AlertPRace            hammer V-vs-Alert races; counters report how often
//                         AlertP returned normally vs raised when both were
//                         possible (the paper's deliberate nondeterminism)

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "src/threads/threads.h"

namespace {

void BM_AlertTestAlert(benchmark::State& state) {
  const taos::ThreadHandle self = taos::Thread::Self();
  for (auto _ : state) {
    taos::Alert(self);
    benchmark::DoNotOptimize(taos::TestAlert());
  }
}
BENCHMARK(BM_AlertTestAlert);

void BM_TestAlertNegative(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(taos::TestAlert());
  }
}
BENCHMARK(BM_TestAlertNegative);

void BM_AlertWakesAlertP(benchmark::State& state) {
  taos::Semaphore ready;
  ready.P();
  taos::Semaphore blocked;
  blocked.P();
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  taos::Thread worker = taos::Thread::Fork([&] {
    for (;;) {
      ready.V();  // announce: about to block
      try {
        taos::AlertP(blocked);
      } catch (const taos::Alerted&) {
      }
      if (stop.load(std::memory_order_acquire)) {
        done.store(true, std::memory_order_release);
        return;
      }
    }
  });
  const taos::ThreadHandle target = worker.Handle();
  for (auto _ : state) {
    ready.P();  // wait until the worker is at (or near) its AlertP
    taos::Alert(target);
  }
  stop.store(true, std::memory_order_release);
  while (!done.load(std::memory_order_acquire)) {
    taos::Alert(target);
    std::this_thread::yield();
  }
  worker.Join();
  (void)taos::TestAlert();
}
BENCHMARK(BM_AlertWakesAlertP)->UseRealTime();

void BM_AlertWakesAlertWait(benchmark::State& state) {
  taos::Mutex m;
  taos::Condition c;
  taos::Semaphore ready;
  ready.P();
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  taos::Thread worker = taos::Thread::Fork([&] {
    for (;;) {
      {
        taos::Lock lock(m);
        ready.V();
        try {
          taos::AlertWait(m, c);
        } catch (const taos::Alerted&) {
        }
      }
      if (stop.load(std::memory_order_acquire)) {
        done.store(true, std::memory_order_release);
        return;
      }
    }
  });
  const taos::ThreadHandle target = worker.Handle();
  for (auto _ : state) {
    ready.P();
    taos::Alert(target);
  }
  stop.store(true, std::memory_order_release);
  while (!done.load(std::memory_order_acquire)) {
    taos::Alert(target);
    std::this_thread::yield();
  }
  worker.Join();
}
BENCHMARK(BM_AlertWakesAlertWait)->UseRealTime();

void BM_AlertPRace(benchmark::State& state) {
  std::uint64_t returned = 0;
  std::uint64_t raised = 0;
  std::uint64_t round = 0;
  for (auto _ : state) {
    taos::Semaphore s;
    s.P();
    taos::Semaphore ready;
    ready.P();
    std::atomic<bool> outcome_raised{false};
    taos::Thread taker = taos::Thread::Fork([&] {
      ready.V();
      try {
        taos::AlertP(s);
        s.V();
      } catch (const taos::Alerted&) {
        outcome_raised.store(true, std::memory_order_relaxed);
      }
    });
    ready.P();
    // Let the taker actually park in AlertP, then deliver the wakeup and
    // the alert adjacently, in alternating order: both WHEN clauses hold
    // and the implementation picks an outcome.
    for (int i = 0; i < 20; ++i) {
      std::this_thread::yield();
    }
    if (++round % 2 == 0) {
      s.V();
      taos::Alert(taker.Handle());
    } else {
      taos::Alert(taker.Handle());
      s.V();
    }
    taker.Join();
    if (outcome_raised.load(std::memory_order_relaxed)) {
      ++raised;
    } else {
      ++returned;
    }
  }
  state.counters["returned"] = static_cast<double>(returned);
  state.counters["raised"] = static_cast<double>(raised);
}
BENCHMARK(BM_AlertPRace)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("alert");
