// E31 — lock-core A/B: TAS+backoff vs MCS vs CLH (TAOS_LOCK backends)
// under the same contended loop, across thread counts and critical-section
// lengths, plus the Mutex and ReaderWriterMutex slow paths riding on each
// core. Emits BENCH_locks.json.
//
// Honesty rules (see EXPERIMENTS.md E31): every entry records num_cpus, and
// multi-threaded entries REFUSE to report on a single-CPU host — spinning
// lock cores cannot contend for a cache line when the waiters and the
// holder time-share one core, so any number measured there is scheduling
// noise, not lock behaviour. The refusal is a skipped entry with an error
// string in the JSON, which is itself the honest datum.

#include <benchmark/benchmark.h>

#include <thread>

#include "src/base/spinlock.h"
#include "src/threads/threads.h"
#include "src/workload/rwlock.h"
#include "src/workload/work.h"

namespace {

// Records the core count on the entry and refuses contended claims on one
// CPU. Returns true when the benchmark must bail (after draining state).
bool RefuseContendedOn1Cpu(benchmark::State& state) {
  const unsigned n = std::thread::hardware_concurrency();
  state.counters["num_cpus"] = static_cast<double>(n);
  if (state.threads() > 1 && n <= 1) {
    state.SkipWithError(
        "1 CPU: contended lock numbers would be scheduling noise");
    return true;
  }
  return false;
}

template <typename LockT>
void ContendedLoop(benchmark::State& state, LockT& lock) {
  if (RefuseContendedOn1Cpu(state)) {
    for (auto _ : state) {
    }
    return;
  }
  const std::uint64_t cs_work = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t outside = static_cast<std::uint64_t>(state.range(1));
  std::uint64_t local = 0;
  for (auto _ : state) {
    lock.Acquire();
    local ^= taos::workload::DoWork(cs_work);
    lock.Release();
    local ^= taos::workload::DoWork(outside);
  }
  benchmark::DoNotOptimize(local);
}

// --- raw spin-lock cores (the substrate itself) ---

taos::SpinLock g_spin;

// Setup/Teardown run before any benchmark thread starts and after all have
// joined, so the process-wide backend switch only happens while every
// SpinLock in the process is free (the quiescence SetBackend requires).
void UseTas(const benchmark::State&) {
  taos::SpinLock::SetBackend(taos::LockBackend::kTas);
}
void UseMcs(const benchmark::State&) {
  taos::SpinLock::SetBackend(taos::LockBackend::kMcs);
}
void UseClh(const benchmark::State&) {
  taos::SpinLock::SetBackend(taos::LockBackend::kClh);
}
const taos::LockBackend g_env_backend = taos::SpinLock::backend();
void RestoreBackend(const benchmark::State&) {
  taos::SpinLock::SetBackend(g_env_backend);
}

void BM_SpinTas(benchmark::State& state) { ContendedLoop(state, g_spin); }
void BM_SpinMcs(benchmark::State& state) { ContendedLoop(state, g_spin); }
void BM_SpinClh(benchmark::State& state) { ContendedLoop(state, g_spin); }

// --- the Mutex slow path riding on each core ---

taos::Mutex g_mutex;
void MutexLoop(benchmark::State& state) {
  ContendedLoop(state, g_mutex);
  if (state.thread_index() == 0) {
    state.counters["slow_acquires"] =
        static_cast<double>(g_mutex.slow_acquires());
    g_mutex.ResetStats();
  }
}
void BM_MutexTas(benchmark::State& state) { MutexLoop(state); }
void BM_MutexMcs(benchmark::State& state) { MutexLoop(state); }
void BM_MutexClh(benchmark::State& state) { MutexLoop(state); }

// --- the ReaderWriterMutex on each core (read-mostly mix) ---

taos::ReaderWriterMutex g_rw;
void RwLoop(benchmark::State& state) {
  if (RefuseContendedOn1Cpu(state)) {
    for (auto _ : state) {
    }
    return;
  }
  const std::uint64_t cs_work = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t local = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (++i % 8 == 0) {
      taos::WriteLock wl(g_rw);
      local ^= taos::workload::DoWork(cs_work);
    } else {
      taos::ReadLock rl(g_rw);
      local ^= taos::workload::DoWork(cs_work);
    }
  }
  benchmark::DoNotOptimize(local);
}
void BM_RwMutexTas(benchmark::State& state) { RwLoop(state); }
void BM_RwMutexMcs(benchmark::State& state) { RwLoop(state); }
void BM_RwMutexClh(benchmark::State& state) { RwLoop(state); }

void Shapes(benchmark::internal::Benchmark* b) {
  // {cs_work, outside_work}: short and long critical sections.
  for (auto shape : {std::pair<int, int>{5, 20}, {100, 20}}) {
    b->Args({shape.first, shape.second});
  }
  b->Threads(1)->Threads(2)->Threads(4)->Threads(8);
  b->UseRealTime();
}

#define TAOS_LOCKS_BENCH(fn, setup)                                   \
  BENCHMARK(fn)->Apply(Shapes)->Setup(setup)->Teardown(RestoreBackend)

TAOS_LOCKS_BENCH(BM_SpinTas, UseTas);
TAOS_LOCKS_BENCH(BM_SpinMcs, UseMcs);
TAOS_LOCKS_BENCH(BM_SpinClh, UseClh);
TAOS_LOCKS_BENCH(BM_MutexTas, UseTas);
TAOS_LOCKS_BENCH(BM_MutexMcs, UseMcs);
TAOS_LOCKS_BENCH(BM_MutexClh, UseClh);
TAOS_LOCKS_BENCH(BM_RwMutexTas, UseTas);
TAOS_LOCKS_BENCH(BM_RwMutexMcs, UseMcs);
TAOS_LOCKS_BENCH(BM_RwMutexClh, UseClh);

#undef TAOS_LOCKS_BENCH

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("locks");
