// E29 — the deadline subsystem: timer-wheel timed waits against the retired
// thread-per-timeout watchdog, and the fast-path tax of deadline arming.
//
//   UncontendedAcquireRelease     baseline fast path (no deadline involved)
//   UncontendedAcquireForRelease  same, via AcquireFor: the parity check
//   ExpiryWheel                   one timed wait expiring on the wheel
//   ExpiryWatchdog                same contract, watchdog construction
//   TimedWaitersWheel/N           N concurrent expiring waiters, zero
//                                 threads created per wait
//   TimedWaitersWatchdog/N        N concurrent waiters, one watchdog thread
//                                 forked and joined per wait
//   GrantedPingPongWheel/N        2N threads ping-ponging under timed waits
//                                 whose deadline never fires (the common
//                                 case) — the headline ratio
//   GrantedPingPongWatchdog/N     same, watchdog construction
//
// The watchdog is the construction this repo used before deadlines became
// first-class in the Nub (src/threads/timer.h): a forked thread that polls
// a done-flag at millisecond granularity and Alerts the waiter once the
// deadline passes. It is reproduced here, not imported, so the comparison
// survives the original's deletion.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "src/threads/threads.h"
#include "src/threads/wait_result.h"
#include "src/workload/timeout.h"

namespace {

using namespace std::chrono_literals;

// The pre-wheel construction, verbatim in shape: one thread creation, one
// join, and a 1 ms polling loop per timed wait.
bool WatchdogWaitWithTimeout(taos::Mutex& m, taos::Condition& c,
                             const std::function<bool()>& predicate,
                             std::chrono::microseconds timeout) {
  std::atomic<bool> done{false};
  const taos::ThreadHandle self = taos::Thread::Self();
  taos::Thread watchdog = taos::Thread::Fork([&] {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!done.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    if (!done.load(std::memory_order_acquire)) {
      taos::Alert(self);
    }
  });
  bool ok = true;
  try {
    while (!predicate()) {
      taos::AlertWait(m, c);
    }
  } catch (const taos::Alerted&) {
    ok = predicate();
  }
  done.store(true, std::memory_order_release);
  m.Release();
  watchdog.Join();
  m.Acquire();
  (void)taos::TestAlert();  // the alert may have landed post-catch
  return ok;
}

// --- fast-path parity ---

void BM_UncontendedAcquireRelease(benchmark::State& state) {
  taos::Mutex m;
  for (auto _ : state) {
    m.Acquire();
    m.Release();
  }
}
BENCHMARK(BM_UncontendedAcquireRelease);

void BM_UncontendedAcquireForRelease(benchmark::State& state) {
  // Uncontended AcquireFor takes the same inline test-and-set as Acquire
  // and never arms a timer; this must track the baseline above.
  taos::Mutex m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.AcquireFor(10s));
    m.Release();
  }
}
BENCHMARK(BM_UncontendedAcquireForRelease);

// --- one expiring wait, round trip ---

void BM_ExpiryWheel(benchmark::State& state) {
  taos::Mutex m;
  taos::Condition c;
  m.Acquire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(taos::AlertWaitFor(m, c, 200us));
  }
  m.Release();
}
BENCHMARK(BM_ExpiryWheel)->UseRealTime();

void BM_ExpiryWatchdog(benchmark::State& state) {
  taos::Mutex m;
  taos::Condition c;
  m.Acquire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WatchdogWaitWithTimeout(m, c, [] { return false; }, 200us));
  }
  m.Release();
}
BENCHMARK(BM_ExpiryWatchdog)->UseRealTime();

// --- many concurrent expiring waiters ---
//
// Each benchmark iteration runs one batch: N waiter threads, each
// performing kWaitsPerThread 200 us timed waits that all expire. The
// deadline is deliberately sub-millisecond: the wheel serves it at tick
// granularity, while the watchdog cannot express it at all — its 1 ms
// polling loop is the floor, and that floor (plus a thread fork and join
// per wait) is precisely what made short timeouts impractical before. The wheel parks
// every waiter on the one timer thread; the watchdog forks and joins a
// thread per wait. items_processed counts waits, so the report's
// items_per_second ratio is the headline number.

constexpr int kWaitsPerThread = 32;

void RunWheelBatch(int waiters) {
  std::vector<taos::Thread> threads;
  threads.reserve(static_cast<std::size_t>(waiters));
  for (int t = 0; t < waiters; ++t) {
    threads.push_back(taos::Thread::Fork([] {
      taos::Mutex m;
      taos::Condition c;
      m.Acquire();
      for (int i = 0; i < kWaitsPerThread; ++i) {
        taos::AlertWaitFor(m, c, 200us);
      }
      m.Release();
    }));
  }
  for (taos::Thread& t : threads) {
    t.Join();
  }
}

void RunWatchdogBatch(int waiters) {
  std::vector<taos::Thread> threads;
  threads.reserve(static_cast<std::size_t>(waiters));
  for (int t = 0; t < waiters; ++t) {
    threads.push_back(taos::Thread::Fork([] {
      taos::Mutex m;
      taos::Condition c;
      m.Acquire();
      for (int i = 0; i < kWaitsPerThread; ++i) {
        WatchdogWaitWithTimeout(m, c, [] { return false; }, 200us);
      }
      m.Release();
    }));
  }
  for (taos::Thread& t : threads) {
    t.Join();
  }
}

void BM_TimedWaitersWheel(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RunWheelBatch(waiters);
  }
  state.SetItemsProcessed(state.iterations() * waiters * kWaitsPerThread);
}
BENCHMARK(BM_TimedWaitersWheel)->Arg(8)->Arg(64)->UseRealTime();

void BM_TimedWaitersWatchdog(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RunWatchdogBatch(waiters);
  }
  state.SetItemsProcessed(state.iterations() * waiters * kWaitsPerThread);
}
BENCHMARK(BM_TimedWaitersWatchdog)->Arg(8)->Arg(64)->UseRealTime();

// --- granted timed waits: the common case ---
//
// N producer/consumer pairs (2N threads) ping-pong a value under a timed
// predicate wait whose generous deadline practically never fires. This is
// what WaitWithTimeout does all day in a healthy system: the deadline is
// insurance, the signal always wins. The wheel's insurance premium is one
// O(1) arm and one O(1) cancel per wait; the watchdog's is a thread fork,
// a 1 ms polling loop, and a join per wait — the headline gap.

constexpr int kRoundsPerPair = 16;

template <typename TimedWait>
void PingPongBatch(int pairs, const TimedWait& timed_wait) {
  struct Pair {
    taos::Mutex m;
    taos::Condition not_empty;
    taos::Condition not_full;
    int value = 0;
  };
  std::vector<std::unique_ptr<Pair>> state(static_cast<std::size_t>(pairs));
  for (auto& p : state) {
    p = std::make_unique<Pair>();
  }
  std::vector<taos::Thread> threads;
  threads.reserve(static_cast<std::size_t>(2 * pairs));
  for (int i = 0; i < pairs; ++i) {
    Pair* p = state[static_cast<std::size_t>(i)].get();
    threads.push_back(taos::Thread::Fork([p, &timed_wait] {
      for (int r = 0; r < kRoundsPerPair; ++r) {
        p->m.Acquire();
        while (!timed_wait(p->m, p->not_full, [p] { return p->value == 0; })) {
        }
        p->value = 1;
        p->not_empty.Signal();
        p->m.Release();
      }
    }));
    threads.push_back(taos::Thread::Fork([p, &timed_wait] {
      for (int r = 0; r < kRoundsPerPair; ++r) {
        p->m.Acquire();
        while (!timed_wait(p->m, p->not_empty, [p] { return p->value == 1; })) {
        }
        p->value = 0;
        p->not_full.Signal();
        p->m.Release();
      }
    }));
  }
  for (taos::Thread& t : threads) {
    t.Join();
  }
}

void BM_GrantedPingPongWheel(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PingPongBatch(pairs, [](taos::Mutex& m, taos::Condition& c,
                            const std::function<bool()>& pred) {
      return taos::workload::WaitWithTimeout(m, c, pred, 200ms);
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * pairs * kRoundsPerPair);
}
BENCHMARK(BM_GrantedPingPongWheel)->Arg(4)->Arg(32)->UseRealTime();

void BM_GrantedPingPongWatchdog(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PingPongBatch(pairs, [](taos::Mutex& m, taos::Condition& c,
                            const std::function<bool()>& pred) {
      return WatchdogWaitWithTimeout(m, c, pred, 200ms);
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * pairs * kRoundsPerPair);
}
BENCHMARK(BM_GrantedPingPongWatchdog)->Arg(4)->Arg(32)->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("timers");
