// E1 — the paper's headline number: "an Acquire-Release pair executes a
// total of 5 instructions, taking 10 microseconds on a MicroVAX II. This
// code is compiled entirely in-line."
//
// Series reported:
//   AcquireRelease      the user-code pair, no contention (never enters Nub)
//   LockClause          the LOCK sugar (RAII guard)
//   TryAcquireRelease   the single-attempt variant
//   StdMutexPair        std::mutex baseline
//   RawSpinLockPair     the Nub's own spin-lock bit, for the floor
//   TicketLockPair      FIFO ticket lock baseline
//
// The `nub_entries` counter is exported to prove the fast path held: it must
// stay 0 for the whole run (the modern analogue of "5 instructions in-line"
// is "two atomic RMWs, zero kernel-layer entries").

#include <benchmark/benchmark.h>

#include <mutex>

#include "src/base/spinlock.h"
#include "src/baseline/ticket_lock.h"
#include "src/obs/diag.h"
#include "src/threads/threads.h"

namespace {

void BM_AcquireRelease(benchmark::State& state) {
  taos::Mutex m;
  const std::uint64_t nub_before =
      taos::Nub::Get().nub_entries.load(std::memory_order_relaxed);
  for (auto _ : state) {
    m.Acquire();
    m.Release();
  }
  state.counters["nub_entries"] = static_cast<double>(
      taos::Nub::Get().nub_entries.load(std::memory_order_relaxed) -
      nub_before);
}
BENCHMARK(BM_AcquireRelease);

// The same pair with the contention-diagnosis registry actively stamping
// owners (obs::diag::SetEnabled(true)): the A/B row for E32's parity claim.
// BM_AcquireRelease above already carries the compiled-in-but-off cost —
// one relaxed load and a predicted branch per transition.
void BM_AcquireReleaseDiagOn(benchmark::State& state) {
  taos::obs::diag::SetEnabled(true);
  taos::Mutex m;
  for (auto _ : state) {
    m.Acquire();
    m.Release();
  }
  taos::obs::diag::SetEnabled(false);
}
BENCHMARK(BM_AcquireReleaseDiagOn);

void BM_LockClause(benchmark::State& state) {
  taos::Mutex m;
  for (auto _ : state) {
    taos::Lock lock(m);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_LockClause);

void BM_TryAcquireRelease(benchmark::State& state) {
  taos::Mutex m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.TryAcquire());
    m.Release();
  }
}
BENCHMARK(BM_TryAcquireRelease);

void BM_StdMutexPair(benchmark::State& state) {
  std::mutex m;
  for (auto _ : state) {
    m.lock();
    m.unlock();
  }
}
BENCHMARK(BM_StdMutexPair);

void BM_RawSpinLockPair(benchmark::State& state) {
  taos::SpinLock s;
  for (auto _ : state) {
    s.Acquire();
    s.Release();
  }
}
BENCHMARK(BM_RawSpinLockPair);

void BM_TicketLockPair(benchmark::State& state) {
  taos::baseline::TicketSpinMutex m;
  for (auto _ : state) {
    m.Acquire();
    m.Release();
  }
}
BENCHMARK(BM_TicketLockPair);

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("uncontended");
