// E21 — what the automatic-signal discipline costs: Monitor<T> broadcasts
// on every mutating entry (impossible to forget a Signal), versus the
// paper's manual discipline (signal exactly when a predicate may have
// changed). The no-waiter broadcast fast path (E2) is what keeps the
// automatic variant viable.

#include <benchmark/benchmark.h>

#include <deque>

#include "src/threads/threads.h"
#include "src/workload/monitor.h"

namespace {

void BM_MonitorUncontendedEntry(benchmark::State& state) {
  taos::workload::Monitor<long> counter(0);
  for (auto _ : state) {
    counter.With([](auto& access) {
      ++*access;
      return 0;
    });
  }
}
BENCHMARK(BM_MonitorUncontendedEntry);

void BM_ManualUncontendedEntry(benchmark::State& state) {
  taos::Mutex m;
  taos::Condition c;
  long counter = 0;
  for (auto _ : state) {
    {
      taos::Lock lock(m);
      ++counter;
    }
    c.Broadcast();  // the same always-notify discipline, hand-written
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_ManualUncontendedEntry);

void BM_ManualPreciseSignalEntry(benchmark::State& state) {
  // The paper's discipline: no waiter can exist here, so no signal at all.
  taos::Mutex m;
  long counter = 0;
  for (auto _ : state) {
    taos::Lock lock(m);
    ++counter;
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_ManualPreciseSignalEntry);

void BM_MonitorQueuePingPong(benchmark::State& state) {
  // Producer/consumer through Monitor<deque>: every With broadcasts, the
  // consumer Awaits. Compare against BM_SignalWakeRoundTrip (bench_signal).
  taos::workload::Monitor<std::deque<int>> queue;
  std::atomic<bool> stop{false};
  taos::Thread consumer = taos::Thread::Fork([&] {
    for (;;) {
      const int v = queue.When(
          [](const std::deque<int>& q) { return !q.empty(); },
          [](auto& access) {
            const int x = access->front();
            access->pop_front();
            return x;
          });
      if (v < 0) {
        return;
      }
    }
  });
  for (auto _ : state) {
    queue.With([](auto& access) {
      access->push_back(1);
      return 0;
    });
    // Wait until consumed (bounded queue of one, hand-rolled).
    queue.When([](const std::deque<int>& q) { return q.empty(); },
               [](auto&) { return 0; });
  }
  stop.store(true);
  queue.With([](auto& access) {
    access->push_back(-1);
    return 0;
  });
  consumer.Join();
}
BENCHMARK(BM_MonitorQueuePingPong)->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("monitor");
