// E5 — "The implementation of semaphores is identical to mutexes: P is the
// same as Acquire and V is the same as Release." The uncontended P/V pair
// must therefore cost the same as the Acquire/Release pair of E1 (modulo
// the mutex's holder bookkeeping), and the alertable AlertP the same plus
// one flag test.

#include <benchmark/benchmark.h>

#include "src/threads/threads.h"

namespace {

void BM_PVPair(benchmark::State& state) {
  taos::Semaphore s;
  const std::uint64_t nub_before =
      taos::Nub::Get().nub_entries.load(std::memory_order_relaxed);
  for (auto _ : state) {
    s.P();
    s.V();
  }
  state.counters["nub_entries"] = static_cast<double>(
      taos::Nub::Get().nub_entries.load(std::memory_order_relaxed) -
      nub_before);
}
BENCHMARK(BM_PVPair);

void BM_AcquireReleasePairReference(benchmark::State& state) {
  taos::Mutex m;
  for (auto _ : state) {
    m.Acquire();
    m.Release();
  }
}
BENCHMARK(BM_AcquireReleasePairReference);

void BM_AlertPVPair(benchmark::State& state) {
  taos::Semaphore s;
  for (auto _ : state) {
    taos::AlertP(s);
    s.V();
  }
}
BENCHMARK(BM_AlertPVPair);

// Semaphore handoff latency: one V-to-P wake round trip between two
// threads (the interrupt-synchronization path).
void BM_HandoffRoundTrip(benchmark::State& state) {
  taos::Semaphore ping;
  taos::Semaphore pong;
  ping.P();
  pong.P();
  std::atomic<bool> stop{false};
  taos::Thread peer = taos::Thread::Fork([&] {
    for (;;) {
      ping.P();
      if (stop.load(std::memory_order_acquire)) {
        return;
      }
      pong.V();
    }
  });
  for (auto _ : state) {
    ping.V();
    pong.P();
  }
  stop.store(true, std::memory_order_release);
  ping.V();
  peer.Join();
}
BENCHMARK(BM_HandoffRoundTrip)->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("semaphore");
