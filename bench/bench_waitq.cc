// Waitq A/B — the same workloads on the classic intrusive waiter queues and
// on the waitq substrate (segment cells + Parker), flipped per-benchmark via
// the runtime switch the TAOS_WAITQ env var drives:
//
//   UncontendedAcquireRelease   fast-path parity: the substrate is slow-path
//                               only, so classic and waitq must tie (~22ns)
//   ContendedMutex              park/unpark handoff under real contention
//   SemaphorePingPong           blocking P/V handoff between two threads
//   AlertStorm                  alert a blocked AlertP per iteration — waitq
//                               cancels a cell in O(1) under the record lock
//                               alone, classic walks the object queue
//   ParkerPingPong              the parking backends head-to-head, no queue
//   QueueEnqueueResume          raw substrate cycle: claim, install, resume
//
// Setup/Teardown run with no benchmark threads alive, satisfying the
// quiescent-switch contract of Nub::SetWaitqMode.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "src/threads/threads.h"
#include "src/waitq/parker.h"
#include "src/waitq/waitq.h"
#include "src/workload/work.h"

namespace {

void UseWaitq(const benchmark::State&) { taos::Nub::Get().SetWaitqMode(true); }
void UseClassic(const benchmark::State&) {
  taos::Nub::Get().SetWaitqMode(false);
}

// ---- uncontended parity ---------------------------------------------------

taos::Mutex g_uncontended;
void UncontendedLoop(benchmark::State& state) {
  for (auto _ : state) {
    g_uncontended.Acquire();
    g_uncontended.Release();
  }
}
void BM_UncontendedAcquireReleaseClassic(benchmark::State& state) {
  UncontendedLoop(state);
}
void BM_UncontendedAcquireReleaseWaitq(benchmark::State& state) {
  UncontendedLoop(state);
}
BENCHMARK(BM_UncontendedAcquireReleaseClassic)
    ->Setup(UseClassic)
    ->Teardown(UseClassic);
BENCHMARK(BM_UncontendedAcquireReleaseWaitq)
    ->Setup(UseWaitq)
    ->Teardown(UseClassic);

// ---- contended handoff ----------------------------------------------------

taos::Mutex g_contended;
void ContendedLoop(benchmark::State& state) {
  std::uint64_t local = 0;
  for (auto _ : state) {
    g_contended.Acquire();
    local ^= taos::workload::DoWork(5);
    g_contended.Release();
    local ^= taos::workload::DoWork(20);
  }
  benchmark::DoNotOptimize(local);
}
void BM_ContendedMutexClassic(benchmark::State& state) { ContendedLoop(state); }
void BM_ContendedMutexWaitq(benchmark::State& state) { ContendedLoop(state); }
BENCHMARK(BM_ContendedMutexClassic)
    ->Setup(UseClassic)
    ->Teardown(UseClassic)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_ContendedMutexWaitq)
    ->Setup(UseWaitq)
    ->Teardown(UseClassic)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---- blocking semaphore ping-pong -----------------------------------------

void SemaphorePingPong(benchmark::State& state) {
  taos::Semaphore ping;
  ping.P();  // start unavailable
  taos::Semaphore pong;
  pong.P();
  std::atomic<bool> stop{false};
  taos::Thread worker = taos::Thread::Fork([&] {
    for (;;) {
      ping.P();
      if (stop.load(std::memory_order_acquire)) {
        return;
      }
      pong.V();
    }
  });
  for (auto _ : state) {
    ping.V();
    pong.P();
  }
  stop.store(true, std::memory_order_release);
  ping.V();
  worker.Join();
}
void BM_SemaphorePingPongClassic(benchmark::State& state) {
  SemaphorePingPong(state);
}
void BM_SemaphorePingPongWaitq(benchmark::State& state) {
  SemaphorePingPong(state);
}
BENCHMARK(BM_SemaphorePingPongClassic)
    ->Setup(UseClassic)
    ->Teardown(UseClassic)
    ->UseRealTime();
BENCHMARK(BM_SemaphorePingPongWaitq)
    ->Setup(UseWaitq)
    ->Teardown(UseClassic)
    ->UseRealTime();

// ---- alert storm ----------------------------------------------------------

// One worker repeatedly blocks in AlertP; the driver alerts it once per
// iteration. Classic Alert removes the worker from the semaphore's intrusive
// queue under the object lock (the backwards try-lock dance); waitq Alert
// cancels the published cell in O(1) holding only the record lock.
void AlertStorm(benchmark::State& state) {
  taos::Semaphore ready;
  ready.P();
  taos::Semaphore blocked;
  blocked.P();
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  taos::Thread worker = taos::Thread::Fork([&] {
    for (;;) {
      ready.V();
      try {
        taos::AlertP(blocked);
      } catch (const taos::Alerted&) {
      }
      if (stop.load(std::memory_order_acquire)) {
        done.store(true, std::memory_order_release);
        return;
      }
    }
  });
  const taos::ThreadHandle target = worker.Handle();
  for (auto _ : state) {
    ready.P();
    taos::Alert(target);
  }
  stop.store(true, std::memory_order_release);
  while (!done.load(std::memory_order_acquire)) {
    taos::Alert(target);
    std::this_thread::yield();
  }
  worker.Join();
  (void)taos::TestAlert();
}
void BM_AlertStormClassic(benchmark::State& state) { AlertStorm(state); }
void BM_AlertStormWaitq(benchmark::State& state) { AlertStorm(state); }
BENCHMARK(BM_AlertStormClassic)
    ->Setup(UseClassic)
    ->Teardown(UseClassic)
    ->UseRealTime();
BENCHMARK(BM_AlertStormWaitq)
    ->Setup(UseWaitq)
    ->Teardown(UseClassic)
    ->UseRealTime();

// ---- parking backends -----------------------------------------------------

void ParkerPingPong(benchmark::State& state, taos::waitq::Parker::Backend b) {
  taos::waitq::Parker ping(b);
  taos::waitq::Parker pong(b);
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    for (;;) {
      ping.Park();
      if (stop.load(std::memory_order_acquire)) {
        return;
      }
      pong.Unpark();
    }
  });
  for (auto _ : state) {
    ping.Unpark();
    pong.Park();
  }
  stop.store(true, std::memory_order_release);
  ping.Unpark();
  worker.join();
}
void BM_ParkerPingPongFutex(benchmark::State& state) {
  ParkerPingPong(state, taos::waitq::Parker::Backend::kFutex);
}
void BM_ParkerPingPongCondvar(benchmark::State& state) {
  ParkerPingPong(state, taos::waitq::Parker::Backend::kCondvar);
}
BENCHMARK(BM_ParkerPingPongFutex)->UseRealTime();
BENCHMARK(BM_ParkerPingPongCondvar)->UseRealTime();

// ---- raw substrate cycle --------------------------------------------------

// One claim/install/resume/detach round trip, single-threaded: the queue-
// machinery cost floor under the park/unpark numbers above. Includes segment
// allocation amortized at one slot per kCells iterations.
void BM_QueueEnqueueResume(benchmark::State& state) {
  taos::waitq::WaitQueue q;
  taos::waitq::Parker p(taos::waitq::Parker::Backend::kCondvar);
  for (auto _ : state) {
    taos::waitq::WaitCell* cell = q.Enqueue();
    benchmark::DoNotOptimize(cell->Install(&p, nullptr));
    benchmark::DoNotOptimize(q.ResumeOne().resumed);
    taos::waitq::WaitQueue::Detach(cell);
  }
}
BENCHMARK(BM_QueueEnqueueResume);

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("waitq");
