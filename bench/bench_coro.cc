// E14 — the coroutine (single-process Unix) implementation: what blocking
// and resuming cost when a context switch is a swapcontext instead of an OS
// reschedule, and the same ping-pong workloads on both implementations.
//
//   CoroYieldRoundTrip        two coroutines alternating via Yield
//   CoroCondPingPong          producer/consumer cell via Mutex+Condition
//   CoroSemHandoff            semaphore token pass
//   ThreadsCondPingPong       the identical program on OS threads (for the
//                             switch-cost contrast the paper implies by
//                             keeping both implementations)

#include <benchmark/benchmark.h>

#include <atomic>

#include "src/coro/sync.h"
#include "src/threads/threads.h"

namespace {

void BM_CoroYieldRoundTrip(benchmark::State& state) {
  // Each iteration = run a scheduler where two coroutines yield to each
  // other kRounds times; report per-switch time via items.
  constexpr int kRounds = 10000;
  std::uint64_t switches = 0;
  for (auto _ : state) {
    taos::coro::Scheduler s;
    for (int i = 0; i < 2; ++i) {
      s.Fork([&s] {
        for (int r = 0; r < kRounds; ++r) {
          s.Yield();
        }
      });
    }
    benchmark::DoNotOptimize(s.Run().completed);
    switches += s.switches();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(switches));
  state.SetLabel("context switches in items");
}
BENCHMARK(BM_CoroYieldRoundTrip)->Unit(benchmark::kMillisecond);

void BM_CoroCondPingPong(benchmark::State& state) {
  constexpr int kRounds = 10000;
  for (auto _ : state) {
    taos::coro::Scheduler s;
    taos::coro::Mutex m;
    taos::coro::Condition c;
    int cell = 0;
    s.Fork([&] {
      for (int r = 1; r <= kRounds; ++r) {
        taos::coro::Lock lock(m);
        while (cell != 0) {
          c.Wait(m);
        }
        cell = r;
        c.Signal();
      }
    });
    s.Fork([&] {
      for (int r = 1; r <= kRounds; ++r) {
        taos::coro::Lock lock(m);
        while (cell == 0) {
          c.Wait(m);
        }
        cell = 0;
        c.Signal();
      }
    });
    benchmark::DoNotOptimize(s.Run().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRounds);
  state.SetLabel("handoffs in items");
}
BENCHMARK(BM_CoroCondPingPong)->Unit(benchmark::kMillisecond);

void BM_CoroSemHandoff(benchmark::State& state) {
  constexpr int kRounds = 10000;
  for (auto _ : state) {
    taos::coro::Scheduler s;
    taos::coro::Semaphore ping(false);
    taos::coro::Semaphore pong(false);
    s.Fork([&] {
      for (int r = 0; r < kRounds; ++r) {
        ping.P();
        pong.V();
      }
    });
    s.Fork([&] {
      for (int r = 0; r < kRounds; ++r) {
        ping.V();
        pong.P();
      }
    });
    benchmark::DoNotOptimize(s.Run().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRounds);
}
BENCHMARK(BM_CoroSemHandoff)->Unit(benchmark::kMillisecond);

void BM_ThreadsCondPingPong(benchmark::State& state) {
  // The same cell ping-pong as BM_CoroCondPingPong, on OS threads: the
  // cost of parking/unparking through the host scheduler.
  constexpr int kRounds = 2000;
  for (auto _ : state) {
    taos::Mutex m;
    taos::Condition c;
    int cell = 0;
    taos::Thread producer = taos::Thread::Fork([&] {
      for (int r = 1; r <= kRounds; ++r) {
        taos::Lock lock(m);
        while (cell != 0) {
          c.Wait(m);
        }
        cell = r;
        c.Broadcast();
      }
    });
    taos::Thread consumer = taos::Thread::Fork([&] {
      for (int r = 1; r <= kRounds; ++r) {
        taos::Lock lock(m);
        while (cell == 0) {
          c.Wait(m);
        }
        cell = 0;
        c.Broadcast();
      }
    });
    producer.Join();
    consumer.Join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRounds);
  state.SetLabel("handoffs in items");
}
BENCHMARK(BM_ThreadsCondPingPong)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("coro");
