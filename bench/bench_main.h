// Shared main() for every bench_* binary: google-benchmark plus the obs
// layer's metrics report and flight recorder, emitting a machine-readable
// BENCH_<name>.json next to the console output.
//
// Replace BENCHMARK_MAIN() with TAOS_BENCH_MAIN("<name>"). Extra flags, all
// consumed before google-benchmark sees argv:
//
//   --quick        CI mode: --benchmark_min_time=0.01 (bare double — this
//                  build of google-benchmark rejects unit suffixes)
//   --out=FILE     where to write the JSON report (default BENCH_<name>.json
//                  in the current directory)
//   --trace[=FILE] enable the flight recorder for the whole run and drain it
//                  to FILE (default TRACE_<name>.json) as Chrome trace-event
//                  JSON after the benchmarks finish
//
// The report's shape:
//   { "bench": name, "quick": bool, "wall_seconds": s,
//     "global_lock_mode": bool,          // TAOS_NUB_GLOBAL_LOCK
//     "metrics": <obs::ReportJson()>,    // counters + histograms
//     "benchmark": <google-benchmark's own JSON output> }

#ifndef TAOS_BENCH_BENCH_MAIN_H_
#define TAOS_BENCH_BENCH_MAIN_H_

namespace taos::benchmain {

int Run(int argc, char** argv, const char* bench_name);

}  // namespace taos::benchmain

#define TAOS_BENCH_MAIN(name)                           \
  int main(int argc, char** argv) {                     \
    return taos::benchmain::Run(argc, argv, name);      \
  }

#endif  // TAOS_BENCH_BENCH_MAIN_H_
