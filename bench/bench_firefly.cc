// E13 — the simulated Firefly itself: simulation rate (steps/sec), the cost
// of scheduler features (time slicing, extra processors), and model-checking
// throughput (explored schedules/sec), so the exploration budgets used in
// the experiments are reproducible.

#include <benchmark/benchmark.h>

#include "src/firefly/sync.h"
#include "src/model/explorer.h"
#include "src/model/litmus.h"

namespace {

using taos::firefly::Machine;
using taos::firefly::MachineConfig;

void BM_SimulationSteps(benchmark::State& state) {
  const int cpus = static_cast<int>(state.range(0));
  const std::uint64_t slice = static_cast<std::uint64_t>(state.range(1));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.cpus = cpus;
    cfg.time_slice = slice;
    Machine m(cfg);
    for (int f = 0; f < 4; ++f) {
      m.Fork([&m] {
        for (int i = 0; i < 2000; ++i) {
          m.Step();
        }
      });
    }
    auto r = m.Run();
    steps += r.steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.SetLabel("steps/sec in items");
}
BENCHMARK(BM_SimulationSteps)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({2, 16})  // with time slicing
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedMutexRound(benchmark::State& state) {
  std::uint64_t sections = 0;
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.cpus = 2;
    Machine m(cfg);
    taos::firefly::Mutex mu(m);
    int counter = 0;
    for (int f = 0; f < 2; ++f) {
      m.Fork([&] {
        for (int i = 0; i < 500; ++i) {
          mu.Acquire();
          ++counter;
          mu.Release();
        }
      });
    }
    auto r = m.Run();
    if (!r.completed || counter != 1000) {
      state.SkipWithError("simulated run failed");
      return;
    }
    sections += static_cast<std::uint64_t>(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sections));
}
BENCHMARK(BM_SimulatedMutexRound)->Unit(benchmark::kMillisecond);

void BM_ExplorationRate(benchmark::State& state) {
  using namespace taos::model;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    ExplorerOptions opt;
    opt.machine.cpus = 2;
    opt.max_runs = 500;
    opt.stop_on_violation = false;
    Explorer ex(opt);
    auto r = ex.Explore(WakeupRaceLitmus(true));
    runs += r.runs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
  state.SetLabel("explored schedules in items");
}
BENCHMARK(BM_ExplorationRate)->Unit(benchmark::kMillisecond);

void BM_ExplorationRateWithTraceCheck(benchmark::State& state) {
  using namespace taos::model;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    ExplorerOptions opt;
    opt.machine.cpus = 2;
    opt.max_runs = 500;
    opt.stop_on_violation = false;
    opt.check_traces = true;  // spec-check every schedule
    Explorer ex(opt);
    auto r = ex.Explore(WakeupRaceLitmus(true));
    runs += r.runs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_ExplorationRateWithTraceCheck)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("firefly");
