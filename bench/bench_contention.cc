// E3 — contended mutex throughput versus thread count and critical-section
// length, across lock designs:
//
//   TaosMutex     test-and-set fast path + queue/park slow path (barging)
//   Semaphore     the identical mechanism behind P/V (E5 cross-check)
//   TicketSpin    FIFO pure spinning
//   StdMutex      the host's native mutex (futex-backed)
//
// google-benchmark's ->Threads(N) runs the loop body in N OS threads; the
// reported time is per-operation wall time. cs_work/outside_work sweep the
// critical-section length (DoWork units).

#include <benchmark/benchmark.h>

#include <thread>

#include "src/baseline/handoff_mutex.h"
#include "src/baseline/reed_kanodia.h"
#include "src/baseline/std_sync.h"
#include "src/baseline/ticket_lock.h"
#include "src/threads/threads.h"
#include "src/workload/work.h"

namespace {

class SemaphoreAsLock {
 public:
  void Acquire() { s_.P(); }
  void Release() { s_.V(); }

 private:
  taos::Semaphore s_;
};

// Core-count honesty: contention numbers only mean something when waiters
// can actually run concurrently with the holder. Every entry records
// num_cpus; multi-threaded entries on a single-CPU host are refused (a
// skipped entry with an error string — the honest datum for that shape).
bool RefuseContendedOn1Cpu(benchmark::State& state) {
  const unsigned n = std::thread::hardware_concurrency();
  state.counters["num_cpus"] = static_cast<double>(n);
  if (state.threads() > 1 && n <= 1) {
    state.SkipWithError(
        "1 CPU: contended lock numbers would be scheduling noise");
    return true;
  }
  return false;
}

template <typename LockT>
void ContendedLoop(benchmark::State& state, LockT& lock) {
  if (RefuseContendedOn1Cpu(state)) {
    for (auto _ : state) {
    }
    return;
  }
  const std::uint64_t cs_work = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t outside = static_cast<std::uint64_t>(state.range(1));
  std::uint64_t local = 0;
  for (auto _ : state) {
    lock.Acquire();
    local ^= taos::workload::DoWork(cs_work);
    lock.Release();
    local ^= taos::workload::DoWork(outside);
  }
  benchmark::DoNotOptimize(local);
}

taos::Mutex g_taos_mutex;
void BM_TaosMutex(benchmark::State& state) {
  ContendedLoop(state, g_taos_mutex);
  if (state.thread_index() == 0) {
    state.counters["slow_acquires"] =
        static_cast<double>(g_taos_mutex.slow_acquires());
    g_taos_mutex.ResetStats();
  }
}

SemaphoreAsLock g_semaphore_lock;
void BM_SemaphoreLock(benchmark::State& state) {
  ContendedLoop(state, g_semaphore_lock);
}

taos::baseline::TicketSpinMutex g_ticket;
void BM_TicketSpin(benchmark::State& state) { ContendedLoop(state, g_ticket); }

// The barging ablation: direct FIFO handoff (convoy-prone) vs the paper's
// retry-from-the-test-and-set design.
taos::baseline::HandoffMutex g_handoff;
void BM_HandoffMutex(benchmark::State& state) {
  ContendedLoop(state, g_handoff);
}

taos::baseline::StdMutex g_std_mutex;
void BM_StdMutex(benchmark::State& state) { ContendedLoop(state, g_std_mutex); }

// Reed-Kanodia mutual exclusion (ticket + eventcount): strict FIFO like the
// handoff mutex, but the queueing is the eventcount's, not the Nub's.
taos::baseline::EventcountMutex g_rk_mutex;
void BM_ReedKanodiaMutex(benchmark::State& state) {
  ContendedLoop(state, g_rk_mutex);
}

// The sharding A/B: disjoint thread pairs each hammer their own mutex, so no
// user-level contention crosses pairs — with per-object Nub locks the pairs'
// slow paths are fully independent, while TAOS_NUB_GLOBAL_LOCK=1 funnels
// every park/unpark through the paper's single spin-lock bit. The
// global_lock counter records which configuration a run measured.
constexpr int kPairPool = 8;
taos::Mutex g_pair_mutexes[kPairPool];
void BM_TaosMutexPairedObjects(benchmark::State& state) {
  taos::Mutex& m = g_pair_mutexes[(state.thread_index() / 2) % kPairPool];
  ContendedLoop(state, m);
  if (state.thread_index() == 0) {
    state.counters["global_lock"] =
        taos::Nub::Get().global_lock_mode() ? 1.0 : 0.0;
  }
}

// The spin-backoff A/B: the same contended loop over a raw Nub spin-lock,
// with bounded-exponential backoff on (the default) and off. The spin-lock
// feeds its iteration counts into the obs spin histograms either way, so the
// BENCH json records how much spinning each policy cost.
taos::SpinLock g_raw_spin_backoff;
void BM_RawSpinBackoff(benchmark::State& state) {
  struct AsLock {
    taos::SpinLock& s;
    void Acquire() { s.Acquire(); }
    void Release() { s.Release(); }
  } lock{g_raw_spin_backoff};
  ContendedLoop(state, lock);
}

taos::SpinLock g_raw_spin_no_backoff;
void BM_RawSpinNoBackoff(benchmark::State& state) {
  struct AsLock {
    taos::SpinLock& s;
    void Acquire() { s.Acquire(); }
    void Release() { s.Release(); }
  } lock{g_raw_spin_no_backoff};
  ContendedLoop(state, lock);
}

// Setup/Teardown run before any benchmark thread starts and after all have
// joined, so the process-wide switch never flips mid-measurement.
void DisableBackoff(const benchmark::State&) {
  taos::SpinLock::SetBackoffEnabled(false);
}
void RestoreBackoff(const benchmark::State&) {
  taos::SpinLock::SetBackoffEnabled(true);
}

void Shapes(benchmark::internal::Benchmark* b) {
  // {cs_work, outside_work}: short and long critical sections.
  for (auto shape : {std::pair<int, int>{5, 20}, {100, 20}}) {
    b->Args({shape.first, shape.second});
  }
  b->Threads(1)->Threads(2)->Threads(4)->Threads(8);
  b->UseRealTime();
}

void PairShapes(benchmark::internal::Benchmark* b) {
  b->Args({5, 20});
  b->Threads(2)->Threads(8)->Threads(16);
  b->UseRealTime();
}

BENCHMARK(BM_TaosMutex)->Apply(Shapes);
BENCHMARK(BM_RawSpinBackoff)->Apply(Shapes);
BENCHMARK(BM_RawSpinNoBackoff)
    ->Apply(Shapes)
    ->Setup(DisableBackoff)
    ->Teardown(RestoreBackoff);
BENCHMARK(BM_TaosMutexPairedObjects)->Apply(PairShapes);
BENCHMARK(BM_SemaphoreLock)->Apply(Shapes);
BENCHMARK(BM_TicketSpin)->Apply(Shapes);
BENCHMARK(BM_HandoffMutex)->Apply(Shapes);
BENCHMARK(BM_StdMutex)->Apply(Shapes);
BENCHMARK(BM_ReedKanodiaMutex)->Apply(Shapes);

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("contention");
