// E2 — the user-code fast paths of Signal and Broadcast ("avoid calling the
// Nub if there are no threads to unblock") versus the full unblock path, and
// the ablations DESIGN.md calls out:
//
//   SignalNoWaiters / BroadcastNoWaiters    fast path (no Nub entry)
//   SignalNubAlways                          ablation: what every signal
//                                            would cost without the waiter-
//                                            count gate (forced Nub entry)
//   SignalWakeRoundTrip                      full wake: one blocked thread
//                                            signalled awake, per iteration
//   BroadcastNWaiters                        unblock N queued threads
//                                            (one spin-lock hold, N wakes)

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/threads/threads.h"

namespace {

void BM_SignalNoWaiters(benchmark::State& state) {
  taos::Condition c;
  const std::uint64_t nub_before =
      taos::Nub::Get().nub_entries.load(std::memory_order_relaxed);
  for (auto _ : state) {
    c.Signal();
  }
  state.counters["nub_entries"] = static_cast<double>(
      taos::Nub::Get().nub_entries.load(std::memory_order_relaxed) -
      nub_before);
  state.counters["fast_signals"] = static_cast<double>(c.fast_signals());
}
BENCHMARK(BM_SignalNoWaiters);

void BM_BroadcastNoWaiters(benchmark::State& state) {
  taos::Condition c;
  for (auto _ : state) {
    c.Broadcast();
  }
  state.counters["fast_signals"] = static_cast<double>(c.fast_signals());
}
BENCHMARK(BM_BroadcastNoWaiters);

// Ablation: the cost a Signal pays when it cannot skip the Nub.
void BM_SignalNubAlways(benchmark::State& state) {
  taos::Condition c;
  // Every Signal forced down the Nub path (spin-lock, eventcount advance,
  // queue inspection): the per-signal cost the user-code no-waiters gate
  // saves. Compare against BM_SignalNoWaiters.
  for (auto _ : state) {
    c.SignalNubPathForBench();
  }
  state.counters["nub_signals"] = static_cast<double>(c.nub_signals());
}
BENCHMARK(BM_SignalNubAlways);

// Full wake round trip: each iteration parks a consumer and signals it
// awake (ping-pong through one condition variable).
void BM_SignalWakeRoundTrip(benchmark::State& state) {
  taos::Mutex m;
  taos::Condition c;
  int token = 0;  // 0: consumer's turn to sleep, 1: consumer may go
  bool stop = false;
  taos::Thread consumer = taos::Thread::Fork([&] {
    taos::Lock lock(m);
    for (;;) {
      while (token == 0 && !stop) {
        c.Wait(m);
      }
      if (stop) {
        return;
      }
      token = 0;
      c.Broadcast();
    }
  });
  for (auto _ : state) {
    taos::Lock lock(m);
    token = 1;
    c.Broadcast();
    while (token == 1) {
      c.Wait(m);
    }
  }
  {
    taos::Lock lock(m);
    stop = true;
  }
  c.Broadcast();
  consumer.Join();
  state.counters["absorbed"] = static_cast<double>(c.absorbed_wakeups());
}
BENCHMARK(BM_SignalWakeRoundTrip)->UseRealTime();

// Broadcast with N parked waiters: cost of the single spin-lock hold that
// drains the queue, plus N unparks.
void BM_BroadcastNWaiters(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  taos::Mutex m;
  taos::Condition c;
  taos::Semaphore all_parked;
  std::atomic<int> parked{0};
  int generation = 0;
  bool stop = false;

  std::vector<taos::Thread> waiters;
  for (int i = 0; i < n; ++i) {
    waiters.push_back(taos::Thread::Fork([&] {
      taos::Lock lock(m);
      int seen = 0;
      for (;;) {
        parked.fetch_add(1, std::memory_order_relaxed);
        while (generation == seen && !stop) {
          c.Wait(m);
        }
        if (stop) {
          return;
        }
        seen = generation;
      }
    }));
  }
  for (auto _ : state) {
    // Gather phase (untimed: manual time below measures only the
    // Broadcast). Yield while waiting so the waiters can park — this
    // benchmark must work on a single-core host.
    for (;;) {
      {
        taos::Lock lock(m);
        if (parked.load(std::memory_order_relaxed) >= n) {
          parked.store(0, std::memory_order_relaxed);
          ++generation;
          break;
        }
      }
      std::this_thread::yield();
    }
    const auto t0 = std::chrono::steady_clock::now();
    c.Broadcast();
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
  }
  {
    taos::Lock lock(m);
    stop = true;
  }
  c.Broadcast();
  for (taos::Thread& t : waiters) {
    t.Join();
  }
}
BENCHMARK(BM_BroadcastNWaiters)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(200);

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("signal");
