#include "bench/bench_main.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/spinlock.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"

namespace taos::benchmain {
namespace {

bool GlobalLockModeFromEnv() {
  const char* v = std::getenv("TAOS_NUB_GLOBAL_LOCK");
  return v != nullptr && v[0] == '1';
}

// The waiter-queue substrate selection, resolved the same way the Nub does
// at startup: the TAOS_WAITQ env var wins, else the compiled-in default.
// (bench_main can't ask the Nub directly — it links below taos_threads.)
bool WaitqModeFromConfig() {
  if (const char* v = std::getenv("TAOS_WAITQ")) {
    return v[0] == '1';
  }
#ifdef TAOS_WAITQ_DEFAULT
  return true;
#else
  return false;
#endif
}

}  // namespace

int Run(int argc, char** argv, const char* bench_name) {
  bool quick = false;
  bool trace = false;
  std::string out_path = std::string("BENCH_") + bench_name + ".json";
  std::string trace_path = std::string("TRACE_") + bench_name + ".json";

  // Consume our flags; forward the rest (argv[0] first) to google-benchmark.
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  std::vector<std::string> owned;  // storage for synthesized flags
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      out_path = a + 6;
    } else if (std::strcmp(a, "--trace") == 0) {
      trace = true;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      trace = true;
      trace_path = a + 8;
    } else {
      fwd.push_back(argv[i]);
    }
  }
  if (quick) {
    // Bare double: this build of google-benchmark rejects "0.01s".
    owned.push_back("--benchmark_min_time=0.01");
  }
  // Have the library write its own JSON to a side file; it is embedded into
  // the report below. Synthesized last so it wins over any user-passed
  // --benchmark_out.
  const std::string gbench_path = out_path + ".gbench.tmp";
  owned.push_back("--benchmark_out=" + gbench_path);
  owned.push_back("--benchmark_out_format=json");
  for (std::string& s : owned) {
    fwd.push_back(s.data());
  }

  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) {
    return 1;
  }

  if (trace) {
    // Self-describing trace artifacts: the drained JSON's otherData names
    // the configuration that produced it, so taos-diag A/B comparisons
    // can't mix up runs.
    obs::SetTraceMetadata("bench", bench_name);
    obs::SetTraceMetadata("lock_backend", LockBackendName(SpinLock::backend()));
    obs::SetTraceMetadata("waitq", WaitqModeFromConfig() ? "waitq" : "classic");
    obs::SetTraceMetadata("global_lock",
                          GlobalLockModeFromEnv() ? "global" : "sharded");
    if (const char* parker = std::getenv("TAOS_WAITQ_PARKER")) {
      obs::SetTraceMetadata("parker", parker);
    }
    obs::SetRecorderEnabled(true);
  }

  const auto t0 = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::Shutdown();

  std::string gbench_json = "null";
  {
    std::ifstream in(gbench_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (buf.str().find_first_not_of(" \t\r\n") != std::string::npos) {
        gbench_json = buf.str();
      }
      in.close();
      std::remove(gbench_path.c_str());
    }
  }

  if (trace) {
    obs::SetRecorderEnabled(false);
    // The benchmark threads have all joined: the system is quiescent, so the
    // drain sees every published event.
    obs::DrainChromeTraceJsonToFile(trace_path);
    std::cerr << "flight recorder drained to " << trace_path << "\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"" << bench_name << "\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"wall_seconds\": " << wall << ",\n"
      // Honesty stamp: contention claims are only meaningful relative to
      // the cores the run actually had, and to the lock core it exercised.
      << "  \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"lock_backend\": \""
      << LockBackendName(SpinLock::backend()) << "\",\n"
      << "  \"global_lock_mode\": "
      << (GlobalLockModeFromEnv() ? "true" : "false") << ",\n"
      << "  \"metrics\": " << obs::ReportJson() << ",\n"
      << "  \"benchmark\": " << gbench_json << "\n"
      << "}\n";
  out.close();
  std::cerr << "report written to " << out_path << "\n";
  return 0;
}

}  // namespace taos::benchmain
