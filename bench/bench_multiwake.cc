// E6 — "It is possible (though unlikely) that Signal will acquire the
// spin-lock while more than one thread is trying to acquire it in Wait; if
// so, Signal will unblock all such threads."
//
// This bench hammers the read-eventcount -> Block window with several
// waiters per signal and reports how often wakeups were "absorbed" (a Wait
// returned from Block without sleeping because a Signal landed in its
// window) — each absorption is an extra thread unblocked by some single
// Signal. The deterministic witness schedules are in the model tests; this
// measures how often the race occurs on real threads.

#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "src/threads/threads.h"

namespace {

void BM_WindowAbsorption(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  taos::Mutex m;
  taos::Condition c;
  std::uint64_t tickets = 0;  // protected by m
  bool stop = false;          // protected by m
  std::atomic<std::uint64_t> consumed{0};

  std::vector<taos::Thread> threads;
  for (int i = 0; i < waiters; ++i) {
    threads.push_back(taos::Thread::Fork([&] {
      taos::Lock lock(m);
      for (;;) {
        while (tickets == 0 && !stop) {
          c.Wait(m);
        }
        if (tickets == 0) {
          return;  // stop
        }
        --tickets;
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }));
  }

  std::uint64_t produced = 0;
  for (auto _ : state) {
    {
      taos::Lock lock(m);
      ++tickets;
      ++produced;
    }
    c.Signal();
  }
  {
    taos::Lock lock(m);
    stop = true;
  }
  c.Broadcast();
  for (taos::Thread& t : threads) {
    t.Join();
  }

  state.counters["absorbed"] = static_cast<double>(c.absorbed_wakeups());
  state.counters["absorbed_per_1k_signals"] =
      produced == 0 ? 0.0
                    : 1000.0 * static_cast<double>(c.absorbed_wakeups()) /
                          static_cast<double>(produced);
  state.counters["nub_signals"] = static_cast<double>(c.nub_signals());
  state.counters["fast_signals"] = static_cast<double>(c.fast_signals());
}
BENCHMARK(BM_WindowAbsorption)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The deliberate stampede: every round parks all N waiters on one condition
// and releases them with a single Broadcast, so the broadcaster dequeues
// and unparks the whole herd inside its Broadcast slice. Run with --trace
// and feed TRACE_multiwake.json to taos-diag: the "broadcast stampedes"
// section should report roughly N threads woken per waking broadcast (E32).
void BM_BroadcastStampede(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  taos::Mutex m;
  taos::Condition c;    // the herd sleeps here, per generation
  taos::Condition ack;  // the broadcaster waits for the round to land
  std::uint64_t gen = 0;  // protected by m
  int awake = 0;          // protected by m
  bool stop = false;      // protected by m

  std::vector<taos::Thread> threads;
  for (int i = 0; i < waiters; ++i) {
    threads.push_back(taos::Thread::Fork([&] {
      taos::Lock lock(m);
      // Start from generation 0, not the current gen: a waiter that forks
      // after the first broadcast must still ack the in-flight round, or
      // the broadcaster waits for an ack that never comes.
      std::uint64_t seen = 0;
      for (;;) {
        while (gen == seen && !stop) {
          c.Wait(m);
        }
        if (stop) {
          return;
        }
        seen = gen;
        if (++awake == waiters) {
          ack.Signal();
        }
      }
    }));
  }

  for (auto _ : state) {
    {
      taos::Lock lock(m);
      ++gen;
      awake = 0;
    }
    c.Broadcast();
    {
      taos::Lock lock(m);
      while (awake < waiters) {
        ack.Wait(m);
      }
    }
  }
  {
    taos::Lock lock(m);
    stop = true;
  }
  c.Broadcast();
  for (taos::Thread& t : threads) {
    t.Join();
  }
  // Per-broadcast slow/fast split lands in the report's metrics block
  // (nub_broadcast / fast_broadcast counters).
  state.counters["waiters"] = static_cast<double>(waiters);
}
BENCHMARK(BM_BroadcastStampede)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("multiwake");
