// E15 — what the verification machinery costs:
//
//   UntracedAcquireRelease   the production fast path (reference)
//   TracedAcquireRelease     spec-tracing mode: every operation linearizes
//                            under the Nub spin-lock and emits its atomic
//                            action into a Trace
//   TraceCheckThroughput     replaying recorded actions through the
//                            executable specification (actions/sec)
//
// Tracing is a mode switch, not a build flag; its cost when OFF is one
// relaxed pointer load per operation (visible as the delta between
// UntracedAcquireRelease here and the pure pair in bench_uncontended —
// i.e. nothing measurable).

#include <benchmark/benchmark.h>

#include "src/spec/checker.h"
#include "src/threads/threads.h"

namespace {

void BM_UntracedAcquireRelease(benchmark::State& state) {
  taos::Mutex m;
  for (auto _ : state) {
    m.Acquire();
    m.Release();
  }
}
BENCHMARK(BM_UntracedAcquireRelease);

void BM_TracedAcquireRelease(benchmark::State& state) {
  taos::spec::Trace trace;
  taos::Nub::Get().SetTrace(&trace);
  taos::Mutex m;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    m.Acquire();
    m.Release();
    if (++ops % 8192 == 0) {
      // Keep the trace from growing without bound during the benchmark.
      state.PauseTiming();
      trace.Clear();
      state.ResumeTiming();
    }
  }
  taos::Nub::Get().SetTrace(nullptr);
  state.counters["actions"] = static_cast<double>(trace.Size());
}
BENCHMARK(BM_TracedAcquireRelease);

void BM_TracedSemaphorePV(benchmark::State& state) {
  taos::spec::Trace trace;
  taos::Nub::Get().SetTrace(&trace);
  taos::Semaphore s;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    s.P();
    s.V();
    if (++ops % 8192 == 0) {
      state.PauseTiming();
      trace.Clear();
      state.ResumeTiming();
    }
  }
  taos::Nub::Get().SetTrace(nullptr);
}
BENCHMARK(BM_TracedSemaphorePV);

void BM_TraceCheckThroughput(benchmark::State& state) {
  // Build a representative trace once: lock rounds with wait/signal pairs.
  std::vector<taos::spec::Action> actions;
  using namespace taos::spec;
  for (int i = 0; i < 200; ++i) {
    actions.push_back(MakeAcquire(1, 1));
    actions.push_back(MakeEnqueue(1, 1, 2));
    actions.push_back(MakeAcquire(2, 1));
    actions.push_back(MakeRelease(2, 1));
    actions.push_back(MakeSignal(2, 2, ThreadSet{1}));
    actions.push_back(MakeResume(1, 1, 2));
    actions.push_back(MakeRelease(1, 1));
  }
  TraceChecker checker;
  std::uint64_t checked = 0;
  for (auto _ : state) {
    CheckResult r = checker.CheckTrace(actions);
    if (!r.ok) {
      state.SkipWithError("trace unexpectedly rejected");
      return;
    }
    checked += r.actions_checked;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
  state.SetLabel("actions checked in items");
}
BENCHMARK(BM_TraceCheckThroughput)->Unit(benchmark::kMicrosecond);

}  // namespace

#include "bench/bench_main.h"
TAOS_BENCH_MAIN("trace");
