// Conformance fuzzing (E12 at scale): random programs × random schedules,
// every serialization checked against the executable specification.

#include "src/model/fuzz.h"

#include <gtest/gtest.h>

namespace taos::model {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, RandomProgramsConformUnderRandomSchedules) {
  ExplorerOptions opts;
  opts.machine.cpus = 3;
  opts.check_traces = true;
  Explorer ex(opts);
  ExplorationResult r =
      ex.ExploreRandom(FuzzProgramLitmus(GetParam()), /*runs=*/300,
                       /*base_seed=*/GetParam() * 1000 + 1);
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.runs, 300u);
}

INSTANTIATE_TEST_SUITE_P(Model, FuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FuzzTest, DfsOnATinyProgramIsCleanToo) {
  FuzzShape shape;
  shape.fibers = 2;
  shape.ops_per_fiber = 3;
  shape.mutexes = 1;
  shape.conditions = 1;
  shape.semaphores = 1;
  ExplorerOptions opts;
  opts.machine.cpus = 2;
  opts.check_traces = true;
  opts.max_runs = 5'000;
  Explorer ex(opts);
  ExplorationResult r = ex.Explore(FuzzProgramLitmus(99, shape));
  EXPECT_EQ(r.violations, 0u) << r.ToString();
}

TEST(FuzzTest, TimeSlicedSchedulesConformToo) {
  ExplorerOptions opts;
  opts.machine.cpus = 2;
  opts.machine.time_slice = 7;  // preemption mixed into the schedules
  opts.check_traces = true;
  Explorer ex(opts);
  ExplorationResult r = ex.ExploreRandom(FuzzProgramLitmus(21), 300, 77);
  EXPECT_EQ(r.violations, 0u) << r.ToString();
}

TEST(FuzzTest, ProgramsAreDeterministicPerSeed) {
  // Same seed + same schedule => same outcome; different seeds differ in
  // step counts somewhere across a handful of schedules.
  ExplorerOptions opts;
  opts.machine.cpus = 2;
  Explorer ex(opts);
  ExplorationResult a1 = ex.ExploreRandom(FuzzProgramLitmus(5), 20, 1);
  ExplorationResult a2 = ex.ExploreRandom(FuzzProgramLitmus(5), 20, 1);
  EXPECT_EQ(a1.completions, a2.completions);
  EXPECT_EQ(a1.deadlocks, a2.deadlocks);
}

}  // namespace
}  // namespace taos::model
