// Model-checking experiments over the simulated Firefly (E6, E7, E8, E12).
//
// Budgets are calibrated so the whole suite runs in tens of seconds on one
// core; "exhausted" is asserted only where the schedule tree is small enough
// to cover fully.

#include "src/model/explorer.h"

#include <gtest/gtest.h>

#include "src/firefly/sync.h"
#include "src/model/litmus.h"

namespace taos::model {
namespace {

ExplorerOptions Opts(int cpus, std::uint64_t max_runs,
                     bool check_traces = false) {
  ExplorerOptions o;
  o.machine.cpus = cpus;
  o.max_runs = max_runs;
  o.check_traces = check_traces;
  return o;
}

// --- Mutual exclusion ---

TEST(ModelTest, MutualExclusionHoldsExhaustively) {
  Explorer ex(Opts(2, 200'000));
  ExplorationResult r = ex.Explore(MutualExclusionLitmus(2, 1));
  EXPECT_TRUE(r.exhausted) << r.ToString();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_GT(r.runs, 1000u);  // the tree is genuinely explored
}

TEST(ModelTest, MutualExclusionThreeFibersSampled) {
  Explorer ex(Opts(3, 10'000));
  ExplorationResult r = ex.Explore(MutualExclusionLitmus(3, 1));
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  ExplorationResult rr = ex.ExploreRandom(MutualExclusionLitmus(3, 1), 2'000);
  EXPECT_EQ(rr.violations, 0u) << rr.ToString();
}

// --- E7: the wakeup-waiting race and the eventcount that closes it ---

TEST(ModelTest, EventcountClosesWakeupWaitingRace) {
  Explorer ex(Opts(2, 30'000));
  ExplorationResult dfs = ex.Explore(WakeupRaceLitmus(true));
  EXPECT_EQ(dfs.violations, 0u) << dfs.ToString();
  ExplorationResult rnd = ex.ExploreRandom(WakeupRaceLitmus(true), 5'000);
  EXPECT_EQ(rnd.violations, 0u) << rnd.ToString();
}

TEST(ModelTest, WithoutEventcountASignalIsLost) {
  Explorer ex(Opts(2, 30'000));
  ExplorationResult r = ex.Explore(WakeupRaceLitmus(false));
  ASSERT_GE(r.violations, 1u) << r.ToString();
  EXPECT_NE(r.first_violation.find("stuck"), std::string::npos)
      << r.first_violation;
  // The counterexample replays deterministically to the same verdict.
  std::string replayed =
      ex.Replay(WakeupRaceLitmus(false), r.counterexample);
  EXPECT_FALSE(replayed.empty());
  EXPECT_EQ(replayed, r.first_violation);
}

TEST(ModelTest, EventcountProtectsAlertWaitToo) {
  Explorer ex(Opts(2, 30'000));
  ExplorationResult good = ex.Explore(AlertWaitWakeupRaceLitmus(true));
  EXPECT_EQ(good.violations, 0u) << good.ToString();
  ExplorationResult bad = ex.Explore(AlertWaitWakeupRaceLitmus(false));
  ASSERT_GE(bad.violations, 1u) << bad.ToString();
  EXPECT_NE(bad.first_violation.find("stuck"), std::string::npos);
}

TEST(ModelTest, AbsorbedWakeupsObservedWithEventcount) {
  Tally tally;
  Explorer ex(Opts(2, 20'000));
  ExplorationResult r = ex.Explore(WakeupRaceLitmus(true, &tally));
  EXPECT_EQ(r.violations, 0u);
  // Some schedules put the signal inside the window; Block then returns
  // immediately instead of sleeping.
  EXPECT_GT(tally.absorbed_wakeups, 0u);
}

// --- E8: Broadcast vs the semaphore-encoded strawman ---

TEST(ModelTest, RealBroadcastWakesEveryWaiter) {
  Explorer ex(Opts(3, 20'000));
  ExplorationResult dfs = ex.Explore(BroadcastLitmus(2));
  EXPECT_EQ(dfs.violations, 0u) << dfs.ToString();
  ExplorationResult rnd = ex.ExploreRandom(BroadcastLitmus(2), 5'000);
  EXPECT_EQ(rnd.violations, 0u) << rnd.ToString();
}

TEST(ModelTest, NaiveSignalWorksForASingleWaiter) {
  // "The one bit in the semaphore c would cover the wakeup-waiting race."
  Explorer ex(Opts(2, 60'000));
  ExplorationResult r = ex.Explore(NaiveSignalLitmus());
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  ExplorationResult rnd = ex.ExploreRandom(NaiveSignalLitmus(), 5'000);
  EXPECT_EQ(rnd.violations, 0u) << rnd.ToString();
}

TEST(ModelTest, NaiveBroadcastLosesAWaiter) {
  // Three processors so both waiters can sit in the Release->P window while
  // the broadcaster runs; its two Vs then collapse into one.
  Explorer ex(Opts(3, 20'000));
  ExplorationResult r = ex.ExploreRandom(NaiveBroadcastLitmus(2), 20'000);
  ASSERT_GE(r.violations, 1u)
      << "expected the strawman broadcast to strand a waiter: "
      << r.ToString();
  EXPECT_NE(r.first_violation.find("DEADLOCK"), std::string::npos)
      << r.first_violation;
}

// --- E6: one Signal may unblock more than one thread ---

TEST(ModelTest, OneSignalCanUnblockSeveralThreads) {
  Tally tally;
  Explorer ex(Opts(3, 10'000));
  ExplorationResult r = ex.ExploreRandom(SignalUnblocksManyLitmus(&tally),
                                         10'000);
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  // Some schedules complete with a single Signal having made two waiters
  // runnable (queue pop + window absorption)...
  EXPECT_GT(tally.multi_unblock_signals, 0u);
  // ...and some schedules legally strand the second waiter (the spec has no
  // liveness clause) — which is exactly why Broadcast exists.
  EXPECT_GT(tally.deadlocks, 0u);
  EXPECT_GT(tally.completions, 0u);
}

// --- Dining philosophers: deadlock discovery and the ordering fix ---

TEST(ModelTest, NaivePhilosophersDeadlock) {
  Explorer ex(Opts(3, 20'000));
  ExplorationResult r =
      ex.ExploreRandom(DiningPhilosophersLitmus(3, /*ordered=*/false),
                       20'000);
  ASSERT_GE(r.violations, 1u) << r.ToString();
  EXPECT_NE(r.first_violation.find("deadlock"), std::string::npos);
}

TEST(ModelTest, OrderedPhilosophersNeverDeadlock) {
  Explorer ex(Opts(3, 30'000));
  ExplorationResult dfs =
      ex.Explore(DiningPhilosophersLitmus(3, /*ordered=*/true));
  EXPECT_EQ(dfs.violations, 0u) << dfs.ToString();
  ExplorationResult rnd = ex.ExploreRandom(
      DiningPhilosophersLitmus(3, /*ordered=*/true), 10'000);
  EXPECT_EQ(rnd.violations, 0u) << rnd.ToString();
}

TEST(ModelTest, TwoPhilosophers) {
  // The minimal instance: random search finds the circular wait quickly;
  // the ordered variant (both want fork 0 first) shows none.
  Explorer ex(Opts(2, 20'000));
  ExplorationResult bad = ex.ExploreRandom(
      DiningPhilosophersLitmus(2, /*ordered=*/false), 20'000);
  EXPECT_GE(bad.violations, 1u) << bad.ToString();

  ExplorationResult good = ex.ExploreRandom(
      DiningPhilosophersLitmus(2, /*ordered=*/true), 10'000);
  EXPECT_EQ(good.violations, 0u) << good.ToString();
}

// --- Queue-lock timeout cancellation: the rule-3 analogue for MCS ---

TEST(ModelTest, McsSafeAbandonKeepsTheLockAliveExhaustively) {
  Tally tally;
  Explorer ex(Opts(2, 60'000));
  ExplorationResult r = ex.Explore(McsTimeoutAbandonLitmus(true, &tally));
  EXPECT_TRUE(r.exhausted) << r.ToString();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  // Both sides of the race genuinely occur across the schedule tree: the
  // abandon CAS winning, and the grant landing first (forcing the timed-out
  // waiter to accept and pass on the lock).
  EXPECT_GT(tally.timeout_abandons, 0u);
  EXPECT_GT(tally.timeout_grant_races, 0u);
}

TEST(ModelTest, McsBlindAbandonLosesAHandoff) {
  Explorer ex(Opts(2, 60'000));
  ExplorationResult r = ex.Explore(McsTimeoutAbandonLitmus(false));
  ASSERT_GE(r.violations, 1u)
      << "expected the blind abandon to erase a grant: " << r.ToString();
  EXPECT_NE(r.first_violation.find("lost handoff"), std::string::npos)
      << r.first_violation;
  // The counterexample replays deterministically to the same verdict.
  std::string replayed =
      ex.Replay(McsTimeoutAbandonLitmus(false), r.counterexample);
  EXPECT_EQ(replayed, r.first_violation);
}

// --- Multi-object wait: double grant and the deregistration window ---

TEST(ModelTest, PollNotifyOnlyConservesPulsesExhaustively) {
  // The shipped protocol: Set only notifies; the waiter's own exchange
  // consumes. Every schedule of two concurrent Sets against one WaitAny
  // scan conserves both pulses.
  Tally tally;
  Explorer ex(Opts(3, 60'000));
  ExplorationResult r = ex.Explore(PollDoubleGrantLitmus(true, &tally));
  EXPECT_TRUE(r.exhausted) << r.ToString();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  // The interesting window — both Sets racing the same parked wait — is
  // genuinely reached across the schedule tree.
  EXPECT_GT(tally.poll_concurrent_sets, 0u);
}

TEST(ModelTest, PollGranterSideConsumptionDoubleGrants) {
  Explorer ex(Opts(3, 60'000));
  ExplorationResult r = ex.Explore(PollDoubleGrantLitmus(false));
  ASSERT_GE(r.violations, 1u)
      << "expected handoff-style Set to destroy a pulse: " << r.ToString();
  EXPECT_NE(r.first_violation.find("double grant"), std::string::npos)
      << r.first_violation;
  std::string replayed =
      ex.Replay(PollDoubleGrantLitmus(false), r.counterexample);
  EXPECT_EQ(replayed, r.first_violation);
}

TEST(ModelTest, PollSafeCancelSurvivesDeregRaceExhaustively) {
  Tally tally;
  Explorer ex(Opts(2, 60'000));
  ExplorationResult r = ex.Explore(PollDeregLostWakeupLitmus(true, &tally));
  EXPECT_TRUE(r.exhausted) << r.ToString();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  // Both sides of the race occur: the cancel CAS winning cleanly, and the
  // notification landing first (forcing the re-publish).
  EXPECT_GT(tally.poll_dereg_lost_to_resume, 0u);
  EXPECT_LT(tally.poll_dereg_lost_to_resume, tally.completions);
}

TEST(ModelTest, PollBlindCancelLosesAWakeup) {
  Explorer ex(Opts(2, 60'000));
  ExplorationResult r = ex.Explore(PollDeregLostWakeupLitmus(false));
  ASSERT_GE(r.violations, 1u)
      << "expected the blind cancel to erase a delivered pulse: "
      << r.ToString();
  EXPECT_NE(r.first_violation.find("lost wakeup"), std::string::npos)
      << r.first_violation;
  std::string replayed =
      ex.Replay(PollDeregLostWakeupLitmus(false), r.counterexample);
  EXPECT_EQ(replayed, r.first_violation);
}

// --- Rwlock: reader preference is safe but starves writers ---

TEST(ModelTest, RwReaderPreferenceSafeExhaustively) {
  // Small instance: one reader, one writer — full DFS shows no schedule
  // overlaps a reader with the writer.
  Explorer ex(Opts(2, 150'000));
  ExplorationResult r = ex.Explore(RwWriterStarvationLitmus(1, 1));
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_GT(r.runs, 100u);
}

TEST(ModelTest, RwWriterStarvedByReaderStream) {
  Tally tally;
  Explorer ex(Opts(3, 20'000));
  ExplorationResult r =
      ex.ExploreRandom(RwWriterStarvationLitmus(2, 2, &tally), 6'000);
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(tally.deadlocks, 0u);
  // Schedules exist where readers are admitted past the already-waiting
  // writer — the starvation mechanism; the writer escapes only because the
  // reader stream is finite.
  EXPECT_GT(tally.readers_admitted_past_writer, 0u);
  EXPECT_EQ(tally.writer_acquisitions, tally.completions);
}

// --- Alert scenarios ---

TEST(ModelTest, AlertWaitRaceAlwaysTerminates) {
  Tally tally;
  Explorer ex(Opts(3, 20'000));
  ExplorationResult r =
      ex.ExploreRandom(AlertWaitRaceLitmus(&tally), 5'000);
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  // Both exits occur across schedules: the spec's RETURNS/RAISES choices
  // are genuinely both exercised.
  EXPECT_GT(tally.normal_exits, 0u);
  EXPECT_GT(tally.alerted_exits, 0u);
}

TEST(ModelTest, AlertPExhaustiveBothOutcomes) {
  Tally tally;
  Explorer ex(Opts(2, 60'000));
  ExplorationResult r = ex.Explore(AlertPRaceLitmus(&tally));
  EXPECT_TRUE(r.exhausted) << r.ToString();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_GT(tally.normal_exits, 0u);
  EXPECT_GT(tally.alerted_exits, 0u);
}

// --- The Greg Nelson AlertWait bug, reproduced through the checker ---
//
// The implementation follows the corrected semantics (the Alerted exit
// deletes SELF from c). Replaying its traces against the corrected spec
// accepts every schedule; replaying the same program against the spec as
// first released (UNCHANGED [c] on the raising exit) leaves the raised
// waiter in c as a ghost, and the schedules where a Signal lands after the
// Alerted exit fail that Signal's ENSURES — exactly the error report in the
// paper's Discussion section.

TEST(ModelTest, AlertWaitGhostConformsToCorrectedSpec) {
  Tally tally;
  Explorer ex(Opts(3, 30'000, /*check_traces=*/true));
  ExplorationResult r = ex.ExploreRandom(AlertWaitGhostLitmus(&tally), 6'000);
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  // Both exits genuinely occur, so the ghost path is really being explored.
  EXPECT_GT(tally.alerted_exits, 0u);
  EXPECT_GT(tally.normal_exits, 0u);
}

TEST(ModelTest, OriginalBuggySpecRejectsSignalAfterAlertedExit) {
  ExplorerOptions opts = Opts(3, 30'000, /*check_traces=*/true);
  opts.spec_config.alert_wait = spec::AlertWaitVariant::kOriginalBuggy;
  Explorer ex(opts);
  ExplorationResult r = ex.ExploreRandom(AlertWaitGhostLitmus(nullptr), 6'000);
  ASSERT_GE(r.violations, 1u)
      << "expected the ghost member to break a later Signal: " << r.ToString();
  EXPECT_NE(r.first_violation.find("spec violation"), std::string::npos)
      << r.first_violation;
  // The counterexample replays deterministically to the same verdict.
  std::string replayed = ex.Replay(AlertWaitGhostLitmus(nullptr),
                                   r.counterexample);
  EXPECT_EQ(replayed, r.first_violation);
}

// --- The AlertP RETURNS/RAISES overlap, isolated ---

TEST(ModelTest, AlertPOverlapAllowedByReleasedSpec) {
  Tally tally;
  Explorer ex(Opts(2, 60'000, /*check_traces=*/true));
  ExplorationResult r = ex.Explore(AlertPOverlapLitmus(&tally));
  EXPECT_TRUE(r.exhausted) << r.ToString();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  // Some schedules hit the overlap: AlertP returned with the alert pending,
  // i.e. both WHEN clauses held and the implementation chose RETURNS.
  EXPECT_GT(tally.returns_with_alert_pending, 0u);
  EXPECT_EQ(tally.alerted_exits, 0u);  // available semaphore: never raises
}

TEST(ModelTest, PreReleasePolicyFlagsTheOverlapChoice) {
  // The pre-release spec made the choice deterministic ("must raise when an
  // alert is pending"); the implementation's test-and-set fast path does
  // not, which is why the released spec legitimized the nondeterminism.
  ExplorerOptions opts = Opts(2, 60'000, /*check_traces=*/true);
  opts.spec_config.alert_choice = spec::AlertChoicePolicy::kPreferAlerted;
  Explorer ex(opts);
  ExplorationResult r = ex.Explore(AlertPOverlapLitmus(nullptr));
  ASSERT_GE(r.violations, 1u) << r.ToString();
  EXPECT_NE(r.first_violation.find("policy"), std::string::npos)
      << r.first_violation;
}

TEST(ModelTest, SemaphoreHandoffExhaustive) {
  Explorer ex(Opts(2, 60'000));
  ExplorationResult r = ex.Explore(SemaphoreHandoffLitmus());
  EXPECT_TRUE(r.exhausted) << r.ToString();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
}

// --- A derived component, model-checked: a barrier from Mutex+Condition ---

class SimBarrierLitmus : public LitmusTest {
 public:
  explicit SimBarrierLitmus(int parties) : parties_(parties) {}

  void Setup(firefly::Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    for (int p = 0; p < parties_; ++p) {
      machine.Fork(
          [this, &machine] {
            machine.Step();
            ++before_;
            ArriveAndWait(machine);
            // After release, every party must have arrived.
            if (before_ != parties_) {
              tear_ = true;
            }
            machine.Step();
          },
          /*priority=*/0, "party");
    }
  }

  std::string Verify(const firefly::RunResult& result) override {
    if (!result.completed) {
      return "barrier stuck: " + result.ToString();
    }
    if (tear_) {
      return "a party got through before everyone arrived";
    }
    return "";
  }

 private:
  void ArriveAndWait(firefly::Machine& machine) {
    mu_->Acquire();
    machine.Step();
    if (++waiting_ == parties_) {
      released_ = true;
      mu_->Release();
      cv_->Broadcast();
      return;
    }
    while (!released_) {
      cv_->Wait(*mu_);
    }
    mu_->Release();
  }

  const int parties_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  int waiting_ = 0;
  int before_ = 0;
  bool released_ = false;
  bool tear_ = false;
};

TEST(ModelTest, BarrierReleasesEveryoneTogether) {
  ExplorerOptions opts = Opts(3, 15'000, /*check_traces=*/true);
  Explorer ex(opts);
  ExplorationResult dfs = ex.Explore(
      [] { return std::make_unique<SimBarrierLitmus>(2); });
  EXPECT_EQ(dfs.violations, 0u) << dfs.ToString();
  ExplorationResult rnd = ex.ExploreRandom(
      [] { return std::make_unique<SimBarrierLitmus>(3); }, 3'000);
  EXPECT_EQ(rnd.violations, 0u) << rnd.ToString();
}

// --- Liveness under fairness (outside the spec, promised by the code) ---

TEST(ModelTest, LivenessUnderRoundRobinScheduling) {
  // The spec "cannot be used to prove that anything must happen" (the paper
  // on its own AlertWait bug). The implementation, however, is live under a
  // weakly fair scheduler: these programs, which can deadlock-free-ly
  // complete, do complete when every runnable fiber keeps stepping.
  struct Scenario {
    const char* name;
    LitmusFactory factory;
  };
  const Scenario scenarios[] = {
      {"mutex", MutualExclusionLitmus(3, 2)},
      {"race", WakeupRaceLitmus(true)},
      {"broadcast", BroadcastLitmus(3)},
      {"handoff", SemaphoreHandoffLitmus()},
      {"philosophers", DiningPhilosophersLitmus(3, /*ordered=*/true)},
  };
  for (const Scenario& s : scenarios) {
    firefly::RoundRobinChooser rr;
    firefly::MachineConfig cfg;
    cfg.cpus = 2;
    cfg.chooser = &rr;
    firefly::Machine machine(cfg);
    std::unique_ptr<LitmusTest> test = s.factory();
    test->Setup(machine);
    firefly::RunResult run = machine.Run();
    const std::string verdict = test->Verify(run);
    EXPECT_TRUE(run.completed) << s.name << ": " << run.ToString();
    EXPECT_EQ(verdict, "") << s.name << ": " << verdict;
  }
}

// --- E12: every explored interleaving's serialization satisfies the spec ---

class TraceConformance
    : public ::testing::TestWithParam<std::tuple<const char*, int, bool>> {};

TEST_P(TraceConformance, AllInterleavingsConform) {
  const auto& [name, cpus, random] = GetParam();
  LitmusFactory factory;
  if (std::string(name) == "mutex") {
    factory = MutualExclusionLitmus(2, 1);
  } else if (std::string(name) == "race") {
    factory = WakeupRaceLitmus(true);
  } else if (std::string(name) == "sigmany") {
    factory = SignalUnblocksManyLitmus(nullptr);
  } else if (std::string(name) == "alertwait") {
    factory = AlertWaitRaceLitmus(nullptr);
  } else if (std::string(name) == "alertp") {
    factory = AlertPRaceLitmus(nullptr);
  } else {
    factory = SemaphoreHandoffLitmus();
  }
  Explorer ex(Opts(cpus, 8'000, /*check_traces=*/true));
  ExplorationResult r =
      random ? ex.ExploreRandom(factory, 3'000) : ex.Explore(factory);
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_GT(r.runs, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Model, TraceConformance,
    ::testing::Values(std::make_tuple("mutex", 2, false),
                      std::make_tuple("race", 2, false),
                      std::make_tuple("race", 2, true),
                      std::make_tuple("sigmany", 3, true),
                      std::make_tuple("alertwait", 3, true),
                      std::make_tuple("alertp", 2, false),
                      std::make_tuple("handoff", 2, false)));

}  // namespace
}  // namespace taos::model
