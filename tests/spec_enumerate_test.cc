// Exhaustive exploration of the specification's own state space (E9
// systematically): invariants over every reachable state, for both the
// corrected and the originally released AlertWait semantics.

#include "src/spec/enumerate.h"

#include <gtest/gtest.h>

namespace taos::spec {
namespace {

Universe SmallUniverse(int threads) {
  Universe u;
  for (int t = 1; t <= threads; ++t) {
    u.threads.push_back(static_cast<ThreadId>(t));
  }
  u.mutexes = {1};
  u.conditions = {2};
  u.semaphores = {3};
  return u;
}

TEST(SpecEnumerateTest, InitialSuccessorsAreTheExpectedMenu) {
  SpecEnumerator e(SmallUniverse(1));
  WorldState init;
  auto succ = e.Successors(init);
  // Thread 1, everything idle: Acquire, Signal({}), Broadcast({}), P, V,
  // AlertPReturns, Alert(self), TestAlert(false). Release/Enqueue need the
  // mutex; AlertPRaises needs a pending alert; Resume needs a pending wait.
  std::set<ActionKind> kinds;
  for (const auto& [a, w] : succ) {
    kinds.insert(a.kind);
  }
  EXPECT_TRUE(kinds.count(ActionKind::kAcquire));
  EXPECT_TRUE(kinds.count(ActionKind::kSignal));
  EXPECT_TRUE(kinds.count(ActionKind::kBroadcast));
  EXPECT_TRUE(kinds.count(ActionKind::kP));
  EXPECT_TRUE(kinds.count(ActionKind::kV));
  EXPECT_TRUE(kinds.count(ActionKind::kAlertPReturns));
  EXPECT_TRUE(kinds.count(ActionKind::kAlert));
  EXPECT_TRUE(kinds.count(ActionKind::kTestAlert));
  EXPECT_FALSE(kinds.count(ActionKind::kRelease));
  EXPECT_FALSE(kinds.count(ActionKind::kEnqueue));
  EXPECT_FALSE(kinds.count(ActionKind::kResume));
  EXPECT_FALSE(kinds.count(ActionKind::kAlertPRaises));
}

TEST(SpecEnumerateTest, PendingThreadMayOnlyResume) {
  SpecEnumerator e(SmallUniverse(1));
  WorldState w;
  w.state.SetCondition(2, ThreadSet{1});
  w.pending[1] = {PendingWait::Kind::kWait, 1, 2};
  auto succ = e.Successors(w);
  // Still a member of c: Resume's WHEN (SELF NOT-IN c) blocks it, and
  // COMPOSITION OF forbids everything else — the thread is stuck until
  // some other thread signals. With one thread: no successors at all.
  EXPECT_TRUE(succ.empty());

  // After a signal removed it, exactly the Resume is possible.
  WorldState w2 = w;
  w2.state.SetCondition(2, ThreadSet{});
  auto succ2 = e.Successors(w2);
  ASSERT_EQ(succ2.size(), 1u);
  EXPECT_EQ(succ2[0].first.kind, ActionKind::kResume);
}

TEST(SpecEnumerateTest, AlertResumeOffersBothOutcomesWhenBothEnabled) {
  SpecEnumerator nondet(SmallUniverse(1));
  WorldState w;
  w.state.alerts = ThreadSet{1};
  w.state.SetCondition(2, ThreadSet{});  // signalled away: RETURNS enabled
  w.pending[1] = {PendingWait::Kind::kAlertWait, 1, 2};
  auto succ = nondet.Successors(w);
  std::set<ActionKind> kinds;
  for (const auto& [a, s] : succ) {
    kinds.insert(a.kind);
  }
  EXPECT_TRUE(kinds.count(ActionKind::kAlertResumeReturns));
  EXPECT_TRUE(kinds.count(ActionKind::kAlertResumeRaises));

  // The pre-release policy forbids the normal return when alerted.
  SpecEnumerator strict(SmallUniverse(1),
                        SpecConfig{AlertWaitVariant::kCorrected,
                                   AlertChoicePolicy::kPreferAlerted});
  auto strict_succ = strict.Successors(w);
  std::set<ActionKind> strict_kinds;
  for (const auto& [a, s] : strict_succ) {
    strict_kinds.insert(a.kind);
  }
  EXPECT_FALSE(strict_kinds.count(ActionKind::kAlertResumeReturns));
  EXPECT_TRUE(strict_kinds.count(ActionKind::kAlertResumeRaises));
}

TEST(SpecEnumerateTest, TimeoutsAddAnExitOnlyWhenModelled) {
  // A pending waiter still in c is stuck by default (Resume's WHEN blocks
  // it); with model_timeouts the timer offers TimeoutResume as the way out.
  WorldState w;
  w.state.SetCondition(2, ThreadSet{1});
  w.pending[1] = {PendingWait::Kind::kWait, 1, 2};

  SpecEnumerator off(SmallUniverse(1));
  EXPECT_TRUE(off.Successors(w).empty());

  SpecEnumerator on(SmallUniverse(1),
                    SpecConfig{AlertWaitVariant::kCorrected,
                               AlertChoicePolicy::kNondeterministic,
                               /*model_timeouts=*/true});
  auto succ = on.Successors(w);
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0].first.kind, ActionKind::kTimeoutResume);
  // The action re-took the mutex and removed the waiter from c itself.
  EXPECT_EQ(succ[0].second.state.Mutex(1), 1);
  EXPECT_TRUE(succ[0].second.state.Condition(2).Empty());
  EXPECT_EQ(succ[0].second.pending.at(1).kind, PendingWait::Kind::kNone);
}

TEST(SpecEnumerateTest, ModelTimeoutsKeepsNoGhostsAndGrowsTheSpace) {
  // The timeout transitions respect the same invariants, and strictly
  // enlarge the reachable space; with them off, the baseline counts the
  // other tests assume are untouched.
  SpecEnumerator base(SmallUniverse(2));
  SpecExploreResult rb = base.Explore(NoGhostMembers);
  SpecEnumerator timed(SmallUniverse(2),
                       SpecConfig{AlertWaitVariant::kCorrected,
                                  AlertChoicePolicy::kNondeterministic,
                                  /*model_timeouts=*/true});
  SpecExploreResult rt = timed.Explore(NoGhostMembers);
  EXPECT_TRUE(rt.complete) << rt.ToString();
  EXPECT_TRUE(rt.invariant_ok) << rt.ToString();
  EXPECT_GE(rt.states, rb.states);
}

TEST(SpecEnumerateTest, CorrectedSpecHasNoGhostsTwoThreads) {
  SpecEnumerator e(SmallUniverse(2));
  SpecExploreResult r = e.Explore(NoGhostMembers);
  EXPECT_TRUE(r.complete) << r.ToString();
  EXPECT_TRUE(r.invariant_ok) << r.ToString();
  EXPECT_GT(r.states, 100u);
}

TEST(SpecEnumerateTest, CorrectedSpecHasNoGhostsThreeThreads) {
  SpecEnumerator e(SmallUniverse(3));
  SpecExploreResult r = e.Explore(NoGhostMembers);
  EXPECT_TRUE(r.complete) << r.ToString();
  EXPECT_TRUE(r.invariant_ok) << r.ToString();
  EXPECT_GT(r.states, 1000u);
}

TEST(SpecEnumerateTest, BuggySpecReachesGhostStates) {
  SpecEnumerator e(SmallUniverse(2),
                   SpecConfig{AlertWaitVariant::kOriginalBuggy,
                              AlertChoicePolicy::kNondeterministic});
  SpecExploreResult r = e.Explore(NoGhostMembers);
  EXPECT_FALSE(r.invariant_ok) << r.ToString();
  EXPECT_NE(r.violation.find("ghost"), std::string::npos) << r.violation;
  // The ghost state: some thread is in c with no pending wait — exactly
  // "c could contain threads that were no longer blocked on the condition
  // variable" (the paper's description of the bug).
  bool found_ghost = false;
  for (const auto& [cid, members] : r.bad_state.state.conditions) {
    for (ThreadId t : members.elements()) {
      if (!r.bad_state.Blocked(t)) {
        found_ghost = true;
      }
    }
  }
  EXPECT_TRUE(found_ghost);
}

TEST(SpecEnumerateTest, HolderNeverBlockedEitherVariant) {
  for (AlertWaitVariant variant :
       {AlertWaitVariant::kCorrected, AlertWaitVariant::kOriginalBuggy}) {
    SpecEnumerator e(SmallUniverse(2),
                     SpecConfig{variant,
                                AlertChoicePolicy::kNondeterministic});
    SpecExploreResult r = e.Explore(HolderNotBlocked);
    EXPECT_TRUE(r.complete) << r.ToString();
    EXPECT_TRUE(r.invariant_ok) << r.ToString();
  }
}

TEST(SpecEnumerateTest, StateCountsDifferAcrossVariants) {
  // The buggy spec's ghosts enlarge the reachable space.
  SpecEnumerator corrected(SmallUniverse(2));
  SpecEnumerator buggy(SmallUniverse(2),
                       SpecConfig{AlertWaitVariant::kOriginalBuggy,
                                  AlertChoicePolicy::kNondeterministic});
  auto always_ok = [](const WorldState&) { return std::string(); };
  SpecExploreResult rc = corrected.Explore(always_ok);
  SpecExploreResult rb = buggy.Explore(always_ok);
  EXPECT_TRUE(rc.complete);
  EXPECT_TRUE(rb.complete);
  EXPECT_GT(rb.states, rc.states)
      << "corrected: " << rc.ToString() << " buggy: " << rb.ToString();
}

TEST(SpecEnumerateTest, KeyIsCanonical) {
  WorldState a;
  a.state.SetMutex(1, 5);
  a.state.SetMutex(1, kNil);  // touch and restore
  WorldState b;
  EXPECT_EQ(a.Key(), b.Key());

  a.pending[3] = {};  // an explicit kNone is not encoded
  EXPECT_EQ(a.Key(), b.Key());
}

TEST(SpecEnumerateTest, EventUniverseOffersTheSetGatedMenu) {
  Universe u;
  u.threads = {1};
  u.events = {7, 8};
  SpecEnumerator e(u);
  WorldState init;  // both events reset
  std::set<ActionKind> kinds;
  for (const auto& [a, w] : e.Successors(init)) {
    kinds.insert(a.kind);
  }
  // Set/Reset have no WHEN; the waits are gated on a set member.
  EXPECT_TRUE(kinds.count(ActionKind::kEventSet));
  EXPECT_TRUE(kinds.count(ActionKind::kEventReset));
  EXPECT_FALSE(kinds.count(ActionKind::kEventWait));
  EXPECT_FALSE(kinds.count(ActionKind::kEventConsume));
  EXPECT_FALSE(kinds.count(ActionKind::kPollAny));
  EXPECT_FALSE(kinds.count(ActionKind::kPollAll));

  WorldState one;
  one.state.SetEvent(7, true);
  std::set<ActionKind> one_kinds;
  bool poll_all_over_both = false;
  for (const auto& [a, w] : e.Successors(one)) {
    one_kinds.insert(a.kind);
    if (a.kind == ActionKind::kPollAll && a.wait_set.Size() == 2) {
      poll_all_over_both = true;
    }
  }
  // One member set: the existential waits open, the universal over {7,8}
  // stays shut (it appears only as the singleton {7}).
  EXPECT_TRUE(one_kinds.count(ActionKind::kEventWait));
  EXPECT_TRUE(one_kinds.count(ActionKind::kEventConsume));
  EXPECT_TRUE(one_kinds.count(ActionKind::kPollAny));
  EXPECT_TRUE(one_kinds.count(ActionKind::kPollAll));
  EXPECT_FALSE(poll_all_over_both);
}

TEST(SpecEnumerateTest, EventUniverseExhaustsWithPulsesConserved) {
  // One thread, two events: every reachable state keeps each event boolean
  // (trivially) and, more interestingly, every PollAny/PollAll edge the
  // enumerator takes passes the checker's witness obligations — Explore
  // applies Check on every transition, so completing without a violation
  // IS the theorem.
  Universe u;
  u.threads = {1, 2};
  u.events = {7, 8};
  SpecEnumerator e(u);
  auto always_ok = [](const WorldState&) { return std::string(); };
  SpecExploreResult r = e.Explore(always_ok);
  EXPECT_TRUE(r.complete) << r.ToString();
  EXPECT_TRUE(r.invariant_ok) << r.ToString();
  // 2 booleans x alert flags etc.: small but non-trivial.
  EXPECT_GT(r.states, 4u);
}

TEST(SpecEnumerateTest, ExplorationRespectsBound) {
  SpecEnumerator e(SmallUniverse(3));
  auto always_ok = [](const WorldState&) { return std::string(); };
  SpecExploreResult r = e.Explore(always_ok, /*max_states=*/50);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.states, 50u);
}

}  // namespace
}  // namespace taos::spec
