// The Reed-Kanodia eventcount/sequencer discipline ([Reed 77], the paper's
// source for the condition variable's eventcount).

#include "src/baseline/reed_kanodia.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"

namespace taos::baseline {
namespace {

TEST(EventCountRKTest, AwaitPastValueReturnsImmediately) {
  WaitableEventCount ec;
  ec.Await(0);  // trivially satisfied
  ec.Advance();
  ec.Advance();
  ec.Await(1);
  ec.Await(2);
  EXPECT_EQ(ec.Read(), 2u);
}

TEST(EventCountRKTest, AwaitBlocksUntilAdvance) {
  WaitableEventCount ec;
  std::atomic<bool> resumed{false};
  Thread waiter = Thread::Fork([&] {
    ec.Await(3);
    resumed.store(true, std::memory_order_release);
  });
  ec.Advance();
  ec.Advance();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(resumed.load(std::memory_order_acquire));
  ec.Advance();  // reaches 3
  waiter.Join();
  EXPECT_TRUE(resumed.load(std::memory_order_acquire));
}

TEST(EventCountRKTest, ManyAwaitersDifferentThresholds) {
  WaitableEventCount ec;
  constexpr int kWaiters = 6;
  std::atomic<int> resumed{0};
  std::vector<Thread> waiters;
  for (int i = 1; i <= kWaiters; ++i) {
    waiters.push_back(Thread::Fork([&ec, &resumed, i] {
      ec.Await(static_cast<std::uint64_t>(i));
      resumed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (int i = 0; i < kWaiters; ++i) {
    ec.Advance();  // each advance satisfies exactly one more threshold
  }
  for (Thread& w : waiters) {
    w.Join();
  }
  EXPECT_EQ(resumed.load(), kWaiters);
}

TEST(SequencerTest, TicketsDenseAndUnique) {
  Sequencer seq;
  constexpr int kThreads = 6;
  constexpr int kEach = 3000;
  std::vector<std::uint8_t> seen(kThreads * kEach, 0);
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < kEach; ++i) {
        const Sequencer::Ticket ticket = seq.NextTicket();
        ASSERT_LT(ticket, seen.size());
        seen[ticket] = 1;  // each slot written exactly once across threads
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "ticket " << i;
  }
}

TEST(EventcountMutexTest, MutualExclusion) {
  EventcountMutex lock;
  std::int64_t counter = 0;
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.Acquire();
        ++counter;
        lock.Release();
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(EventcountMutexTest, StrictFifoOrder) {
  // Tickets order the critical sections exactly: with the lock held, queue
  // up three threads and observe them enter in ticket order.
  EventcountMutex lock;
  lock.Acquire();
  std::vector<int> order;
  Mutex order_m;
  std::vector<Thread> threads;
  std::atomic<int> started{0};
  for (int i = 0; i < 3; ++i) {
    threads.push_back(Thread::Fork([&, i] {
      started.fetch_add(1);
      lock.Acquire();
      {
        Lock g(order_m);
        order.push_back(i);
      }
      lock.Release();
    }));
    // Serialize ticket acquisition: wait until thread i has started (its
    // first action is taking a ticket inside Acquire).
    while (started.load() <= i) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  lock.Release();
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(RKBufferTest, SingleProducerSingleConsumerExact) {
  RKBoundedBuffer buffer(4);
  constexpr std::uint64_t kItems = 20000;
  std::uint64_t sum = 0;
  Thread producer = Thread::Fork([&] {
    for (std::uint64_t i = 1; i <= kItems; ++i) {
      buffer.Put(i);
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    sum += buffer.Get();
  }
  producer.Join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

TEST(RKBufferTest, PreservesFifoOrder) {
  RKBoundedBuffer buffer(2);
  Thread producer = Thread::Fork([&] {
    for (std::uint64_t i = 1; i <= 500; ++i) {
      buffer.Put(i);
    }
  });
  for (std::uint64_t i = 1; i <= 500; ++i) {
    ASSERT_EQ(buffer.Get(), i);
  }
  producer.Join();
}

class RKBufferCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(RKBufferCapacitySweep, DeliversEverything) {
  RKBoundedBuffer buffer(static_cast<std::size_t>(GetParam()));
  constexpr std::uint64_t kItems = 3000;
  std::uint64_t sum = 0;
  Thread producer = Thread::Fork([&] {
    for (std::uint64_t i = 1; i <= kItems; ++i) {
      buffer.Put(i);
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    sum += buffer.Get();
  }
  producer.Join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Baseline, RKBufferCapacitySweep,
                         ::testing::Values(1, 2, 3, 8, 64));

}  // namespace
}  // namespace taos::baseline
