// Unit tests for the waiter-queue substrate (src/waitq): the Parker permit
// discipline on both backends, the WaitCell state machine (install / resume
// / cancel / immediate grant), FIFO resume order across segment boundaries,
// cancelled-cell skipping, segment retirement under churn, and a lock-free
// MPSC stress run pairing real parks with real unparks.

#include "src/waitq/waitq.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/waitq/parker.h"

namespace taos::waitq {
namespace {

using obs::Counter;
using obs::Snapshot;
using obs::Stats;

std::uint64_t Delta(const Stats& before, const Stats& after, Counter c) {
  return after.Count(c) - before.Count(c);
}

class ParkerBackendTest : public ::testing::TestWithParam<Parker::Backend> {};

TEST_P(ParkerBackendTest, PermitDepositedBeforeParkIsConsumed) {
  Parker p(GetParam());
  p.Unpark();
  p.Park();  // must not block: the permit was waiting
}

TEST_P(ParkerBackendTest, UnparkWakesParkedThread) {
  Parker p(GetParam());
  std::atomic<bool> woke{false};
  std::thread t([&] {
    p.Park();
    woke.store(true, std::memory_order_release);
  });
  // No handshake needed: whether Unpark lands before or after the Park
  // starts sleeping, the permit discipline delivers exactly one wakeup.
  p.Unpark();
  t.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST_P(ParkerBackendTest, PingPongHandsOffRepeatedly) {
  Parker ping(GetParam());
  Parker pong(GetParam());
  constexpr int kRounds = 10000;
  std::thread t([&] {
    for (int i = 0; i < kRounds; ++i) {
      ping.Park();
      pong.Unpark();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    ping.Unpark();
    pong.Park();
  }
  t.join();
}

// A spurious wakeup (the kernel or the C++ runtime waking the sleeper with
// no permit deposited) must put the thread back to sleep, never let Park
// return. SpuriousWakeForDebug pokes the underlying futex/condvar directly.
TEST_P(ParkerBackendTest, SpuriousWakeupsDoNotForgeAPermit) {
  Parker p(GetParam());
  const Counter waits = GetParam() == Parker::Backend::kFutex
                            ? Counter::kParkFutexWaits
                            : Counter::kParkCondvarWaits;
  std::atomic<bool> returned{false};
  const Stats before = Snapshot();
  std::thread t([&] {
    p.Park();
    returned.store(true, std::memory_order_release);
  });
  // Keep injecting until the sleeper has demonstrably slept at least three
  // times — i.e. it absorbed at least two spurious wakeups by re-checking
  // the permit word and going back down.
  for (int i = 0; i < 4000 && Delta(before, Snapshot(), waits) < 3; ++i) {
    p.SpuriousWakeForDebug();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_GE(Delta(before, Snapshot(), waits), 3u);
  EXPECT_FALSE(returned.load(std::memory_order_acquire))
      << "Park returned without a permit";
  p.Unpark();
  t.join();
  EXPECT_TRUE(returned.load(std::memory_order_acquire));
}

// Same discipline on the timed path: spurious wakeups neither end the wait
// early nor turn it into a timeout; the one real Unpark does.
TEST_P(ParkerBackendTest, SpuriousWakeupsDoNotEndATimedParkEarly) {
  Parker p(GetParam());
  std::atomic<int> outcome{-1};
  std::thread t([&] {
    outcome.store(p.ParkUntil(obs::NowNanos() + 2'000'000'000ull) ? 1 : 0,
                  std::memory_order_release);
  });
  for (int i = 0; i < 50; ++i) {
    p.SpuriousWakeForDebug();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(outcome.load(std::memory_order_acquire), -1)
      << "timed park ended on a spurious wakeup";
  p.Unpark();
  t.join();
  EXPECT_EQ(outcome.load(std::memory_order_acquire), 1);
}

// Regression for the CondvarPark ordering fix: the permit store must happen
// under mu_ (with the notify after), or an Unpark landing in the waiter's
// check-to-sleep window is published after the check but notifies before
// the sleep — a lost wakeup. Swept here by staggering the Unpark across
// that window a few thousand times; run on both backends (the futex word
// protocol has the same window between the kParked CAS and FUTEX_WAIT).
// A lost wakeup surfaces as ParkUntil timing out despite the Unpark.
TEST_P(ParkerBackendTest, UnparkInTheCheckToSleepWindowIsNeverLost) {
  Parker p(GetParam());
  constexpr int kRounds = 4000;
  std::atomic<int> completed{0};
  std::atomic<bool> all_notified{true};
  std::thread waiter([&] {
    for (int i = 0; i < kRounds; ++i) {
      if (!p.ParkUntil(obs::NowNanos() + 10'000'000'000ull)) {
        all_notified.store(false, std::memory_order_relaxed);
      }
      completed.store(i + 1, std::memory_order_release);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    // Variable stagger: some Unparks land before the waiter reaches the
    // permit check, some inside the window, some after it is asleep.
    std::atomic<int> stagger{(i * 7) % 120};
    while (stagger.fetch_sub(1, std::memory_order_relaxed) > 0) {
    }
    if (i % 16 == 0) {
      std::this_thread::yield();
    }
    p.Unpark();
    // One permit at a time: the next Unpark only after this one is consumed.
    while (completed.load(std::memory_order_acquire) < i + 1) {
      std::this_thread::yield();
    }
  }
  waiter.join();
  EXPECT_TRUE(all_notified.load(std::memory_order_relaxed))
      << "an Unpark was lost in the check-to-sleep window";
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ParkerBackendTest,
    ::testing::Values(Parker::Backend::kFutex, Parker::Backend::kCondvar),
    [](const ::testing::TestParamInfo<Parker::Backend>& backend) {
      return backend.param == Parker::Backend::kFutex ? "Futex" : "Condvar";
    });

TEST(WaitCellTest, InstallThenResumeHandsBackParkerAndTag) {
  WaitQueue q;
  Parker p(Parker::Backend::kCondvar);
  int tag_target = 0;

  WaitCell* cell = q.Enqueue();
  ASSERT_TRUE(cell->Install(&p, &tag_target));

  const WaitQueue::Resumed r = q.ResumeOne();
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.parker, &p);
  EXPECT_EQ(r.tag, &tag_target);
  EXPECT_EQ(cell->state(), WaitCell::State::kResumed);
  WaitQueue::Detach(cell);
  EXPECT_TRUE(q.DrainedForDebug());
}

TEST(WaitCellTest, ResumeBeforeInstallIsAnImmediateGrant) {
  WaitQueue q;
  Parker p(Parker::Backend::kCondvar);

  WaitCell* cell = q.Enqueue();
  const Stats before = Snapshot();
  const WaitQueue::Resumed r = q.ResumeOne();
  const Stats after = Snapshot();
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.parker, nullptr);  // nothing to unpark
  EXPECT_EQ(Delta(before, after, Counter::kWaitqImmediateGrants), 1u);

  // The claimant's late Install must fail — it proceeds without parking.
  EXPECT_FALSE(cell->Install(&p, nullptr));
  EXPECT_EQ(cell->state(), WaitCell::State::kResumed);
  WaitQueue::Detach(cell);
}

TEST(WaitCellTest, CancelWinsOverLaterResume) {
  WaitQueue q;
  Parker p(Parker::Backend::kCondvar);

  WaitCell* cell = q.Enqueue();
  ASSERT_TRUE(cell->Install(&p, nullptr));
  EXPECT_EQ(cell->Cancel(), WaitCell::CancelOutcome::kCancelled);
  EXPECT_EQ(cell->state(), WaitCell::State::kCancelled);

  // The consumer steps over the cancelled cell and finds the queue empty.
  const Stats before = Snapshot();
  const WaitQueue::Resumed r = q.ResumeOne();
  const Stats after = Snapshot();
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(Delta(before, after, Counter::kWaitqCancelSkips), 1u);
  WaitQueue::Detach(cell);
  EXPECT_TRUE(q.DrainedForDebug());
}

TEST(WaitCellTest, CancelAfterResumeLoses) {
  WaitQueue q;
  Parker p(Parker::Backend::kCondvar);

  WaitCell* cell = q.Enqueue();
  ASSERT_TRUE(cell->Install(&p, nullptr));
  ASSERT_TRUE(q.ResumeOne().resumed);
  EXPECT_EQ(cell->Cancel(), WaitCell::CancelOutcome::kLostToResume);
  EXPECT_EQ(cell->state(), WaitCell::State::kResumed);
  WaitQueue::Detach(cell);
}

TEST(WaitQueueTest, ResumesInClaimOrderAcrossSegmentBoundaries) {
  WaitQueue q;
  constexpr int kCells = static_cast<int>(Segment::kCells) * 3 + 5;
  std::vector<Parker> parkers(kCells);
  std::vector<int> tags(kCells);
  std::vector<WaitCell*> cells;
  for (int i = 0; i < kCells; ++i) {
    WaitCell* cell = q.Enqueue();
    tags[i] = i;
    ASSERT_TRUE(cell->Install(&parkers[i], &tags[i]));
    cells.push_back(cell);
  }
  for (int i = 0; i < kCells; ++i) {
    const WaitQueue::Resumed r = q.ResumeOne();
    ASSERT_TRUE(r.resumed);
    EXPECT_EQ(*static_cast<int*>(r.tag), i) << "out-of-order grant";
  }
  EXPECT_FALSE(q.ResumeOne().resumed);
  for (WaitCell* cell : cells) {
    WaitQueue::Detach(cell);
  }
  EXPECT_TRUE(q.DrainedForDebug());
  EXPECT_EQ(q.ClaimedForDebug(), static_cast<std::uint64_t>(kCells));
}

TEST(WaitQueueTest, CancelledCellsAreSkippedInOrder) {
  WaitQueue q;
  constexpr int kCells = static_cast<int>(Segment::kCells) * 2;
  std::vector<Parker> parkers(kCells);
  std::vector<int> tags(kCells);
  std::vector<WaitCell*> cells;
  for (int i = 0; i < kCells; ++i) {
    WaitCell* cell = q.Enqueue();
    tags[i] = i;
    ASSERT_TRUE(cell->Install(&parkers[i], &tags[i]));
    cells.push_back(cell);
  }
  for (int i = 0; i < kCells; i += 2) {  // cancel the even claims
    ASSERT_EQ(cells[i]->Cancel(), WaitCell::CancelOutcome::kCancelled);
  }
  for (int i = 1; i < kCells; i += 2) {  // the odd ones resume, in order
    const WaitQueue::Resumed r = q.ResumeOne();
    ASSERT_TRUE(r.resumed);
    EXPECT_EQ(*static_cast<int*>(r.tag), i);
  }
  EXPECT_FALSE(q.ResumeOne().resumed);
  for (WaitCell* cell : cells) {
    WaitQueue::Detach(cell);
  }
  EXPECT_TRUE(q.DrainedForDebug());
}

// Single-threaded churn far past one segment: every fully consumed and
// detached segment must be retired, and all but a bounded few reclaimed
// (the allocator would otherwise leak a segment per kCells waiters).
TEST(WaitQueueTest, SegmentsAreRetiredAndReclaimedUnderChurn) {
  const Stats before = Snapshot();
  {
    WaitQueue q;
    Parker p(Parker::Backend::kCondvar);
    constexpr int kRounds = static_cast<int>(Segment::kCells) * 100;
    for (int i = 0; i < kRounds; ++i) {
      WaitCell* cell = q.Enqueue();
      ASSERT_TRUE(cell->Install(&p, nullptr));
      ASSERT_TRUE(q.ResumeOne().resumed);
      WaitQueue::Detach(cell);
    }
    EXPECT_TRUE(q.DrainedForDebug());
  }
  const Stats after = Snapshot();
  EXPECT_GE(Delta(before, after, Counter::kWaitqSegmentsRetired), 99u);
  // Allocations keep pace with retirements: no unbounded growth.
  EXPECT_LE(Delta(before, after, Counter::kWaitqSegmentsAllocated),
            Delta(before, after, Counter::kWaitqSegmentsRetired) + 2);
}

// Lock-free MPSC stress with real parking: producers claim cells and park;
// one consumer (the role the ObjLock serializes in the Nub) resumes and
// unparks. Half the producers cancel instead of parking on some rounds,
// exercising the skip path concurrently with grants.
TEST(WaitQueueTest, MpscStressWithParkingAndCancellation) {
  constexpr int kProducers = 8;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr int kRoundsPerProducer = 200;
#else
  constexpr int kRoundsPerProducer = 2000;
#endif
  WaitQueue q;
  std::atomic<std::uint64_t> parked_grants{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> lost_cancels{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Parker p;  // process-default backend
      for (int i = 0; i < kRoundsPerProducer; ++i) {
        WaitCell* cell = q.Enqueue();
        if (t % 2 == 0 && i % 3 == 0) {
          // Back out instead of parking (the claimant-cancel path). Losing
          // to the consumer is fine — the grant stands in for the park.
          if (cell->Cancel() == WaitCell::CancelOutcome::kCancelled) {
            cancelled.fetch_add(1, std::memory_order_relaxed);
          } else {
            lost_cancels.fetch_add(1, std::memory_order_relaxed);
          }
          WaitQueue::Detach(cell);
          continue;
        }
        if (cell->Install(&p, nullptr)) {
          p.Park();
        }
        // Install failure = immediate grant: proceed without parking.
        WaitQueue::Detach(cell);
      }
    });
  }

  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const WaitQueue::Resumed r = q.ResumeOne();
      if (r.resumed) {
        if (r.parker != nullptr) {
          r.parker->Unpark();
        }
        parked_grants.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
    // Drain what raced with the shutdown flag.
    for (;;) {
      const WaitQueue::Resumed r = q.ResumeOne();
      if (!r.resumed) {
        break;
      }
      if (r.parker != nullptr) {
        r.parker->Unpark();
      }
      parked_grants.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (auto& t : producers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) * kRoundsPerProducer;
  // Every claim ended in exactly one terminal transition.
  EXPECT_EQ(parked_grants.load() + cancelled.load(), total);
  EXPECT_EQ(q.ClaimedForDebug(), total);
  EXPECT_TRUE(q.DrainedForDebug());
}

}  // namespace
}  // namespace taos::waitq
