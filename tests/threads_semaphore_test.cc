// Semaphores: P / V, the identical-mechanism claim, interrupt-style use.

#include "src/threads/threads.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace taos {
namespace {

TEST(SemaphoreTest, InitiallyAvailable) {
  Semaphore s;
  EXPECT_TRUE(s.AvailableForDebug());
  s.P();  // must not block
  EXPECT_FALSE(s.AvailableForDebug());
  s.V();
  EXPECT_TRUE(s.AvailableForDebug());
}

TEST(SemaphoreTest, TryP) {
  Semaphore s;
  EXPECT_TRUE(s.TryP());
  EXPECT_FALSE(s.TryP());
  s.V();
  EXPECT_TRUE(s.TryP());
  s.V();
}

TEST(SemaphoreTest, VIsIdempotentOnAvailable) {
  // V has no precondition and ENSURES spost = available; repeated Vs do not
  // accumulate tokens (binary, not counting).
  Semaphore s;
  s.V();
  s.V();
  s.V();
  s.P();  // consumes the single "available"
  EXPECT_FALSE(s.AvailableForDebug());
  s.V();
}

TEST(SemaphoreTest, UncontendedPVStaysOnFastPath) {
  Semaphore s;
  s.ResetStats();
  const std::uint64_t nub_before =
      Nub::Get().nub_entries.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    s.P();
    s.V();
  }
  EXPECT_EQ(s.fast_ps(), 1000u);
  EXPECT_EQ(s.slow_ps(), 0u);
  EXPECT_EQ(Nub::Get().nub_entries.load(std::memory_order_relaxed),
            nub_before);
}

TEST(SemaphoreTest, PBlocksUntilV) {
  Semaphore s;
  s.P();  // take the token
  std::atomic<bool> resumed{false};
  Thread waiter = Thread::Fork([&] {
    s.P();
    resumed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(resumed.load(std::memory_order_acquire));
  s.V();
  waiter.Join();
  EXPECT_TRUE(resumed.load(std::memory_order_acquire));
  s.V();
}

TEST(SemaphoreTest, InterruptStyleHandoff) {
  // "A thread waits for an interrupt routine action by calling P(sem), and
  //  the interrupt routine unblocks it by calling V(sem)." The V-side holds
  // no mutex and no P/V textual pairing exists.
  Semaphore sem;
  sem.P();  // arm: next P waits for the "interrupt"
  std::atomic<int> data{0};
  std::atomic<int> observed{-1};

  Thread driver = Thread::Fork([&] {
    sem.P();
    observed.store(data.load(std::memory_order_acquire),
                   std::memory_order_relaxed);
  });
  Thread interrupt = Thread::Fork([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    data.store(42, std::memory_order_release);
    sem.V();
  });
  driver.Join();
  interrupt.Join();
  EXPECT_EQ(observed.load(), 42);
  sem.V();
}

TEST(SemaphoreTest, MutualExclusionWhenUsedAsALock) {
  // "The implementation of semaphores is identical to mutexes" — P/V can
  // bracket a critical section (though the interface discourages it).
  Semaphore s;
  constexpr int kThreads = 6;
  constexpr int kIters = 1500;
  std::int64_t counter = 0;  // protected by s

  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < kIters; ++i) {
        s.P();
        ++counter;
        s.V();
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

// Ping-pong chain: K stages, each a semaphore handoff; validates queuing
// and wakeup ordering under repeated block/unblock.
class SemaphoreChain : public ::testing::TestWithParam<int> {};

TEST_P(SemaphoreChain, TokenTraversesAllStages) {
  const int stages = GetParam();
  constexpr int kRounds = 200;
  std::vector<std::unique_ptr<Semaphore>> sems;
  for (int i = 0; i <= stages; ++i) {
    auto s = std::make_unique<Semaphore>();
    s->P();  // all stages start armed
    sems.push_back(std::move(s));
  }

  std::vector<Thread> threads;
  std::atomic<int> hops{0};
  for (int i = 0; i < stages; ++i) {
    Semaphore* in = sems[static_cast<std::size_t>(i)].get();
    Semaphore* out = sems[static_cast<std::size_t>(i) + 1].get();
    threads.push_back(Thread::Fork([in, out, &hops] {
      for (int r = 0; r < kRounds; ++r) {
        in->P();
        hops.fetch_add(1, std::memory_order_relaxed);
        out->V();
      }
    }));
  }
  for (int r = 0; r < kRounds; ++r) {
    sems.front()->V();           // inject the token
    sems.back()->P();            // wait for it to come out
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(hops.load(), stages * kRounds);
}

INSTANTIATE_TEST_SUITE_P(Threads, SemaphoreChain,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace taos
