// Baselines: Hoare monitor semantics, the naive condition's valid uses,
// ticket lock, std wrappers.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/baseline/handoff_mutex.h"
#include "src/baseline/hoare_monitor.h"
#include "src/baseline/naive_condition.h"
#include "src/baseline/std_sync.h"
#include "src/baseline/ticket_lock.h"
#include "src/threads/threads.h"

namespace taos::baseline {
namespace {

TEST(HoareMonitorTest, EnterExitExcludes) {
  HoareMonitor mon;
  std::int64_t counter = 0;
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < 1000; ++i) {
        mon.Enter();
        ++counter;
        mon.Exit();
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(counter, 4000);
}

TEST(HoareMonitorTest, SignalHandsPredicateDirectly) {
  // The Hoare guarantee: the waiter observes exactly the state the
  // signaller established — no third thread can slip in between.
  HoareMonitor mon;
  HoareMonitor::Condition ready(mon);
  int value = 0;
  std::atomic<bool> guarantee_held{true};

  Thread waiter = Thread::Fork([&] {
    mon.Enter();
    if (value == 0) {
      ready.Wait();
    }
    if (value != 42) {  // must be exactly what the signaller wrote
      guarantee_held.store(false);
    }
    value = 0;
    mon.Exit();
  });
  // A saboteur that would invalidate the predicate if it could get between
  // signal and resume (under Mesa semantics it often can).
  std::atomic<bool> stop{false};
  Thread saboteur = Thread::Fork([&] {
    while (!stop.load(std::memory_order_acquire)) {
      mon.Enter();
      if (value == 42) {
        value = 41;
      }
      mon.Exit();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mon.Enter();
  value = 42;
  ready.Signal();  // hands the monitor straight to the waiter
  mon.Exit();
  waiter.Join();
  stop.store(true, std::memory_order_release);
  saboteur.Join();
  EXPECT_TRUE(guarantee_held.load());
}

TEST(HoareMonitorTest, SignalWithNoWaiterIsANoOp) {
  HoareMonitor mon;
  HoareMonitor::Condition c(mon);
  mon.Enter();
  c.Signal();  // nobody waiting: must not store a wakeup
  mon.Exit();
  // A later waiter must actually wait (not consume a phantom signal).
  std::atomic<bool> woke{false};
  Thread waiter = Thread::Fork([&] {
    mon.Enter();
    c.Wait();
    woke.store(true);
    mon.Exit();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  mon.Enter();
  c.Signal();
  mon.Exit();
  waiter.Join();
  EXPECT_TRUE(woke.load());
}

TEST(NaiveConditionTest, SignalWorksForOneWaiter) {
  Mutex m;
  NaiveCondition c;
  bool flag = false;
  Thread waiter = Thread::Fork([&] {
    m.Acquire();
    while (!flag) {
      c.Wait(m);
    }
    m.Release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  m.Acquire();
  flag = true;
  m.Release();
  c.Signal();
  waiter.Join();
}

TEST(NaiveConditionTest, SignalBeforeWaitIsStored) {
  // A known semantic difference from real condition variables: the
  // semaphore remembers one V. (Harmless under predicate-loop usage, and
  // part of why the types are not interchangeable.)
  Mutex m;
  NaiveCondition c;
  c.Signal();  // stored in the semaphore bit
  bool flag = true;
  m.Acquire();
  if (!flag) {
    c.Wait(m);
  }
  m.Release();
}

TEST(TicketLockTest, FifoExclusion) {
  TicketSpinMutex lock;
  std::int64_t counter = 0;
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.Acquire();
        ++counter;
        lock.Release();
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(counter, 20000);
}

TEST(HandoffMutexTest, MutualExclusionUnderContention) {
  HandoffMutex lock;
  std::int64_t counter = 0;
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < 3000; ++i) {
        lock.Acquire();
        ++counter;
        lock.Release();
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(counter, 12000);
}

TEST(HandoffMutexTest, ReleaseHandsToTheParkedWaiterFirst) {
  // The anti-barging property: once a waiter is queued, the releasing
  // thread cannot immediately retake the mutex — ownership transfers.
  HandoffMutex lock;
  lock.Acquire();
  std::atomic<int> order{0};
  std::atomic<int> waiter_turn{0};
  Thread waiter = Thread::Fork([&] {
    lock.Acquire();
    waiter_turn.store(order.fetch_add(1) + 1);
    lock.Release();
  });
  // Wait until the waiter is actually queued.
  while (lock.WaitersForDebug() == 0) {
    std::this_thread::yield();
  }
  lock.Release();
  lock.Acquire();  // must queue *behind* the handed-off waiter
  const int my_turn = order.fetch_add(1) + 1;
  lock.Release();
  waiter.Join();
  EXPECT_EQ(waiter_turn.load(), 1);
  EXPECT_EQ(my_turn, 2);
}

TEST(HandoffMutexTest, HolderTracked) {
  HandoffMutex lock;
  lock.Acquire();
  EXPECT_EQ(lock.HolderForDebug(), Thread::Self().id());
  lock.Release();
  EXPECT_EQ(lock.HolderForDebug(), spec::kNil);
}

TEST(StdSemaphoreTest, VIdempotentLikeTaos) {
  StdSemaphore s;
  s.V();
  s.V();
  s.P();  // one token only
  std::atomic<bool> resumed{false};
  Thread w = Thread::Fork([&] {
    s.P();
    resumed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(resumed.load());
  s.V();
  w.Join();
  EXPECT_TRUE(resumed.load());
}

TEST(StdSyncTest, ConditionWrapperRoundTrip) {
  StdMutex m;
  StdCondition c;
  bool flag = false;
  Thread waiter = Thread::Fork([&] {
    m.Acquire();
    while (!flag) {
      c.Wait(m);
    }
    m.Release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  m.Acquire();
  flag = true;
  m.Release();
  c.Signal();
  waiter.Join();
}

}  // namespace
}  // namespace taos::baseline
