// The multi-object wait subsystem: Event set/reset semantics, Poll
// WaitAny/WaitAll (plain, timed, alertable), and the MessageQueue built on
// top of them. Runs on the real runtime; the exhaustive race arguments live
// in model_explorer_test.cc and the spec-checked serializations in
// threads_conformance_test.cc.

#include "src/threads/threads.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"

namespace taos {
namespace {

using namespace std::chrono_literals;

// --- Event ---

TEST(EventTest, ManualResetStaysSetAcrossWaits) {
  Event e;  // manual by default
  EXPECT_FALSE(e.IsSet());
  e.Set();
  EXPECT_TRUE(e.IsSet());
  e.Wait();  // must not block
  e.Wait();  // and must not consume
  EXPECT_TRUE(e.IsSet());
  e.Reset();
  EXPECT_FALSE(e.IsSet());
}

TEST(EventTest, AutoResetIsConsumedByTheGrantedWait) {
  Event e(EventReset::kAuto);
  e.Set();
  e.Wait();  // consumes
  EXPECT_FALSE(e.IsSet());
  EXPECT_FALSE(e.TryWait());
  e.Set();
  EXPECT_TRUE(e.TryWait());
  EXPECT_FALSE(e.IsSet());
}

TEST(EventTest, TryWaitOnManualDoesNotConsume) {
  Event e;
  EXPECT_FALSE(e.TryWait());
  e.Set();
  EXPECT_TRUE(e.TryWait());
  EXPECT_TRUE(e.TryWait());
  EXPECT_TRUE(e.IsSet());
}

TEST(EventTest, SetIsIdempotent) {
  Event e(EventReset::kAuto);
  e.Set();
  e.Set();
  e.Set();
  e.Wait();  // the single pulse
  EXPECT_FALSE(e.TryWait());
}

TEST(EventTest, WaitBlocksUntilSet) {
  Event e(EventReset::kAuto);
  std::atomic<bool> resumed{false};
  Thread waiter = Thread::Fork([&] {
    e.Wait();
    resumed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(resumed.load(std::memory_order_acquire));
  e.Set();
  waiter.Join();
  EXPECT_TRUE(resumed.load(std::memory_order_acquire));
}

TEST(EventTest, ManualSetReleasesAllWaiters) {
  Event e;
  constexpr int kWaiters = 4;
  std::atomic<int> resumed{0};
  std::vector<Thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.push_back(Thread::Fork([&] {
      e.Wait();
      resumed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(resumed.load(), 0);
  e.Set();
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(resumed.load(), kWaiters);
}

TEST(EventTest, AutoSetReleasesExactlyOneWaiter) {
  Event e(EventReset::kAuto);
  constexpr int kWaiters = 3;
  std::atomic<int> resumed{0};
  std::vector<Thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.push_back(Thread::Fork([&] {
      e.Wait();
      resumed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  std::this_thread::sleep_for(20ms);
  for (int round = 1; round <= kWaiters; ++round) {
    e.Set();
    // Exactly one waiter per pulse gets through.
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (resumed.load() < round &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(resumed.load(), round);
    std::this_thread::sleep_for(5ms);
    EXPECT_EQ(resumed.load(), round);  // no over-delivery
  }
  for (Thread& t : threads) {
    t.Join();
  }
}

TEST(EventTest, WaitForTimesOutAndSatisfies) {
  Event e(EventReset::kAuto);
  EXPECT_EQ(e.WaitFor(10ms), WaitResult::kTimeout);
  e.Set();
  EXPECT_EQ(e.WaitFor(10ms), WaitResult::kSatisfied);
  EXPECT_FALSE(e.IsSet());  // consumed
  // Zero timeout degenerates to TryWait.
  EXPECT_EQ(e.WaitFor(0ms), WaitResult::kTimeout);
}

TEST(EventTest, WaitForSatisfiedByConcurrentSet) {
  Event e(EventReset::kAuto);
  Thread setter = Thread::Fork([&] {
    std::this_thread::sleep_for(10ms);
    e.Set();
  });
  EXPECT_EQ(e.WaitFor(5s), WaitResult::kSatisfied);
  setter.Join();
}

TEST(EventTest, SetThenWaitStaysOnFastPath) {
  // An already-set event grants without a Nub entry, like the mutex fast
  // path: waiter-side consumption is a single atomic on the flag.
  Event e;
  e.Set();
  const std::uint64_t nub_before =
      Nub::Get().nub_entries.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    e.Wait();
  }
  EXPECT_EQ(Nub::Get().nub_entries.load(std::memory_order_relaxed),
            nub_before);
}

// --- Poll ---

TEST(PollTest, WaitAnyReturnsTheSetMemberWithoutBlocking) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  Poll p;
  p.Add(a);
  p.Add(b);
  b.Set();
  EXPECT_EQ(p.WaitAny(), 1u);
  EXPECT_FALSE(b.IsSet());  // granted auto member consumed
  EXPECT_FALSE(a.IsSet());
}

TEST(PollTest, WaitAnyConsumesOnlyTheGrantedMember) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  Poll p;
  p.Add(a);
  p.Add(b);
  a.Set();
  b.Set();
  const std::size_t first = p.WaitAny();
  // One pulse consumed, the other still observable by a later wait.
  const std::size_t second = p.WaitAny();
  EXPECT_NE(first, second);
  EXPECT_FALSE(a.IsSet());
  EXPECT_FALSE(b.IsSet());
}

TEST(PollTest, WaitAnyDoesNotConsumeManualMembers) {
  Event m;  // manual
  Poll p;
  p.Add(m);
  m.Set();
  EXPECT_EQ(p.WaitAny(), 0u);
  EXPECT_TRUE(m.IsSet());
  EXPECT_EQ(p.WaitAny(), 0u);  // still granted
}

TEST(PollTest, WaitAnyBlocksUntilSomeMemberIsSet) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  std::atomic<std::size_t> granted{99};
  Thread waiter = Thread::Fork([&] {
    Poll p;
    p.Add(a);
    p.Add(b);
    granted.store(p.WaitAny(), std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(granted.load(std::memory_order_acquire), 99u);
  b.Set();
  waiter.Join();
  EXPECT_EQ(granted.load(std::memory_order_acquire), 1u);
  EXPECT_FALSE(b.IsSet());
}

TEST(PollTest, BlockingWaitAnyInstallsRegistrations) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  const obs::Stats before = obs::Snapshot();
  Thread waiter = Thread::Fork([&] {
    Poll p;
    p.Add(a);
    p.Add(b);
    (void)p.WaitAny();
  });
  std::this_thread::sleep_for(20ms);
  a.Set();
  waiter.Join();
  const obs::Stats after = obs::Snapshot();
  // The parked round registered on both members (at least once).
  EXPECT_GE(after.Count(obs::Counter::kPollRegistrations) -
                before.Count(obs::Counter::kPollRegistrations),
            2u);
}

TEST(PollTest, WaitAnyForTimesOut) {
  Event a(EventReset::kAuto);
  Poll p;
  p.Add(a);
  const Poll::AnyResult r = p.WaitAnyFor(10ms);
  EXPECT_EQ(r.result, WaitResult::kTimeout);
  EXPECT_EQ(r.index, p.size());
  // Zero timeout: a single scan.
  EXPECT_EQ(p.WaitAnyFor(0ms).result, WaitResult::kTimeout);
  a.Set();
  const Poll::AnyResult hit = p.WaitAnyFor(0ms);
  EXPECT_EQ(hit.result, WaitResult::kSatisfied);
  EXPECT_EQ(hit.index, 0u);
}

TEST(PollTest, WaitAnyForSatisfiedByConcurrentSet) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  Poll p;
  p.Add(a);
  p.Add(b);
  Thread setter = Thread::Fork([&] {
    std::this_thread::sleep_for(10ms);
    a.Set();
  });
  const Poll::AnyResult r = p.WaitAnyFor(5s);
  EXPECT_EQ(r.result, WaitResult::kSatisfied);
  EXPECT_EQ(r.index, 0u);
  setter.Join();
}

TEST(PollTest, WaitAllReturnsWhenAllSetAndConsumesAutos) {
  Event a(EventReset::kAuto);
  Event m;  // manual
  Poll p;
  p.Add(a);
  p.Add(m);
  a.Set();
  m.Set();
  p.WaitAll();
  EXPECT_FALSE(a.IsSet());  // auto consumed
  EXPECT_TRUE(m.IsSet());   // manual unchanged
}

TEST(PollTest, WaitAllBlocksUntilTheLastMember) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  std::atomic<bool> resumed{false};
  Thread waiter = Thread::Fork([&] {
    Poll p;
    p.Add(a);
    p.Add(b);
    p.WaitAll();
    resumed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(10ms);
  a.Set();
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(resumed.load(std::memory_order_acquire));  // one of two
  b.Set();
  waiter.Join();
  EXPECT_TRUE(resumed.load(std::memory_order_acquire));
  EXPECT_FALSE(a.IsSet());
  EXPECT_FALSE(b.IsSet());
}

TEST(PollTest, WaitAllForTimesOutWithAPartialSet) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  Poll p;
  p.Add(a);
  p.Add(b);
  a.Set();
  EXPECT_EQ(p.WaitAllFor(15ms), WaitResult::kTimeout);
  // The partial member was NOT consumed by the failed WaitAll.
  EXPECT_TRUE(a.IsSet());
  b.Set();
  EXPECT_EQ(p.WaitAllFor(15ms), WaitResult::kSatisfied);
  EXPECT_FALSE(a.IsSet());
  EXPECT_FALSE(b.IsSet());
}

TEST(PollTest, AlertWaitAnyRaisesAlerted) {
  Event a(EventReset::kAuto);
  std::atomic<bool> raised{false};
  Thread waiter = Thread::Fork([&] {
    Poll p;
    p.Add(a);
    try {
      (void)p.AlertWaitAny();
    } catch (const Alerted&) {
      raised.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(20ms);
  Alert(waiter.Handle());
  waiter.Join();
  EXPECT_TRUE(raised.load(std::memory_order_acquire));
}

TEST(PollTest, AlertWaitAnyPrefersAGrantOverAPendingAlert) {
  // The alert is consumed only when no member grants; an already-set member
  // wins even with the alert pending (grant > alert precedence), and the
  // alert stays pending for the next alertable wait.
  Event a(EventReset::kAuto);
  std::atomic<std::size_t> granted{99};
  std::atomic<bool> later_alerted{false};
  Thread waiter = Thread::Fork([&] {
    Poll p;
    p.Add(a);
    a.Set();
    granted.store(p.AlertWaitAny(), std::memory_order_release);
    // Now the pending alert must surface.
    try {
      (void)p.AlertWaitAnyFor(5s);
    } catch (const Alerted&) {
    }
    later_alerted.store(true, std::memory_order_release);
  });
  Alert(waiter.Handle());
  waiter.Join();
  EXPECT_EQ(granted.load(std::memory_order_acquire), 0u);
  EXPECT_TRUE(later_alerted.load(std::memory_order_acquire));
}

TEST(PollTest, AlertWaitAnyForReportsAlertedWithoutThrowing) {
  Event a(EventReset::kAuto);
  std::atomic<int> result{-1};
  Thread waiter = Thread::Fork([&] {
    Poll p;
    p.Add(a);
    result.store(static_cast<int>(p.AlertWaitAnyFor(5s).result),
                 std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  Alert(waiter.Handle());
  waiter.Join();
  EXPECT_EQ(result.load(std::memory_order_acquire),
            static_cast<int>(WaitResult::kAlerted));
}

TEST(PollTest, AlertWaitAllRaisesAlerted) {
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  std::atomic<bool> raised{false};
  Thread waiter = Thread::Fork([&] {
    Poll p;
    p.Add(a);
    p.Add(b);
    a.Set();  // partial: still blocks
    try {
      p.AlertWaitAll();
    } catch (const Alerted&) {
      raised.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(20ms);
  Alert(waiter.Handle());
  waiter.Join();
  EXPECT_TRUE(raised.load(std::memory_order_acquire));
  EXPECT_TRUE(a.IsSet());  // the aborted WaitAll consumed nothing
}

TEST(PollTest, ManyWaitersOnOverlappingSets) {
  // Stress the registration/deregistration churn: waiters share members.
  Event e0(EventReset::kAuto);
  Event e1(EventReset::kAuto);
  Event e2(EventReset::kAuto);
  constexpr int kRounds = 300;
  std::atomic<int> grants{0};
  Thread w0 = Thread::Fork([&] {
    Poll p;
    p.Add(e0);
    p.Add(e1);
    for (int i = 0; i < kRounds; ++i) {
      (void)p.WaitAny();
      grants.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Thread w1 = Thread::Fork([&] {
    Poll p;
    p.Add(e1);
    p.Add(e2);
    for (int i = 0; i < kRounds; ++i) {
      (void)p.WaitAny();
      grants.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Thread setter = Thread::Fork([&] {
    // 2*kRounds pulses across the three events; e1 is shared, so any mix
    // of the two waiters can take its pulses. Keep feeding until both
    // waiters have had their fill.
    for (int i = 0; grants.load(std::memory_order_relaxed) < 2 * kRounds;
         ++i) {
      switch (i % 3) {
        case 0: e0.Set(); break;
        case 1: e1.Set(); break;
        case 2: e2.Set(); break;
      }
      if (i % 16 == 0) {
        std::this_thread::sleep_for(1ms);
      }
    }
  });
  w0.Join();
  w1.Join();
  setter.Join();
  EXPECT_EQ(grants.load(), 2 * kRounds);
}

// --- MessageQueue ---

TEST(MessageQueueTest, FifoWithinCapacity) {
  MessageQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.Send(i), QueueResult::kOk);
  }
  EXPECT_EQ(q.TrySend(99), QueueResult::kWouldBlock);  // full
  for (int i = 0; i < 4; ++i) {
    int v = -1;
    EXPECT_EQ(q.Recv(&v), QueueResult::kOk);
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_EQ(q.TryRecv(&v), QueueResult::kWouldBlock);  // empty, open
}

TEST(MessageQueueTest, ReadinessEventsTrackLevels) {
  MessageQueue<int> q(2);
  EXPECT_FALSE(q.readable().IsSet());
  EXPECT_TRUE(q.writable().IsSet());
  (void)q.Send(1);
  EXPECT_TRUE(q.readable().IsSet());
  EXPECT_TRUE(q.writable().IsSet());
  (void)q.Send(2);
  EXPECT_FALSE(q.writable().IsSet());  // full
  int v;
  (void)q.Recv(&v);
  EXPECT_TRUE(q.writable().IsSet());
  (void)q.Recv(&v);
  EXPECT_FALSE(q.readable().IsSet());  // drained, open
}

TEST(MessageQueueTest, SendBlocksOnFullUntilRecv) {
  MessageQueue<int> q(1);
  (void)q.Send(1);
  std::atomic<bool> sent{false};
  Thread sender = Thread::Fork([&] {
    EXPECT_EQ(q.Send(2), QueueResult::kOk);
    sent.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(sent.load(std::memory_order_acquire));
  int v = 0;
  EXPECT_EQ(q.Recv(&v), QueueResult::kOk);
  EXPECT_EQ(v, 1);
  sender.Join();
  EXPECT_EQ(q.Recv(&v), QueueResult::kOk);
  EXPECT_EQ(v, 2);
}

TEST(MessageQueueTest, RecvBlocksOnEmptyUntilSend) {
  MessageQueue<std::string> q(2);
  std::atomic<bool> got{false};
  Thread receiver = Thread::Fork([&] {
    std::string s;
    EXPECT_EQ(q.Recv(&s), QueueResult::kOk);
    EXPECT_EQ(s, "hello");
    got.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load(std::memory_order_acquire));
  (void)q.Send(std::string("hello"));
  receiver.Join();
}

TEST(MessageQueueTest, TimedVariantsTimeOut) {
  MessageQueue<int> q(1);
  int v;
  EXPECT_EQ(q.RecvFor(&v, std::chrono::milliseconds(10)),
            QueueResult::kTimeout);
  (void)q.Send(1);
  EXPECT_EQ(q.SendFor(2, std::chrono::milliseconds(10)),
            QueueResult::kTimeout);
  EXPECT_EQ(q.RecvFor(&v, std::chrono::milliseconds(10)), QueueResult::kOk);
  EXPECT_EQ(v, 1);
}

TEST(MessageQueueTest, CloseDrainsThenFails) {
  MessageQueue<int> q(4);
  (void)q.Send(1);
  (void)q.Send(2);
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.Send(3), QueueResult::kClosed);
  int v = 0;
  EXPECT_EQ(q.Recv(&v), QueueResult::kOk);  // drains survive Close
  EXPECT_EQ(v, 1);
  EXPECT_EQ(q.Recv(&v), QueueResult::kOk);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.Recv(&v), QueueResult::kClosed);  // closed and drained
  q.Close();  // idempotent
}

TEST(MessageQueueTest, CloseWakesBlockedParties) {
  MessageQueue<int> q(1);
  (void)q.Send(1);  // full: senders will block
  std::atomic<int> closed_results{0};
  Thread sender = Thread::Fork([&] {
    if (q.Send(2) == QueueResult::kClosed) {
      closed_results.fetch_add(1, std::memory_order_relaxed);
    }
  });
  MessageQueue<int> empty(1);
  Thread receiver = Thread::Fork([&] {
    int v;
    if (empty.Recv(&v) == QueueResult::kClosed) {
      closed_results.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(20ms);
  q.Close();
  empty.Close();
  sender.Join();
  receiver.Join();
  EXPECT_EQ(closed_results.load(), 2);
}

TEST(MessageQueueTest, FanInReceiverViaWaitAny) {
  // The motivating composition: one receiver draining two queues plus a
  // shutdown event through a single WaitAny, Mesa-style retry on
  // kWouldBlock.
  MessageQueue<int> q0(4);
  MessageQueue<int> q1(4);
  Event shutdown;  // manual
  constexpr int kPerQueue = 200;
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> received{0};

  Thread receiver = Thread::Fork([&] {
    Poll p;
    p.Add(q0.readable());
    p.Add(q1.readable());
    p.Add(shutdown);
    for (;;) {
      const std::size_t idx = p.WaitAny();
      if (idx == 2) {
        // Shutdown: drain whatever is left, then exit.
        int v;
        while (q0.TryRecv(&v) == QueueResult::kOk) {
          sum.fetch_add(v, std::memory_order_relaxed);
          received.fetch_add(1, std::memory_order_relaxed);
        }
        while (q1.TryRecv(&v) == QueueResult::kOk) {
          sum.fetch_add(v, std::memory_order_relaxed);
          received.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      int v;
      MessageQueue<int>& q = idx == 0 ? q0 : q1;
      if (q.TryRecv(&v) == QueueResult::kOk) {  // hint: may have lost a race
        sum.fetch_add(v, std::memory_order_relaxed);
        received.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  Thread p0 = Thread::Fork([&] {
    for (int i = 1; i <= kPerQueue; ++i) {
      ASSERT_EQ(q0.Send(i), QueueResult::kOk);
    }
  });
  Thread p1 = Thread::Fork([&] {
    for (int i = 1; i <= kPerQueue; ++i) {
      ASSERT_EQ(q1.Send(i), QueueResult::kOk);
    }
  });
  p0.Join();
  p1.Join();
  // Let the receiver drain, then raise shutdown.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (received.load(std::memory_order_relaxed) < 2 * kPerQueue &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  shutdown.Set();
  receiver.Join();
  EXPECT_EQ(received.load(), 2 * kPerQueue);
  const std::int64_t expected =
      2 * (static_cast<std::int64_t>(kPerQueue) * (kPerQueue + 1) / 2);
  EXPECT_EQ(sum.load(), expected);
}

TEST(MessageQueueTest, MpmcConservesItems) {
  MessageQueue<int> q(8);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> consumed{0};

  std::vector<Thread> threads;
  for (int t = 0; t < kProducers; ++t) {
    threads.push_back(Thread::Fork([&q] {
      for (int i = 1; i <= kPerProducer; ++i) {
        ASSERT_EQ(q.Send(i), QueueResult::kOk);
      }
    }));
  }
  for (int t = 0; t < kConsumers; ++t) {
    threads.push_back(Thread::Fork([&] {
      int v;
      while (q.Recv(&v) == QueueResult::kOk) {
        sum.fetch_add(v, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }));
  }
  // Producers first (the first kProducers threads), then close.
  for (int t = 0; t < kProducers; ++t) {
    threads[static_cast<std::size_t>(t)].Join();
  }
  q.Close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].Join();
  }
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  const std::int64_t per =
      static_cast<std::int64_t>(kPerProducer) * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), kProducers * per);
}

TEST(MessageQueueTest, MoveOnlyPayload) {
  MessageQueue<std::unique_ptr<int>> q(2);
  ASSERT_EQ(q.Send(std::make_unique<int>(7)), QueueResult::kOk);
  std::unique_ptr<int> out;
  ASSERT_EQ(q.Recv(&out), QueueResult::kOk);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
  // Items left behind at destruction are destroyed (ASan would flag a leak).
  ASSERT_EQ(q.Send(std::make_unique<int>(8)), QueueResult::kOk);
}

}  // namespace
}  // namespace taos
