// The chaos layer itself: point naming, strategy parsing, decision-stream
// determinism (every build), and — in a -DTAOS_CHAOS=ON build — the two
// claims the harness stands on: a fixed-seed run of the mixed workload
// matrix crosses every named injection point (the 100% coverage gate), and
// a deliberately reintroduced lost-alert bug (the pre-timer-wheel
// WaitWithTimeout window) is caught by the default seed sweep and
// reproduces from the seed the sweep reports.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/chaos.h"
#include "src/base/xorshift.h"
#include "src/obs/coverage.h"
#include "src/obs/diag.h"
#include "src/threads/threads.h"
#include "src/threads/wait_result.h"

namespace taos {
namespace {

using namespace std::chrono_literals;

chaos::Point PointAt(int i) { return static_cast<chaos::Point>(i); }

// ---------------------------------------------------------------------------
// Introspection: available in every build.
// ---------------------------------------------------------------------------

TEST(ChaosPointsTest, NamesAreUniqueAndNamespaced) {
  std::set<std::string> seen;
  for (int i = 0; i < chaos::kNumPoints; ++i) {
    const char* name = chaos::PointName(PointAt(i));
    ASSERT_NE(name, nullptr) << "point " << i;
    // "subsystem.window", lower-case: the names are the replay vocabulary
    // (printed in banners, keyed in the coverage table), so they are API.
    EXPECT_NE(std::string(name).find('.'), std::string::npos) << name;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
}

TEST(ChaosPointsTest, FullMaskHasOneBitPerPoint) {
  EXPECT_EQ(chaos::FullPointMask(),
            (std::uint64_t{1} << chaos::kNumPoints) - 1);
}

TEST(ChaosPointsTest, CategoriesPartitionTheFullMask) {
  const chaos::Category cats[] = {
      chaos::Category::kGeneric,     chaos::Category::kAfterCas,
      chaos::Category::kBeforePark,  chaos::Category::kBeforeUnpark,
      chaos::Category::kCancel,      chaos::Category::kTimer,
  };
  std::uint64_t unioned = 0;
  for (chaos::Category c : cats) {
    const std::uint64_t m = chaos::MaskForCategory(c);
    EXPECT_EQ(unioned & m, 0u) << "categories overlap";
    unioned |= m;
  }
  EXPECT_EQ(unioned, chaos::FullPointMask());
}

TEST(ChaosStrategyTest, ParsesNamesAndBothSeparators) {
  chaos::Strategy s;
  ASSERT_TRUE(chaos::ParseStrategy("uniform", &s));
  EXPECT_EQ(s, chaos::Strategy::kUniform);
  ASSERT_TRUE(chaos::ParseStrategy("preempt-after-cas", &s));
  EXPECT_EQ(s, chaos::Strategy::kPreemptAfterCas);
  ASSERT_TRUE(chaos::ParseStrategy("preempt_after_cas", &s));
  EXPECT_EQ(s, chaos::Strategy::kPreemptAfterCas);
  ASSERT_TRUE(chaos::ParseStrategy("delay-before-park", &s));
  EXPECT_EQ(s, chaos::Strategy::kDelayBeforePark);
  EXPECT_FALSE(chaos::ParseStrategy("bogus", &s));
  EXPECT_FALSE(chaos::ParseStrategy("", &s));
  // Round trip: the name a banner prints parses back to the same strategy.
  for (chaos::Strategy in : {chaos::Strategy::kUniform,
                             chaos::Strategy::kPreemptAfterCas,
                             chaos::Strategy::kDelayBeforePark}) {
    chaos::Strategy out;
    ASSERT_TRUE(chaos::ParseStrategy(chaos::StrategyName(in), &out));
    EXPECT_EQ(out, in);
  }
}

// Replayability rests on Decide being a pure function of (strategy,
// category, rng state): same seed, same stream.
TEST(ChaosDecideTest, DecisionStreamIsDeterministic) {
  for (chaos::Strategy strategy : {chaos::Strategy::kUniform,
                                   chaos::Strategy::kPreemptAfterCas,
                                   chaos::Strategy::kDelayBeforePark}) {
    XorShift a(12345);
    XorShift b(12345);
    for (int i = 0; i < 4096; ++i) {
      const auto cat = static_cast<chaos::Category>(i % 6);
      const chaos::Decision da = chaos::Decide(strategy, cat, a);
      const chaos::Decision db = chaos::Decide(strategy, cat, b);
      EXPECT_EQ(da.kind, db.kind) << i;
      EXPECT_EQ(da.amount, db.amount) << i;
    }
  }
}

TEST(ChaosDecideTest, StrategiesBiasTheirCategory) {
  // preempt-after-cas must perturb kAfterCas crossings far more often than
  // uniform does, and delay-before-park likewise for kBeforePark.
  auto fire_rate = [](chaos::Strategy s, chaos::Category c) {
    XorShift rng(99);
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      if (chaos::Decide(s, c, rng).kind != chaos::ActionKind::kNone) {
        ++fired;
      }
    }
    return fired;
  };
  EXPECT_GT(fire_rate(chaos::Strategy::kPreemptAfterCas,
                      chaos::Category::kAfterCas),
            4 * fire_rate(chaos::Strategy::kUniform,
                          chaos::Category::kAfterCas));
  EXPECT_GT(fire_rate(chaos::Strategy::kDelayBeforePark,
                      chaos::Category::kBeforePark),
            4 * fire_rate(chaos::Strategy::kUniform,
                          chaos::Category::kBeforePark));
}

#if !defined(TAOS_CHAOS_ENABLED)

// Default build: the macro must compile to nothing and the runtime stubs
// must be inert (this is the "benches measure the real runtime" guarantee).
TEST(ChaosCompiledOutTest, MacroAndRuntimeAreInert) {
  static_assert(!chaos::kCompiledIn);
  TAOS_CHAOS(kSpinAcquired);  // expands to ((void)0)
  chaos::Configure(chaos::Config{.seed = 1});
  EXPECT_FALSE(chaos::Active());
  chaos::Disable();
}

#else  // TAOS_CHAOS_ENABLED

// ---------------------------------------------------------------------------
// Chaos build: coverage and bug-catching claims.
// ---------------------------------------------------------------------------

class ChaosRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_backend_ = SpinLock::backend();
    saved_lock_mode_ = Nub::Get().global_lock_mode();
    saved_waitq_mode_ = Nub::Get().waitq_mode();
  }
  void TearDown() override {
    chaos::Disable();
    Nub::Get().SetLockBackend(saved_backend_);
    Nub::Get().SetGlobalLockMode(saved_lock_mode_);
    Nub::Get().SetWaitqMode(saved_waitq_mode_);
  }
  LockBackend saved_backend_ = LockBackend::kTas;
  bool saved_lock_mode_ = false;
  bool saved_waitq_mode_ = false;
};

// One pass of mixed production traffic: contended mutexes (grants, timeouts,
// back-outs), semaphore P/V and PFor, condition Wait/WaitFor against a
// signaller, AlertWait/AlertP against an alerter, rwlock readers against a
// writer, poll/event/message-queue fan-in, and raw spin-lock contention
// under whichever TAOS_LOCK core is active. Everything the named points
// instrument, in whichever lock/queue mode
// the caller configured. The diagnosis layer is switched on for the pass
// and a snapshotter thread races SnapshotBlocked against the workload, so
// the three diag windows (publish-to-park, owner-stamp, snapshot-read) are
// crossed under injection too.
void MixedWorkloadPass() {
  Mutex m;
  Condition c;
  Semaphore sem;
  Semaphore sem_back;
  Mutex data_m;
  int counter = 0;
  std::atomic<bool> stop{false};

  obs::diag::SetEnabled(true);
  std::thread snapshotter([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)obs::diag::SnapshotBlocked();
      std::this_thread::sleep_for(100us);
    }
  });

  std::vector<Thread> threads;
  // Mutex + timed-mutex traffic. The occasional held-across-a-sleep stretch
  // is what pushes AcquireFor into a real park (timed-finish) and lets a
  // Release land inside another thread's enqueue window (back-out).
  for (int i = 0; i < 3; ++i) {
    threads.push_back(Thread::Fork([&, i] {
      for (int j = 0; j < 40; ++j) {
        data_m.Acquire();
        ++counter;
        if ((j + i) % 8 == 0) {
          std::this_thread::sleep_for(60us);
        }
        data_m.Release();
        if (data_m.AcquireFor(j % 2 == 0 ? 0ns : 200us) ==
            WaitResult::kSatisfied) {
          ++counter;
          data_m.Release();
        }
      }
    }));
  }
  // Semaphore traffic: a ping-pong rendezvous, so both sides genuinely park
  // (a binary semaphore never accumulates credit — a producer that merely
  // races ahead leaves the consumer on the fast path forever). `sem` carries
  // forward hand-offs, `sem_back` the acknowledgements; the receiving side
  // retries PFor until satisfied, exercising the timed park/expiry path
  // without ever unbalancing the protocol.
  sem.P();       // both tokens start absent: the first P of each
  sem_back.P();  // direction must block until its partner's V
  threads.push_back(Thread::Fork([&] {
    for (int j = 0; j < 40; ++j) {
      sem.V();
      sem_back.P();
    }
  }));
  threads.push_back(Thread::Fork([&] {
    for (int j = 0; j < 40; ++j) {
      if (j % 3 == 0) {
        while (sem.PFor(200us) != WaitResult::kSatisfied) {
        }
      } else {
        sem.P();
      }
      sem_back.V();
    }
  }));
  // Condition traffic: waiters (plain and timed) against a broadcaster.
  for (int i = 0; i < 2; ++i) {
    threads.push_back(Thread::Fork([&] {
      for (int j = 0; j < 30; ++j) {
        m.Acquire();
        if (j % 2 == 0) {
          (void)c.WaitFor(m, 120us);
        } else if (!stop.load(std::memory_order_relaxed)) {
          (void)c.WaitFor(m, 2ms);
        }
        m.Release();
      }
    }));
  }
  threads.push_back(Thread::Fork([&] {
    for (int j = 0; j < 120 && !stop.load(std::memory_order_relaxed); ++j) {
      m.Acquire();
      m.Release();
      if (j % 4 == 0) {
        c.Broadcast();
      } else {
        c.Signal();
      }
      std::this_thread::sleep_for(30us);
    }
  }));
  // Rwlock traffic: overlapping readers (the reader-count CAS seam), a
  // writer whose exclusive release drains them, and the last reader out
  // waking the queued writer (the Dekker seam).
  ReaderWriterMutex rw;
  for (int i = 0; i < 2; ++i) {
    threads.push_back(Thread::Fork([&, i] {
      for (int j = 0; j < 30; ++j) {
        {
          ReadLock rl(rw);
          if ((j + i) % 8 == 0) {
            std::this_thread::sleep_for(40us);
          }
        }
        if (rw.AcquireSharedFor(j % 2 == 0 ? 0ns : 150us) ==
            WaitResult::kSatisfied) {
          rw.ReleaseShared();
        }
      }
    }));
  }
  threads.push_back(Thread::Fork([&] {
    for (int j = 0; j < 25; ++j) {
      {
        WriteLock wl(rw);
        if (j % 6 == 0) {
          std::this_thread::sleep_for(50us);
        }
      }
      if (rw.AcquireFor(150us) == WaitResult::kSatisfied) {
        rw.Release();
      }
    }
  }));
  // Raw spin-lock contention with the holder stretched across a sleep: on
  // the queue cores this forces real queueing, crossing the
  // enqueue-to-spin / release-to-successor (MCS) and predecessor-spin (CLH)
  // seams even on a single CPU.
  SpinLock raw;
  for (int i = 0; i < 2; ++i) {
    threads.push_back(Thread::Fork([&, i] {
      for (int j = 0; j < 40; ++j) {
        raw.Acquire();
        if ((j + i) % 4 == 0) {
          std::this_thread::sleep_for(30us);
        }
        raw.Release();
      }
    }));
  }
  // Multi-object wait traffic: a WaitAny poller over two auto events and a
  // bounded queue's readable edge, a plain Event waiter on one of them, and
  // a setter pulsing both — together they cross the poll register /
  // scan-to-park / notify / deregister seams and the event set-to-resume
  // window; the queue ping-pong crosses the msgq handoff window. All waits
  // are timed, so the pass terminates whatever the injection does.
  Event ea(EventReset::kAuto);
  Event eb(EventReset::kAuto);
  MessageQueue<int> mq(2);
  threads.push_back(Thread::Fork([&] {
    Poll p;
    p.Add(ea);
    p.Add(eb);
    p.Add(mq.readable());
    for (int j = 0; j < 30; ++j) {
      const Poll::AnyResult r = p.WaitAnyFor(j % 3 == 0 ? 120us : 400us);
      if (r.result == WaitResult::kSatisfied && r.index == 2) {
        int v;
        (void)mq.TryRecv(&v);  // readable() is a hint; the setter may drain
      }
    }
  }));
  threads.push_back(Thread::Fork([&] {
    for (int j = 0; j < 30; ++j) {
      (void)ea.WaitFor(250us);
    }
  }));
  threads.push_back(Thread::Fork([&] {
    for (int j = 0; j < 45; ++j) {
      ea.Set();
      if (j % 2 == 0) {
        eb.Set();
      }
      (void)mq.SendFor(j, 100us);
      if (j % 3 == 0) {
        int v;
        (void)mq.RecvFor(&v, 100us);
      }
      std::this_thread::sleep_for(40us);
    }
  }));
  // Alert traffic: an alertable timed waiter and an alerter.
  std::atomic<ThreadRecord*> waiter_rec{nullptr};
  threads.push_back(Thread::Fork([&] {
    waiter_rec.store(Thread::Self().rec, std::memory_order_release);
    for (int j = 0; j < 30; ++j) {
      m.Acquire();
      (void)AlertWaitFor(m, c, 300us);
      m.Release();
      (void)TestAlert();  // drain so the next wait blocks again
    }
  }));
  threads.push_back(Thread::Fork([&] {
    ThreadRecord* rec;
    while ((rec = waiter_rec.load(std::memory_order_acquire)) == nullptr) {
      std::this_thread::yield();
    }
    for (int j = 0; j < 30; ++j) {
      Alert(ThreadHandle{rec});
      std::this_thread::sleep_for(80us);
    }
  }));

  for (Thread& t : threads) {
    t.Join();
  }
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  obs::diag::SetEnabled(false);
}

TEST_F(ChaosRuntimeTest, FixedSeedMatrixCoversEveryPoint) {
  obs::ResetCoverage();
  // Uniform pressure, fixed seed, all points enabled — the acceptance
  // configuration. The workload runs over the same backend matrix as the
  // conformance suite so every subsystem's slow path is on the table: the
  // full lock x queue grid under the TAS core, plus one sharded/classic
  // pass under each queue core for the MCS/CLH-only seams (the Nub-mode
  // points are core-independent, so those passes need not re-span the
  // grid).
  chaos::Configure(chaos::Config{.seed = 7,
                                 .strategy = chaos::Strategy::kUniform});
  ASSERT_TRUE(chaos::Active());
  int hit = 0;
  std::string missed;
  // The decision stream is seed-deterministic but the OS scheduler is not,
  // and a couple of windows (the rule-3 try-acquire retry especially) are
  // only crossed when a racing hold lands just so. One matrix pass crosses
  // everything almost always; top up with further passes, same seed and
  // accumulating coverage, rather than gate on one roll of the scheduler.
  for (int round = 0; round < 3 && hit < chaos::kNumPoints; ++round) {
    for (bool global : {false, true}) {
      for (bool waitq : {false, true}) {
        Nub::Get().SetGlobalLockMode(global);
        Nub::Get().SetWaitqMode(waitq);
        MixedWorkloadPass();
      }
    }
    Nub::Get().SetGlobalLockMode(false);
    Nub::Get().SetWaitqMode(false);
    for (LockBackend backend : {LockBackend::kMcs, LockBackend::kClh}) {
      Nub::Get().SetLockBackend(backend);
      MixedWorkloadPass();
    }
    Nub::Get().SetLockBackend(LockBackend::kTas);
    hit = 0;
    missed.clear();
    std::set<std::string> rows;
    for (const obs::CoverageRow& row : obs::CoverageSnapshot()) {
      if (row.hits > 0) {
        rows.insert(row.name);
      }
    }
    for (int i = 0; i < chaos::kNumPoints; ++i) {
      const char* name = chaos::PointName(PointAt(i));
      if (rows.count(name) > 0) {
        ++hit;
      } else {
        missed += std::string(" ") + name;
      }
    }
    std::printf("chaos coverage, pass %d: %d/%d points hit;%s%s\n", round + 1,
                hit, chaos::kNumPoints,
                missed.empty() ? " none missed" : " missed:", missed.c_str());
  }
  chaos::Disable();
  // Every named window must have been crossed (hit) — the point list is
  // append-only and each addition must arrive with workload that reaches
  // it. Points that never fire under this seed are visible in the fires
  // column but only crossings gate.
  EXPECT_EQ(hit, chaos::kNumPoints) << "missed:" << missed;
}

// The pre-PR-4 WaitWithTimeout, verbatim except for the fix: on kAlerted it
// reports the predicate WITHOUT re-posting the consumed alert. A
// third-party Alert that lands while the wait is blocked is silently
// swallowed — the caller's next alertable wait never raises.
bool BuggyWaitWithTimeout(Mutex& m, Condition& c,
                          const std::function<bool()>& predicate,
                          std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate()) {
    const auto remaining = deadline - std::chrono::steady_clock::now();
    switch (AlertWaitFor(
        m, c,
        std::chrono::duration_cast<std::chrono::nanoseconds>(remaining))) {
      case WaitResult::kSatisfied:
        break;
      case WaitResult::kTimeout:
        return predicate();
      case WaitResult::kAlerted:
        return predicate();  // BUG: consumed alert not re-posted
    }
  }
  return true;
}

// One trial: a waiter runs the buggy helper to its timeout while a third
// party Alerts it mid-wait. Returns true iff the alert was LOST — the wait
// consumed it (returned via the kAlerted arm) and TestAlert() afterwards
// came back false. alert_delay staggers where in the wait the Alert lands.
bool LostAlertTrial(std::chrono::microseconds alert_delay) {
  Mutex m;
  Condition c;
  std::atomic<ThreadRecord*> waiter_rec{nullptr};
  std::atomic<bool> lost{false};
  Thread waiter = Thread::Fork([&] {
    waiter_rec.store(Thread::Self().rec, std::memory_order_release);
    m.Acquire();
    (void)BuggyWaitWithTimeout(m, c, [] { return false; }, 2ms);
    // Contract: a third party's Alert posted during the wait must still be
    // pending here. With the bug, the kAlerted arm consumed it.
    const bool pending = TestAlert();
    m.Release();
    lost.store(!pending, std::memory_order_release);
  });
  ThreadRecord* rec;
  while ((rec = waiter_rec.load(std::memory_order_acquire)) == nullptr) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(alert_delay);
  Alert(ThreadHandle{rec});
  waiter.Join();
  if (!lost.load(std::memory_order_acquire)) {
    // The Alert landed after the wait finished; it is still pending on the
    // (now dead) record — not a lost-alert trial. Try again.
    return false;
  }
  return true;
}

// Runs the scenario under one chaos seed; returns true if the sweep's
// default trial budget catches the swallowed alert.
bool SeedCatchesLostAlert(std::uint64_t seed) {
  chaos::Configure(chaos::Config{.seed = seed,
                                 .strategy = chaos::Strategy::kUniform});
  bool caught = false;
  for (int trial = 0; trial < 12 && !caught; ++trial) {
    caught = LostAlertTrial(std::chrono::microseconds(100 + 300 * trial));
  }
  chaos::Disable();
  return caught;
}

TEST_F(ChaosRuntimeTest, LostAlertBugIsCaughtAndReproducesFromSeed) {
  Nub::Get().SetWaitqMode(true);  // the cancel-CAS arbitration path
  std::uint64_t found = 0;
  for (std::uint64_t seed = 1; seed <= 8 && found == 0; ++seed) {
    if (SeedCatchesLostAlert(seed)) {
      found = seed;
    }
  }
  ASSERT_NE(found, 0u) << "default sweep (seeds 1..8) missed the bug";
  std::printf(
      "lost alert caught: TAOS_CHAOS_SEED=%llu TAOS_CHAOS_STRATEGY=uniform "
      "TAOS_CHAOS_POINTS=%llx\n",
      static_cast<unsigned long long>(found),
      static_cast<unsigned long long>(chaos::FullPointMask()));
  // Replay: the printed seed must find the same window again.
  EXPECT_TRUE(SeedCatchesLostAlert(found))
      << "seed " << found << " did not reproduce";
}

TEST_F(ChaosRuntimeTest, BannerPrintsReplayTriple) {
  chaos::Configure(chaos::Config{.seed = 99,
                                 .strategy = chaos::Strategy::kPreemptAfterCas,
                                 .point_mask = 0xff});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  chaos::PrintConfigBanner(f);
  std::rewind(f);
  char buf[512] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  ASSERT_GT(n, 0u);
  const std::string banner(buf);
  EXPECT_NE(banner.find("TAOS_CHAOS_SEED=99"), std::string::npos) << banner;
  EXPECT_NE(banner.find("preempt-after-cas"), std::string::npos) << banner;
  EXPECT_NE(banner.find("ff"), std::string::npos) << banner;
}

TEST_F(ChaosRuntimeTest, CoverageTableReportsFires) {
  obs::ResetCoverage();
  chaos::Configure(chaos::Config{.seed = 3,
                                 .strategy = chaos::Strategy::kUniform});
  MixedWorkloadPass();
  chaos::Disable();
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  for (const obs::CoverageRow& row : obs::CoverageSnapshot()) {
    hits += row.hits;
    fires += row.fires;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(fires, 0u);        // uniform fires ~4.7% of crossings
  EXPECT_LT(fires, hits);      // ... but nowhere near all of them
  // And the JSON export carries the table (obs dashboards key on it).
  const std::string json = obs::CoverageJson();
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("spin.acquired"), std::string::npos);
}

#endif  // TAOS_CHAOS_ENABLED

}  // namespace
}  // namespace taos
