// Timed waits: AcquireFor / PFor / WaitFor / AlertWaitFor, the timer-wheel
// deadline subsystem behind them, and the invariants the design promises —
// a grant always beats the deadline, a timeout never consumes a pending
// alert, and WaitWithTimeout creates no threads per call.

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"
#include "src/threads/timer.h"
#include "src/threads/wait_result.h"
#include "src/workload/timeout.h"

namespace taos {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Mutex::AcquireFor
// ---------------------------------------------------------------------------

TEST(TimedMutexTest, AcquireForUncontendedSatisfies) {
  Mutex m;
  EXPECT_EQ(m.AcquireFor(10ms), WaitResult::kSatisfied);
  m.Release();
}

TEST(TimedMutexTest, AcquireForTimesOutWhileHeld) {
  Mutex m;
  m.Acquire();
  std::atomic<int> result{-1};
  Thread t = Thread::Fork([&] {
    result.store(static_cast<int>(m.AcquireFor(5ms)));
  });
  t.Join();
  EXPECT_EQ(result.load(), static_cast<int>(WaitResult::kTimeout));
  // The mutex postcondition is unchanged: still ours to release.
  m.Release();
  m.Acquire();
  m.Release();
}

TEST(TimedMutexTest, ZeroTimeoutIsTryAcquire) {
  Mutex m;
  // Free: a zero deadline still takes the fast-path grant.
  EXPECT_EQ(m.AcquireFor(0ns), WaitResult::kSatisfied);
  // Held: immediate timeout, no blocking, for zero and negative alike.
  Thread t = Thread::Fork([&] {
    EXPECT_EQ(m.AcquireFor(0ns), WaitResult::kTimeout);
    EXPECT_EQ(m.AcquireFor(-5ms), WaitResult::kTimeout);
  });
  t.Join();
  m.Release();
}

TEST(TimedMutexTest, ReleaseBeforeDeadlineGrants) {
  Mutex m;
  m.Acquire();
  std::atomic<int> result{-1};
  Thread t = Thread::Fork([&] {
    result.store(static_cast<int>(m.AcquireFor(10s)));
    m.Release();
  });
  std::this_thread::sleep_for(20ms);
  m.Release();
  t.Join();
  EXPECT_EQ(result.load(), static_cast<int>(WaitResult::kSatisfied));
}

// ---------------------------------------------------------------------------
// Semaphore::PFor
// ---------------------------------------------------------------------------

TEST(TimedSemaphoreTest, PForAvailableSatisfies) {
  Semaphore s;
  EXPECT_EQ(s.PFor(10ms), WaitResult::kSatisfied);
  EXPECT_FALSE(s.AvailableForDebug());
  s.V();
}

TEST(TimedSemaphoreTest, PForTimesOutWhenUnavailable) {
  Semaphore s;
  s.P();
  Thread t = Thread::Fork([&] {
    EXPECT_EQ(s.PFor(5ms), WaitResult::kTimeout);
    EXPECT_EQ(s.PFor(0ns), WaitResult::kTimeout);
  });
  t.Join();
  // UNCHANGED [s]: the failed PFor took nothing.
  EXPECT_FALSE(s.AvailableForDebug());
  s.V();
}

TEST(TimedSemaphoreTest, VBeforeDeadlineGrants) {
  Semaphore s;
  s.P();
  std::atomic<int> result{-1};
  Thread t = Thread::Fork([&] {
    result.store(static_cast<int>(s.PFor(10s)));
  });
  std::this_thread::sleep_for(20ms);
  s.V();
  t.Join();
  EXPECT_EQ(result.load(), static_cast<int>(WaitResult::kSatisfied));
  s.V();
}

// ---------------------------------------------------------------------------
// Condition::WaitFor
// ---------------------------------------------------------------------------

TEST(TimedConditionTest, WaitForTimesOutWithMutexReacquired) {
  Mutex m;
  Condition c;
  Thread t = Thread::Fork([&] {
    m.Acquire();
    EXPECT_EQ(c.WaitFor(m, 5ms), WaitResult::kTimeout);
    // kTimeout hands the mutex back (the spec's TimeoutResume): this
    // Release must be legal.
    m.Release();
  });
  t.Join();
}

TEST(TimedConditionTest, SignalBeforeDeadlineSatisfies) {
  Mutex m;
  Condition c;
  bool flag = false;
  std::atomic<int> result{-1};
  Thread t = Thread::Fork([&] {
    m.Acquire();
    while (!flag) {
      WaitResult r = c.WaitFor(m, 10s);
      result.store(static_cast<int>(r));
      if (r == WaitResult::kTimeout) {
        break;
      }
    }
    m.Release();
  });
  std::this_thread::sleep_for(10ms);
  m.Acquire();
  flag = true;
  m.Release();
  c.Signal();
  t.Join();
  EXPECT_EQ(result.load(), static_cast<int>(WaitResult::kSatisfied));
}

TEST(TimedConditionTest, ZeroTimeoutKeepsMutexAndNeverSleeps) {
  Mutex m;
  Condition c;
  Thread t = Thread::Fork([&] {
    m.Acquire();
    EXPECT_EQ(c.WaitFor(m, 0ns), WaitResult::kTimeout);
    EXPECT_EQ(c.WaitFor(m, -1h), WaitResult::kTimeout);
    m.Release();
  });
  t.Join();
}

// ---------------------------------------------------------------------------
// AlertWaitFor
// ---------------------------------------------------------------------------

TEST(TimedAlertTest, AlertEndsWaitAsValueAndConsumesFlag) {
  Mutex m;
  Condition c;
  std::atomic<int> result{-1};
  std::atomic<bool> still_alerted{true};
  Thread t = Thread::Fork([&] {
    m.Acquire();
    result.store(static_cast<int>(AlertWaitFor(m, c, 10s)));
    m.Release();
    still_alerted.store(TestAlert());
  });
  std::this_thread::sleep_for(20ms);
  Alert(t.Handle());
  t.Join();
  EXPECT_EQ(result.load(), static_cast<int>(WaitResult::kAlerted));
  // kAlerted consumed the flag (no Alerted raised): nothing left pending.
  EXPECT_FALSE(still_alerted.load());
}

TEST(TimedAlertTest, TimeoutDoesNotConsumeAlertPostedAfter) {
  Mutex m;
  Condition c;
  Thread t = Thread::Fork([&] {
    m.Acquire();
    EXPECT_EQ(AlertWaitFor(m, c, 5ms), WaitResult::kTimeout);
    m.Release();
    // An alert posted once we were already out of the queue stays
    // deliverable at the next alert-responsive point.
    while (!TestAlert()) {
      std::this_thread::yield();
    }
  });
  std::this_thread::sleep_for(30ms);
  Alert(t.Handle());
  t.Join();
}

TEST(TimedAlertTest, SignalBeforeDeadlineSatisfies) {
  Mutex m;
  Condition c;
  std::atomic<int> result{-1};
  std::atomic<bool> entered{false};
  Thread t = Thread::Fork([&] {
    m.Acquire();
    entered.store(true);
    result.store(static_cast<int>(AlertWaitFor(m, c, 10s)));
    m.Release();
  });
  while (!entered.load()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(10ms);
  c.Broadcast();
  t.Join();
  EXPECT_EQ(result.load(), static_cast<int>(WaitResult::kSatisfied));
}

// ---------------------------------------------------------------------------
// The deadline subsystem itself
// ---------------------------------------------------------------------------

int CountOsThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream is(line.substr(8));
      int n = 0;
      is >> n;
      return n;
    }
  }
  return -1;
}

TEST(TimerSubsystemTest, WaitWithTimeoutCreatesNoThreadsPerCall) {
  Mutex m;
  Condition c;
  // Warm-up: starts the (single, shared) timer thread and any parker
  // machinery, so the steady-state count below is honest.
  m.Acquire();
  workload::WaitWithTimeout(m, c, [] { return false; }, 5ms);
  m.Release();
  const int before = CountOsThreads();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 20; ++i) {
    m.Acquire();
    EXPECT_FALSE(workload::WaitWithTimeout(m, c, [] { return false; }, 2ms));
    m.Release();
  }
  const int after = CountOsThreads();
  // The watchdog design spawned one thread per call; the wheel spawns none.
  EXPECT_EQ(after, before);
}

TEST(TimedAlertTest, ZeroAndNegativeTimeoutsKeepMutexAndNeverSleep) {
  Mutex m;
  Condition c;
  Thread t = Thread::Fork([&] {
    m.Acquire();
    EXPECT_EQ(AlertWaitFor(m, c, 0ns), WaitResult::kTimeout);
    EXPECT_EQ(AlertWaitFor(m, c, -1h), WaitResult::kTimeout);
    // The mutex is still held across both: this Release must be legal.
    m.Release();
  });
  t.Join();
  EXPECT_EQ(Timer::Get().ArmedForDebug(), 0u);
}

// A positive-but-tiny timeout whose deadline is already behind NowNanos by
// the time Arm runs: the wheel contract says it fires at the NEXT tick —
// never synchronously in the caller, and never gets stuck as a past-due
// entry the advance loop skips.
TEST(TimerSubsystemTest, DeadlinePastAtEnqueueStillFiresAtNextTick) {
  Semaphore s;
  s.P();
  for (int i = 0; i < 10; ++i) {
    Thread t = Thread::Fork([&] {
      // 1ns is in the past before the slow path even publishes the timed
      // state; the waiter must still park and be expired by the wheel.
      EXPECT_EQ(s.PFor(1ns), WaitResult::kTimeout);
    });
    t.Join();
  }
  // Every past-due entry was fired and unlinked, not abandoned.
  EXPECT_EQ(Timer::Get().ArmedForDebug(), 0u);
  EXPECT_FALSE(s.AvailableForDebug());
  s.V();
}

// Two waiters with identical timeouts land in the same wheel slot and are
// collected by one advance: both must be expired in that batch — the
// second entry must not be lost to the first's slot relink or survive to a
// later tick with its waiter already gone.
TEST(TimerSubsystemTest, TwoWaitersExpiringTheSameTickBothFire) {
  Semaphore s;
  s.P();
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> timeouts{0};
    std::atomic<int> ready{0};
    std::vector<Thread> waiters;
    for (int i = 0; i < 2; ++i) {
      waiters.push_back(Thread::Fork([&] {
        ready.fetch_add(1, std::memory_order_relaxed);
        while (ready.load(std::memory_order_relaxed) < 2) {
          std::this_thread::yield();
        }
        // Same duration from near-identical starts: the two deadlines are
        // microseconds apart, one ~262us tick wide — same slot.
        if (s.PFor(5ms) == WaitResult::kTimeout) {
          timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      }));
    }
    for (Thread& t : waiters) {
      t.Join();
    }
    EXPECT_EQ(timeouts.load(), 2) << "round " << round;
  }
  EXPECT_EQ(Timer::Get().ArmedForDebug(), 0u);
  s.V();
}

TEST(TimerSubsystemTest, CancelledDeadlinesDoNotAccumulate) {
  Semaphore s;
  s.P();
  // Grant every wait before its (generous) deadline: each armed timer must
  // be cancelled and unlinked, not left to expire.
  for (int i = 0; i < 100; ++i) {
    Thread t = Thread::Fork([&] { EXPECT_EQ(s.PFor(10s), WaitResult::kSatisfied); });
    std::this_thread::sleep_for(1ms);
    s.V();
    t.Join();
  }
  EXPECT_EQ(Timer::Get().ArmedForDebug(), 0u);
  s.V();
}

// Expiry-vs-grant: hammer a semaphore with short timed waits while tokens
// circulate. Accounting must balance exactly — a waiter that reported
// kTimeout took nothing, a waiter that reported kSatisfied took exactly one
// token — regardless of how the deadline races the V.
TEST(TimerSubsystemTest, ExpiryVsGrantNeverLosesTheGrant) {
  Semaphore s;
  s.P();  // start with the token held here
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  std::atomic<int> satisfied{0};
  std::vector<Thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Mixed deadlines, including sub-tick ones, to land on both sides
        // of the race.
        const auto timeout = std::chrono::microseconds(50 * ((t + i) % 7));
        if (s.PFor(timeout) == WaitResult::kSatisfied) {
          satisfied.fetch_add(1, std::memory_order_relaxed);
          s.V();  // put the token back for someone else
        }
      }
    }));
  }
  s.V();  // release the token into the scrum
  for (Thread& t : threads) {
    t.Join();
  }
  // The token must still exist: exactly one P can succeed immediately.
  EXPECT_EQ(s.PFor(0ns), WaitResult::kSatisfied);
  EXPECT_EQ(s.PFor(0ns), WaitResult::kTimeout);
  s.V();
  EXPECT_EQ(Timer::Get().ArmedForDebug(), 0u);
}

// Same shape on a condition variable: signals and deadlines race, and every
// exit leaves the mutex consistently re-held.
TEST(TimerSubsystemTest, WaitForSignalRaceStress) {
  Mutex m;
  Condition c;
  std::atomic<bool> stop{false};
  int guarded = 0;  // only ever touched under m
  constexpr int kWaiters = 4;
  std::vector<Thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.push_back(Thread::Fork([&] {
      for (int i = 0; i < 300; ++i) {
        m.Acquire();
        c.WaitFor(m, std::chrono::microseconds(100));
        ++guarded;  // legal on every result: m is held again
        m.Release();
      }
    }));
  }
  Thread signaller = Thread::Fork([&] {
    while (!stop.load(std::memory_order_acquire)) {
      c.Broadcast();
      std::this_thread::yield();
    }
  });
  for (Thread& t : waiters) {
    t.Join();
  }
  stop.store(true, std::memory_order_release);
  signaller.Join();
  m.Acquire();
  EXPECT_EQ(guarded, kWaiters * 300);
  m.Release();
}

}  // namespace
}  // namespace taos
