// Condition variables: Wait / Signal / Broadcast (Mesa "hint" semantics),
// the eventcount absorption behaviour, and the user-code fast paths.

#include "src/threads/threads.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace taos {
namespace {

TEST(ConditionTest, SignalWithNoWaitersAvoidsTheNub) {
  Condition c;
  const std::uint64_t nub_before =
      Nub::Get().nub_entries.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    c.Signal();
    c.Broadcast();
  }
  EXPECT_EQ(c.fast_signals(), 200u);
  EXPECT_EQ(c.nub_signals(), 0u);
  EXPECT_EQ(Nub::Get().nub_entries.load(std::memory_order_relaxed),
            nub_before);
}

TEST(ConditionTest, WaitSignalHandoff) {
  Mutex m;
  Condition c;
  bool ready = false;  // protected by m

  Thread waiter = Thread::Fork([&] {
    Lock lock(m);
    while (!ready) {
      c.Wait(m);
    }
  });

  {
    Lock lock(m);
    ready = true;
  }
  c.Signal();
  waiter.Join();
}

TEST(ConditionTest, PredicateMustBeRecheckd) {
  // Mesa semantics: a wakeup is only a hint. Two consumers race for one
  // item; the loser must Wait again, not crash on an empty queue.
  Mutex m;
  Condition c;
  int items = 0;  // protected by m
  std::atomic<int> consumed{0};
  std::atomic<bool> stop{false};

  std::vector<Thread> consumers;
  for (int i = 0; i < 2; ++i) {
    consumers.push_back(Thread::Fork([&] {
      Lock lock(m);
      for (;;) {
        while (items == 0 && !stop.load(std::memory_order_relaxed)) {
          c.Wait(m);
        }
        if (items > 0) {
          --items;
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          return;  // stop
        }
      }
    }));
  }

  constexpr int kItems = 500;
  for (int i = 0; i < kItems; ++i) {
    {
      Lock lock(m);
      ++items;
    }
    // Broadcast wakes both; only one finds the item.
    c.Broadcast();
  }
  // Drain, then stop.
  for (;;) {
    Lock lock(m);
    if (items == 0) {
      break;
    }
  }
  {
    Lock lock(m);
    stop.store(true, std::memory_order_relaxed);
  }
  c.Broadcast();
  for (Thread& t : consumers) {
    t.Join();
  }
  EXPECT_EQ(consumed.load(), kItems);
}

TEST(ConditionTest, BroadcastWakesAllWaiters) {
  Mutex m;
  Condition c;
  bool go = false;  // protected by m
  constexpr int kWaiters = 8;
  std::atomic<int> resumed{0};

  std::vector<Thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.push_back(Thread::Fork([&] {
      Lock lock(m);
      while (!go) {
        c.Wait(m);
      }
      resumed.fetch_add(1, std::memory_order_relaxed);
    }));
  }

  // Give the waiters time to actually block (not load-bearing, just makes
  // the broadcast path — rather than the window path — likely).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    Lock lock(m);
    go = true;
  }
  c.Broadcast();
  for (Thread& t : waiters) {
    t.Join();
  }
  EXPECT_EQ(resumed.load(), kWaiters);
}

TEST(ConditionTest, SignalWakesAtLeastOneOfMany) {
  Mutex m;
  Condition c;
  int tickets = 0;  // protected by m
  constexpr int kWaiters = 4;
  std::atomic<int> got{0};

  std::vector<Thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.push_back(Thread::Fork([&] {
      Lock lock(m);
      while (tickets == 0) {
        c.Wait(m);
      }
      --tickets;
      got.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // One ticket per signal; every waiter eventually gets one.
  for (int i = 0; i < kWaiters; ++i) {
    {
      Lock lock(m);
      ++tickets;
    }
    c.Signal();
  }
  for (Thread& t : waiters) {
    t.Join();
  }
  EXPECT_EQ(got.load(), kWaiters);
}

TEST(ConditionTest, StressProducerConsumerManyConditions) {
  // Several independent (mutex, condition, cell) triples hammered at once;
  // exercises the global Nub spin-lock under cross-object contention.
  constexpr int kPairs = 4;
  constexpr int kRounds = 2000;
  struct Cell {
    Mutex m;
    Condition c;
    int value = 0;  // 0 = empty
    std::uint64_t sum = 0;
  };
  std::vector<std::unique_ptr<Cell>> cells;
  for (int i = 0; i < kPairs; ++i) {
    cells.push_back(std::make_unique<Cell>());
  }

  std::vector<Thread> threads;
  for (int i = 0; i < kPairs; ++i) {
    Cell* cell = cells[static_cast<std::size_t>(i)].get();
    threads.push_back(Thread::Fork([cell] {  // producer
      for (int r = 1; r <= kRounds; ++r) {
        Lock lock(cell->m);
        while (cell->value != 0) {
          cell->c.Wait(cell->m);
        }
        cell->value = r;
        cell->c.Broadcast();
      }
    }));
    threads.push_back(Thread::Fork([cell] {  // consumer
      for (int r = 1; r <= kRounds; ++r) {
        Lock lock(cell->m);
        while (cell->value == 0) {
          cell->c.Wait(cell->m);
        }
        cell->sum += static_cast<std::uint64_t>(cell->value);
        cell->value = 0;
        cell->c.Broadcast();
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kRounds) * (kRounds + 1) / 2;
  for (const auto& cell : cells) {
    EXPECT_EQ(cell->sum, expected);
  }
}

TEST(ConditionTest, WaitReleasesTheMutexWhileBlocked) {
  Mutex m;
  Condition c;
  std::atomic<bool> observed_free{false};
  bool done = false;  // protected by m

  Thread waiter = Thread::Fork([&] {
    Lock lock(m);
    while (!done) {
      c.Wait(m);
    }
  });

  // Eventually the waiter blocks and we can take the mutex ourselves.
  for (int i = 0; i < 100000 && !observed_free.load(); ++i) {
    if (m.TryAcquire()) {
      observed_free.store(true);
      done = true;
      m.Release();
      c.Signal();
    } else {
      std::this_thread::yield();
    }
  }
  EXPECT_TRUE(observed_free.load());
  waiter.Join();
}

}  // namespace
}  // namespace taos
