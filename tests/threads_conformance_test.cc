// Conformance harness for the sharded Nub: real threads hammer the
// production primitives in spec-tracing mode, and every recorded trace is
// replayed through the executable specification's checker. Each scenario
// runs over the full backend matrix — {tas, mcs, clh} spin-lock cores
// (TAOS_LOCK) x {per-object locks, TAOS_NUB_GLOBAL_LOCK semantics} x
// {classic intrusive queues, the TAOS_WAITQ waiter-queue substrate} — so
// every slow-path configuration is held to exactly the serializations the
// paper-faithful one admits. The waitq rows are the spec gate the substrate
// must pass: AlertWait's UNCHANGED [c] ghost check and the AlertP
// RETURNS/RAISES overlap both bite on its cancel CAS; the queue-core rows
// hold the MCS/CLH handoff chains to the same serializations as the TAS
// bit they replace.
//
// The trace is sorted by the global sequence stamp (src/spec/trace.h), so a
// passing check here is evidence for the serialization argument in
// DESIGN.md §8, not just for each primitive in isolation.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/chaos.h"
#include "src/spec/checker.h"
#include "src/threads/threads.h"
#include "src/workload/bounded_buffer.h"

namespace taos {
namespace {

// Sanitized builds run the same schedules at reduced iteration counts, and
// so do chaos runs: injected delays stretch every slow path, so the matrix
// keeps the sanitizer budget to stay inside the ctest timeout. A function
// (not a namespace-scope constant) because the chaos flag is set by env at
// static-init time in another translation unit.
int Scale() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return 1;
#else
  return chaos::Active() ? 1 : 4;
#endif
}

enum class LockMode { kSharded, kGlobal };
enum class QueueMode { kClassic, kWaitq };

using BackendTuple = std::tuple<LockBackend, LockMode, QueueMode>;

std::string ModeName(const ::testing::TestParamInfo<BackendTuple>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case LockBackend::kTas:
      name = "Tas";
      break;
    case LockBackend::kMcs:
      name = "Mcs";
      break;
    case LockBackend::kClh:
      name = "Clh";
      break;
  }
  name += std::get<1>(info.param) == LockMode::kSharded ? "Sharded" : "Global";
  name += std::get<2>(info.param) == QueueMode::kClassic ? "Classic" : "Waitq";
  return name;
}

class ConformanceTest : public ::testing::TestWithParam<BackendTuple> {
 protected:
  void SetUp() override {
    ASSERT_FALSE(Nub::Get().tracing());
    saved_backend_ = SpinLock::backend();
    saved_lock_mode_ = Nub::Get().global_lock_mode();
    saved_waitq_mode_ = Nub::Get().waitq_mode();
    // The system is quiescent between tests, so switching is legal.
    Nub::Get().SetLockBackend(std::get<0>(GetParam()));
    Nub::Get().SetGlobalLockMode(std::get<1>(GetParam()) == LockMode::kGlobal);
    Nub::Get().SetWaitqMode(std::get<2>(GetParam()) == QueueMode::kWaitq);
    Nub::Get().SetTrace(&trace_);
  }

  void TearDown() override {
    Nub::Get().SetTrace(nullptr);
    Nub::Get().SetLockBackend(saved_backend_);
    Nub::Get().SetGlobalLockMode(saved_lock_mode_);
    Nub::Get().SetWaitqMode(saved_waitq_mode_);
  }

  void CheckConformance() {
    Nub::Get().SetTrace(nullptr);
    spec::TraceChecker checker;
    spec::CheckResult r = checker.CheckTrace(trace_);
    EXPECT_TRUE(r.ok) << "at action " << r.failed_index << ": " << r.message
                      << "\ntrace:\n"
                      << trace_.ToString();
    checked_ = r;
  }

  spec::Trace trace_;
  spec::CheckResult checked_;
  LockBackend saved_backend_ = LockBackend::kTas;
  bool saved_lock_mode_ = false;
  bool saved_waitq_mode_ = false;
};

// Many threads over many mutexes: the scenario sharding exists for. Each
// thread walks all the mutexes with its own stride, so every pair of
// threads collides on every object sooner or later.
TEST_P(ConformanceTest, MutexStormManyObjects) {
  constexpr int kMutexes = 4;
  constexpr int kThreads = 8;
  const int iters = 30 * Scale();
  Mutex mutexes[kMutexes];
  std::int64_t counters[kMutexes] = {};
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&, t] {
      for (int i = 0; i < iters; ++i) {
        const int k = (i * (t % kMutexes + 1) + t) % kMutexes;
        Lock lock(mutexes[k]);
        ++counters[k];
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  std::int64_t total = 0;
  for (std::int64_t c : counters) {
    total += c;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(kThreads) * iters);
  CheckConformance();
  EXPECT_EQ(checked_.actions_checked,
            2u * static_cast<std::uint64_t>(kThreads) * iters);
}

// Signal and Broadcast racing Wait on two independent conditions, with the
// producer/consumer predicate forcing real blocking.
TEST_P(ConformanceTest, ConditionSignalBroadcastStress) {
  const int rounds = 25 * Scale();
  Mutex m;
  Condition not_empty;
  Condition not_full;
  int value = 0;  // 0 = empty
  std::vector<Thread> producers;
  std::vector<Thread> consumers;
  for (int p = 0; p < 2; ++p) {
    producers.push_back(Thread::Fork([&] {
      for (int r = 0; r < rounds; ++r) {
        Lock lock(m);
        while (value != 0) {
          not_full.Wait(m);
        }
        value = 1;
        if (r % 4 == 0) {
          not_empty.Broadcast();
        } else {
          not_empty.Signal();
        }
      }
    }));
  }
  for (int c = 0; c < 2; ++c) {
    consumers.push_back(Thread::Fork([&] {
      for (int r = 0; r < rounds; ++r) {
        Lock lock(m);
        while (value == 0) {
          not_empty.Wait(m);
        }
        value = 0;
        not_full.Broadcast();
      }
    }));
  }
  for (Thread& t : producers) {
    t.Join();
  }
  for (Thread& t : consumers) {
    t.Join();
  }
  EXPECT_EQ(value, 0);
  CheckConformance();
}

// Semaphores as tokens circulating through a ring of threads, plus an
// "interrupt" thread doing bare Vs (no precondition on V).
TEST_P(ConformanceTest, SemaphoreRing) {
  constexpr int kStations = 4;
  const int laps = 25 * Scale();
  Semaphore ring[kStations];
  for (Semaphore& s : ring) {
    s.P();  // all stations start empty
  }
  std::vector<Thread> threads;
  for (int i = 0; i < kStations; ++i) {
    threads.push_back(Thread::Fork([&, i] {
      for (int lap = 0; lap < laps; ++lap) {
        ring[i].P();
        ring[(i + 1) % kStations].V();
      }
    }));
  }
  ring[0].V();  // inject the token
  for (Thread& t : threads) {
    t.Join();
  }
  ring[0].P();  // retire it
  CheckConformance();
}

// Alert storms against all three alert-responsive points while the victims
// also get woken the normal way — the cross-object paths (rule 3's try-lock
// dance) under real contention.
TEST_P(ConformanceTest, AlertStorm) {
  const int rounds = 10 * Scale();
  Mutex m;
  Condition c;
  Semaphore s;
  s.P();  // keep it unavailable so AlertP really blocks
  int alerted_waits = 0;
  int normal_waits = 0;
  for (int r = 0; r < rounds; ++r) {
    bool flag = false;
    Thread waiter = Thread::Fork([&] {
      Lock lock(m);
      try {
        while (!flag) {
          AlertWait(m, c);
        }
        ++normal_waits;
      } catch (const Alerted&) {
        ++alerted_waits;
      }
    });
    Thread p_victim = Thread::Fork([&] {
      try {
        AlertP(s);
        s.V();  // took the token: put it back
      } catch (const Alerted&) {
      }
    });
    if (r % 2 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Alert(waiter.Handle());
    Alert(p_victim.Handle());
    {
      Lock lock(m);
      flag = true;
    }
    c.Signal();
    s.V();
    waiter.Join();
    p_victim.Join();
    // Drain whatever the round left behind: the token if p_victim raised,
    // and this thread's never-set alert flag.
    s.P();
    EXPECT_FALSE(TestAlert());
  }
  EXPECT_EQ(alerted_waits + normal_waits, rounds);
  CheckConformance();
}

// Two bounded buffers run by disjoint thread pairs: in sharded mode their
// slow paths never touch a common lock, and the merged trace must still
// serialize.
TEST_P(ConformanceTest, TwoBoundedBuffers) {
  const int items = 50 * Scale();
  workload::BoundedBuffer<Mutex, Condition> left(2);
  workload::BoundedBuffer<Mutex, Condition> right(3);
  std::uint64_t left_sum = 0;
  std::uint64_t right_sum = 0;
  Thread lp = Thread::Fork([&] {
    for (int i = 1; i <= items; ++i) {
      left.Put(static_cast<std::uint64_t>(i));
    }
  });
  Thread lc = Thread::Fork([&] {
    for (int i = 0; i < items; ++i) {
      left_sum += left.Get();
    }
  });
  Thread rp = Thread::Fork([&] {
    for (int i = 1; i <= items; ++i) {
      right.Put(static_cast<std::uint64_t>(i) * 10);
    }
  });
  Thread rc = Thread::Fork([&] {
    for (int i = 0; i < items; ++i) {
      right_sum += right.Get();
    }
  });
  lp.Join();
  lc.Join();
  rp.Join();
  rc.Join();
  const std::uint64_t n = static_cast<std::uint64_t>(items);
  EXPECT_EQ(left_sum, n * (n + 1) / 2);
  EXPECT_EQ(right_sum, 10 * n * (n + 1) / 2);
  CheckConformance();
}

// Timed waits in traced mode, deadlines racing grants across the whole
// matrix: the checker holds AcquireFor/PFor to their one-action timeout
// kinds (UNCHANGED [m] / UNCHANGED [s]) and WaitFor/AlertWaitFor to the
// Enqueue;TimeoutResume composition — including the Signal-vs-expiry races
// where the timer dequeued a thread that is still a spec-member of c.
TEST_P(ConformanceTest, TimedWaitsRaceGrantsAndExpiry) {
  const int iters = 15 * Scale();
  Mutex m;
  Condition c;
  Semaphore s;
  std::atomic<bool> stop{false};
  std::vector<Thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.push_back(Thread::Fork([&, t] {
      for (int i = 0; i < iters; ++i) {
        const auto timeout = std::chrono::microseconds(40 * ((t + i) % 5));
        if (m.AcquireFor(timeout) == WaitResult::kSatisfied) {
          m.Release();
        }
        if (s.PFor(timeout) == WaitResult::kSatisfied) {
          s.V();
        }
        m.Acquire();
        if (i % 2 == 0) {
          c.WaitFor(m, timeout);
        } else {
          AlertWaitFor(m, c, timeout);
        }
        m.Release();
      }
    }));
  }
  Thread signaller = Thread::Fork([&] {
    while (!stop.load(std::memory_order_acquire)) {
      c.Signal();
      std::this_thread::yield();
    }
  });
  for (Thread& t : threads) {
    t.Join();
  }
  stop.store(true, std::memory_order_release);
  signaller.Join();
  CheckConformance();
}

// Readers and writers over two ReaderWriterMutexes, timed and untimed:
// reader/reader overlap is a legal serialization (the checker admits
// concurrent members of rw.readers), writers must serialize, and the timed
// variants hold RWAcquireFor/TIMEOUT and RWAcquireSharedFor/TIMEOUT to
// UNCHANGED [rw].
TEST_P(ConformanceTest, RwlockSharedExclusiveStorm) {
  const int iters = 15 * Scale();
  ReaderWriterMutex locks[2];
  std::int64_t counters[2] = {};
  std::atomic<int> readers_seen{0};
  std::vector<Thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.push_back(Thread::Fork([&, t] {
      for (int i = 0; i < iters; ++i) {
        ReaderWriterMutex& rw = locks[(t + i) % 2];
        const int op = (t + i) % 6;
        if (op < 3) {
          ReadLock rl(rw);
          readers_seen.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();  // widen the reader/reader overlap
        } else if (op < 5) {
          WriteLock wl(rw);
          ++counters[(t + i) % 2];
        } else if (t % 2 == 0) {
          if (rw.AcquireSharedFor(std::chrono::microseconds(20 * (i % 3))) ==
              WaitResult::kSatisfied) {
            rw.ReleaseShared();
          }
        } else {
          if (rw.AcquireFor(std::chrono::microseconds(20 * (i % 3))) ==
              WaitResult::kSatisfied) {
            ++counters[(t + i) % 2];
            rw.Release();
          }
        }
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_GT(readers_seen.load(std::memory_order_relaxed), 0);
  CheckConformance();
}

// The multi-object wait under tracing: WaitAny/WaitAll waiters (plain,
// timed, alertable) racing Sets on shared events. The checker holds every
// PollAny to "granted was set and the rest UNCHANGED", every PollAll to a
// simultaneous ∀-WHEN, and the auto-reset consumptions to exactly-once —
// the double-grant argument, replayed over the real runtime's
// serializations instead of the model's.
TEST_P(ConformanceTest, EventPollStorm) {
  const int rounds = 10 * Scale();
  Event a(EventReset::kAuto);
  Event b(EventReset::kAuto);
  Event m;  // manual: observed, never consumed
  std::atomic<int> grants{0};
  std::atomic<int> done{0};
  std::vector<Thread> waiters;
  for (int w = 0; w < 2; ++w) {
    waiters.push_back(Thread::Fork([&, w] {
      Poll p;
      p.Add(a);
      p.Add(b);
      for (int r = 0; r < rounds; ++r) {
        if ((r + w) % 3 == 0) {
          const Poll::AnyResult res =
              p.WaitAnyFor(std::chrono::microseconds(50 * (r % 4)));
          if (res.result == WaitResult::kSatisfied) {
            grants.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          (void)p.WaitAny();
          grants.fetch_add(1, std::memory_order_relaxed);
        }
      }
      done.fetch_add(1, std::memory_order_release);
    }));
  }
  Thread all_waiter = Thread::Fork([&] {
    Poll p;
    p.Add(b);
    p.Add(m);
    for (int r = 0; r < rounds; ++r) {
      if (p.WaitAllFor(std::chrono::microseconds(80)) ==
          WaitResult::kSatisfied) {
        grants.fetch_add(1, std::memory_order_relaxed);
      }
    }
    done.fetch_add(1, std::memory_order_release);
  });
  Thread setter = Thread::Fork([&] {
    // Over-provision pulses until every waiter retires: an auto pulse can
    // be consumed by a timed scan that then reports kTimeout on its next
    // round, so a counted feed cannot guarantee termination.
    int i = 0;
    while (done.load(std::memory_order_acquire) < 3) {
      switch (i++ % 4) {
        case 0: a.Set(); break;
        case 1: b.Set(); break;
        case 2: m.Set(); break;
        case 3: m.Reset(); break;
      }
      if (i % 8 == 0) {
        std::this_thread::yield();
      }
    }
  });
  for (Thread& t : waiters) {
    t.Join();
  }
  all_waiter.Join();
  setter.Join();
  EXPECT_GT(grants.load(std::memory_order_relaxed), 0);
  CheckConformance();
}

// Alertable poll waits racing Alert, grants, and timeouts: the PollAlert
// RAISES exit must serialize like AlertWait's (alert consumed, no member
// consumed), and a grant that beats the alert leaves the flag pending.
TEST_P(ConformanceTest, PollAlertRaces) {
  const int rounds = 8 * Scale();
  Event a(EventReset::kAuto);
  int raised = 0;
  int granted = 0;
  for (int r = 0; r < rounds; ++r) {
    Thread waiter = Thread::Fork([&] {
      Poll p;
      p.Add(a);
      try {
        if ((r % 2) == 0) {
          (void)p.AlertWaitAny();
          ++granted;
        } else {
          const Poll::AnyResult res =
              p.AlertWaitAnyFor(std::chrono::milliseconds(50));
          if (res.result == WaitResult::kSatisfied) {
            ++granted;
          } else {
            ++raised;  // kAlerted or kTimeout: count as a non-grant exit
          }
        }
      } catch (const Alerted&) {
        ++raised;
      }
    });
    if (r % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Alert(waiter.Handle());
    a.Set();
    waiter.Join();
    // Drain the round's leftover pulse (present iff the waiter raised or
    // timed out); a leftover alert dies with the round's thread.
    (void)a.TryWait();
  }
  EXPECT_EQ(raised + granted, rounds);
  CheckConformance();
}

// The MessageQueue composition in traced mode: its Mutex, Events, and the
// receiver's WaitAny all interleave in one trace, and the checker holds the
// whole fabric — queue edges under the mutex, level events, poll grants —
// to a single serialization.
TEST_P(ConformanceTest, MessageQueueFanIn) {
  const int items = 12 * Scale();
  MessageQueue<int> q0(2);
  MessageQueue<int> q1(2);
  Event shutdown;
  std::int64_t sum = 0;
  Thread receiver = Thread::Fork([&] {
    Poll p;
    p.Add(q0.readable());
    p.Add(q1.readable());
    p.Add(shutdown);
    int received = 0;
    while (received < 2 * items) {
      const std::size_t idx = p.WaitAny();
      int v;
      if (idx == 0 && q0.TryRecv(&v) == QueueResult::kOk) {
        sum += v;
        ++received;
      } else if (idx == 1 && q1.TryRecv(&v) == QueueResult::kOk) {
        sum += v;
        ++received;
      }
    }
  });
  Thread p0 = Thread::Fork([&] {
    for (int i = 1; i <= items; ++i) {
      ASSERT_EQ(q0.Send(i), QueueResult::kOk);
    }
  });
  Thread p1 = Thread::Fork([&] {
    for (int i = 1; i <= items; ++i) {
      ASSERT_EQ(q1.SendFor(i, std::chrono::seconds(30)), QueueResult::kOk);
    }
  });
  p0.Join();
  p1.Join();
  receiver.Join();
  shutdown.Set();
  const std::int64_t n = items;
  EXPECT_EQ(sum, 2 * (n * (n + 1) / 2));
  CheckConformance();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ConformanceTest,
    ::testing::Combine(::testing::Values(LockBackend::kTas, LockBackend::kMcs,
                                         LockBackend::kClh),
                       ::testing::Values(LockMode::kSharded, LockMode::kGlobal),
                       ::testing::Values(QueueMode::kClassic,
                                         QueueMode::kWaitq)),
    ModeName);

// ---------------------------------------------------------------------------
// Rwlock checker semantics on hand-built traces: what the storm above can
// only exercise probabilistically is pinned here exactly — the checker
// ADMITS reader/reader overlap and REJECTS every overlap involving a writer.
// ---------------------------------------------------------------------------

TEST(RwlockCheckerTest, ReaderReaderOverlapAdmitted) {
  const spec::ObjId rw = 1;
  std::vector<spec::Action> actions = {
      spec::MakeRwAcquireShared(1, rw), spec::MakeRwAcquireShared(2, rw),
      spec::MakeRwReleaseShared(1, rw), spec::MakeRwReleaseShared(2, rw)};
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(actions);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.actions_checked, 4u);
}

TEST(RwlockCheckerTest, WriterOverlapsRejected) {
  const spec::ObjId rw = 1;
  spec::TraceChecker checker;
  {
    // A writer acquiring while a reader is inside: WHEN requires
    // rw.readers = {}.
    std::vector<spec::Action> actions = {spec::MakeRwAcquireShared(1, rw),
                                         spec::MakeRwAcquire(2, rw)};
    spec::CheckResult r = checker.CheckTrace(actions);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.failed_index, 1u);
  }
  {
    // A reader admitted while a writer holds: WHEN requires rw.writer = NIL.
    std::vector<spec::Action> actions = {spec::MakeRwAcquire(1, rw),
                                         spec::MakeRwAcquireShared(2, rw)};
    spec::CheckResult r = checker.CheckTrace(actions);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.failed_index, 1u);
  }
  {
    // Two writers.
    std::vector<spec::Action> actions = {spec::MakeRwAcquire(1, rw),
                                         spec::MakeRwAcquire(2, rw)};
    spec::CheckResult r = checker.CheckTrace(actions);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.failed_index, 1u);
  }
  {
    // REQUIRES: releasing a shared hold it does not have.
    std::vector<spec::Action> actions = {spec::MakeRwReleaseShared(1, rw)};
    spec::CheckResult r = checker.CheckTrace(actions);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.message.find("REQUIRES"), std::string::npos) << r.message;
  }
}

}  // namespace
}  // namespace taos
