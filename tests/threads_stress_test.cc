// Long-running mixed stress on the production (OS-thread) library: many
// threads hammering overlapping sets of mutexes, conditions, semaphores and
// alerts, with counting invariants checked at the end. The deterministic
// twin of this test is the model fuzzer (tests/model_fuzz_test.cc); this
// one exercises real preemption, real parallel RMW contention, and the
// seq_cst enqueue/test pairings that only matter on real hardware.
//
// The random mixers use non-blocking try-variants of the cell operation so
// no random interleaving can strand every thread in a Wait; a dedicated
// producer/consumer pair with fixed roles exercises the blocking paths with
// guaranteed progress.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/xorshift.h"
#include "src/threads/threads.h"

namespace taos {
namespace {

class StressSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSweep, MixedPrimitives) {
  constexpr int kMixers = 6;
  constexpr int kOpsPerThread = 4000;
  constexpr int kMutexes = 3;
  constexpr int kSems = 2;
  constexpr int kPingPongRounds = 3000;

  struct Shared {
    Mutex mutexes[kMutexes];
    std::int64_t counters[kMutexes] = {0, 0, 0};  // each guarded by its mutex
    Semaphore sems[kSems];
    std::atomic<std::int64_t> sem_counter{0};
    // The try-cell the mixers toggle (never waited on).
    Mutex cell_m;
    std::int64_t cell_toggles = 0;  // guarded by cell_m
    int cell = 0;                   // guarded by cell_m
    // The blocking ping-pong pair's own cell.
    Mutex pp_m;
    Condition pp_c;
    int pp_cell = 0;  // guarded by pp_m
  };
  auto shared = std::make_unique<Shared>();

  std::vector<Thread> threads;
  // Fixed-role blocking pair: guaranteed progress, heavy Wait traffic.
  threads.push_back(Thread::Fork([&s = *shared] {
    for (int r = 0; r < kPingPongRounds; ++r) {
      Lock lock(s.pp_m);
      while (s.pp_cell != 0) {
        s.pp_c.Wait(s.pp_m);
      }
      s.pp_cell = 1;
      s.pp_c.Broadcast();
    }
  }));
  threads.push_back(Thread::Fork([&s = *shared] {
    for (int r = 0; r < kPingPongRounds; ++r) {
      Lock lock(s.pp_m);
      while (s.pp_cell == 0) {
        s.pp_c.Wait(s.pp_m);
      }
      s.pp_cell = 0;
      s.pp_c.Broadcast();
    }
  }));

  // Random mixers.
  for (int t = 0; t < kMixers; ++t) {
    const std::uint64_t seed =
        GetParam() * 977 + static_cast<std::uint64_t>(t);
    threads.push_back(Thread::Fork([&s = *shared, seed] {
      XorShift rng(seed);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::uint32_t roll = rng.Below(100);
        if (roll < 45) {
          const std::size_t i = rng.Below(kMutexes);
          Lock lock(s.mutexes[i]);
          ++s.counters[i];
        } else if (roll < 70) {
          const std::size_t i = rng.Below(kSems);
          s.sems[i].P();
          s.sem_counter.fetch_add(1, std::memory_order_relaxed);
          s.sems[i].V();
        } else if (roll < 95) {  // non-blocking cell toggle
          Lock lock(s.cell_m);
          s.cell = 1 - s.cell;
          ++s.cell_toggles;
        } else {
          (void)TestAlert();
        }
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }

  std::int64_t mutex_total = 0;
  for (int i = 0; i < kMutexes; ++i) {
    mutex_total += shared->counters[i];
  }
  EXPECT_GT(mutex_total, 0);
  EXPECT_GT(shared->sem_counter.load(), 0);
  EXPECT_GT(shared->cell_toggles, 0);
  EXPECT_EQ(shared->pp_cell, 0);  // the pair completed all rounds in step
}

INSTANTIATE_TEST_SUITE_P(Threads, StressSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(StressTest, ManyThreadsManyObjects) {
  // Wide fan-out: 24 threads over 8 independent locks; checks the global
  // Nub spin-lock under heavy cross-object traffic.
  constexpr int kThreads = 24;
  constexpr int kLocks = 8;
  constexpr int kIters = 1000;
  struct Cell {
    Mutex m;
    std::int64_t n = 0;
  };
  std::vector<std::unique_ptr<Cell>> cells;
  for (int i = 0; i < kLocks; ++i) {
    cells.push_back(std::make_unique<Cell>());
  }
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&cells, t] {
      XorShift rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        Cell& cell = *cells[rng.Below(kLocks)];
        Lock lock(cell.m);
        ++cell.n;
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  std::int64_t total = 0;
  for (const auto& cell : cells) {
    total += cell->n;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(StressTest, AlertStorm) {
  // Alerts fired at threads that are randomly blocked, waiting, or
  // running; every thread must terminate (each AlertP either consumes a
  // token or raises).
  constexpr int kWorkers = 6;
  constexpr int kRounds = 300;
  Semaphore sem;
  sem.P();  // start unavailable: AlertP usually blocks
  std::atomic<int> exits{0};
  std::atomic<int> raises{0};
  std::vector<Thread> workers;
  std::vector<ThreadHandle> handles;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(Thread::Fork([&] {
      for (int r = 0; r < kRounds; ++r) {
        try {
          AlertP(sem);
          sem.V();  // give the token back
        } catch (const Alerted&) {
          raises.fetch_add(1, std::memory_order_relaxed);
        }
      }
      exits.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (const Thread& w : workers) {
    handles.push_back(w.Handle());
  }
  // The storm: alert everyone repeatedly. Tokens only start flowing after
  // the first raise, so at least one alert is guaranteed to hit a blocked
  // (or about-to-block) AlertP while the semaphore is unavailable.
  XorShift rng(99);
  while (exits.load(std::memory_order_relaxed) < kWorkers) {
    Alert(handles[rng.Below(kWorkers)]);
    if (raises.load(std::memory_order_relaxed) > 0 && rng.Chance(1, 8)) {
      sem.V();
    }
  }
  for (Thread& w : workers) {
    w.Join();
  }
  EXPECT_GT(raises.load(), 0);
}

}  // namespace
}  // namespace taos
