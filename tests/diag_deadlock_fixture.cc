// A deliberately deadlocked process: two threads take two mutexes in
// opposite orders and block forever. The point is the watchdog — it must
// confirm the cycle (same members, same since_ns, two consecutive scans)
// and name both threads and both objects long before any test timeout.
//
// Exit codes (the ctest registration asserts 0):
//   0  watchdog reported exactly the planted cycle
//   1  guard timeout: the watchdog never fired
//   2  watchdog fired but named the wrong cycle
//
// The deadlocked threads are deliberately never joined: once the cycle is
// confirmed there is nothing left to unwind, so the process _Exits from the
// watchdog callback — which is exactly how a production watchdog hook would
// hand the diagnosis to a supervisor.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "src/obs/diag.h"
#include "src/obs/recorder.h"
#include "src/threads/threads.h"

namespace {

std::atomic<std::uint64_t> g_obj_a{0};
std::atomic<std::uint64_t> g_obj_b{0};

}  // namespace

int main() {
  using namespace std::chrono_literals;
  taos::obs::diag::SetEnabled(true);
  taos::obs::SetRecorderEnabled(true);  // the dump's event tail has content

  // Guard: if the watchdog misses, fail crisply instead of hanging until
  // the harness timeout.
  std::thread guard([] {
    std::this_thread::sleep_for(30s);
    std::fprintf(stderr, "FAIL: watchdog never confirmed the cycle\n");
    std::_Exit(1);
  });
  guard.detach();

  taos::Mutex a;
  taos::Mutex b;
  g_obj_a.store(a.id(), std::memory_order_relaxed);
  g_obj_b.store(b.id(), std::memory_order_relaxed);

  taos::obs::diag::Watchdog watchdog;
  taos::obs::diag::Watchdog::Options options;
  options.interval_ms = 25;
  options.stall_ms = 0;  // deadlock detection only
  options.on_deadlock = [](const std::string& dump,
                           const std::vector<taos::obs::diag::Cycle>& cycles) {
    std::fputs(dump.c_str(), stderr);
    if (cycles.size() != 1 || cycles[0].edges.size() != 2) {
      std::fprintf(stderr, "FAIL: expected one 2-thread cycle\n");
      std::_Exit(2);
    }
    std::set<std::uint64_t> objs;
    std::set<std::uint64_t> tids;
    for (const taos::obs::diag::BlockedEdge& e : cycles[0].edges) {
      objs.insert(e.obj);
      tids.insert(e.tid);
      if (e.kind != taos::obs::diag::WaitKind::kMutex || e.owner == 0) {
        std::fprintf(stderr, "FAIL: edge is not an owned mutex wait\n");
        std::_Exit(2);
      }
    }
    const std::set<std::uint64_t> want_objs = {
        g_obj_a.load(std::memory_order_relaxed),
        g_obj_b.load(std::memory_order_relaxed)};
    if (objs != want_objs || tids.size() != 2) {
      std::fprintf(stderr, "FAIL: cycle names the wrong threads/objects\n");
      std::_Exit(2);
    }
    std::fprintf(stderr, "OK: watchdog named the planted deadlock\n");
    std::_Exit(0);
  };
  watchdog.Start(options);

  // The classic lock-order inversion, rendezvoused so both threads hold
  // their first lock before either tries its second.
  std::atomic<int> holding{0};
  taos::Thread t1 = taos::Thread::Fork([&] {
    a.Acquire();
    holding.fetch_add(1, std::memory_order_acq_rel);
    while (holding.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    b.Acquire();  // never returns
  });
  taos::Thread t2 = taos::Thread::Fork([&] {
    b.Acquire();
    holding.fetch_add(1, std::memory_order_acq_rel);
    while (holding.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    a.Acquire();  // never returns
  });

  // Park the main thread; the watchdog callback is the only way out.
  for (;;) {
    std::this_thread::sleep_for(1s);
  }
}
