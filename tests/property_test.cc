// Randomized property tests: data-structure models and spec-level laws,
// swept over seeds with parameterized gtest.

#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/intrusive_queue.h"
#include "src/base/xorshift.h"
#include "src/spec/enumerate.h"
#include "src/spec/semantics.h"

namespace taos {
namespace {

// --- IntrusiveQueue vs a std::deque model -------------------------------

struct Node {
  QueueNode queue_node;
  int tag = 0;
};

class QueueModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueModelSweep, MatchesDequeModel) {
  XorShift rng(GetParam());
  constexpr int kNodes = 32;
  Node nodes[kNodes];
  for (int i = 0; i < kNodes; ++i) {
    nodes[i].tag = i;
  }
  IntrusiveQueue<Node> queue;
  std::deque<int> model;

  for (int step = 0; step < 4000; ++step) {
    const std::uint32_t op = rng.Below(100);
    if (op < 45) {  // push a random unqueued node
      const int i = static_cast<int>(rng.Below(kNodes));
      if (!nodes[i].queue_node.InQueue()) {
        queue.PushBack(&nodes[i]);
        model.push_back(i);
      }
    } else if (op < 80) {  // pop front
      Node* n = queue.PopFront();
      if (model.empty()) {
        ASSERT_EQ(n, nullptr);
      } else {
        ASSERT_NE(n, nullptr);
        ASSERT_EQ(n->tag, model.front());
        model.pop_front();
      }
    } else if (op < 95) {  // remove a random queued node
      if (!model.empty()) {
        const std::size_t k = rng.Below(static_cast<std::uint32_t>(model.size()));
        const int tag = model[k];
        queue.Remove(&nodes[tag]);
        model.erase(model.begin() + static_cast<std::ptrdiff_t>(k));
      }
    } else {  // full structural comparison
      ASSERT_EQ(queue.Size(), model.size());
      std::size_t idx = 0;
      queue.ForEach([&](Node* n) {
        ASSERT_LT(idx, model.size());
        ASSERT_EQ(n->tag, model[idx]);
        ++idx;
      });
      if (!model.empty()) {
        ASSERT_EQ(queue.Front()->tag, model.front());
      }
    }
    ASSERT_EQ(queue.Empty(), model.empty());
  }
  while (queue.PopFront() != nullptr) {
  }
}

INSTANTIATE_TEST_SUITE_P(Property, QueueModelSweep,
                         ::testing::Values(1, 7, 42, 1234, 9999, 31337));

// --- ThreadSet algebra ----------------------------------------------------

class SetLawSweep : public ::testing::TestWithParam<std::uint64_t> {};

spec::ThreadSet RandomSet(XorShift& rng, int max_elems) {
  spec::ThreadSet s;
  const int n = static_cast<int>(rng.Below(static_cast<std::uint32_t>(max_elems + 1)));
  for (int i = 0; i < n; ++i) {
    s = s.Insert(rng.Below(10) + 1);
  }
  return s;
}

TEST_P(SetLawSweep, AlgebraicLaws) {
  XorShift rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    spec::ThreadSet a = RandomSet(rng, 6);
    spec::ThreadSet b = RandomSet(rng, 6);
    const spec::ThreadId t = rng.Below(10) + 1;

    // insert/delete laws
    EXPECT_TRUE(a.Insert(t).Contains(t));
    EXPECT_FALSE(a.Delete(t).Contains(t));
    EXPECT_EQ(a.Insert(t).Insert(t), a.Insert(t));
    EXPECT_EQ(a.Insert(t).Delete(t), a.Delete(t));

    // union/minus laws
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_TRUE(a.SubsetOf(a.Union(b)));
    EXPECT_TRUE(a.Minus(b).SubsetOf(a));
    EXPECT_EQ(a.Minus(b).Union(a), a);
    EXPECT_TRUE(a.Minus(a).Empty());

    // subset laws
    EXPECT_TRUE(a.SubsetOf(a));
    EXPECT_FALSE(a.ProperSubsetOf(a));
    if (a.ProperSubsetOf(b)) {
      EXPECT_LT(a.Size(), b.Size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Property, SetLawSweep,
                         ::testing::Values(3, 17, 2024));

// --- Spec laws: random walks through the world graph ----------------------

class SpecWalkSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecWalkSweep, ApplyAndCheckAgreeAlongRandomWalks) {
  // Every successor the enumerator produces must also pass the two-state
  // Check (including the MODIFIES AT MOST frame), and the canonical
  // invariants must hold at every visited state (corrected semantics).
  spec::Universe u;
  u.threads = {1, 2, 3};
  u.mutexes = {1};
  u.conditions = {2};
  u.semaphores = {3};
  spec::SpecEnumerator enumerator(u);
  spec::Semantics semantics;

  XorShift rng(GetParam());
  spec::WorldState world;
  for (int step = 0; step < 400; ++step) {
    auto succ = enumerator.Successors(world);
    if (succ.empty()) {
      break;  // cannot happen from reachable states, but be safe
    }
    const auto& [action, next] =
        succ[rng.Below(static_cast<std::uint32_t>(succ.size()))];
    spec::Verdict v = semantics.Check(world.state, action, next.state);
    ASSERT_TRUE(v.Ok()) << v.message << " for " << action.ToString()
                        << " at " << world.ToString();
    ASSERT_EQ(spec::NoGhostMembers(next), "");
    ASSERT_EQ(spec::HolderNotBlocked(next), "");
    world = next;
  }
}

INSTANTIATE_TEST_SUITE_P(Property, SpecWalkSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(SpecLawTest, BroadcastAlwaysSatisfiesSignalEverywhereReachable) {
  // "Any implementation that satisfies Broadcast's specification also
  // satisfies Signal's" — checked at every reachable spec state.
  spec::Universe u;
  u.threads = {1, 2};
  u.mutexes = {1};
  u.conditions = {2};
  u.semaphores = {3};
  spec::SpecEnumerator enumerator(u);
  spec::Semantics semantics;
  auto invariant = [&](const spec::WorldState& w) -> std::string {
    for (spec::ThreadId t : u.threads) {
      if (w.Blocked(t)) {
        continue;
      }
      const spec::ThreadSet& members = w.state.Condition(2);
      spec::SpecState post;
      spec::Verdict bv = semantics.Apply(
          w.state, spec::MakeBroadcast(t, 2, members), &post);
      if (!bv.Ok()) {
        return "Broadcast not applicable: " + bv.message;
      }
      spec::Verdict sv =
          semantics.Check(w.state, spec::MakeSignal(t, 2, members), post);
      if (!sv.Ok()) {
        return "Broadcast outcome rejected by Signal's spec: " + sv.message;
      }
    }
    return "";
  };
  spec::SpecExploreResult r = enumerator.Explore(invariant);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.invariant_ok) << r.ToString();
}

}  // namespace
}  // namespace taos
