// Substrate: spin-lock, eventcount, intrusive queue, PRNG.

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/eventcount.h"
#include "src/base/intrusive_queue.h"
#include "src/base/spinlock.h"
#include "src/base/xorshift.h"

namespace taos {
namespace {

TEST(SpinLockTest, AcquireRelease) {
  SpinLock lock;
  EXPECT_FALSE(lock.IsHeld());
  lock.Acquire();
  EXPECT_TRUE(lock.IsHeld());
  lock.Release();
  EXPECT_FALSE(lock.IsHeld());
}

TEST(SpinLockTest, TryAcquire) {
  SpinLock lock;
  EXPECT_TRUE(lock.TryAcquire());
  EXPECT_FALSE(lock.TryAcquire());
  lock.Release();
  EXPECT_TRUE(lock.TryAcquire());
  lock.Release();
}

TEST(SpinLockTest, GuardIsExceptionSafe) {
  SpinLock lock;
  try {
    SpinGuard g(lock);
    EXPECT_TRUE(lock.IsHeld());
    throw 42;
  } catch (int) {
  }
  EXPECT_FALSE(lock.IsHeld());
}

TEST(SpinLockTest, MutualExclusionStress) {
  SpinLock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(EventCountTest, MonotonicallyIncreasing) {
  EventCount ec;
  EXPECT_EQ(ec.Read(), 0u);
  EXPECT_EQ(ec.Advance(), 1u);
  EXPECT_EQ(ec.Advance(), 2u);
  EXPECT_EQ(ec.Read(), 2u);
}

TEST(EventCountTest, ConcurrentAdvancesAllCounted) {
  EventCount ec;
  constexpr int kThreads = 4;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ec] {
      for (int i = 0; i < kIters; ++i) {
        ec.Advance();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ec.Read(), static_cast<std::uint64_t>(kThreads) * kIters);
}

struct Item {
  QueueNode queue_node;
  int value = 0;
};

TEST(IntrusiveQueueTest, Fifo) {
  IntrusiveQueue<Item> q;
  Item a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  EXPECT_TRUE(q.Empty());
  q.PushBack(&a);
  q.PushBack(&b);
  q.PushBack(&c);
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.PopFront()->value, 1);
  EXPECT_EQ(q.PopFront()->value, 2);
  EXPECT_EQ(q.PopFront()->value, 3);
  EXPECT_EQ(q.PopFront(), nullptr);
}

TEST(IntrusiveQueueTest, RemoveFromMiddle) {
  IntrusiveQueue<Item> q;
  Item a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  q.PushBack(&a);
  q.PushBack(&b);
  q.PushBack(&c);
  q.Remove(&b);
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_FALSE(q.Contains(&b));
  EXPECT_TRUE(q.Contains(&a));
  EXPECT_EQ(q.PopFront()->value, 1);
  EXPECT_EQ(q.PopFront()->value, 3);
}

TEST(IntrusiveQueueTest, ReenqueueAfterPop) {
  IntrusiveQueue<Item> q;
  Item a;
  q.PushBack(&a);
  EXPECT_EQ(q.PopFront(), &a);
  q.PushBack(&a);  // node must be reusable
  EXPECT_EQ(q.PopFront(), &a);
  EXPECT_TRUE(q.Empty());
}

TEST(IntrusiveQueueTest, MoveBetweenQueues) {
  IntrusiveQueue<Item> q1;
  IntrusiveQueue<Item> q2;
  Item a;
  q1.PushBack(&a);
  q1.Remove(&a);
  q2.PushBack(&a);
  EXPECT_TRUE(q1.Empty());
  EXPECT_EQ(q2.PopFront(), &a);
}

TEST(IntrusiveQueueTest, ForEachVisitsInOrder) {
  IntrusiveQueue<Item> q;
  Item items[5];
  for (int i = 0; i < 5; ++i) {
    items[i].value = i;
    q.PushBack(&items[i]);
  }
  int expected = 0;
  q.ForEach([&expected](Item* it) { EXPECT_EQ(it->value, expected++); });
  EXPECT_EQ(expected, 5);
  while (q.PopFront() != nullptr) {
  }
}

TEST(XorShiftTest, DeterministicPerSeed) {
  XorShift a(123);
  XorShift b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  XorShift c(124);
  bool all_equal = true;
  XorShift a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) {
      all_equal = false;
    }
  }
  EXPECT_FALSE(all_equal);
}

TEST(XorShiftTest, BelowStaysInRange) {
  XorShift rng(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t v = rng.Below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(XorShiftTest, RangeInclusive) {
  XorShift rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.Range(5, 7);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 7u);
  }
}

}  // namespace
}  // namespace taos
