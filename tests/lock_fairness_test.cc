// FIFO-fairness regression tests for the queue-lock cores (TAOS_LOCK=mcs
// and clh), mirroring waitq_fairness_test at the spin-lock layer.
//
// Both queue cores promise grant-in-arrival-order by construction: a waiter
// takes its place with one exchange on the tail and the lock then travels
// strictly along the queue. The TAS core makes no such promise (any spinner
// can win the test-and-set), which is exactly the difference these tests
// freeze — they run only under the FIFO-promising backends.
//
// Arrival serialization: every enqueue exchanges a distinct node into the
// tail, so waiter i+1 is forked only after the tail is observed to have
// changed from the value captured before forking waiter i (TailForDebug).
// The claim order — and thus the expected grant order — is then exactly
// 0, 1, 2, ...

#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/spinlock.h"

namespace taos {
namespace {

class LockFairnessTest : public ::testing::TestWithParam<LockBackend> {
 protected:
  // The process is quiescent around the switch (no taos threads run in this
  // suite; every SpinLock in the process is free between tests), which is
  // the contract SetBackend requires.
  void SetUp() override {
    saved_ = SpinLock::backend();
    SpinLock::SetBackend(GetParam());
  }
  void TearDown() override { SpinLock::SetBackend(saved_); }

 private:
  LockBackend saved_ = LockBackend::kTas;
};

// N waiters queued on one lock in a known arrival order; the holder
// releases and each waiter releases in turn. The grant chain must follow
// arrival order.
TEST_P(LockFairnessTest, GrantsFollowArrivalOrder) {
  constexpr int kWaiters = 8;
  SpinLock lock;
  std::vector<int> grant_order;  // guarded by lock

  lock.Acquire();
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    const void* tail_before = lock.TailForDebug();
    waiters.emplace_back([&lock, &grant_order, i] {
      lock.Acquire();
      grant_order.push_back(i);
      lock.Release();
    });
    // Serialize arrivals: the next waiter may not even fork until this
    // one's exchange has moved the tail.
    while (lock.TailForDebug() == tail_before) {
      std::this_thread::yield();
    }
  }

  lock.Release();
  for (std::thread& t : waiters) {
    t.join();
  }

  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(grant_order[i], i) << LockBackendName(GetParam())
                                 << " granted out of arrival order";
  }
}

// TryAcquire must not barge past a queue: with a holder and a queued
// waiter, a try is a nullptr->node CAS on a non-null tail and fails. (Under
// TAS a try can slip in whenever the bit happens to be clear — the barging
// the queue cores trade away for FIFO.)
TEST_P(LockFairnessTest, TryAcquireDoesNotBargeAQueue) {
  SpinLock lock;
  lock.Acquire();
  const void* tail_before = lock.TailForDebug();
  std::thread waiter([&lock] {
    lock.Acquire();
    lock.Release();
  });
  while (lock.TailForDebug() == tail_before) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(lock.TryAcquire());
  lock.Release();
  waiter.join();
  EXPECT_TRUE(lock.TryAcquire());
  lock.Release();
}

INSTANTIATE_TEST_SUITE_P(
    QueueBackends, LockFairnessTest,
    ::testing::Values(LockBackend::kMcs, LockBackend::kClh),
    [](const ::testing::TestParamInfo<LockBackend>& info) {
      return info.param == LockBackend::kMcs ? "Mcs" : "Clh";
    });

}  // namespace
}  // namespace taos
