// Trace checker: replaying serialized action sequences against the spec —
// including the paper's two famous specification incidents:
//
//  E9  — the original AlertWait spec (UNCHANGED [c] on the Alerted path)
//        accepts a trace in which a departed thread absorbs a Signal, so no
//        blocked thread wakes (Greg Nelson's operational argument);
//  E10 — the released AlertP spec's deliberate RETURNS/RAISES overlap.

#include "src/spec/checker.h"

#include <gtest/gtest.h>

namespace taos::spec {
namespace {

constexpr ThreadId kT1 = 1;
constexpr ThreadId kT2 = 2;
constexpr ThreadId kT3 = 3;
constexpr ObjId kM = 1;
constexpr ObjId kC = 2;
constexpr ObjId kS = 3;

TEST(CheckerTest, AcceptsSimpleLockUnlockTrace) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeRelease(kT1, kM),
      MakeAcquire(kT2, kM),
      MakeRelease(kT2, kM),
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.actions_checked, 4u);
}

TEST(CheckerTest, RejectsDoubleAcquire) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeAcquire(kT2, kM),  // WHEN m = NIL violated
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failed_index, 1u);
  EXPECT_NE(r.message.find("WHEN"), std::string::npos);
}

TEST(CheckerTest, RejectsReleaseByNonHolder) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeRelease(kT2, kM),  // REQUIRES m = SELF violated
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("REQUIRES"), std::string::npos);
}

TEST(CheckerTest, AcceptsFullWaitSignalRound) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),                  // Wait part 1
      MakeAcquire(kT2, kM),
      MakeRelease(kT2, kM),
      MakeSignal(kT2, kC, ThreadSet{kT1}),       // removes t1
      MakeResume(kT1, kM, kC),                   // Wait part 2
      MakeRelease(kT1, kM),
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(CheckerTest, RejectsResumeWithoutSignal) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeResume(kT1, kM, kC),  // still in c: WHEN (SELF NOT-IN c) fails
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failed_index, 2u);
}

TEST(CheckerTest, CompositionOfForbidsActionsBetweenEnqueueAndResume) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeSignal(kT2, kC, ThreadSet{kT1}),
      MakeP(kT1, kS),  // t1 may not act before its Resume
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("COMPOSITION"), std::string::npos);
}

TEST(CheckerTest, OtherThreadsInterleaveFreelyInsideWait) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeP(kT2, kS),
      MakeV(kT2, kS),
      MakeAlert(kT3, kT2),
      MakeSignal(kT2, kC, ThreadSet{kT1}),
      MakeResume(kT1, kM, kC),
      MakeRelease(kT1, kM),
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(CheckerTest, SignalAbsorbedByWindowThreadCountsAsMultiRemoval) {
  // Two waiters enqueue; one Signal removes both (queue pop + window
  // absorb); both Resume.
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeAcquire(kT2, kM),
      MakeEnqueue(kT2, kM, kC),
      MakeSignal(kT3, kC, ThreadSet{kT1, kT2}),
      MakeResume(kT1, kM, kC),
      MakeRelease(kT1, kM),
      MakeResume(kT2, kM, kC),
      MakeRelease(kT2, kM),
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.signals_removing_many, 1u);
}

TEST(CheckerTest, SemaphoreAndAlertRound) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeP(kT1, kS),
      MakeAlert(kT2, kT1),
      MakeV(kT1, kS),
      MakeTestAlert(kT1, true),
      MakeTestAlert(kT1, false),
      MakeAlertPReturns(kT1, kS),
      MakeV(kT1, kS),
      MakeAlert(kT2, kT1),
      MakeAlertPRaises(kT1, kS),
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
}

// ---------------------------------------------------------------------------
// E9: the original AlertWait specification bug.
// ---------------------------------------------------------------------------

// Nelson's operational argument as a trace: thread t1 is in c, raises
// Alerted, and — under the buggy spec — stays in c. A later Signal then
// "removes" t1, so no blocked thread is awakened by that Signal: t2 stays
// in c forever even though a Signal was delivered while it waited.
std::vector<Action> NelsonAnomalyTrace() {
  return {
      MakeAcquire(kT1, kM),
      MakeAlertEnqueue(kT1, kM, kC),       // t1 waits alertably
      MakeAcquire(kT2, kM),
      MakeEnqueue(kT2, kM, kC),            // t2 waits too
      MakeAlert(kT3, kT1),
      MakeAlertResumeRaises(kT1, kM, kC),  // t1 leaves with Alerted...
      MakeRelease(kT1, kM),
      // ...but (buggy spec) t1 is still a member of c, so this Signal may
      // choose to remove t1 — and no blocked thread is unblocked:
      MakeSignal(kT3, kC, ThreadSet{kT1}),
  };
}

TEST(CheckerTest, BuggySpecAcceptsTheLostSignalAnomaly) {
  TraceChecker buggy(SpecConfig{AlertWaitVariant::kOriginalBuggy,
                                AlertChoicePolicy::kNondeterministic});
  CheckResult r = buggy.CheckTrace(NelsonAnomalyTrace());
  EXPECT_TRUE(r.ok) << r.message;
  // After the "successful" Signal, t2 is still in c: the signal achieved
  // nothing — the anomaly the spec was not supposed to allow.
  EXPECT_TRUE(r.final_state.Condition(kC).Contains(kT2));
  EXPECT_FALSE(r.final_state.Condition(kC).Contains(kT1));
}

TEST(CheckerTest, CorrectedSpecRejectsTheLostSignalAnomaly) {
  TraceChecker corrected;  // default: AlertWaitVariant::kCorrected
  CheckResult r = corrected.CheckTrace(NelsonAnomalyTrace());
  ASSERT_FALSE(r.ok);
  // Under the corrected spec, t1 left c at its AlertResume, so the final
  // Signal claiming to remove t1 resolves nondeterminism inconsistently.
  EXPECT_EQ(r.failed_index, 7u);
}

TEST(CheckerTest, BuggySpecLeavesGhostThreadsInC) {
  // The corrected behaviour: t1's raise removes it from c; the Signal then
  // removes (and wakes) t2.
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeAlertEnqueue(kT1, kM, kC),
      MakeAcquire(kT2, kM),
      MakeEnqueue(kT2, kM, kC),
      MakeAlert(kT3, kT1),
      MakeAlertResumeRaises(kT1, kM, kC),
      MakeRelease(kT1, kM),
      MakeSignal(kT3, kC, ThreadSet{kT2}),
      MakeResume(kT2, kM, kC),
      MakeRelease(kT2, kM),
  };
  TraceChecker corrected;
  CheckResult r = corrected.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.final_state.Condition(kC).Empty());

  // The buggy spec also accepts this trace — but its state model keeps the
  // departed t1 as a ghost member of c: "c could contain threads that were
  // no longer blocked on the condition variable."
  TraceChecker buggy(SpecConfig{AlertWaitVariant::kOriginalBuggy,
                                AlertChoicePolicy::kNondeterministic});
  CheckResult rb = buggy.CheckTrace(trace);
  EXPECT_TRUE(rb.ok) << rb.message;
  EXPECT_TRUE(rb.final_state.Condition(kC).Contains(kT1));
}

// ---------------------------------------------------------------------------
// E10: the pre-release deterministic AlertP variant.
// ---------------------------------------------------------------------------

TEST(CheckerTest, PreferAlertedPolicyRejectsNormalReturnUnderAlert) {
  std::vector<Action> trace = {
      MakeAlert(kT2, kT1),
      MakeAlertPReturns(kT1, kS),  // returns although alerted
  };
  TraceChecker released;  // nondeterministic: fine
  EXPECT_TRUE(released.CheckTrace(trace).ok);

  TraceChecker prerelease(SpecConfig{AlertWaitVariant::kCorrected,
                                     AlertChoicePolicy::kPreferAlerted});
  CheckResult r = prerelease.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("policy"), std::string::npos);
}

TEST(CheckerTest, BroadcastMustRemoveEveryone) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeAcquire(kT2, kM),
      MakeEnqueue(kT2, kM, kC),
      MakeBroadcast(kT3, kC, ThreadSet{kT1}),  // left t2 behind
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failed_index, 4u);
  EXPECT_NE(r.message.find("cpost = {}"), std::string::npos);
}

TEST(CheckerTest, SignalRemovedSetMustBeMembers) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeSignal(kT2, kC, ThreadSet{kT3}),  // t3 never enqueued
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  // Either clause catches it: the bogus removal leaves c unchanged
  // (ENSURES) and is not a subset of c (recorded-choice validation).
  EXPECT_NE(r.message.find("SUBSET"), std::string::npos) << r.message;
}

TEST(CheckerTest, TestAlertResultMustBeHonest) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeTestAlert(kT1, true),  // no alert was pending
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
}

TEST(CheckerTest, PMustWaitForAvailability) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeP(kT1, kS),
      MakeP(kT2, kS),  // taken: WHEN s = available fails
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failed_index, 1u);
}

TEST(CheckerTest, VRestoresAvailability) {
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeP(kT1, kS),
      MakeV(kT2, kS),  // V by a different thread: no REQUIRES on V
      MakeP(kT2, kS),
  };
  EXPECT_TRUE(checker.CheckTrace(trace).ok);
}

TEST(CheckerTest, WaitOnTwoConditionsInterleaved) {
  // Two independent conditions: composition tracking must keep them apart.
  constexpr ObjId kC2 = 9;
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeAcquire(kT2, kM),
      MakeEnqueue(kT2, kM, kC2),
      MakeSignal(kT3, kC, ThreadSet{kT1}),
      MakeSignal(kT3, kC2, ThreadSet{kT2}),
      MakeResume(kT2, kM, kC2),
      MakeRelease(kT2, kM),
      MakeResume(kT1, kM, kC),
      MakeRelease(kT1, kM),
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(CheckerTest, ResumeOnWrongConditionViolatesComposition) {
  constexpr ObjId kC2 = 9;
  TraceChecker checker;
  std::vector<Action> trace = {
      MakeAcquire(kT1, kM),
      MakeEnqueue(kT1, kM, kC),
      MakeSignal(kT3, kC, ThreadSet{kT1}),
      MakeResume(kT1, kM, kC2),  // wrong condition
  };
  CheckResult r = checker.CheckTrace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("COMPOSITION"), std::string::npos);
}

TEST(CheckerTest, ActionToStringsAreReadable) {
  EXPECT_EQ(MakeAcquire(kT1, kM).ToString(), "t1:Acquire(m1)");
  EXPECT_EQ(MakeRelease(kT2, kM).ToString(), "t2:Release(m1)");
  EXPECT_EQ(MakeEnqueue(kT1, kM, kC).ToString(), "t1:Enqueue(m1, c2)");
  EXPECT_EQ(MakeSignal(kT1, kC, ThreadSet{kT2}).ToString(),
            "t1:Signal(c2) removed={t2}");
  EXPECT_EQ(MakeP(kT1, kS).ToString(), "t1:P(s3)");
  EXPECT_EQ(MakeAlert(kT1, kT2).ToString(), "t1:Alert(t2)");
  EXPECT_EQ(MakeTestAlert(kT1, true).ToString(), "t1:TestAlert() = true");
  EXPECT_EQ(MakeAlertPRaises(kT1, kS).ToString(), "t1:AlertP/RAISES(s3)");
  EXPECT_EQ(MakeAlertResumeReturns(kT1, kM, kC).ToString(),
            "t1:AlertWait.Resume/RETURNS(m1, c2)");
}

TEST(CheckerTest, InitialStateParameterRespected) {
  SpecState initial;
  initial.SetSemaphore(kS, SemState::kUnavailable);
  TraceChecker checker;
  std::vector<Action> trace = {MakeP(kT1, kS)};
  EXPECT_FALSE(checker.CheckTrace(trace, initial).ok);  // WHEN fails
  EXPECT_TRUE(checker.CheckTrace(trace).ok);            // INITIALLY available
}

}  // namespace
}  // namespace taos::spec
