// taos::ReaderWriterMutex: the two-layer readers-writer primitive. Each
// scenario runs under both waiter-queue backends (classic intrusive queues
// and TAOS_WAITQ cells) — the rwlock keeps two queues per object, so the
// substrate switch touches every slow path here. Spec conformance of the
// traced paths lives in threads_conformance_test; this suite pins the
// runtime behaviour: admission rules, the wakeup policy (exclusive release
// drains all readers + one writer; last reader out wakes a writer), timed
// grants racing deadlines, and the workload harness invariant.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"
#include "src/workload/rwlock.h"

namespace taos {
namespace {

using namespace std::chrono_literals;

class RwMutexTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = Nub::Get().waitq_mode();
    Nub::Get().SetWaitqMode(GetParam());
  }
  void TearDown() override { Nub::Get().SetWaitqMode(saved_); }

 private:
  bool saved_ = false;
};

void AwaitParked(const Thread& t) {
  while (t.Handle().rec->parks.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
}

TEST_P(RwMutexTest, UncontendedModes) {
  ReaderWriterMutex rw;
  rw.Acquire();
  EXPECT_EQ(rw.HolderForDebug(), Thread::Self().id());
  EXPECT_FALSE(rw.TryAcquire());
  EXPECT_FALSE(rw.TryAcquireShared());
  rw.Release();

  rw.AcquireShared();
  EXPECT_EQ(rw.ReadersForDebug(), 1u);
  EXPECT_FALSE(rw.TryAcquire());       // readers exclude writers...
  EXPECT_TRUE(rw.TryAcquireShared());  // ...but admit more readers
  EXPECT_EQ(rw.ReadersForDebug(), 2u);
  rw.ReleaseShared();
  rw.ReleaseShared();
  EXPECT_EQ(rw.ReadersForDebug(), 0u);

  EXPECT_TRUE(rw.TryAcquire());
  rw.Release();
}

// Readers genuinely overlap: all of them must be inside their sections at
// one moment (a mutex in reader's clothing would deadlock this test).
TEST_P(RwMutexTest, ReadersOverlap) {
  constexpr int kReaders = 4;
  ReaderWriterMutex rw;
  std::atomic<int> inside{0};
  std::vector<Thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(Thread::Fork([&] {
      ReadLock rl(rw);
      inside.fetch_add(1, std::memory_order_acq_rel);
      // Hold until every reader has arrived; with any pair serialized this
      // spins forever and the test times out.
      while (inside.load(std::memory_order_acquire) < kReaders) {
        std::this_thread::yield();
      }
    }));
  }
  for (Thread& t : readers) {
    t.Join();
  }
  EXPECT_EQ(inside.load(std::memory_order_relaxed), kReaders);
  EXPECT_EQ(rw.ReadersForDebug(), 0u);
}

// Mixed readers and writers over a shared variable: writers see and leave
// consistent state, readers never observe a torn update.
TEST_P(RwMutexTest, WritersExcludeEveryone) {
  constexpr int kThreads = 6;
  const int iters = 200;
  ReaderWriterMutex rw;
  // Two copies a writer updates non-atomically; a reader under the lock
  // must always see them equal.
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::atomic<int> torn{0};
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&, t] {
      for (int i = 0; i < iters; ++i) {
        if ((t + i) % 3 == 0) {
          WriteLock wl(rw);
          ++a;
          std::this_thread::yield();  // widen any would-be race
          ++b;
        } else {
          ReadLock rl(rw);
          if (a != b) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(torn.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(a, b);
}

// The wakeup policy, reader half: an exclusive release must wake every
// queued reader at once (not one per subsequent release, as a mutex-like
// chain would).
TEST_P(RwMutexTest, ExclusiveReleaseDrainsAllQueuedReaders) {
  constexpr int kReaders = 4;
  ReaderWriterMutex rw;
  std::atomic<int> admitted{0};
  rw.Acquire();
  std::vector<Thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(Thread::Fork([&] {
      ReadLock rl(rw);
      admitted.fetch_add(1, std::memory_order_acq_rel);
      // Wait for all: only a drain-all release admits everyone while this
      // reader still holds its shared mode.
      while (admitted.load(std::memory_order_acquire) < kReaders) {
        std::this_thread::yield();
      }
    }));
    AwaitParked(readers.back());
  }
  rw.Release();  // one release, kReaders wakeups
  for (Thread& t : readers) {
    t.Join();
  }
  EXPECT_EQ(admitted.load(std::memory_order_relaxed), kReaders);
}

// The wakeup policy, writer half: the LAST reader out wakes the queued
// writer (earlier releases must not).
TEST_P(RwMutexTest, LastReaderWakesQueuedWriter) {
  ReaderWriterMutex rw;
  std::atomic<bool> wrote{false};
  std::atomic<bool> go{false};
  rw.AcquireShared();
  Thread reader = Thread::Fork([&] {
    ReadLock rl(rw);
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (rw.ReadersForDebug() < 2u) {
    std::this_thread::yield();
  }

  Thread writer = Thread::Fork([&] {
    rw.Acquire();
    wrote.store(true, std::memory_order_release);
    rw.Release();
  });
  AwaitParked(writer);
  EXPECT_FALSE(wrote.load(std::memory_order_acquire));
  rw.ReleaseShared();  // count 2 -> 1: the second reader still excludes
  EXPECT_FALSE(wrote.load(std::memory_order_acquire));
  go.store(true, std::memory_order_release);  // count 1 -> 0 wakes the writer
  writer.Join();
  reader.Join();
  EXPECT_TRUE(wrote.load(std::memory_order_acquire));
}

TEST_P(RwMutexTest, TimedAcquireTimesOutAgainstReaderAndSatisfies) {
  ReaderWriterMutex rw;
  rw.AcquireShared();
  EXPECT_EQ(rw.AcquireFor(2ms), WaitResult::kTimeout);
  EXPECT_EQ(rw.AcquireFor(0ns), WaitResult::kTimeout);
  rw.ReleaseShared();
  EXPECT_EQ(rw.AcquireFor(2ms), WaitResult::kSatisfied);
  rw.Release();
}

TEST_P(RwMutexTest, TimedSharedTimesOutAgainstWriterAndSatisfies) {
  ReaderWriterMutex rw;
  rw.Acquire();
  EXPECT_EQ(rw.AcquireSharedFor(2ms), WaitResult::kTimeout);
  EXPECT_EQ(rw.AcquireSharedFor(0ns), WaitResult::kTimeout);
  rw.Release();
  EXPECT_EQ(rw.AcquireSharedFor(2ms), WaitResult::kSatisfied);
  rw.ReleaseShared();
}

// A grant racing the deadline is kept: the writer releases just as the
// timed waiter's deadline approaches, and a satisfied result must mean a
// real hold (released afterwards without dying).
TEST_P(RwMutexTest, TimedGrantRacingDeadlineIsKept) {
  ReaderWriterMutex rw;
  for (int i = 0; i < 20; ++i) {
    rw.Acquire();
    Thread waiter = Thread::Fork([&] {
      if (rw.AcquireSharedFor(std::chrono::microseconds(50 + 25 * (i % 4))) ==
          WaitResult::kSatisfied) {
        rw.ReleaseShared();
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(40));
    rw.Release();
    waiter.Join();
  }
  EXPECT_TRUE(rw.TryAcquire());  // nothing leaked a hold
  rw.Release();
}

TEST_P(RwMutexTest, StatsSplitFastFromSlow) {
  ReaderWriterMutex rw;
  rw.ResetStats();
  rw.AcquireShared();
  rw.ReleaseShared();
  rw.Acquire();
  rw.Release();
  EXPECT_EQ(rw.fast_acquires(), 2u);
  EXPECT_EQ(rw.slow_acquires(), 0u);

  rw.Acquire();
  Thread waiter = Thread::Fork([&] {
    rw.AcquireShared();
    rw.ReleaseShared();
  });
  AwaitParked(waiter);
  rw.Release();
  waiter.Join();
  EXPECT_GE(rw.slow_acquires(), 1u);
}

// The workload harness over the real primitive: the reader/writer invariant
// (never a writer with readers, never two writers) holds under the mixed
// load the E4b benchmark measures.
TEST_P(RwMutexTest, WorkloadHarnessInvariant) {
  workload::NativeRWLock lock;
  auto r = workload::RunReadersWriters(lock, /*readers=*/3, /*writers=*/2,
                                       /*iters=*/150, /*read_work=*/5,
                                       /*write_work=*/10);
  EXPECT_TRUE(r.invariant_ok);
  EXPECT_EQ(r.writes, 2u * 150u);
}

INSTANTIATE_TEST_SUITE_P(Backends, RwMutexTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& mode) {
                           return mode.param ? "Waitq" : "Classic";
                         });

}  // namespace
}  // namespace taos
