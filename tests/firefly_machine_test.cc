// The simulated Firefly: determinism, scheduling, time slicing, priorities,
// deadlock detection, teardown of stuck fibers.

#include "src/firefly/machine.h"

#include <gtest/gtest.h>

#include "src/firefly/sync.h"

namespace taos::firefly {
namespace {

TEST(MachineTest, RunsSingleFiberToCompletion) {
  Machine m;
  int x = 0;
  m.Fork([&x, &m] {
    m.Step();
    x = 7;
  });
  RunResult r = m.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(x, 7);
}

TEST(MachineTest, RunsManyFibers) {
  Machine m;
  int sum = 0;
  for (int i = 1; i <= 10; ++i) {
    m.Fork([&sum, &m, i] {
      m.Step();
      sum += i;  // steps serialize; no torn updates possible
      m.Step();
    });
  }
  RunResult r = m.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sum, 55);
}

TEST(MachineTest, DeterministicForFixedSeed) {
  auto run_once = [](std::uint64_t seed) {
    MachineConfig cfg;
    cfg.seed = seed;
    Machine m(cfg);
    std::string order;
    for (char c : {'a', 'b', 'c'}) {
      m.Fork([&order, &m, c] {
        for (int i = 0; i < 5; ++i) {
          m.Step();
          order.push_back(c);
        }
      });
    }
    RunResult r = m.Run();
    EXPECT_TRUE(r.completed);
    return order + "#" + std::to_string(r.steps);
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_EQ(run_once(7), run_once(7));
  // Different seeds explore different interleavings (with 15 interleaved
  // steps a collision is effectively impossible).
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(MachineTest, CpuCountBoundsParallelOccupancy) {
  MachineConfig cfg;
  cfg.cpus = 1;
  Machine m(cfg);
  // With one processor and no time slicing, dispatch is FIFO and each fiber
  // runs to completion before the next starts.
  std::string order;
  for (char c : {'x', 'y'}) {
    m.Fork([&order, &m, c] {
      for (int i = 0; i < 3; ++i) {
        m.Step();
        order.push_back(c);
      }
    });
  }
  RunResult r = m.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(order, "xxxyyy");
}

TEST(MachineTest, TimeSlicePreempts) {
  MachineConfig cfg;
  cfg.cpus = 1;
  cfg.time_slice = 4;
  Machine m(cfg);
  std::string order;
  for (char c : {'x', 'y'}) {
    m.Fork([&order, &m, c] {
      for (int i = 0; i < 8; ++i) {
        m.Step();
        order.push_back(c);
      }
    });
  }
  RunResult r = m.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(m.preemptions(), 0u);
  // Both fibers made progress before either finished.
  EXPECT_LT(order.find('y'), order.rfind('x'));
}

TEST(MachineTest, PriorityDispatchPrefersHigher) {
  MachineConfig cfg;
  cfg.cpus = 1;
  Machine m(cfg);
  std::string order;
  m.Fork(
      [&order, &m] {
        m.Step();
        order.push_back('l');
      },
      /*priority=*/0, "low");
  m.Fork(
      [&order, &m] {
        m.Step();
        order.push_back('h');
      },
      /*priority=*/5, "high");
  RunResult r = m.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(order, "hl");
}

TEST(MachineTest, DetectsDeadlock) {
  Machine m;
  Semaphore never(m, /*initially_available=*/false);
  m.Fork([&never] { never.P(); }, 0, "stuck");
  RunResult r = m.Run();
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlock);
  ASSERT_EQ(r.stuck_fibers.size(), 1u);
  EXPECT_EQ(r.stuck_fibers[0], "stuck");
  EXPECT_TRUE(m.Aborted());
  // Machine teardown must reap the stuck fiber without hanging (covered by
  // this test finishing at all).
}

TEST(MachineTest, TeardownUnwindsFibersHoldingLocks) {
  auto run = [] {
    Machine m;
    Mutex mu(m);
    Semaphore never(m, /*initially_available=*/false);
    m.Fork([&] {
      Lock lock(mu);  // held across the block — unwound at teardown
      never.P();
    });
    RunResult r = m.Run();
    EXPECT_TRUE(r.deadlock);
  };
  EXPECT_NO_FATAL_FAILURE(run());
}

TEST(MachineTest, StepLimitStopsLivelock) {
  MachineConfig cfg;
  cfg.max_steps = 500;
  Machine m(cfg);
  m.Fork([&m] {
    for (;;) {
      m.Step();  // spins forever
    }
  });
  RunResult r = m.Run();
  EXPECT_TRUE(r.hit_step_limit);
  EXPECT_FALSE(r.completed);
}

TEST(MachineTest, ForkFromInsideAFiber) {
  Machine m;
  int child_ran = 0;
  m.Fork([&m, &child_ran] {
    m.Step();
    m.Fork([&child_ran, &m] {
      m.Step();
      child_ran = 1;
    });
  });
  RunResult r = m.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(child_ran, 1);
}

TEST(MachineTest, MigrationsTracked) {
  // With preemption on a 2-CPU machine, fibers rotate through the ready
  // pool and land on whichever processor is free — the paper's "the
  // scheduler is free to move it from one processor to another".
  MachineConfig cfg;
  cfg.cpus = 2;
  cfg.time_slice = 3;
  cfg.seed = 5;
  Machine m(cfg);
  for (int f = 0; f < 4; ++f) {
    m.Fork([&m] {
      for (int i = 0; i < 40; ++i) {
        m.Step();
      }
    });
  }
  EXPECT_TRUE(m.Run().completed);
  EXPECT_GT(m.preemptions(), 0u);
  EXPECT_GT(m.migrations(), 0u);
}

TEST(MachineTest, SpinContentionCounted) {
  MachineConfig cfg;
  cfg.cpus = 3;
  cfg.seed = 2;
  Machine m(cfg);
  Mutex mu(m);
  // Contended mutexes force concurrent Nub entries, hence spin-lock
  // contention.
  for (int f = 0; f < 3; ++f) {
    m.Fork([&] {
      for (int i = 0; i < 30; ++i) {
        mu.Acquire();
        m.Step();
        mu.Release();
      }
    });
  }
  EXPECT_TRUE(m.Run().completed);
  EXPECT_GT(m.spin_contentions(), 0u);
}

TEST(MachineTest, FiberIdsAreDense) {
  Machine m;
  FiberHandle a = m.Fork([] {});
  FiberHandle b = m.Fork([] {});
  EXPECT_EQ(a.id(), 1u);
  EXPECT_EQ(b.id(), 2u);
  EXPECT_TRUE(m.Run().completed);
}

}  // namespace
}  // namespace taos::firefly
