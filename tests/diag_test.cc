// The contention-diagnosis layer (src/obs/diag): seqlock slot publication
// and snapshots, the owner table, cycle detection over the waits-for graph
// (pure), report formatting, a live blocked-thread snapshot against the
// real runtime, and the watchdog's stall dump.
//
// The real-deadlock end-to-end check lives in diag_deadlock_fixture.cc (a
// deliberately hung process cannot share a gtest binary).

#include "src/obs/diag.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"

namespace taos {
namespace {

using namespace std::chrono_literals;
using obs::diag::BlockedEdge;
using obs::diag::Cycle;
using obs::diag::FindCycles;
using obs::diag::WaitKind;

BlockedEdge Edge(std::uint64_t tid, std::uint64_t obj, std::uint64_t owner,
                 WaitKind kind = WaitKind::kMutex) {
  BlockedEdge e;
  e.tid = tid;
  e.obj = obj;
  e.owner = owner;
  e.kind = kind;
  e.since_ns = 1000 * tid;
  return e;
}

// FindCycles requires edges sorted by tid (SnapshotBlocked's postcondition).
std::vector<BlockedEdge> Sorted(std::vector<BlockedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const BlockedEdge& a, const BlockedEdge& b) {
              return a.tid < b.tid;
            });
  return edges;
}

TEST(DiagFindCyclesTest, EmptyAndAcyclic) {
  EXPECT_TRUE(FindCycles({}).empty());
  // t1 waits for an object held by t2, but t2 is running: no cycle.
  EXPECT_TRUE(FindCycles(Sorted({Edge(1, 10, 2)})).empty());
  // A chain t1 -> t2 -> t3 with t3 running: still none.
  EXPECT_TRUE(
      FindCycles(Sorted({Edge(1, 10, 2), Edge(2, 11, 3)})).empty());
  // Owner unknown (semaphore-like) terminates the walk.
  EXPECT_TRUE(
      FindCycles(Sorted({Edge(1, 10, 0, WaitKind::kSemaphore)})).empty());
}

TEST(DiagFindCyclesTest, TwoThreadCycleReportedOnceFromSmallestTid) {
  const auto cycles =
      FindCycles(Sorted({Edge(2, 11, 1), Edge(1, 10, 2)}));
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].edges.size(), 2u);
  EXPECT_EQ(cycles[0].edges[0].tid, 1u);  // walk starts at the smallest
  EXPECT_EQ(cycles[0].edges[0].obj, 10u);
  EXPECT_EQ(cycles[0].edges[1].tid, 2u);
  EXPECT_EQ(cycles[0].edges[1].obj, 11u);
}

TEST(DiagFindCyclesTest, ThreeThreadCycleAndDisjointCycles) {
  // 1 -> 2 -> 3 -> 1, plus a separate 7 <-> 8.
  const auto cycles = FindCycles(Sorted({
      Edge(1, 10, 2),
      Edge(2, 11, 3),
      Edge(3, 12, 1),
      Edge(7, 20, 8),
      Edge(8, 21, 7),
  }));
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].edges.size(), 3u);
  EXPECT_EQ(cycles[0].edges[0].tid, 1u);
  EXPECT_EQ(cycles[1].edges.size(), 2u);
  EXPECT_EQ(cycles[1].edges[0].tid, 7u);
}

TEST(DiagFindCyclesTest, LassoTailDoesNotFabricateMembership) {
  // t5 leads into the 1 <-> 2 cycle but is not part of it.
  const auto cycles =
      FindCycles(Sorted({Edge(1, 10, 2), Edge(2, 11, 1), Edge(5, 12, 1)}));
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].edges.size(), 2u);
  for (const BlockedEdge& e : cycles[0].edges) {
    EXPECT_NE(e.tid, 5u);
  }
}

TEST(DiagReportTest, FormatNamesThreadsObjectsAndCycles) {
  const auto edges = Sorted({Edge(1, 10, 2), Edge(2, 11, 1)});
  const auto cycles = FindCycles(edges);
  const std::string report =
      obs::diag::FormatBlockedReport(edges, cycles, 5'000'000);
  EXPECT_NE(report.find("2 blocked thread(s)"), std::string::npos) << report;
  EXPECT_NE(report.find("thread 1 blocked on mutex obj 10"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("held by thread 2"), std::string::npos) << report;
  EXPECT_NE(report.find("DEADLOCK: cycle of 2 thread(s):"), std::string::npos)
      << report;
  EXPECT_NE(report.find("thread 2 waits for mutex obj 11 held by thread 1"),
            std::string::npos)
      << report;
}

TEST(DiagSlotTest, PublishSnapshotClearRoundTrip) {
  obs::diag::WaiterSlot* slot = obs::diag::RegisterWaiterSlot(990001);
  obs::diag::PublishBlocked(slot, WaitKind::kCondition, 777, 123456,
                            /*alertable=*/true);
  bool found = false;
  for (const BlockedEdge& e : obs::diag::SnapshotBlocked()) {
    if (e.tid == 990001) {
      found = true;
      EXPECT_EQ(e.kind, WaitKind::kCondition);
      EXPECT_EQ(e.obj, 777u);
      EXPECT_EQ(e.since_ns, 123456u);
      EXPECT_TRUE(e.alertable);
    }
  }
  EXPECT_TRUE(found);
  obs::diag::ClearBlocked(slot);
  for (const BlockedEdge& e : obs::diag::SnapshotBlocked()) {
    EXPECT_NE(e.tid, 990001u);
  }
}

TEST(DiagOwnerTableTest, StampQueryRestampClear) {
  // Large ids: well clear of the spec ObjIds live tests allocate.
  const std::uint64_t obj = 0x7000'0001;
  EXPECT_EQ(obs::diag::OwnerOf(obj), 0u);
  obs::diag::StampOwner(obj, 41);
  EXPECT_EQ(obs::diag::OwnerOf(obj), 41u);
  obs::diag::StampOwner(obj, 42);  // restamp in place (barging handoff)
  EXPECT_EQ(obs::diag::OwnerOf(obj), 42u);
  obs::diag::ClearOwner(obj);
  EXPECT_EQ(obs::diag::OwnerOf(obj), 0u);
  // The freed cell is reusable by another object.
  obs::diag::StampOwner(obj + 1, 43);
  EXPECT_EQ(obs::diag::OwnerOf(obj + 1), 43u);
  EXPECT_EQ(obs::diag::OwnerOf(obj), 0u);
  obs::diag::ClearOwner(obj + 1);
}

// A real blocked thread is visible in a snapshot, with the owner resolved
// through the acquire-epilogue stamp, and disappears after the grant.
TEST(DiagRuntimeTest, LiveBlockedEdgeNamesObjectAndOwner) {
  obs::diag::SetEnabled(true);
  Mutex m;
  m.Acquire();
  const spec::ThreadId holder = Thread::Self().id();
  EXPECT_EQ(obs::diag::OwnerOf(m.id()), holder);

  std::atomic<spec::ThreadId> waiter_tid{spec::kNil};
  Thread t = Thread::Fork([&] {
    waiter_tid.store(Thread::Self().id(), std::memory_order_release);
    m.Acquire();
    m.Release();
  });
  while (waiter_tid.load(std::memory_order_acquire) == spec::kNil) {
    std::this_thread::yield();
  }

  // Poll until the waiter's published edge shows up (it is about to park).
  bool seen = false;
  for (int i = 0; i < 10000 && !seen; ++i) {
    for (const BlockedEdge& e : obs::diag::SnapshotBlocked()) {
      if (e.tid == waiter_tid.load(std::memory_order_relaxed) &&
          e.obj == m.id()) {
        seen = true;
        EXPECT_EQ(e.kind, WaitKind::kMutex);
        EXPECT_EQ(e.owner, holder);
        EXPECT_FALSE(e.alertable);
        EXPECT_GT(e.since_ns, 0u);
      }
    }
    std::this_thread::sleep_for(100us);
  }
  EXPECT_TRUE(seen) << "blocked edge never appeared";

  m.Release();
  t.Join();
  for (const BlockedEdge& e : obs::diag::SnapshotBlocked()) {
    EXPECT_NE(e.tid, waiter_tid.load(std::memory_order_relaxed));
  }
  EXPECT_EQ(obs::diag::OwnerOf(m.id()), 0u);
  obs::diag::SetEnabled(false);
}

// The watchdog flags a long-blocked thread as a stall and dumps the edge
// (no cycle required), including the flight-recorder tail markers.
TEST(DiagWatchdogTest, StallDumpNamesTheBlockedThread) {
  obs::diag::SetEnabled(true);
  Mutex m;
  m.Acquire();
  std::atomic<bool> started{false};
  Thread t = Thread::Fork([&] {
    started.store(true, std::memory_order_release);
    m.Acquire();
    m.Release();
  });
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(20ms);  // let the waiter publish and park

  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  obs::diag::Watchdog watchdog;
  obs::diag::Watchdog::Options options;
  options.interval_ms = 10;
  options.stall_ms = 5;  // everything parked by now counts as stalled
  options.out = out;
  watchdog.Start(options);
  while (watchdog.scans() < 3) {
    std::this_thread::sleep_for(5ms);
  }
  watchdog.Stop();

  m.Release();
  t.Join();
  obs::diag::SetEnabled(false);

  std::rewind(out);
  std::string dump;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), out)) > 0) {
    dump.append(buf, n);
  }
  std::fclose(out);
  EXPECT_NE(dump.find("taos waits-for snapshot"), std::string::npos) << dump;
  EXPECT_NE(dump.find("blocked on mutex obj"), std::string::npos) << dump;
  EXPECT_NE(dump.find("flight-recorder events"), std::string::npos) << dump;
}

// Watchdog lifecycle: restartable, stop is idempotent, scans advance.
TEST(DiagWatchdogTest, StartStopRestart) {
  obs::diag::Watchdog watchdog;
  EXPECT_FALSE(watchdog.running());
  watchdog.Stop();  // no-op
  obs::diag::Watchdog::Options options;
  options.interval_ms = 5;
  options.stall_ms = 0;  // never stall-dump
  watchdog.Start(options);
  EXPECT_TRUE(watchdog.running());
  while (watchdog.scans() < 2) {
    std::this_thread::sleep_for(2ms);
  }
  watchdog.Stop();
  EXPECT_FALSE(watchdog.running());
  const std::uint64_t scans = watchdog.scans();
  watchdog.Start(options);
  while (watchdog.scans() < scans + 2) {
    std::this_thread::sleep_for(2ms);
  }
  watchdog.Stop();
}

}  // namespace
}  // namespace taos
