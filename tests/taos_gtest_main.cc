// Shared test main: gtest plus a contention watchdog (src/obs/diag.h), so a
// test that deadlocks or stalls self-diagnoses — naming who is blocked on
// what and who holds it — instead of sitting silent until the ctest timeout
// kills it. The thresholds sit comfortably below the harness timeouts
// (300 s default, 1800 s sanitized; see tests/CMakeLists.txt): by the time
// ctest gives up, the dump is already in the log and, when the
// TAOS_WATCHDOG_DUMP env var names a file, in a CI-uploadable artifact.
//
// The dump ends with the chaos replay banner, so a hang found by an
// injected schedule prints the {seed, strategy, point-mask} triple needed
// to reproduce it.

#include <cstdio>

#include <gtest/gtest.h>

#include "src/base/chaos.h"
#include "src/obs/diag.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);

  taos::obs::diag::Watchdog watchdog;
  taos::obs::diag::Watchdog::Options options;
  options.interval_ms = 1000;
  options.stall_ms = 120000;
  options.banner = +[](std::FILE* f) { taos::chaos::PrintConfigBanner(f); };
  watchdog.Start(options);

  const int rc = RUN_ALL_TESTS();
  watchdog.Stop();
  return rc;
}
