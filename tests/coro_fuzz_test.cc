// Conformance fuzzing for the coroutine implementation: random programs
// over the full primitive set, every run traced and checked against the
// executable specification. The schedule dimension here is program shape
// and Yield placement (the scheduler itself is deterministic round-robin).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/xorshift.h"
#include "src/coro/sync.h"
#include "src/spec/checker.h"

namespace taos::coro {
namespace {

struct Program {
  static constexpr int kMutexes = 2;
  static constexpr int kConditions = 2;
  static constexpr int kSemaphores = 2;

  Scheduler scheduler;
  std::vector<std::unique_ptr<Mutex>> mutexes;
  std::vector<std::unique_ptr<Condition>> conditions;
  std::vector<std::unique_ptr<Semaphore>> semaphores;
  std::vector<CoroHandle> handles;

  Program() {
    for (int i = 0; i < kMutexes; ++i) {
      mutexes.push_back(std::make_unique<Mutex>());
    }
    for (int i = 0; i < kConditions; ++i) {
      conditions.push_back(std::make_unique<Condition>());
    }
    for (int i = 0; i < kSemaphores; ++i) {
      semaphores.push_back(std::make_unique<Semaphore>());
    }
  }
};

void RunRandomOps(Program& p, XorShift rng, int ops) {
  Scheduler& s = p.scheduler;
  for (int i = 0; i < ops; ++i) {
    const std::uint32_t roll = rng.Below(100);
    const std::size_t m = rng.Below(Program::kMutexes);
    const std::size_t c = rng.Below(Program::kConditions);
    const std::size_t sem = rng.Below(Program::kSemaphores);
    if (roll < 25) {
      Lock lock(*p.mutexes[m]);
      if (rng.Chance(1, 2)) {
        s.Yield();  // hold across a switch
      }
    } else if (roll < 37) {
      Lock lock(*p.mutexes[m]);
      p.conditions[c]->Wait(*p.mutexes[m]);  // may sleep forever: legal
    } else if (roll < 49) {
      Lock lock(*p.mutexes[m]);
      try {
        AlertWait(*p.mutexes[m], *p.conditions[c]);
      } catch (const Alerted&) {
      }
    } else if (roll < 61) {
      p.conditions[c]->Signal();
    } else if (roll < 68) {
      p.conditions[c]->Broadcast();
    } else if (roll < 78) {
      p.semaphores[sem]->P();
      p.semaphores[sem]->V();
    } else if (roll < 84) {
      p.semaphores[sem]->V();
    } else if (roll < 90) {
      try {
        AlertP(*p.semaphores[sem]);
        p.semaphores[sem]->V();
      } catch (const Alerted&) {
      }
    } else if (roll < 96) {
      Alert(p.handles[rng.Below(
          static_cast<std::uint32_t>(p.handles.size()))]);
    } else {
      (void)TestAlert();
      s.Yield();
    }
  }
}

class CoroFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoroFuzzSweep, RandomProgramsConform) {
  for (std::uint64_t round = 0; round < 40; ++round) {
    const std::uint64_t seed = GetParam() * 10'000 + round;
    spec::Trace trace;
    Program p;
    p.scheduler.SetTrace(&trace);
    constexpr int kCoros = 4;
    for (int f = 0; f < kCoros; ++f) {
      p.handles.push_back(p.scheduler.Fork(
          [&p, seed, f] {
            RunRandomOps(p, XorShift(seed * 31 + static_cast<std::uint64_t>(f)),
                         8);
          },
          "fuzz" + std::to_string(f)));
    }
    const CoroRunResult r = p.scheduler.Run();
    p.scheduler.SetTrace(nullptr);
    // Deadlock is legal (no liveness in the spec); the trace prefix of a
    // deadlocked run must still conform.
    (void)r;
    spec::TraceChecker checker;
    spec::CheckResult cr = checker.CheckTrace(trace);
    ASSERT_TRUE(cr.ok) << "seed " << seed << " at action " << cr.failed_index
                       << ": " << cr.message << "\n"
                       << trace.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Coro, CoroFuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace taos::coro
