// Monitor<T>: the automatic-signal monitor wrapper.

#include "src/workload/monitor.h"

#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"

namespace taos::workload {
namespace {

TEST(MonitorTest, WithMutatesAndReturns) {
  Monitor<int> counter(10);
  const int after = counter.With([](auto& access) {
    *access += 5;
    return *access;
  });
  EXPECT_EQ(after, 15);
  EXPECT_EQ(counter.Read([](const int& v) { return v; }), 15);
}

TEST(MonitorTest, ConstructorForwardsArguments) {
  Monitor<std::string> s(5, 'x');
  EXPECT_EQ(s.Read([](const std::string& v) { return v; }), "xxxxx");
}

TEST(MonitorTest, AwaitBlocksUntilPredicate) {
  Monitor<int> value(0);
  std::atomic<bool> resumed{false};
  Thread waiter = Thread::Fork([&] {
    value.When([](const int& v) { return v >= 3; },
               [&](auto& access) {
                 resumed.store(true);
                 return *access;
               });
  });
  for (int i = 0; i < 2; ++i) {
    value.With([](auto& access) { ++*access; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(resumed.load());
  value.With([](auto& access) { ++*access; });  // reaches 3
  waiter.Join();
  EXPECT_TRUE(resumed.load());
}

TEST(MonitorTest, ExceptionReleasesAndBroadcasts) {
  Monitor<int> value(0);
  // A waiter that depends on the broadcast the throwing entry must emit.
  Thread waiter = Thread::Fork([&] {
    value.When([](const int& v) { return v == 1; },
               [](auto&) { return 0; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  try {
    value.With([](auto& access) {
      *access = 1;
      throw std::runtime_error("boom");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  waiter.Join();  // saw v==1: the broadcast happened despite the exception
  // And the monitor is not left locked:
  EXPECT_EQ(value.Read([](const int& v) { return v; }), 1);
}

TEST(MonitorTest, QueueBetweenThreads) {
  Monitor<std::deque<int>> queue;
  constexpr int kItems = 2000;
  Thread producer = Thread::Fork([&] {
    for (int i = 1; i <= kItems; ++i) {
      queue.With([i](auto& access) { access->push_back(i); });
    }
  });
  long sum = 0;
  for (int i = 0; i < kItems; ++i) {
    sum += queue.When(
        [](const std::deque<int>& q) { return !q.empty(); },
        [](auto& access) {
          const int v = access->front();
          access->pop_front();
          return v;
        });
  }
  producer.Join();
  EXPECT_EQ(sum, static_cast<long>(kItems) * (kItems + 1) / 2);
  EXPECT_TRUE(queue.Read([](const std::deque<int>& q) { return q.empty(); }));
}

TEST(MonitorTest, ManyWaitersAllReleased) {
  Monitor<int> gate(0);
  constexpr int kWaiters = 6;
  std::atomic<int> through{0};
  std::vector<Thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.push_back(Thread::Fork([&] {
      gate.When([](const int& v) { return v != 0; },
                [&](auto&) {
                  through.fetch_add(1);
                  return 0;
                });
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.With([](auto& access) { *access = 1; });  // one write frees all
  for (Thread& t : waiters) {
    t.Join();
  }
  EXPECT_EQ(through.load(), kWaiters);
}

TEST(MonitorTest, ContentionCounterExact) {
  Monitor<long> counter(0);
  constexpr int kThreads = 6;
  constexpr int kIters = 3000;
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < kIters; ++i) {
        counter.With([](auto& access) { ++*access; });
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(counter.Read([](const long& v) { return v; }),
            static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace taos::workload
