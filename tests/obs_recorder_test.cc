// The flight recorder (src/obs/recorder.h): Chrome trace-event schema,
// per-thread timestamp monotonicity, overflow accounting, a golden-file
// check of the drained op sequence, and enable/disable safety.
//
// Every test brackets its work with Drain (which clears all rings) so rings
// filled by other tests in this binary don't leak in.

#include "src/obs/recorder.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "src/threads/threads.h"

#ifndef TAOS_TESTS_GOLDEN_DIR
#define TAOS_TESTS_GOLDEN_DIR "tests/golden"
#endif

namespace taos {
namespace {

using obs::json::Parse;
using obs::json::Value;

void ClearRings() {
  obs::SetRecorderEnabled(false);
  (void)obs::DrainChromeTraceJson();
}

// Parses a drained trace and schema-checks it: top-level object with a
// traceEvents array and otherData.dropped_events; every "X" event carries a
// known op name, numeric ts/dur/pid/tid, and args.obj; every flow record
// ("s" start / "f" finish, emitted for wakeup-causality edges) carries a
// numeric flow id.
Value ParseAndCheckSchema(const std::string& text) {
  std::string error;
  std::optional<Value> doc = Parse(text, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  if (!doc) {
    return Value{};
  }
  EXPECT_TRUE(doc->IsObject());
  const Value* events = doc->Find("traceEvents");
  EXPECT_TRUE(events != nullptr && events->IsArray());
  if (events == nullptr || !events->IsArray()) {
    return Value{};
  }
  const Value* other = doc->Find("otherData");
  const Value* dropped =
      other != nullptr ? other->Find("dropped_events") : nullptr;
  EXPECT_TRUE(dropped != nullptr && dropped->IsNumber());
  for (const Value& e : events->array) {
    EXPECT_TRUE(e.IsObject());
    const Value* ph = e.Find("ph");
    EXPECT_TRUE(ph != nullptr && ph->IsString());
    if (ph == nullptr || !ph->IsString() || ph->string == "M") {
      continue;  // malformed (already flagged) or thread_name metadata
    }
    if (ph->string == "s" || ph->string == "f") {
      const Value* id = e.Find("id");
      EXPECT_TRUE(id != nullptr && id->IsNumber()) << "flow record sans id";
      for (const char* key : {"ts", "pid", "tid"}) {
        const Value* v = e.Find(key);
        EXPECT_TRUE(v != nullptr && v->IsNumber()) << key;
      }
      continue;
    }
    EXPECT_EQ(ph->string, "X");
    const Value* name = e.Find("name");
    EXPECT_TRUE(name != nullptr && name->IsString());
    if (name != nullptr && name->IsString()) {
      bool known = false;
      for (int op = 0; op < static_cast<int>(obs::Op::kNumOps); ++op) {
        known |= name->string == obs::OpName(static_cast<obs::Op>(op));
      }
      EXPECT_TRUE(known) << "unknown op name: " << name->string;
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const Value* v = e.Find(key);
      EXPECT_TRUE(v != nullptr && v->IsNumber()) << key;
    }
    const Value* args = e.Find("args");
    EXPECT_TRUE(args != nullptr && args->IsObject());
    const Value* obj = args != nullptr ? args->Find("obj") : nullptr;
    EXPECT_TRUE(obj != nullptr && obj->IsNumber());
  }
  return *std::move(doc);
}

TEST(ObsRecorderTest, DisabledRecordsNothing) {
  ClearRings();
  Mutex m;
  m.Acquire();
  m.Release();
  const Value doc = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* events = doc.Find("traceEvents");
  ASSERT_TRUE(events != nullptr);
  EXPECT_TRUE(events->array.empty());
}

TEST(ObsRecorderTest, ContendedRunDrainsToValidChromeTrace) {
  ClearRings();
  obs::SetRecorderEnabled(true);
  {
    Mutex m;
    Condition cond;
    Semaphore sem;
    std::atomic<bool> stop{false};
    std::vector<Thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.push_back(Thread::Fork([&] {
        for (int i = 0; i < 200; ++i) {
          m.Acquire();
          m.Release();
          sem.P();
          sem.V();
        }
        m.Acquire();
        cond.Signal();  // mix in fast signals
        m.Release();
      }));
    }
    for (Thread& t : threads) {
      t.Join();
    }
    (void)stop;
  }
  obs::SetRecorderEnabled(false);

  const Value doc = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* events = doc.Find("traceEvents");
  ASSERT_TRUE(events != nullptr);
  std::size_t complete = 0;
  for (const Value& e : events->array) {
    complete += e.Find("ph")->string == "X";
  }
  EXPECT_GT(complete, 0u);

  // A second drain sees cleared rings.
  const Value doc2 = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* events2 = doc2.Find("traceEvents");
  ASSERT_TRUE(events2 != nullptr);
  EXPECT_TRUE(events2->array.empty());
}

TEST(ObsRecorderTest, PerThreadTimestampsAreMonotone) {
  ClearRings();
  obs::SetRecorderEnabled(true);
  {
    std::vector<Thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.push_back(Thread::Fork([] {
        Mutex m;
        Semaphore s;
        for (int i = 0; i < 300; ++i) {
          m.Acquire();
          m.Release();
          s.P();
          s.V();
        }
      }));
    }
    for (Thread& t : threads) {
      t.Join();
    }
  }
  obs::SetRecorderEnabled(false);

  const Value doc = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* events = doc.Find("traceEvents");
  ASSERT_TRUE(events != nullptr);
  std::map<double, double> last_ts;  // tid -> latest ts seen
  for (const Value& e : events->array) {
    if (e.Find("ph")->string != "X") {
      continue;
    }
    const double tid = e.Find("tid")->number;
    const double ts = e.Find("ts")->number;
    auto [it, inserted] = last_ts.try_emplace(tid, ts);
    if (!inserted) {
      EXPECT_LE(it->second, ts) << "tid " << tid << " went backwards";
      it->second = ts;
    }
  }
  EXPECT_GE(last_ts.size(), 4u);
}

TEST(ObsRecorderTest, OverflowReportsDroppedEvents) {
  ClearRings();
  obs::SetRecorderEnabled(true);
  Mutex m;
  // Each pair records two events; 4096-slot ring => 3000 pairs overflow it.
  for (int i = 0; i < 3000; ++i) {
    m.Acquire();
    m.Release();
  }
  obs::SetRecorderEnabled(false);
  const Value doc = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* other = doc.Find("otherData");
  const Value* events = doc.Find("traceEvents");
  ASSERT_TRUE(other != nullptr && events != nullptr);
  const double dropped = other->Find("dropped_events")->number;
  EXPECT_GT(dropped, 0.0);
  // Everything written is either drained or accounted dropped. Count "X"
  // samples explicitly: "M" metadata and "s"/"f" flow records are
  // re-renderings, not recorded samples.
  double complete = 0;
  for (const Value& e : events->array) {
    complete += e.Find("ph")->string == "X";
  }
  EXPECT_EQ(dropped + complete, 2 * 3000.0);
  // Per-ring attribution: all of this test's overflow happened on the one
  // recording thread, so dropped_by_ring is a single entry carrying the
  // whole total. (Other rings were drained clean at ClearRings.)
  const Value* by_ring = other->Find("dropped_by_ring");
  ASSERT_TRUE(by_ring != nullptr && by_ring->IsObject());
  double per_ring_sum = 0;
  std::size_t nonzero_rings = 0;
  for (const auto& [tid, count] : by_ring->object) {
    ASSERT_TRUE(count.IsNumber()) << tid;
    per_ring_sum += count.number;
    nonzero_rings += count.number > 0;
  }
  EXPECT_EQ(per_ring_sum, dropped);
  EXPECT_EQ(nonzero_rings, 1u);
}

// SetTraceMetadata pairs ride along in the next drain's otherData, making
// A/B artifacts self-describing; they persist across drains (config, not
// samples).
TEST(ObsRecorderTest, TraceMetadataAppearsInOtherData) {
  ClearRings();
  obs::SetTraceMetadata("lock_backend", "tas");
  obs::SetTraceMetadata("test_key", "one");
  obs::SetTraceMetadata("test_key", "two");  // overwrite wins
  const Value doc = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* other = doc.Find("otherData");
  ASSERT_TRUE(other != nullptr);
  const Value* backend = other->Find("lock_backend");
  ASSERT_TRUE(backend != nullptr && backend->IsString());
  EXPECT_EQ(backend->string, "tas");
  const Value* key = other->Find("test_key");
  ASSERT_TRUE(key != nullptr && key->IsString());
  EXPECT_EQ(key->string, "two");
}

// A real park/unpark handoff drains as a wakeup-causality edge: the waker's
// Unpark and the wakee's ParkResume share a nonzero args.flow, and the
// drain re-renders the pair as Chrome "s"/"f" flow records with that id.
TEST(ObsRecorderTest, UnparkAndParkResumeShareFlowId) {
  ClearRings();
  obs::SetRecorderEnabled(true);
  {
    Mutex m;
    m.Acquire();
    std::atomic<bool> started{false};
    Thread t = Thread::Fork([&] {
      started.store(true, std::memory_order_release);
      m.Acquire();  // parks: the owner sits on the lock for 50 ms
      m.Release();
    });
    while (!started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    m.Release();  // the handoff: Unpark stamps the flow, the wakee echoes it
    t.Join();
  }
  obs::SetRecorderEnabled(false);

  const Value doc = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* events = doc.Find("traceEvents");
  ASSERT_TRUE(events != nullptr);
  std::map<double, int> unpark_flows;   // flow id -> count
  std::map<double, int> resume_flows;
  std::map<double, int> flow_records;   // "s"/"f" ids
  for (const Value& e : events->array) {
    const std::string& ph = e.Find("ph")->string;
    if (ph == "s" || ph == "f") {
      flow_records[e.Find("id")->number]++;
      continue;
    }
    if (ph != "X") {
      continue;
    }
    const Value* flow = e.Find("args")->Find("flow");
    if (flow == nullptr) {
      continue;
    }
    const std::string& name = e.Find("name")->string;
    if (name == "Unpark") {
      unpark_flows[flow->number]++;
    } else if (name == "ParkResume") {
      resume_flows[flow->number]++;
    }
  }
  ASSERT_FALSE(unpark_flows.empty()) << "no flow-stamped Unpark drained";
  // At least one unpark's flow id was echoed by the wakee's resume, and the
  // drain emitted both halves of the Chrome flow arrow for it.
  bool matched = false;
  for (const auto& [flow, n] : unpark_flows) {
    EXPECT_GT(flow, 0.0);
    if (resume_flows.count(flow) != 0) {
      matched = true;
      EXPECT_EQ(flow_records[flow], 2) << "flow " << flow;
    }
  }
  EXPECT_TRUE(matched) << "no Unpark/ParkResume pair shared a flow id";
}

// Golden file: a deterministic single-thread op script drains to a fixed
// sequence of op names (timestamps vary run to run; names and order don't).
TEST(ObsRecorderTest, GoldenOpSequence) {
  ClearRings();
  obs::SetRecorderEnabled(true);
  {
    Mutex m;
    Condition c;
    Semaphore s;
    m.Acquire();
    m.Release();
    s.P();
    s.V();
    c.Signal();
    c.Broadcast();
    m.Acquire();
    s.P();
    s.V();
    m.Release();
  }
  obs::SetRecorderEnabled(false);

  const Value doc = ParseAndCheckSchema(obs::DrainChromeTraceJson());
  const Value* events = doc.Find("traceEvents");
  ASSERT_TRUE(events != nullptr);
  std::ostringstream got;
  for (const Value& e : events->array) {
    if (e.Find("ph")->string == "X") {
      got << e.Find("name")->string << "\n";
    }
  }

  const std::string golden_path =
      std::string(TAOS_TESTS_GOLDEN_DIR) + "/obs_trace_ops.golden";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got.str(), want.str());
}

// Toggling the recorder while other threads are mid-operation must be free
// of data races (the enabled flag is a relaxed atomic; events race the
// toggle benignly — they land or they don't). TSan checks this run.
TEST(ObsRecorderTest, ToggleWhileRunningIsSafe) {
  ClearRings();
  std::atomic<bool> stop{false};
  std::vector<Thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.push_back(Thread::Fork([&stop] {
      Mutex m;
      Semaphore s;
      while (!stop.load(std::memory_order_acquire)) {
        m.Acquire();
        m.Release();
        s.P();
        s.V();
      }
    }));
  }
  for (int i = 0; i < 200; ++i) {
    obs::SetRecorderEnabled(i % 2 == 0);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (Thread& t : threads) {
    t.Join();
  }
  obs::SetRecorderEnabled(false);
  ParseAndCheckSchema(obs::DrainChromeTraceJson());
}

}  // namespace
}  // namespace taos
