// FIFO-fairness regression tests (waitq backend).
//
// The waitq substrate resumes waiters in cell-claim order, so with no awake
// competitors a chain of handoffs must grant in arrival order. The classic
// intrusive queues are also FIFO *per queue*, but the classic backend makes
// no fairness promise once bargers are awake (Report 20's mutex "does not
// guarantee fairness"); these tests therefore assert strict order only in
// waitq mode and merely record the order (tolerating any permutation) on
// the classic backend, documenting the difference rather than freezing the
// classic behavior.
//
// Each scenario serializes arrivals: waiter i is forked only after waiter
// i-1 has parked (its ThreadRecord::parks count went to 1), so the claim
// order — and thus the expected grant order — is exactly 0, 1, 2, ...

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/alerted.h"
#include "src/threads/threads.h"

namespace taos {
namespace {

class WaitqFairnessTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = Nub::Get().waitq_mode();
    Nub::Get().SetWaitqMode(GetParam());
  }
  void TearDown() override { Nub::Get().SetWaitqMode(saved_); }

  static bool WaitqMode() { return GetParam(); }

 private:
  bool saved_ = false;
};

void AwaitParked(const Thread& t) {
  while (t.Handle().rec->parks.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
}

// N waiters blocked on one mutex in a known arrival order; the holder
// releases and each waiter releases in turn. With every competitor asleep,
// the grant chain must follow arrival order under waitq.
TEST_P(WaitqFairnessTest, MutexHandoffsFollowArrivalOrder) {
  constexpr int kWaiters = 8;
  Mutex m;
  std::vector<int> grant_order;  // guarded by m

  m.Acquire();
  std::vector<Thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.push_back(Thread::Fork([&m, &grant_order, i] {
      m.Acquire();
      grant_order.push_back(i);
      m.Release();
    }));
    // Serialize arrivals: the next waiter may not even fork until this one
    // is parked (and therefore enqueued) on m.
    AwaitParked(waiters.back());
  }

  m.Release();
  for (Thread& t : waiters) {
    t.Join();
  }

  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(kWaiters));
  if (WaitqMode()) {
    for (int i = 0; i < kWaiters; ++i) {
      EXPECT_EQ(grant_order[i], i) << "waitq granted out of arrival order";
    }
  } else if (!std::is_sorted(grant_order.begin(), grant_order.end())) {
    // Classic backend: legal (barging is permitted), just worth seeing.
    std::string order;
    for (int g : grant_order) {
      order += std::to_string(g) + " ";
    }
    GTEST_LOG_(INFO) << "classic backend barged: grant order " << order;
  }
}

// N waiters in AlertWait on one condition; the middle one is alerted (O(1)
// cell cancellation under waitq), then signals are delivered one at a time.
// The alerted waiter must raise without consuming a signal, and the signals
// must reach the remaining waiters in arrival order under waitq.
TEST_P(WaitqFairnessTest, SignalsSkipAlertedWaiterInArrivalOrder) {
  constexpr int kWaiters = 5;
  constexpr int kAlerted = 2;
  Mutex m;
  Condition c;
  std::vector<int> grant_order;             // guarded by m
  std::atomic<bool> raised[kWaiters] = {};  // one flag per waiter

  std::vector<Thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.push_back(Thread::Fork([&, i] {
      m.Acquire();
      try {
        AlertWait(m, c);
        grant_order.push_back(i);
      } catch (const Alerted&) {
        raised[i].store(true, std::memory_order_release);
      }
      m.Release();
    }));
    AwaitParked(waiters.back());
  }

  Alert(waiters[kAlerted].Handle());
  waiters[kAlerted].Join();
  EXPECT_TRUE(raised[kAlerted].load(std::memory_order_acquire));

  for (int delivered = 1; delivered < kWaiters; ++delivered) {
    c.Signal();
    // Each signal wakes exactly one waiter; wait for it to record itself so
    // the next signal finds a quiet queue (no awake competitors).
    for (;;) {
      m.Acquire();
      const std::size_t n = grant_order.size();
      m.Release();
      if (n == static_cast<std::size_t>(delivered)) {
        break;
      }
      std::this_thread::yield();
    }
  }
  for (Thread& t : waiters) {
    if (t.Joinable()) {  // the alerted waiter was already joined
      t.Join();
    }
  }

  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(kWaiters - 1));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(raised[i].load(std::memory_order_acquire), i == kAlerted);
  }
  if (WaitqMode()) {
    std::vector<int> expected;
    for (int i = 0; i < kWaiters; ++i) {
      if (i != kAlerted) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(grant_order, expected)
        << "waitq signals strayed from arrival order";
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, WaitqFairnessTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& mode) {
                           return mode.param ? "Waitq" : "Classic";
                         });

}  // namespace
}  // namespace taos
