// ThreadPool and Barrier: the derived components that exercise the whole
// primitive vocabulary together (Wait loops, Broadcast shutdown, Alert
// cancellation).

#include "src/workload/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace taos::workload {
namespace {

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4, 8);
    for (int i = 1; i <= 200; ++i) {
      ASSERT_TRUE(pool.Submit([&sum, i] {
        sum.fetch_add(i, std::memory_order_relaxed);
      }));
    }
    pool.Shutdown();
    EXPECT_EQ(pool.tasks_executed(), 200u);
  }
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2, 16);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
  }  // ~ThreadPool == Shutdown: everything queued still executes
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRefused) {
  ThreadPool pool(1, 4);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, SubmitBlocksOnFullQueueThenProceeds) {
  ThreadPool pool(1, 2);
  Semaphore gate;
  gate.P();  // the first task blocks the single worker
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
    gate.P();
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 4; ++i) {  // more than capacity: Submit must block
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
    if (i == 0) {
      gate.V();  // let the worker start draining
    }
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolTest, CancelInterruptsIdleWorkers) {
  ThreadPool pool(3, 4);
  // No tasks at all: the workers are parked in AlertWait.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.Cancel();  // must not hang
  EXPECT_EQ(pool.tasks_executed(), 0u);
}

TEST(ThreadPoolTest, CancelDropsQueuedTasks) {
  ThreadPool pool(1, 64);
  Semaphore gate;
  gate.P();
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
    gate.P();  // hold the worker so the queue backs up
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ran.fetch_add(1);
    }));
  }
  gate.V();
  pool.Cancel();
  // Every task either executed or was dropped, exactly once.
  EXPECT_EQ(pool.tasks_executed() + pool.tasks_dropped(), 21u);
  // With 2 ms tasks, Cancel (issued immediately) beats the drain.
  EXPECT_GT(pool.tasks_dropped(), 0u);
}

TEST(ThreadPoolTest, ManyPoolsSequentially) {
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    ThreadPool pool(2, 4);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
    pool.Shutdown();
    EXPECT_EQ(ran.load(), 20);
  }
}

class BarrierSweep : public ::testing::TestWithParam<int> {};

TEST_P(BarrierSweep, AllPartiesReleasedTogetherEachGeneration) {
  const int parties = GetParam();
  constexpr int kGenerations = 20;
  Barrier barrier(parties);
  std::atomic<int> in_phase{0};
  std::atomic<bool> overlap{false};
  std::vector<Thread> threads;
  for (int p = 0; p < parties; ++p) {
    threads.push_back(Thread::Fork([&] {
      for (int g = 0; g < kGenerations; ++g) {
        in_phase.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t gen = barrier.ArriveAndWait();
        if (gen != static_cast<std::uint64_t>(g)) {
          overlap.store(true);  // a thread raced past a generation
        }
        in_phase.fetch_sub(1, std::memory_order_relaxed);
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(in_phase.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Workload, BarrierSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(BarrierTest, SingleParty) {
  Barrier barrier(1);
  EXPECT_EQ(barrier.ArriveAndWait(), 0u);
  EXPECT_EQ(barrier.ArriveAndWait(), 1u);
}

}  // namespace
}  // namespace taos::workload
