// The coroutine (single-process Unix) implementation of the Threads
// package: same interface, radically simpler mechanism.

#include "src/coro/sync.h"

#include "src/spec/checker.h"
#include "src/workload/bounded_buffer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace taos::coro {
namespace {

TEST(CoroSchedulerTest, RunsBodies) {
  Scheduler s;
  int x = 0;
  s.Fork([&x] { x = 7; });
  CoroRunResult r = s.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(x, 7);
}

TEST(CoroSchedulerTest, RoundRobinYield) {
  Scheduler s;
  std::string order;
  for (char c : {'a', 'b', 'c'}) {
    s.Fork([&s, &order, c] {
      for (int i = 0; i < 3; ++i) {
        order.push_back(c);
        s.Yield();
      }
    });
  }
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(order, "abcabcabc");
}

TEST(CoroSchedulerTest, RunWithoutYieldIsSequential) {
  Scheduler s;
  std::string order;
  s.Fork([&order] { order += "AA"; });
  s.Fork([&order] { order += "BB"; });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(order, "AABB");  // no preemption, ever
}

TEST(CoroSchedulerTest, JoinWaitsForCompletion) {
  Scheduler s;
  std::string order;
  CoroHandle worker = s.Fork([&s, &order] {
    order += "w1";
    s.Yield();
    order += "w2";
  });
  s.Fork([&s, &order, worker] {
    order += "j1";
    s.Join(worker);
    order += "j2";
  });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(order, "w1j1w2j2");
}

TEST(CoroSchedulerTest, JoinFinishedCoroReturnsImmediately) {
  Scheduler s;
  CoroHandle worker = s.Fork([] {});
  bool joined = false;
  s.Fork([&s, worker, &joined] {
    s.Join(worker);
    joined = true;
  });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_TRUE(joined);
}

TEST(CoroSchedulerTest, DeadlockDetectedAndUnwound) {
  Scheduler s;
  Semaphore never(/*initially_available=*/false);
  bool destructor_ran = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  s.Fork([&never, &destructor_ran] {
    Sentinel sentinel{&destructor_ran};
    never.P();
  });
  CoroRunResult r = s.Run();
  EXPECT_TRUE(r.deadlock);
  ASSERT_EQ(r.stuck.size(), 1u);
  // The straggler was unwound inside Run(): its stack objects died.
  EXPECT_TRUE(destructor_ran);
  EXPECT_TRUE(s.Aborted());
}

TEST(CoroSchedulerTest, DeadlockUnwindReleasesHeldLocks) {
  Scheduler s;
  Mutex m;
  Semaphore never(false);
  s.Fork([&] {
    Lock lock(m);  // must be released during the unwind, while m is alive
    never.P();
  });
  EXPECT_TRUE(s.Run().deadlock);
}

TEST(CoroSchedulerTest, JoinCycleIsDetectedAsDeadlock) {
  Scheduler s;
  CoroHandle a;
  CoroHandle b;
  a = s.Fork([&s, &b] { s.Join(b); }, "a");
  b = s.Fork([&s, &a] { s.Join(a); }, "b");
  CoroRunResult r = s.Run();
  EXPECT_TRUE(r.deadlock);
  EXPECT_EQ(r.stuck.size(), 2u);
}

TEST(CoroSchedulerTest, RunTwice) {
  Scheduler s;
  int runs = 0;
  s.Fork([&runs] { ++runs; });
  EXPECT_TRUE(s.Run().completed);
  s.Fork([&runs] { ++runs; });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(runs, 2);
}

TEST(CoroMutexTest, HandoffIsFifo) {
  Scheduler s;
  Mutex m;
  std::string order;
  for (char c : {'a', 'b', 'c'}) {
    s.Fork([&, c] {
      m.Acquire();
      order.push_back(c);
      s.Yield();  // hold the mutex across a yield
      order.push_back(c);
      m.Release();
    });
  }
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(order, "aabbcc");  // direct handoff in queue order
}

TEST(CoroMutexTest, CriticalSectionExcludes) {
  Scheduler s;
  Mutex m;
  int in_cs = 0;
  bool overlap = false;
  long counter = 0;
  for (int t = 0; t < 4; ++t) {
    s.Fork([&] {
      for (int i = 0; i < 50; ++i) {
        Lock lock(m);
        ++in_cs;
        if (in_cs > 1) {
          overlap = true;
        }
        s.Yield();  // invite trouble
        ++counter;
        --in_cs;
      }
    });
  }
  EXPECT_TRUE(s.Run().completed);
  EXPECT_FALSE(overlap);
  EXPECT_EQ(counter, 200);
}

TEST(CoroConditionTest, WaitSignal) {
  Scheduler s;
  Mutex m;
  Condition c;
  bool flag = false;
  std::string order;
  s.Fork([&] {
    Lock lock(m);
    while (!flag) {
      c.Wait(m);
    }
    order += "waiter";
  });
  s.Fork([&] {
    {
      Lock lock(m);
      flag = true;
    }
    c.Signal();
    order += "signaller;";
  });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(order, "signaller;waiter");
}

TEST(CoroConditionTest, BroadcastWakesAll) {
  Scheduler s;
  Mutex m;
  Condition c;
  bool go = false;
  int resumed = 0;
  for (int i = 0; i < 5; ++i) {
    s.Fork([&] {
      Lock lock(m);
      while (!go) {
        c.Wait(m);
      }
      ++resumed;
    });
  }
  s.Fork([&] {
    {
      Lock lock(m);
      go = true;
    }
    c.Broadcast();
  });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(resumed, 5);
}

TEST(CoroConditionTest, SignalWakesExactlyOne) {
  Scheduler s;
  Mutex m;
  Condition c;
  int tokens = 0;
  int resumed = 0;
  for (int i = 0; i < 2; ++i) {
    s.Fork([&] {
      Lock lock(m);
      while (tokens == 0) {
        c.Wait(m);
      }
      --tokens;
      ++resumed;
    });
  }
  s.Fork([&] {
    {
      Lock lock(m);
      tokens = 1;
    }
    c.Signal();
  });
  CoroRunResult r = s.Run();
  // One waiter resumes; the other legally waits forever (no liveness).
  EXPECT_TRUE(r.deadlock);
  EXPECT_EQ(resumed, 1);
  EXPECT_EQ(r.stuck.size(), 1u);
}

TEST(CoroSemaphoreTest, TokenHandoff) {
  Scheduler s;
  Semaphore sem(false);
  std::string order;
  s.Fork([&] {
    sem.P();
    order += "got;";
  });
  s.Fork([&] {
    order += "giving;";
    sem.V();
  });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(order, "giving;got;");
  EXPECT_FALSE(sem.AvailableForDebug());  // transferred, not freed
}

TEST(CoroSemaphoreTest, VIdempotentWhenNoWaiters) {
  Scheduler s;
  Semaphore sem;
  s.Fork([&] {
    sem.V();
    sem.V();
    sem.P();
    EXPECT_FALSE(sem.AvailableForDebug());
    sem.V();
  });
  EXPECT_TRUE(s.Run().completed);
}

TEST(CoroAlertTest, TestAlertConsumes) {
  Scheduler s;
  CoroHandle target = s.Fork([&s] {
    s.Yield();  // let the alerter run
    EXPECT_TRUE(TestAlert());
    EXPECT_FALSE(TestAlert());
  });
  s.Fork([target] { Alert(target); });
  EXPECT_TRUE(s.Run().completed);
}

TEST(CoroAlertTest, AlertWaitRaises) {
  Scheduler s;
  Mutex m;
  Condition c;
  bool raised = false;
  CoroHandle w = s.Fork([&] {
    Lock lock(m);
    try {
      for (;;) {
        AlertWait(m, c);
      }
    } catch (const Alerted&) {
      EXPECT_EQ(m.HolderForDebug(), Scheduler::Current());
      raised = true;
    }
  });
  s.Fork([w] { Alert(w); });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_TRUE(raised);
}

TEST(CoroAlertTest, PreAlertedAlertWaitRaisesWithoutBlocking) {
  Scheduler s;
  Mutex m;
  Condition c;
  bool raised = false;
  CoroHandle w = s.Fork([&] {
    s.Yield();  // the alert is posted while we are runnable
    Lock lock(m);
    try {
      AlertWait(m, c);
    } catch (const Alerted&) {
      raised = true;
    }
  });
  s.Fork([w] { Alert(w); });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_TRUE(raised);
}

TEST(CoroAlertTest, AlertPRaisesAndLeavesSemaphore) {
  Scheduler s;
  Semaphore sem(false);
  bool raised = false;
  CoroHandle w = s.Fork([&] {
    try {
      AlertP(sem);
    } catch (const Alerted&) {
      raised = true;
    }
  });
  s.Fork([w] { Alert(w); });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_TRUE(raised);
  EXPECT_FALSE(sem.AvailableForDebug());  // UNCHANGED [s]
}

TEST(CoroAlertTest, UncaughtAlertedEndsCoroQuietly) {
  Scheduler s;
  Semaphore sem(false);
  CoroHandle w = s.Fork([&] { AlertP(sem); });
  s.Fork([w] { Alert(w); });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_TRUE(w.coro->ended_by_alert);
}

TEST(CoroIntegrationTest, ProducerConsumerPingPong) {
  Scheduler s;
  Mutex m;
  Condition c;
  int cell = 0;
  long sum = 0;
  constexpr int kRounds = 200;
  s.Fork([&] {
    for (int r = 1; r <= kRounds; ++r) {
      Lock lock(m);
      while (cell != 0) {
        c.Wait(m);
      }
      cell = r;
      c.Broadcast();
    }
  });
  s.Fork([&] {
    for (int r = 1; r <= kRounds; ++r) {
      Lock lock(m);
      while (cell == 0) {
        c.Wait(m);
      }
      sum += cell;
      cell = 0;
      c.Broadcast();
    }
  });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(sum, static_cast<long>(kRounds) * (kRounds + 1) / 2);
}

// --- E12 on the third implementation: traced coroutine runs conform ------

TEST(CoroTraceTest, MixedWorkloadConforms) {
  spec::Trace trace;
  Scheduler s;
  s.SetTrace(&trace);
  Mutex m;
  Condition c;
  Semaphore sem;
  bool flag = false;
  CoroHandle waiter = s.Fork([&] {
    Lock lock(m);
    while (!flag) {
      c.Wait(m);
    }
  });
  s.Fork([&] {
    sem.P();
    {
      Lock lock(m);
      flag = true;
    }
    c.Signal();
    sem.V();
  });
  s.Fork([waiter, &s] {
    Alert(waiter);  // arrives after the waiter resumed: stays pending
    (void)s;
  });
  EXPECT_TRUE(s.Run().completed);
  s.SetTrace(nullptr);

  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << "at " << r.failed_index << ": " << r.message << "\n"
                    << trace.ToString();
  EXPECT_GT(r.actions_checked, 8u);
}

TEST(CoroTraceTest, AlertPathsConform) {
  spec::Trace trace;
  Scheduler s;
  s.SetTrace(&trace);
  Mutex m;
  Condition c;
  Semaphore sem(false);
  CoroHandle w1 = s.Fork([&] {
    Lock lock(m);
    try {
      for (;;) {
        AlertWait(m, c);
      }
    } catch (const Alerted&) {
    }
  });
  CoroHandle w2 = s.Fork([&] {
    try {
      AlertP(sem);
    } catch (const Alerted&) {
    }
  });
  s.Fork([&, w1, w2] {
    Alert(w1);
    Alert(w2);
    (void)TestAlert();
  });
  EXPECT_TRUE(s.Run().completed);
  s.SetTrace(nullptr);

  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << "at " << r.failed_index << ": " << r.message << "\n"
                    << trace.ToString();
}

TEST(CoroTraceTest, PreAlertedShortcutsConform) {
  spec::Trace trace;
  Scheduler s;
  s.SetTrace(&trace);
  Mutex m;
  Condition c;
  Semaphore sem;
  CoroHandle w = s.Fork([&] {
    s.Yield();  // let the alert land first
    {
      Lock lock(m);
      try {
        AlertWait(m, c);
      } catch (const Alerted&) {
      }
    }
    Alert(CoroHandle{Scheduler::Current()});  // self-alert
    try {
      AlertP(sem);
    } catch (const Alerted&) {
    }
  });
  s.Fork([w] { Alert(w); });
  EXPECT_TRUE(s.Run().completed);
  s.SetTrace(nullptr);

  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << "at " << r.failed_index << ": " << r.message << "\n"
                    << trace.ToString();
}

TEST(CoroIntegrationTest, BoundedBufferTemplateRunsOnCoroutines) {
  // The same workload template the OS-thread library uses, instantiated
  // over the coroutine primitives (the paper's interface-compatibility
  // claim, in code).
  Scheduler s;
  workload::BoundedBuffer<Mutex, Condition> buffer(4);
  std::uint64_t sum = 0;
  s.Fork([&] {
    for (std::uint64_t i = 1; i <= 500; ++i) {
      buffer.Put(i);
    }
  });
  s.Fork([&] {
    for (int i = 0; i < 500; ++i) {
      sum += buffer.Get();
    }
  });
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(sum, 500u * 501u / 2);
}

TEST(CoroIntegrationTest, ManyCoroutines) {
  Scheduler s;
  Mutex m;
  long counter = 0;
  for (int i = 0; i < 100; ++i) {
    s.Fork([&] {
      for (int k = 0; k < 10; ++k) {
        Lock lock(m);
        ++counter;
        s.Yield();
      }
    });
  }
  EXPECT_TRUE(s.Run().completed);
  EXPECT_EQ(counter, 1000);
}

}  // namespace
}  // namespace taos::coro
