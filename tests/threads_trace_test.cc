// E12 on the production library: run real multi-threaded scenarios in
// spec-tracing mode (every operation linearizes under the Nub spin-lock and
// emits its atomic action) and check the recorded serialization against the
// executable specification.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/spec/checker.h"
#include "src/threads/threads.h"
#include "src/workload/bounded_buffer.h"

namespace taos {
namespace {

class TracedScenario : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(Nub::Get().tracing());
    Nub::Get().SetTrace(&trace_);
  }

  void TearDown() override { Nub::Get().SetTrace(nullptr); }

  // Stops tracing and checks conformance of what was recorded.
  void CheckConformance() {
    Nub::Get().SetTrace(nullptr);
    spec::TraceChecker checker;
    spec::CheckResult r = checker.CheckTrace(trace_);
    EXPECT_TRUE(r.ok) << "at action " << r.failed_index << ": " << r.message
                      << "\ntrace:\n"
                      << trace_.ToString();
    checked_ = r;
  }

  spec::Trace trace_;
  spec::CheckResult checked_;
};

TEST_F(TracedScenario, MutexContention) {
  Mutex m;
  std::int64_t counter = 0;
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < 50; ++i) {
        Lock lock(m);
        ++counter;
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(counter, 200);
  CheckConformance();
  EXPECT_EQ(checked_.actions_checked, 400u);  // 200 Acquire + 200 Release
}

TEST_F(TracedScenario, WaitSignalRounds) {
  Mutex m;
  Condition c;
  int value = 0;  // 0 = empty; protected by m
  constexpr int kRounds = 100;

  Thread producer = Thread::Fork([&] {
    for (int r = 1; r <= kRounds; ++r) {
      Lock lock(m);
      while (value != 0) {
        c.Wait(m);
      }
      value = r;
      c.Broadcast();
    }
  });
  Thread consumer = Thread::Fork([&] {
    for (int r = 1; r <= kRounds; ++r) {
      Lock lock(m);
      while (value == 0) {
        c.Wait(m);
      }
      value = 0;
      c.Broadcast();
    }
  });
  producer.Join();
  consumer.Join();
  CheckConformance();
  EXPECT_GT(checked_.actions_checked, 4u * kRounds);
}

TEST_F(TracedScenario, BroadcastManyWaiters) {
  Mutex m;
  Condition c;
  bool go = false;
  std::vector<Thread> waiters;
  for (int i = 0; i < 6; ++i) {
    waiters.push_back(Thread::Fork([&] {
      Lock lock(m);
      while (!go) {
        c.Wait(m);
      }
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    Lock lock(m);
    go = true;
  }
  c.Broadcast();
  for (Thread& t : waiters) {
    t.Join();
  }
  CheckConformance();
}

TEST_F(TracedScenario, SemaphorePingPong) {
  Semaphore a;
  Semaphore b;
  a.P();
  b.P();
  Thread pong = Thread::Fork([&] {
    for (int i = 0; i < 50; ++i) {
      a.P();
      b.V();
    }
  });
  for (int i = 0; i < 50; ++i) {
    a.V();
    b.P();
  }
  pong.Join();
  CheckConformance();
}

TEST_F(TracedScenario, AlertWaitBothOutcomes) {
  Mutex m;
  Condition c;
  bool flag = false;
  std::atomic<bool> signalled_exit{false};
  std::atomic<bool> alerted_exit{false};

  // Round 1: exit via Signal.
  Thread w1 = Thread::Fork([&] {
    Lock lock(m);
    try {
      while (!flag) {
        AlertWait(m, c);
      }
      signalled_exit.store(true);
    } catch (const Alerted&) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    Lock lock(m);
    flag = true;
  }
  c.Signal();
  w1.Join();

  // Round 2: exit via Alert.
  flag = false;
  Thread w2 = Thread::Fork([&] {
    Lock lock(m);
    try {
      while (!flag) {
        AlertWait(m, c);
      }
    } catch (const Alerted&) {
      alerted_exit.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Alert(w2.Handle());
  w2.Join();

  EXPECT_TRUE(signalled_exit.load());
  EXPECT_TRUE(alerted_exit.load());
  CheckConformance();
}

TEST_F(TracedScenario, AlertPAndTestAlert) {
  Semaphore s;
  s.P();
  Thread t = Thread::Fork([&] {
    EXPECT_FALSE(TestAlert());
    try {
      AlertP(s);
      ADD_FAILURE() << "expected Alerted";
    } catch (const Alerted&) {
    }
    EXPECT_FALSE(TestAlert());  // consumed by the raise
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Alert(t.Handle());
  t.Join();
  s.V();
  CheckConformance();
}

TEST_F(TracedScenario, AlertRacingSignal) {
  // The stress version of the AlertWait races the model checker explores
  // deterministically: alerts and signals colliding on real threads, every
  // serialization checked.
  Mutex m;
  Condition c;
  bool flag = false;
  for (int round = 0; round < 30; ++round) {
    flag = false;
    Thread w = Thread::Fork([&] {
      Lock lock(m);
      try {
        while (!flag) {
          AlertWait(m, c);
        }
      } catch (const Alerted&) {
      }
    });
    if (round % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Alert(w.Handle());
    {
      Lock lock(m);
      flag = true;
    }
    c.Signal();
    w.Join();
  }
  CheckConformance();
}

TEST_F(TracedScenario, TryOperationsEmitOnlyOnSuccess) {
  Mutex m;
  Semaphore s;
  EXPECT_TRUE(m.TryAcquire());
  EXPECT_FALSE(m.TryAcquire());  // no emission
  m.Release();
  EXPECT_TRUE(s.TryP());
  EXPECT_FALSE(s.TryP());  // no emission
  s.V();
  CheckConformance();
  // TryAcquire, Release, P, V — the failed attempts emitted nothing.
  EXPECT_EQ(checked_.actions_checked, 4u);
}

TEST_F(TracedScenario, TwoMutexesTwoConditionsIndependent) {
  Mutex m1;
  Mutex m2;
  Condition c1;
  Condition c2;
  bool f1 = false;
  bool f2 = false;
  Thread w1 = Thread::Fork([&] {
    Lock lock(m1);
    while (!f1) {
      c1.Wait(m1);
    }
  });
  Thread w2 = Thread::Fork([&] {
    Lock lock(m2);
    while (!f2) {
      c2.Wait(m2);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    Lock lock(m2);
    f2 = true;
  }
  c2.Signal();
  w2.Join();
  {
    Lock lock(m1);
    f1 = true;
  }
  c1.Signal();
  w1.Join();
  CheckConformance();
}

TEST_F(TracedScenario, BoundedBufferWorkload) {
  workload::BoundedBuffer<Mutex, Condition> buffer(4);
  Thread producer = Thread::Fork([&] {
    for (int i = 1; i <= 100; ++i) {
      buffer.Put(static_cast<std::uint64_t>(i));
    }
  });
  std::uint64_t sum = 0;
  for (int i = 0; i < 100; ++i) {
    sum += buffer.Get();
  }
  producer.Join();
  EXPECT_EQ(sum, 5050u);
  CheckConformance();
}

}  // namespace
}  // namespace taos
