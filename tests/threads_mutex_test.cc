// Mutex: Acquire / Release semantics, fast-path accounting, contention
// safety, and barging behaviour.

#include "src/threads/threads.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace taos {
namespace {

TEST(MutexTest, AcquireReleaseSingleThread) {
  Mutex m;
  m.Acquire();
  EXPECT_EQ(m.HolderForDebug(), Thread::Self().id());
  m.Release();
  EXPECT_EQ(m.HolderForDebug(), spec::kNil);
}

TEST(MutexTest, UncontendedPairStaysOnFastPath) {
  Mutex m;
  m.ResetStats();
  const std::uint64_t nub_before =
      Nub::Get().nub_entries.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    m.Acquire();
    m.Release();
  }
  EXPECT_EQ(m.fast_acquires(), 1000u);
  EXPECT_EQ(m.slow_acquires(), 0u);
  // E1: with no contention, neither Acquire nor Release enters the Nub.
  EXPECT_EQ(Nub::Get().nub_entries.load(std::memory_order_relaxed),
            nub_before);
}

TEST(MutexTest, TryAcquire) {
  Mutex m;
  EXPECT_TRUE(m.TryAcquire());
  EXPECT_FALSE(m.TryAcquire());
  m.Release();
  EXPECT_TRUE(m.TryAcquire());
  m.Release();
}

TEST(MutexTest, LockGuardReleasesOnException) {
  Mutex m;
  try {
    Lock lock(m);
    EXPECT_EQ(m.HolderForDebug(), Thread::Self().id());
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(m.HolderForDebug(), spec::kNil);
  EXPECT_TRUE(m.TryAcquire());
  m.Release();
}

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex m;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::int64_t counter = 0;  // protected by m
  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};

  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(Thread::Fork([&] {
      for (int i = 0; i < kIters; ++i) {
        Lock lock(m);
        if (in_cs.fetch_add(1, std::memory_order_relaxed) != 0) {
          overlap.store(true, std::memory_order_relaxed);
        }
        ++counter;
        in_cs.fetch_sub(1, std::memory_order_relaxed);
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(MutexTest, HandoffBetweenTwoThreads) {
  Mutex m;
  int turns = 0;  // protected by m
  m.Acquire();
  Thread peer = Thread::Fork([&] {
    m.Acquire();
    ++turns;
    m.Release();
  });
  // The peer is (eventually) blocked in the Nub; our Release must unblock it.
  ++turns;
  m.Release();
  peer.Join();
  m.Acquire();
  EXPECT_EQ(turns, 2);
  m.Release();
}

TEST(MutexTest, ManyMutexesIndependent) {
  constexpr int kMutexes = 64;
  std::vector<std::unique_ptr<Mutex>> mutexes;
  for (int i = 0; i < kMutexes; ++i) {
    mutexes.push_back(std::make_unique<Mutex>());
  }
  // Distinct ObjIds (the spec names objects individually).
  for (int i = 0; i < kMutexes; ++i) {
    for (int j = i + 1; j < kMutexes; ++j) {
      EXPECT_NE(mutexes[i]->id(), mutexes[j]->id());
    }
  }
  for (auto& m : mutexes) {
    m->Acquire();
  }
  for (auto& m : mutexes) {
    m->Release();
  }
}

// Parameterized contention sweep: exclusion holds for any thread count.
class MutexContentionSweep : public ::testing::TestWithParam<int> {};

TEST_P(MutexContentionSweep, CounterExact) {
  const int threads = GetParam();
  constexpr int kIters = 500;
  Mutex m;
  std::int64_t counter = 0;
  std::vector<Thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.push_back(Thread::Fork([&] {
      for (int i = 0; i < kIters; ++i) {
        Lock lock(m);
        ++counter;
      }
    }));
  }
  for (Thread& w : workers) {
    w.Join();
  }
  EXPECT_EQ(counter, static_cast<std::int64_t>(threads) * kIters);
}

INSTANTIATE_TEST_SUITE_P(Threads, MutexContentionSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace taos
