// Cross-component integration: the derived components (pool, barrier,
// rwlock, monitor, timeout) composed in one program, the way an application
// on the Threads package would use them.

#include <atomic>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"
#include "src/workload/monitor.h"
#include "src/workload/rwlock.h"
#include "src/workload/thread_pool.h"
#include "src/workload/timeout.h"

namespace taos {
namespace {

TEST(IntegrationTest, PoolFedPipelineWithBarrierPhases) {
  // Phase 1: N pool tasks each contribute partial sums into a Monitor.
  // Phase 2 (after a barrier among outside threads): read the result under
  // an RWLock while a writer updates a version stamp.
  constexpr int kTasks = 24;
  workload::ThreadPool pool(3, 8);
  workload::Monitor<long> total(0);
  for (int i = 1; i <= kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&total, i] {
      total.With([i](auto& access) {
        *access += i;
        return 0;
      });
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(total.Read([](const long& v) { return v; }),
            kTasks * (kTasks + 1) / 2);

  workload::Barrier barrier(3);
  workload::RWLock<Mutex, Condition> lock;
  long value = kTasks * (kTasks + 1) / 2;  // guarded by lock
  std::atomic<int> good_reads{0};
  std::vector<Thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.push_back(Thread::Fork([&] {
      barrier.ArriveAndWait();
      for (int i = 0; i < 200; ++i) {
        lock.AcquireRead();
        if (value % 2 == 0 || value % 2 == 1) {  // always true: just touch
          good_reads.fetch_add(1, std::memory_order_relaxed);
        }
        lock.ReleaseRead();
      }
    }));
  }
  threads.push_back(Thread::Fork([&] {
    barrier.ArriveAndWait();
    for (int i = 0; i < 50; ++i) {
      lock.AcquireWrite();
      ++value;
      lock.ReleaseWrite();
    }
  }));
  for (Thread& t : threads) {
    t.Join();
  }
  EXPECT_EQ(good_reads.load(), 400);
  EXPECT_EQ(value, kTasks * (kTasks + 1) / 2 + 50);
}

TEST(IntegrationTest, TimeoutAgainstABusyPool) {
  // A caller waits on a condition a pool task will satisfy — once a slow
  // task ahead of it drains. The deadline is generous: it must succeed.
  workload::ThreadPool pool(1, 4);
  Mutex m;
  Condition c;
  bool done = false;
  ASSERT_TRUE(pool.Submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }));
  ASSERT_TRUE(pool.Submit([&] {
    {
      Lock lock(m);
      done = true;
    }
    c.Signal();
  }));
  m.Acquire();
  const bool ok = workload::WaitWithTimeout(
      m, c, [&done] { return done; }, std::chrono::milliseconds(5000));
  m.Release();
  EXPECT_TRUE(ok);
  pool.Shutdown();
}

TEST(IntegrationTest, CancelledPoolLeavesPrimitivesReusable) {
  Mutex m;
  Condition c;
  {
    workload::ThreadPool pool(2, 4);
    // Workers idle in AlertWait on the pool's own condition; cancel them.
    pool.Cancel();
  }
  // The global Nub and fresh primitives are unaffected.
  bool flag = false;
  Thread t = Thread::Fork([&] {
    Lock lock(m);
    while (!flag) {
      c.Wait(m);
    }
  });
  {
    Lock lock(m);
    flag = true;
  }
  c.Signal();
  t.Join();
}

TEST(IntegrationTest, EverythingAtOnceStress) {
  // All derived components active simultaneously for a short burst.
  workload::ThreadPool pool(2, 8);
  workload::Monitor<long> counter(0);
  workload::Barrier barrier(2);
  workload::RWLock<Mutex, Condition> lock;
  std::atomic<long> reads{0};

  Thread reader = Thread::Fork([&] {
    barrier.ArriveAndWait();
    for (int i = 0; i < 300; ++i) {
      lock.AcquireRead();
      reads.fetch_add(1, std::memory_order_relaxed);
      lock.ReleaseRead();
    }
  });
  Thread writer = Thread::Fork([&] {
    barrier.ArriveAndWait();
    for (int i = 0; i < 100; ++i) {
      lock.AcquireWrite();
      lock.ReleaseWrite();
    }
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] {
      counter.With([](auto& access) {
        ++*access;
        return 0;
      });
    }));
  }
  reader.Join();
  writer.Join();
  pool.Shutdown();
  EXPECT_EQ(counter.Read([](const long& v) { return v; }), 50);
  EXPECT_EQ(reads.load(), 300);
}

}  // namespace
}  // namespace taos
