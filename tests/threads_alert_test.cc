// Alerting: Alert / TestAlert / AlertWait / AlertP, including the
// RETURNS-vs-RAISES nondeterminism (E10) and the timeout idiom (the paper's
// stated use case).

#include "src/threads/threads.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/timeout.h"

namespace taos {
namespace {

TEST(AlertTest, TestAlertSeesAndClearsPendingAlert) {
  // Alert a thread that is not blocked: the request stays pending.
  std::atomic<bool> first_saw{false};
  std::atomic<bool> second_saw{true};
  std::atomic<bool> alerted{false};
  Thread t = Thread::Fork([&] {
    while (!alerted.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    first_saw.store(TestAlert());
    second_saw.store(TestAlert());  // consumed: must now be false
  });
  Alert(t.Handle());
  alerted.store(true, std::memory_order_release);
  t.Join();
  EXPECT_TRUE(first_saw.load());
  EXPECT_FALSE(second_saw.load());
}

TEST(AlertTest, TestAlertFalseWhenNoAlertPending) { EXPECT_FALSE(TestAlert()); }

TEST(AlertTest, AlertPRaisesWhenBlocked) {
  Semaphore s;
  s.P();  // make the next P block
  std::atomic<bool> raised{false};
  Thread t = Thread::Fork([&] {
    try {
      AlertP(s);
    } catch (const Alerted&) {
      raised.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Alert(t.Handle());
  t.Join();
  EXPECT_TRUE(raised.load());
  // The semaphore was not taken by the alerted thread (UNCHANGED [s]).
  EXPECT_FALSE(s.AvailableForDebug());  // still held by us
  s.V();
}

TEST(AlertTest, AlertPReturnsWhenAvailableAndNotAlerted) {
  Semaphore s;
  AlertP(s);  // must not raise
  EXPECT_FALSE(s.AvailableForDebug());
  s.V();
}

TEST(AlertTest, AlertPPendingAlertBeforeBlockedPRaises) {
  Semaphore s;
  s.P();
  Thread t = Thread::Fork([&] {
    // The alert is already pending when we try to P; since the semaphore is
    // unavailable, the Nub path must notice it and raise.
    EXPECT_THROW(AlertP(s), Alerted);
  });
  Alert(t.Handle());
  t.Join();
  s.V();
}

TEST(AlertTest, AlertWaitRaisesWhileBlocked) {
  Mutex m;
  Condition c;
  std::atomic<bool> raised{false};
  Thread t = Thread::Fork([&] {
    Lock lock(m);
    try {
      for (;;) {
        AlertWait(m, c);
      }
    } catch (const Alerted&) {
      // The mutex is held again here, as the spec's AlertResume ensures.
      EXPECT_EQ(m.HolderForDebug(), Thread::Self().id());
      raised.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Alert(t.Handle());
  t.Join();
  EXPECT_TRUE(raised.load());
  EXPECT_EQ(m.HolderForDebug(), spec::kNil);
}

TEST(AlertTest, AlertWaitReturnsNormallyOnSignal) {
  Mutex m;
  Condition c;
  bool flag = false;  // protected by m
  std::atomic<bool> normal{false};
  Thread t = Thread::Fork([&] {
    Lock lock(m);
    try {
      while (!flag) {
        AlertWait(m, c);
      }
      normal.store(true);
    } catch (const Alerted&) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    Lock lock(m);
    flag = true;
  }
  c.Signal();
  t.Join();
  EXPECT_TRUE(normal.load());
}

TEST(AlertTest, AlertBeforeForkIsDeliveredAtFirstAlertablePoint) {
  Mutex m;
  Condition c;
  std::atomic<bool> raised{false};
  // Build the thread, alert it via its handle before it has done anything.
  Thread t = Thread::Fork([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Lock lock(m);
    try {
      AlertWait(m, c);
    } catch (const Alerted&) {
      raised.store(true);
    }
  });
  Alert(t.Handle());
  t.Join();
  EXPECT_TRUE(raised.load());
}

TEST(AlertTest, UncaughtAlertedEndsTheThreadQuietly) {
  Semaphore s;
  s.P();
  Thread t = Thread::Fork([&] { AlertP(s); });  // will raise, uncaught
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Alert(t.Handle());
  t.Join();
  EXPECT_TRUE(t.EndedByAlert());
  s.V();
}

TEST(AlertTest, NondeterminismBothOutcomesOccur) {
  // E10: when an alert and an available semaphore race, AlertP sometimes
  // returns and sometimes raises. Hammer the race and require both.
  std::atomic<int> normal{0};
  std::atomic<int> raised{0};
  for (int round = 0; round < 300 && (normal == 0 || raised == 0); ++round) {
    Semaphore s;
    s.P();
    std::atomic<bool> ready{false};
    Thread taker = Thread::Fork([&] {
      ready.store(true, std::memory_order_release);
      try {
        AlertP(s);
        normal.fetch_add(1);
        s.V();
      } catch (const Alerted&) {
        raised.fetch_add(1);
      }
    });
    while (!ready.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    if (round % 2 == 0) {
      Alert(taker.Handle());
      s.V();
    } else {
      s.V();
      Alert(taker.Handle());
    }
    taker.Join();
    (void)TestAlert();
  }
  EXPECT_GT(normal.load(), 0);
  EXPECT_GT(raised.load(), 0);
}

TEST(AlertTest, WaitWithTimeoutTimesOut) {
  Mutex m;
  Condition c;
  m.Acquire();
  const bool satisfied = workload::WaitWithTimeout(
      m, c, [] { return false; }, std::chrono::milliseconds(30));
  EXPECT_FALSE(satisfied);
  EXPECT_EQ(m.HolderForDebug(), Thread::Self().id());  // still held
  m.Release();
}

TEST(AlertTest, WaitWithTimeoutSatisfied) {
  Mutex m;
  Condition c;
  bool flag = false;  // protected by m
  Thread setter = Thread::Fork([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      Lock lock(m);
      flag = true;
    }
    c.Signal();
  });
  m.Acquire();
  const bool satisfied = workload::WaitWithTimeout(
      m, c, [&flag] { return flag; }, std::chrono::milliseconds(2000));
  EXPECT_TRUE(satisfied);
  m.Release();
  setter.Join();
}

// Regression (lost alert): an Alert posted by a *third party* while a thread
// sits in WaitWithTimeout must still be deliverable afterwards — the helper
// may use Alerted internally to break out of the wait, but an alert it did
// not post itself is not its to swallow. The buggy version drained the flag
// unconditionally on exit, so the caller's next alertable wait never raised.
TEST(AlertTest, WaitWithTimeoutPreservesThirdPartyAlert) {
  Mutex m;
  Condition c;
  std::atomic<bool> entered{false};
  std::atomic<bool> second_wait_done{false};
  std::atomic<bool> second_wait_raised{false};
  Thread waiter = Thread::Fork([&] {
    m.Acquire();
    entered.store(true, std::memory_order_release);
    // Generous deadline: the third-party Alert, not the watchdog, is what
    // ends this wait.
    (void)workload::WaitWithTimeout(
        m, c, [] { return false; }, std::chrono::milliseconds(10'000));
    // The caller's next alertable wait must still raise.
    try {
      AlertWait(m, c);
    } catch (const Alerted&) {
      second_wait_raised.store(true, std::memory_order_relaxed);
    }
    second_wait_done.store(true, std::memory_order_release);
    m.Release();
  });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // AlertWait releases m only after enqueuing on c, so once we hold m the
  // waiter is blocked (alertably) inside the timed wait.
  m.Acquire();
  m.Release();
  Alert(waiter.Handle());
  // Backstop so a swallowed alert shows up as a failure, not a hang: keep
  // signalling until the second wait finishes one way or the other.
  while (!second_wait_done.load(std::memory_order_acquire)) {
    c.Signal();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  waiter.Join();
  EXPECT_TRUE(second_wait_raised.load(std::memory_order_relaxed))
      << "the third party's alert was swallowed by WaitWithTimeout";
}

TEST(AlertTest, AlertIsStickyAcrossOperations) {
  // An alert posted while the target is between alertable points is seen at
  // the next one, however many non-alertable operations intervene.
  Mutex m;
  std::atomic<bool> go{false};
  std::atomic<bool> raised{false};
  Semaphore s;
  s.P();
  Thread t = Thread::Fork([&] {
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 100; ++i) {  // non-alertable work
      Lock lock(m);
    }
    try {
      AlertP(s);
    } catch (const Alerted&) {
      raised.store(true);
    }
  });
  Alert(t.Handle());
  go.store(true, std::memory_order_release);
  t.Join();
  EXPECT_TRUE(raised.load());
  s.V();
}

}  // namespace
}  // namespace taos
