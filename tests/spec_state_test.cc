// ThreadSet (the Larch SET OF Thread trait) and SpecState.

#include "src/spec/state.h"

#include <gtest/gtest.h>

namespace taos::spec {
namespace {

TEST(ThreadSetTest, InsertDeleteContains) {
  ThreadSet s;
  EXPECT_TRUE(s.Empty());
  s = s.Insert(1).Insert(2);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Size(), 2u);
  s = s.Delete(1);
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.Size(), 1u);
}

TEST(ThreadSetTest, InsertIsIdempotent) {
  ThreadSet s = ThreadSet{}.Insert(5).Insert(5);
  EXPECT_EQ(s.Size(), 1u);
}

TEST(ThreadSetTest, DeleteAbsentIsIdentity) {
  ThreadSet s{1, 2};
  EXPECT_EQ(s.Delete(9), s);
}

TEST(ThreadSetTest, SubsetRelations) {
  ThreadSet a{1, 2};
  ThreadSet b{1, 2, 3};
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_TRUE(a.ProperSubsetOf(b));
  EXPECT_TRUE(a.SubsetOf(a));
  EXPECT_FALSE(a.ProperSubsetOf(a));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(ThreadSet{}.SubsetOf(a));
  EXPECT_TRUE(ThreadSet{}.ProperSubsetOf(a));
}

TEST(ThreadSetTest, UnionAndMinus) {
  ThreadSet a{1, 2};
  ThreadSet b{2, 3};
  EXPECT_EQ(a.Union(b), (ThreadSet{1, 2, 3}));
  EXPECT_EQ(a.Minus(b), ThreadSet{1});
  EXPECT_EQ(a.Minus(a), ThreadSet{});
}

TEST(SpecStateTest, InitiallyClauses) {
  SpecState s;
  EXPECT_EQ(s.Mutex(1), kNil);                        // INITIALLY NIL
  EXPECT_TRUE(s.Condition(2).Empty());                // INITIALLY {}
  EXPECT_EQ(s.Semaphore(3), SemState::kAvailable);    // INITIALLY available
  EXPECT_TRUE(s.alerts.Empty());                      // INITIALLY {}
}

TEST(SpecStateTest, SettersAndAccessors) {
  SpecState s;
  s.SetMutex(1, 7);
  EXPECT_EQ(s.Mutex(1), 7u);
  s.SetCondition(2, ThreadSet{4, 5});
  EXPECT_TRUE(s.Condition(2).Contains(4));
  s.SetSemaphore(3, SemState::kUnavailable);
  EXPECT_EQ(s.Semaphore(3), SemState::kUnavailable);
}

TEST(SpecStateTest, EqualityIgnoresTouchHistory) {
  SpecState a;
  SpecState b;
  // Touch-and-restore must compare equal to never-touched.
  b.SetMutex(1, 9);
  b.SetMutex(1, kNil);
  b.SetCondition(2, ThreadSet{1});
  b.SetCondition(2, ThreadSet{});
  b.SetSemaphore(3, SemState::kUnavailable);
  b.SetSemaphore(3, SemState::kAvailable);
  EXPECT_TRUE(a == b);
}

TEST(SpecStateTest, EqualityDistinguishesRealDifferences) {
  SpecState a;
  SpecState b;
  b.SetMutex(1, 2);
  EXPECT_FALSE(a == b);
  SpecState c;
  c.alerts = ThreadSet{3};
  EXPECT_FALSE(a == c);
}

TEST(SpecStateTest, EventsDefaultFalseAndRoundTrip) {
  SpecState s;
  EXPECT_FALSE(s.Event(40));  // absent key => FALSE (reset)
  s.SetEvent(40, true);
  EXPECT_TRUE(s.Event(40));
  EXPECT_FALSE(s.Event(41));
  s.SetEvent(40, false);
  EXPECT_FALSE(s.Event(40));
  SpecState other;
  other.SetEvent(40, true);
  EXPECT_FALSE(s == other);
}

TEST(SpecStateTest, ToStringMentionsContents) {
  SpecState s;
  s.SetMutex(1, 2);
  s.SetCondition(3, ThreadSet{4});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("m1=t2"), std::string::npos);
  EXPECT_NE(str.find("t4"), std::string::npos);
}

}  // namespace
}  // namespace taos::spec
