// Golden-output check for the taos-diag analyzer (tools/diag_analysis):
// the checked-in trace tests/golden/diag_trace.json — a hand-written drain
// with contended waits, flow-stamped wakeups, a handoff chain, a broadcast
// stampede, and one unmatched edge — must analyze to exactly
// tests/golden/diag_trace.golden. The CLI is a thin fopen/format shell
// around this library, so this pins the tool's observable behavior.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tools/diag_analysis.h"

#ifndef TAOS_TESTS_GOLDEN_DIR
#define TAOS_TESTS_GOLDEN_DIR "tests/golden"
#endif

namespace taos {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TaosDiagGoldenTest, AnalyzesCheckedInTraceToGoldenReport) {
  const std::string trace =
      ReadFileOrDie(std::string(TAOS_TESTS_GOLDEN_DIR) + "/diag_trace.json");
  ASSERT_FALSE(trace.empty());

  diagtool::TraceAnalysis analysis;
  std::string error;
  ASSERT_TRUE(diagtool::AnalyzeTraceJson(trace, &analysis, &error)) << error;

  // Structural spot-checks first, so a format tweak that regenerates the
  // golden file cannot silently bless broken analysis.
  // 2 Wait + 2 Acquire + 1 Release + 1 Broadcast + 5 Unpark + 4 ParkResume.
  EXPECT_EQ(analysis.total_events, 15u);
  EXPECT_EQ(analysis.dropped_events, 0u);
  ASSERT_GE(analysis.objects.size(), 2u);
  EXPECT_EQ(analysis.objects[0].obj, 9u);  // the condition: most wait time
  EXPECT_EQ(analysis.objects[0].wait_count, 2u);
  EXPECT_EQ(analysis.objects[1].obj, 5u);
  EXPECT_EQ(analysis.objects[1].holder_count, 1u);
  EXPECT_EQ(analysis.edges.size(), 4u);  // flows 1..4 matched
  EXPECT_EQ(analysis.unmatched_unparks, 1u);  // flow 9
  EXPECT_EQ(analysis.unmatched_resumes, 0u);
  EXPECT_EQ(analysis.broadcast.broadcasts, 1u);
  EXPECT_EQ(analysis.broadcast.woken_total, 2u);  // flows 1 and 2
  EXPECT_GT(analysis.broadcast.StampedeRatio(), 0.0);
  ASSERT_FALSE(analysis.chains.empty());
  EXPECT_EQ(analysis.chains[0].links.size(), 3u);  // t1 -> t2 -> t4 -> t5

  const std::string got = diagtool::FormatTraceReport(analysis, 10);
  const std::string want =
      ReadFileOrDie(std::string(TAOS_TESTS_GOLDEN_DIR) + "/diag_trace.golden");
  EXPECT_EQ(got, want);
}

TEST(TaosDiagGoldenTest, RejectsNonTraceInput) {
  diagtool::TraceAnalysis analysis;
  std::string error;
  EXPECT_FALSE(diagtool::AnalyzeTraceJson("{\"nope\": 1}", &analysis, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(diagtool::AnalyzeTraceJson("not json", &analysis, &error));
}

TEST(TaosDiagGoldenTest, BenchReportSummarizesHistograms) {
  const std::string bench = R"({
    "bench": "signal", "quick": true, "wall_seconds": 1.0, "num_cpus": 4,
    "lock_backend": "tas", "global_lock_mode": false,
    "metrics": {
      "counters": {"handoffs": 100, "spurious_wakeups": 3},
      "histograms": {"wakeup_latency_ns": [0,0,0,0,0,0,0,0,0,0,2,5,1,0,0,0,
                                           0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}
    },
    "benchmark": null
  })";
  std::string report;
  std::string error;
  ASSERT_TRUE(diagtool::FormatBenchReport(bench, &report, &error)) << error;
  EXPECT_NE(report.find("bench report (signal)"), std::string::npos) << report;
  EXPECT_NE(report.find("handoffs=100"), std::string::npos) << report;
  EXPECT_NE(report.find("wakeup_latency_ns"), std::string::npos) << report;
  EXPECT_NE(report.find("8 samples"), std::string::npos) << report;

  EXPECT_FALSE(diagtool::FormatBenchReport("{}", &report, &error));
}

}  // namespace
}  // namespace taos
