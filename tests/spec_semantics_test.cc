// The executable specification: every action's REQUIRES / WHEN / ENSURES /
// MODIFIES AT MOST clauses, evaluated on explicit pre/post state pairs.

#include "src/spec/semantics.h"

#include <gtest/gtest.h>

namespace taos::spec {
namespace {

constexpr ThreadId kT1 = 1;
constexpr ThreadId kT2 = 2;
constexpr ThreadId kT3 = 3;
constexpr ObjId kM = 10;
constexpr ObjId kC = 20;
constexpr ObjId kS = 30;

class SemanticsTest : public ::testing::Test {
 protected:
  Semantics sem_;
};

// --- Acquire / Release ---

TEST_F(SemanticsTest, AcquireTakesNilMutex) {
  SpecState pre;  // m = NIL
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  EXPECT_TRUE(sem_.Check(pre, MakeAcquire(kT1, kM), post).Ok());
}

TEST_F(SemanticsTest, AcquireDisabledWhenHeld) {
  SpecState pre;
  pre.SetMutex(kM, kT2);
  EXPECT_FALSE(sem_.Enabled(pre, MakeAcquire(kT1, kM)));
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  Verdict v = sem_.Check(pre, MakeAcquire(kT1, kM), post);
  EXPECT_FALSE(v.when_ok);
}

TEST_F(SemanticsTest, AcquireMustSetSelf) {
  SpecState pre;
  SpecState post = pre;
  post.SetMutex(kM, kT2);  // wrong thread
  Verdict v = sem_.Check(pre, MakeAcquire(kT1, kM), post);
  EXPECT_FALSE(v.ensures_ok);
}

TEST_F(SemanticsTest, ReleaseRequiresHolder) {
  SpecState pre;
  pre.SetMutex(kM, kT2);
  SpecState post;  // m = NIL
  Verdict v = sem_.Check(pre, MakeRelease(kT1, kM), post);
  EXPECT_FALSE(v.requires_ok);  // caller violated REQUIRES m = SELF
  EXPECT_TRUE(v.ensures_ok);
}

TEST_F(SemanticsTest, ReleaseSetsNil) {
  SpecState pre;
  pre.SetMutex(kM, kT1);
  SpecState post;
  EXPECT_TRUE(sem_.Check(pre, MakeRelease(kT1, kM), post).Ok());
}

TEST_F(SemanticsTest, FrameViolationOtherMutexTouched) {
  SpecState pre;
  pre.SetMutex(kM + 1, kT3);
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  post.SetMutex(kM + 1, spec::kNil);  // not allowed: MODIFIES AT MOST [m]
  Verdict v = sem_.Check(pre, MakeAcquire(kT1, kM), post);
  EXPECT_FALSE(v.frame_ok);
}

TEST_F(SemanticsTest, FrameViolationAlertsTouchedByAcquire) {
  SpecState pre;
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  post.alerts = post.alerts.Insert(kT2);
  Verdict v = sem_.Check(pre, MakeAcquire(kT1, kM), post);
  EXPECT_FALSE(v.frame_ok);
}

// --- Wait = Enqueue; Resume ---

TEST_F(SemanticsTest, EnqueueInsertsAndReleases) {
  SpecState pre;
  pre.SetMutex(kM, kT1);
  SpecState post;
  post.SetCondition(kC, ThreadSet{kT1});
  EXPECT_TRUE(sem_.Check(pre, MakeEnqueue(kT1, kM, kC), post).Ok());
}

TEST_F(SemanticsTest, EnqueueRequiresMutexHeld) {
  SpecState pre;  // m = NIL: caller broke REQUIRES
  SpecState post;
  post.SetCondition(kC, ThreadSet{kT1});
  Verdict v = sem_.Check(pre, MakeEnqueue(kT1, kM, kC), post);
  EXPECT_FALSE(v.requires_ok);
}

TEST_F(SemanticsTest, ResumeNeedsRemovalFromC) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1});  // still a member: not signalled
  EXPECT_FALSE(sem_.Enabled(pre, MakeResume(kT1, kM, kC)));

  SpecState pre2;  // removed by a Signal
  EXPECT_TRUE(sem_.Enabled(pre2, MakeResume(kT1, kM, kC)));
}

TEST_F(SemanticsTest, ResumeNeedsMutexFree) {
  SpecState pre;
  pre.SetMutex(kM, kT2);
  EXPECT_FALSE(sem_.Enabled(pre, MakeResume(kT1, kM, kC)));
}

TEST_F(SemanticsTest, ResumeLeavesCUnchanged) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT2});
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  EXPECT_TRUE(sem_.Check(pre, MakeResume(kT1, kM, kC), post).Ok());

  SpecState bad = post;
  bad.SetCondition(kC, ThreadSet{});  // Resume may not empty c
  EXPECT_FALSE(sem_.Check(pre, MakeResume(kT1, kM, kC), bad).ensures_ok);
}

// --- Signal / Broadcast ---

TEST_F(SemanticsTest, SignalMustRemoveAtLeastOneFromNonEmpty) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1, kT2});
  // No-op Signal: cpost = c is neither {} nor a proper subset.
  Verdict v = sem_.Check(pre, MakeSignal(kT3, kC, {}), pre);
  EXPECT_FALSE(v.ensures_ok);
}

TEST_F(SemanticsTest, SignalMayRemoveOneOrSeveralOrAll) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1, kT2, kT3});
  for (const ThreadSet& removed :
       {ThreadSet{kT1}, ThreadSet{kT1, kT2}, ThreadSet{kT1, kT2, kT3}}) {
    SpecState post = pre;
    post.SetCondition(kC, pre.Condition(kC).Minus(removed));
    EXPECT_TRUE(sem_.Check(pre, MakeSignal(kT1, kC, removed), post).Ok())
        << removed.ToString();
  }
}

TEST_F(SemanticsTest, SignalOnEmptyConditionIsANoOp) {
  SpecState pre;
  EXPECT_TRUE(sem_.Check(pre, MakeSignal(kT1, kC, {}), pre).Ok());
}

TEST_F(SemanticsTest, SignalMayNotAddThreads) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1});
  SpecState post = pre;
  post.SetCondition(kC, ThreadSet{kT1, kT2});
  EXPECT_FALSE(sem_.Check(pre, MakeSignal(kT3, kC, {}), post).ensures_ok);
}

TEST_F(SemanticsTest, BroadcastEmptiesC) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1, kT2, kT3});
  SpecState post;
  EXPECT_TRUE(
      sem_.Check(pre, MakeBroadcast(kT1, kC, pre.Condition(kC)), post).Ok());
  // Leaving anyone behind violates cpost = {}.
  SpecState bad;
  bad.SetCondition(kC, ThreadSet{kT2});
  EXPECT_FALSE(
      sem_.Check(pre, MakeBroadcast(kT1, kC, {}), bad).ensures_ok);
}

TEST_F(SemanticsTest, EveryBroadcastSatisfiesSignalsSpec) {
  // "Any implementation that satisfies Broadcast's specification also
  // satisfies Signal's."
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1, kT2});
  SpecState post;  // broadcast outcome: c = {}
  EXPECT_TRUE(
      sem_.Check(pre, MakeSignal(kT3, kC, pre.Condition(kC)), post).Ok());
}

// --- P / V ---

TEST_F(SemanticsTest, PWhenAvailable) {
  SpecState pre;  // INITIALLY available
  EXPECT_TRUE(sem_.Enabled(pre, MakeP(kT1, kS)));
  SpecState post;
  post.SetSemaphore(kS, SemState::kUnavailable);
  EXPECT_TRUE(sem_.Check(pre, MakeP(kT1, kS), post).Ok());
}

TEST_F(SemanticsTest, PDisabledWhenUnavailable) {
  SpecState pre;
  pre.SetSemaphore(kS, SemState::kUnavailable);
  EXPECT_FALSE(sem_.Enabled(pre, MakeP(kT1, kS)));
}

TEST_F(SemanticsTest, VAlwaysEnabledNoPrecondition) {
  SpecState pre;
  EXPECT_TRUE(sem_.Enabled(pre, MakeV(kT1, kS)));
  SpecState post;  // available either way
  EXPECT_TRUE(sem_.Check(pre, MakeV(kT1, kS), post).Ok());
  pre.SetSemaphore(kS, SemState::kUnavailable);
  EXPECT_TRUE(sem_.Check(pre, MakeV(kT1, kS), post).Ok());
}

// --- Alerts ---

TEST_F(SemanticsTest, AlertInsertsTarget) {
  SpecState pre;
  SpecState post;
  post.alerts = ThreadSet{kT2};
  EXPECT_TRUE(sem_.Check(pre, MakeAlert(kT1, kT2), post).Ok());
  // Idempotent insert.
  EXPECT_TRUE(sem_.Check(post, MakeAlert(kT3, kT2), post).Ok());
}

TEST_F(SemanticsTest, TestAlertResultMustMatchMembership) {
  SpecState pre;
  pre.alerts = ThreadSet{kT1};
  SpecState post;  // cleared
  EXPECT_TRUE(sem_.Check(pre, MakeTestAlert(kT1, true), post).Ok());
  EXPECT_FALSE(sem_.Check(pre, MakeTestAlert(kT1, false), post).ensures_ok);

  SpecState none;
  EXPECT_TRUE(sem_.Check(none, MakeTestAlert(kT1, false), none).Ok());
  EXPECT_FALSE(sem_.Check(none, MakeTestAlert(kT1, true), none).ensures_ok);
}

TEST_F(SemanticsTest, AlertPReturnsLeavesAlerts) {
  SpecState pre;
  pre.alerts = ThreadSet{kT1};  // both WHEN clauses hold
  SpecState post = pre;
  post.SetSemaphore(kS, SemState::kUnavailable);
  EXPECT_TRUE(sem_.Check(pre, MakeAlertPReturns(kT1, kS), post).Ok());
}

TEST_F(SemanticsTest, AlertPRaisesLeavesSemaphore) {
  SpecState pre;
  pre.alerts = ThreadSet{kT1};
  pre.SetSemaphore(kS, SemState::kUnavailable);
  SpecState post;
  post.SetSemaphore(kS, SemState::kUnavailable);  // UNCHANGED [s]
  EXPECT_TRUE(sem_.Check(pre, MakeAlertPRaises(kT1, kS), post).Ok());

  SpecState bad = post;
  bad.SetSemaphore(kS, SemState::kAvailable);  // may not free it
  EXPECT_FALSE(sem_.Check(pre, MakeAlertPRaises(kT1, kS), bad).ensures_ok);
}

TEST_F(SemanticsTest, AlertPRaisesNeedsPendingAlert) {
  SpecState pre;
  EXPECT_FALSE(sem_.Enabled(pre, MakeAlertPRaises(kT1, kS)));
}

TEST_F(SemanticsTest, PreferAlertedPolicyFlagsNormalReturn) {
  Semantics strict(SpecConfig{AlertWaitVariant::kCorrected,
                              AlertChoicePolicy::kPreferAlerted});
  SpecState pre;
  pre.alerts = ThreadSet{kT1};
  SpecState post = pre;
  post.SetSemaphore(kS, SemState::kUnavailable);
  Verdict v = strict.Check(pre, MakeAlertPReturns(kT1, kS), post);
  EXPECT_FALSE(v.choice_ok);  // should have raised
  // The released (nondeterministic) spec accepts it.
  EXPECT_TRUE(sem_.Check(pre, MakeAlertPReturns(kT1, kS), post).Ok());
}

// --- AlertWait's AlertResume, corrected vs original buggy variant ---

TEST_F(SemanticsTest, AlertResumeRaisesRemovesFromCCorrected) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1, kT2});
  pre.alerts = ThreadSet{kT1};
  SpecState post;
  post.SetCondition(kC, ThreadSet{kT2});  // delete(c, SELF)
  post.SetMutex(kM, kT1);
  EXPECT_TRUE(
      sem_.Check(pre, MakeAlertResumeRaises(kT1, kM, kC), post).Ok());

  // Leaving SELF in c violates the corrected spec.
  SpecState bad = post;
  bad.SetCondition(kC, ThreadSet{kT1, kT2});
  EXPECT_FALSE(
      sem_.Check(pre, MakeAlertResumeRaises(kT1, kM, kC), bad).ensures_ok);
}

TEST_F(SemanticsTest, OriginalBuggySpecRequiresCUnchanged) {
  Semantics buggy(SpecConfig{AlertWaitVariant::kOriginalBuggy,
                             AlertChoicePolicy::kNondeterministic});
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1, kT2});
  pre.alerts = ThreadSet{kT1};

  // Under the buggy spec the raising thread must stay in c...
  SpecState stays = pre;
  stays.SetMutex(kM, kT1);
  stays.alerts = ThreadSet{};
  EXPECT_TRUE(
      buggy.Check(pre, MakeAlertResumeRaises(kT1, kM, kC), stays).Ok());

  // ...so the (correct) behaviour of leaving c VIOLATES the buggy spec,
  SpecState leaves = stays;
  leaves.SetCondition(kC, ThreadSet{kT2});
  EXPECT_FALSE(
      buggy.Check(pre, MakeAlertResumeRaises(kT1, kM, kC), leaves).Ok());
  // ...and vice versa for the corrected spec.
  EXPECT_TRUE(sem_.Check(pre, MakeAlertResumeRaises(kT1, kM, kC), leaves).Ok());
  EXPECT_FALSE(sem_.Check(pre, MakeAlertResumeRaises(kT1, kM, kC), stays).Ok());
}

// --- Apply: post-state construction from recorded choices ---

TEST_F(SemanticsTest, ApplyComputesDeterministicPosts) {
  SpecState s;
  SpecState next;
  EXPECT_TRUE(sem_.Apply(s, MakeAcquire(kT1, kM), &next).Ok());
  EXPECT_EQ(next.Mutex(kM), kT1);
  s = next;
  EXPECT_TRUE(sem_.Apply(s, MakeEnqueue(kT1, kM, kC), &next).Ok());
  EXPECT_TRUE(next.Condition(kC).Contains(kT1));
  EXPECT_EQ(next.Mutex(kM), kNil);
  s = next;
  EXPECT_TRUE(sem_.Apply(s, MakeSignal(kT2, kC, ThreadSet{kT1}), &next).Ok());
  EXPECT_TRUE(next.Condition(kC).Empty());
  s = next;
  EXPECT_TRUE(sem_.Apply(s, MakeResume(kT1, kM, kC), &next).Ok());
  EXPECT_EQ(next.Mutex(kM), kT1);
}

TEST_F(SemanticsTest, ApplyRejectsBogusRemovedSet) {
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1});
  SpecState post;
  // kT2 is not in c: the recorded choice is inconsistent.
  Verdict v = sem_.Apply(pre, MakeSignal(kT3, kC, ThreadSet{kT1, kT2}), &post);
  EXPECT_FALSE(v.choice_ok);
}

// --- Timed-wait extension: AcquireTimeout / PTimeout / TimeoutResume ---

TEST_F(SemanticsTest, AcquireTimeoutLeavesMutexUnchanged) {
  SpecState pre;
  pre.SetMutex(kM, kT2);  // the holder that outlasted the deadline
  SpecState post = pre;
  EXPECT_TRUE(sem_.Check(pre, MakeAcquireTimeout(kT1, kM), post).Ok());

  SpecState bad = pre;
  bad.SetMutex(kM, kT1);  // a timed-out acquire may not take the mutex
  EXPECT_FALSE(sem_.Check(pre, MakeAcquireTimeout(kT1, kM), bad).ensures_ok);
}

TEST_F(SemanticsTest, PTimeoutLeavesSemaphoreUnchanged) {
  SpecState pre;
  pre.SetSemaphore(kS, SemState::kUnavailable);
  SpecState post = pre;
  EXPECT_TRUE(sem_.Check(pre, MakePTimeout(kT1, kS), post).Ok());

  SpecState bad = pre;
  bad.SetSemaphore(kS, SemState::kAvailable);
  EXPECT_FALSE(sem_.Check(pre, MakePTimeout(kT1, kS), bad).ensures_ok);
}

TEST_F(SemanticsTest, TimeoutResumeRegainsMutexAndDeletesSelfFromC) {
  // Unlike Resume, SELF may still be a member of c: the timer dequeued it
  // without any Signal, and the action deletes it itself.
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT1, kT2});
  EXPECT_TRUE(sem_.Enabled(pre, MakeTimeoutResume(kT1, kM, kC)));
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  post.SetCondition(kC, ThreadSet{kT2});
  EXPECT_TRUE(sem_.Check(pre, MakeTimeoutResume(kT1, kM, kC), post).Ok());
}

TEST_F(SemanticsTest, TimeoutResumeAfterSignalRaceIsIdempotent) {
  // A Signal raced the timer and removed SELF first: delete() is a no-op
  // and the same clause still holds.
  SpecState pre;
  pre.SetCondition(kC, ThreadSet{kT2});
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  EXPECT_TRUE(sem_.Check(pre, MakeTimeoutResume(kT1, kM, kC), post).Ok());
}

TEST_F(SemanticsTest, TimeoutResumeNeedsMutexFree) {
  SpecState pre;
  pre.SetMutex(kM, kT2);
  EXPECT_FALSE(sem_.Enabled(pre, MakeTimeoutResume(kT1, kM, kC)));
}

TEST_F(SemanticsTest, TimeoutResumeMayNotConsumeAPendingAlert) {
  // alerts is outside TimeoutResume's frame: a timeout that also cleared
  // the alert flag would silently eat an Alert.
  SpecState pre;
  pre.alerts = ThreadSet{kT1};
  pre.SetCondition(kC, ThreadSet{kT1});
  SpecState post = pre;
  post.SetMutex(kM, kT1);
  post.SetCondition(kC, ThreadSet{});
  EXPECT_TRUE(sem_.Check(pre, MakeTimeoutResume(kT1, kM, kC), post).Ok());

  SpecState bad = post;
  bad.alerts = ThreadSet{};
  EXPECT_FALSE(sem_.Check(pre, MakeTimeoutResume(kT1, kM, kC), bad).frame_ok);
}

// Exhaustive WHEN-clause matrix: every action kind's enabling condition,
// over the four orthogonal state bits that matter to it.
TEST_F(SemanticsTest, EnabledMatrix) {
  for (bool m_held : {false, true}) {
    for (bool in_c : {false, true}) {
      for (bool s_taken : {false, true}) {
        for (bool alerted : {false, true}) {
          SpecState s;
          if (m_held) {
            s.SetMutex(kM, kT2);
          }
          if (in_c) {
            s.SetCondition(kC, ThreadSet{kT1});
          }
          if (s_taken) {
            s.SetSemaphore(kS, SemState::kUnavailable);
          }
          if (alerted) {
            s.alerts = ThreadSet{kT1};
          }
          const std::string ctx =
              std::string("m_held=") + (m_held ? "1" : "0") +
              " in_c=" + (in_c ? "1" : "0") +
              " s_taken=" + (s_taken ? "1" : "0") +
              " alerted=" + (alerted ? "1" : "0");

          EXPECT_EQ(sem_.Enabled(s, MakeAcquire(kT1, kM)), !m_held) << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeRelease(kT1, kM))) << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeEnqueue(kT1, kM, kC))) << ctx;
          EXPECT_EQ(sem_.Enabled(s, MakeResume(kT1, kM, kC)),
                    !m_held && !in_c)
              << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeSignal(kT1, kC, {}))) << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeBroadcast(kT1, kC, {}))) << ctx;
          EXPECT_EQ(sem_.Enabled(s, MakeP(kT1, kS)), !s_taken) << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeV(kT1, kS))) << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeAlert(kT1, kT2))) << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeTestAlert(kT1, alerted))) << ctx;
          EXPECT_EQ(sem_.Enabled(s, MakeAlertPReturns(kT1, kS)), !s_taken)
              << ctx;
          EXPECT_EQ(sem_.Enabled(s, MakeAlertPRaises(kT1, kS)), alerted)
              << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakeAlertEnqueue(kT1, kM, kC))) << ctx;
          EXPECT_EQ(sem_.Enabled(s, MakeAlertResumeReturns(kT1, kM, kC)),
                    !m_held && !in_c)
              << ctx;
          EXPECT_EQ(sem_.Enabled(s, MakeAlertResumeRaises(kT1, kM, kC)),
                    !m_held && alerted)
              << ctx;
          // Timed-wait extension: the one-action timeouts are always
          // enabled (the deadline is the implementation's business, not
          // the state's); TimeoutResume needs only a free mutex — SELF
          // may still be in c, unlike Resume.
          EXPECT_TRUE(sem_.Enabled(s, MakeAcquireTimeout(kT1, kM))) << ctx;
          EXPECT_TRUE(sem_.Enabled(s, MakePTimeout(kT1, kS))) << ctx;
          EXPECT_EQ(sem_.Enabled(s, MakeTimeoutResume(kT1, kM, kC)), !m_held)
              << ctx;
        }
      }
    }
  }
}

// Parameterized sweep: WHEN-disabled actions are rejected for every thread
// identity and object id combination.
class WhenSweep : public ::testing::TestWithParam<ThreadId> {};

TEST_P(WhenSweep, HeldMutexDisablesAcquireForEveryone) {
  const ThreadId self = GetParam();
  SpecState pre;
  pre.SetMutex(kM, kT3);
  EXPECT_FALSE(Semantics().Enabled(pre, MakeAcquire(self, kM)));
}

TEST_P(WhenSweep, NilMutexEnablesAcquireForEveryone) {
  const ThreadId self = GetParam();
  SpecState pre;
  EXPECT_TRUE(Semantics().Enabled(pre, MakeAcquire(self, kM)));
}

INSTANTIATE_TEST_SUITE_P(Spec, WhenSweep,
                         ::testing::Values(kT1, kT2, 7, 19, 100));

// --- Events and the multi-object wait (DESIGN.md §15) ---

constexpr ObjId kE1 = 40;
constexpr ObjId kE2 = 41;

TEST_F(SemanticsTest, EventSetEnsuresTrueAndResetFalse) {
  SpecState pre;  // e = FALSE
  SpecState post = pre;
  post.SetEvent(kE1, true);
  EXPECT_TRUE(sem_.Check(pre, MakeEventSet(kT1, kE1), post).Ok());
  EXPECT_TRUE(sem_.Check(post, MakeEventReset(kT1, kE1), pre).Ok());
  // Set that leaves the event false violates ENSURES.
  EXPECT_FALSE(sem_.Check(pre, MakeEventSet(kT1, kE1), pre).ensures_ok);
}

TEST_F(SemanticsTest, EventWaitNeedsTheFlagAndLeavesIt) {
  SpecState reset;
  EXPECT_FALSE(sem_.Enabled(reset, MakeEventWait(kT1, kE1)));
  SpecState set;
  set.SetEvent(kE1, true);
  // Manual-reset grant: UNCHANGED [e].
  EXPECT_TRUE(sem_.Check(set, MakeEventWait(kT1, kE1), set).Ok());
  EXPECT_FALSE(sem_.Check(set, MakeEventWait(kT1, kE1), reset).ensures_ok);
}

TEST_F(SemanticsTest, EventConsumeClearsExactlyOnce) {
  SpecState set;
  set.SetEvent(kE1, true);
  SpecState cleared;
  // Auto-reset grant: epost = FALSE.
  EXPECT_TRUE(sem_.Check(set, MakeEventConsume(kT1, kE1), cleared).Ok());
  EXPECT_FALSE(sem_.Check(set, MakeEventConsume(kT1, kE1), set).ensures_ok);
  // And WHEN e: a consume of a reset event is not enabled.
  EXPECT_FALSE(sem_.Enabled(cleared, MakeEventConsume(kT1, kE1)));
}

TEST_F(SemanticsTest, PollAnyExistentialWhen) {
  const ObjIdSet ws = ObjIdSet{kE1, kE2};
  SpecState none;
  EXPECT_FALSE(sem_.Enabled(none, MakePollAny(kT1, ws, kE1, false)));
  SpecState one;
  one.SetEvent(kE2, true);
  // Some member set: enabled — but only the set member is a legal witness.
  EXPECT_TRUE(sem_.Enabled(one, MakePollAny(kT1, ws, kE2, false)));
  SpecState consumed;  // kE2 back to false
  Verdict v = sem_.Check(one, MakePollAny(kT1, ws, kE2, true), consumed);
  EXPECT_TRUE(v.Ok()) << v.message;
  // A grant naming a reset member fails its witness obligation.
  EXPECT_FALSE(sem_.Check(one, MakePollAny(kT1, ws, kE1, false), one)
                   .ensures_ok);
}

TEST_F(SemanticsTest, PollAnyRequiresClauses) {
  SpecState pre;
  pre.SetEvent(kE1, true);
  // Empty wait set.
  EXPECT_FALSE(
      sem_.Check(pre, MakePollAny(kT1, ObjIdSet{}, kE1, false), pre)
          .requires_ok);
  // Granted member outside the wait set.
  EXPECT_FALSE(
      sem_.Check(pre, MakePollAny(kT1, ObjIdSet{kE2}, kE1, false), pre)
          .requires_ok);
}

TEST_F(SemanticsTest, PollAnyOnlyTheWitnessMayChange) {
  SpecState pre;
  pre.SetEvent(kE1, true);
  pre.SetEvent(kE2, true);
  SpecState post = pre;
  post.SetEvent(kE1, false);  // consumed the witness...
  post.SetEvent(kE2, false);  // ...and a bystander: UNCHANGED violated
  Verdict v =
      sem_.Check(pre, MakePollAny(kT1, ObjIdSet{kE1, kE2}, kE1, true), post);
  EXPECT_FALSE(v.ensures_ok);
}

TEST_F(SemanticsTest, PollAllUniversalWhen) {
  const ObjIdSet ws = ObjIdSet{kE1, kE2};
  SpecState half;
  half.SetEvent(kE1, true);
  EXPECT_FALSE(sem_.Enabled(half, MakePollAll(kT1, ws, ObjIdSet{})));
  SpecState full = half;
  full.SetEvent(kE2, true);
  EXPECT_TRUE(sem_.Enabled(full, MakePollAll(kT1, ws, ObjIdSet{})));
  // Consume kE1 (auto), keep kE2 (manual): exactly that post state passes.
  SpecState post = full;
  post.SetEvent(kE1, false);
  EXPECT_TRUE(sem_.Check(full, MakePollAll(kT1, ws, ObjIdSet{kE1}), post).Ok());
  EXPECT_FALSE(
      sem_.Check(full, MakePollAll(kT1, ws, ObjIdSet{kE1}), full).ensures_ok);
  // consumed must be a subset of the wait set.
  EXPECT_FALSE(
      sem_.Check(full, MakePollAll(kT1, ObjIdSet{kE1}, ObjIdSet{kE2}), full)
          .requires_ok);
}

TEST_F(SemanticsTest, PollTimeoutIsAnEventNoOp) {
  SpecState pre;
  pre.SetEvent(kE1, true);
  EXPECT_TRUE(
      sem_.Check(pre, MakePollTimeout(kT1, ObjIdSet{kE1, kE2}), pre).Ok());
  SpecState post = pre;
  post.SetEvent(kE2, true);  // a timeout that set a member: ENSURES fails
  EXPECT_FALSE(sem_.Check(pre, MakePollTimeout(kT1, ObjIdSet{kE1, kE2}), post)
                   .ensures_ok);
}

TEST_F(SemanticsTest, PollAlertRaisesConsumesTheAlertOnly) {
  SpecState pre;
  pre.alerts = ThreadSet{kT1};
  pre.SetEvent(kE1, true);
  SpecState post = pre;
  post.alerts = ThreadSet{};
  EXPECT_TRUE(
      sem_.Check(pre, MakePollAlertRaises(kT1, ObjIdSet{kE1}), post).Ok());
  // WHEN SELF IN alerts.
  EXPECT_FALSE(sem_.Enabled(post, MakePollAlertRaises(kT1, ObjIdSet{kE1})));
  // Raising must not consume a member.
  SpecState bad = post;
  bad.SetEvent(kE1, false);
  EXPECT_FALSE(sem_.Check(pre, MakePollAlertRaises(kT1, ObjIdSet{kE1}), bad)
                   .ensures_ok);
}

TEST_F(SemanticsTest, PollFrameProtectsBystanderEvents) {
  SpecState pre;
  pre.SetEvent(kE1, true);
  pre.SetEvent(kE2, true);  // NOT in the wait set
  SpecState post = pre;
  post.SetEvent(kE1, false);
  post.SetEvent(kE2, false);  // outside MODIFIES AT MOST [wait_set]
  Verdict v =
      sem_.Check(pre, MakePollAny(kT1, ObjIdSet{kE1}, kE1, true), post);
  EXPECT_FALSE(v.frame_ok);
}

}  // namespace
}  // namespace taos::spec
