// Workload generators: the same programs over every primitives family.

#include <gtest/gtest.h>

#include "src/baseline/naive_condition.h"
#include "src/baseline/std_sync.h"
#include "src/baseline/ticket_lock.h"
#include "src/threads/threads.h"
#include "src/workload/bounded_buffer.h"
#include "src/workload/contention.h"
#include "src/workload/prodcons.h"
#include "src/workload/rwlock.h"
#include "src/workload/work.h"

namespace taos::workload {
namespace {

TEST(WorkTest, DoWorkDependsOnInput) {
  EXPECT_NE(DoWork(10), DoWork(11));
  EXPECT_EQ(DoWork(10), DoWork(10));
}

// --- bounded buffer over each primitives family (E4 correctness side) ---

template <typename BufferT>
void ExerciseBuffer(BufferT& buffer, int producers, int consumers,
                    std::uint64_t items) {
  ProdConsResult r = RunProducerConsumer(buffer, producers, consumers, items);
  EXPECT_EQ(r.items, static_cast<std::uint64_t>(producers) * items);
  EXPECT_EQ(r.checksum, ExpectedChecksum(producers, items));
}

TEST(BoundedBufferTest, TaosPrimitives) {
  BoundedBuffer<Mutex, Condition> buffer(8);
  ExerciseBuffer(buffer, 2, 2, 2000);
  EXPECT_EQ(buffer.SizeForDebug(), 0u);
}

TEST(BoundedBufferTest, TaosSingleSlot) {
  BoundedBuffer<Mutex, Condition> buffer(1);  // maximal signal traffic
  ExerciseBuffer(buffer, 2, 2, 500);
}

TEST(BoundedBufferTest, StdPrimitives) {
  BoundedBuffer<baseline::StdMutex, baseline::StdCondition> buffer(8);
  ExerciseBuffer(buffer, 2, 2, 2000);
}

TEST(BoundedBufferTest, NaiveConditionSingleProducerSingleConsumer) {
  // The strawman is sound for Signal with one waiter per condition; with
  // one producer and one consumer at most one thread waits on each side.
  BoundedBuffer<Mutex, baseline::NaiveCondition> buffer(8);
  ExerciseBuffer(buffer, 1, 1, 2000);
}

TEST(BoundedBufferTest, HoarePrimitives) {
  HoareBoundedBuffer buffer(8);
  ExerciseBuffer(buffer, 1, 1, 1000);
}

TEST(BoundedBufferTest, HoareManyThreads) {
  HoareBoundedBuffer buffer(4);
  ExerciseBuffer(buffer, 3, 3, 400);
}

// Parameterized sweep: capacity × producers/consumers for the Taos buffer.
class BufferSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BufferSweep, DeliversEverythingExactlyOnce) {
  const auto& [capacity, producers, consumers] = GetParam();
  BoundedBuffer<Mutex, Condition> buffer(static_cast<std::size_t>(capacity));
  ExerciseBuffer(buffer, producers, consumers, 500);
}

INSTANTIATE_TEST_SUITE_P(
    Workload, BufferSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 2, 2),
                      std::make_tuple(2, 1, 3), std::make_tuple(4, 3, 1),
                      std::make_tuple(16, 4, 4), std::make_tuple(64, 2, 6)));

// --- contention driver (E3 correctness side) ---

TEST(ContentionTest, TaosMutexCounterExact) {
  ContentionResult r = RunContention<Mutex>(4, 1000, 5, 5);
  EXPECT_EQ(r.shared_counter, r.total_sections);
  EXPECT_EQ(r.total_sections, 4000u);
}

TEST(ContentionTest, TicketLockCounterExact) {
  ContentionResult r = RunContention<baseline::TicketSpinMutex>(4, 1000, 5, 5);
  EXPECT_EQ(r.shared_counter, r.total_sections);
}

TEST(ContentionTest, StdMutexCounterExact) {
  ContentionResult r = RunContention<baseline::StdMutex>(4, 1000, 5, 5);
  EXPECT_EQ(r.shared_counter, r.total_sections);
}

TEST(ContentionTest, SemaphoreAsLockCounterExact) {
  // P/V bracket the critical section (identical mechanism to the mutex).
  struct SemLock {
    Semaphore s;
    void Acquire() { s.P(); }
    void Release() { s.V(); }
  };
  ContentionResult r = RunContention<SemLock>(4, 1000, 5, 5);
  EXPECT_EQ(r.shared_counter, r.total_sections);
}

// --- readers-writer lock (E4's broadcast motivation) ---

TEST(RWLockTest, InvariantsHoldTaos) {
  RWLock<Mutex, Condition> lock;
  RWResult r = RunReadersWriters(lock, 4, 2, 500, 3, 3);
  EXPECT_TRUE(r.invariant_ok);
  EXPECT_EQ(r.reads, 2000u);
  EXPECT_EQ(r.writes, 1000u);
}

TEST(RWLockTest, InvariantsHoldStd) {
  RWLock<baseline::StdMutex, baseline::StdCondition> lock;
  RWResult r = RunReadersWriters(lock, 4, 2, 500, 3, 3);
  EXPECT_TRUE(r.invariant_ok);
}

TEST(RWLockTest, WriterHeavy) {
  RWLock<Mutex, Condition> lock;
  RWResult r = RunReadersWriters(lock, 2, 6, 300, 1, 1);
  EXPECT_TRUE(r.invariant_ok);
}

TEST(RWLockTest, ReaderOnlyNeverBlocks) {
  RWLock<Mutex, Condition> lock;
  RWResult r = RunReadersWriters(lock, 6, 0, 500, 1, 0);
  EXPECT_TRUE(r.invariant_ok);
  EXPECT_EQ(r.writes, 0u);
}

}  // namespace
}  // namespace taos::workload
