// Simulated primitives: the paper's implementation structures (lock-bit +
// queue, eventcount + queue) behaving correctly on the simulated Firefly,
// with exact statistics.

#include "src/firefly/sync.h"

#include <gtest/gtest.h>

#include "src/base/alerted.h"
#include "src/spec/checker.h"

namespace taos::firefly {
namespace {

TEST(SimMutexTest, UncontendedFastPath) {
  Machine m;
  Mutex mu(m);
  m.Fork([&] {
    for (int i = 0; i < 10; ++i) {
      mu.Acquire();
      mu.Release();
    }
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(mu.fast_acquires(), 10u);
  EXPECT_EQ(mu.slow_acquires(), 0u);
}

TEST(SimMutexTest, ContendedCounts) {
  MachineConfig cfg;
  cfg.seed = 3;
  Machine m(cfg);
  Mutex mu(m);
  int counter = 0;
  for (int t = 0; t < 3; ++t) {
    m.Fork([&] {
      for (int i = 0; i < 20; ++i) {
        mu.Acquire();
        m.Step();
        ++counter;
        m.Step();
        mu.Release();
      }
    });
  }
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(counter, 60);
}

TEST(SimConditionTest, WaitSignalRound) {
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  bool flag = false;
  m.Fork([&] {
    mu.Acquire();
    while (!flag) {
      cv.Wait(mu);
    }
    mu.Release();
  });
  m.Fork([&] {
    mu.Acquire();
    flag = true;
    mu.Release();
    cv.Signal();
  });
  EXPECT_TRUE(m.Run().completed);
}

TEST(SimConditionTest, SignalFastPathWhenNoWaiters) {
  Machine m;
  Condition cv(m);
  m.Fork([&] {
    for (int i = 0; i < 5; ++i) {
      cv.Signal();
      cv.Broadcast();
    }
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(cv.fast_signals(), 10u);
}

TEST(SimConditionTest, BroadcastWakesAll) {
  MachineConfig cfg;
  cfg.cpus = 4;
  Machine m(cfg);
  Mutex mu(m);
  Condition cv(m);
  bool flag = false;
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    m.Fork([&] {
      mu.Acquire();
      while (!flag) {
        cv.Wait(mu);
      }
      ++resumed;
      mu.Release();
    });
  }
  m.Fork([&] {
    mu.Acquire();
    flag = true;
    mu.Release();
    cv.Broadcast();
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(resumed, 3);
}

TEST(SimSemaphoreTest, InitiallyAvailableAndBinary) {
  Machine m;
  Semaphore s(m);
  m.Fork([&] {
    s.P();  // INITIALLY available
    s.V();
    s.V();  // idempotent
    s.P();  // single token
  });
  EXPECT_TRUE(m.Run().completed);
}

TEST(SimAlertTest, TestAlertConsumes) {
  Machine m;
  bool first = false;
  bool second = true;
  FiberHandle f = m.Fork([&] {
    for (int i = 0; i < 50; ++i) {
      m.Step();  // let the alerter act
    }
    first = TestAlert();
    second = TestAlert();
  });
  m.Fork([f] { Alert(f); });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(SimAlertTest, AlertWaitRaisesWithMutexHeld) {
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  bool raised = false;
  bool held_at_raise = false;
  FiberHandle w = m.Fork([&] {
    mu.Acquire();
    try {
      for (;;) {
        AlertWait(mu, cv);
      }
    } catch (const Alerted&) {
      held_at_raise = (mu.HolderForDebug() == Machine::Self());
      raised = true;
      mu.Release();
    }
  });
  m.Fork([w] { Alert(w); });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_TRUE(raised);
  EXPECT_TRUE(held_at_raise);
}

TEST(SimAlertTest, AlertPRaisesWhenBlocked) {
  Machine m;
  Semaphore s(m, /*initially_available=*/false);
  bool raised = false;
  FiberHandle w = m.Fork([&] {
    try {
      AlertP(s);
    } catch (const Alerted&) {
      raised = true;
    }
  });
  m.Fork([w, &m] {
    for (int i = 0; i < 30; ++i) {
      m.Step();  // give the taker time to block
    }
    Alert(w);
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_TRUE(raised);
}

TEST(SimTraceTest, SingleRunConformance) {
  spec::Trace trace;
  {
    MachineConfig cfg;
    cfg.trace = &trace;
    cfg.seed = 11;
    Machine m(cfg);
    Mutex mu(m);
    Condition cv(m);
    Semaphore s(m);
    bool flag = false;
    m.Fork([&] {
      mu.Acquire();
      while (!flag) {
        cv.Wait(mu);
      }
      mu.Release();
      s.P();
      s.V();
    });
    m.Fork([&] {
      mu.Acquire();
      flag = true;
      mu.Release();
      cv.Signal();
    });
    EXPECT_TRUE(m.Run().completed);
  }
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message << "\n" << trace.ToString();
  EXPECT_GT(r.actions_checked, 6u);
}

// Seed sweep: the same program under many random schedules, all conformant.
class SimSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimSeedSweep, TracedRunConforms) {
  spec::Trace trace;
  {
    MachineConfig cfg;
    cfg.trace = &trace;
    cfg.seed = GetParam();
    cfg.cpus = 3;
    Machine m(cfg);
    Mutex mu(m);
    Condition cv(m);
    int turns = 0;
    bool done = false;
    for (int i = 0; i < 2; ++i) {
      m.Fork([&] {
        mu.Acquire();
        while (turns < 6) {
          ++turns;
          cv.Broadcast();
          if (turns < 6) {
            cv.Wait(mu);
          }
        }
        done = true;
        mu.Release();
        cv.Broadcast();
      });
    }
    RunResult rr = m.Run();
    EXPECT_TRUE(rr.completed || rr.deadlock);  // liveness not promised, but
    EXPECT_FALSE(rr.hit_step_limit);           // no livelock
    (void)done;
  }
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message << "\n" << trace.ToString();
}

INSTANTIATE_TEST_SUITE_P(Firefly, SimSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Virtual-time timed waits
// ---------------------------------------------------------------------------

TEST(SimTimedTest, WaitForExpiresInsteadOfDeadlocking) {
  // One fiber, nobody to signal: the untimed Wait would be a deadlock; the
  // timed wait is expired by the simulated clock interrupt and the run
  // completes.
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  WaitResult r = WaitResult::kSatisfied;
  m.Fork([&] {
    mu.Acquire();
    r = cv.WaitFor(mu, 100);
    mu.Release();  // legal: kTimeout re-acquired the mutex
  });
  RunResult rr = m.Run();
  EXPECT_TRUE(rr.completed) << rr.ToString();
  EXPECT_EQ(r, WaitResult::kTimeout);
  EXPECT_EQ(m.timer_expiries(), 1u);
  EXPECT_GE(rr.steps, 100u);  // the clock reached the deadline
}

TEST(SimTimedTest, IdleMachineJumpsToTheDeadline) {
  // A long virtual deadline costs no real time and no steps: once the
  // machine is idle the clock skips straight to the next expiry.
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  m.Fork([&] {
    mu.Acquire();
    EXPECT_EQ(cv.WaitFor(mu, 1'000'000), WaitResult::kTimeout);
    mu.Release();
  });
  RunResult rr = m.Run();
  EXPECT_TRUE(rr.completed) << rr.ToString();
  EXPECT_GE(rr.steps, 1'000'000u);
}

TEST(SimTimedTest, SignalBeforeDeadlineSatisfies) {
  MachineConfig cfg;
  RoundRobinChooser rr_chooser;
  cfg.chooser = &rr_chooser;
  Machine m(cfg);
  Mutex mu(m);
  Condition cv(m);
  bool flag = false;
  WaitResult r = WaitResult::kTimeout;
  m.Fork([&] {
    mu.Acquire();
    while (!flag) {
      r = cv.WaitFor(mu, 1'000'000);
      if (r == WaitResult::kTimeout) {
        break;
      }
    }
    mu.Release();
  });
  m.Fork([&] {
    mu.Acquire();
    flag = true;
    mu.Release();
    cv.Signal();
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(r, WaitResult::kSatisfied);
  EXPECT_EQ(m.timer_expiries(), 0u);  // the grant disarmed the deadline
}

TEST(SimTimedTest, ZeroTimeoutReturnsAtOnce) {
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  m.Fork([&] {
    mu.Acquire();
    EXPECT_EQ(cv.WaitFor(mu, 0), WaitResult::kTimeout);
    mu.Release();  // legal: WaitFor(0) never let go of the mutex
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(m.timer_expiries(), 0u);
}

TEST(SimTimedTest, AlertEndsTimedWaitAsValue) {
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  WaitResult r = WaitResult::kSatisfied;
  bool flag_after = true;
  FiberHandle waiter = m.Fork([&] {
    mu.Acquire();
    r = AlertWaitFor(mu, cv, 1'000'000);
    mu.Release();
    flag_after = TestAlert();  // kAlerted must have consumed the flag
  });
  m.Fork([&] {
    for (int i = 0; i < 20; ++i) {
      m.Step();
    }
    Alert(waiter);
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(r, WaitResult::kAlerted);
  EXPECT_FALSE(flag_after);
  EXPECT_EQ(m.timer_expiries(), 0u);
}

TEST(SimTimedTest, TimeoutLeavesLateAlertPending) {
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  WaitResult r = WaitResult::kSatisfied;
  bool pending_after = false;
  FiberHandle waiter = m.Fork([&] {
    mu.Acquire();
    r = AlertWaitFor(mu, cv, 50);
    mu.Release();
    // Spin in virtual time until the alerter has run.
    while (!Machine::Self()->alerted) {
      m.Step();
    }
    pending_after = TestAlert();
  });
  m.Fork([&] {
    // Outwait the deadline, then alert the (no longer blocked) waiter: the
    // kTimeout exit must not have consumed anything.
    for (int i = 0; i < 200; ++i) {
      m.Step();
    }
    Alert(waiter);
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(r, WaitResult::kTimeout);
  EXPECT_TRUE(pending_after);
}

TEST(SimTimedTest, VirtualTimeIsDeterministic) {
  auto run_once = [] {
    MachineConfig cfg;
    cfg.seed = 42;
    cfg.cpus = 2;
    Machine m(cfg);
    Mutex mu(m);
    Condition cv(m);
    for (int t = 0; t < 2; ++t) {
      m.Fork([&] {
        for (int i = 0; i < 5; ++i) {
          mu.Acquire();
          cv.WaitFor(mu, 40);
          mu.Release();
          cv.Signal();
        }
      });
    }
    RunResult rr = m.Run();
    EXPECT_TRUE(rr.completed) << rr.ToString();
    return rr.steps;
  };
  // Expiry is part of the simulation, not wall-clock: identical seeds give
  // identical executions, timeouts included.
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimTimedTest, TracedTimeoutRunConforms) {
  spec::Trace trace;
  {
    MachineConfig cfg;
    cfg.trace = &trace;
    Machine m(cfg);
    Mutex mu(m);
    Condition cv(m);
    m.Fork([&] {
      mu.Acquire();
      EXPECT_EQ(cv.WaitFor(mu, 80), WaitResult::kTimeout);
      EXPECT_EQ(AlertWaitFor(mu, cv, 80), WaitResult::kTimeout);
      mu.Release();
    });
    EXPECT_TRUE(m.Run().completed);
  }
  // The expiry path emits Enqueue/AlertEnqueue then TimeoutResume; the
  // checker must accept that composition for both wait flavours.
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message << "\n" << trace.ToString();
}

// Timed waits racing signals under many random schedules, with the trace
// checker adjudicating: whatever interleaving of Signal, Alert and expiry
// the chooser finds, the emitted action sequence must stay spec-conformant
// (in particular a Signal must count timer-dequeued fibers among its
// removed set).
class SimTimedSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimTimedSeedSweep, TracedTimedRaceConforms) {
  spec::Trace trace;
  {
    MachineConfig cfg;
    cfg.trace = &trace;
    cfg.seed = GetParam();
    cfg.cpus = 3;
    Machine m(cfg);
    Mutex mu(m);
    Condition cv(m);
    for (int t = 0; t < 2; ++t) {
      m.Fork([&] {
        for (int i = 0; i < 4; ++i) {
          mu.Acquire();
          cv.WaitFor(mu, 25);  // short: expiry and Signal race
          mu.Release();
        }
      });
    }
    m.Fork([&] {
      for (int i = 0; i < 8; ++i) {
        m.Step();
        cv.Signal();
      }
    });
    RunResult rr = m.Run();
    EXPECT_TRUE(rr.completed) << rr.ToString();
  }
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message << "\n" << trace.ToString();
}

INSTANTIATE_TEST_SUITE_P(Firefly, SimTimedSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Events and the multi-object wait
// ---------------------------------------------------------------------------

TEST(SimEventTest, ManualStaysSetAutoConsumes) {
  Machine m;
  Event manual(m);
  Event autoreset(m, EventReset::kAuto);
  m.Fork([&] {
    manual.Set();
    manual.Wait();
    manual.Wait();  // manual: not consumed
    EXPECT_TRUE(manual.IsSet());
    autoreset.Set();
    autoreset.Wait();  // auto: consumed
    EXPECT_FALSE(autoreset.IsSet());
  });
  EXPECT_TRUE(m.Run().completed);
}

TEST(SimEventTest, WaitBlocksUntilSetAndManualWakesAll) {
  MachineConfig cfg;
  cfg.cpus = 4;
  Machine m(cfg);
  Event e(m);
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    m.Fork([&] {
      e.Wait();
      ++resumed;
    });
  }
  m.Fork([&] {
    for (int i = 0; i < 30; ++i) {
      m.Step();  // let the waiters block
    }
    EXPECT_EQ(resumed, 0);
    e.Set();
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(resumed, 3);
}

TEST(SimEventTest, AutoSetWakesExactlyOne) {
  MachineConfig cfg;
  cfg.cpus = 4;
  Machine m(cfg);
  Event e(m, EventReset::kAuto);
  int resumed = 0;
  for (int i = 0; i < 2; ++i) {
    m.Fork([&] {
      e.Wait();
      ++resumed;
    });
  }
  m.Fork([&] {
    for (int i = 0; i < 30; ++i) {
      m.Step();
    }
    e.Set();
    for (int i = 0; i < 30; ++i) {
      m.Step();
    }
    EXPECT_EQ(resumed, 1);  // one pulse, one waiter through
    e.Set();
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(resumed, 2);
}

TEST(SimEventTest, WaitForExpiresOnTheVirtualClock) {
  Machine m;
  Event e(m, EventReset::kAuto);
  WaitResult r = WaitResult::kSatisfied;
  m.Fork([&] { r = e.WaitFor(100); });
  RunResult rr = m.Run();
  EXPECT_TRUE(rr.completed) << rr.ToString();
  EXPECT_EQ(r, WaitResult::kTimeout);
  EXPECT_GE(rr.steps, 100u);
}

TEST(SimPollTest, WaitAnyGrantsTheSetMember) {
  Machine m;
  Event a(m, EventReset::kAuto);
  Event b(m, EventReset::kAuto);
  std::size_t granted = 99;
  m.Fork([&] {
    Poll p;
    p.Add(a);
    p.Add(b);
    granted = p.WaitAny();
  });
  m.Fork([&] {
    for (int i = 0; i < 30; ++i) {
      m.Step();  // let the waiter register and block
    }
    b.Set();
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(granted, 1u);
  EXPECT_FALSE(b.IsSet());  // consumed by the grant
}

TEST(SimPollTest, WaitAllNeedsEveryMember) {
  MachineConfig cfg;
  cfg.cpus = 2;
  Machine m(cfg);
  Event a(m, EventReset::kAuto);
  Event manual(m);
  bool done = false;
  m.Fork([&] {
    Poll p;
    p.Add(a);
    p.Add(manual);
    p.WaitAll();
    done = true;
  });
  m.Fork([&] {
    for (int i = 0; i < 20; ++i) {
      m.Step();
    }
    a.Set();
    for (int i = 0; i < 20; ++i) {
      m.Step();
    }
    EXPECT_FALSE(done);  // half the set is not enough
    manual.Set();
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_TRUE(done);
  EXPECT_FALSE(a.IsSet());     // auto consumed
  EXPECT_TRUE(manual.IsSet()); // manual observed
}

TEST(SimPollTest, WaitAnyForExpiresAndAlertRaises) {
  Machine m;
  Event a(m, EventReset::kAuto);
  Poll::AnyResult timed{0, WaitResult::kSatisfied};
  bool raised = false;
  FiberHandle w = m.Fork([&] {
    Poll p;
    p.Add(a);
    timed = p.WaitAnyFor(50);
    try {
      (void)p.AlertWaitAny();
    } catch (const Alerted&) {
      raised = true;
    }
  });
  m.Fork([&, w] {
    for (int i = 0; i < 200; ++i) {
      m.Step();  // past the timed wait, into the alertable one
    }
    Alert(w);
  });
  RunResult rr = m.Run();
  EXPECT_TRUE(rr.completed) << rr.ToString();
  EXPECT_EQ(timed.result, WaitResult::kTimeout);
  EXPECT_EQ(timed.index, 1u);  // == size()
  EXPECT_TRUE(raised);
}

// Traced poll runs across seeds: WaitAny/WaitAll grants, timeouts, and the
// auto-reset consumptions must all serialize under the spec's set-WHEN
// semantics, with the driver picking a different interleaving per seed.
class SimPollSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimPollSeedSweep, TracedPollRaceConforms) {
  spec::Trace trace;
  {
    MachineConfig cfg;
    cfg.trace = &trace;
    cfg.seed = GetParam();
    cfg.cpus = 3;
    Machine m(cfg);
    Event a(m, EventReset::kAuto);
    Event b(m, EventReset::kAuto);
    Event manual(m);
    int grants = 0;
    for (int w = 0; w < 2; ++w) {
      m.Fork([&] {
        Poll p;
        p.Add(a);
        p.Add(b);
        for (int i = 0; i < 3; ++i) {
          const Poll::AnyResult r = p.WaitAnyFor(40);
          if (r.result == WaitResult::kSatisfied) {
            ++grants;
          }
        }
      });
    }
    m.Fork([&] {
      Poll p;
      p.Add(b);
      p.Add(manual);
      for (int i = 0; i < 2; ++i) {
        (void)p.WaitAllFor(60);
      }
    });
    m.Fork([&] {
      for (int i = 0; i < 10; ++i) {
        m.Step();
        a.Set();
        m.Step();
        b.Set();
        if (i == 4) {
          manual.Set();
        }
      }
    });
    RunResult rr = m.Run();
    EXPECT_TRUE(rr.completed) << rr.ToString();
    EXPECT_FALSE(rr.hit_step_limit);
    (void)grants;
  }
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message << "\n" << trace.ToString();
  EXPECT_GT(r.actions_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Firefly, SimPollSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace taos::firefly
