// Simulated primitives: the paper's implementation structures (lock-bit +
// queue, eventcount + queue) behaving correctly on the simulated Firefly,
// with exact statistics.

#include "src/firefly/sync.h"

#include <gtest/gtest.h>

#include "src/base/alerted.h"
#include "src/spec/checker.h"

namespace taos::firefly {
namespace {

TEST(SimMutexTest, UncontendedFastPath) {
  Machine m;
  Mutex mu(m);
  m.Fork([&] {
    for (int i = 0; i < 10; ++i) {
      mu.Acquire();
      mu.Release();
    }
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(mu.fast_acquires(), 10u);
  EXPECT_EQ(mu.slow_acquires(), 0u);
}

TEST(SimMutexTest, ContendedCounts) {
  MachineConfig cfg;
  cfg.seed = 3;
  Machine m(cfg);
  Mutex mu(m);
  int counter = 0;
  for (int t = 0; t < 3; ++t) {
    m.Fork([&] {
      for (int i = 0; i < 20; ++i) {
        mu.Acquire();
        m.Step();
        ++counter;
        m.Step();
        mu.Release();
      }
    });
  }
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(counter, 60);
}

TEST(SimConditionTest, WaitSignalRound) {
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  bool flag = false;
  m.Fork([&] {
    mu.Acquire();
    while (!flag) {
      cv.Wait(mu);
    }
    mu.Release();
  });
  m.Fork([&] {
    mu.Acquire();
    flag = true;
    mu.Release();
    cv.Signal();
  });
  EXPECT_TRUE(m.Run().completed);
}

TEST(SimConditionTest, SignalFastPathWhenNoWaiters) {
  Machine m;
  Condition cv(m);
  m.Fork([&] {
    for (int i = 0; i < 5; ++i) {
      cv.Signal();
      cv.Broadcast();
    }
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(cv.fast_signals(), 10u);
}

TEST(SimConditionTest, BroadcastWakesAll) {
  MachineConfig cfg;
  cfg.cpus = 4;
  Machine m(cfg);
  Mutex mu(m);
  Condition cv(m);
  bool flag = false;
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    m.Fork([&] {
      mu.Acquire();
      while (!flag) {
        cv.Wait(mu);
      }
      ++resumed;
      mu.Release();
    });
  }
  m.Fork([&] {
    mu.Acquire();
    flag = true;
    mu.Release();
    cv.Broadcast();
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_EQ(resumed, 3);
}

TEST(SimSemaphoreTest, InitiallyAvailableAndBinary) {
  Machine m;
  Semaphore s(m);
  m.Fork([&] {
    s.P();  // INITIALLY available
    s.V();
    s.V();  // idempotent
    s.P();  // single token
  });
  EXPECT_TRUE(m.Run().completed);
}

TEST(SimAlertTest, TestAlertConsumes) {
  Machine m;
  bool first = false;
  bool second = true;
  FiberHandle f = m.Fork([&] {
    for (int i = 0; i < 50; ++i) {
      m.Step();  // let the alerter act
    }
    first = TestAlert();
    second = TestAlert();
  });
  m.Fork([f] { Alert(f); });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(SimAlertTest, AlertWaitRaisesWithMutexHeld) {
  Machine m;
  Mutex mu(m);
  Condition cv(m);
  bool raised = false;
  bool held_at_raise = false;
  FiberHandle w = m.Fork([&] {
    mu.Acquire();
    try {
      for (;;) {
        AlertWait(mu, cv);
      }
    } catch (const Alerted&) {
      held_at_raise = (mu.HolderForDebug() == Machine::Self());
      raised = true;
      mu.Release();
    }
  });
  m.Fork([w] { Alert(w); });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_TRUE(raised);
  EXPECT_TRUE(held_at_raise);
}

TEST(SimAlertTest, AlertPRaisesWhenBlocked) {
  Machine m;
  Semaphore s(m, /*initially_available=*/false);
  bool raised = false;
  FiberHandle w = m.Fork([&] {
    try {
      AlertP(s);
    } catch (const Alerted&) {
      raised = true;
    }
  });
  m.Fork([w, &m] {
    for (int i = 0; i < 30; ++i) {
      m.Step();  // give the taker time to block
    }
    Alert(w);
  });
  EXPECT_TRUE(m.Run().completed);
  EXPECT_TRUE(raised);
}

TEST(SimTraceTest, SingleRunConformance) {
  spec::Trace trace;
  {
    MachineConfig cfg;
    cfg.trace = &trace;
    cfg.seed = 11;
    Machine m(cfg);
    Mutex mu(m);
    Condition cv(m);
    Semaphore s(m);
    bool flag = false;
    m.Fork([&] {
      mu.Acquire();
      while (!flag) {
        cv.Wait(mu);
      }
      mu.Release();
      s.P();
      s.V();
    });
    m.Fork([&] {
      mu.Acquire();
      flag = true;
      mu.Release();
      cv.Signal();
    });
    EXPECT_TRUE(m.Run().completed);
  }
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message << "\n" << trace.ToString();
  EXPECT_GT(r.actions_checked, 6u);
}

// Seed sweep: the same program under many random schedules, all conformant.
class SimSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimSeedSweep, TracedRunConforms) {
  spec::Trace trace;
  {
    MachineConfig cfg;
    cfg.trace = &trace;
    cfg.seed = GetParam();
    cfg.cpus = 3;
    Machine m(cfg);
    Mutex mu(m);
    Condition cv(m);
    int turns = 0;
    bool done = false;
    for (int i = 0; i < 2; ++i) {
      m.Fork([&] {
        mu.Acquire();
        while (turns < 6) {
          ++turns;
          cv.Broadcast();
          if (turns < 6) {
            cv.Wait(mu);
          }
        }
        done = true;
        mu.Release();
        cv.Broadcast();
      });
    }
    RunResult rr = m.Run();
    EXPECT_TRUE(rr.completed || rr.deadlock);  // liveness not promised, but
    EXPECT_FALSE(rr.hit_step_limit);           // no livelock
    (void)done;
  }
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message << "\n" << trace.ToString();
}

INSTANTIATE_TEST_SUITE_P(Firefly, SimSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace taos::firefly
