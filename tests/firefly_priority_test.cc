// Priority scheduling on the simulated Firefly: strict priority dispatch,
// the classic priority-inversion scenario, and the priority-inheritance
// mutex extension that cures it.
//
// The paper: "The Threads package also includes facilities for affecting
// the assignment of threads to real processors (for example, a simple
// priority scheme), but our specification is independent of these
// facilities." Inversion is exactly the kind of behaviour that lives
// outside the synchronization spec yet matters to systems built on it.

#include <gtest/gtest.h>

#include "src/firefly/sync.h"
#include "src/spec/checker.h"

namespace taos::firefly {
namespace {

// One processor; L (low) takes the mutex, then forks H (high), which blocks
// on the mutex, and M (medium), which just computes. Without priority
// inheritance M runs to completion before L can release — H's acquisition
// is delayed by an unrelated medium thread. With inheritance L is boosted
// past M and H gets the mutex promptly.
struct InversionResult {
  bool completed = false;
  std::uint64_t h_acquired_at_step = 0;
  std::uint64_t total_steps = 0;
};

InversionResult RunInversionScenario(bool priority_inheritance,
                                     std::uint64_t m_work) {
  MachineConfig cfg;
  cfg.cpus = 1;
  cfg.time_slice = 5;
  cfg.seed = 1;
  Machine machine(cfg);
  Mutex mu(machine);
  mu.set_priority_inheritance(priority_inheritance);

  InversionResult result;
  machine.Fork(
      [&] {
        mu.Acquire();
        // Holding the mutex, L forks its rivals.
        machine.Fork(
            [&] {
              mu.Acquire();
              result.h_acquired_at_step = machine.steps();
              mu.Release();
            },
            /*priority=*/5, "H");
        machine.Fork(
            [&, m_work] {
              for (std::uint64_t i = 0; i < m_work; ++i) {
                machine.Step();
              }
            },
            /*priority=*/2, "M");
        for (int i = 0; i < 40; ++i) {
          machine.Step();  // L's critical section
        }
        mu.Release();
      },
      /*priority=*/0, "L");

  RunResult r = machine.Run();
  result.completed = r.completed;
  result.total_steps = r.steps;
  return result;
}

TEST(PriorityTest, InversionDelaysTheHighPriorityThread) {
  constexpr std::uint64_t kMWork = 3000;
  InversionResult r = RunInversionScenario(false, kMWork);
  ASSERT_TRUE(r.completed);
  // H could not acquire until M's entire compute finished.
  EXPECT_GT(r.h_acquired_at_step, kMWork);
}

TEST(PriorityTest, InheritanceCuresTheInversion) {
  constexpr std::uint64_t kMWork = 3000;
  InversionResult without = RunInversionScenario(false, kMWork);
  InversionResult with = RunInversionScenario(true, kMWork);
  ASSERT_TRUE(without.completed);
  ASSERT_TRUE(with.completed);
  // With inheritance, H acquires long before M's compute could finish.
  EXPECT_LT(with.h_acquired_at_step, kMWork / 2);
  EXPECT_LT(with.h_acquired_at_step * 3, without.h_acquired_at_step)
      << "without: " << without.h_acquired_at_step
      << " with: " << with.h_acquired_at_step;
}

TEST(PriorityTest, InheritanceRestoresBasePriorityAfterRelease) {
  MachineConfig cfg;
  cfg.cpus = 2;
  Machine machine(cfg);
  Mutex mu(machine);
  mu.set_priority_inheritance(true);
  int observed_priority_during = -1;
  int observed_priority_after = -1;
  FiberHandle low = machine.Fork(
      [&] {
        mu.Acquire();
        for (int i = 0; i < 60; ++i) {
          machine.Step();  // give H time to block and boost us
        }
        observed_priority_during = Machine::Self()->priority;
        mu.Release();
        observed_priority_after = Machine::Self()->priority;
      },
      /*priority=*/1, "low");
  machine.Fork(
      [&] {
        mu.Acquire();
        mu.Release();
      },
      /*priority=*/6, "high");
  ASSERT_TRUE(machine.Run().completed);
  EXPECT_EQ(observed_priority_during, 6);  // boosted
  EXPECT_EQ(observed_priority_after, 1);   // restored
  EXPECT_EQ(low.fiber->base_priority, 1);
}

TEST(PriorityTest, StrictPriorityStarvesLowWithoutBlocking) {
  // Documentation of the scheduler's (deliberate) strictness: a ready
  // higher-priority fiber always runs first; low priority work only
  // proceeds when no higher is runnable.
  MachineConfig cfg;
  cfg.cpus = 1;
  cfg.time_slice = 3;
  Machine machine(cfg);
  std::string order;
  machine.Fork(
      [&] {
        for (int i = 0; i < 5; ++i) {
          machine.Step();
        }
        order += "low;";
      },
      /*priority=*/0, "low");
  machine.Fork(
      [&] {
        for (int i = 0; i < 30; ++i) {
          machine.Step();
        }
        order += "high;";
      },
      /*priority=*/7, "high");
  ASSERT_TRUE(machine.Run().completed);
  EXPECT_EQ(order, "high;low;");
}

TEST(PriorityTest, TracedInversionScenarioConforms) {
  // The priority extension must not disturb the synchronization semantics.
  spec::Trace trace;
  MachineConfig cfg;
  cfg.cpus = 1;
  cfg.time_slice = 5;
  cfg.trace = &trace;
  Machine machine(cfg);
  Mutex mu(machine);
  mu.set_priority_inheritance(true);
  machine.Fork(
      [&] {
        mu.Acquire();
        machine.Fork(
            [&] {
              mu.Acquire();
              mu.Release();
            },
            5, "H");
        for (int i = 0; i < 20; ++i) {
          machine.Step();
        }
        mu.Release();
      },
      0, "L");
  ASSERT_TRUE(machine.Run().completed);
  spec::TraceChecker checker;
  spec::CheckResult r = checker.CheckTrace(trace);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace taos::firefly
