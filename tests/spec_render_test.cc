// The rendered specification document must track the semantics variants.

#include "src/spec/render.h"

#include <gtest/gtest.h>

namespace taos::spec {
namespace {

TEST(RenderTest, FullDocumentContainsEveryProcedure) {
  const std::string doc = RenderSpecification();
  for (const char* proc :
       {"Acquire", "Release", "Wait", "Signal", "Broadcast", "P(", "V(",
        "Alert(t", "TestAlert", "AlertP", "AlertWait"}) {
    EXPECT_NE(doc.find(proc), std::string::npos) << proc;
  }
  for (const char* keyword :
       {"REQUIRES", "WHEN", "ENSURES", "MODIFIES AT MOST", "COMPOSITION OF",
        "INITIALLY", "RAISES"}) {
    EXPECT_NE(doc.find(keyword), std::string::npos) << keyword;
  }
}

TEST(RenderTest, CorrectedVariantDeletesFromC) {
  const std::string doc = RenderSpecification(
      SpecConfig{AlertWaitVariant::kCorrected,
                 AlertChoicePolicy::kNondeterministic});
  EXPECT_NE(doc.find("c_post = delete(c, SELF)"), std::string::npos);
  EXPECT_EQ(doc.find("Greg Nelson"), std::string::npos);
}

TEST(RenderTest, BuggyVariantSaysUnchangedC) {
  const std::string doc = RenderSpecification(
      SpecConfig{AlertWaitVariant::kOriginalBuggy,
                 AlertChoicePolicy::kNondeterministic});
  // The AlertResume RAISES clause keeps c unchanged — the published error.
  EXPECT_NE(doc.find("UNCHANGED [ c ]\n  -- ORIGINAL RELEASED SPEC"),
            std::string::npos);
  EXPECT_NE(doc.find("Greg Nelson"), std::string::npos);
}

TEST(RenderTest, AlertPolicyRendered) {
  const std::string nondet = RenderSpecification();
  EXPECT_NE(nondet.find("may choose either outcome"), std::string::npos);

  const std::string strict = RenderSpecification(
      SpecConfig{AlertWaitVariant::kCorrected,
                 AlertChoicePolicy::kPreferAlerted});
  EXPECT_NE(strict.find("MUST be raised"), std::string::npos);
}

TEST(RenderTest, SignalClauseIsTheWeakOne) {
  // The paper: "the weakness of the guarantee is explicit in Signal's
  // ENSURES clause."
  const std::string doc = RenderConditionSection();
  EXPECT_NE(doc.find("(c_post = {}) | (c_post PROPER-SUBSET-OF c)"),
            std::string::npos);
}

}  // namespace
}  // namespace taos::spec
