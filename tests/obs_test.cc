// The sharded runtime metrics (src/obs/metrics.h): fast-path vs Nub-entry
// attribution, cross-thread aggregation, and ResetStats.
//
// Every assertion is a delta between two Snapshot() calls, so the tests are
// insensitive to counts left behind by other tests in this binary (cells are
// per-thread and leaked; Snapshot aggregates all of them).

#include "src/obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"

namespace taos {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::Snapshot;
using obs::Stats;

std::uint64_t Delta(const Stats& before, const Stats& after, Counter c) {
  return after.Count(c) - before.Count(c);
}

// The per-op Nub-entry counters, as a group: an uncontended run must leave
// every one of them untouched.
constexpr Counter kNubCounters[] = {
    Counter::kNubAcquire, Counter::kNubRelease,   Counter::kNubWait,
    Counter::kNubSignal,  Counter::kNubBroadcast, Counter::kNubP,
    Counter::kNubV,       Counter::kNubAlert,     Counter::kNubAlertWait,
    Counter::kNubAlertP,
};

TEST(ObsMetricsTest, UncontendedMutexPairIsAllFastPath) {
  Mutex m;
  const Stats before = Snapshot();
  for (int i = 0; i < 1000; ++i) {
    m.Acquire();
    m.Release();
  }
  const Stats after = Snapshot();
  EXPECT_EQ(Delta(before, after, Counter::kFastMutexAcquire), 1000u);
  EXPECT_EQ(Delta(before, after, Counter::kFastMutexRelease), 1000u);
  for (Counter c : kNubCounters) {
    EXPECT_EQ(Delta(before, after, c), 0u)
        << "Nub counter " << obs::CounterName(c)
        << " moved on an uncontended run";
  }
}

TEST(ObsMetricsTest, UncontendedSemaphorePairIsAllFastPath) {
  Semaphore s;
  const Stats before = Snapshot();
  for (int i = 0; i < 1000; ++i) {
    s.P();
    s.V();
  }
  const Stats after = Snapshot();
  EXPECT_EQ(Delta(before, after, Counter::kFastSemP), 1000u);
  EXPECT_EQ(Delta(before, after, Counter::kFastSemV), 1000u);
  for (Counter c : kNubCounters) {
    EXPECT_EQ(Delta(before, after, c), 0u) << obs::CounterName(c);
  }
}

TEST(ObsMetricsTest, SignalWithEmptyConditionIsFast) {
  Condition c;
  const Stats before = Snapshot();
  for (int i = 0; i < 100; ++i) {
    c.Signal();
    c.Broadcast();
  }
  const Stats after = Snapshot();
  EXPECT_EQ(Delta(before, after, Counter::kFastSignal), 100u);
  EXPECT_EQ(Delta(before, after, Counter::kFastBroadcast), 100u);
  EXPECT_EQ(Delta(before, after, Counter::kNubSignal), 0u);
  EXPECT_EQ(Delta(before, after, Counter::kNubBroadcast), 0u);
}

// A forced-contention Wait/Signal round trip: the waiter's Wait and the
// signaler's Signal each enter the Nub exactly once, and the Signal hands
// off to exactly one thread.
TEST(ObsMetricsTest, WaitSignalRoundTripEntersNubExactly) {
  Mutex m;
  Condition c;
  std::atomic<bool> waiting{false};

  const Stats before = Snapshot();
  Thread waiter = Thread::Fork([&] {
    m.Acquire();
    waiting.store(true, std::memory_order_release);
    c.Wait(m);
    m.Release();
  });

  while (!waiting.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Wait releases m only after enqueuing on c, so once we hold m the waiter
  // is on the condition queue (it may or may not have parked yet).
  m.Acquire();
  const Stats mid = Snapshot();
  c.Signal();
  const Stats after_signal = Snapshot();
  m.Release();
  waiter.Join();
  const Stats end = Snapshot();

  // Tight bracket around Signal: the waiter is enqueued and we hold m, so
  // exactly one Nub signal and one handoff happen, and nothing else moves.
  EXPECT_EQ(Delta(mid, after_signal, Counter::kNubSignal), 1u);
  EXPECT_EQ(Delta(mid, after_signal, Counter::kFastSignal), 0u);
  EXPECT_EQ(Delta(mid, after_signal, Counter::kHandoffs), 1u);

  // Whole round trip: one Wait entered the Nub, one Signal did; the wakeup
  // was a real handoff, not an absorbed (wakeup-waiting) one.
  EXPECT_EQ(Delta(before, end, Counter::kNubWait), 1u);
  EXPECT_EQ(Delta(before, end, Counter::kNubSignal), 1u);
  EXPECT_EQ(Delta(before, end, Counter::kWakeupWaitingHits), 0u);
  EXPECT_GE(Delta(before, end, Counter::kHandoffs), 1u);
}

// Eight threads hammering their own mutexes: the sharded cells must not
// lose a single increment when aggregated.
TEST(ObsMetricsTest, ConcurrentCountingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  const Stats before = Snapshot();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        Mutex m;
        for (int i = 0; i < kIters; ++i) {
          m.Acquire();
          m.Release();
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  const Stats after = Snapshot();
  EXPECT_EQ(Delta(before, after, Counter::kFastMutexAcquire),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(Delta(before, after, Counter::kFastMutexRelease),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsMetricsTest, HistogramRecordsLandInOneBucket) {
  const Stats before = Snapshot();
  obs::Record(Histogram::kBlockedNanos, 0);
  obs::Record(Histogram::kBlockedNanos, 1);
  obs::Record(Histogram::kBlockedNanos, 1'000'000);
  const Stats after = Snapshot();
  EXPECT_EQ(after.HistogramTotal(Histogram::kBlockedNanos) -
                before.HistogramTotal(Histogram::kBlockedNanos),
            3u);
}

// ResetStats must zero every registered cell: counters bumped from several
// threads (whose cells outlive them) all read back as zero.
TEST(ObsMetricsTest, ResetStatsZeroesEverything) {
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        Mutex m;
        Semaphore s;
        for (int i = 0; i < 100; ++i) {
          m.Acquire();
          m.Release();
          s.P();
          s.V();
        }
        obs::Record(Histogram::kBlockedNanos, 42);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  ASSERT_GT(Snapshot().Count(Counter::kFastMutexAcquire), 0u);

  obs::ResetStats();
  const Stats zeroed = Snapshot();
  for (int c = 0; c < obs::kNumCounters; ++c) {
    EXPECT_EQ(zeroed.Count(static_cast<Counter>(c)), 0u)
        << obs::CounterName(static_cast<Counter>(c));
  }
  for (int h = 0; h < obs::kNumHistograms; ++h) {
    EXPECT_EQ(zeroed.HistogramTotal(static_cast<Histogram>(h)), 0u)
        << obs::HistogramName(static_cast<Histogram>(h));
  }
}

// Registry self-check: the enum-indexed name tables must cover every slot
// (the .cc static_asserts pin their sizes at compile time; this validates
// the content), with no empty, null or duplicate names — a duplicate would
// silently merge two series in every JSON report.
TEST(ObsMetricsTest, CounterAndHistogramRegistriesAreComplete) {
  std::set<std::string> seen;
  for (int c = 0; c < obs::kNumCounters; ++c) {
    const char* name = obs::CounterName(static_cast<Counter>(c));
    ASSERT_NE(name, nullptr) << "counter slot " << c;
    EXPECT_STRNE(name, "") << "counter slot " << c;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate counter name " << name;
  }
  seen.clear();
  for (int h = 0; h < obs::kNumHistograms; ++h) {
    const char* name = obs::HistogramName(static_cast<Histogram>(h));
    ASSERT_NE(name, nullptr) << "histogram slot " << h;
    EXPECT_STRNE(name, "") << "histogram slot " << h;
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate histogram name " << name;
  }
}

// The JSON report must carry every registered series, including the last
// enum slot of each table (the one an off-by-one in the emission loop or a
// forgotten name-table entry would drop).
TEST(ObsMetricsTest, ReportJsonCoversEveryRegisteredSeries) {
  const std::string report = obs::ReportJson();
  for (int c = 0; c < obs::kNumCounters; ++c) {
    const std::string key =
        std::string("\"") + obs::CounterName(static_cast<Counter>(c)) + "\"";
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }
  for (int h = 0; h < obs::kNumHistograms; ++h) {
    const std::string key =
        std::string("\"") + obs::HistogramName(static_cast<Histogram>(h)) +
        "\"";
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }
}

TEST(ObsMetricsTest, ReportJsonParses) {
  Mutex m;
  m.Acquire();
  m.Release();
  const std::string report = obs::ReportJson();
  EXPECT_NE(report.find("\"counters\""), std::string::npos);
  EXPECT_NE(report.find("\"fast_mutex_acquire\""), std::string::npos);
  EXPECT_NE(report.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace taos
