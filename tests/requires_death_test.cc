// The REQUIRES clauses are caller obligations; this library (unlike the
// paper's implementation, which trusted callers) checks them and panics.
// Death tests pin down that misuse is caught, not silently corrupting.

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/threads/threads.h"

namespace taos {
namespace {

using RequiresDeathTest = ::testing::Test;

TEST(RequiresDeathTest, ReleaseWithoutAcquirePanics) {
  Mutex m;
  EXPECT_DEATH(m.Release(), "check failed");
}

TEST(RequiresDeathTest, ReleaseByNonHolderPanics) {
  EXPECT_DEATH(
      {
        Mutex m;
        m.Acquire();
        Thread other = Thread::Fork([&m] { m.Release(); });
        other.Join();
      },
      "check failed");
}

TEST(RequiresDeathTest, WaitWithoutMutexPanics) {
  Mutex m;
  Condition c;
  EXPECT_DEATH(c.Wait(m), "check failed");
}

TEST(RequiresDeathTest, AlertWaitWithoutMutexPanics) {
  Mutex m;
  Condition c;
  EXPECT_DEATH(AlertWait(m, c), "check failed");
}

TEST(RequiresDeathTest, WaitWithSomeoneElsesMutexPanics) {
  EXPECT_DEATH(
      {
        Mutex m;
        Condition c;
        m.Acquire();
        Thread other = Thread::Fork([&] { c.Wait(m); });
        other.Join();
      },
      "check failed");
}

// The timed variants carry the same REQUIRES m = SELF obligation as their
// untimed counterparts: a deadline is not a license to wait on a mutex the
// caller does not hold.

TEST(RequiresDeathTest, WaitForWithoutMutexPanics) {
  Mutex m;
  Condition c;
  EXPECT_DEATH(c.WaitFor(m, std::chrono::milliseconds(5)), "check failed");
}

TEST(RequiresDeathTest, AlertWaitForWithoutMutexPanics) {
  Mutex m;
  Condition c;
  EXPECT_DEATH(AlertWaitFor(m, c, std::chrono::milliseconds(5)),
               "check failed");
}

TEST(RequiresDeathTest, AlertNullHandlePanics) {
  EXPECT_DEATH(Alert(ThreadHandle{}), "check failed");
}

// The checks must fire identically in both Nub locking configurations: the
// REQUIRES tests read holder_, which lock sharding did not move.

TEST(RequiresDeathTest, ReleaseByNonHolderPanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        Mutex m;
        m.Acquire();
        Thread other = Thread::Fork([&m] { m.Release(); });
        other.Join();
      },
      "check failed");
}

TEST(RequiresDeathTest, WaitWithoutMutexPanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        Mutex m;
        Condition c;
        c.Wait(m);
      },
      "check failed");
}

TEST(RequiresDeathTest, WaitForWithoutMutexPanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        Mutex m;
        Condition c;
        c.WaitFor(m, std::chrono::milliseconds(5));
      },
      "check failed");
}

TEST(RequiresDeathTest, AlertWaitForWithoutMutexPanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        Mutex m;
        Condition c;
        AlertWaitFor(m, c, std::chrono::milliseconds(5));
      },
      "check failed");
}

TEST(RequiresDeathTest, ContendedReleaseByNonHolderPanics) {
  // Exercise the sharded slow path, not just the inline check: a waiter is
  // parked on the mutex's own queue when the bogus Release arrives.
  EXPECT_DEATH(
      {
        Mutex m;
        m.Acquire();
        Thread contender = Thread::Fork([&m] {
          m.Acquire();
          m.Release();
        });
        Thread violator = Thread::Fork([&m] { m.Release(); });
        violator.Join();
        m.Release();
        contender.Join();
      },
      "check failed");
}

TEST(RequiresDeathTest, TracedReleaseByNonHolderPanics) {
  EXPECT_DEATH(
      {
        spec::Trace trace;
        Nub::Get().SetTrace(&trace);
        Mutex m;
        m.Acquire();
        Thread other = Thread::Fork([&m] { m.Release(); });
        other.Join();
      },
      "check failed");
}

// ReaderWriterMutex misuse: the spec's REQUIRES rw.writer = SELF (Release)
// and SELF IN rw.readers (ReleaseShared) are checked in both lock modes —
// and an exclusive Release of a merely-shared hold is the same class of
// bug as release-without-acquire and dies the same way.

TEST(RequiresDeathTest, RwReleaseWithoutAcquirePanics) {
  ReaderWriterMutex rw;
  EXPECT_DEATH(rw.Release(), "check failed");
}

TEST(RequiresDeathTest, RwReleaseSharedWithoutAcquirePanics) {
  ReaderWriterMutex rw;
  EXPECT_DEATH(rw.ReleaseShared(), "check failed");
}

TEST(RequiresDeathTest, RwExclusiveReleaseOfSharedHoldPanics) {
  EXPECT_DEATH(
      {
        ReaderWriterMutex rw;
        rw.AcquireShared();
        rw.Release();  // held shared, released exclusive
      },
      "check failed");
}

TEST(RequiresDeathTest, RwReleaseByNonHolderPanics) {
  EXPECT_DEATH(
      {
        ReaderWriterMutex rw;
        rw.Acquire();
        Thread other = Thread::Fork([&rw] { rw.Release(); });
        other.Join();
      },
      "check failed");
}

TEST(RequiresDeathTest, RwReleaseWithoutAcquirePanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        ReaderWriterMutex rw;
        rw.Release();
      },
      "check failed");
}

TEST(RequiresDeathTest, RwExclusiveReleaseOfSharedHoldPanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        ReaderWriterMutex rw;
        rw.AcquireShared();
        rw.Release();
      },
      "check failed");
}

// Multi-object wait misuse: the waits REQUIRE a non-empty set, Add REQUIRES
// distinct members, and an Event's destructor REQUIRES no live poll
// registrations (a stack PollNode outliving its event is a use-after-free
// in waiting).

TEST(RequiresDeathTest, WaitAnyOnEmptySetPanics) {
  Poll p;
  EXPECT_DEATH((void)p.WaitAny(), "check failed");
}

TEST(RequiresDeathTest, WaitAllOnEmptySetPanics) {
  Poll p;
  EXPECT_DEATH(p.WaitAll(), "check failed");
}

TEST(RequiresDeathTest, DuplicateAddPanics) {
  EXPECT_DEATH(
      {
        Event e;
        Poll p;
        p.Add(e);
        p.Add(e);
      },
      "check failed");
}

TEST(RequiresDeathTest, EventDestroyedWithLiveRegistrationPanics) {
  EXPECT_DEATH(
      {
        auto* e = new Event(EventReset::kAuto);
        std::atomic<bool> parked{false};
        Thread waiter = Thread::Fork([&] {
          Poll p;
          p.Add(*e);
          parked.store(true, std::memory_order_release);
          (void)p.WaitAny();
        });
        while (!parked.load(std::memory_order_acquire)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        delete e;  // the waiter is (about to be) registered: must panic
        waiter.Join();
      },
      "check failed");
}

TEST(RequiresDeathTest, WaitAnyOnEmptySetPanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        Poll p;
        (void)p.WaitAny();
      },
      "check failed");
}

TEST(RequiresDeathTest, DuplicateAddPanicsInGlobalLockMode) {
  EXPECT_DEATH(
      {
        Nub::Get().SetGlobalLockMode(true);
        Event e;
        Poll p;
        p.Add(e);
        p.Add(e);
      },
      "check failed");
}

}  // namespace
}  // namespace taos
