// The REQUIRES clauses are caller obligations; this library (unlike the
// paper's implementation, which trusted callers) checks them and panics.
// Death tests pin down that misuse is caught, not silently corrupting.

#include <gtest/gtest.h>

#include "src/threads/threads.h"

namespace taos {
namespace {

using RequiresDeathTest = ::testing::Test;

TEST(RequiresDeathTest, ReleaseWithoutAcquirePanics) {
  Mutex m;
  EXPECT_DEATH(m.Release(), "check failed");
}

TEST(RequiresDeathTest, ReleaseByNonHolderPanics) {
  EXPECT_DEATH(
      {
        Mutex m;
        m.Acquire();
        Thread other = Thread::Fork([&m] { m.Release(); });
        other.Join();
      },
      "check failed");
}

TEST(RequiresDeathTest, WaitWithoutMutexPanics) {
  Mutex m;
  Condition c;
  EXPECT_DEATH(c.Wait(m), "check failed");
}

TEST(RequiresDeathTest, AlertWaitWithoutMutexPanics) {
  Mutex m;
  Condition c;
  EXPECT_DEATH(AlertWait(m, c), "check failed");
}

TEST(RequiresDeathTest, WaitWithSomeoneElsesMutexPanics) {
  EXPECT_DEATH(
      {
        Mutex m;
        Condition c;
        m.Acquire();
        Thread other = Thread::Fork([&] { c.Wait(m); });
        other.Join();
      },
      "check failed");
}

TEST(RequiresDeathTest, AlertNullHandlePanics) {
  EXPECT_DEATH(Alert(ThreadHandle{}), "check failed");
}

}  // namespace
}  // namespace taos
