// Odds and ends of the Threads package surface: Thread move semantics, the
// registry, handles, stats plumbing.

#include <atomic>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/threads/threads.h"
#include "src/workload/timeout.h"

namespace taos {
namespace {

TEST(ThreadTest, MoveTransfersOwnership) {
  std::atomic<bool> ran{false};
  Thread a = Thread::Fork([&ran] { ran.store(true); });
  Thread b = std::move(a);
  EXPECT_TRUE(b.Joinable());
  b.Join();
  EXPECT_TRUE(ran.load());
  EXPECT_FALSE(b.Joinable());
}

TEST(ThreadTest, DestructorJoins) {
  std::atomic<bool> ran{false};
  {
    Thread t = Thread::Fork([&ran] { ran.store(true); });
  }  // ~Thread joins
  EXPECT_TRUE(ran.load());
}

TEST(ThreadTest, VectorOfThreads) {
  std::atomic<int> n{0};
  std::vector<Thread> threads;
  for (int i = 0; i < 10; ++i) {
    threads.push_back(Thread::Fork([&n] { n.fetch_add(1); }));
  }
  threads.clear();  // destructor-join them all
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadTest, SelfHandleStableWithinThread) {
  const ThreadHandle h1 = Thread::Self();
  const ThreadHandle h2 = Thread::Self();
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1.id(), spec::kNil);
}

TEST(ThreadTest, DistinctThreadsDistinctIds) {
  spec::ThreadId child_id = spec::kNil;
  Thread t = Thread::Fork([&child_id] { child_id = Thread::Self().id(); });
  t.Join();
  EXPECT_NE(child_id, spec::kNil);
  EXPECT_NE(child_id, Thread::Self().id());
}

TEST(NubTest, RecordForFindsRegisteredThreads) {
  Nub& nub = Nub::Get();
  const ThreadHandle self = Thread::Self();
  EXPECT_EQ(nub.RecordFor(self.id()), self.rec);
  EXPECT_EQ(nub.RecordFor(0), nullptr);
}

TEST(NubTest, HandleMatchesForkRecord) {
  Thread t = Thread::Fork([] {});
  const ThreadHandle h = t.Handle();
  EXPECT_EQ(Nub::Get().RecordFor(h.id()), h.rec);
  t.Join();
}

TEST(TimeoutTest, FastPathWhenPredicateAlreadyTrue) {
  Mutex m;
  Condition c;
  m.Acquire();
  const bool ok = workload::WaitWithTimeout(
      m, c, [] { return true; }, std::chrono::milliseconds(1));
  EXPECT_TRUE(ok);
  m.Release();
  // No stale alert may linger on this thread.
  EXPECT_FALSE(TestAlert());
}

class TimeoutSweep
    : public ::testing::TestWithParam<int> {};  // timeout in ms

TEST_P(TimeoutSweep, TimesOutWithinReason) {
  Mutex m;
  Condition c;
  m.Acquire();
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = workload::WaitWithTimeout(
      m, c, [] { return false; },
      std::chrono::milliseconds(GetParam()));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  m.Release();
  EXPECT_FALSE(ok);
  EXPECT_GE(elapsed.count() + 2, GetParam());  // not early (2ms slack)
  EXPECT_FALSE(TestAlert());
}

INSTANTIATE_TEST_SUITE_P(Workload, TimeoutSweep,
                         ::testing::Values(5, 20, 60));

}  // namespace
}  // namespace taos
