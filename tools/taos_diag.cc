// taos-diag: contention diagnosis over the artifacts the runtime already
// writes. Two modes, auto-detected from the document shape:
//
//   taos_diag TRACE_foo.json          flight-recorder Chrome trace: top
//                                     contended objects, wakeup latency,
//                                     handoff chains, broadcast stampedes
//   taos_diag BENCH_foo.json          bench report: config stamps plus the
//                                     wakeup/handoff latency histograms
//
//   --top=N   cap the contended-object table (default 10)
//
// Produce a trace with any bench binary's --trace flag, or a test's drain;
// see docs/WALKTHROUGH.md ("Diagnosing a hang with taos-diag").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/diag_analysis.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--top=N] <TRACE_*.json | BENCH_*.json>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t top = 10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--top=", 6) == 0) {
      top = static_cast<std::size_t>(std::strtoull(a + 6, nullptr, 10));
    } else if (a[0] == '-') {
      return Usage(argv[0]);
    } else {
      paths.emplace_back(a);
    }
  }
  if (paths.empty()) {
    return Usage(argv[0]);
  }

  int rc = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "taos-diag: cannot read %s\n", path.c_str());
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::string error;
    if (text.find("\"traceEvents\"") != std::string::npos) {
      taos::diagtool::TraceAnalysis analysis;
      if (!taos::diagtool::AnalyzeTraceJson(text, &analysis, &error)) {
        std::fprintf(stderr, "taos-diag: %s: %s\n", path.c_str(),
                     error.c_str());
        rc = 1;
        continue;
      }
      std::fputs(
          taos::diagtool::FormatTraceReport(analysis, top).c_str(), stdout);
    } else {
      std::string report;
      if (!taos::diagtool::FormatBenchReport(text, &report, &error)) {
        std::fprintf(stderr, "taos-diag: %s: %s\n", path.c_str(),
                     error.c_str());
        rc = 1;
        continue;
      }
      std::fputs(report.c_str(), stdout);
    }
  }
  return rc;
}
