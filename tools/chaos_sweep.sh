#!/usr/bin/env bash
# Seed-sweep driver for the chaos schedule-injection harness.
#
# Runs the conformance, timed, and stress suites (which already fan out over
# the lock-sharding x waiter-queue matrix via their registered ctest
# variants) under every strategy for each seed. On any failure it prints the
# {seed, strategy, point-mask} replay triple and the exact environment line
# that reproduces the run, then exits non-zero.
#
# Usage:
#   tools/chaos_sweep.sh <chaos-build-dir> [seed...]
#
# The build dir must be configured with -DTAOS_CHAOS=ON. Default seeds are
# 1..5; TAOS_CHAOS_POINTS (hex mask) and TAOS_SWEEP_FILTER (ctest -R regex)
# pass through from the environment.

set -u

BUILD_DIR="${1:?usage: tools/chaos_sweep.sh <chaos-build-dir> [seed...]}"
shift
SEEDS=("$@")
if [ "${#SEEDS[@]}" -eq 0 ]; then
  SEEDS=(1 2 3 4 5)
fi

FILTER="${TAOS_SWEEP_FILTER:-threads_conformance_test|threads_timed_test|threads_stress_test}"
POINTS="${TAOS_CHAOS_POINTS:-}"
STRATEGIES=(uniform preempt-after-cas delay-before-park)

if [ ! -f "${BUILD_DIR}/CTestTestfile.cmake" ]; then
  echo "chaos_sweep: ${BUILD_DIR} is not a configured build directory" >&2
  exit 2
fi

fail=0
for seed in "${SEEDS[@]}"; do
  for strategy in "${STRATEGIES[@]}"; do
    echo "=== chaos sweep: seed=${seed} strategy=${strategy}" \
         "points=${POINTS:-all} ==="
    if ! ( cd "${BUILD_DIR}" &&
           TAOS_CHAOS_SEED="${seed}" \
           TAOS_CHAOS_STRATEGY="${strategy}" \
           ${POINTS:+TAOS_CHAOS_POINTS="${POINTS}"} \
           ctest --output-on-failure -R "${FILTER}" ); then
      echo ""
      echo "chaos sweep FAILED: {seed=${seed}, strategy=${strategy}," \
           "points=${POINTS:-all}}"
      echo "replay with:"
      echo "  TAOS_CHAOS_SEED=${seed} TAOS_CHAOS_STRATEGY=${strategy}" \
           "${POINTS:+TAOS_CHAOS_POINTS=${POINTS}} \\"
      echo "    ctest --test-dir ${BUILD_DIR} --output-on-failure -R '${FILTER}'"
      fail=1
    fi
  done
done

if [ "${fail}" -eq 0 ]; then
  echo "chaos sweep: all seeds passed" \
       "(${#SEEDS[@]} seeds x ${#STRATEGIES[@]} strategies)"
fi
exit "${fail}"
