#!/usr/bin/env bash
# Seed-sweep driver for the chaos schedule-injection harness.
#
# Runs the conformance, timed, stress, rwlock, and poll suites (which fan
# out over the lock-sharding x waiter-queue matrix via their registered
# ctest variants) under every strategy for each seed, and repeats the whole
# grid once per lock backend (TAOS_LOCK=tas|mcs|clh) so the MCS/CLH handoff
# seams see every strategy too. On any failure it prints the {seed,
# strategy, backend, point-mask} replay quadruple and the exact environment
# line that reproduces the run, then exits non-zero.
#
# Usage:
#   tools/chaos_sweep.sh <chaos-build-dir> [seed...]
#
# The build dir must be configured with -DTAOS_CHAOS=ON. Default seeds are
# 1..5; TAOS_CHAOS_POINTS (hex mask), TAOS_SWEEP_FILTER (ctest -R regex),
# and TAOS_SWEEP_LOCKS (space-separated backend list) pass through from the
# environment.

set -u

BUILD_DIR="${1:?usage: tools/chaos_sweep.sh <chaos-build-dir> [seed...]}"
shift
SEEDS=("$@")
if [ "${#SEEDS[@]}" -eq 0 ]; then
  SEEDS=(1 2 3 4 5)
fi

FILTER="${TAOS_SWEEP_FILTER:-threads_conformance_test|threads_timed_test|threads_stress_test|rwmutex_test|poll_test}"
POINTS="${TAOS_CHAOS_POINTS:-}"
STRATEGIES=(uniform preempt-after-cas delay-before-park)
read -r -a LOCKS <<< "${TAOS_SWEEP_LOCKS:-tas mcs clh}"

if [ ! -f "${BUILD_DIR}/CTestTestfile.cmake" ]; then
  echo "chaos_sweep: ${BUILD_DIR} is not a configured build directory" >&2
  exit 2
fi

fail=0
for lock in "${LOCKS[@]}"; do
  for seed in "${SEEDS[@]}"; do
    for strategy in "${STRATEGIES[@]}"; do
      echo "=== chaos sweep: lock=${lock} seed=${seed}" \
           "strategy=${strategy} points=${POINTS:-all} ==="
      if ! ( cd "${BUILD_DIR}" &&
             TAOS_LOCK="${lock}" \
             TAOS_CHAOS_SEED="${seed}" \
             TAOS_CHAOS_STRATEGY="${strategy}" \
             ${POINTS:+TAOS_CHAOS_POINTS="${POINTS}"} \
             ctest --output-on-failure -R "${FILTER}" ); then
        echo ""
        echo "chaos sweep FAILED: {lock=${lock}, seed=${seed}," \
             "strategy=${strategy}, points=${POINTS:-all}}"
        echo "replay with:"
        echo "  TAOS_LOCK=${lock} TAOS_CHAOS_SEED=${seed}" \
             "TAOS_CHAOS_STRATEGY=${strategy}" \
             "${POINTS:+TAOS_CHAOS_POINTS=${POINTS}} \\"
        echo "    ctest --test-dir ${BUILD_DIR} --output-on-failure" \
             "-R '${FILTER}'"
        fail=1
      fi
    done
  done
done

if [ "${fail}" -eq 0 ]; then
  echo "chaos sweep: all seeds passed (${#LOCKS[@]} backends x" \
       "${#SEEDS[@]} seeds x ${#STRATEGIES[@]} strategies)"
fi
exit "${fail}"
