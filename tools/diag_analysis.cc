#include "tools/diag_analysis.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

namespace taos::diagtool {

namespace {

using obs::json::Parse;
using obs::json::Value;

// One parsed "X" trace event, timestamps back in integer nanoseconds.
struct Ev {
  std::string name;
  std::uint64_t tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t obj = 0;
  std::uint64_t flow = 0;
};

bool IsWaiterOp(const std::string& name) {
  return name == "Acquire" || name == "Wait" || name == "P" ||
         name == "AlertWait" || name == "AlertP";
}

bool IsHolderOp(const std::string& name) {
  return name == "Release" || name == "V" || name == "Signal" ||
         name == "Broadcast";
}

// The drain prints microseconds with three decimals (exact nanoseconds);
// llround recovers the integer.
std::uint64_t MicrosToNanos(double us) {
  return us <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

// "1234567" ns -> "1.235ms" / "12.3us" — compact, deterministic.
std::string Ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  }
  return buf;
}

std::uint64_t Percentile(const std::vector<std::uint64_t>& sorted,
                         double p) {
  if (sorted.empty()) {
    return 0;
  }
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

// Longest chains in the wake-causality DAG: link j -> i is legal when i's
// waker is j's wakee and i's grant happens after j's resume (the woken
// thread went on to wake someone else). O(n^2) over matched edges, which
// quick-mode traces keep small; capped defensively for huge drains.
std::vector<HandoffChain> LongestChains(const std::vector<FlowEdge>& edges) {
  constexpr std::size_t kMaxEdgesForChains = 20000;
  const std::size_t n = std::min(edges.size(), kMaxEdgesForChains);
  std::vector<std::size_t> len(n, 1);
  std::vector<std::ptrdiff_t> prev(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (edges[j].wakee_tid == edges[i].waker_tid &&
          edges[j].resume_ns() <= edges[i].grant_ns && len[j] + 1 > len[i]) {
        len[i] = len[j] + 1;
        prev[i] = static_cast<std::ptrdiff_t>(j);
      }
    }
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return len[a] != len[b] ? len[a] > len[b] : a < b;
  });
  std::vector<HandoffChain> chains;
  std::set<std::size_t> used;
  for (std::size_t k = 0; k < n && chains.size() < kMaxChains; ++k) {
    const std::size_t tail = order[k];
    if (len[tail] < 2 || used.count(tail) != 0) {
      continue;
    }
    HandoffChain chain;
    bool overlaps = false;
    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(tail); i >= 0;
         i = prev[static_cast<std::size_t>(i)]) {
      overlaps |= !used.insert(static_cast<std::size_t>(i)).second;
      chain.links.push_back(edges[static_cast<std::size_t>(i)]);
    }
    if (overlaps) {
      continue;  // suffix of an already-reported chain
    }
    std::reverse(chain.links.begin(), chain.links.end());
    chain.span_ns = chain.links.back().resume_ns() - chain.links.front().grant_ns;
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace

bool AnalyzeTraceJson(const std::string& text, TraceAnalysis* out,
                      std::string* error) {
  *out = TraceAnalysis{};
  std::optional<Value> doc = Parse(text, error);
  if (!doc) {
    return false;
  }
  const Value* trace_events = doc->Find("traceEvents");
  if (trace_events == nullptr || !trace_events->IsArray()) {
    if (error != nullptr) {
      *error = "not a Chrome trace: no traceEvents array";
    }
    return false;
  }
  if (const Value* other = doc->Find("otherData");
      other != nullptr && other->IsObject()) {
    for (const auto& [key, v] : other->object) {
      if (key == "dropped_events" && v.IsNumber()) {
        out->dropped_events = static_cast<std::uint64_t>(v.number);
      } else if (v.IsString()) {
        out->metadata.emplace_back(key, v.string);
      }
    }
  }

  std::vector<Ev> evs;
  for (const Value& e : trace_events->array) {
    const Value* ph = e.Find("ph");
    if (ph == nullptr || !ph->IsString() || ph->string != "X") {
      continue;  // metadata ("M") and flow markers ("s"/"f") re-render evs
    }
    Ev ev;
    if (const Value* v = e.Find("name"); v != nullptr && v->IsString()) {
      ev.name = v->string;
    }
    if (const Value* v = e.Find("tid"); v != nullptr && v->IsNumber()) {
      ev.tid = static_cast<std::uint64_t>(v->number);
    }
    if (const Value* v = e.Find("ts"); v != nullptr && v->IsNumber()) {
      ev.ts_ns = MicrosToNanos(v->number);
    }
    if (const Value* v = e.Find("dur"); v != nullptr && v->IsNumber()) {
      ev.dur_ns = MicrosToNanos(v->number);
    }
    if (const Value* args = e.Find("args");
        args != nullptr && args->IsObject()) {
      if (const Value* v = args->Find("obj"); v != nullptr && v->IsNumber()) {
        ev.obj = static_cast<std::uint64_t>(v->number);
      }
      if (const Value* v = args->Find("flow"); v != nullptr && v->IsNumber()) {
        ev.flow = static_cast<std::uint64_t>(v->number);
      }
    }
    evs.push_back(std::move(ev));
  }
  out->total_events = evs.size();

  // --- per-object wait attribution ---
  std::map<std::uint64_t, ObjStats> by_obj;
  std::map<std::uint64_t, std::map<std::string, std::uint64_t>> ops_by_obj;
  for (const Ev& e : evs) {
    if (e.obj == 0) {
      continue;  // Unpark/ParkResume carry no object
    }
    ObjStats& s = by_obj[e.obj];
    s.obj = e.obj;
    if (IsWaiterOp(e.name)) {
      s.wait_count += 1;
      s.wait_ns += e.dur_ns;
      s.max_wait_ns = std::max(s.max_wait_ns, e.dur_ns);
      ops_by_obj[e.obj][e.name] += 1;
    } else if (IsHolderOp(e.name)) {
      s.holder_count += 1;
      s.holder_ns += e.dur_ns;
    }
  }
  for (auto& [obj, s] : by_obj) {
    for (const auto& [op, count] : ops_by_obj[obj]) {
      s.waiter_ops.emplace_back(op, count);  // map order: already by name
    }
    out->objects.push_back(std::move(s));
  }
  std::sort(out->objects.begin(), out->objects.end(),
            [](const ObjStats& a, const ObjStats& b) {
              return a.wait_ns != b.wait_ns ? a.wait_ns > b.wait_ns
                                            : a.obj < b.obj;
            });

  // --- wakeup-causality edges (flow pairs) ---
  std::map<std::uint64_t, FlowEdge> by_flow;
  std::map<std::uint64_t, bool> has_unpark, has_resume;
  for (const Ev& e : evs) {
    if (e.flow == 0 || (e.name != "Unpark" && e.name != "ParkResume")) {
      continue;
    }
    FlowEdge& edge = by_flow[e.flow];
    edge.flow = e.flow;
    if (e.name == "Unpark") {
      edge.waker_tid = e.tid;
      edge.grant_ns = e.ts_ns;
      has_unpark[e.flow] = true;
    } else {
      edge.wakee_tid = e.tid;
      // ParkResume carries ts = grant instant, dur = latency; prefer the
      // waker's own grant stamp when both halves are present.
      if (!has_unpark[e.flow]) {
        edge.grant_ns = e.ts_ns;
      }
      edge.latency_ns = e.dur_ns;
      has_resume[e.flow] = true;
    }
  }
  for (const auto& [flow, edge] : by_flow) {
    if (has_unpark[flow] && has_resume[flow]) {
      out->edges.push_back(edge);
    } else if (has_unpark[flow]) {
      out->unmatched_unparks += 1;  // wakee's ring wrapped, or still parked
    } else {
      out->unmatched_resumes += 1;  // waker's ring wrapped
    }
  }
  std::sort(out->edges.begin(), out->edges.end(),
            [](const FlowEdge& a, const FlowEdge& b) {
              return a.grant_ns != b.grant_ns ? a.grant_ns < b.grant_ns
                                              : a.flow < b.flow;
            });

  // --- broadcast stampedes: permits granted inside a Broadcast's slice by
  // the broadcasting thread ---
  for (const Ev& b : evs) {
    if (b.name != "Broadcast") {
      continue;
    }
    out->broadcast.broadcasts += 1;
    std::uint64_t woken = 0;
    for (const Ev& u : evs) {
      if (u.name == "Unpark" && u.tid == b.tid && u.ts_ns >= b.ts_ns &&
          u.ts_ns <= b.ts_ns + b.dur_ns) {
        woken += 1;
      }
    }
    if (woken > 0) {
      out->broadcast.waking_broadcasts += 1;
      out->broadcast.woken_total += woken;
      out->broadcast.max_woken = std::max(out->broadcast.max_woken, woken);
    }
  }

  out->chains = LongestChains(out->edges);
  return true;
}

std::string FormatTraceReport(const TraceAnalysis& a, std::size_t top) {
  std::string out;
  out += "=== taos-diag: trace report ===\n";
  AppendF(&out, "events: %" PRIu64 " (dropped: %" PRIu64 ")\n",
          a.total_events, a.dropped_events);
  if (!a.metadata.empty()) {
    out += "run:";
    for (const auto& [k, v] : a.metadata) {
      AppendF(&out, " %s=%s", k.c_str(), v.c_str());
    }
    out += "\n";
  }

  out += "\n--- top contended objects (by total waiter-side time) ---\n";
  std::size_t shown = 0;
  for (const ObjStats& s : a.objects) {
    if (s.wait_count == 0 || shown == top) {
      continue;
    }
    ++shown;
    AppendF(&out,
            "obj %" PRIu64 ": %" PRIu64 " waits, total %s, max %s"
            "; holder side: %" PRIu64 " ops, %s\n",
            s.obj, s.wait_count, Ns(s.wait_ns).c_str(),
            Ns(s.max_wait_ns).c_str(), s.holder_count,
            Ns(s.holder_ns).c_str());
    out += "  waiters:";
    for (const auto& [op, count] : s.waiter_ops) {
      AppendF(&out, " %s x%" PRIu64, op.c_str(), count);
    }
    out += "\n";
  }
  if (shown == 0) {
    out += "(no waiter-side events)\n";
  }

  out += "\n--- wakeup latency (permit grant -> Park return) ---\n";
  AppendF(&out,
          "edges: %zu matched, %" PRIu64 " unmatched unpark, %" PRIu64
          " unmatched resume\n",
          a.edges.size(), a.unmatched_unparks, a.unmatched_resumes);
  if (!a.edges.empty()) {
    std::vector<std::uint64_t> lat;
    lat.reserve(a.edges.size());
    for (const FlowEdge& e : a.edges) {
      lat.push_back(e.latency_ns);
    }
    std::sort(lat.begin(), lat.end());
    AppendF(&out, "min %s  p50 %s  p90 %s  max %s\n", Ns(lat.front()).c_str(),
            Ns(Percentile(lat, 0.5)).c_str(),
            Ns(Percentile(lat, 0.9)).c_str(), Ns(lat.back()).c_str());
  }

  out += "\n--- longest wakeup handoff chains ---\n";
  if (a.chains.empty()) {
    out += "(no chains: no thread both woke and was woken)\n";
  }
  // A long chain's interior is noise (hundreds of hops on a stampede
  // trace); print the head, elide the middle, keep the terminus.
  constexpr std::size_t kMaxRenderedHops = 12;
  for (const HandoffChain& c : a.chains) {
    AppendF(&out, "chain of %zu wakes spanning %s: t%" PRIu64,
            c.links.size(), Ns(c.span_ns).c_str(), c.links.front().waker_tid);
    for (std::size_t i = 0; i < c.links.size(); ++i) {
      if (c.links.size() > kMaxRenderedHops && i == kMaxRenderedHops - 1 &&
          i + 1 < c.links.size()) {
        AppendF(&out, " -> ... (%zu more) ",
                c.links.size() - kMaxRenderedHops);
        AppendF(&out, "-> t%" PRIu64, c.links.back().wakee_tid);
        break;
      }
      AppendF(&out, " -> t%" PRIu64, c.links[i].wakee_tid);
    }
    out += "\n";
  }

  out += "\n--- broadcast stampedes ---\n";
  AppendF(&out,
          "broadcasts: %" PRIu64 " (%" PRIu64
          " woke someone), woken total: %" PRIu64 ", max per broadcast: %" PRIu64
          "\n",
          a.broadcast.broadcasts, a.broadcast.waking_broadcasts,
          a.broadcast.woken_total, a.broadcast.max_woken);
  AppendF(&out, "stampede ratio (threads woken per waking broadcast): %.2f\n",
          a.broadcast.StampedeRatio());
  return out;
}

bool FormatBenchReport(const std::string& text, std::string* out,
                       std::string* error) {
  std::optional<Value> doc = Parse(text, error);
  if (!doc) {
    return false;
  }
  const Value* bench = doc->Find("bench");
  const Value* metrics = doc->Find("metrics");
  if (bench == nullptr || !bench->IsString() || metrics == nullptr ||
      !metrics->IsObject()) {
    if (error != nullptr) {
      *error = "not a BENCH_*.json report (missing bench/metrics)";
    }
    return false;
  }
  out->clear();
  AppendF(out, "=== taos-diag: bench report (%s) ===\n",
          bench->string.c_str());
  for (const char* key : {"lock_backend", "global_lock_mode", "num_cpus"}) {
    if (const Value* v = doc->Find(key)) {
      if (v->IsString()) {
        AppendF(out, "%s: %s\n", key, v->string.c_str());
      } else if (v->IsNumber()) {
        AppendF(out, "%s: %.0f\n", key, v->number);
      } else {
        AppendF(out, "%s: %s\n", key, v->boolean ? "true" : "false");
      }
    }
  }

  if (const Value* counters = metrics->Find("counters");
      counters != nullptr && counters->IsObject()) {
    *out += "counters:";
    for (const char* key :
         {"handoffs", "spurious_wakeups", "wakeup_waiting_hits",
          "park_futex_waits", "park_condvar_waits"}) {
      if (const Value* v = counters->Find(key); v != nullptr && v->IsNumber()) {
        AppendF(out, " %s=%.0f", key, v->number);
      }
    }
    *out += "\n";
  }

  const Value* hists = metrics->Find("histograms");
  if (hists == nullptr || !hists->IsObject()) {
    return true;
  }
  *out += "latency histograms (log2 ns buckets; p50/p90/p99 upper bounds):\n";
  for (const char* key : {"wakeup_latency_ns", "unpark_ns", "blocked_ns",
                          "lock_handoff_ns", "park_wait_ns"}) {
    const Value* h = hists->Find(key);
    if (h == nullptr || !h->IsArray()) {
      continue;
    }
    std::uint64_t total = 0;
    for (const Value& b : h->array) {
      total += b.IsNumber() ? static_cast<std::uint64_t>(b.number) : 0;
    }
    if (total == 0) {
      AppendF(out, "  %-18s (no samples)\n", key);
      continue;
    }
    // Bucket 0 holds value 0; bucket i holds [2^(i-1), 2^i). Report the
    // bucket upper bound the given quantile falls in.
    auto quantile_bound = [&](double q) -> std::uint64_t {
      const auto want = static_cast<std::uint64_t>(
          q * static_cast<double>(total) + 0.5);
      std::uint64_t seen = 0;
      for (std::size_t i = 0; i < h->array.size(); ++i) {
        seen += static_cast<std::uint64_t>(h->array[i].number);
        if (seen >= want) {
          return i == 0 ? 0 : (std::uint64_t{1} << i);
        }
      }
      return std::uint64_t{1} << (h->array.size() - 1);
    };
    AppendF(out, "  %-18s %8" PRIu64 " samples  p50<%s p90<%s p99<%s\n", key,
            total, Ns(quantile_bound(0.5)).c_str(),
            Ns(quantile_bound(0.9)).c_str(), Ns(quantile_bound(0.99)).c_str());
  }
  return true;
}

}  // namespace taos::diagtool
