// Offline analysis behind the taos-diag CLI: turns the artifacts the
// runtime already emits — flight-recorder Chrome traces (recorder.h) and
// BENCH_*.json reports (bench/bench_main.h) — into contention diagnoses:
// which objects threads waited on and for how long (holder vs waiter side),
// how long wakeups took from the waker's grant to the wakee running
// (the flow edges recorder.cc stamps), the longest wake-causality handoff
// chains, and how hard Broadcasts stampede.
//
// Kept as a library (taos_diag_core) separate from the CLI so the golden
// test (tests/taos_diag_golden_test.cc) can run the exact analysis over a
// checked-in trace. Everything here is deterministic in its input: no
// clocks, no environment.

#ifndef TAOS_TOOLS_DIAG_ANALYSIS_H_
#define TAOS_TOOLS_DIAG_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace taos::diagtool {

// Per-object wait attribution. "Waiter side" is the blocking ops (Acquire,
// Wait, P, AlertWait, AlertP) whose duration contains the de-scheduled
// time; "holder side" is the ops a holder runs against the object (Release,
// V, Signal, Broadcast).
struct ObjStats {
  std::uint64_t obj = 0;
  std::uint64_t wait_count = 0;
  std::uint64_t wait_ns = 0;
  std::uint64_t max_wait_ns = 0;
  std::uint64_t holder_count = 0;
  std::uint64_t holder_ns = 0;
  // op name -> count, sorted by name (deterministic).
  std::vector<std::pair<std::string, std::uint64_t>> waiter_ops;
};

// One completed wakeup-causality edge: the waker's Unpark and the wakee's
// ParkResume carrying the same nonzero flow id.
struct FlowEdge {
  std::uint64_t flow = 0;
  std::uint64_t waker_tid = 0;
  std::uint64_t wakee_tid = 0;
  std::uint64_t grant_ns = 0;    // Unpark ts: the permit-grant instant
  std::uint64_t latency_ns = 0;  // ParkResume dur: grant to running
  std::uint64_t resume_ns() const { return grant_ns + latency_ns; }
};

// A handoff chain: wake edges where each link's waker is the previous
// link's wakee and runs after it resumed (t1 wakes t2, t2 then wakes t3...).
struct HandoffChain {
  std::vector<FlowEdge> links;
  std::uint64_t span_ns = 0;  // first grant to last resume
};

struct BroadcastStats {
  std::uint64_t broadcasts = 0;         // Broadcast events seen
  std::uint64_t waking_broadcasts = 0;  // ... that granted >= 1 permit
  std::uint64_t woken_total = 0;        // permits granted inside their slices
  std::uint64_t max_woken = 0;
  // Threads woken per waking broadcast — the stampede ratio. A broadcast
  // that wakes W threads into one free mutex makes W-1 of them requeue.
  double StampedeRatio() const {
    return waking_broadcasts == 0
               ? 0.0
               : static_cast<double>(woken_total) /
                     static_cast<double>(waking_broadcasts);
  }
};

struct TraceAnalysis {
  std::uint64_t total_events = 0;  // "X" events
  std::uint64_t dropped_events = 0;
  // otherData string pairs (lock_backend, waitq, ... — SetTraceMetadata).
  std::vector<std::pair<std::string, std::string>> metadata;
  std::vector<ObjStats> objects;  // sorted by wait_ns descending, obj asc
  std::vector<FlowEdge> edges;    // matched pairs, sorted by grant_ns
  std::uint64_t unmatched_unparks = 0;
  std::uint64_t unmatched_resumes = 0;
  BroadcastStats broadcast;
  std::vector<HandoffChain> chains;  // longest first, at most kMaxChains
};

inline constexpr std::size_t kMaxChains = 3;

// Parses and analyzes a drained Chrome trace. Returns false (with *error
// set) if the text is not a trace the recorder could have produced.
bool AnalyzeTraceJson(const std::string& text, TraceAnalysis* out,
                      std::string* error);

// Renders the analysis; `top` caps the contended-object table.
std::string FormatTraceReport(const TraceAnalysis& analysis, std::size_t top);

// Summarizes a BENCH_*.json report: the run's configuration stamps plus the
// latency histograms that matter for wakeup diagnosis (wakeup_latency_ns,
// unpark_ns, blocked_ns, lock_handoff_ns) and the handoff counters.
// Returns false (with *error set) if the document lacks the bench shape.
bool FormatBenchReport(const std::string& text, std::string* out,
                       std::string* error);

}  // namespace taos::diagtool

#endif  // TAOS_TOOLS_DIAG_ANALYSIS_H_
