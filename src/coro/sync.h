// The Threads synchronization primitives on the coroutine (single-process
// Unix) implementation.
//
// With cooperative coroutines there is no preemption and no parallelism:
// control transfers only at blocking points. The implementation therefore
// needs none of the Firefly machinery — no lock bit, no global spin-lock,
// no eventcount — and mutex release can hand off directly. The *interface
// specification* (src/spec) is identical; the contrast between this file
// and src/firefly/sync.cc is the paper's point about specifications hiding
// implementation structure.
//
// All objects belong to one Scheduler's coroutines and must outlive every
// Run() that uses them.

#ifndef TAOS_SRC_CORO_SYNC_H_
#define TAOS_SRC_CORO_SYNC_H_

#include <vector>

#include "src/base/alerted.h"
#include "src/base/intrusive_queue.h"
#include "src/coro/scheduler.h"

namespace taos::coro {

class Condition;

class Mutex {
 public:
  Mutex() = default;
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Acquire();
  void Release();

  Coro* HolderForDebug() const { return holder_; }
  spec::ObjId id() const { return id_; }

 private:
  friend class Condition;
  friend void AlertWait(Mutex& m, Condition& c);

  void EnsureId(Scheduler& sched);
  void AcquireInternal(const spec::Action& emit);

  Coro* holder_ = nullptr;
  IntrusiveQueue<Coro> queue_;
  spec::ObjId id_ = 0;  // assigned lazily at first use
};

// LOCK e DO ... END
class Lock {
 public:
  explicit Lock(Mutex& m) : m_(m) { m_.Acquire(); }
  ~Lock() { m_.Release(); }
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

 private:
  Mutex& m_;
};

class Condition {
 public:
  Condition() = default;
  ~Condition();
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  void Wait(Mutex& m);
  void Signal();
  void Broadcast();

  spec::ObjId id() const { return id_; }

 private:
  friend void Alert(CoroHandle t);
  friend void AlertWait(Mutex& m, Condition& c);

  void EnsureId(Scheduler& sched);
  // The mutex-release half of Wait's Enqueue action.
  static void ReleaseForWait(Mutex& m, Scheduler& sched);
  bool ErasePendingRaise(Coro* c);

  IntrusiveQueue<Coro> queue_;
  // Coroutines Alert dequeued that have not yet performed their
  // AlertResume: spec-wise still members of c, so Signal/Broadcast must
  // count them in their removal sets (cf. the corrected AlertWait spec).
  std::vector<Coro*> pending_raise_;
  spec::ObjId id_ = 0;
};

class Semaphore {
 public:
  explicit Semaphore(bool initially_available = true)
      : available_(initially_available) {}
  ~Semaphore();
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void P();
  void V();

  bool AvailableForDebug() const { return available_; }
  spec::ObjId id() const { return id_; }

 private:
  friend void Alert(CoroHandle t);
  friend void AlertP(Semaphore& s);

  void EnsureId(Scheduler& sched);

  bool available_;
  IntrusiveQueue<Coro> queue_;
  spec::ObjId id_ = 0;
};

void Alert(CoroHandle t);
bool TestAlert();
void AlertWait(Mutex& m, Condition& c);  // raises taos::Alerted
void AlertP(Semaphore& s);               // raises taos::Alerted

}  // namespace taos::coro

#endif  // TAOS_SRC_CORO_SYNC_H_
