// The paper's *other* implementation of the Threads package:
//
//   "We have two implementations of the Threads package. One runs within
//    any single process on a normal Unix system. It is implemented using a
//    co-routine mechanism for blocking one thread and resuming another."
//
// This module is that implementation: threads are coroutines (ucontext
// contexts with private stacks) multiplexed onto the one OS thread that
// calls Run(). There is no preemption and no parallelism; control moves
// only at blocking operations and explicit Yields, so the synchronization
// primitives (src/coro/sync.h) need none of the Firefly machinery — no
// lock bit, no spin-lock, no eventcount. Mutex release hands off directly;
// the wakeup-waiting race cannot occur because nothing runs between a
// Wait's release-mutex and its block. The same *specification* governs both
// implementations — the point the paper makes about specifications
// insulating clients from implementation structure.

#ifndef TAOS_SRC_CORO_SCHEDULER_H_
#define TAOS_SRC_CORO_SCHEDULER_H_

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/intrusive_queue.h"
#include "src/spec/state.h"
#include "src/spec/trace.h"

namespace taos::coro {

class Scheduler;

// Thrown into blocked coroutines during scheduler teardown so their stacks
// unwind (running destructors) before the stacks are freed.
struct CoroKilled {};

struct Coro {
  QueueNode queue_node;  // run queue or a wait queue

  Scheduler* scheduler = nullptr;
  spec::ThreadId id = spec::kNil;
  std::string name;

  enum class State : std::uint8_t { kReady, kRunning, kBlocked, kDone };
  State state = State::kReady;
  bool started = false;

  bool alerted = false;      // membership in the spec's `alerts` set
  bool alertable = false;    // blocked in AlertWait / AlertP
  bool alert_woken = false;  // dequeued by Alert
  void* blocked_obj = nullptr;
  enum class BlockKind : std::uint8_t { kNone, kMutex, kSemaphore, kCondition, kJoin };
  BlockKind block_kind = BlockKind::kNone;

  bool killed = false;
  bool ended_by_alert = false;

  IntrusiveQueue<Coro> joiners;  // coroutines waiting for this one to end

  std::function<void()> body;
  ucontext_t ctx{};
  std::unique_ptr<char[]> stack;

  Coro() = default;
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
};

struct CoroHandle {
  Coro* coro = nullptr;
  spec::ThreadId id() const { return coro ? coro->id : spec::kNil; }
  bool operator==(const CoroHandle&) const = default;
};

struct CoroRunResult {
  bool completed = false;
  bool deadlock = false;
  std::vector<std::string> stuck;  // names of forever-blocked coroutines

  std::string ToString() const;
};

class Scheduler {
 public:
  explicit Scheduler(std::size_t stack_bytes = 128 * 1024);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a coroutine (ready to run). Callable before Run() and from
  // inside running coroutines.
  CoroHandle Fork(std::function<void()> body, std::string name = "");

  // Runs coroutines round-robin until all complete or none can proceed.
  // May be called repeatedly (e.g. after Fork-ing more work).
  CoroRunResult Run();

  // ---- called from coroutine context ----

  // Cooperative reschedule: goes to the back of the run queue.
  void Yield();

  // Blocks until the coroutine finishes. Returns immediately if it has.
  void Join(CoroHandle h);

  // The running coroutine.
  static Coro* Current();

  // Like Current(), but null when called outside coroutine context.
  static Coro* CurrentOrNull();

  // The number of context switches performed (for the E14 bench).
  std::uint64_t switches() const { return switches_; }

  // Spec tracing: when set, every synchronization operation emits its
  // atomic action. Cooperative scheduling makes the emission trivially
  // exact — nothing runs between an action and its emission.
  void SetTrace(spec::TraceSink* sink) { trace_ = sink; }
  spec::TraceSink* trace() const { return trace_; }
  void Emit(const spec::Action& action) {
    if (trace_ != nullptr) {
      trace_->Emit(action);
    }
  }

  // Fresh ObjId for a coro::Mutex/Condition/Semaphore.
  spec::ObjId NextObjId() { return next_obj_id_++; }

  // The scheduler owning the coroutine currently executing (valid inside
  // coroutine context and while Run() is active on this thread).
  static Scheduler* CurrentScheduler();

  bool ShuttingDown() const { return shutting_down_; }

  // True once Run() detected a deadlock (and unwound the stragglers).
  // Synchronization-object destructors tolerate leftover queue entries on
  // an aborted scheduler.
  bool Aborted() const { return aborted_; }

  // ---- used by the synchronization primitives ----

  // The caller must already be enqueued on some wait queue (or marked with
  // its BlockKind); suspends until MakeReady. Throws CoroKilled if the
  // scheduler is being destroyed.
  void BlockSelf();

  // Moves a blocked coroutine to the run queue.
  void MakeReady(Coro* c);

 private:
  static void Trampoline();
  void SwitchToScheduler();
  void StartOrResume(Coro* c);
  void FinishCurrent();  // marks done, wakes joiners; runs on the coro stack

  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<Coro>> coros_;
  IntrusiveQueue<Coro> run_queue_;
  Coro* current_ = nullptr;
  ucontext_t main_ctx_{};
  spec::ThreadId next_id_ = 1;
  spec::ObjId next_obj_id_ = 1;
  spec::TraceSink* trace_ = nullptr;
  std::uint64_t switches_ = 0;
  bool shutting_down_ = false;
  bool running_ = false;
  bool aborted_ = false;
};

}  // namespace taos::coro

#endif  // TAOS_SRC_CORO_SCHEDULER_H_
