#include "src/coro/scheduler.h"

#include <sstream>

#include "src/base/alerted.h"
#include "src/base/check.h"

namespace taos::coro {

namespace {
thread_local Scheduler* tls_scheduler = nullptr;
thread_local Coro* tls_current = nullptr;
}  // namespace

std::string CoroRunResult::ToString() const {
  std::ostringstream os;
  if (completed) {
    os << "completed";
  } else if (deadlock) {
    os << "DEADLOCK (stuck:";
    for (const std::string& n : stuck) {
      os << " " << n;
    }
    os << ")";
  } else {
    os << "not run";
  }
  return os.str();
}

Scheduler::Scheduler(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {
  TAOS_CHECK(stack_bytes_ >= 16 * 1024);
}

Scheduler::~Scheduler() {
  // Started coroutines are always fully unwound inside Run() (a deadlocked
  // Run kills its stragglers before returning, while the caller's
  // synchronization objects are still alive). Anything left here never
  // began executing its body, so there is nothing on its stack to unwind.
  shutting_down_ = true;
  while (run_queue_.PopFront() != nullptr) {
  }
  for (auto& c : coros_) {
    TAOS_CHECK(c->state == Coro::State::kDone || !c->started);
    if (c->queue_node.InQueue()) {
      // Drained above or still parked on a caller queue that died first;
      // either way sever it.
      c->queue_node.prev = nullptr;
      c->queue_node.next = nullptr;
    }
    while (c->joiners.PopFront() != nullptr) {
    }
  }
}

CoroHandle Scheduler::Fork(std::function<void()> body, std::string name) {
  auto coro = std::make_unique<Coro>();
  Coro* c = coro.get();
  c->scheduler = this;
  c->id = next_id_++;
  c->name = name.empty() ? ("coro" + std::to_string(c->id)) : std::move(name);
  c->body = std::move(body);
  c->stack = std::make_unique<char[]>(stack_bytes_);
  c->state = Coro::State::kReady;
  run_queue_.PushBack(c);
  coros_.push_back(std::move(coro));
  return CoroHandle{c};
}

Coro* Scheduler::Current() {
  TAOS_CHECK(tls_current != nullptr);
  return tls_current;
}

Coro* Scheduler::CurrentOrNull() { return tls_current; }

Scheduler* Scheduler::CurrentScheduler() {
  TAOS_CHECK(tls_scheduler != nullptr);
  return tls_scheduler;
}

void Scheduler::Trampoline() {
  Scheduler* sched = tls_scheduler;
  Coro* self = tls_current;
  try {
    self->body();
  } catch (const CoroKilled&) {
  } catch (const Alerted&) {
    self->ended_by_alert = true;
  }
  sched->FinishCurrent();
  // Returning ends the context; uc_link resumes the scheduler.
}

void Scheduler::FinishCurrent() {
  Coro* self = tls_current;
  self->state = Coro::State::kDone;
  while (Coro* j = self->joiners.PopFront()) {
    j->block_kind = Coro::BlockKind::kNone;
    MakeReady(j);
  }
}

void Scheduler::MakeReady(Coro* c) {
  if (shutting_down_) {
    // The straggler-killing loop will reach it; do not reschedule.
    c->block_kind = Coro::BlockKind::kNone;
    return;
  }
  TAOS_CHECK(c->state == Coro::State::kBlocked);
  c->state = Coro::State::kReady;
  c->block_kind = Coro::BlockKind::kNone;
  c->blocked_obj = nullptr;
  run_queue_.PushBack(c);
}

void Scheduler::SwitchToScheduler() {
  Coro* self = tls_current;
  swapcontext(&self->ctx, &main_ctx_);
  // Resumed (possibly much later, possibly to be killed).
  if (self->killed) {
    self->killed = false;  // deliver exactly once; unwind code may block
    throw CoroKilled{};
  }
}

void Scheduler::BlockSelf() {
  Coro* self = Current();
  if (shutting_down_) {
    return;  // unwinding: pretend the wait was satisfied
  }
  TAOS_CHECK(self->state == Coro::State::kRunning);
  self->state = Coro::State::kBlocked;
  SwitchToScheduler();
}

void Scheduler::Yield() {
  Coro* self = Current();
  if (shutting_down_) {
    return;
  }
  self->state = Coro::State::kReady;
  run_queue_.PushBack(self);
  SwitchToScheduler();
}

void Scheduler::Join(CoroHandle h) {
  TAOS_CHECK(h.coro != nullptr);
  Coro* self = Current();
  if (h.coro->state == Coro::State::kDone || shutting_down_) {
    return;
  }
  h.coro->joiners.PushBack(self);
  self->block_kind = Coro::BlockKind::kJoin;
  self->blocked_obj = h.coro;
  BlockSelf();
}

void Scheduler::StartOrResume(Coro* c) {
  tls_current = c;
  current_ = c;
  c->state = Coro::State::kRunning;
  ++switches_;
  if (!c->started) {
    c->started = true;
    getcontext(&c->ctx);
    c->ctx.uc_stack.ss_sp = c->stack.get();
    c->ctx.uc_stack.ss_size = stack_bytes_;
    c->ctx.uc_link = &main_ctx_;
    makecontext(&c->ctx, &Scheduler::Trampoline, 0);
  }
  swapcontext(&main_ctx_, &c->ctx);
  tls_current = nullptr;
  current_ = nullptr;
}

CoroRunResult Scheduler::Run() {
  TAOS_CHECK(tls_current == nullptr);  // not from inside a coroutine
  TAOS_CHECK(!shutting_down_);
  Scheduler* prev = tls_scheduler;
  tls_scheduler = this;
  running_ = true;

  while (Coro* c = run_queue_.PopFront()) {
    StartOrResume(c);
  }

  CoroRunResult result;
  result.completed = true;
  for (const auto& c : coros_) {
    if (c->state != Coro::State::kDone) {
      result.completed = false;
      result.stuck.push_back(c->name);
    }
  }
  result.deadlock = !result.completed;

  if (result.deadlock) {
    // Unwind the stuck coroutines now, while the wait queues they sit on
    // (owned by the caller) are still alive. The scheduler is dead
    // afterwards.
    aborted_ = true;
    shutting_down_ = true;
    for (auto& c : coros_) {
      if (c->state == Coro::State::kBlocked) {
        c->killed = true;
        StartOrResume(c.get());
      }
    }
  }

  running_ = false;
  tls_scheduler = prev;
  return result;
}

}  // namespace taos::coro
