#include "src/coro/sync.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/spec/action.h"

namespace taos::coro {

namespace {

// Destructor helper: a non-empty wait queue is only legal on a scheduler
// that aborted (deadlocked) — its stragglers were unwound but their queue
// nodes stay linked until the owning object dies.
void DrainOrCheckEmpty(IntrusiveQueue<Coro>& queue) {
  if (queue.Empty()) {
    return;
  }
  Scheduler* sched = queue.Front()->scheduler;
  TAOS_CHECK(sched->Aborted() || sched->ShuttingDown());
  while (queue.PopFront() != nullptr) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

Mutex::~Mutex() { DrainOrCheckEmpty(queue_); }

void Mutex::EnsureId(Scheduler& sched) {
  if (id_ == 0) {
    id_ = sched.NextObjId();
  }
}

void Mutex::Acquire() {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  EnsureId(sched);
  AcquireInternal(spec::MakeAcquire(self->id, id_));
}

void Mutex::AcquireInternal(const spec::Action& emit) {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  if (sched.ShuttingDown()) {
    return;
  }
  if (holder_ == nullptr) {
    holder_ = self;
    sched.Emit(emit);
    return;
  }
  TAOS_CHECK(holder_ != self);  // recursive Acquire would self-deadlock
  queue_.PushBack(self);
  self->block_kind = Coro::BlockKind::kMutex;
  self->blocked_obj = this;
  self->alertable = false;
  sched.BlockSelf();
  // Direct handoff: Release installed us as holder before readying us.
  TAOS_CHECK(holder_ == self || sched.ShuttingDown());
  sched.Emit(emit);
}

void Mutex::Release() {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  EnsureId(sched);
  TAOS_CHECK(holder_ == self || sched.ShuttingDown());  // REQUIRES m = SELF
  if (!sched.ShuttingDown()) {
    sched.Emit(spec::MakeRelease(self->id, id_));
  }
  Coro* next = queue_.PopFront();
  holder_ = next;  // nullptr when no one waits
  if (next != nullptr) {
    sched.MakeReady(next);
  }
}

// ---------------------------------------------------------------------------
// Condition
// ---------------------------------------------------------------------------

Condition::~Condition() {
  if (!pending_raise_.empty()) {
    Scheduler* sched = pending_raise_.front()->scheduler;
    TAOS_CHECK(sched->Aborted() || sched->ShuttingDown());
    pending_raise_.clear();
  }
  DrainOrCheckEmpty(queue_);
}

void Condition::EnsureId(Scheduler& sched) {
  if (id_ == 0) {
    id_ = sched.NextObjId();
  }
}

bool Condition::ErasePendingRaise(Coro* c) {
  auto it = std::find(pending_raise_.begin(), pending_raise_.end(), c);
  if (it == pending_raise_.end()) {
    return false;
  }
  pending_raise_.erase(it);
  return true;
}

void Condition::Wait(Mutex& m) {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  EnsureId(sched);
  m.EnsureId(sched);
  TAOS_CHECK(m.holder_ == self || sched.ShuttingDown());  // REQUIRES m = SELF
  // Enqueue and release are one atomic action here by construction: no
  // other coroutine runs until BlockSelf switches away.
  queue_.PushBack(self);
  self->block_kind = Coro::BlockKind::kCondition;
  self->blocked_obj = this;
  self->alertable = false;
  sched.Emit(spec::MakeEnqueue(self->id, m.id_, id_));
  ReleaseForWait(m, sched);
  sched.BlockSelf();
  m.AcquireInternal(spec::MakeResume(self->id, m.id_, id_));
}

void Condition::ReleaseForWait(Mutex& m, Scheduler& sched) {
  // The mutex-release half of the Enqueue action (already emitted).
  Coro* next = m.queue_.PopFront();
  m.holder_ = next;
  if (next != nullptr) {
    sched.MakeReady(next);
  }
}

void Condition::Signal() {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  EnsureId(sched);
  spec::ThreadSet removed;
  if (Coro* t = queue_.PopFront()) {
    removed = removed.Insert(t->id);
    t->scheduler->MakeReady(t);
  }
  // Alert-dequeued coroutines that have not raised yet are still spec-
  // members of c; this Signal removes them (they were going to leave via
  // Alerted anyway — the paper's "a Signal may be consumed by a thread
  // that then raises").
  for (Coro* p : pending_raise_) {
    removed = removed.Insert(p->id);
  }
  pending_raise_.clear();
  // No preemption means no wakeup-waiting window: c is exactly queue +
  // pending raisers, so the removal set is empty iff c was empty.
  sched.Emit(spec::MakeSignal(self->id, id_, removed));
}

void Condition::Broadcast() {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  EnsureId(sched);
  spec::ThreadSet removed;
  while (Coro* t = queue_.PopFront()) {
    removed = removed.Insert(t->id);
    t->scheduler->MakeReady(t);
  }
  for (Coro* p : pending_raise_) {
    removed = removed.Insert(p->id);
  }
  pending_raise_.clear();
  sched.Emit(spec::MakeBroadcast(self->id, id_, removed));
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

Semaphore::~Semaphore() { DrainOrCheckEmpty(queue_); }

void Semaphore::EnsureId(Scheduler& sched) {
  if (id_ == 0) {
    id_ = sched.NextObjId();
  }
}

void Semaphore::P() {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  EnsureId(sched);
  if (sched.ShuttingDown()) {
    return;
  }
  if (available_) {
    available_ = false;
    sched.Emit(spec::MakeP(self->id, id_));
    return;
  }
  queue_.PushBack(self);
  self->block_kind = Coro::BlockKind::kSemaphore;
  self->blocked_obj = this;
  self->alertable = false;
  sched.BlockSelf();
  // V transferred the token to us directly (semaphore stays unavailable).
  if (!sched.ShuttingDown()) {
    sched.Emit(spec::MakeP(self->id, id_));
  }
}

void Semaphore::V() {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  EnsureId(sched);
  if (!sched.ShuttingDown()) {
    sched.Emit(spec::MakeV(self->id, id_));
  }
  if (Coro* t = queue_.PopFront()) {
    t->scheduler->MakeReady(t);  // hand the token over
  } else {
    available_ = true;
  }
}

// ---------------------------------------------------------------------------
// Alerting
// ---------------------------------------------------------------------------

void Alert(CoroHandle h) {
  TAOS_CHECK(h.coro != nullptr);
  Coro* t = h.coro;
  t->alerted = true;  // alerts := insert(alerts, t)
  if (t->state == Coro::State::kBlocked && t->alertable) {
    switch (t->block_kind) {
      case Coro::BlockKind::kSemaphore:
        static_cast<Semaphore*>(t->blocked_obj)->queue_.Remove(t);
        break;
      case Coro::BlockKind::kCondition: {
        auto* c = static_cast<Condition*>(t->blocked_obj);
        c->queue_.Remove(t);
        // t will raise; it stays a spec-member of c until its AlertResume.
        c->pending_raise_.push_back(t);
        break;
      }
      default:
        TAOS_PANIC("alertable coroutine blocked on a non-alertable object");
    }
    t->alert_woken = true;
    t->scheduler->MakeReady(t);
  }
  // Alert's ENSURES does not mention SELF, so when it is invoked from the
  // driver thread (between Runs) rather than a coroutine, the emitter id is
  // immaterial; use the target's own id as a stand-in.
  Scheduler& sched = *t->scheduler;
  Coro* current = Scheduler::CurrentOrNull();
  sched.Emit(spec::MakeAlert(current != nullptr ? current->id : t->id,
                             t->id));
}

bool TestAlert() {
  Coro* self = Scheduler::Current();
  const bool b = self->alerted;
  self->alerted = false;
  self->scheduler->Emit(spec::MakeTestAlert(self->id, b));
  return b;
}

void AlertWait(Mutex& m, Condition& c) {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  c.EnsureId(sched);
  m.EnsureId(sched);
  TAOS_CHECK(m.holder_ == self || sched.ShuttingDown());  // REQUIRES m = SELF
  if (self->alerted && !sched.ShuttingDown()) {
    // Enqueue; AlertResume with nothing in between: net effect is raising
    // with m reacquired and c unchanged.
    sched.Emit(spec::MakeAlertEnqueue(self->id, m.id_, c.id_));
    self->alerted = false;
    sched.Emit(spec::MakeAlertResumeRaises(self->id, m.id_, c.id_));
    throw Alerted();
  }
  c.queue_.PushBack(self);
  self->block_kind = Coro::BlockKind::kCondition;
  self->blocked_obj = &c;
  self->alertable = true;
  self->alert_woken = false;
  sched.Emit(spec::MakeAlertEnqueue(self->id, m.id_, c.id_));
  Condition::ReleaseForWait(m, sched);
  sched.BlockSelf();
  const bool raise = self->alert_woken || self->alerted;
  if (raise && !sched.ShuttingDown()) {
    m.AcquireInternal(
        spec::MakeAlertResumeRaises(self->id, m.id_, c.id_));
    // Leave c: same resume window as the emission above (no coroutine can
    // run in between). No-op if a Signal already removed us from c while
    // we waited to reacquire.
    c.ErasePendingRaise(self);
    self->alerted = false;
    self->alert_woken = false;
    throw Alerted();
  }
  m.AcquireInternal(
      spec::MakeAlertResumeReturns(self->id, m.id_, c.id_));
  self->alert_woken = false;
}

void AlertP(Semaphore& s) {
  Coro* self = Scheduler::Current();
  Scheduler& sched = *self->scheduler;
  s.EnsureId(sched);
  if (sched.ShuttingDown()) {
    return;
  }
  if (self->alerted) {
    self->alerted = false;
    sched.Emit(spec::MakeAlertPRaises(self->id, s.id_));
    throw Alerted();
  }
  if (s.available_) {
    s.available_ = false;
    sched.Emit(spec::MakeAlertPReturns(self->id, s.id_));
    return;
  }
  s.queue_.PushBack(self);
  self->block_kind = Coro::BlockKind::kSemaphore;
  self->blocked_obj = &s;
  self->alertable = true;
  self->alert_woken = false;
  sched.BlockSelf();
  if (self->alert_woken && !sched.ShuttingDown()) {
    self->alert_woken = false;
    self->alerted = false;
    sched.Emit(spec::MakeAlertPRaises(self->id, s.id_));
    throw Alerted();
  }
  self->alert_woken = false;
  // Otherwise V handed us the token.
  if (!sched.ShuttingDown()) {
    sched.Emit(spec::MakeAlertPReturns(self->id, s.id_));
  }
}

}  // namespace taos::coro
