#include "src/firefly/machine.h"

#include <sstream>

#include "src/base/alerted.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace taos::firefly {

namespace {
thread_local Fiber* tls_fiber = nullptr;
}  // namespace

std::string RunResult::ToString() const {
  std::ostringstream os;
  if (completed) {
    os << "completed";
  } else if (deadlock) {
    os << "DEADLOCK (stuck:";
    for (const std::string& n : stuck_fibers) {
      os << " " << n;
    }
    os << ")";
  } else if (hit_step_limit) {
    os << "step limit";
  } else {
    os << "not run";
  }
  os << " after " << steps << " steps";
  return os.str();
}

Machine::Machine(MachineConfig config) : config_(config) {
  TAOS_CHECK(config_.cpus >= 1);
  if (config_.chooser != nullptr) {
    chooser_ = config_.chooser;
  } else {
    owned_chooser_ = std::make_unique<RandomChooser>(config_.seed);
    chooser_ = owned_chooser_.get();
  }
  cpu_fiber_.assign(static_cast<std::size_t>(config_.cpus), nullptr);
}

Machine::~Machine() {
  shutting_down_ = true;
  // Unwind still-parked fibers one at a time (so their teardown is
  // serialized), then reap everything.
  for (auto& f : fibers_) {
    if (f->os.joinable() && f->run_state != Fiber::Run::kDone) {
      f->go.release();
      f->os.join();
    }
  }
  for (auto& f : fibers_) {
    if (f->os.joinable()) {
      f->os.join();
    }
  }
  // Drain the ready pools so queue destructors see empty lists.
  for (auto& q : ready_pool_) {
    while (q.PopFront() != nullptr) {
    }
  }
}

FiberHandle Machine::Fork(std::function<void()> body, int priority,
                          std::string name) {
  TAOS_CHECK(priority >= 0 && priority < kMaxPriority);
  auto fiber = std::make_unique<Fiber>();
  Fiber* f = fiber.get();
  f->machine = this;
  f->id = next_thread_id_++;
  f->priority = priority;
  f->base_priority = priority;
  f->name = name.empty() ? ("fiber" + std::to_string(f->id)) : std::move(name);
  f->body = std::move(body);
  f->run_state = Fiber::Run::kReadyPool;
  ready_pool_[priority].PushBack(f);
  f->os = std::thread([this, f] { FiberMain(f); });
  fibers_.push_back(std::move(fiber));
  return FiberHandle{f};
}

void Machine::FiberMain(Fiber* f) {
  tls_fiber = f;
  bool clean = true;
  try {
    WaitForGo(f);
    f->body();
  } catch (const FiberKilled&) {
    clean = false;
  } catch (const Alerted&) {
    f->ended_by_alert = true;
  }
  f->run_state = Fiber::Run::kDone;
  if (f->cpu >= 0) {
    cpu_fiber_[static_cast<std::size_t>(f->cpu)] = nullptr;
    f->cpu = -1;
  }
  if (clean) {
    driver_sem_.release();
  }
}

Fiber* Machine::Self() {
  TAOS_CHECK(tls_fiber != nullptr);
  return tls_fiber;
}

void Machine::WaitForGo(Fiber* f) {
  f->go.acquire();
  if (shutting_down_) {
    throw FiberKilled{};
  }
}

void Machine::YieldToDriver(Fiber* f) {
  driver_sem_.release();
  WaitForGo(f);
}

void Machine::Step() {
  Fiber* f = Self();
  if (shutting_down_) {
    return;  // tearing down: no more scheduling, let the unwind proceed
  }
  ++steps_;
  ++f->slice_steps;
  MaybePreempt(f);
  YieldToDriver(f);
}

void Machine::MaybePreempt(Fiber* f) {
  if (config_.time_slice == 0 || f->slice_steps < config_.time_slice) {
    return;
  }
  if (spin_holder_ == f) {
    return;  // never preempt inside the Nub (interrupts masked)
  }
  if (!ReadyFiberAtOrAbove(f->priority)) {
    return;
  }
  // Timer interrupt: rotate this fiber through the ready pool.
  ++preemptions_;
  f->slice_steps = 0;
  cpu_fiber_[static_cast<std::size_t>(f->cpu)] = nullptr;
  f->cpu = -1;
  f->run_state = Fiber::Run::kReadyPool;
  ready_pool_[f->priority].PushBack(f);
  // Fall through: the YieldToDriver in Step() parks us until re-dispatched.
}

bool Machine::ReadyFiberAtOrAbove(int priority) const {
  for (int p = kMaxPriority - 1; p >= priority; --p) {
    if (!ready_pool_[p].Empty()) {
      return true;
    }
  }
  return false;
}

void Machine::SpinAcquire() {
  Fiber* f = Self();
  for (;;) {
    if (shutting_down_) {
      return;
    }
    Step();  // the test-and-set instruction
    if (!spin_bit_) {
      spin_bit_ = true;
      spin_holder_ = f;
      return;
    }
    // Busy-wait. The driver will not select us again until the bit clears;
    // the skipped retries have no visible effect.
    ++spin_contentions_;
    f->run_state = Fiber::Run::kSpinning;
    YieldToDriver(f);
    // Back on the processor with the lock (momentarily) free: retry.
  }
}

void Machine::SpinRelease() {
  if (shutting_down_) {
    return;
  }
  Fiber* f = Self();
  TAOS_CHECK(spin_holder_ == f);
  Step();  // the clear instruction
  spin_bit_ = false;
  spin_holder_ = nullptr;
}

void Machine::DescheduleSelf() {
  Fiber* f = Self();
  if (shutting_down_) {
    return;
  }
  TAOS_CHECK(spin_holder_ == f);
  TAOS_CHECK(f->block_kind != Fiber::BlockKind::kNone);
  // De-schedule: free the processor, hand back the spin-lock, and wait for
  // MakeReady + dispatch. Within the simulation this whole transition is one
  // step (nothing else runs between its parts).
  Step();
  f->run_state = Fiber::Run::kBlocked;
  cpu_fiber_[static_cast<std::size_t>(f->cpu)] = nullptr;
  f->cpu = -1;
  spin_bit_ = false;
  spin_holder_ = nullptr;
  YieldToDriver(f);
}

void Machine::MakeReady(Fiber* f) {
  if (shutting_down_) {
    return;
  }
  TAOS_CHECK(spin_holder_ == Self());
  TAOS_CHECK(f->run_state == Fiber::Run::kBlocked);
  ReadyCommon(f);
}

void Machine::ReadyCommon(Fiber* f) {
  f->block_kind = Fiber::BlockKind::kNone;
  f->blocked_obj = nullptr;
  // A grant (or alert) that readies the fiber first disarms its deadline;
  // the clock interrupt only ever expires fibers still marked timed.
  f->timed = false;
  f->timeout_dequeue = nullptr;
  f->run_state = Fiber::Run::kReadyPool;
  f->slice_steps = 0;
  ready_pool_[f->priority].PushBack(f);
}

void Machine::ExpireDueTimedWaits() {
  if (spin_bit_) {
    return;  // a fiber is inside the Nub; the interrupt stays masked
  }
  for (auto& f : fibers_) {
    if (f->run_state != Fiber::Run::kBlocked || !f->timed ||
        f->deadline_step > steps_) {
      continue;
    }
    TAOS_CHECK(f->timeout_dequeue != nullptr);
    f->timeout_dequeue(f.get());
    f->timeout_woken = true;
    ++timer_expiries_;
    obs::Inc(obs::Counter::kTimersExpired);
    ReadyCommon(f.get());
  }
}

bool Machine::JumpToNextDeadline() {
  std::uint64_t earliest = UINT64_MAX;
  for (const auto& f : fibers_) {
    if (f->run_state == Fiber::Run::kBlocked && f->timed &&
        f->deadline_step < earliest) {
      earliest = f->deadline_step;
    }
  }
  if (earliest == UINT64_MAX) {
    return false;
  }
  // The machine is idle until the next clock interrupt: virtual time skips
  // straight to it. (If nothing was runnable the spin-lock is free — a
  // holder would be on a processor — so the expiry fires next iteration.)
  if (steps_ < earliest) {
    steps_ = earliest;
  }
  return true;
}

void Machine::SetFiberPriority(Fiber* f, int priority) {
  if (shutting_down_) {
    return;
  }
  TAOS_CHECK(priority >= 0 && priority < kMaxPriority);
  if (f->priority == priority) {
    return;
  }
  if (f->run_state == Fiber::Run::kReadyPool) {
    ready_pool_[f->priority].Remove(f);
    f->priority = priority;
    ready_pool_[priority].PushBack(f);
  } else {
    f->priority = priority;
  }
}

void Machine::Dispatch() {
  for (std::size_t cpu = 0; cpu < cpu_fiber_.size(); ++cpu) {
    if (cpu_fiber_[cpu] != nullptr) {
      continue;
    }
    // Highest priority first; FIFO within a priority.
    for (int p = kMaxPriority - 1; p >= 0; --p) {
      if (Fiber* f = ready_pool_[p].PopFront()) {
        f->run_state = Fiber::Run::kOnCpu;
        f->cpu = static_cast<int>(cpu);
        if (f->last_cpu >= 0 && f->last_cpu != f->cpu) {
          ++migrations_;
        }
        f->last_cpu = f->cpu;
        f->slice_steps = 0;
        cpu_fiber_[cpu] = f;
        break;
      }
    }
  }
}

void Machine::CollectRunnable(std::vector<Fiber*>* out) const {
  out->clear();
  for (Fiber* f : cpu_fiber_) {
    if (f == nullptr) {
      continue;
    }
    if (f->run_state == Fiber::Run::kOnCpu) {
      out->push_back(f);
    } else if (f->run_state == Fiber::Run::kSpinning && !spin_bit_) {
      out->push_back(f);
    }
  }
}

RunResult Machine::Run() {
  TAOS_CHECK(!ran_);
  ran_ = true;
  RunResult result;
  std::vector<Fiber*> runnable;
  for (;;) {
    ExpireDueTimedWaits();
    Dispatch();
    CollectRunnable(&runnable);
    if (runnable.empty()) {
      if (JumpToNextDeadline()) {
        continue;  // not deadlock: a timed wait will expire at the new now
      }
      bool all_done = true;
      for (const auto& f : fibers_) {
        if (f->run_state != Fiber::Run::kDone) {
          all_done = false;
          result.stuck_fibers.push_back(f->name);
        }
      }
      result.completed = all_done;
      result.deadlock = !all_done;
      break;
    }
    if (steps_ >= config_.max_steps) {
      result.hit_step_limit = true;
      break;
    }
    Fiber* f = runnable[chooser_->Choose(runnable)];
    if (f->run_state == Fiber::Run::kSpinning) {
      f->run_state = Fiber::Run::kOnCpu;
    }
    f->go.release();
    driver_sem_.acquire();
  }
  result.steps = steps_;
  aborted_ = result.deadlock || result.hit_step_limit;
  if (aborted_) {
    // Unwind the stuck fibers NOW, while the synchronization objects their
    // destructors may touch (e.g. a Lock releasing its Mutex) still exist —
    // the caller's objects outlive Run() but not ~Machine().
    KillStragglers();
  }
  return result;
}

void Machine::KillStragglers() {
  shutting_down_ = true;
  for (auto& f : fibers_) {
    if (f->os.joinable() && f->run_state != Fiber::Run::kDone) {
      f->go.release();  // FiberKilled is thrown from its next WaitForGo
      f->os.join();
    }
  }
}

}  // namespace taos::firefly
