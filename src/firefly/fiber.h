// A Fiber is a simulated Taos thread running on the simulated Firefly
// multiprocessor (see machine.h).
//
// Each fiber is backed by a host OS thread, but at most one fiber (or the
// machine driver) ever runs at a time: fibers hand control back to the
// driver at every atomic step boundary (Machine::Step), so a whole execution
// is a deterministic function of the driver's scheduling choices.

#ifndef TAOS_SRC_FIREFLY_FIBER_H_
#define TAOS_SRC_FIREFLY_FIBER_H_

#include <cstdint>
#include <functional>
#include <semaphore>
#include <string>
#include <thread>

#include "src/base/intrusive_queue.h"
#include "src/spec/state.h"

namespace taos::firefly {

class Machine;

// Thrown into parked fibers when the Machine is torn down with fibers still
// blocked (e.g. after a detected deadlock), unwinding their stacks so the
// backing OS threads can exit.
struct FiberKilled {};

struct Fiber {
  QueueNode queue_node;  // ready pool or a wait queue

  Machine* machine = nullptr;
  spec::ThreadId id = spec::kNil;
  int priority = 0;       // effective (may be boosted by inheritance)
  int base_priority = 0;  // as given at Fork
  std::string name;

  enum class Run : std::uint8_t {
    kReadyPool,  // in the Nub's ready pool, awaiting a processor
    kOnCpu,      // assigned to a processor, runnable
    kSpinning,   // on a processor, busy-waiting on the Nub spin-lock
    kBlocked,    // de-scheduled on some wait queue
    kDone,       // body finished
  };
  Run run_state = Run::kReadyPool;
  int cpu = -1;                   // processor index while kOnCpu/kSpinning
  int last_cpu = -1;              // processor of the previous dispatch
  std::uint64_t slice_steps = 0;  // steps since last dispatch (time slicing)

  // Blocking bookkeeping (the driver serializes all access).
  enum class BlockKind : std::uint8_t {
    kNone,
    kMutex,
    kSemaphore,
    kCondition,
    kEvent,  // blocked in Event::Wait/WaitFor
    kPoll,   // blocked in Poll::WaitAny*/WaitAll*; blocked_obj is the Poll
  };
  BlockKind block_kind = BlockKind::kNone;
  bool alertable = false;
  bool alert_woken = false;
  void* blocked_obj = nullptr;

  // Timed-wait bookkeeping. Virtual time is the machine's step counter: a
  // timed block sets `timed` and an absolute `deadline_step` before
  // de-scheduling, and names the routine that removes it from its wait
  // queue should the clock win. The driver plays the clock interrupt: when
  // steps_ reaches the deadline (or when the machine would otherwise be
  // idle, in which case it jumps the clock forward), it dequeues the fiber
  // via `timeout_dequeue`, sets `timeout_woken`, and makes it ready. A
  // grant that dequeues the fiber first wins: MakeReady clears `timed`, so
  // the expiry never fires on a fiber some Signal/Release already took.
  bool timed = false;
  std::uint64_t deadline_step = 0;
  bool timeout_woken = false;
  void (*timeout_dequeue)(Fiber*) = nullptr;

  // Membership in the spec's `alerts` set.
  bool alerted = false;

  bool ended_by_alert = false;

  std::function<void()> body;
  std::thread os;
  std::binary_semaphore go{0};  // driver -> fiber handoff

  Fiber() = default;
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
};

// Opaque handle clients use to name a fiber (Alert, Join).
struct FiberHandle {
  Fiber* fiber = nullptr;

  spec::ThreadId id() const { return fiber ? fiber->id : spec::kNil; }
  bool operator==(const FiberHandle&) const = default;
};

}  // namespace taos::firefly

#endif  // TAOS_SRC_FIREFLY_FIBER_H_
