// The simulated Firefly multiprocessor and its Nub.
//
// SRC Report 20 evaluates on the Firefly, "a symmetric multiprocessor; each
// processor is able to address the entire memory", whose Nub kernel layer
// maintains queues of blocked threads, a ready pool, a priority-based
// scheduler and a time-slicing algorithm, all under a single global
// spin-lock acquired with the hardware's test-and-set instruction.
//
// This module substitutes a deterministic discrete-step simulation for that
// hardware (see DESIGN.md, Substitutions):
//
//  - The machine has K simulated processors. Each fiber occupies a processor
//    while runnable; the Nub's ready pool holds fibers awaiting one.
//  - Execution proceeds in atomic steps. Before every shared-memory
//    micro-operation a fiber calls Machine::Step(), which hands control to
//    the driver; the driver picks which processor's fiber performs the next
//    step. All interleavings of the real machine at instruction granularity
//    are reachable by some choice sequence, and a fixed choice sequence
//    replays deterministically.
//  - The Nub spin-lock is modelled exactly: acquisition is a test-and-set
//    step; a fiber that fails busy-waits. (Busy-wait steps have no visible
//    effect, so the driver simply does not select a spinning fiber until
//    the lock is free — the reachable behaviours are unchanged and
//    exhaustive exploration stays finite.) Preemption never interrupts a
//    spin-lock holder, as in a kernel that masks interrupts in the Nub.
//  - Time slicing: after `time_slice` steps a fiber is preempted at its next
//    step boundary (if an equal-or-higher-priority fiber is waiting) and
//    rotated through the ready pool.
//
// Scheduling choices come from a Chooser: seeded-random for stress, or a
// replay/enumeration chooser for the model checker (src/model).

#ifndef TAOS_SRC_FIREFLY_MACHINE_H_
#define TAOS_SRC_FIREFLY_MACHINE_H_

#include <cstdint>
#include <memory>
#include <semaphore>
#include <string>
#include <vector>

#include "src/base/xorshift.h"
#include "src/firefly/fiber.h"
#include "src/spec/trace.h"

namespace taos::firefly {

// Picks the next fiber to perform a step.
class Chooser {
 public:
  virtual ~Chooser() = default;
  // `runnable` is never empty; returns an index into it.
  virtual std::size_t Choose(const std::vector<Fiber*>& runnable) = 0;
};

class RandomChooser : public Chooser {
 public:
  explicit RandomChooser(std::uint64_t seed) : rng_(seed) {}
  std::size_t Choose(const std::vector<Fiber*>& runnable) override {
    return rng_.Below(static_cast<std::uint32_t>(runnable.size()));
  }

 private:
  XorShift rng_;
};

// Weakly fair scheduling: rotates through the runnable fibers, so every
// continuously runnable fiber steps infinitely often. The specification
// promises no liveness at all; this chooser lets tests state the
// implementation-level property "live under a fair scheduler".
class RoundRobinChooser : public Chooser {
 public:
  std::size_t Choose(const std::vector<Fiber*>& runnable) override {
    return next_++ % runnable.size();
  }

 private:
  std::size_t next_ = 0;
};

struct MachineConfig {
  int cpus = 2;
  std::uint64_t time_slice = 0;  // steps per slice; 0 disables preemption
  std::uint64_t max_steps = 2'000'000;  // livelock guard
  std::uint64_t seed = 1;        // for the default RandomChooser
  Chooser* chooser = nullptr;    // overrides the seeded default if set
  spec::TraceSink* trace = nullptr;
};

struct RunResult {
  bool completed = false;  // every fiber ran to the end of its body
  bool deadlock = false;   // progress stopped with fibers still blocked
  bool hit_step_limit = false;
  std::uint64_t steps = 0;
  std::vector<std::string> stuck_fibers;  // names, when deadlocked

  std::string ToString() const;
};

class Machine {
 public:
  explicit Machine(MachineConfig config = {});
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Creates a fiber and places it in the ready pool. Must be called before
  // Run() or from inside a running fiber.
  FiberHandle Fork(std::function<void()> body, int priority = 0,
                   std::string name = "");

  // Drives the machine until every fiber completes, deadlock, or the step
  // limit. Call at most once.
  RunResult Run();

  // ---- called from fiber context ----

  // Marks an atomic step boundary; the next shared-memory micro-op of the
  // calling fiber is one atomic step. May preempt (time slice).
  void Step();

  static Fiber* Self();

  // The Nub spin-lock. SpinAcquire contains its own Step()s (each
  // test-and-set is a step); SpinRelease performs one.
  void SpinAcquire();
  void SpinRelease();
  bool SpinHeldBySelf() const { return spin_holder_ == Self(); }

  // De-schedules the calling fiber (which must hold the spin-lock and have
  // enqueued itself on some wait queue), releasing the spin-lock and
  // freeing its processor. Returns when another fiber calls MakeReady on it
  // and the scheduler assigns it a processor again.
  void DescheduleSelf();

  // Adds a blocked fiber to the ready pool; the scheduler will find it a
  // processor. Caller must hold the spin-lock.
  void MakeReady(Fiber* f);

  // Changes a fiber's effective priority (requeueing it if it sits in the
  // ready pool). Used by the priority-inheritance mutex extension.
  void SetFiberPriority(Fiber* f, int priority);

  // ---- tracing & introspection ----
  spec::TraceSink* trace() const { return config_.trace; }
  bool tracing() const { return config_.trace != nullptr; }
  spec::ObjId NextObjId() { return next_obj_id_++; }
  std::uint64_t steps() const { return steps_; }
  const MachineConfig& config() const { return config_; }

  // Number of preemptions performed by the time-slicer (for tests).
  std::uint64_t preemptions() const { return preemptions_; }

  // Times a fiber was dispatched on a different processor than before —
  // "the scheduler is free to move it from one processor to another".
  std::uint64_t migrations() const { return migrations_; }

  // Failed test-and-set attempts on the Nub spin-lock (contention events).
  std::uint64_t spin_contentions() const { return spin_contentions_; }

  // Timed waits the simulated clock interrupt expired (for tests).
  std::uint64_t timer_expiries() const { return timer_expiries_; }

  // True once Run() ended in deadlock or at the step limit. Simulated
  // synchronization objects skip their "no one still queued" destructor
  // checks on an aborted machine.
  bool Aborted() const { return aborted_; }

  // True while the destructor is unwinding parked fibers; simulated
  // primitives bail out instead of scheduling.
  bool ShuttingDown() const { return shutting_down_; }

 private:
  static constexpr int kMaxPriority = 8;

  void FiberMain(Fiber* f);
  void YieldToDriver(Fiber* f);
  void WaitForGo(Fiber* f);
  void KillStragglers();
  void Dispatch();  // assign ready fibers to idle processors
  void CollectRunnable(std::vector<Fiber*>* out) const;
  void MaybePreempt(Fiber* f);
  bool ReadyFiberAtOrAbove(int priority) const;
  void ReadyCommon(Fiber* f);  // shared tail of MakeReady / timed expiry

  // The simulated clock interrupt: expires due timed waits. Fires only with
  // the spin-lock free (a real Nub's interrupt handler would acquire it; the
  // driver runs the whole handler between steps instead).
  void ExpireDueTimedWaits();
  // When nothing is runnable but timed waits are pending, advances steps_
  // to the earliest deadline (the idle machine sleeps until the next clock
  // interrupt). Returns false if no timed-blocked fiber exists.
  bool JumpToNextDeadline();

  MachineConfig config_;
  std::unique_ptr<Chooser> owned_chooser_;
  Chooser* chooser_ = nullptr;

  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<Fiber*> cpu_fiber_;  // per-processor current fiber (or null)
  IntrusiveQueue<Fiber> ready_pool_[kMaxPriority];

  bool spin_bit_ = false;
  Fiber* spin_holder_ = nullptr;

  std::binary_semaphore driver_sem_{0};
  bool shutting_down_ = false;
  bool ran_ = false;
  bool aborted_ = false;

  std::uint64_t steps_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t spin_contentions_ = 0;
  std::uint64_t timer_expiries_ = 0;
  spec::ThreadId next_thread_id_ = 1;
  spec::ObjId next_obj_id_ = 1;
};

}  // namespace taos::firefly

#endif  // TAOS_SRC_FIREFLY_MACHINE_H_
