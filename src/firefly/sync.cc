#include "src/firefly/sync.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"

namespace taos::firefly {

namespace {

void Emit(Machine& m, const spec::Action& a) {
  if (m.tracing()) {
    m.trace()->Emit(a);
  }
}

// Flight-recorder events from the simulator carry the *fiber* id as their
// tid, so a rendered trace shows one row per simulated Taos thread rather
// than one per backing OS thread.
std::uint32_t Tid(const Fiber* f) { return static_cast<std::uint32_t>(f->id); }

}  // namespace

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

Mutex::Mutex(Machine& machine)
    : machine_(machine), id_(machine.NextObjId()) {}

Mutex::~Mutex() {
  if (machine_.Aborted() || machine_.ShuttingDown()) {
    while (queue_.PopFront() != nullptr) {
    }
    return;
  }
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(!bit_);
}

void Mutex::Acquire() {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kAcquire, id_, Tid(self));
  AcquireInternal(spec::MakeAcquire(self->id, id_));
}

void Mutex::AcquireInternal(const spec::Action& emit,
                            const std::function<void()>& at_success) {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  bool first_attempt = true;
  for (;;) {
    if (m.ShuttingDown()) {
      return;
    }
    m.Step();  // the test-and-set instruction
    if (!bit_) {
      bit_ = true;
      holder_ = self;
      if (first_attempt) {
        ++fast_acquires_;
        obs::Inc(obs::Counter::kFastMutexAcquire);
      } else {
        ++slow_acquires_;
      }
      if (at_success) {
        at_success();
      }
      Emit(m, emit);
      return;
    }
    if (first_attempt) {
      obs::Inc(obs::Counter::kNubAcquire);
    }
    first_attempt = false;
    // Nub subroutine for Acquire.
    m.SpinAcquire();
    m.Step();
    queue_.PushBack(self);
    m.Step();  // test the Lock-bit again
    if (bit_) {
      if (priority_inheritance_ && holder_ != nullptr &&
          holder_->priority < self->priority) {
        m.SetFiberPriority(holder_, self->priority);
      }
      self->block_kind = Fiber::BlockKind::kMutex;
      self->blocked_obj = this;
      self->alertable = false;
      self->alert_woken = false;
      m.DescheduleSelf();  // releases the spin-lock
    } else {
      queue_.Remove(self);
      m.SpinRelease();
    }
    // Retry the entire Acquire, beginning at the test-and-set.
  }
}

void Mutex::Release() {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kRelease, id_, Tid(self));
  ReleaseInternal([this, self] {
    Emit(machine_, spec::MakeRelease(self->id, id_));
  });
}

void Mutex::ReleaseInternal(const std::function<void()>& at_clear) {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  TAOS_CHECK(holder_ == self || m.ShuttingDown());  // REQUIRES m = SELF
  m.Step();  // clear the Lock-bit
  bit_ = false;
  holder_ = nullptr;
  if (at_clear) {
    at_clear();
  }
  m.Step();  // user-code test: is the Queue non-empty?
  if (!queue_.Empty()) {
    // Nub subroutine for Release: take one thread, add it to the ready pool.
    obs::Inc(obs::Counter::kNubRelease);
    m.SpinAcquire();
    m.Step();
    Fiber* t = queue_.PopFront();
    if (t != nullptr) {
      obs::Inc(obs::Counter::kHandoffs);
      m.MakeReady(t);
    }
    m.SpinRelease();
  } else {
    obs::Inc(obs::Counter::kFastMutexRelease);
  }
  // Drop any inherited boost only after the handoff: shedding it earlier
  // would let a medium-priority fiber preempt the releaser before the
  // high-priority waiter has been made ready — re-creating the inversion
  // inside Release itself.
  if (priority_inheritance_ && self->priority != self->base_priority) {
    m.SetFiberPriority(self, self->base_priority);
  }
}

// ---------------------------------------------------------------------------
// Condition
// ---------------------------------------------------------------------------

Condition::Condition(Machine& machine)
    : machine_(machine), id_(machine.NextObjId()) {}

Condition::~Condition() {
  if (machine_.Aborted() || machine_.ShuttingDown()) {
    while (queue_.PopFront() != nullptr) {
    }
    return;
  }
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(window_.empty());
  TAOS_CHECK(pending_raise_.empty());
  TAOS_CHECK(pending_timeout_.empty());
}

bool Condition::EraseWindow(Fiber* f) {
  auto it = std::find(window_.begin(), window_.end(), f);
  if (it == window_.end()) {
    return false;
  }
  window_.erase(it);
  return true;
}

bool Condition::ErasePendingRaise(Fiber* f) {
  auto it = std::find(pending_raise_.begin(), pending_raise_.end(), f);
  if (it == pending_raise_.end()) {
    return false;
  }
  pending_raise_.erase(it);
  return true;
}

bool Condition::ErasePendingTimeout(Fiber* f) {
  auto it = std::find(pending_timeout_.begin(), pending_timeout_.end(), f);
  if (it == pending_timeout_.end()) {
    return false;
  }
  pending_timeout_.erase(it);
  return true;
}

void Condition::TimeoutDequeue(Fiber* f) {
  auto* c = static_cast<Condition*>(f->blocked_obj);
  c->queue_.Remove(f);
  // Still a spec-member of c (and counted in c_size_) until its
  // TimeoutResume action fires or a Signal/Broadcast removes it.
  c->pending_timeout_.push_back(f);
}

void Condition::Wait(Mutex& m) {
  Machine& mach = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kWait, id_, Tid(self));
  obs::Inc(obs::Counter::kNubWait);
  TAOS_CHECK(m.holder_ == self || mach.ShuttingDown());  // REQUIRES m = SELF

  // Enqueue: linearizes at the mutex's clear step — SELF enters c exactly as
  // m becomes NIL.
  std::uint64_t snapshot = 0;
  m.ReleaseInternal([&] {
    snapshot = ec_;
    window_.push_back(self);
    ++c_size_;
    Emit(mach, spec::MakeEnqueue(self->id, m.id_, id_));
  });

  // Nub subroutine Block(c, i).
  mach.SpinAcquire();
  mach.Step();
  if (mach.ShuttingDown()) {
    return;
  }
  if (!use_eventcount_ || ec_ == snapshot) {
    EraseWindow(self);  // may already be gone in the no-eventcount ablation
    queue_.PushBack(self);
    self->block_kind = Fiber::BlockKind::kCondition;
    self->blocked_obj = this;
    self->alertable = false;
    self->alert_woken = false;
    mach.DescheduleSelf();
  } else {
    // Absorbed: an intervening Signal/Broadcast advanced the eventcount and
    // removed us from c (and from window_) when it emitted.
    ++absorbed_;
    obs::Inc(obs::Counter::kWakeupWaitingHits);
    mach.SpinRelease();
  }

  // Resume: re-enter the critical section.
  m.AcquireInternal(spec::MakeResume(self->id, m.id_, id_));
}

WaitResult Condition::WaitFor(Mutex& m, std::uint64_t timeout_steps) {
  Machine& mach = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kWait, id_, Tid(self));
  obs::Inc(obs::Counter::kNubWait);
  TAOS_CHECK(m.holder_ == self || mach.ShuttingDown());  // REQUIRES m = SELF

  if (timeout_steps == 0) {
    // The deadline has already passed: no Enqueue, m is never released.
    mach.Step();
    obs::Inc(obs::Counter::kTimedWaitTimeouts);
    return WaitResult::kTimeout;
  }
  const std::uint64_t deadline = mach.steps() + timeout_steps;

  // Enqueue, exactly as Wait's.
  std::uint64_t snapshot = 0;
  m.ReleaseInternal([&] {
    snapshot = ec_;
    window_.push_back(self);
    ++c_size_;
    Emit(mach, spec::MakeEnqueue(self->id, m.id_, id_));
  });

  // Nub subroutine Block(c, i), deadline-armed.
  bool expired = false;
  mach.SpinAcquire();
  mach.Step();
  if (mach.ShuttingDown()) {
    return WaitResult::kTimeout;
  }
  if (!use_eventcount_ || ec_ == snapshot) {
    EraseWindow(self);
    queue_.PushBack(self);
    self->block_kind = Fiber::BlockKind::kCondition;
    self->blocked_obj = this;
    self->alertable = false;
    self->alert_woken = false;
    self->timed = true;
    self->deadline_step = deadline;
    self->timeout_woken = false;
    self->timeout_dequeue = &Condition::TimeoutDequeue;
    mach.DescheduleSelf();
    expired = self->timeout_woken;
    self->timeout_woken = false;
  } else {
    ++absorbed_;
    obs::Inc(obs::Counter::kWakeupWaitingHits);
    mach.SpinRelease();
  }

  if (expired) {
    Condition* cp = this;
    m.AcquireInternal(spec::MakeTimeoutResume(self->id, m.id_, id_),
                      [cp, self] {
                        if (cp->ErasePendingTimeout(self)) {
                          cp->DecSize();
                        }
                      });
    obs::Inc(obs::Counter::kTimedWaitTimeouts);
    return WaitResult::kTimeout;
  }
  m.AcquireInternal(spec::MakeResume(self->id, m.id_, id_));
  obs::Inc(obs::Counter::kTimedWaitSatisfied);
  return WaitResult::kSatisfied;
}

void Condition::Signal() {
  Machine& mach = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kSignal, id_, Tid(self));
  mach.Step();  // user-code test: any threads to unblock?
  if (c_size_ == 0) {
    ++fast_signals_;
    obs::Inc(obs::Counter::kFastSignal);
    Emit(mach, spec::MakeSignal(self->id, id_, {}));
    return;
  }
  obs::Inc(obs::Counter::kNubSignal);
  mach.SpinAcquire();
  mach.Step();
  ++ec_;
  spec::ThreadSet removed;
  int unblocked = 0;
  Fiber* t = queue_.PopFront();
  if (t != nullptr) {
    removed = removed.Insert(t->id);
    DecSize();
    ++unblocked;
    obs::Inc(obs::Counter::kHandoffs);
    mach.MakeReady(t);
  }
  for (Fiber* w : window_) {
    removed = removed.Insert(w->id);
    DecSize();
    ++unblocked;  // window threads absorb this increment in Block
  }
  window_.clear();
  for (Fiber* p : pending_raise_) {
    removed = removed.Insert(p->id);
    DecSize();
  }
  pending_raise_.clear();
  // Timer-dequeued fibers are still spec-members of c; leaving them out
  // would let a Signal that pops nobody emit removed = {} against a
  // nonempty c, violating its own ENSURES. Their later TimeoutResume
  // delete() is idempotent, so the double removal is harmless.
  for (Fiber* p : pending_timeout_) {
    removed = removed.Insert(p->id);
    DecSize();
  }
  pending_timeout_.clear();
  if (unblocked > 1) {
    ++multi_unblock_signals_;
  }
  Emit(mach, spec::MakeSignal(self->id, id_, removed));
  mach.SpinRelease();
}

void Condition::Broadcast() {
  Machine& mach = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kBroadcast, id_, Tid(self));
  mach.Step();
  if (c_size_ == 0) {
    ++fast_signals_;
    obs::Inc(obs::Counter::kFastBroadcast);
    Emit(mach, spec::MakeBroadcast(self->id, id_, {}));
    return;
  }
  obs::Inc(obs::Counter::kNubBroadcast);
  mach.SpinAcquire();
  mach.Step();
  ++ec_;
  spec::ThreadSet removed;
  while (Fiber* t = queue_.PopFront()) {
    removed = removed.Insert(t->id);
    DecSize();
    obs::Inc(obs::Counter::kHandoffs);
    mach.MakeReady(t);
  }
  for (Fiber* w : window_) {
    removed = removed.Insert(w->id);
    DecSize();
  }
  window_.clear();
  for (Fiber* p : pending_raise_) {
    removed = removed.Insert(p->id);
    DecSize();
  }
  pending_raise_.clear();
  // Timer-dequeued fibers are still spec-members of c; leaving them out
  // would let a Signal that pops nobody emit removed = {} against a
  // nonempty c, violating its own ENSURES. Their later TimeoutResume
  // delete() is idempotent, so the double removal is harmless.
  for (Fiber* p : pending_timeout_) {
    removed = removed.Insert(p->id);
    DecSize();
  }
  pending_timeout_.clear();
  Emit(mach, spec::MakeBroadcast(self->id, id_, removed));
  mach.SpinRelease();
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

Semaphore::Semaphore(Machine& machine, bool initially_available)
    : machine_(machine), bit_(!initially_available), id_(machine.NextObjId()) {}

Semaphore::~Semaphore() {
  if (machine_.Aborted() || machine_.ShuttingDown()) {
    while (queue_.PopFront() != nullptr) {
    }
    return;
  }
  TAOS_CHECK(queue_.Empty());
}

void Semaphore::P() {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kP, id_, Tid(self));
  bool first_attempt = true;
  for (;;) {
    if (m.ShuttingDown()) {
      return;
    }
    m.Step();  // test-and-set
    if (!bit_) {
      bit_ = true;
      if (first_attempt) {
        obs::Inc(obs::Counter::kFastSemP);
      }
      Emit(m, spec::MakeP(self->id, id_));
      return;
    }
    if (first_attempt) {
      obs::Inc(obs::Counter::kNubP);
    }
    first_attempt = false;
    m.SpinAcquire();
    m.Step();
    queue_.PushBack(self);
    m.Step();
    if (bit_) {
      self->block_kind = Fiber::BlockKind::kSemaphore;
      self->blocked_obj = this;
      self->alertable = false;
      self->alert_woken = false;
      m.DescheduleSelf();
    } else {
      queue_.Remove(self);
      m.SpinRelease();
    }
  }
}

void Semaphore::V() {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kV, id_, Tid(self));
  m.Step();
  bit_ = false;
  Emit(m, spec::MakeV(self->id, id_));
  m.Step();
  if (!queue_.Empty()) {
    obs::Inc(obs::Counter::kNubV);
    m.SpinAcquire();
    m.Step();
    Fiber* t = queue_.PopFront();
    if (t != nullptr) {
      obs::Inc(obs::Counter::kHandoffs);
      m.MakeReady(t);
    }
    m.SpinRelease();
  } else {
    obs::Inc(obs::Counter::kFastSemV);
  }
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

Event::Event(Machine& machine, EventReset reset)
    : machine_(machine), reset_(reset), id_(machine.NextObjId()) {}

Event::~Event() {
  if (machine_.Aborted() || machine_.ShuttingDown()) {
    while (queue_.PopFront() != nullptr) {
    }
    pollers_.clear();
    return;
  }
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(pollers_.empty());
}

void Event::TimeoutDequeue(Fiber* f) {
  static_cast<Event*>(f->blocked_obj)->queue_.Remove(f);
}

void Event::Set() {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kEventSet, id_, Tid(self));
  m.Step();  // the store is the atomic action
  set_ = true;
  Emit(m, spec::MakeEventSet(self->id, id_));
  m.Step();  // user-code test: anyone to wake?
  if (queue_.Empty() && pollers_.empty()) {
    return;
  }
  // Nub subroutine: wake per the Set policy — auto hands the pulse to one
  // plain waiter if any; pollers are notified only when no plain waiter
  // took it (a consumed pulse has nothing for them). Manual wakes everyone.
  m.SpinAcquire();
  m.Step();
  bool woke_plain = false;
  if (reset_ == EventReset::kAuto) {
    Fiber* t = queue_.PopFront();
    if (t != nullptr) {
      woke_plain = true;
      obs::Inc(obs::Counter::kHandoffs);
      m.MakeReady(t);
    }
  } else {
    while (Fiber* t = queue_.PopFront()) {
      obs::Inc(obs::Counter::kHandoffs);
      m.MakeReady(t);
    }
  }
  if (reset_ == EventReset::kManual || !woke_plain) {
    // Waking a poll waiter deregisters it from every member it is
    // registered on (including this event), so the loop drains pollers_.
    while (!pollers_.empty()) {
      Fiber* f = pollers_.back();
      static_cast<Poll*>(f->blocked_obj)->DeregisterFiber(f);
      obs::Inc(obs::Counter::kHandoffs);
      m.MakeReady(f);
    }
  }
  m.SpinRelease();
}

void Event::Reset() {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  m.Step();
  set_ = false;
  Emit(m, spec::MakeEventReset(self->id, id_));
}

void Event::Wait() {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kEventWait, id_, Tid(self));
  for (;;) {
    if (m.ShuttingDown()) {
      return;
    }
    m.Step();  // the claim: test (auto: test-and-clear) in one step
    if (set_) {
      if (reset_ == EventReset::kAuto) {
        set_ = false;
        Emit(m, spec::MakeEventConsume(self->id, id_));
      } else {
        Emit(m, spec::MakeEventWait(self->id, id_));
      }
      return;
    }
    // Nub subroutine: enqueue, re-test, de-schedule — Semaphore::P's shape
    // with the bit sense inverted.
    m.SpinAcquire();
    m.Step();
    queue_.PushBack(self);
    m.Step();  // re-test the flag
    if (!set_) {
      self->block_kind = Fiber::BlockKind::kEvent;
      self->blocked_obj = this;
      self->alertable = false;
      self->alert_woken = false;
      m.DescheduleSelf();
    } else {
      queue_.Remove(self);
      m.SpinRelease();
    }
  }
}

WaitResult Event::WaitFor(std::uint64_t timeout_steps) {
  Machine& m = machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kEventWait, id_, Tid(self));
  if (timeout_steps == 0) {
    m.Step();
    if (set_) {
      if (reset_ == EventReset::kAuto) {
        set_ = false;
        Emit(m, spec::MakeEventConsume(self->id, id_));
      } else {
        Emit(m, spec::MakeEventWait(self->id, id_));
      }
      obs::Inc(obs::Counter::kTimedWaitSatisfied);
      return WaitResult::kSatisfied;
    }
    Emit(m, spec::MakePollTimeout(self->id, spec::ObjIdSet{}.Insert(id_)));
    obs::Inc(obs::Counter::kTimedWaitTimeouts);
    return WaitResult::kTimeout;
  }
  const std::uint64_t deadline = m.steps() + timeout_steps;
  for (;;) {
    if (m.ShuttingDown()) {
      return WaitResult::kTimeout;
    }
    m.Step();
    if (set_) {
      if (reset_ == EventReset::kAuto) {
        set_ = false;
        Emit(m, spec::MakeEventConsume(self->id, id_));
      } else {
        Emit(m, spec::MakeEventWait(self->id, id_));
      }
      obs::Inc(obs::Counter::kTimedWaitSatisfied);
      return WaitResult::kSatisfied;
    }
    m.SpinAcquire();
    m.Step();
    queue_.PushBack(self);
    m.Step();
    if (!set_) {
      self->block_kind = Fiber::BlockKind::kEvent;
      self->blocked_obj = this;
      self->alertable = false;
      self->alert_woken = false;
      self->timed = true;
      self->deadline_step = deadline;
      self->timeout_woken = false;
      self->timeout_dequeue = &Event::TimeoutDequeue;
      m.DescheduleSelf();
      if (self->timeout_woken) {
        self->timeout_woken = false;
        m.Step();
        Emit(m, spec::MakePollTimeout(self->id, spec::ObjIdSet{}.Insert(id_)));
        obs::Inc(obs::Counter::kTimedWaitTimeouts);
        return WaitResult::kTimeout;
      }
    } else {
      queue_.Remove(self);
      m.SpinRelease();
    }
  }
}

// ---------------------------------------------------------------------------
// Poll
// ---------------------------------------------------------------------------

void Poll::Add(Event& e) {
  TAOS_CHECK(n_ < kMaxWait);
  for (std::size_t i = 0; i < n_; ++i) {
    TAOS_CHECK(events_[i] != &e);
  }
  events_[n_++] = &e;
}

spec::ObjIdSet Poll::WaitSetIds() const {
  spec::ObjIdSet ws;
  for (std::size_t i = 0; i < n_; ++i) {
    ws = ws.Insert(events_[i]->id_);
  }
  return ws;
}

void Poll::TimeoutDequeue(Fiber* f) {
  static_cast<Poll*>(f->blocked_obj)->DeregisterFiber(f);
}

void Poll::DeregisterFiber(Fiber* f) {
  for (std::size_t i = 0; i < n_; ++i) {
    auto& ps = events_[i]->pollers_;
    auto it = std::find(ps.begin(), ps.end(), f);
    if (it != ps.end()) {
      ps.erase(it);
    }
  }
}

void Poll::RegisterAllLocked(Fiber* f) {
  for (std::size_t i = 0; i < n_; ++i) {
    events_[i]->pollers_.push_back(f);
  }
  obs::Inc(obs::Counter::kPollRegistrations);
}

bool Poll::TryGrantLocked(bool all, const spec::ObjIdSet& ws,
                          std::size_t* index) {
  Machine& m = events_[0]->machine_;
  Fiber* self = Machine::Self();
  if (!all) {
    for (std::size_t i = 0; i < n_; ++i) {
      Event* ev = events_[i];
      if (!ev->set_) {
        continue;
      }
      const bool consumed = ev->reset_ == EventReset::kAuto;
      if (consumed) {
        ev->set_ = false;
      }
      Emit(m, spec::MakePollAny(self->id, ws, ev->id_, consumed));
      *index = i;
      return true;
    }
    return false;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    if (!events_[i]->set_) {
      return false;
    }
  }
  spec::ObjIdSet consumed;
  for (std::size_t i = 0; i < n_; ++i) {
    if (events_[i]->reset_ == EventReset::kAuto) {
      events_[i]->set_ = false;
      consumed = consumed.Insert(events_[i]->id_);
    }
  }
  Emit(m, spec::MakePollAll(self->id, ws, consumed));
  *index = 0;
  return true;
}

WaitResult Poll::WaitInternal(bool all, bool alertable, bool timed,
                              std::uint64_t timeout_steps, std::size_t* index) {
  TAOS_CHECK(n_ > 0);
  Machine& m = events_[0]->machine_;
  Fiber* self = Machine::Self();
  const spec::ObjIdSet ws = WaitSetIds();
  *index = n_;
  if (timed && timeout_steps == 0) {
    // A single scan in one atomic step; nothing registers, so the spin-lock
    // (which TryGrantLocked otherwise requires) is unnecessary.
    m.Step();
    if (TryGrantLocked(all, ws, index)) {
      return WaitResult::kSatisfied;
    }
    Emit(m, spec::MakePollTimeout(self->id, ws));
    return WaitResult::kTimeout;
  }
  const std::uint64_t deadline = m.steps() + timeout_steps;
  bool parked = false;
  for (;;) {
    if (m.ShuttingDown()) {
      return WaitResult::kTimeout;
    }
    m.SpinAcquire();
    m.Step();
    if (TryGrantLocked(all, ws, index)) {
      m.SpinRelease();
      return WaitResult::kSatisfied;
    }
    if (parked) {
      obs::Inc(obs::Counter::kPollSpuriousScans);
    }
    // Grant beats a pending alert (both WHEN clauses may hold; this
    // implementation prefers the grant, as the runtime's scan-first loop
    // does).
    if (alertable && self->alerted) {
      self->alerted = false;
      self->alert_woken = false;
      Emit(m, spec::MakePollAlertRaises(self->id, ws));
      m.SpinRelease();
      return WaitResult::kAlerted;
    }
    RegisterAllLocked(self);
    m.Step();  // re-test, the Nub idiom: a Set racing the registration
    if (TryGrantLocked(all, ws, index)) {
      DeregisterFiber(self);
      m.SpinRelease();
      return WaitResult::kSatisfied;
    }
    self->block_kind = Fiber::BlockKind::kPoll;
    self->blocked_obj = this;
    self->alertable = alertable;
    self->alert_woken = false;
    if (timed) {
      self->timed = true;
      self->deadline_step = deadline;
      self->timeout_woken = false;
      self->timeout_dequeue = &Poll::TimeoutDequeue;
    }
    m.DescheduleSelf();  // whoever wakes us has deregistered us everywhere
    parked = true;
    if (timed && self->timeout_woken) {
      self->timeout_woken = false;
      m.Step();
      Emit(m, spec::MakePollTimeout(self->id, ws));
      return WaitResult::kTimeout;
    }
    if (alertable && (self->alert_woken || self->alerted)) {
      m.Step();
      self->alerted = false;
      self->alert_woken = false;
      Emit(m, spec::MakePollAlertRaises(self->id, ws));
      return WaitResult::kAlerted;
    }
    self->alert_woken = false;
  }
}

std::size_t Poll::WaitAny() {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitInternal(/*all=*/false, /*alertable=*/false, /*timed=*/false, 0, &index);
  return index;
}

Poll::AnyResult Poll::WaitAnyFor(std::uint64_t timeout_steps) {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitResult r = WaitInternal(/*all=*/false, /*alertable=*/false,
                              /*timed=*/true, timeout_steps, &index);
  obs::Inc(r == WaitResult::kSatisfied ? obs::Counter::kTimedWaitSatisfied
                                       : obs::Counter::kTimedWaitTimeouts);
  return {index, r};
}

std::size_t Poll::AlertWaitAny() {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitResult r = WaitInternal(/*all=*/false, /*alertable=*/true,
                              /*timed=*/false, 0, &index);
  if (r == WaitResult::kAlerted) {
    throw Alerted();
  }
  return index;
}

Poll::AnyResult Poll::AlertWaitAnyFor(std::uint64_t timeout_steps) {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitResult r = WaitInternal(/*all=*/false, /*alertable=*/true,
                              /*timed=*/true, timeout_steps, &index);
  switch (r) {
    case WaitResult::kSatisfied:
      obs::Inc(obs::Counter::kTimedWaitSatisfied);
      break;
    case WaitResult::kTimeout:
      obs::Inc(obs::Counter::kTimedWaitTimeouts);
      break;
    case WaitResult::kAlerted:
      obs::Inc(obs::Counter::kTimedWaitAlerted);
      break;
  }
  return {index, r};
}

void Poll::WaitAll() {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitInternal(/*all=*/true, /*alertable=*/false, /*timed=*/false, 0, &index);
}

WaitResult Poll::WaitAllFor(std::uint64_t timeout_steps) {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitResult r = WaitInternal(/*all=*/true, /*alertable=*/false,
                              /*timed=*/true, timeout_steps, &index);
  obs::Inc(r == WaitResult::kSatisfied ? obs::Counter::kTimedWaitSatisfied
                                       : obs::Counter::kTimedWaitTimeouts);
  return r;
}

void Poll::AlertWaitAll() {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitResult r = WaitInternal(/*all=*/true, /*alertable=*/true,
                              /*timed=*/false, 0, &index);
  if (r == WaitResult::kAlerted) {
    throw Alerted();
  }
}

WaitResult Poll::AlertWaitAllFor(std::uint64_t timeout_steps) {
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kPoll, n_ > 0 ? events_[0]->id_ : 0, Tid(self));
  std::size_t index = 0;
  WaitResult r = WaitInternal(/*all=*/true, /*alertable=*/true,
                              /*timed=*/true, timeout_steps, &index);
  switch (r) {
    case WaitResult::kSatisfied:
      obs::Inc(obs::Counter::kTimedWaitSatisfied);
      break;
    case WaitResult::kTimeout:
      obs::Inc(obs::Counter::kTimedWaitTimeouts);
      break;
    case WaitResult::kAlerted:
      obs::Inc(obs::Counter::kTimedWaitAlerted);
      break;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Alerting
// ---------------------------------------------------------------------------

void Alert(FiberHandle h) {
  TAOS_CHECK(h.fiber != nullptr);
  Fiber* t = h.fiber;
  Machine& m = *t->machine;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kAlert, static_cast<std::uint64_t>(t->id),
                      Tid(self));
  obs::Inc(obs::Counter::kNubAlert);
  m.SpinAcquire();
  m.Step();
  t->alerted = true;  // alerts := insert(alerts, t)
  if (t->run_state == Fiber::Run::kBlocked && t->alertable) {
    switch (t->block_kind) {
      case Fiber::BlockKind::kSemaphore: {
        auto* s = static_cast<Semaphore*>(t->blocked_obj);
        s->queue_.Remove(t);
        break;
      }
      case Fiber::BlockKind::kCondition: {
        auto* c = static_cast<Condition*>(t->blocked_obj);
        c->queue_.Remove(t);
        // Still a spec-member of c until its AlertResume action fires.
        c->pending_raise_.push_back(t);
        break;
      }
      case Fiber::BlockKind::kPoll: {
        auto* p = static_cast<Poll*>(t->blocked_obj);
        p->DeregisterFiber(t);
        break;
      }
      case Fiber::BlockKind::kEvent:  // Event::Wait is never alertable
      case Fiber::BlockKind::kMutex:
      case Fiber::BlockKind::kNone:
        TAOS_PANIC("alertable fiber blocked on a non-alertable object");
    }
    t->alert_woken = true;
    obs::Inc(obs::Counter::kHandoffs);
    m.MakeReady(t);
  }
  Emit(m, spec::MakeAlert(self->id, t->id));
  m.SpinRelease();
}

bool TestAlert() {
  Fiber* self = Machine::Self();
  Machine& m = *self->machine;
  m.Step();
  const bool b = self->alerted;
  self->alerted = false;
  Emit(m, spec::MakeTestAlert(self->id, b));
  return b;
}

void AlertWait(Mutex& mu, Condition& c) {
  Machine& m = c.machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kAlertWait, c.id_, Tid(self));
  obs::Inc(obs::Counter::kNubAlertWait);
  TAOS_CHECK(mu.holder_ == self || m.ShuttingDown());  // REQUIRES m = SELF

  // Enqueue (AlertWait flavour: UNCHANGED [alerts]).
  std::uint64_t snapshot = 0;
  mu.ReleaseInternal([&] {
    snapshot = c.ec_;
    c.window_.push_back(self);
    ++c.c_size_;
    Emit(m, spec::MakeAlertEnqueue(self->id, mu.id_, c.id_));
  });

  // AlertBlock.
  m.SpinAcquire();
  m.Step();
  if (m.ShuttingDown()) {
    return;
  }
  bool raise = false;
  if (self->alerted) {
    raise = true;
    if (c.EraseWindow(self)) {
      c.pending_raise_.push_back(self);  // still in c until AlertResume
    }
    m.SpinRelease();
  } else if (c.use_eventcount_ && c.ec_ != snapshot) {
    ++c.absorbed_;
    obs::Inc(obs::Counter::kWakeupWaitingHits);
    m.SpinRelease();
  } else {
    c.EraseWindow(self);
    c.queue_.PushBack(self);
    self->block_kind = Fiber::BlockKind::kCondition;
    self->blocked_obj = &c;
    self->alertable = true;
    self->alert_woken = false;
    m.DescheduleSelf();
    // Raise if woken by Alert, or if an alert arrived around a signal wakeup
    // (both WHEN clauses hold; this implementation prefers the alert).
    raise = self->alert_woken || self->alerted;
  }

  if (raise) {
    Condition* cp = &c;
    mu.AcquireInternal(spec::MakeAlertResumeRaises(self->id, mu.id_, c.id_),
                       [cp, self] {
                         if (cp->ErasePendingRaise(self)) {
                           cp->DecSize();
                         }
                         self->alerted = false;
                         self->alert_woken = false;
                       });
    throw Alerted();
  }
  mu.AcquireInternal(spec::MakeAlertResumeReturns(self->id, mu.id_, c.id_));
  self->alert_woken = false;
}

WaitResult AlertWaitFor(Mutex& mu, Condition& c, std::uint64_t timeout_steps) {
  Machine& m = c.machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kAlertWait, c.id_, Tid(self));
  obs::Inc(obs::Counter::kNubAlertWait);
  TAOS_CHECK(mu.holder_ == self || m.ShuttingDown());  // REQUIRES m = SELF

  if (timeout_steps == 0) {
    m.Step();
    obs::Inc(obs::Counter::kTimedWaitTimeouts);
    return WaitResult::kTimeout;
  }
  const std::uint64_t deadline = m.steps() + timeout_steps;

  // Enqueue (AlertWait flavour: UNCHANGED [alerts]).
  std::uint64_t snapshot = 0;
  mu.ReleaseInternal([&] {
    snapshot = c.ec_;
    c.window_.push_back(self);
    ++c.c_size_;
    Emit(m, spec::MakeAlertEnqueue(self->id, mu.id_, c.id_));
  });

  // AlertBlock, deadline-armed.
  m.SpinAcquire();
  m.Step();
  if (m.ShuttingDown()) {
    return WaitResult::kTimeout;
  }
  bool raise = false;
  bool expired = false;
  if (self->alerted) {
    raise = true;
    if (c.EraseWindow(self)) {
      c.pending_raise_.push_back(self);  // still in c until AlertResume
    }
    m.SpinRelease();
  } else if (c.use_eventcount_ && c.ec_ != snapshot) {
    ++c.absorbed_;
    obs::Inc(obs::Counter::kWakeupWaitingHits);
    m.SpinRelease();
  } else {
    c.EraseWindow(self);
    c.queue_.PushBack(self);
    self->block_kind = Fiber::BlockKind::kCondition;
    self->blocked_obj = &c;
    self->alertable = true;
    self->alert_woken = false;
    self->timed = true;
    self->deadline_step = deadline;
    self->timeout_woken = false;
    self->timeout_dequeue = &Condition::TimeoutDequeue;
    m.DescheduleSelf();
    expired = self->timeout_woken;
    self->timeout_woken = false;
    // The three exits are arbitrated by who dequeued us: the clock
    // interrupt (timed cleared only after it fired), an Alert
    // (alert_woken), or a Signal. An alert that arrived around a signal
    // wakeup still wins, as in AlertWait; a pending alert never converts a
    // timeout, and is left deliverable.
    if (!expired) {
      raise = self->alert_woken || self->alerted;
    }
  }

  Condition* cp = &c;
  if (expired) {
    mu.AcquireInternal(spec::MakeTimeoutResume(self->id, mu.id_, c.id_),
                       [cp, self] {
                         if (cp->ErasePendingTimeout(self)) {
                           cp->DecSize();
                         }
                       });
    obs::Inc(obs::Counter::kTimedWaitTimeouts);
    return WaitResult::kTimeout;
  }
  if (raise) {
    // The alert ends the wait, but as a reported value, not an exception.
    mu.AcquireInternal(spec::MakeAlertResumeRaises(self->id, mu.id_, c.id_),
                       [cp, self] {
                         if (cp->ErasePendingRaise(self)) {
                           cp->DecSize();
                         }
                         self->alerted = false;
                         self->alert_woken = false;
                       });
    obs::Inc(obs::Counter::kTimedWaitAlerted);
    return WaitResult::kAlerted;
  }
  mu.AcquireInternal(spec::MakeAlertResumeReturns(self->id, mu.id_, c.id_));
  self->alert_woken = false;
  obs::Inc(obs::Counter::kTimedWaitSatisfied);
  return WaitResult::kSatisfied;
}

void AlertP(Semaphore& s) {
  Machine& m = s.machine_;
  Fiber* self = Machine::Self();
  obs::ScopedEvent ev(obs::Op::kAlertP, s.id_, Tid(self));
  bool first_attempt = true;
  for (;;) {
    if (m.ShuttingDown()) {
      return;
    }
    m.Step();  // test-and-set: may win even with an alert pending — the
               // RETURNS/RAISES nondeterminism the paper discusses
    if (!s.bit_) {
      s.bit_ = true;
      if (first_attempt) {
        obs::Inc(obs::Counter::kFastSemP);
      }
      Emit(m, spec::MakeAlertPReturns(self->id, s.id_));
      return;
    }
    if (first_attempt) {
      obs::Inc(obs::Counter::kNubAlertP);
    }
    first_attempt = false;
    m.SpinAcquire();
    m.Step();
    if (self->alerted) {
      self->alerted = false;
      self->alert_woken = false;
      Emit(m, spec::MakeAlertPRaises(self->id, s.id_));
      m.SpinRelease();
      throw Alerted();
    }
    s.queue_.PushBack(self);
    m.Step();
    if (s.bit_) {
      self->block_kind = Fiber::BlockKind::kSemaphore;
      self->blocked_obj = &s;
      self->alertable = true;
      self->alert_woken = false;
      m.DescheduleSelf();
      if (self->alert_woken) {
        m.SpinAcquire();
        m.Step();
        self->alert_woken = false;
        self->alerted = false;
        Emit(m, spec::MakeAlertPRaises(self->id, s.id_));
        m.SpinRelease();
        throw Alerted();
      }
    } else {
      s.queue_.Remove(self);
      m.SpinRelease();
    }
  }
}

}  // namespace taos::firefly
