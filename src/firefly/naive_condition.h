// The paper's strawman condition variable under the deterministic simulator,
// for experiment E8. The algorithm — and the quotation explaining why its
// Broadcast loses wakeups — lives in src/base/naive_condition_core.h; this
// layer supplies the simulator glue: a Machine::Step at every yield point
// (so the model checker can interleave there) and a plain waiter count. The
// checker (src/model) finds the losing Broadcast schedule exhaustively.

#ifndef TAOS_SRC_FIREFLY_NAIVE_CONDITION_H_
#define TAOS_SRC_FIREFLY_NAIVE_CONDITION_H_

#include "src/base/naive_condition_core.h"
#include "src/firefly/sync.h"

namespace taos::firefly {

class NaiveCondition {
 public:
  explicit NaiveCondition(Machine& machine)
      : // The semaphore must start unavailable: a Wait's P should sleep
        // until some Signal's V.
        sem_(machine, /*initially_available=*/false),
        core_(sem_, MachineStep{&machine}) {}

  void Wait(Mutex& m) { core_.Wait(m); }
  void Signal() { core_.Signal(); }
  void Broadcast() { core_.Broadcast(); }

 private:
  struct MachineStep {
    Machine* machine;
    void operator()() const { machine->Step(); }
  };

  Semaphore sem_;
  base::NaiveConditionCore<Mutex, Semaphore, base::PlainWaiterCount,
                           MachineStep>
      core_;
};

}  // namespace taos::firefly

#endif  // TAOS_SRC_FIREFLY_NAIVE_CONDITION_H_
