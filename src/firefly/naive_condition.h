// The paper's strawman condition variable, for experiment E8:
//
//   "The semantics of Wait and Signal could be achieved by representing each
//    condition variable as a semaphore, and implementing Wait(m, c) as
//    Release(m); P(c); Acquire(m) and Signal(c) as V(c). [...]
//    Unfortunately, this implementation does not generalize to Broadcast(c).
//    The reason is that there might be arbitrarily many threads in the race
//    (at the semicolon between Release(m) and P(c)), and the implementation
//    of Broadcast would have no way of indicating that they should all
//    resume execution."
//
// Broadcast below does the best a binary semaphore allows — one V per
// waiter it can count — and still loses wakeups: consecutive V operations
// collapse into a single "available" state while waiters are between
// Release(m) and P(c), so some waiter sleeps forever. The model checker
// (src/model) finds the losing schedule exhaustively.

#ifndef TAOS_SRC_FIREFLY_NAIVE_CONDITION_H_
#define TAOS_SRC_FIREFLY_NAIVE_CONDITION_H_

#include "src/firefly/sync.h"

namespace taos::firefly {

class NaiveCondition {
 public:
  explicit NaiveCondition(Machine& machine)
      : machine_(machine),
        // The semaphore must start unavailable: a Wait's P should sleep
        // until some Signal's V.
        sem_(machine, /*initially_available=*/false) {}

  void Wait(Mutex& m) {
    machine_.Step();
    ++waiters_;
    m.Release();
    sem_.P();  // the race window is the step boundary right here
    m.Acquire();
    machine_.Step();
    --waiters_;
  }

  // Signal(c) = V(c): correct for a single waiter — the one bit in the
  // semaphore covers the wakeup-waiting race.
  void Signal() { sem_.V(); }

  // One V per current waiter: the strongest broadcast a binary semaphore
  // admits, and still wrong — the Vs collapse while waiters race.
  void Broadcast() {
    machine_.Step();
    const int n = waiters_;
    for (int i = 0; i < n; ++i) {
      sem_.V();
    }
  }

 private:
  Machine& machine_;
  Semaphore sem_;
  int waiters_ = 0;
};

}  // namespace taos::firefly

#endif  // TAOS_SRC_FIREFLY_NAIVE_CONDITION_H_
