// The Threads synchronization primitives on the simulated Firefly,
// implemented exactly as the paper's Implementation section describes:
//
//  - Mutex / Semaphore: a pair (Lock-bit, Queue). User code is an inline
//    test-and-set (one simulated instruction); the Nub subroutines enqueue /
//    re-test / de-schedule and unblock-one under the global spin-lock.
//  - Condition: a pair (Eventcount, Queue). Wait reads the eventcount,
//    releases the mutex, then Block(c, i) sleeps only if the eventcount is
//    unchanged; Signal/Broadcast increment it and make one/all queued
//    threads ready. set_use_eventcount(false) removes the comparison,
//    recreating the wakeup-waiting race (experiment E7).
//  - Alerts: a per-thread flag plus unblock-if-alertably-blocked, under the
//    spin-lock.
//
// When the machine has a TraceSink, every operation emits its spec-visible
// atomic action inside the simulation step that performs it, so the emitted
// order is exactly the execution's serialization. One modelling choice is
// documented in DESIGN.md: the eventcount snapshot that Block compares
// against is taken at Wait's mutex-release step (the linearization point of
// the spec's Enqueue action) rather than one step earlier.
//
// All objects must outlive no longer than their Machine, and are only used
// from that machine's fibers.

#ifndef TAOS_SRC_FIREFLY_SYNC_H_
#define TAOS_SRC_FIREFLY_SYNC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/alerted.h"
#include "src/base/intrusive_queue.h"
#include "src/firefly/machine.h"
#include "src/spec/action.h"
#include "src/threads/wait_result.h"

namespace taos::firefly {

class Condition;

class Mutex {
 public:
  explicit Mutex(Machine& machine);
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Acquire();
  void Release();

  // Extension beyond the paper's "simple priority scheme": when enabled,
  // a blocking Acquire boosts the holder's effective priority to its own,
  // and Release restores the releaser's base priority — the classic cure
  // for priority inversion (demonstrated in tests/firefly_priority_test).
  void set_priority_inheritance(bool v) { priority_inheritance_ = v; }

  spec::ObjId id() const { return id_; }
  Fiber* HolderForDebug() const { return holder_; }

  std::uint64_t fast_acquires() const { return fast_acquires_; }
  std::uint64_t slow_acquires() const { return slow_acquires_; }

 private:
  friend class Condition;
  friend void AlertWait(Mutex& m, Condition& c);
  friend WaitResult AlertWaitFor(Mutex& m, Condition& c,
                                 std::uint64_t timeout_steps);

  // Acquire loop; emits `emit` at the successful test-and-set, running
  // `at_success` (still within that atomic step) first.
  void AcquireInternal(const spec::Action& emit,
                       const std::function<void()>& at_success = nullptr);

  // Release; runs `at_clear` within the lock-bit-clearing step (Wait's
  // Enqueue action emits there instead of a plain Release).
  void ReleaseInternal(const std::function<void()>& at_clear);

  Machine& machine_;
  bool bit_ = false;  // the Lock-bit
  bool priority_inheritance_ = false;
  Fiber* holder_ = nullptr;
  IntrusiveQueue<Fiber> queue_;  // guarded by the Nub spin-lock
  spec::ObjId id_;

  std::uint64_t fast_acquires_ = 0;
  std::uint64_t slow_acquires_ = 0;
};

// LOCK e DO ... END
class Lock {
 public:
  explicit Lock(Mutex& m) : m_(m) { m_.Acquire(); }
  ~Lock() { m_.Release(); }
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

 private:
  Mutex& m_;
};

class Condition {
 public:
  explicit Condition(Machine& machine);
  ~Condition();
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  void Wait(Mutex& m);

  // Wait with a deadline, in virtual time: `timeout_steps` machine steps
  // from now. kSatisfied after a Signal/Broadcast wakeup, kTimeout once the
  // simulated clock reached the deadline first; either way m is held again
  // on return. A Signal that dequeues this fiber always beats the clock
  // (the expiry only fires on fibers still on the queue). timeout_steps ==
  // 0 returns kTimeout immediately without releasing m. On a traced
  // machine the expiry path emits the spec's TimeoutResume action.
  WaitResult WaitFor(Mutex& m, std::uint64_t timeout_steps);

  void Signal();
  void Broadcast();

  // Ablation (E7): when false, Block always sleeps — the eventcount
  // comparison that covers the wakeup-waiting race is removed. Only valid
  // on an untraced machine.
  void set_use_eventcount(bool v) { use_eventcount_ = v; }

  spec::ObjId id() const { return id_; }

  std::uint64_t absorbed_wakeups() const { return absorbed_; }
  std::uint64_t fast_signals() const { return fast_signals_; }
  // Signals that made more than one thread runnable (pop + window absorbs).
  std::uint64_t multi_unblock_signals() const {
    return multi_unblock_signals_;
  }

 private:
  friend void Alert(FiberHandle t);
  friend void AlertWait(Mutex& m, Condition& c);
  friend WaitResult AlertWaitFor(Mutex& m, Condition& c,
                                 std::uint64_t timeout_steps);

  bool EraseWindow(Fiber* f);
  bool ErasePendingRaise(Fiber* f);
  bool ErasePendingTimeout(Fiber* f);
  // Fiber::timeout_dequeue target: the clock interrupt removes the expired
  // fiber from queue_ (it stays a spec-member of c, in pending_timeout_,
  // until its TimeoutResume action fires).
  static void TimeoutDequeue(Fiber* f);
  void DecSize() {
    if (c_size_ > 0) {
      --c_size_;
    }
  }

  Machine& machine_;
  std::uint64_t ec_ = 0;  // the Eventcount
  IntrusiveQueue<Fiber> queue_;  // guarded by the Nub spin-lock
  spec::ObjId id_;
  bool use_eventcount_ = true;

  // |c| in spec terms: queued + in-window + pending-raise fibers. Drives the
  // "no threads to unblock" user-code fast path of Signal/Broadcast.
  int c_size_ = 0;
  std::vector<Fiber*> window_;
  std::vector<Fiber*> pending_raise_;
  std::vector<Fiber*> pending_timeout_;

  std::uint64_t absorbed_ = 0;
  std::uint64_t fast_signals_ = 0;
  std::uint64_t multi_unblock_signals_ = 0;
};

class Semaphore {
 public:
  // The spec's Semaphore is INITIALLY available; `initially_available =
  // false` is an extension used by baseline constructions (e.g. the naive
  // semaphore-encoded condition variable) that need a taken token up front.
  explicit Semaphore(Machine& machine, bool initially_available = true);
  ~Semaphore();
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void P();
  void V();

  spec::ObjId id() const { return id_; }
  bool AvailableForDebug() const { return !bit_; }

 private:
  friend void Alert(FiberHandle t);
  friend void AlertP(Semaphore& s);

  Machine& machine_;
  bool bit_ = false;  // 1 iff unavailable
  IntrusiveQueue<Fiber> queue_;  // guarded by the Nub spin-lock
  spec::ObjId id_;
};

// Simulator twin of taos::Event (src/threads/event.h): a boolean state
// variable with manual/auto reset, the base object of the multi-object
// wait. Level-triggered with waiter-side consumption, exactly the real
// runtime's semantics; the structure mirrors Semaphore with the bit sense
// inverted (set = available).
enum class EventReset : std::uint8_t { kManual, kAuto };

class Poll;

class Event {
 public:
  explicit Event(Machine& machine, EventReset reset = EventReset::kManual);
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void Set();
  void Reset();
  void Wait();
  // Deadline in virtual time (machine steps), as Condition::WaitFor. On the
  // expiry path emits the spec's WaitFor/TIMEOUT action over {this}.
  WaitResult WaitFor(std::uint64_t timeout_steps);

  bool IsSet() const { return set_; }
  EventReset reset_mode() const { return reset_; }
  spec::ObjId id() const { return id_; }

 private:
  friend class Poll;
  friend void Alert(FiberHandle t);

  // Fiber::timeout_dequeue target for plain timed waiters.
  static void TimeoutDequeue(Fiber* f);

  Machine& machine_;
  bool set_ = false;
  IntrusiveQueue<Fiber> queue_;   // plain waiters, guarded by the spin-lock
  std::vector<Fiber*> pollers_;   // blocked Poll waiters registered here
  const EventReset reset_;
  spec::ObjId id_;
};

// Simulator twin of taos::Poll: WaitAny/WaitAll over a set of Events. The
// driver serializes everything, so instead of the runtime's notify-latch
// protocol a blocked poll waiter simply sits on every member's pollers_
// list; Event::Set (and Alert, and the clock interrupt) deregisters it from
// ALL members before MakeReady — the simulator's O(1)-equivalent of
// atomic deregistration, trivially free of the lost-wakeup window the
// litmus tests probe because it happens under the Nub spin-lock. Wakeups
// are hints (Mesa): the waiter re-scans, and consumption happens
// waiter-side inside one atomic step, which is also where the spec's
// WaitAny/WaitAll action is emitted.
class Poll {
 public:
  static constexpr std::size_t kMaxWait = 8;

  Poll() = default;
  Poll(const Poll&) = delete;
  Poll& operator=(const Poll&) = delete;

  // REQUIRES e not already added, fewer than kMaxWait members, all members
  // on the same Machine.
  void Add(Event& e);
  std::size_t size() const { return n_; }

  // REQUIRES a non-empty wait set (all variants).
  std::size_t WaitAny();

  struct AnyResult {
    std::size_t index;  // size() when result != kSatisfied
    WaitResult result;
  };
  AnyResult WaitAnyFor(std::uint64_t timeout_steps);
  std::size_t AlertWaitAny();  // raises taos::Alerted
  AnyResult AlertWaitAnyFor(std::uint64_t timeout_steps);

  void WaitAll();
  WaitResult WaitAllFor(std::uint64_t timeout_steps);
  void AlertWaitAll();  // raises taos::Alerted
  WaitResult AlertWaitAllFor(std::uint64_t timeout_steps);

 private:
  friend class Event;
  friend void Alert(FiberHandle t);

  static void TimeoutDequeue(Fiber* f);

  WaitResult WaitInternal(bool all, bool alertable, bool timed,
                          std::uint64_t timeout_steps, std::size_t* index);
  // Scan + consume + emit, inside the current atomic step. REQUIRES the
  // Nub spin-lock held (the emission linearizes there).
  bool TryGrantLocked(bool all, const spec::ObjIdSet& ws, std::size_t* index);
  void RegisterAllLocked(Fiber* f);
  void DeregisterFiber(Fiber* f);
  spec::ObjIdSet WaitSetIds() const;

  Event* events_[kMaxWait] = {};
  std::size_t n_ = 0;
};

// Alerting.
void Alert(FiberHandle t);
bool TestAlert();
void AlertWait(Mutex& m, Condition& c);  // raises taos::Alerted
void AlertP(Semaphore& s);               // raises taos::Alerted

// AlertWait with a virtual-time deadline, reporting all three outcomes as a
// value instead of raising (the simulator twin of taos::AlertWaitFor):
// kSatisfied on a signal wakeup, kTimeout when the simulated clock expired
// the wait first, kAlerted when an Alert ended it (the alert flag is
// consumed, no Alerted is thrown). On the kTimeout path a pending alert is
// deliberately NOT consumed. m is held again on return in every case;
// timeout_steps == 0 returns kTimeout immediately without releasing m.
WaitResult AlertWaitFor(Mutex& m, Condition& c, std::uint64_t timeout_steps);

}  // namespace taos::firefly

#endif  // TAOS_SRC_FIREFLY_SYNC_H_
