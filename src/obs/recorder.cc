#include "src/obs/recorder.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace taos::obs {

namespace internal {
std::atomic<bool> g_recorder_enabled{false};
}  // namespace internal

namespace {

// 4096 events * 40 bytes = 160 KiB per recording thread.
constexpr std::uint64_t kRingCapacity = 4096;
static_assert((kRingCapacity & (kRingCapacity - 1)) == 0);

struct Ring {
  std::uint32_t tid = 0;
  // Total events ever written; slot i lives at slots[i % capacity]. The
  // owner stores it with release order after filling the slot; the drain
  // reads it with acquire order (see the memory model in recorder.h).
  std::atomic<std::uint64_t> next{0};
  Event slots[kRingCapacity];
};

std::mutex& RegistryLock() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::vector<Ring*>& Registry() {
  static std::vector<Ring*>* v = new std::vector<Ring*>();
  return *v;
}

std::uint32_t NextTid() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Ring& LocalRing() {
  thread_local Ring* ring = [] {
    Ring* r = new Ring();  // leaked: events survive thread exit until drained
    r->tid = NextTid();
    std::lock_guard<std::mutex> g(RegistryLock());
    Registry().push_back(r);
    return r;
  }();
  return *ring;
}

constexpr const char* kOpNames[static_cast<int>(Op::kNumOps)] = {
    "Acquire", "Release", "Wait",   "Signal",     "Broadcast",   "P",
    "V",       "Alert",   "AlertWait", "AlertP", "Unpark",
    "ParkResume", "TimerExpire", "EventSet", "EventWait", "Poll",
};

std::mutex& MetadataLock() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::vector<std::pair<std::string, std::string>>& Metadata() {
  static auto* v = new std::vector<std::pair<std::string, std::string>>();
  return *v;
}

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

// Fixed-point microseconds with nanosecond precision, avoiding double
// formatting drift: 1234 ns -> "1.234".
void AppendMicros(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

}  // namespace

const char* OpName(Op op) { return kOpNames[static_cast<int>(op)]; }

void ScopedEvent::Arm(Op op, std::uint64_t obj, std::uint32_t tid) {
  armed_ = true;
  op_ = op;
  tid_ = tid;
  obj_ = obj;
  start_ = NowNanos();
}

void ScopedEvent::Finish() {
  RecordEvent(op_, obj_, start_, NowNanos() - start_, tid_);
}

void SetRecorderEnabled(bool on) {
  internal::g_recorder_enabled.store(on, std::memory_order_relaxed);
}

void RecordEvent(Op op, std::uint64_t obj, std::uint64_t ts_ns,
                 std::uint64_t dur_ns, std::uint32_t tid, std::uint64_t flow) {
  Ring& ring = LocalRing();
  const std::uint64_t i = ring.next.load(std::memory_order_relaxed);
  Event& slot = ring.slots[i % kRingCapacity];
  slot.ts_ns = ts_ns;
  slot.dur_ns = dur_ns;
  slot.obj = obj;
  slot.flow = flow;
  slot.tid = tid == 0 ? ring.tid : tid;
  slot.op = op;
  ring.next.store(i + 1, std::memory_order_release);
}

std::uint64_t NextFlowId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void SetTraceMetadata(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> g(MetadataLock());
  for (auto& kv : Metadata()) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  Metadata().emplace_back(key, value);
}

std::string DrainChromeTraceJson() {
  std::ostringstream os;
  std::uint64_t dropped_total = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> dropped_by_ring;
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  std::lock_guard<std::mutex> g(RegistryLock());
  for (Ring* ring : Registry()) {
    const std::uint64_t next = ring->next.load(std::memory_order_acquire);
    const std::uint64_t begin = next > kRingCapacity ? next - kRingCapacity : 0;
    dropped_total += begin;
    if (begin != 0) {
      dropped_by_ring.emplace_back(ring->tid, begin);
    }
    if (next != begin) {
      os << (first ? "" : ",")
         << "\n {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": "
         << ring->tid << ", \"args\": {\"name\": \"taos-thread-" << ring->tid
         << "\"}}";
      first = false;
    }
    // Ring order is completion order; nested ScopedEvents (e.g. Wait's
    // mutex re-acquisition inside Wait) complete before their enclosing
    // scope. Sort by start time so each thread's row is monotone and
    // Perfetto renders enclosing scopes as enclosing slices.
    std::vector<Event> events;
    events.reserve(static_cast<std::size_t>(next - begin));
    for (std::uint64_t i = begin; i < next; ++i) {
      events.push_back(ring->slots[i % kRingCapacity]);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    for (const Event& e : events) {
      os << ",\n {\"name\": \"" << OpName(e.op)
         << "\", \"cat\": \"sync\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
         << e.tid << ", \"ts\": ";
      AppendMicros(os, e.ts_ns);
      os << ", \"dur\": ";
      AppendMicros(os, e.dur_ns);
      os << ", \"args\": {\"obj\": " << e.obj;
      if (e.flow != 0) {
        os << ", \"flow\": " << e.flow;
      }
      os << "}}";
      // Perfetto flow arrows: a flow-stamped Unpark starts the edge at the
      // waker's grant instant ("s"), the matching ParkResume finishes it at
      // the wakee's resume instant ("f", binding point "enclosing slice").
      // kUnpark events carry ts = grant instant, kParkResume events carry
      // ts = grant instant + dur = latency, so the arrow spans the
      // signal-to-running window.
      if (e.flow != 0 && (e.op == Op::kUnpark || e.op == Op::kParkResume)) {
        const bool start = e.op == Op::kUnpark;
        os << ",\n {\"name\": \"wakeup\", \"cat\": \"wakeup\", \"ph\": \""
           << (start ? 's' : 'f') << "\"";
        if (!start) {
          os << ", \"bp\": \"e\"";
        }
        os << ", \"id\": " << e.flow << ", \"pid\": 1, \"tid\": " << e.tid
           << ", \"ts\": ";
        AppendMicros(os, start ? e.ts_ns : e.ts_ns + e.dur_ns);
        os << "}";
      }
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
  os << "\n], \"otherData\": {\"dropped_events\": " << dropped_total;
  os << ", \"dropped_by_ring\": {";
  for (std::size_t i = 0; i < dropped_by_ring.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << dropped_by_ring[i].first
       << "\": " << dropped_by_ring[i].second;
  }
  os << "}";
  {
    std::lock_guard<std::mutex> mg(MetadataLock());
    for (const auto& kv : Metadata()) {
      os << ", \"";
      AppendJsonEscaped(os, kv.first);
      os << "\": \"";
      AppendJsonEscaped(os, kv.second);
      os << "\"";
    }
  }
  os << "}}\n";
  return os.str();
}

void DumpRecentEventsForDebug(std::FILE* f, std::size_t max_events) {
  // Relaxed, non-draining reads; see the contract in recorder.h. Collect
  // the newest events of every ring, then keep the globally newest N.
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> g(RegistryLock());
    for (Ring* ring : Registry()) {
      const std::uint64_t next = ring->next.load(std::memory_order_acquire);
      const std::uint64_t lo =
          next > kRingCapacity ? next - kRingCapacity : 0;
      const std::uint64_t from =
          next - lo > max_events ? next - max_events : lo;
      for (std::uint64_t i = from; i < next; ++i) {
        Event e = ring->slots[i % kRingCapacity];
        if (e.tid == 0) {
          e.tid = ring->tid;
        }
        events.push_back(e);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  std::fprintf(f, "--- last %zu flight-recorder events (newest last) ---\n",
               events.size());
  for (const Event& e : events) {
    std::fprintf(f, "  ts=%llu.%03lluus dur=%llu.%03lluus tid=%u %s obj=%llu",
                 static_cast<unsigned long long>(e.ts_ns / 1000),
                 static_cast<unsigned long long>(e.ts_ns % 1000),
                 static_cast<unsigned long long>(e.dur_ns / 1000),
                 static_cast<unsigned long long>(e.dur_ns % 1000), e.tid,
                 OpName(e.op), static_cast<unsigned long long>(e.obj));
    if (e.flow != 0) {
      std::fprintf(f, " flow=%llu", static_cast<unsigned long long>(e.flow));
    }
    std::fputc('\n', f);
  }
  std::fputs("--- end flight-recorder events ---\n", f);
}

bool DrainChromeTraceJsonToFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << DrainChromeTraceJson();
  return static_cast<bool>(out);
}

}  // namespace taos::obs
