#include "src/obs/recorder.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

namespace taos::obs {

namespace internal {
std::atomic<bool> g_recorder_enabled{false};
}  // namespace internal

namespace {

// 4096 events * 32 bytes = 128 KiB per recording thread.
constexpr std::uint64_t kRingCapacity = 4096;
static_assert((kRingCapacity & (kRingCapacity - 1)) == 0);

struct Ring {
  std::uint32_t tid = 0;
  // Total events ever written; slot i lives at slots[i % capacity]. The
  // owner stores it with release order after filling the slot; the drain
  // reads it with acquire order (see the memory model in recorder.h).
  std::atomic<std::uint64_t> next{0};
  Event slots[kRingCapacity];
};

std::mutex& RegistryLock() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::vector<Ring*>& Registry() {
  static std::vector<Ring*>* v = new std::vector<Ring*>();
  return *v;
}

std::uint32_t NextTid() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Ring& LocalRing() {
  thread_local Ring* ring = [] {
    Ring* r = new Ring();  // leaked: events survive thread exit until drained
    r->tid = NextTid();
    std::lock_guard<std::mutex> g(RegistryLock());
    Registry().push_back(r);
    return r;
  }();
  return *ring;
}

constexpr const char* kOpNames[static_cast<int>(Op::kNumOps)] = {
    "Acquire", "Release", "Wait",  "Signal",    "Broadcast",
    "P",       "V",       "Alert", "AlertWait", "AlertP",
};

// Fixed-point microseconds with nanosecond precision, avoiding double
// formatting drift: 1234 ns -> "1.234".
void AppendMicros(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

}  // namespace

const char* OpName(Op op) { return kOpNames[static_cast<int>(op)]; }

void ScopedEvent::Arm(Op op, std::uint64_t obj, std::uint32_t tid) {
  armed_ = true;
  op_ = op;
  tid_ = tid;
  obj_ = obj;
  start_ = NowNanos();
}

void ScopedEvent::Finish() {
  RecordEvent(op_, obj_, start_, NowNanos() - start_, tid_);
}

void SetRecorderEnabled(bool on) {
  internal::g_recorder_enabled.store(on, std::memory_order_relaxed);
}

void RecordEvent(Op op, std::uint64_t obj, std::uint64_t ts_ns,
                 std::uint64_t dur_ns, std::uint32_t tid) {
  Ring& ring = LocalRing();
  const std::uint64_t i = ring.next.load(std::memory_order_relaxed);
  Event& slot = ring.slots[i % kRingCapacity];
  slot.ts_ns = ts_ns;
  slot.dur_ns = dur_ns;
  slot.obj = obj;
  slot.tid = tid == 0 ? ring.tid : tid;
  slot.op = op;
  ring.next.store(i + 1, std::memory_order_release);
}

std::string DrainChromeTraceJson() {
  std::ostringstream os;
  std::uint64_t dropped_total = 0;
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  std::lock_guard<std::mutex> g(RegistryLock());
  for (Ring* ring : Registry()) {
    const std::uint64_t next = ring->next.load(std::memory_order_acquire);
    const std::uint64_t begin = next > kRingCapacity ? next - kRingCapacity : 0;
    dropped_total += begin;
    if (next != begin) {
      os << (first ? "" : ",")
         << "\n {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": "
         << ring->tid << ", \"args\": {\"name\": \"taos-thread-" << ring->tid
         << "\"}}";
      first = false;
    }
    // Ring order is completion order; nested ScopedEvents (e.g. Wait's
    // mutex re-acquisition inside Wait) complete before their enclosing
    // scope. Sort by start time so each thread's row is monotone and
    // Perfetto renders enclosing scopes as enclosing slices.
    std::vector<Event> events;
    events.reserve(static_cast<std::size_t>(next - begin));
    for (std::uint64_t i = begin; i < next; ++i) {
      events.push_back(ring->slots[i % kRingCapacity]);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    for (const Event& e : events) {
      os << ",\n {\"name\": \"" << OpName(e.op)
         << "\", \"cat\": \"sync\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
         << e.tid << ", \"ts\": ";
      AppendMicros(os, e.ts_ns);
      os << ", \"dur\": ";
      AppendMicros(os, e.dur_ns);
      os << ", \"args\": {\"obj\": " << e.obj << "}}";
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
  os << "\n], \"otherData\": {\"dropped_events\": " << dropped_total << "}}\n";
  return os.str();
}

bool DrainChromeTraceJsonToFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << DrainChromeTraceJson();
  return static_cast<bool>(out);
}

}  // namespace taos::obs
