// Flight recorder: per-thread lock-free SPSC ring buffers of fixed-size
// timestamped synchronization events, drained into Chrome trace-event JSON
// (renderable in chrome://tracing or https://ui.perfetto.dev).
//
// Memory model (mirrors the spec-trace serialization argument in
// src/threads/nub.h, but for wall-clock instead of stamp order):
//  - Each OS thread owns one ring. The owner is the only writer (single
//    producer); it publishes a slot by storing the ring's write index with
//    release order after filling the slot.
//  - Draining is legal only while the system is quiescent with respect to
//    event production: every thread that recorded has either been joined or
//    passed a synchronization point that happens-before the drain. The
//    drain's acquire load of each write index then orders it after every
//    published slot, so the plain slot reads race with nothing.
//  - The rings overwrite oldest (true flight-recorder semantics); the drain
//    reports how many events each ring dropped, never silently.
//
// The recorder is distinct from the spec TraceSink (src/spec/trace.h): the
// sink captures spec-visible atomic actions for the conformance checker and
// forces every operation down its Nub path; the recorder timestamps the
// production code paths — fast paths included — and costs one relaxed load
// per operation while disabled. The two compose: a traced (conformance)
// run can record flight events at the same time.

#ifndef TAOS_SRC_OBS_RECORDER_H_
#define TAOS_SRC_OBS_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "src/obs/metrics.h"

namespace taos::obs {

// The operation kinds the recorder (and the per-op Nub counters) know about.
enum class Op : std::uint16_t {
  kAcquire,
  kRelease,
  kWait,
  kSignal,
  kBroadcast,
  kP,
  kV,
  kAlert,
  kAlertWait,
  kAlertP,

  // Wakeup causality (the diag layer, src/obs/diag.h): kUnpark is recorded
  // by the waker at the instant it grants a parked thread's permit; the
  // matching kParkResume is recorded by the wakee when Park returns, with
  // ts = the waker's grant instant and dur = the signal-to-running latency.
  // Both carry the same nonzero flow id, which the drain renders as a
  // Perfetto flow arrow from waker to wakee.
  kUnpark,
  kParkResume,
  kTimerExpire,  // timer thread processing one expired deadline

  // Multi-object wait (src/threads/poll).
  kEventSet,
  kEventWait,
  kPoll,  // one WaitAny/WaitAll call, registration to grant

  kNumOps,
};

const char* OpName(Op op);

// One fixed-size recorded event; 40 bytes.
struct Event {
  std::uint64_t ts_ns;   // start, NowNanos() clock
  std::uint64_t dur_ns;
  std::uint64_t obj;     // spec::ObjId, or target thread id for Alert
  std::uint64_t flow;    // wakeup-causality edge id; 0 = none
  std::uint32_t tid;     // recording thread (0 = the ring's own thread)
  Op op;
  std::uint16_t pad = 0;
};

namespace internal {
extern std::atomic<bool> g_recorder_enabled;
}  // namespace internal

inline bool RecorderEnabled() {
  return internal::g_recorder_enabled.load(std::memory_order_relaxed);
}

// Runtime switch. Enabling is cheap and safe at any quiescent point;
// disabling leaves the rings intact for draining.
void SetRecorderEnabled(bool on);

// Appends one event to the calling thread's ring (overwriting the oldest if
// full). tid 0 means "this thread". Callers normally go through ScopedEvent
// and never pay this call while the recorder is off. A nonzero `flow` links
// this event into a wakeup-causality edge (see Op::kUnpark above).
void RecordEvent(Op op, std::uint64_t obj, std::uint64_t ts_ns,
                 std::uint64_t dur_ns, std::uint32_t tid = 0,
                 std::uint64_t flow = 0);

// Fresh nonzero id for one wakeup-causality edge (waker side draws it,
// wakee side echoes it).
std::uint64_t NextFlowId();

// Attaches a key/value pair to the next drained trace's otherData (e.g.
// lock_backend, waitq mode), so A/B trace artifacts are self-describing.
// Quiescent-only, like the drain; setting a key again overwrites it.
void SetTraceMetadata(const std::string& key, const std::string& value);

// Drains every ring into one Chrome trace-event JSON document and resets the
// rings. Quiescence required (see the memory model above). Flow-stamped
// kUnpark/kParkResume pairs additionally emit Chrome flow records ("ph":
// "s"/"f") so Perfetto draws waker -> wakee arrows; otherData carries the
// total and per-ring dropped-event counts plus any SetTraceMetadata pairs.
std::string DrainChromeTraceJson();

// Convenience: DrainChromeTraceJson() to a file. Returns false on I/O error.
bool DrainChromeTraceJsonToFile(const std::string& path);

// Crash/hang-path dump: prints the newest `max_events` events across all
// rings to `f`, newest last, without draining or resetting anything.
// Deliberately racy (relaxed reads of rings that may be mid-write): the
// caller is a watchdog diagnosing a hang, where a torn in-flight slot is an
// acceptable price for not touching the rings' publication protocol. Never
// use it for data that feeds analysis; that is what the quiescent drain is
// for.
void DumpRecentEventsForDebug(std::FILE* f, std::size_t max_events);

// RAII bracket: captures the start timestamp if the recorder is enabled at
// entry, records the event (with duration) at scope exit — including exits
// by exception, so an AlertWait that raises Alerted still leaves its event.
//
// The armed work (clock reads, the ring append) lives out of line in
// Arm/Finish: keeping those calls off the inline path means a disabled
// ScopedEvent costs one relaxed load and two predicted branches, without
// dragging NowNanos's call sequence into the enclosing fast path.
class ScopedEvent {
 public:
  ScopedEvent(Op op, std::uint64_t obj, std::uint32_t tid = 0) {
    if (RecorderEnabled()) [[unlikely]] {
      Arm(op, obj, tid);
    }
  }

  ~ScopedEvent() {
    if (armed_) [[unlikely]] {
      Finish();
    }
  }

  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  void Arm(Op op, std::uint64_t obj, std::uint32_t tid);  // sets start_
  void Finish();  // records the event

  bool armed_ = false;
  Op op_ = Op::kAcquire;
  std::uint32_t tid_ = 0;
  std::uint64_t obj_ = 0;
  std::uint64_t start_ = 0;
};

// Runs `body` bracketed by a ScopedEvent when the recorder is on, bare when
// it is off. For hot fast paths: the off branch contains no ScopedEvent
// object at all, so the enclosing function pays one relaxed load and one
// predicted branch — no stack slot, no destructor bookkeeping across calls.
template <typename F>
inline void WithEvent(Op op, std::uint64_t obj, F&& body) {
  if (RecorderEnabled()) [[unlikely]] {
    ScopedEvent ev(op, obj);
    body();
  } else {
    body();
  }
}

}  // namespace taos::obs

#endif  // TAOS_SRC_OBS_RECORDER_H_
