#include "src/obs/metrics.h"

#include <bit>
#include <chrono>
#include <iterator>
#include <mutex>
#include <sstream>
#include <vector>

namespace taos::obs {

namespace {

// The registry guards cold operations only (thread birth, snapshot, reset),
// so a std::mutex is fine; the hot path never touches it.
std::mutex& RegistryLock() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::vector<Cell*>& Registry() {
  static std::vector<Cell*>* v = new std::vector<Cell*>();
  return *v;
}

// Deliberately unsized: the static_asserts below pin the table lengths to
// the enums, so adding a Counter/Histogram without naming it (or naming one
// twice) is a compile error instead of a silent trailing null that
// Snapshot/StatsJson would walk into.
constexpr const char* kCounterNames[] = {
    "fast_mutex_acquire",
    "fast_mutex_release",
    "fast_sem_p",
    "fast_sem_v",
    "fast_signal",
    "fast_broadcast",
    "nub_acquire",
    "nub_release",
    "nub_wait",
    "nub_signal",
    "nub_broadcast",
    "nub_p",
    "nub_v",
    "nub_alert",
    "nub_alert_wait",
    "nub_alert_p",
    "wakeup_waiting_hits",
    "spurious_wakeups",
    "handoffs",
    "lock_bit_retries",
    "spin_iterations",
    "contended_spin_acquires",
    "mcs_queued_acquires",
    "clh_queued_acquires",
    "eventcount_advances",
    "waitq_enqueues",
    "waitq_resumes",
    "waitq_immediate_grants",
    "waitq_cancels",
    "waitq_cancel_skips",
    "waitq_segments_allocated",
    "waitq_segments_retired",
    "park_futex_waits",
    "park_condvar_waits",
    "timers_armed",
    "timers_cancelled",
    "timers_expired",
    "timed_wait_satisfied",
    "timed_wait_timeouts",
    "timed_wait_alerted",
    "poll_registrations",
    "poll_spurious_scans",
};
static_assert(std::size(kCounterNames) == static_cast<std::size_t>(kNumCounters),
              "kCounterNames must name every Counter exactly once");

constexpr const char* kHistogramNames[] = {
    "spin_acquire_ns",
    "spin_iters_per_acquire",
    "lock_handoff_ns",
    "blocked_ns",
    "park_wait_ns",
    "unpark_ns",
    "timer_expiry_lag_ns",
    "wakeup_latency_ns",
};
static_assert(
    std::size(kHistogramNames) == static_cast<std::size_t>(kNumHistograms),
    "kHistogramNames must name every Histogram exactly once");

}  // namespace

const char* CounterName(Counter c) {
  return kCounterNames[static_cast<int>(c)];
}

const char* HistogramName(Histogram h) {
  return kHistogramNames[static_cast<int>(h)];
}

namespace internal {
thread_local Cell* g_cell = nullptr;
}  // namespace internal

Cell* RegisterCell() {
  Cell* cell = new Cell();  // value-initialized: all slots zero
  {
    std::lock_guard<std::mutex> g(RegistryLock());
    Registry().push_back(cell);
  }
  internal::g_cell = cell;
  return cell;
}

int HistogramBucket(std::uint64_t value) {
  const int b = std::bit_width(value);  // 0 for 0, else floor(log2)+1
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

std::uint64_t NowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

std::uint64_t Stats::HistogramTotal(Histogram h) const {
  std::uint64_t total = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    total += histograms[static_cast<int>(h)][b];
  }
  return total;
}

Stats Snapshot() {
  Stats out;
  std::lock_guard<std::mutex> g(RegistryLock());
  for (Cell* cell : Registry()) {
    for (int c = 0; c < kNumCounters; ++c) {
      out.counters[c] += cell->counters[c].load(std::memory_order_relaxed);
    }
    for (int h = 0; h < kNumHistograms; ++h) {
      for (int b = 0; b < kHistogramBuckets; ++b) {
        out.histograms[h][b] +=
            cell->histograms[h][b].load(std::memory_order_relaxed);
      }
    }
  }
  return out;
}

std::string StatsJson(const Stats& stats) {
  std::ostringstream os;
  os << "{\"counters\": {";
  for (int c = 0; c < kNumCounters; ++c) {
    os << (c ? ", " : "") << '"' << kCounterNames[c]
       << "\": " << stats.counters[c];
  }
  os << "}, \"histograms\": {";
  for (int h = 0; h < kNumHistograms; ++h) {
    os << (h ? ", " : "") << '"' << kHistogramNames[h] << "\": [";
    for (int b = 0; b < kHistogramBuckets; ++b) {
      os << (b ? "," : "") << stats.histograms[h][b];
    }
    os << ']';
  }
  os << "}}";
  return os.str();
}

std::string ReportJson() { return StatsJson(Snapshot()); }

void ResetStats() {
  std::lock_guard<std::mutex> g(RegistryLock());
  for (Cell* cell : Registry()) {
    for (int c = 0; c < kNumCounters; ++c) {
      cell->counters[c].store(0, std::memory_order_relaxed);
    }
    for (int h = 0; h < kNumHistograms; ++h) {
      for (int b = 0; b < kHistogramBuckets; ++b) {
        cell->histograms[h][b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace taos::obs
