// Contention diagnosis: the always-compiled waits-for registry and the
// watchdog that turns a silent hang into a named deadlock.
//
// The paper specifies the primitives by who may proceed when; the counters
// (metrics.h) and the flight recorder (recorder.h) say how often and how
// long, but neither can answer the two questions a hung process poses:
// WHO is blocked on WHAT, and who was supposed to wake them? This header
// materializes the blocking relation itself:
//
//   - Every thread owns one WaiterSlot. The blocking slow paths publish
//     BlockedOn{object id, wait kind, since_ns} into it right before
//     de-scheduling and clear it on wake (src/threads/thread_record.h is
//     the single funnel). Publication is seqlock-style: writers (serialized
//     by the record's parking-lot lock) bump `seq` to odd, store the
//     fields, bump to even; a reader that sees an odd or changing seq
//     retries or skips. All fields are relaxed atomics so the lock-free
//     readers are exactly as racy as intended and no more (TSan-clean).
//
//   - An owner table maps object id -> holding thread for the primitives
//     that have an owner (Mutex, ReaderWriterMutex writers). Stamped from
//     the acquire epilogues behind the Enabled() gate, so the uncontended
//     fast path pays one relaxed load and a predicted branch when
//     diagnosis is off — the same budget discipline as the recorder.
//
//   - SnapshotBlocked() + FindCycles() turn the two tables into the
//     thread -> object -> owner graph and its cycles; Watchdog runs them
//     periodically from a background thread and dumps blocked edges, wait
//     ages, recent flight-recorder events and (via hook) the chaos replay
//     triple when a deadlock or stall is detected.
//
// Teardown safety (the Rule3Backoff lesson, DESIGN.md §14): the registry
// stores only integers. A snapshot never dereferences a synchronization
// object — the object named by a stale slot or owner stamp may already be
// destroyed, and spec::ObjIds are never reused, so the worst a race can
// produce is a report naming an object that just died, never a touch of
// freed memory.
//
// Layering: taos_obs is the bottom library (src/base links against it), so
// this header and diag.cc use the standard library only. The chaos probe
// and banner hooks exist so higher layers can inject their seams without a
// dependency inversion.

#ifndef TAOS_SRC_OBS_DIAG_H_
#define TAOS_SRC_OBS_DIAG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace taos::obs::diag {

// What a blocked thread is waiting for. Values mirror
// ThreadRecord::BlockKind (static_asserted at the publish site) so the
// threads layer can cast instead of mapping.
enum class WaitKind : std::uint8_t {
  kNone = 0,
  kMutex,
  kSemaphore,
  kCondition,
  kRwShared,
  kRwExclusive,
  kEvent,
  kPollAny,
  kPollAll,
};

const char* WaitKindName(WaitKind k);

// One thread's published blocking state. Cache-line sized and aligned;
// single logical writer (serialized externally by the owning record's
// parking-lot lock), any number of lock-free readers.
struct alignas(64) WaiterSlot {
  std::atomic<std::uint32_t> seq{0};  // odd while a write is in flight
  std::atomic<std::uint8_t> kind{0};  // WaitKind
  std::atomic<std::uint8_t> alertable{0};
  std::atomic<std::uint64_t> obj{0};       // spec::ObjId
  std::atomic<std::uint64_t> since_ns{0};  // NowNanos at publication
  std::uint64_t tid = 0;                   // set once at registration
};

namespace internal {
extern std::atomic<bool> g_diag_enabled;
}  // namespace internal

// The owner-stamp gate: the only cost diagnosis adds to an uncontended
// acquire when off is this relaxed load and a predicted branch.
inline bool Enabled() {
  return internal::g_diag_enabled.load(std::memory_order_relaxed);
}

// Runtime switch for the owner stamps (blocked-slot publication is
// unconditional — it lives on paths that are about to de-schedule anyway).
// Toggle while quiescent, like the recorder: flipping it mid-acquisition
// only risks a stale or missing owner stamp, never a crash.
void SetEnabled(bool on);

// Allocates and registers the calling thread's slot (leaked: a thread's
// last published state survives its exit until overwritten, so a dump can
// still name a thread that died blocked — which cannot happen for a thread
// that exited cleanly, as its slot reads kNone).
WaiterSlot* RegisterWaiterSlot(std::uint64_t tid);

// Seqlock write: callers hold whatever serializes writes to this slot (the
// record's parking-lot lock in the production runtime).
inline void PublishBlocked(WaiterSlot* s, WaitKind kind, std::uint64_t obj,
                          std::uint64_t since_ns, bool alertable) {
  const std::uint32_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_release);
  s->kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s->alertable.store(alertable ? 1 : 0, std::memory_order_relaxed);
  s->obj.store(obj, std::memory_order_relaxed);
  s->since_ns.store(since_ns, std::memory_order_relaxed);
  s->seq.store(seq + 2, std::memory_order_release);
}

inline void ClearBlocked(WaiterSlot* s) {
  PublishBlocked(s, WaitKind::kNone, 0, 0, false);
}

// --- owner table (object id -> holding thread) ---
//
// A fixed-size open-addressed table of {obj, owner} atomics: stamps claim
// an empty slot with a CAS, clears free it again. Best-effort by design —
// a full probe window drops the stamp, and a clear racing a stamp on a
// just-recycled slot can transiently misattribute an owner. The watchdog
// compensates by confirming any cycle across two consecutive snapshots.

void StampOwner(std::uint64_t obj, std::uint64_t tid);
void ClearOwner(std::uint64_t obj);
// 0 when unknown (never stamped, dropped, or currently unowned).
std::uint64_t OwnerOf(std::uint64_t obj);

// --- snapshot and cycle detection ---

struct BlockedEdge {
  std::uint64_t tid = 0;
  std::uint64_t obj = 0;
  std::uint64_t since_ns = 0;
  WaitKind kind = WaitKind::kNone;
  bool alertable = false;
  std::uint64_t owner = 0;  // OwnerOf(obj) at snapshot time; 0 = unknown
};

// Seqlock-consistent read of every registered slot that is currently
// blocked, with owners resolved. Also fires the snapshot probe (the chaos
// seam installed by SetSnapshotProbe).
std::vector<BlockedEdge> SnapshotBlocked();

// A deadlock: blocked edges forming a closed thread -> object -> owner
// loop, listed in walk order starting from the smallest tid.
struct Cycle {
  std::vector<BlockedEdge> edges;
};

// Each thread has at most one outgoing edge (it blocks on at most one
// object), so the waits-for graph is functional and every cycle is a
// simple loop. Owner-less kinds (semaphores, conditions, reader waits
// against an unknown holder) terminate a walk — they cannot close a cycle.
std::vector<Cycle> FindCycles(const std::vector<BlockedEdge>& edges);

// Human-readable report: one line per blocked thread (kind, object, wait
// age, owner), then any cycles. `now_ns` supplies the age reference.
std::string FormatBlockedReport(const std::vector<BlockedEdge>& edges,
                                const std::vector<Cycle>& cycles,
                                std::uint64_t now_ns);

// Chaos seam: called once per SnapshotBlocked(). Installed by the chaos
// layer (which sits above obs) so the snapshot window is injectable
// without this library depending on chaos.h.
void SetSnapshotProbe(void (*probe)());

// --- the watchdog ---

class Watchdog {
 public:
  struct Options {
    std::uint64_t interval_ms = 1000;
    // A blocked edge older than this flags a stall dump even without a
    // cycle. Test mains pick something comfortably below the ctest
    // timeout so a hang self-diagnoses before the harness kills it.
    std::uint64_t stall_ms = 30000;
    std::FILE* out = nullptr;  // dump destination; nullptr = stderr
    // Also append dumps to this file (CI uploads it on failure). Empty =
    // TAOS_WATCHDOG_DUMP env var if set, else no file.
    std::string dump_path;
    // Extra banner printed at the end of each dump (test mains pass
    // chaos::PrintConfigBanner so a dump carries the replay triple).
    void (*banner)(std::FILE*) = nullptr;
    // Called (from the watchdog thread) with the formatted dump when a
    // deadlock cycle is confirmed. The deliberately-deadlocked CI fixture
    // uses this to exit 0 instead of hanging.
    std::function<void(const std::string& dump,
                       const std::vector<Cycle>& cycles)>
        on_deadlock;
  };

  Watchdog() = default;
  ~Watchdog() { Stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Start(const Options& options);
  void Stop();
  bool running() const { return thread_.joinable(); }

  // Scans performed so far (tests use this to wait for coverage).
  std::uint64_t scans() const {
    return scans_.load(std::memory_order_relaxed);
  }

 private:
  void ThreadMain();
  void Scan();
  // A cycle is only reported once the same members are seen blocked with
  // identical since_ns in two consecutive scans: real deadlocks are
  // eternal, while an owner-table race or an in-flight wake can fake one
  // for a single snapshot.
  bool ConfirmedInPreviousScan(const Cycle& cycle) const;
  void Dump(const std::string& report);

  Options options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> scans_{0};
  // tid -> (obj, since_ns) from the previous scan.
  std::vector<BlockedEdge> prev_edges_;
  bool deadlock_reported_ = false;
  std::uint64_t last_stall_dump_ns_ = 0;
};

}  // namespace taos::obs::diag

#endif  // TAOS_SRC_OBS_DIAG_H_
