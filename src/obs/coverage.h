// A small named-slot coverage registry: fixed-capacity, lock-free after
// registration, standard-library-only (like metrics.h it sits below the
// synchronization primitives and must not use them).
//
// The chaos layer (src/base/chaos.h) registers one slot per injection point
// and bumps it on every crossing; a run can then report which race windows
// were actually exercised rather than trusting that a stress test "probably"
// hit them. The registry is generic — any subsystem that wants cheap named
// hit-counting can use it — but chaos is the customer it was built for.
//
// Each slot carries two counters:
//   hits  — the code path crossed the named point (the window exists in this
//           run's configuration and was reached);
//   fires — the crossing actually perturbed the schedule (chaos injected a
//           yield/sleep/spin there, not just walked through).
// Coverage claims are made on hits; fires measure how much pressure the
// active strategy put on each window.

#ifndef TAOS_SRC_OBS_COVERAGE_H_
#define TAOS_SRC_OBS_COVERAGE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace taos {
namespace obs {

inline constexpr int kMaxCoverageSlots = 128;

// Registers a named slot and returns its index, or re-returns the existing
// index if `name` (compared by content) is already registered. Thread-safe;
// intended for one-time init paths, not hot loops. `name` must outlive the
// process (string literals). Returns -1 if the table is full.
int RegisterCoverageSlot(const char* name);

// Relaxed counter bumps; `slot` must come from RegisterCoverageSlot.
void CoverageHit(int slot);
void CoverageFire(int slot);

// Point-in-time copy of one slot.
struct CoverageRow {
  const char* name;
  std::uint64_t hits;
  std::uint64_t fires;
};

// All registered slots, in registration order.
std::vector<CoverageRow> CoverageSnapshot();

// Zeroes every slot's counters (registration survives). Callers must be
// quiescent to get a meaningful baseline, same as obs::ResetStats.
void ResetCoverage();

// {"coverage":{"<name>":{"hits":N,"fires":N},...}} — same hand-rolled style
// as obs::StatsJson.
std::string CoverageJson();

}  // namespace obs
}  // namespace taos

#endif  // TAOS_SRC_OBS_COVERAGE_H_
