// A minimal JSON reader, just enough to schema-check the observability
// layer's own output (flight-recorder Chrome traces, metrics reports, bench
// JSON) in tests without an external dependency. Accepts strict JSON;
// numbers become double, \u escapes decode the BMP only.

#ifndef TAOS_SRC_OBS_JSON_H_
#define TAOS_SRC_OBS_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace taos::obs::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  // Object member lookup; nullptr if absent or not an object.
  const Value* Find(std::string_view key) const;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage is an error). On failure returns nullopt and, if `error` is
// non-null, a message with the byte offset.
std::optional<Value> Parse(std::string_view text, std::string* error = nullptr);

}  // namespace taos::obs::json

#endif  // TAOS_SRC_OBS_JSON_H_
