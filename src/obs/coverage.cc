#include "src/obs/coverage.h"

#include <cstring>
#include <mutex>

namespace taos {
namespace obs {
namespace {

struct Slot {
  const char* name = nullptr;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

Slot g_slots[kMaxCoverageSlots];
// Published count: readers (CoverageSnapshot) acquire, the registrar
// releases after filling in the name, so a visible count implies a visible
// name. The std::mutex serializes registrars only.
std::atomic<int> g_count{0};
std::mutex g_register_mu;

}  // namespace

int RegisterCoverageSlot(const char* name) {
  std::lock_guard<std::mutex> lk(g_register_mu);
  const int n = g_count.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    if (std::strcmp(g_slots[i].name, name) == 0) {
      return i;
    }
  }
  if (n == kMaxCoverageSlots) {
    return -1;
  }
  g_slots[n].name = name;
  g_count.store(n + 1, std::memory_order_release);
  return n;
}

void CoverageHit(int slot) {
  if (slot >= 0) {
    g_slots[slot].hits.fetch_add(1, std::memory_order_relaxed);
  }
}

void CoverageFire(int slot) {
  if (slot >= 0) {
    g_slots[slot].fires.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<CoverageRow> CoverageSnapshot() {
  const int n = g_count.load(std::memory_order_acquire);
  std::vector<CoverageRow> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back({g_slots[i].name,
                    g_slots[i].hits.load(std::memory_order_relaxed),
                    g_slots[i].fires.load(std::memory_order_relaxed)});
  }
  return rows;
}

void ResetCoverage() {
  const int n = g_count.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    g_slots[i].hits.store(0, std::memory_order_relaxed);
    g_slots[i].fires.store(0, std::memory_order_relaxed);
  }
}

std::string CoverageJson() {
  std::string out = "{\"coverage\":{";
  bool first = true;
  for (const CoverageRow& row : CoverageSnapshot()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    out += row.name;
    out += "\":{\"hits\":";
    out += std::to_string(row.hits);
    out += ",\"fires\":";
    out += std::to_string(row.fires);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace taos
