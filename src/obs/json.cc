#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>

namespace taos::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> Run(std::string* error) {
    std::optional<Value> v = ParseValue();
    if (v.has_value()) {
      SkipSpace();
      if (pos_ != text_.size()) {
        Fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v.has_value() && error != nullptr) {
      *error = error_;
    }
    return v;
  }

 private:
  void Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        if (Literal("true")) {
          Value v;
          v.kind = Value::Kind::kBool;
          v.boolean = true;
          return v;
        }
        break;
      case 'f':
        if (Literal("false")) {
          Value v;
          v.kind = Value::Kind::kBool;
          return v;
        }
        break;
      case 'n':
        if (Literal("null")) {
          return Value{};
        }
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber();
        }
        break;
    }
    Fail("unexpected character");
    return std::nullopt;
  }

  std::optional<Value> ParseObject() {
    ++pos_;  // '{'
    Value v;
    v.kind = Value::Kind::kObject;
    SkipSpace();
    if (Consume('}')) {
      return v;
    }
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        return std::nullopt;
      }
      std::optional<Value> key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      if (!Consume(':')) {
        Fail("expected ':'");
        return std::nullopt;
      }
      std::optional<Value> member = ParseValue();
      if (!member.has_value()) {
        return std::nullopt;
      }
      v.object.emplace_back(std::move(key->string), std::move(*member));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return v;
      }
      Fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<Value> ParseArray() {
    ++pos_;  // '['
    Value v;
    v.kind = Value::Kind::kArray;
    SkipSpace();
    if (Consume(']')) {
      return v;
    }
    for (;;) {
      std::optional<Value> element = ParseValue();
      if (!element.has_value()) {
        return std::nullopt;
      }
      v.array.push_back(std::move(*element));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return v;
      }
      Fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<Value> ParseString() {
    ++pos_;  // '"'
    Value v;
    v.kind = Value::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return v;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case '/': v.string.push_back('/'); break;
        case 'b': v.string.push_back('\b'); break;
        case 'f': v.string.push_back('\f'); break;
        case 'n': v.string.push_back('\n'); break;
        case 'r': v.string.push_back('\r'); break;
        case 't': v.string.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs land as two encodings,
          // fine for a schema checker).
          if (code < 0x80) {
            v.string.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            v.string.push_back(static_cast<char>(0xC0 | (code >> 6)));
            v.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            v.string.push_back(static_cast<char>(0xE0 | (code >> 12)));
            v.string.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            v.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("bad escape character");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) {
      Fail("bad number");
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        Fail("bad number fraction");
        return std::nullopt;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) {
        Fail("bad number exponent");
        return std::nullopt;
      }
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const Value* Value::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::optional<Value> Parse(std::string_view text, std::string* error) {
  return Parser(text).Run(error);
}

}  // namespace taos::obs::json
