// Sharded runtime metrics: the always-compiled counting half of the
// observability layer (the other half is the flight recorder, recorder.h).
//
// Why sharding: the paper's headline claim is that the uncontended fast
// paths never leave user code, so the measurement of the fast path must not
// itself create sharing. Every thread owns one cache-line-aligned Cell of
// counters; an increment is a plain load+add+store through the thread's own
// cell (no lock prefix, no cross-core traffic), legal because the cell has a
// single writer and every reader aggregates with relaxed atomic loads.
// Snapshot() walks the registry of cells and sums; totals are therefore
// eventually consistent (exact once the counting threads are quiescent,
// which is when experiments read them).
//
// ResetStats() also walks the registry and zeroes every slot of every cell
// by array length, so a counter or histogram added to the enums below can
// never be silently missed by a reset. Reset while other threads are
// actively counting loses increments that race the zeroing; callers reset
// between measurement phases, while quiescent, as with Snapshot().
//
// This header is self-contained (standard library only): it is included by
// src/base/spinlock.h and eventcount.h, which everything else includes, so
// it must not depend on any other taos library.

#ifndef TAOS_SRC_OBS_METRICS_H_
#define TAOS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace taos::obs {

// One slot per distinguishable runtime event. Grouped: the user-code fast
// paths (the ops the paper compiles in-line), the Nub slow-path entries by
// operation kind (the per-op split of Nub::nub_entries), the race/rescue
// accounting, and the spin-lock / eventcount internals.
enum class Counter : int {
  // --- user-code fast paths (never entered the Nub) ---
  kFastMutexAcquire,   // Acquire/TryAcquire won the in-line test-and-set
  kFastMutexRelease,   // Release cleared the bit, queue empty, no Nub call
  kFastSemP,           // P/TryP/AlertP won the in-line test-and-set
  kFastSemV,           // V cleared the bit, queue empty, no Nub call
  kFastSignal,         // Signal skipped the Nub: no threads to unblock
  kFastBroadcast,      // Broadcast skipped the Nub likewise

  // --- Nub (slow-path) entries, by operation kind ---
  kNubAcquire,
  kNubRelease,
  kNubWait,            // every Wait enters Block, the Nub subroutine
  kNubSignal,
  kNubBroadcast,
  kNubP,
  kNubV,
  kNubAlert,
  kNubAlertWait,
  kNubAlertP,

  // --- races covered and work handed over ---
  kWakeupWaitingHits,  // Block returned without sleeping: the eventcount
                       // moved in the window, a lost wakeup was prevented
  kSpuriousWakeups,    // unparked but the retried test-and-set lost (barging)
  kHandoffs,           // a slow path made another thread ready (unpark)
  kLockBitRetries,     // failed test-and-set retries inside a Nub slow loop

  // --- spin-lock and eventcount internals ---
  kSpinIterations,        // total busy-wait beats across contended Acquires
  kContendedSpinAcquires, // SpinLock::Acquire calls that had to spin (TAS)
  kMcsQueuedAcquires,     // MCS acquisitions that queued behind a holder
  kClhQueuedAcquires,     // CLH acquisitions that queued behind a holder
  kEventCountAdvances,    // EventCount::Advance calls (Signal/Broadcast)

  // --- waiter-queue substrate (src/waitq; active with TAOS_WAITQ=1) ---
  kWaitqEnqueues,          // cells claimed (lock-free enqueues)
  kWaitqResumes,           // WAITING cells granted FIFO (a parker to unpark)
  kWaitqImmediateGrants,   // EMPTY cells granted (claimant not yet parked)
  kWaitqCancels,           // cells cancelled (Alert or claimant back-out)
  kWaitqCancelSkips,       // cancelled cells the consumer stepped over
  kWaitqSegmentsAllocated,
  kWaitqSegmentsRetired,

  // --- parker backends (src/waitq/parker) ---
  kParkFutexWaits,    // FUTEX_WAIT calls (incl. re-checks after EAGAIN)
  kParkCondvarWaits,  // condition_variable::wait calls (incl. spurious)

  // --- timer wheel and timed waits (src/threads/timer) ---
  kTimersArmed,          // deadlines inserted into the wheel
  kTimersCancelled,      // deadlines removed before expiry (waiter won)
  kTimersExpired,        // deadlines the timer thread fired
  kTimedWaitSatisfied,   // timed waits that ended by grant/signal
  kTimedWaitTimeouts,    // timed waits that ended by expiry
  kTimedWaitAlerted,     // timed alertable waits that ended by Alert

  // --- multi-object wait (src/threads/poll) ---
  kPollRegistrations,    // pollable-list registrations installed
  kPollSpuriousScans,    // wait-set scans after a wake that granted nothing

  kNumCounters,
};

// Log2-bucket histograms. Bucket 0 holds the value 0; bucket i (i >= 1)
// holds values in [2^(i-1), 2^i); the last bucket is a catch-all.
enum class Histogram : int {
  kSpinAcquireNanos,        // contended SpinLock::Acquire wall latency
  kSpinIterationsPerAcquire,// busy-wait beats per contended Acquire
  kLockHandoffNanos,        // queue cores: releaser's stamp to waiter's wake
  kBlockedNanos,            // park duration (de-scheduled time)
  kParkWaitNanos,           // Parker::Park wall latency (inside kBlockedNanos)
  kUnparkNanos,             // Parker::Unpark wall latency (the waker's cost)
  kTimerExpiryLagNanos,     // expiry-processing time minus the deadline
  kWakeupLatencyNanos,      // waker's permit grant to wakee's Park return

  kNumHistograms,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kNumCounters);
inline constexpr int kNumHistograms =
    static_cast<int>(Histogram::kNumHistograms);
inline constexpr int kHistogramBuckets = 32;
inline constexpr std::size_t kCacheLineBytes = 64;

const char* CounterName(Counter c);
const char* HistogramName(Histogram h);

// A thread's private block of counters. Cache-line aligned (and therefore
// cache-line padded: alignas rounds sizeof up to a multiple of 64) so two
// threads' cells never share a line. Written only by the owning thread;
// read (and zeroed) cross-thread via the relaxed atomic API.
struct alignas(kCacheLineBytes) Cell {
  std::atomic<std::uint64_t> counters[kNumCounters];
  std::atomic<std::uint64_t> histograms[kNumHistograms][kHistogramBuckets];
};

// Allocates and registers the calling thread's cell. Cells live in the
// global registry forever (a thread's counts survive its exit), so the
// pointer never dangles.
Cell* RegisterCell();

namespace internal {
// Namespace-scope with constant (zero) initialization: access compiles to a
// plain TLS load with no init-on-first-use guard, which matters because
// every fast-path increment goes through here. RegisterCell() sets it.
extern thread_local Cell* g_cell;
}  // namespace internal

inline Cell& LocalCell() {
  Cell* cell = internal::g_cell;
  if (cell == nullptr) [[unlikely]] {
    cell = RegisterCell();
  }
  return *cell;
}

// Single-writer increment: a relaxed load+store pair instead of fetch_add.
// The owning thread is the only writer, so no update can be lost, and the
// atomic API keeps concurrent Snapshot()/ResetStats() readers race-free —
// without the lock-prefixed RMW that would otherwise be the fast path's
// single most expensive instruction.
inline void BumpSlot(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

inline void Inc(Counter c) {
  BumpSlot(LocalCell().counters[static_cast<int>(c)], 1);
}

inline void Add(Counter c, std::uint64_t n) {
  BumpSlot(LocalCell().counters[static_cast<int>(c)], n);
}

// Bucket index for a log2 histogram: 0 -> 0, v -> bit_width(v) capped.
int HistogramBucket(std::uint64_t value);

inline void Record(Histogram h, std::uint64_t value) {
  BumpSlot(
      LocalCell().histograms[static_cast<int>(h)][HistogramBucket(value)], 1);
}

// Monotonic nanoseconds since the first call in the process (steady clock).
// Shared by the latency histograms and the flight recorder so their
// timestamps are directly comparable.
std::uint64_t NowNanos();

// Aggregated totals across every registered cell.
struct Stats {
  std::uint64_t counters[kNumCounters] = {};
  std::uint64_t histograms[kNumHistograms][kHistogramBuckets] = {};

  std::uint64_t Count(Counter c) const {
    return counters[static_cast<int>(c)];
  }
  // Total samples recorded into a histogram.
  std::uint64_t HistogramTotal(Histogram h) const;
};

Stats Snapshot();

// The snapshot rendered as a JSON object:
//   {"counters": {"fast_mutex_acquire": 12, ...},
//    "histograms": {"spin_acquire_ns": [0,3,...], ...}}
std::string StatsJson(const Stats& stats);
std::string ReportJson();

// Zeroes every counter and histogram slot of every registered cell (by
// walking the registry and the enum-sized arrays — nothing to forget).
void ResetStats();

}  // namespace taos::obs

#endif  // TAOS_SRC_OBS_METRICS_H_
