#include "src/obs/diag.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <chrono>

#include "src/obs/metrics.h"
#include "src/obs/recorder.h"

namespace taos::obs::diag {

namespace internal {
std::atomic<bool> g_diag_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_diag_enabled.store(on, std::memory_order_relaxed);
}

const char* WaitKindName(WaitKind k) {
  switch (k) {
    case WaitKind::kNone:
      return "none";
    case WaitKind::kMutex:
      return "mutex";
    case WaitKind::kSemaphore:
      return "semaphore";
    case WaitKind::kCondition:
      return "condition";
    case WaitKind::kRwShared:
      return "rw-shared";
    case WaitKind::kRwExclusive:
      return "rw-exclusive";
    case WaitKind::kEvent:
      return "event";
    case WaitKind::kPollAny:
      return "poll-any";
    case WaitKind::kPollAll:
      return "poll-all";
  }
  return "?";
}

namespace {

// Slot registry. Slots are heap-allocated once per thread and never freed
// (see RegisterWaiterSlot's contract in the header); the vector only grows,
// and readers copy the pointers under the mutex before scanning lock-free.
std::mutex& SlotRegistryLock() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<WaiterSlot*>& SlotRegistry() {
  static std::vector<WaiterSlot*>* v = new std::vector<WaiterSlot*>;
  return *v;
}

std::atomic<void (*)()> g_snapshot_probe{nullptr};

// Owner table: open-addressed, fixed size, power of two. 4096 slots is two
// orders of magnitude beyond any test or bench in this repo; on overflow a
// stamp is silently dropped (OwnerOf then reports "unknown", which only
// widens the watchdog's "no cycle provable" case — never a false positive).
constexpr std::size_t kOwnerTableSize = 4096;

struct OwnerCell {
  std::atomic<std::uint64_t> obj{0};
  std::atomic<std::uint64_t> owner{0};
};

OwnerCell* OwnerTable() {
  static OwnerCell* t = new OwnerCell[kOwnerTableSize];
  return t;
}

std::size_t OwnerHash(std::uint64_t obj) {
  // Fibonacci hash; obj ids are small sequential integers.
  return static_cast<std::size_t>((obj * 0x9E3779B97F4A7C15ULL) >> 52) &
         (kOwnerTableSize - 1);
}

constexpr std::size_t kOwnerProbeLimit = 32;

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendMillis(std::string* out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1e6);
  out->append(buf);
}

}  // namespace

WaiterSlot* RegisterWaiterSlot(std::uint64_t tid) {
  auto* slot = new WaiterSlot;
  slot->tid = tid;
  std::lock_guard<std::mutex> g(SlotRegistryLock());
  SlotRegistry().push_back(slot);
  return slot;
}

void StampOwner(std::uint64_t obj, std::uint64_t tid) {
  OwnerCell* table = OwnerTable();
  const std::size_t h = OwnerHash(obj);
  for (std::size_t i = 0; i < kOwnerProbeLimit; ++i) {
    OwnerCell& cell = table[(h + i) & (kOwnerTableSize - 1)];
    std::uint64_t cur = cell.obj.load(std::memory_order_relaxed);
    if (cur == obj) {
      cell.owner.store(tid, std::memory_order_relaxed);
      return;
    }
    if (cur == 0) {
      std::uint64_t expected = 0;
      if (cell.obj.compare_exchange_strong(expected, obj,
                                           std::memory_order_relaxed)) {
        cell.owner.store(tid, std::memory_order_relaxed);
        return;
      }
      if (expected == obj) {  // lost the race to ourselves-by-id
        cell.owner.store(tid, std::memory_order_relaxed);
        return;
      }
    }
  }
  // Table section full: drop the stamp (best-effort; see header).
}

void ClearOwner(std::uint64_t obj) {
  OwnerCell* table = OwnerTable();
  const std::size_t h = OwnerHash(obj);
  for (std::size_t i = 0; i < kOwnerProbeLimit; ++i) {
    OwnerCell& cell = table[(h + i) & (kOwnerTableSize - 1)];
    const std::uint64_t cur = cell.obj.load(std::memory_order_relaxed);
    if (cur == obj) {
      // Free the slot: owner first so a racing OwnerOf sees 0, then the
      // key. ObjIds are never reused (Nub::NextObjId only counts up), so a
      // freed slot can only be re-claimed by a DIFFERENT object — a racing
      // stamp for this object targets whatever slot its probe finds, not a
      // stale reincarnation of this one.
      cell.owner.store(0, std::memory_order_relaxed);
      cell.obj.store(0, std::memory_order_relaxed);
      return;
    }
    if (cur == 0) {
      // A concurrent stamp may still be probing past this empty cell;
      // keep looking so release-after-stamp can't leak a stale owner.
      continue;
    }
  }
}

std::uint64_t OwnerOf(std::uint64_t obj) {
  OwnerCell* table = OwnerTable();
  const std::size_t h = OwnerHash(obj);
  for (std::size_t i = 0; i < kOwnerProbeLimit; ++i) {
    OwnerCell& cell = table[(h + i) & (kOwnerTableSize - 1)];
    const std::uint64_t cur = cell.obj.load(std::memory_order_relaxed);
    if (cur == obj) {
      return cell.owner.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

void SetSnapshotProbe(void (*probe)()) {
  g_snapshot_probe.store(probe, std::memory_order_release);
}

std::vector<BlockedEdge> SnapshotBlocked() {
  if (void (*probe)() = g_snapshot_probe.load(std::memory_order_acquire)) {
    probe();
  }
  std::vector<WaiterSlot*> slots;
  {
    std::lock_guard<std::mutex> g(SlotRegistryLock());
    slots = SlotRegistry();
  }
  std::vector<BlockedEdge> edges;
  for (WaiterSlot* s : slots) {
    // Bounded seqlock read: a slot whose writer is mid-publication for the
    // whole retry window is skipped — that thread is actively transitioning,
    // not stuck, so omitting it from this snapshot is correct.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t seq0 = s->seq.load(std::memory_order_acquire);
      if (seq0 & 1) {
        continue;
      }
      BlockedEdge e;
      e.tid = s->tid;
      e.kind = static_cast<WaitKind>(s->kind.load(std::memory_order_relaxed));
      e.alertable = s->alertable.load(std::memory_order_relaxed) != 0;
      e.obj = s->obj.load(std::memory_order_relaxed);
      e.since_ns = s->since_ns.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s->seq.load(std::memory_order_relaxed) != seq0) {
        continue;
      }
      if (e.kind != WaitKind::kNone) {
        e.owner = OwnerOf(e.obj);
        edges.push_back(e);
      }
      break;
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const BlockedEdge& a, const BlockedEdge& b) {
              return a.tid < b.tid;
            });
  return edges;
}

std::vector<Cycle> FindCycles(const std::vector<BlockedEdge>& edges) {
  std::vector<Cycle> cycles;
  // tid -> index in `edges` (edges are sorted by tid and unique per tid).
  auto edge_for = [&edges](std::uint64_t tid) -> const BlockedEdge* {
    auto it = std::lower_bound(
        edges.begin(), edges.end(), tid,
        [](const BlockedEdge& e, std::uint64_t t) { return e.tid < t; });
    return (it != edges.end() && it->tid == tid) ? &*it : nullptr;
  };
  std::vector<std::uint64_t> in_cycle;
  for (const BlockedEdge& start : edges) {
    if (std::find(in_cycle.begin(), in_cycle.end(), start.tid) !=
        in_cycle.end()) {
      continue;  // already reported as part of another cycle
    }
    // Walk the functional graph: thread -> owner of blocked-on object.
    // Bounded by the edge count, so a lasso that doesn't return to `start`
    // terminates without bookkeeping.
    std::vector<const BlockedEdge*> path;
    const BlockedEdge* cur = &start;
    for (std::size_t steps = 0; steps <= edges.size(); ++steps) {
      path.push_back(cur);
      if (cur->owner == 0) {
        break;  // unowned / unknown holder: cannot close a cycle
      }
      if (cur->owner == start.tid) {
        // Closed. Report only from the smallest tid so each cycle is
        // emitted once regardless of which member we started from.
        bool smallest = true;
        for (const BlockedEdge* e : path) {
          if (e->tid < start.tid) {
            smallest = false;
            break;
          }
        }
        if (smallest) {
          Cycle c;
          for (const BlockedEdge* e : path) {
            c.edges.push_back(*e);
            in_cycle.push_back(e->tid);
          }
          cycles.push_back(std::move(c));
        }
        break;
      }
      const BlockedEdge* next = edge_for(cur->owner);
      if (next == nullptr) {
        break;  // owner is running, not blocked: no cycle through here
      }
      // A lasso (cycle not involving `start`) revisits a path member; the
      // step bound handles termination, and that inner cycle is reported
      // when the loop reaches its smallest member as `start`.
      cur = next;
    }
  }
  return cycles;
}

std::string FormatBlockedReport(const std::vector<BlockedEdge>& edges,
                                const std::vector<Cycle>& cycles,
                                std::uint64_t now_ns) {
  std::string out;
  out += "=== taos waits-for snapshot: ";
  AppendU64(&out, edges.size());
  out += " blocked thread(s) ===\n";
  for (const BlockedEdge& e : edges) {
    out += "  thread ";
    AppendU64(&out, e.tid);
    out += " blocked on ";
    out += WaitKindName(e.kind);
    out += " obj ";
    AppendU64(&out, e.obj);
    out += " for ";
    AppendMillis(&out, now_ns >= e.since_ns ? now_ns - e.since_ns : 0);
    out += " ms";
    if (e.owner != 0) {
      out += " (held by thread ";
      AppendU64(&out, e.owner);
      out += ")";
    }
    if (e.alertable) {
      out += " [alertable]";
    }
    out += "\n";
  }
  for (const Cycle& c : cycles) {
    out += "DEADLOCK: cycle of ";
    AppendU64(&out, c.edges.size());
    out += " thread(s):\n";
    for (const BlockedEdge& e : c.edges) {
      out += "  thread ";
      AppendU64(&out, e.tid);
      out += " waits for ";
      out += WaitKindName(e.kind);
      out += " obj ";
      AppendU64(&out, e.obj);
      out += " held by thread ";
      AppendU64(&out, e.owner);
      out += "\n";
    }
  }
  return out;
}

void Watchdog::Start(const Options& options) {
  Stop();
  options_ = options;
  if (options_.dump_path.empty()) {
    if (const char* p = std::getenv("TAOS_WATCHDOG_DUMP");
        p != nullptr && *p != '\0') {
      options_.dump_path = p;
    }
  }
  stop_ = false;
  deadlock_reported_ = false;
  prev_edges_.clear();
  last_stall_dump_ns_ = 0;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Watchdog::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Watchdog::ThreadMain() {
  std::unique_lock<std::mutex> g(mu_);
  while (!stop_) {
    if (cv_.wait_for(g, std::chrono::milliseconds(options_.interval_ms),
                     [this] { return stop_; })) {
      return;
    }
    g.unlock();
    Scan();
    scans_.fetch_add(1, std::memory_order_relaxed);
    g.lock();
  }
}

bool Watchdog::ConfirmedInPreviousScan(const Cycle& cycle) const {
  for (const BlockedEdge& e : cycle.edges) {
    bool found = false;
    for (const BlockedEdge& p : prev_edges_) {
      if (p.tid == e.tid && p.obj == e.obj && p.since_ns == e.since_ns) {
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
  }
  return true;
}

void Watchdog::Scan() {
  const std::uint64_t now = NowNanos();
  std::vector<BlockedEdge> edges = SnapshotBlocked();
  std::vector<Cycle> cycles = FindCycles(edges);

  // Keep only cycles whose every member was blocked on the same object
  // since the same instant one interval ago: survives the owner-table and
  // wake-in-flight transients a single snapshot can fabricate.
  std::vector<Cycle> confirmed;
  for (Cycle& c : cycles) {
    if (ConfirmedInPreviousScan(c)) {
      confirmed.push_back(std::move(c));
    }
  }

  bool stalled = false;
  if (options_.stall_ms > 0) {
    const std::uint64_t limit_ns = options_.stall_ms * 1000000ULL;
    for (const BlockedEdge& e : edges) {
      if (now >= e.since_ns && now - e.since_ns > limit_ns) {
        stalled = true;
        break;
      }
    }
  }

  // NowNanos is zero-based at the first call in the process, so the "have
  // we dumped recently" throttle must treat 0 as "never", not "at t=0" —
  // otherwise a stall seen in the first 10 intervals of process life is
  // silently swallowed.
  const bool stall_throttled =
      last_stall_dump_ns_ != 0 &&
      now - last_stall_dump_ns_ <= 10 * options_.interval_ms * 1000000ULL;
  if ((!confirmed.empty() && !deadlock_reported_) ||
      (stalled && !stall_throttled)) {
    std::string report = FormatBlockedReport(edges, confirmed, now);
    Dump(report);
    if (!confirmed.empty()) {
      deadlock_reported_ = true;
      if (options_.on_deadlock) {
        options_.on_deadlock(report, confirmed);
      }
    }
    if (stalled) {
      last_stall_dump_ns_ = now;
    }
  }

  prev_edges_ = std::move(edges);
}

void Watchdog::Dump(const std::string& report) {
  std::FILE* outs[2] = {options_.out != nullptr ? options_.out : stderr,
                        nullptr};
  std::FILE* dump_file = nullptr;
  if (!options_.dump_path.empty()) {
    dump_file = std::fopen(options_.dump_path.c_str(), "a");
    outs[1] = dump_file;
  }
  for (std::FILE* f : outs) {
    if (f == nullptr) {
      continue;
    }
    std::fputs(report.c_str(), f);
    DumpRecentEventsForDebug(f, 32);
    if (options_.banner != nullptr) {
      options_.banner(f);
    }
    std::fflush(f);
  }
  if (dump_file != nullptr) {
    std::fclose(dump_file);
  }
}

}  // namespace taos::obs::diag
