// The MCS and CLH spin-lock cores, plus the process-wide backend selection
// (TAOS_LOCK) and the qnode storage they share.
//
// Qnode lifetime: a node is in exactly one place at a time — a thread's
// private cache, the global overflow free list, or in flight inside one
// lock's queue. MCS hands a node back to its enqueuer at release; CLH
// transfers the predecessor's node to the successor (the classic recycling
// trick). Every node ever allocated is also recorded in a registry that is
// never freed, so the storage is type-stable for the lifetime of the
// process (the same idiom as the ThreadRecord and obs-cell registries) and
// nothing a racing reader might still touch can be deallocated under it.
//
// The per-thread cache is a plain array of POD thread_locals — no dynamic
// thread_local object, so there is no destruction-order hazard if a lock
// is released from another thread_local's destructor during thread exit.

#include "src/base/spinlock.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace taos {

const char* LockBackendName(LockBackend b) {
  switch (b) {
    case LockBackend::kTas:
      return "tas";
    case LockBackend::kMcs:
      return "mcs";
    case LockBackend::kClh:
      return "clh";
  }
  return "?";
}

bool ParseLockBackend(const char* text, LockBackend* out) {
  if (text == nullptr || out == nullptr) {
    return false;
  }
  if (std::strcmp(text, "tas") == 0) {
    *out = LockBackend::kTas;
    return true;
  }
  if (std::strcmp(text, "mcs") == 0) {
    *out = LockBackend::kMcs;
    return true;
  }
  if (std::strcmp(text, "clh") == 0) {
    *out = LockBackend::kClh;
    return true;
  }
  return false;
}

namespace {

LockBackend BackendFromEnv() {
  const char* env = std::getenv("TAOS_LOCK");
  LockBackend b = LockBackend::kTas;
  if (env != nullptr && env[0] != '\0' && !ParseLockBackend(env, &b)) {
    std::fprintf(stderr, "taos: unknown TAOS_LOCK=%s (want tas|mcs|clh)\n",
                 env);
  }
  return b;
}

// ---- qnode storage ----

struct NodeStore {
  std::mutex mu;
  std::vector<LockQNode*> all;       // every node ever allocated (never freed)
  std::vector<LockQNode*> overflow;  // idle nodes that outgrew a cache
};

NodeStore& Store() {
  static NodeStore* store = new NodeStore;  // leaked: outlives every thread
  return *store;
}

// Per-thread cache. POD thread_locals: constant-initialized, no destructor.
constexpr int kCacheDepth = 8;
thread_local LockQNode* tls_cache[kCacheDepth];
thread_local int tls_cache_size = 0;

LockQNode* GetNode() {
  if (tls_cache_size > 0) {
    return tls_cache[--tls_cache_size];
  }
  NodeStore& store = Store();
  {
    std::lock_guard<std::mutex> g(store.mu);
    if (!store.overflow.empty()) {
      LockQNode* n = store.overflow.back();
      store.overflow.pop_back();
      return n;
    }
  }
  LockQNode* n = new LockQNode;
  std::lock_guard<std::mutex> g(store.mu);
  store.all.push_back(n);
  return n;
}

void PutNode(LockQNode* n) {
  if (tls_cache_size < kCacheDepth) {
    tls_cache[tls_cache_size++] = n;
    return;
  }
  NodeStore& store = Store();
  std::lock_guard<std::mutex> g(store.mu);
  store.overflow.push_back(n);
}

// One spin beat with the same oversubscription escape hatch as the TAS
// core: a waiter that never yields can starve the holder (or its own
// predecessor) of the only CPU.
inline void SpinBeat(std::uint64_t* iters) {
  SpinLock::Pause();
  if ((++*iters & 1023) == 0) {
    std::this_thread::yield();
  }
}

}  // namespace

std::atomic<LockBackend>& SpinLock::BackendFlag() {
  static std::atomic<LockBackend> backend{BackendFromEnv()};
  return backend;
}

void SpinLock::AcquireSlow() {
  const std::uint64_t start = obs::NowNanos();
  const bool backoff = BackoffEnabled().load(std::memory_order_relaxed);
  std::uint64_t iters = 0;
  std::uint64_t wait = 1;
  for (;;) {
    // Busy-wait on a plain read until the bit looks clear, then retry the
    // test-and-set. `test()` is C++20.
    while (bit_.test(std::memory_order_relaxed)) {
      for (std::uint64_t i = 0; i < wait; ++i) {
        Pause();
      }
      iters += wait;
      if (backoff) {
        if (wait < kMaxBackoffPauses) {
          wait <<= 1;
        }
        if (iters >= kYieldThreshold) {
          std::this_thread::yield();
        }
      }
    }
    if (!bit_.test_and_set(std::memory_order_acquire)) {
      TAOS_CHAOS(kSpinAcquired);
      break;
    }
    ++iters;  // lost the race to another test-and-set
  }
  const std::uint64_t now = obs::NowNanos();
  obs::Inc(obs::Counter::kContendedSpinAcquires);
  obs::Add(obs::Counter::kSpinIterations, iters);
  obs::Record(obs::Histogram::kSpinIterationsPerAcquire, iters);
  obs::Record(obs::Histogram::kSpinAcquireNanos, now - start);
  if (obs::diag::Enabled()) [[unlikely]] {
    const std::uint64_t released =
        tas_release_ns_.load(std::memory_order_relaxed);
    // Only meaningful if a diag-stamped release happened while we spun;
    // a zero stamp means diag came on mid-spin or the holder released
    // before we started waiting.
    if (released >= start && now > released) {
      obs::Record(obs::Histogram::kLockHandoffNanos, now - released);
    }
  }
}

void SpinLock::McsAcquire() {
  LockQNode* n = GetNode();
  n->next.store(nullptr, std::memory_order_relaxed);
  // The flag must read "locked" before the node is published: a releaser
  // that reaches the node first clears the flag, and a clear that landed
  // before our store would be overwritten and spin forever.
  n->locked.store(true, std::memory_order_relaxed);
  LockQNode* prev = tail_.exchange(n, std::memory_order_acq_rel);
  if (prev != nullptr) {
    const std::uint64_t start = obs::NowNanos();
    prev->next.store(n, std::memory_order_release);
    // Enqueued but not yet spinning: the window where a releaser walks the
    // next link to a waiter that has not begun watching its flag.
    TAOS_CHAOS(kMcsEnqueueToSpin);
    std::uint64_t iters = 0;
    while (n->locked.load(std::memory_order_acquire)) {
      SpinBeat(&iters);
    }
    const std::uint64_t now = obs::NowNanos();
    obs::Inc(obs::Counter::kMcsQueuedAcquires);
    obs::Add(obs::Counter::kSpinIterations, iters);
    obs::Record(obs::Histogram::kSpinIterationsPerAcquire, iters);
    obs::Record(obs::Histogram::kSpinAcquireNanos, now - start);
    obs::Record(obs::Histogram::kLockHandoffNanos, now - n->handoff_ns);
  }
  holder_node_.store(n, std::memory_order_relaxed);
  TAOS_CHAOS(kSpinAcquired);
}

void SpinLock::McsRelease() {
  LockQNode* n = holder_node_.load(std::memory_order_relaxed);
  holder_node_.store(nullptr, std::memory_order_relaxed);
  LockQNode* succ = n->next.load(std::memory_order_acquire);
  if (succ == nullptr) {
    LockQNode* expected = n;
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
      PutNode(n);  // no successor: the queue is empty again
      return;
    }
    // A successor won the tail exchange but has not linked yet; its
    // prev->next store is imminent.
    std::uint64_t iters = 0;
    while ((succ = n->next.load(std::memory_order_acquire)) == nullptr) {
      SpinBeat(&iters);
    }
  }
  // Successor identified, handoff not yet performed: the FIFO-handoff
  // window (and the seam a naive timeout-abandon protocol gets wrong —
  // see the MCS abandon litmus in src/model).
  TAOS_CHAOS(kMcsReleaseToSuccessor);
  succ->handoff_ns = obs::NowNanos();
  succ->locked.store(false, std::memory_order_release);
  PutNode(n);  // the successor spins on its own node, never on ours again
}

void SpinLock::ClhAcquire() {
  LockQNode* n = GetNode();
  n->next.store(nullptr, std::memory_order_relaxed);
  n->locked.store(true, std::memory_order_relaxed);
  LockQNode* prev = tail_.exchange(n, std::memory_order_acq_rel);
  if (prev != nullptr) {
    const std::uint64_t start = obs::NowNanos();
    // Spinning on the PREDECESSOR's flag — the CLH topology. The window
    // before the first read is where a predecessor's release can land
    // unobserved.
    TAOS_CHAOS(kClhPredSpin);
    std::uint64_t iters = 0;
    while (prev->locked.load(std::memory_order_acquire)) {
      SpinBeat(&iters);
    }
    const std::uint64_t now = obs::NowNanos();
    obs::Inc(obs::Counter::kClhQueuedAcquires);
    obs::Add(obs::Counter::kSpinIterations, iters);
    obs::Record(obs::Histogram::kSpinIterationsPerAcquire, iters);
    obs::Record(obs::Histogram::kSpinAcquireNanos, now - start);
    obs::Record(obs::Histogram::kLockHandoffNanos, now - prev->handoff_ns);
    PutNode(prev);  // adopt the predecessor's node (classic CLH recycling)
  }
  holder_node_.store(n, std::memory_order_relaxed);
  TAOS_CHAOS(kSpinAcquired);
}

void SpinLock::ClhRelease() {
  LockQNode* n = holder_node_.load(std::memory_order_relaxed);
  holder_node_.store(nullptr, std::memory_order_relaxed);
  LockQNode* expected = n;
  if (tail_.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_release,
                                    std::memory_order_relaxed)) {
    PutNode(n);  // nobody queued behind us: node comes straight back
    return;
  }
  // A successor is (or will be) spinning on our flag; it adopts the node.
  n->handoff_ns = obs::NowNanos();
  n->locked.store(false, std::memory_order_release);
}

bool SpinLock::QueueTryAcquire() {
  // tail == nullptr iff free with no waiters, for both queue cores.
  if (tail_.load(std::memory_order_relaxed) != nullptr) {
    return false;
  }
  LockQNode* n = GetNode();
  n->next.store(nullptr, std::memory_order_relaxed);
  n->locked.store(true, std::memory_order_relaxed);
  LockQNode* expected = nullptr;
  if (tail_.compare_exchange_strong(expected, n, std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
    holder_node_.store(n, std::memory_order_relaxed);
    return true;
  }
  PutNode(n);
  return false;
}

}  // namespace taos
