// Small deterministic PRNG (xorshift128+) for schedulers, stress tests and
// workload generators. Not for cryptography. Deterministic across platforms,
// which std::mt19937 distributions are not — scheduler replay depends on it.

#ifndef TAOS_SRC_BASE_XORSHIFT_H_
#define TAOS_SRC_BASE_XORSHIFT_H_

#include <cstdint>

namespace taos {

class XorShift {
 public:
  explicit XorShift(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding so that nearby seeds give unrelated streams.
    std::uint64_t z = seed;
    for (auto* slot : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      *slot = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) {
      s1_ = 1;
    }
  }

  std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint32_t Below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(Next() % bound);
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Next() % (hi - lo + 1);
  }

  // True with probability num/den.
  bool Chance(std::uint32_t num, std::uint32_t den) {
    return Below(den) < num;
  }

 private:
  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_XORSHIFT_H_
