// The Nub's "more primitive mutual exclusion mechanism": a spin-lock.
//
// SRC Report 20, Implementation section: "The spin-lock is represented by a
// globally shared bit: it is acquired by a processor busy-waiting in a
// test-and-set loop; it is released by clearing the bit."
//
// The Firefly's test-and-set instruction is modelled by std::atomic_flag
// (guaranteed lock-free). A test-then-test-and-set loop with a relaxed read
// in the inner spin keeps the cache line quiet while contended, which is the
// modern equivalent of the MicroVAX loop the paper describes.
//
// Contended acquisitions additionally back off: the wait between re-reads
// doubles from 1 pause up to kMaxBackoffPauses, and past kYieldThreshold
// total beats the waiter yields its processor — essential on machines with
// fewer cores than spinners (a spinner that never yields can starve the
// holder of the only CPU). The backoff can be disabled process-wide
// (SetBackoffEnabled) for A/B runs; bench_contention measures both. The
// uncontended path is unchanged: one test-and-set, no clock, no stats.
//
// Contended acquisitions feed the obs layer: total and per-acquire spin
// iterations, and a log2 latency histogram of the spin wait (metrics.h).

#ifndef TAOS_SRC_BASE_SPINLOCK_H_
#define TAOS_SRC_BASE_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/base/chaos.h"
#include "src/obs/metrics.h"

namespace taos {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Acquire() {
    if (!bit_.test_and_set(std::memory_order_acquire)) {
      // A delay here stretches every Nub critical section, which is what
      // makes the try-lock dances and guard-ordered paths actually contend.
      TAOS_CHAOS(kSpinAcquired);
      return;
    }
    AcquireSlow();
  }

  // Single test-and-set attempt; returns true if the lock was taken.
  bool TryAcquire() { return !bit_.test_and_set(std::memory_order_acquire); }

  void Release() {
    TAOS_CHAOS(kSpinBeforeRelease);
    bit_.clear(std::memory_order_release);
  }

  // True if some thread currently holds the lock (racy; for diagnostics).
  bool IsHeld() const { return bit_.test(std::memory_order_relaxed); }

  // One polite busy-wait beat, exposed for callers running their own retry
  // loops (e.g. Alert's try-lock dance in src/threads/alert.cc).
  static void Pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  // Process-wide backoff switch for A/B measurement (bench_contention).
  // Default on. Affects only contended acquisitions.
  static void SetBackoffEnabled(bool on) {
    BackoffEnabled().store(on, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kMaxBackoffPauses = 64;
  static constexpr std::uint64_t kYieldThreshold = 1024;

  static std::atomic<bool>& BackoffEnabled() {
    static std::atomic<bool> enabled{true};
    return enabled;
  }

  void AcquireSlow() {
    const std::uint64_t start = obs::NowNanos();
    const bool backoff = BackoffEnabled().load(std::memory_order_relaxed);
    std::uint64_t iters = 0;
    std::uint64_t wait = 1;
    for (;;) {
      // Busy-wait on a plain read until the bit looks clear, then retry the
      // test-and-set. `test()` is C++20.
      while (bit_.test(std::memory_order_relaxed)) {
        for (std::uint64_t i = 0; i < wait; ++i) {
          Pause();
        }
        iters += wait;
        if (backoff) {
          if (wait < kMaxBackoffPauses) {
            wait <<= 1;
          }
          if (iters >= kYieldThreshold) {
            std::this_thread::yield();
          }
        }
      }
      if (!bit_.test_and_set(std::memory_order_acquire)) {
        TAOS_CHAOS(kSpinAcquired);
        break;
      }
      ++iters;  // lost the race to another test-and-set
    }
    obs::Inc(obs::Counter::kContendedSpinAcquires);
    obs::Add(obs::Counter::kSpinIterations, iters);
    obs::Record(obs::Histogram::kSpinIterationsPerAcquire, iters);
    obs::Record(obs::Histogram::kSpinAcquireNanos, obs::NowNanos() - start);
  }

  std::atomic_flag bit_ = ATOMIC_FLAG_INIT;
};

// RAII bracket for a spin-lock critical section (the Nub subroutines in the
// paper all have the shape: acquire spin-lock; act; release spin-lock).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.Acquire(); }
  ~SpinGuard() { lock_.Release(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_SPINLOCK_H_
