// The Nub's "more primitive mutual exclusion mechanism": a spin-lock, now
// with a pluggable core.
//
// SRC Report 20, Implementation section: "The spin-lock is represented by a
// globally shared bit: it is acquired by a processor busy-waiting in a
// test-and-set loop; it is released by clearing the bit."
//
// The paper-faithful core (kTas) models the Firefly's test-and-set
// instruction with std::atomic_flag: a test-then-test-and-set loop with a
// relaxed read in the inner spin keeps the cache line quiet while contended,
// and contended acquisitions back off (doubling pauses up to
// kMaxBackoffPauses, yielding past kYieldThreshold — essential on machines
// with fewer cores than spinners). The backoff can be disabled process-wide
// (SetBackoffEnabled) for A/B runs.
//
// Mellor-Crummey & Scott showed that even backed-off test-and-set collapses
// under real multicore contention because every spinner hammers the same
// line; the two queue-lock cores fix that with local spinning and FIFO
// handoff:
//
//   kMcs — each waiter enqueues a cache-line-aligned qnode on a tail
//     pointer, links itself to its predecessor, and spins on its OWN node;
//     the releaser writes exactly one remote line (the successor's flag).
//   kClh — each waiter enqueues its qnode and spins on its PREDECESSOR's
//     flag; the releaser writes its own node's flag and the successor
//     adopts (recycles) the predecessor node. This variant keeps the
//     classic CLH spin topology but uses a null tail at quiescence (no
//     per-lock dummy node), so TryAcquire is a simple nullptr->node CAS
//     that never dereferences anything — the same shape as MCS, and the
//     reason rule 3's try-lock dance stays safe under both cores.
//
// The core is selected process-wide at runtime: TAOS_LOCK={tas,mcs,clh} at
// startup (the same way TAOS_WAITQ selects the waiter-queue substrate), or
// SetBackend() while the process is quiescent — every SpinLock instance
// must be free across a switch, because each core keeps its own idea of
// "held" (the TAS bit vs the queue tail).
//
// Contended acquisitions feed the obs layer per-backend: total and
// per-acquire spin iterations, a log2 latency histogram of the spin wait,
// and — for the queue cores — the releaser-to-successor handoff latency
// (metrics.h, kLockHandoffNanos).

#ifndef TAOS_SRC_BASE_SPINLOCK_H_
#define TAOS_SRC_BASE_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/base/chaos.h"
#include "src/obs/diag.h"
#include "src/obs/metrics.h"

namespace taos {

// Which mutual-exclusion core every SpinLock in the process runs on.
enum class LockBackend : std::uint8_t { kTas, kMcs, kClh };

const char* LockBackendName(LockBackend b);
// Accepts "tas", "mcs", "clh" (case-sensitive); returns false on junk.
bool ParseLockBackend(const char* text, LockBackend* out);

// One waiter's queue node for the MCS/CLH cores. Cache-line aligned so two
// waiters never false-share their spin flags. Nodes come from per-thread
// pools backed by a global, never-freed registry (type-stable storage, same
// idiom as the ThreadRecord registry), so a stale pointer read during a
// race window dereferences real memory.
struct alignas(obs::kCacheLineBytes) LockQNode {
  std::atomic<LockQNode*> next{nullptr};  // MCS successor link
  std::atomic<bool> locked{false};        // MCS: own wait flag; CLH: holder's
  std::uint64_t handoff_ns = 0;           // releaser's NowNanos stamp; read by
                                          // the waiter after the flag flips
};

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Acquire() {
    switch (backend()) {
      case LockBackend::kTas:
        if (!bit_.test_and_set(std::memory_order_acquire)) {
          // A delay here stretches every Nub critical section, which is what
          // makes the try-lock dances and guard-ordered paths actually
          // contend.
          TAOS_CHAOS(kSpinAcquired);
          return;
        }
        AcquireSlow();
        return;
      case LockBackend::kMcs:
        McsAcquire();
        return;
      case LockBackend::kClh:
        ClhAcquire();
        return;
    }
  }

  // Single acquisition attempt; returns true if the lock was taken. Under
  // the queue cores this is a nullptr->node CAS on the tail — it never
  // dereferences another waiter's node, which is what keeps rule 3's
  // try-lock dance (and the timer's expiry path) free of use-after-free
  // and ABA hazards.
  bool TryAcquire() {
    if (backend() == LockBackend::kTas) {
      return !bit_.test_and_set(std::memory_order_acquire);
    }
    return QueueTryAcquire();
  }

  void Release() {
    TAOS_CHAOS(kSpinBeforeRelease);
    switch (backend()) {
      case LockBackend::kTas:
        // Handoff stamp for the TAS core, so kLockHandoffNanos is
        // comparable across all three backends. The queue cores stamp
        // their successor's qnode for free at handoff; TAS has no
        // successor to address, so the stamp lives on the lock and the
        // clock read is gated on the diag layer being on (one relaxed
        // load and a predicted branch otherwise — the same fast-path
        // budget as the recorder checks).
        if (obs::diag::Enabled()) [[unlikely]] {
          tas_release_ns_.store(obs::NowNanos(), std::memory_order_relaxed);
        }
        bit_.clear(std::memory_order_release);
        return;
      case LockBackend::kMcs:
        McsRelease();
        return;
      case LockBackend::kClh:
        ClhRelease();
        return;
    }
  }

  // True if some thread currently holds the lock (racy; for diagnostics).
  bool IsHeld() const {
    if (backend() == LockBackend::kTas) {
      return bit_.test(std::memory_order_relaxed);
    }
    return tail_.load(std::memory_order_relaxed) != nullptr;
  }

  // The queue-core tail, as an opaque token (racy; for tests). Every
  // enqueue exchanges a distinct node into the tail, and a node in flight
  // is in exactly one queue, so "the tail changed from the value observed
  // before forking waiter i" certifies that waiter i has enqueued — the
  // arrival-serialization hook the FIFO fairness tests use. Always null
  // under the TAS core.
  const void* TailForDebug() const {
    return tail_.load(std::memory_order_acquire);
  }

  // One polite busy-wait beat, exposed for callers running their own retry
  // loops (e.g. Alert's try-lock dance in src/threads/alert.cc).
  static void Pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  // Process-wide core selection. Initialized from TAOS_LOCK at startup;
  // switching requires every SpinLock in the process to be free (the same
  // quiescence contract as Nub::SetGlobalLockMode).
  static LockBackend backend() {
    return BackendFlag().load(std::memory_order_relaxed);
  }
  static void SetBackend(LockBackend b) {
    BackendFlag().store(b, std::memory_order_relaxed);
  }

  // Process-wide backoff switch for A/B measurement (bench_contention).
  // Default on. Affects only contended TAS acquisitions.
  static void SetBackoffEnabled(bool on) {
    BackoffEnabled().store(on, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kMaxBackoffPauses = 64;
  static constexpr std::uint64_t kYieldThreshold = 1024;

  static std::atomic<bool>& BackoffEnabled() {
    static std::atomic<bool> enabled{true};
    return enabled;
  }

  // Defined in spinlock.cc: reads TAOS_LOCK once at first use.
  static std::atomic<LockBackend>& BackendFlag();

  void AcquireSlow();       // contended TAS path
  void McsAcquire();
  void McsRelease();
  void ClhAcquire();
  void ClhRelease();
  bool QueueTryAcquire();   // shared by MCS and CLH

  // TAS core state. tas_release_ns_ is the last releaser's NowNanos stamp
  // (diag-enabled runs only): a contended AcquireSlow that wins the bit
  // reads it to approximate releaser-to-winner handoff latency. Unlike the
  // queue cores' per-qnode stamp it is shared by all spinners, so under
  // multi-waiter contention it measures the handoff to whichever waiter
  // barged in first — which is exactly TAS's handoff discipline.
  std::atomic_flag bit_ = ATOMIC_FLAG_INIT;
  std::atomic<std::uint64_t> tas_release_ns_{0};
  // Queue-core state: the tail of the waiter queue (null iff free with no
  // waiters — the quiescent state both cores share), and the node the
  // current holder will release with. holder_node_ is logically owned by
  // the holder; it is atomic only so the cross-thread happens-before chain
  // through the tail keeps the accesses data-race-free.
  std::atomic<LockQNode*> tail_{nullptr};
  std::atomic<LockQNode*> holder_node_{nullptr};
};

// RAII bracket for a spin-lock critical section (the Nub subroutines in the
// paper all have the shape: acquire spin-lock; act; release spin-lock).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.Acquire(); }
  ~SpinGuard() { lock_.Release(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_SPINLOCK_H_
