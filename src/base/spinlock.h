// The Nub's "more primitive mutual exclusion mechanism": a spin-lock.
//
// SRC Report 20, Implementation section: "The spin-lock is represented by a
// globally shared bit: it is acquired by a processor busy-waiting in a
// test-and-set loop; it is released by clearing the bit."
//
// The Firefly's test-and-set instruction is modelled by std::atomic_flag
// (guaranteed lock-free). A test-then-test-and-set loop with a relaxed read
// in the inner spin keeps the cache line quiet while contended, which is the
// modern equivalent of the MicroVAX loop the paper describes.

#ifndef TAOS_SRC_BASE_SPINLOCK_H_
#define TAOS_SRC_BASE_SPINLOCK_H_

#include <atomic>
#include <cstdint>

namespace taos {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Acquire() {
    while (bit_.test_and_set(std::memory_order_acquire)) {
      // Busy-wait on a plain read until the bit looks clear, then retry the
      // test-and-set. `test()` is C++20.
      while (bit_.test(std::memory_order_relaxed)) {
        Pause();
      }
    }
  }

  // Single test-and-set attempt; returns true if the lock was taken.
  bool TryAcquire() { return !bit_.test_and_set(std::memory_order_acquire); }

  void Release() { bit_.clear(std::memory_order_release); }

  // True if some thread currently holds the lock (racy; for diagnostics).
  bool IsHeld() const { return bit_.test(std::memory_order_relaxed); }

  // One polite busy-wait beat, exposed for callers running their own retry
  // loops (e.g. Alert's try-lock dance in src/threads/alert.cc).
  static void Pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

 private:
  std::atomic_flag bit_ = ATOMIC_FLAG_INIT;
};

// RAII bracket for a spin-lock critical section (the Nub subroutines in the
// paper all have the shape: acquire spin-lock; act; release spin-lock).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.Acquire(); }
  ~SpinGuard() { lock_.Release(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_SPINLOCK_H_
