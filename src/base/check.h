// Invariant-checking macros used throughout the Taos Threads reproduction.
//
// TAOS_CHECK is always on (including release builds): the synchronization
// kernel is exactly the kind of code whose invariant violations must never be
// compiled away. TAOS_DCHECK compiles out in NDEBUG builds and is reserved for
// hot paths that benches measure.

#ifndef TAOS_SRC_BASE_CHECK_H_
#define TAOS_SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace taos {

// Prints a diagnostic and aborts. Never returns.
[[noreturn]] void PanicImpl(const char* file, int line, const char* what);

}  // namespace taos

#define TAOS_PANIC(what) ::taos::PanicImpl(__FILE__, __LINE__, (what))

#define TAOS_CHECK(cond)                                    \
  do {                                                      \
    if (!(cond)) {                                          \
      ::taos::PanicImpl(__FILE__, __LINE__,                 \
                        "check failed: " #cond);            \
    }                                                       \
  } while (0)

#ifdef NDEBUG
#define TAOS_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define TAOS_DCHECK(cond) TAOS_CHECK(cond)
#endif

#endif  // TAOS_SRC_BASE_CHECK_H_
