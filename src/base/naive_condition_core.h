// The paper's strawman condition variable, shared between its two layerings:
//
//   "The semantics of Wait and Signal could be achieved by representing each
//    condition variable as a semaphore, and implementing Wait(m, c) as
//    Release(m); P(c); Acquire(m) and Signal(c) as V(c). [...]
//    Unfortunately, this implementation does not generalize to Broadcast(c).
//    The reason is that there might be arbitrarily many threads in the race
//    (at the semicolon between Release(m) and P(c)), and the implementation
//    of Broadcast would have no way of indicating that they should all
//    resume execution."
//
// Broadcast below does the best a binary semaphore allows — one V per
// waiter it can count — and still loses wakeups: consecutive V operations
// collapse into a single "available" state while waiters are between
// Release(m) and P(c), so some waiter sleeps forever.
//
// The algorithm is instantiated twice, and only the glue differs:
//  - src/firefly/naive_condition.h runs it inside the deterministic
//    simulator (Machine::Step at every yield point, a plain waiter count)
//    so the model checker can find the losing schedule exhaustively;
//  - src/baseline/naive_condition.h runs it on real threads (no step hook,
//    an atomic waiter count) for benchmarks and stress demonstrations.

#ifndef TAOS_SRC_BASE_NAIVE_CONDITION_CORE_H_
#define TAOS_SRC_BASE_NAIVE_CONDITION_CORE_H_

#include <atomic>

namespace taos::base {

// Waiter-count policies. The simulator wants a plain int (every access is a
// separate interleaving point already); real threads need an atomic with the
// publication ordering the baseline relies on (the seq_cst increment is
// published before Release(m) ends the critical section, so a Broadcast
// cannot undercount a waiter that is still on its way into P).
class PlainWaiterCount {
 public:
  void Increment() { ++count_; }
  void Decrement() { --count_; }
  int Read() const { return count_; }

 private:
  int count_ = 0;
};

class AtomicWaiterCount {
 public:
  void Increment() { count_.fetch_add(1, std::memory_order_seq_cst); }
  void Decrement() { count_.fetch_sub(1, std::memory_order_relaxed); }
  int Read() const { return count_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<int> count_{0};
};

// The strawman itself. SemaphoreT must be binary (P/V) and start
// unavailable — a Wait's P should sleep until some Signal's V; the owner
// constructs it accordingly and keeps it alive for the core's lifetime.
// StepFn is called at the layer's yield points (no-op on real threads).
template <typename MutexT, typename SemaphoreT, typename WaitersT,
          typename StepFn>
class NaiveConditionCore {
 public:
  NaiveConditionCore(SemaphoreT& sem, StepFn step) : sem_(sem), step_(step) {}

  void Wait(MutexT& m) {
    step_();
    waiters_.Increment();
    m.Release();
    sem_.P();  // the race window is the boundary right here
    m.Acquire();
    step_();
    waiters_.Decrement();
  }

  // Signal(c) = V(c): correct for a single waiter — the one bit in the
  // semaphore covers the wakeup-waiting race.
  void Signal() { sem_.V(); }

  // One V per current waiter: the strongest broadcast a binary semaphore
  // admits, and still wrong — the Vs collapse while waiters race.
  void Broadcast() {
    step_();
    const int n = waiters_.Read();
    for (int i = 0; i < n; ++i) {
      sem_.V();
    }
  }

 private:
  SemaphoreT& sem_;
  StepFn step_;
  WaitersT waiters_;
};

}  // namespace taos::base

#endif  // TAOS_SRC_BASE_NAIVE_CONDITION_CORE_H_
