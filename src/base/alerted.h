// EXCEPTION Alerted (SRC Report 20).
//
// Raised by AlertWait and AlertP when the calling thread has a pending
// alert. Shared by the production library (src/threads) and the Firefly
// simulator (src/firefly) so that workloads can be written once against
// either substrate.

#ifndef TAOS_SRC_BASE_ALERTED_H_
#define TAOS_SRC_BASE_ALERTED_H_

#include <exception>

namespace taos {

class Alerted : public std::exception {
 public:
  const char* what() const noexcept override { return "taos::Alerted"; }
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_ALERTED_H_
