#include "src/base/check.h"

#include "src/base/chaos.h"

namespace taos {

void PanicImpl(const char* file, int line, const char* what) {
  std::fprintf(stderr, "taos panic at %s:%d: %s\n", file, line, what);
  // In a chaos build with injection active, the schedule pressure is part of
  // the failure: print the {seed, strategy, point-mask} triple so the exact
  // pressure is replayable with one env var. No-op otherwise.
  chaos::PrintConfigBanner(stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace taos
