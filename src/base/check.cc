#include "src/base/check.h"

namespace taos {

void PanicImpl(const char* file, int line, const char* what) {
  std::fprintf(stderr, "taos panic at %s:%d: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace taos
