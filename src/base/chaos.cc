#include "src/base/chaos.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/obs/coverage.h"
#include "src/obs/diag.h"

namespace taos {
namespace chaos {
namespace {

struct PointInfo {
  const char* name;
  Category category;
};

constexpr PointInfo kPoints[kNumPoints] = {
    {"spin.acquired", Category::kAfterCas},
    {"spin.before_release", Category::kGeneric},
    {"mutex.enqueued_to_test", Category::kAfterCas},
    {"mutex.backout", Category::kCancel},
    {"mutex.wake_to_retry", Category::kGeneric},
    {"mutex.release_window", Category::kGeneric},
    {"mutex.timed_finish", Category::kTimer},
    {"sem.enqueued_to_test", Category::kAfterCas},
    {"sem.backout", Category::kCancel},
    {"sem.wake_to_retry", Category::kGeneric},
    {"sem.release_window", Category::kGeneric},
    {"sem.timed_finish", Category::kTimer},
    {"cond.release_to_block", Category::kGeneric},
    {"cond.claim_to_recheck", Category::kAfterCas},
    {"cond.signal_to_resume", Category::kGeneric},
    {"cond.timed_finish", Category::kTimer},
    {"alert.flag_to_cancel", Category::kCancel},
    {"alert.lock_retry", Category::kGeneric},
    {"alert.wait_window", Category::kBeforePark},
    {"timer.arm", Category::kTimer},
    {"timer.cancel", Category::kTimer},
    {"timer.expiry_to_cancel", Category::kCancel},
    {"timer.batch_gap", Category::kTimer},
    {"waitq.claim", Category::kAfterCas},
    {"waitq.install", Category::kAfterCas},
    {"waitq.resume", Category::kGeneric},
    {"waitq.cancel", Category::kCancel},
    {"parker.before_park", Category::kBeforePark},
    {"parker.before_unpark", Category::kBeforeUnpark},
    {"parker.timed_return", Category::kTimer},
    {"mcs.enqueue_to_spin", Category::kAfterCas},
    {"mcs.release_to_successor", Category::kBeforeUnpark},
    {"clh.pred_spin", Category::kAfterCas},
    {"rwlock.reader_cas", Category::kAfterCas},
    {"rwlock.last_reader_wake", Category::kBeforeUnpark},
    {"diag.publish_to_park", Category::kBeforePark},
    {"diag.owner_stamp", Category::kAfterCas},
    {"diag.snapshot", Category::kGeneric},
    {"poll.register", Category::kAfterCas},
    {"poll.scan_to_park", Category::kBeforePark},
    {"poll.notify", Category::kBeforeUnpark},
    {"poll.deregister", Category::kCancel},
    {"event.set_to_resume", Category::kGeneric},
    {"msgq.handoff", Category::kGeneric},
};

constexpr const char* kStrategyNames[] = {"uniform", "preempt-after-cas",
                                          "delay-before-park"};

bool NamesEqualDashBlind(const char* a, const char* b) {
  for (;; ++a, ++b) {
    const char ca = (*a == '_') ? '-' : *a;
    const char cb = (*b == '_') ? '-' : *b;
    if (ca != cb) {
      return false;
    }
    if (ca == '\0') {
      return true;
    }
  }
}

}  // namespace

const char* PointName(Point p) {
  return kPoints[static_cast<std::uint32_t>(p)].name;
}

Category PointCategory(Point p) {
  return kPoints[static_cast<std::uint32_t>(p)].category;
}

const char* StrategyName(Strategy s) {
  return kStrategyNames[static_cast<std::uint8_t>(s)];
}

bool ParseStrategy(const char* text, Strategy* out) {
  for (std::uint8_t i = 0; i < 3; ++i) {
    if (NamesEqualDashBlind(text, kStrategyNames[i])) {
      *out = static_cast<Strategy>(i);
      return true;
    }
  }
  return false;
}

std::uint64_t FullPointMask() {
  return (std::uint64_t{1} << kNumPoints) - 1;
}

std::uint64_t MaskForCategory(Category c) {
  std::uint64_t mask = 0;
  for (int i = 0; i < kNumPoints; ++i) {
    if (kPoints[i].category == c) {
      mask |= std::uint64_t{1} << i;
    }
  }
  return mask;
}

// All randomness flows through here, so a {seed, strategy} pair fully
// determines each thread's decision stream. Probabilities are per-256.
Decision Decide(Strategy strategy, Category category, XorShift& rng) {
  const std::uint32_t fire_draw = rng.Below(256);
  std::uint32_t fire_below = 0;
  bool biased = false;
  switch (strategy) {
    case Strategy::kUniform:
      fire_below = 12;  // ~5% everywhere
      break;
    case Strategy::kPreemptAfterCas:
      biased = category == Category::kAfterCas;
      fire_below = biased ? 128 : 4;
      break;
    case Strategy::kDelayBeforePark:
      biased = category == Category::kBeforePark ||
               category == Category::kBeforeUnpark;
      fire_below = biased ? 128 : 4;
      break;
  }
  if (fire_draw >= fire_below) {
    return {};
  }
  const std::uint32_t kind_draw = rng.Below(256);
  if (biased) {
    // The biased points get real preemption: mostly sleeps long enough for
    // a racing thread to run a whole slow path through the window.
    if (kind_draw < 64) {
      return {ActionKind::kYield, 0};
    }
    const std::uint32_t ceiling =
        strategy == Strategy::kDelayBeforePark ? 200 : 50;
    return {ActionKind::kSleep, 1 + rng.Below(ceiling)};
  }
  if (kind_draw < 128) {
    return {ActionKind::kYield, 0};
  }
  if (kind_draw < 230) {
    return {ActionKind::kSpin, 16 + rng.Below(241)};
  }
  return {ActionKind::kSleep, 1 + rng.Below(100)};
}

#if defined(TAOS_CHAOS_ENABLED)

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

std::atomic<std::uint64_t> g_seed{0};
std::atomic<std::uint8_t> g_strategy{0};
std::atomic<std::uint64_t> g_point_mask{0};
// Bumped by Configure; threads lazily reseed when their epoch is stale.
std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::uint32_t> g_next_ordinal{0};

int g_slots[kNumPoints] = {};
std::atomic<bool> g_slots_registered{false};

struct ThreadStream {
  std::uint64_t epoch = 0;
  XorShift rng;
};
thread_local ThreadStream t_stream;

void RegisterSlots() {
  // RegisterCoverageSlot dedups by name, so racing registrars agree.
  for (int i = 0; i < kNumPoints; ++i) {
    g_slots[i] = obs::RegisterCoverageSlot(kPoints[i].name);
  }
  g_slots_registered.store(true, std::memory_order_release);
}

void Pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

// Reads TAOS_CHAOS_SEED (+ optional strategy and mask) at process start.
// Runs during static init; any crossing before then simply sees chaos off.
struct EnvInit {
  EnvInit() {
    const char* seed_text = std::getenv("TAOS_CHAOS_SEED");
    if (seed_text == nullptr || *seed_text == '\0') {
      return;
    }
    Config config;
    config.seed = std::strtoull(seed_text, nullptr, 0);
    if (const char* s = std::getenv("TAOS_CHAOS_STRATEGY")) {
      if (!ParseStrategy(s, &config.strategy)) {
        std::fprintf(stderr, "taos chaos: unknown TAOS_CHAOS_STRATEGY '%s'\n",
                     s);
        std::abort();
      }
    }
    if (const char* m = std::getenv("TAOS_CHAOS_POINTS")) {
      config.point_mask = std::strtoull(m, nullptr, 0);
    }
    Configure(config);
  }
};
EnvInit g_env_init;

// Installs the diag snapshot probe (the kDiagSnapshot seam) during static
// init. Lives here rather than in diag.cc because obs sits below chaos in
// the library order; in chaos builds every TAOS_CHAOS crossing references
// InjectSlow, so this TU — and with it the probe — is always linked in.
struct SnapshotProbeInit {
  SnapshotProbeInit() {
    obs::diag::SetSnapshotProbe(+[] { TAOS_CHAOS(kDiagSnapshot); });
  }
};
SnapshotProbeInit g_snapshot_probe_init;

}  // namespace

void Configure(const Config& config) {
  RegisterSlots();
  g_seed.store(config.seed, std::memory_order_relaxed);
  g_strategy.store(static_cast<std::uint8_t>(config.strategy),
                   std::memory_order_relaxed);
  g_point_mask.store(config.point_mask & FullPointMask(),
                     std::memory_order_relaxed);
  g_next_ordinal.store(0, std::memory_order_relaxed);
  // The epoch bump publishes the fields above to lazily-reseeding threads;
  // callers are quiescent, so no crossing races the reconfiguration.
  g_epoch.fetch_add(1, std::memory_order_release);
  internal::g_enabled.store(true, std::memory_order_release);
}

void Disable() {
  internal::g_enabled.store(false, std::memory_order_release);
}

Config ActiveConfig() {
  Config config;
  config.seed = g_seed.load(std::memory_order_relaxed);
  config.strategy =
      static_cast<Strategy>(g_strategy.load(std::memory_order_relaxed));
  config.point_mask = g_point_mask.load(std::memory_order_relaxed);
  return config;
}

void PrintConfigBanner(std::FILE* f) {
  if (!Active()) {
    return;
  }
  const Config config = ActiveConfig();
  std::fprintf(f,
               "taos chaos: seed=%llu strategy=%s point-mask=0x%llx\n"
               "taos chaos: replay with TAOS_CHAOS_SEED=%llu "
               "TAOS_CHAOS_STRATEGY=%s TAOS_CHAOS_POINTS=0x%llx\n",
               static_cast<unsigned long long>(config.seed),
               StrategyName(config.strategy),
               static_cast<unsigned long long>(config.point_mask),
               static_cast<unsigned long long>(config.seed),
               StrategyName(config.strategy),
               static_cast<unsigned long long>(config.point_mask));
}

namespace internal {

void InjectSlow(Point p) {
  const std::uint32_t index = static_cast<std::uint32_t>(p);
  const std::uint64_t mask = g_point_mask.load(std::memory_order_relaxed);
  if ((mask & (std::uint64_t{1} << index)) == 0) {
    return;
  }
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  ThreadStream& stream = t_stream;
  if (stream.epoch != epoch) {
    // First crossing (or first since a reconfigure): derive this thread's
    // stream from the seed and an arrival ordinal. Ordinals depend on
    // arrival order, which is deterministic enough in practice: the same
    // seed applies the same pressure pattern to the same workload shape.
    const std::uint32_t ordinal =
        g_next_ordinal.fetch_add(1, std::memory_order_relaxed);
    stream.rng = XorShift(g_seed.load(std::memory_order_relaxed) ^
                          (0x9e3779b97f4a7c15ULL * (ordinal + 1)));
    stream.epoch = epoch;
  }
  if (g_slots_registered.load(std::memory_order_acquire)) {
    obs::CoverageHit(g_slots[index]);
  }
  const Strategy strategy =
      static_cast<Strategy>(g_strategy.load(std::memory_order_relaxed));
  const Decision d = Decide(strategy, kPoints[index].category, stream.rng);
  if (d.kind == ActionKind::kNone) {
    return;
  }
  if (g_slots_registered.load(std::memory_order_acquire)) {
    obs::CoverageFire(g_slots[index]);
  }
  switch (d.kind) {
    case ActionKind::kNone:
      break;
    case ActionKind::kYield:
      std::this_thread::yield();
      break;
    case ActionKind::kSpin:
      for (std::uint32_t i = 0; i < d.amount; ++i) {
        Pause();
      }
      break;
    case ActionKind::kSleep:
      std::this_thread::sleep_for(std::chrono::microseconds(d.amount));
      break;
  }
}

}  // namespace internal

#endif  // TAOS_CHAOS_ENABLED

}  // namespace chaos
}  // namespace taos
