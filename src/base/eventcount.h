// Eventcount, after Reed & Kanodia (SOSP 1977), as used by the Threads
// implementation of condition variables.
//
// SRC Report 20: "An eventcount is an atomically-readable, monotonically-
// increasing integer variable." Wait reads the eventcount before releasing
// the mutex; Block compares it under the Nub spin-lock; Signal/Broadcast
// increment it. A thread whose read is stale returns from Block immediately
// instead of sleeping — this closes the wakeup-waiting race.

#ifndef TAOS_SRC_BASE_EVENTCOUNT_H_
#define TAOS_SRC_BASE_EVENTCOUNT_H_

#include <atomic>
#include <cstdint>

#include "src/obs/metrics.h"

namespace taos {

class EventCount {
 public:
  using Value = std::uint64_t;

  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  // Atomically readable. seq_cst: in the lock-free waiter-queue mode
  // (TAOS_WAITQ=1) Wait's claim-then-Read races Signal's Advance-then-scan
  // with no common lock, and the wakeup-waiting race is closed by a
  // Dekker-style argument over the seq_cst total order — at least one side
  // must see the other (condition.cc). Under the classic Nub both sides run
  // under the object's spin-lock and acquire/release would suffice.
  Value Read() const { return count_.load(std::memory_order_seq_cst); }

  // Monotonically increasing. Returns the value after the increment.
  Value Advance() {
    obs::Inc(obs::Counter::kEventCountAdvances);
    return count_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

 private:
  std::atomic<Value> count_{0};
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_EVENTCOUNT_H_
