// Wall-clock stopwatch for experiments and examples (benches use
// google-benchmark's own timing).

#ifndef TAOS_SRC_BASE_STOPWATCH_H_
#define TAOS_SRC_BASE_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace taos {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  std::uint64_t ElapsedNanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_STOPWATCH_H_
