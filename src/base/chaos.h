// Chaos schedule injection: seeded perturbation points in the runtime's
// slow paths, compiled out entirely unless -DTAOS_CHAOS=ON.
//
// The simulator (src/model) can enumerate interleavings, but the production
// Nub runs under the real scheduler, where the narrow windows the paper
// worries about — wakeup-waiting, Alert-vs-grant, timeout-vs-grant — are hit
// by luck. A TAOS_CHAOS(point) marker names each such window; in a chaos
// build a seeded per-thread PRNG decides at every crossing whether to yield,
// sleep, or spin there, widening the window so racing threads actually land
// inside it. Every crossing also bumps an obs coverage slot
// (src/obs/coverage.h), so a run reports which race windows were exercised
// instead of presuming it.
//
// Zero cost when off:
//   - default build: TAOS_CHAOS(p) expands to ((void)0) — nothing survives
//     compilation, so benches on the default build measure the real runtime;
//   - chaos build, not enabled: one relaxed load of a global flag and a
//     predicted branch per crossing (bench_uncontended proves parity).
//
// Determinism and replay: all decisions derive from {seed, strategy,
// point-mask}. Each thread draws from its own XorShift stream, seeded from
// the global seed and a per-thread arrival ordinal, so a failure under
//   TAOS_CHAOS_SEED=<n> [TAOS_CHAOS_STRATEGY=<s>] [TAOS_CHAOS_POINTS=<hex>]
// re-applies the same per-window pressure when re-run. (The OS scheduler is
// still free-running — the seed replays the pressure, not the exact
// interleaving — but in practice a seed that found a window keeps finding
// it; TAOS_CHECK failures print the active triple via PanicImpl.)
//
// Layering: this header is included by spinlock.h and the waitq, so it must
// not use any taos synchronization — std::atomic, thread_local and pure code
// only. Injection actions use std::this_thread and a raw pause instruction.

#ifndef TAOS_SRC_BASE_CHAOS_H_
#define TAOS_SRC_BASE_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>

#include "src/base/xorshift.h"

namespace taos {
namespace chaos {

// One enumerator per named race window. The enumerator's value is its bit in
// the point mask, so the list is append-only (reordering would change what a
// recorded mask replays). Grouped by the subsystem that owns the seam.
enum class Point : std::uint32_t {
  // Spin-lock seams: every NubGuard / record-lock crossing. A sleep here
  // stretches critical sections, which is what makes rule 3's try-lock dance
  // and the guard-ordered paths actually contend.
  kSpinAcquired = 0,     // holding the lock, before the caller's work
  kSpinBeforeRelease,    // still holding, after the caller's work
  // Mutex slow paths (classic intrusive queue and waitq cell, both).
  kMutexEnqueuedToTest,  // queued/claimed, before re-testing the Lock-bit
  kMutexBackout,         // bit found free: before withdrawing the claim
  kMutexWakeToRetry,     // unparked, before retrying the test-and-set
  kMutexReleaseWindow,   // Release: bit cleared, before the queue_len scan
  kMutexTimedFinish,     // timed: timer cancelled, before the final retest
  // Semaphore slow paths — same seams as the mutex, P/V instead.
  kSemEnqueuedToTest,
  kSemBackout,
  kSemWakeToRetry,
  kSemReleaseWindow,
  kSemTimedFinish,
  // Condition slow paths.
  kCondReleaseToBlock,   // Wait: m released, before blocking (wakeup-waiting)
  kCondClaimToRecheck,   // Block: queued/claimed, before re-reading the ec
  kCondSignalToResume,   // Signal: ec advanced, before picking a waiter
  kCondTimedFinish,      // timed: timer cancelled, before reacquiring m
  // Alert: the cancellation seams.
  kAlertFlagToCancel,    // alerted flag set, before cancelling the wait
  kAlertLockRetry,       // rule 3: object try-lock failed, before retrying
  kAlertWaitWindow,      // AlertWait/AlertP: holding the record lock across
                         // the alerted-flag check and the install
  // Timer wheel.
  kTimerArm,             // deadline published, before the wheel insert
  kTimerCancel,          // before the gen-validated unlink
  kTimerExpiryToCancel,  // expiry batch entry, before the cancel/dequeue
  kTimerBatchGap,        // wheel lock dropped, before expiring the batch
  // waitq cell state machine.
  kWaitqClaim,           // cell claimed (fetch_add), before returning it
  kWaitqInstall,         // before the EMPTY -> WAITING install CAS
  kWaitqResume,          // ResumeOne: before the WAITING/EMPTY resume CAS
  kWaitqCancel,          // before the cancel CAS loop
  // Parker park/unpark edges (both backends).
  kParkerBeforePark,
  kParkerBeforeUnpark,
  kParkerTimedReturn,    // timed park returned without a permit, before the
                         // caller learns it timed out
  // Queue-lock cores (TAOS_LOCK=mcs|clh) and the rwlock fast path.
  kMcsEnqueueToSpin,     // MCS: linked to the predecessor, before watching
                         // the own-node flag
  kMcsReleaseToSuccessor,// MCS: successor identified, before the handoff
  kClhPredSpin,          // CLH: enqueued, before the first predecessor read
  kRwlockReaderCas,      // rwlock: reader-count CAS won, before returning
  kRwlockLastReaderWake, // rwlock: count hit zero, before waking a writer
  // Contention-diagnosis seams (src/obs/diag).
  kDiagPublishToPark,    // blocked edge published, before the deschedule —
                         // a snapshot here sees "blocked" pre-park
  kDiagOwnerStamp,       // acquire epilogue, before the owner-table stamp
  kDiagSnapshot,         // inside SnapshotBlocked, racing the publishers
  // Multi-object wait seams (src/threads/poll, src/threads/event).
  kPollRegister,         // registration installed, before the ready re-scan
  kPollScanToPark,       // scan found nothing, before the park episode
  kPollNotify,           // Set won the latch 0->1, before the unblock dance
  kPollDeregister,       // grant taken, before deregistering the rest —
                         // the lost-wakeup window the litmus test models
  kEventSetToResume,     // Set: flag stored, before waking waiters/pollers
  kMsgqHandoff,          // MessageQueue: state changed under the user
                         // mutex, before the event edge is published
  kCount,
};

inline constexpr int kNumPoints = static_cast<int>(Point::kCount);
static_assert(kNumPoints <= 64, "point mask is a uint64_t");

// Each point belongs to one category; strategies bias by category.
enum class Category : std::uint8_t {
  kGeneric,      // any atomic transition
  kAfterCas,     // just won a CAS/claim, dependent publish still pending
  kBeforePark,   // about to deschedule
  kBeforeUnpark, // about to wake someone
  kCancel,       // cancellation racing a grant
  kTimer,        // deadline machinery
};

enum class Strategy : std::uint8_t {
  kUniform,          // equal low-probability pressure on every enabled point
  kPreemptAfterCas,  // heavy preemption right after successful CAS/claims
  kDelayBeforePark,  // long delays on the park/unpark edges
};

struct Config {
  std::uint64_t seed = 0;
  Strategy strategy = Strategy::kUniform;
  std::uint64_t point_mask = ~std::uint64_t{0};  // clamped to known points
};

// ---- Introspection: available in every build (tests name points and parse
// strategies regardless of whether injection is compiled in).

const char* PointName(Point p);
Category PointCategory(Point p);
const char* StrategyName(Strategy s);
// Accepts "preempt-after-cas" or "preempt_after_cas"; returns false on junk.
bool ParseStrategy(const char* text, Strategy* out);
std::uint64_t FullPointMask();
// Bits of every point in the given category.
std::uint64_t MaskForCategory(Category c);

// What one crossing does. Exposed (with Decide) so tests can pin the
// decision stream's determinism without racing real threads.
enum class ActionKind : std::uint8_t { kNone, kYield, kSpin, kSleep };
struct Decision {
  ActionKind kind = ActionKind::kNone;
  std::uint32_t amount = 0;  // spin: pause-loop iterations; sleep: microseconds
};
// Pure function of (strategy, category, rng draws).
Decision Decide(Strategy strategy, Category category, XorShift& rng);

#if defined(TAOS_CHAOS_ENABLED)

inline constexpr bool kCompiledIn = true;

namespace internal {
extern std::atomic<bool> g_enabled;
void InjectSlow(Point p);
}  // namespace internal

// True when injection is compiled in AND a seed has been configured (env or
// Configure). Tests use this to scale iteration counts down under pressure.
inline bool Active() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Installs a configuration and starts injecting. Threads that cross a point
// after this call get fresh per-thread streams (arrival-ordinal seeded).
// Callers must be quiescent, like Nub::SetGlobalLockMode.
void Configure(const Config& config);
// Stops injecting (the configuration is retained for the banner).
void Disable();
// The configuration Configure/env installed; meaningful once Active().
Config ActiveConfig();

// One "taos chaos: ..." line plus a replay recipe, iff Active(). PanicImpl
// calls this so an invariant failure under chaos prints the triple needed
// to reproduce it.
void PrintConfigBanner(std::FILE* f);

// The per-crossing gate: one relaxed load and a predicted branch when chaos
// is compiled in but not enabled.
inline void MaybeInject(Point p) {
  if (internal::g_enabled.load(std::memory_order_relaxed)) {
    internal::InjectSlow(p);
  }
}

#define TAOS_CHAOS(point) \
  ::taos::chaos::MaybeInject(::taos::chaos::Point::point)

#else  // !TAOS_CHAOS_ENABLED

inline constexpr bool kCompiledIn = false;

inline bool Active() { return false; }
inline void Configure(const Config&) {}
inline void Disable() {}
inline Config ActiveConfig() { return Config{}; }
inline void PrintConfigBanner(std::FILE*) {}

#define TAOS_CHAOS(point) ((void)0)

#endif  // TAOS_CHAOS_ENABLED

}  // namespace chaos
}  // namespace taos

#endif  // TAOS_SRC_BASE_CHAOS_H_
