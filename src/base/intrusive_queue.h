// Intrusive FIFO queue used for the Nub's per-object queues of blocked
// threads and for the ready pool.
//
// The queues in the paper's Nub hold thread control blocks; a thread is on at
// most one queue at a time (a mutex queue, a condition queue, a semaphore
// queue, or the ready pool), so a single embedded QueueNode per record is
// enough and no allocation ever happens on a blocking path.

#ifndef TAOS_SRC_BASE_INTRUSIVE_QUEUE_H_
#define TAOS_SRC_BASE_INTRUSIVE_QUEUE_H_

#include <cstddef>

#include "src/base/check.h"

namespace taos {

struct QueueNode {
  QueueNode* prev = nullptr;
  QueueNode* next = nullptr;
  void* owner = nullptr;  // the T* this node is embedded in; set on PushBack

  bool InQueue() const { return prev != nullptr; }
};

// T must have a public member `QueueNode queue_node`.
template <typename T>
class IntrusiveQueue {
 public:
  IntrusiveQueue() {
    head_.prev = &head_;
    head_.next = &head_;
  }
  IntrusiveQueue(const IntrusiveQueue&) = delete;
  IntrusiveQueue& operator=(const IntrusiveQueue&) = delete;

  ~IntrusiveQueue() { TAOS_DCHECK(Empty()); }

  bool Empty() const { return head_.next == &head_; }

  std::size_t Size() const {
    std::size_t n = 0;
    for (QueueNode* p = head_.next; p != &head_; p = p->next) {
      ++n;
    }
    return n;
  }

  void PushBack(T* item) {
    QueueNode* node = &item->queue_node;
    TAOS_DCHECK(!node->InQueue());
    node->owner = item;
    node->prev = head_.prev;
    node->next = &head_;
    head_.prev->next = node;
    head_.prev = node;
  }

  // Removes and returns the oldest element, or nullptr if empty.
  T* PopFront() {
    if (Empty()) {
      return nullptr;
    }
    QueueNode* node = head_.next;
    Unlink(node);
    return static_cast<T*>(node->owner);
  }

  // Removes `item` from the queue; it must currently be enqueued here.
  void Remove(T* item) {
    QueueNode* node = &item->queue_node;
    TAOS_DCHECK(node->InQueue());
    Unlink(node);
  }

  bool Contains(const T* item) const {
    const QueueNode* target = &item->queue_node;
    for (QueueNode* p = head_.next; p != &head_; p = p->next) {
      if (p == target) {
        return true;
      }
    }
    return false;
  }

  T* Front() const {
    return Empty() ? nullptr : static_cast<T*>(head_.next->owner);
  }

  // Visits every element front-to-back. The visitor must not mutate the
  // queue; Broadcast-style draining should loop on PopFront instead.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (QueueNode* p = head_.next; p != &head_; p = p->next) {
      fn(static_cast<T*>(p->owner));
    }
  }

 private:
  static void Unlink(QueueNode* node) {
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
  }

  mutable QueueNode head_;  // circular sentinel
};

}  // namespace taos

#endif  // TAOS_SRC_BASE_INTRUSIVE_QUEUE_H_
