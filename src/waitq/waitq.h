// A CQS-inspired waiter-queue substrate (after Koval, Khalanskiy & Alistarh,
// "CQS: A Formally-Verified Framework for Fair and Abortable
// Synchronization", 2021): a segment-based MPSC queue of parked-thread cells
// with
//
//   - lock-free enqueue: a waiter claims the next cell with one fetch_add
//     and never takes the object's slow-path lock to join the queue,
//   - FIFO resume: a single consumer (the Release/V/Signal slow path,
//     serialized by the object's ObjLock) grants cells strictly in claim
//     order,
//   - O(1) cancellation: Alert marks the victim's cell CANCELLED with one
//     CAS instead of taking the object lock and unlinking a list node —
//     closing the Alert-vs-Signal race structurally (the CAS on the cell
//     state is the arbitration; exactly one side wins).
//
// Cell state machine (DESIGN.md §10):
//
//     EMPTY --Install--> WAITING --ResumeOne--> RESUMED
//       |                   |
//       |                   +------Cancel-----> CANCELLED
//       +------ResumeOne--> RESUMED        (immediate grant: the claimant
//       +------Cancel-----> CANCELLED       had not installed yet)
//
// RESUMED and CANCELLED are terminal; the transition into them is a CAS and
// its winner owns the cell's side effects (the resumer unparks, the
// canceller delivers the alert, the claimant's back-out gives up its claim).
// A resume that lands on EMPTY is an "immediate grant": the claimant is
// still between claiming and installing, its Install will fail, and it
// proceeds without parking — no unpark is needed or issued.
//
// Concurrency contract:
//   - Enqueue: any thread, lock-free.
//   - ResumeOne: ONE thread at a time (callers serialize on the object's
//     ObjLock; in global-lock mode all ObjLocks are the same bit, which is
//     stricter still).
//   - Cancel: any thread, any time before the cell is detached.
//   - Detach: exactly once per claimed cell, by the claimant, after its last
//     touch of the cell AND after the cell can no longer be named by a
//     canceller (the Nub unpublishes ThreadRecord::wait_cell under the
//     record lock first).
//
// Memory reclamation: a segment is freed by the consumer once every cell in
// it has been consumed (deq passed it) and detached (no claimant or
// canceller can touch it again), and no enqueuer is mid-walk (in_flight == 0
// and the tail pointer has moved on). Segments are small (kCells) so
// boundary conditions are exercised constantly in tests.

#ifndef TAOS_SRC_WAITQ_WAITQ_H_
#define TAOS_SRC_WAITQ_WAITQ_H_

#include <atomic>
#include <cstdint>

#include "src/waitq/parker.h"

namespace taos::waitq {

struct Segment;

class WaitCell {
 public:
  enum class State { kEmpty, kWaiting, kResumed, kCancelled };

  // Publishes the claimant's parker (and an opaque tag the resumer hands
  // back, here the ThreadRecord*). Returns true if the cell is now WAITING;
  // false if a resume or cancel got there first (the claimant must not
  // park). `tag` is written before the CAS-release and read by the resumer
  // after its CAS-acquire, so it needs no atomicity of its own.
  bool Install(Parker* parker, void* tag);

  enum class CancelOutcome { kCancelled, kLostToResume };

  // One-CAS transition to CANCELLED from EMPTY or WAITING. kLostToResume
  // means the cell was already RESUMED: the wakeup is in flight and the
  // caller must let it stand (an alerter falls back to flag-only delivery;
  // a backing-out claimant proceeds as woken).
  CancelOutcome Cancel();

  // Racy outside the protocol; stable once terminal (which is the only time
  // the claimant reads it after parking).
  State state() const;

 private:
  friend class WaitQueue;
  friend struct Segment;

  static constexpr std::uintptr_t kEmptyBits = 0;
  static constexpr std::uintptr_t kResumedBits = 1;
  static constexpr std::uintptr_t kCancelledBits = 2;
  // Any other value is the installed Parker* (pointers are aligned, so the
  // low values above are never valid parkers).

  std::atomic<std::uintptr_t> state_{kEmptyBits};
  void* tag_ = nullptr;
  Segment* segment_ = nullptr;
};

struct Segment {
  // Small on purpose: segment birth, retirement and the cross-segment walk
  // are exercised every few waiters instead of once per 2^k.
  static constexpr std::uint32_t kCells = 8;

  explicit Segment(std::uint64_t base_index);

  WaitCell cells[kCells];
  const std::uint64_t base;                 // global index of cells[0]
  std::atomic<Segment*> next{nullptr};      // forward chain, never unlinked
  std::atomic<std::uint32_t> detached{0};   // claimants done with their cell
  Segment* retired_link = nullptr;          // consumer-private retired list
};

class WaitQueue {
 public:
  WaitQueue() = default;
  ~WaitQueue();
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Claims the next cell in FIFO order. Lock-free (one fetch_add plus an
  // occasional segment allocation); callable from any thread.
  WaitCell* Enqueue();

  struct Resumed {
    bool resumed = false;    // false: queue empty (every claimed cell done)
    Parker* parker = nullptr;  // null on an immediate grant (EMPTY->RESUMED)
    void* tag = nullptr;       // Install's tag; null on an immediate grant
  };

  // Grants the oldest live cell: skips CANCELLED cells, CASes the first
  // EMPTY/WAITING cell to RESUMED. The caller unparks `parker` (if any)
  // after dropping its locks. Single consumer at a time — callers serialize
  // on the owning object's ObjLock.
  Resumed ResumeOne();

  // The claimant's last act on its cell (see the contract above).
  static void Detach(WaitCell* cell);

  // True when every claimed cell has reached a terminal state — the
  // destructor's precondition, analogous to IntrusiveQueue::Empty() in the
  // object destructors. Racy: call quiescent.
  bool DrainedForDebug() const;

  // Total cells ever claimed. Racy; for tests and benches.
  std::uint64_t ClaimedForDebug() const {
    return enq_.load(std::memory_order_relaxed);
  }

 private:
  Segment* SegmentForIndex(Segment* start, std::uint64_t index);
  void RetireConsumed(Segment* seg);
  void ReclaimRetired();

  // Claim order. seq_cst: the claim participates in the Dekker-style
  // pairings with the object's lock-bit / eventcount (claim-then-test on
  // the waiter side vs publish-then-scan on the waker side; see mutex.cc,
  // condition.cc).
  std::atomic<std::uint64_t> enq_{0};
  // Consume cursor; consumer-private, atomic only for debug reads.
  std::atomic<std::uint64_t> deq_{0};
  // First not-fully-consumed segment; consumer-private after initialization
  // (the first enqueuer installs it).
  std::atomic<Segment*> head_{nullptr};
  // Highest allocated segment; enqueuers start their walk here. An
  // enqueuer's snapshot taken BEFORE its fetch_add can never be past its
  // claimed index's segment (the tail only advances to a segment some
  // already-claimed index needed).
  std::atomic<Segment*> tail_{nullptr};
  // Enqueuers inside the claim/walk window. Retired segments are only freed
  // when this is zero: a stale tail_ snapshot may still be walking them.
  std::atomic<std::uint32_t> in_flight_{0};
  Segment* retired_ = nullptr;  // consumer-private
};

}  // namespace taos::waitq

#endif  // TAOS_SRC_WAITQ_WAITQ_H_
