// Parker: the one-permit park/unpark primitive the waiter-queue substrate
// (waitq.h) suspends threads on. It is the "de-schedule this thread / add it
// to the ready pool" substitution point of the Nub, factored out of
// ThreadRecord so the blocking mechanism is pluggable:
//
//   - kFutex    — a 3-state futex protocol (Linux only): EMPTY/PARKED/
//                 NOTIFIED in one 32-bit word, one FUTEX_WAIT per real sleep
//                 and one FUTEX_WAKE per handoff, no heap or kernel object
//                 per parker.
//   - kCondvar  — std::mutex + std::condition_variable + the same permit
//                 word, the portable fallback.
//
// The permit discipline matches std::binary_semaphore{0}: Unpark deposits at
// most one permit; Park consumes one, sleeping until it arrives. An Unpark
// that races ahead of the Park is never lost (the permit waits), and a
// spurious futex return re-checks the word. The waitq cell protocol
// guarantees at most one Unpark per Park, but the parker itself also
// tolerates Unpark-with-no-parker (the permit is consumed by the next Park).
//
// Memory ordering (the fence argument): Park-returns is an acquire edge
// paired with Unpark's release on the permit word, in BOTH backends. The
// unparker writes the reason for the wakeup (a granted mutex bit, a filled
// condition slot, a cancelled wait cell) before Unpark; the parked thread
// reads it right after Park returns. Those payload reads must not be
// reorderable above the observation of kNotified, so the edge has to stand
// on the permit word itself:
//   - futex: the consuming CAS kNotified -> kEmpty is acquire, pairing with
//     the release exchange in FutexUnpark (the kernel sleep provides no
//     ordering of its own).
//   - condvar: the spin re-check of state_ loads with acquire, pairing with
//     the release store in CondvarUnpark. mu_ usually also synchronizes the
//     pair, but Park may observe kNotified on its first check without
//     blocking after an Unpark that already left the critical section, and
//     the permit protocol must not depend on the lock being taken on both
//     sides of every handoff.
//
// Backend selection: the process default is futex on Linux, condvar
// elsewhere, overridable with TAOS_WAITQ_PARKER=futex|condvar (read once);
// individual parkers can pin a backend for A/B benches and tests.

#ifndef TAOS_SRC_WAITQ_PARKER_H_
#define TAOS_SRC_WAITQ_PARKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace taos::waitq {

class Parker {
 public:
  enum class Backend { kFutex, kCondvar };

  // The process-wide default: TAOS_WAITQ_PARKER if set, else futex on Linux
  // and condvar elsewhere. A futex request on a non-futex platform degrades
  // to condvar.
  static Backend DefaultBackend();

  Parker() : backend_(DefaultBackend()) {}
  explicit Parker(Backend b) : backend_(Resolve(b)) {}
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  Backend backend() const { return backend_; }

  // Consumes one permit, blocking until it is deposited.
  void Park();

  // Consumes one permit if it is deposited before `deadline_ns` on the
  // obs::NowNanos() timeline. Returns true if a permit was consumed (even
  // if it raced past the deadline), false if the deadline passed with no
  // permit — in which case no permit is consumed and the parker is reusable
  // immediately. Futex backend: FUTEX_WAIT with a timeout; condvar backend:
  // wait_until against the same clock. Same acquire/release pairing as
  // Park/Unpark.
  bool ParkUntil(std::uint64_t deadline_ns);

  // Deposits one permit, waking the parked thread if there is one. Safe from
  // any thread; never blocks (beyond the condvar backend's short critical
  // section).
  void Unpark();

  // Test-only: wakes the underlying futex/condvar WITHOUT depositing a
  // permit — a synthetic spurious wakeup. Park/ParkUntil must absorb it
  // (re-check the word, go back to sleep); returning from Park on one is a
  // permit-protocol violation.
  void SpuriousWakeForDebug();

 private:
  // Values of state_. For the futex backend the word carries the whole
  // protocol; for the condvar backend only kEmpty/kNotified are used (the
  // permit), under mu_.
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kParked = 1;
  static constexpr std::uint32_t kNotified = 2;

  static Backend Resolve(Backend b);

  void FutexPark();
  void FutexUnpark();
  void CondvarPark();
  void CondvarUnpark();
  bool FutexParkUntil(std::uint64_t deadline_ns);
  bool CondvarParkUntil(std::uint64_t deadline_ns);

  const Backend backend_;
  std::atomic<std::uint32_t> state_{kEmpty};
  // Wakeup-causality stamp (recorder on only): Unpark writes the flow id
  // and its grant timestamp BEFORE depositing the permit, so the pair rides
  // the permit word's release/acquire edge to the wakee; Park consumes it
  // after returning and emits the matching kParkResume event. Relaxed
  // accesses suffice given that edge; a stamp with no consumer (permit
  // still pending at a timeout) is consumed by the next Park, which is the
  // Park the pending permit wakes.
  std::atomic<std::uint64_t> wake_flow_{0};
  std::atomic<std::uint64_t> wake_ns_{0};
  std::mutex mu_;               // condvar backend only
  std::condition_variable cv_;  // condvar backend only
};

}  // namespace taos::waitq

#endif  // TAOS_SRC_WAITQ_PARKER_H_
