#include "src/waitq/parker.h"

#include <cstdlib>
#include <cstring>

#include "src/base/chaos.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace taos::waitq {

namespace {

#if defined(__linux__)
void FutexWait(std::atomic<std::uint32_t>& word, std::uint32_t expected,
               const struct timespec* timeout = nullptr) {
  // Returns on wake, on EAGAIN (word already changed), on ETIMEDOUT (when a
  // relative `timeout` is given), or spuriously; the caller re-checks the
  // word either way.
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAIT_PRIVATE, expected, timeout, nullptr, 0);
}

void FutexWakeOne(std::atomic<std::uint32_t>& word) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
}
#endif

// Consumes the wakeup-causality stamp deposited by Unpark (if any) and
// emits the wakee-side half of the flow edge plus the signal-to-running
// latency sample. Out of line from the permit protocol: called only after
// Park has consumed a permit, so the stamp reads are ordered after the
// waker's stamp writes by the permit word's release/acquire edge.
void ConsumeWakeStamp(std::atomic<std::uint64_t>& wake_flow,
                      std::atomic<std::uint64_t>& wake_ns) {
  const std::uint64_t flow = wake_flow.load(std::memory_order_relaxed);
  if (flow == 0) {
    return;
  }
  wake_flow.store(0, std::memory_order_relaxed);
  if (!obs::RecorderEnabled()) {
    return;  // stamped while on, drained while off: drop the orphan half
  }
  const std::uint64_t granted = wake_ns.load(std::memory_order_relaxed);
  const std::uint64_t now = obs::NowNanos();
  const std::uint64_t latency = now > granted ? now - granted : 0;
  obs::RecordEvent(obs::Op::kParkResume, 0, granted, latency, 0, flow);
  obs::Record(obs::Histogram::kWakeupLatencyNanos, latency);
}

}  // namespace

Parker::Backend Parker::Resolve(Backend b) {
#if defined(__linux__)
  return b;
#else
  (void)b;
  return Backend::kCondvar;
#endif
}

Parker::Backend Parker::DefaultBackend() {
  static const Backend backend = [] {
    const char* v = std::getenv("TAOS_WAITQ_PARKER");
    if (v != nullptr) {
      if (std::strcmp(v, "condvar") == 0) {
        return Backend::kCondvar;
      }
      if (std::strcmp(v, "futex") == 0) {
        return Resolve(Backend::kFutex);
      }
    }
    return Resolve(Backend::kFutex);
  }();
  return backend;
}

void Parker::Park() {
  // Between the caller's last re-test and the deschedule: the wakeup-waiting
  // window the permit protocol exists for.
  TAOS_CHAOS(kParkerBeforePark);
  const std::uint64_t start = obs::NowNanos();
  if (backend_ == Backend::kFutex) {
    FutexPark();
  } else {
    CondvarPark();
  }
  obs::Record(obs::Histogram::kParkWaitNanos, obs::NowNanos() - start);
  ConsumeWakeStamp(wake_flow_, wake_ns_);
}

bool Parker::ParkUntil(std::uint64_t deadline_ns) {
  TAOS_CHAOS(kParkerBeforePark);
  const std::uint64_t start = obs::NowNanos();
  const bool notified = backend_ == Backend::kFutex
                            ? FutexParkUntil(deadline_ns)
                            : CondvarParkUntil(deadline_ns);
  obs::Record(obs::Histogram::kParkWaitNanos, obs::NowNanos() - start);
  if (!notified) {
    // Timed out, permit not consumed: an Unpark can still land before the
    // caller acts on the timeout (timeout-vs-grant at the parker level).
    // Any wake stamp stays put — it travels with the still-pending permit.
    TAOS_CHAOS(kParkerTimedReturn);
    return false;
  }
  ConsumeWakeStamp(wake_flow_, wake_ns_);
  return true;
}

void Parker::Unpark() {
  TAOS_CHAOS(kParkerBeforeUnpark);
  const std::uint64_t start = obs::NowNanos();
  std::uint64_t flow = 0;
  if (obs::RecorderEnabled()) [[unlikely]] {
    // Stamp the causality edge before depositing the permit (see the
    // member comment in parker.h); the waker-side event is recorded after.
    flow = obs::NextFlowId();
    wake_ns_.store(start, std::memory_order_relaxed);
    wake_flow_.store(flow, std::memory_order_relaxed);
  }
  if (backend_ == Backend::kFutex) {
    FutexUnpark();
  } else {
    CondvarUnpark();
  }
  const std::uint64_t end = obs::NowNanos();
  obs::Record(obs::Histogram::kUnparkNanos, end - start);
  if (flow != 0) [[unlikely]] {
    obs::RecordEvent(obs::Op::kUnpark, 0, start, end - start, 0, flow);
  }
}

void Parker::SpuriousWakeForDebug() {
#if defined(__linux__)
  if (backend_ == Backend::kFutex) {
    FutexWakeOne(state_);
    return;
  }
#endif
  // No state change, no mu_: exactly the wakeup the standard allows
  // condition_variable::wait to produce on its own.
  cv_.notify_one();
}

void Parker::FutexPark() {
#if defined(__linux__)
  for (;;) {
    std::uint32_t cur = state_.load(std::memory_order_relaxed);
    if (cur == kNotified) {
      // Permit already deposited: consume it without sleeping. acquire pairs
      // with Unpark's release so everything before the Unpark is visible.
      if (state_.compare_exchange_weak(cur, kEmpty,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      continue;
    }
    if (cur == kEmpty) {
      if (!state_.compare_exchange_weak(cur, kParked,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;  // lost to a concurrent Unpark: re-read
      }
    }
    // state_ is kParked (set by us, or left over from a spurious return).
    obs::Inc(obs::Counter::kParkFutexWaits);
    FutexWait(state_, kParked);
  }
#else
  CondvarPark();
#endif
}

bool Parker::FutexParkUntil(std::uint64_t deadline_ns) {
#if defined(__linux__)
  for (;;) {
    std::uint32_t cur = state_.load(std::memory_order_relaxed);
    if (cur == kNotified) {
      if (state_.compare_exchange_weak(cur, kEmpty,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
      continue;
    }
    if (cur == kEmpty) {
      if (!state_.compare_exchange_weak(cur, kParked,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;  // lost to a concurrent Unpark: re-read
      }
    }
    const std::uint64_t now = obs::NowNanos();
    if (now >= deadline_ns) {
      // Deadline passed while the word says kParked. Put it back to kEmpty;
      // if the CAS loses, an Unpark just landed — consume it next pass (the
      // permit, not the deadline, decides the return value in that race).
      std::uint32_t parked = kParked;
      if (state_.compare_exchange_strong(parked, kEmpty,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
        return false;
      }
      continue;
    }
    const std::uint64_t rel = deadline_ns - now;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(rel / 1'000'000'000ull);
    ts.tv_nsec = static_cast<long>(rel % 1'000'000'000ull);
    obs::Inc(obs::Counter::kParkFutexWaits);
    FutexWait(state_, kParked, &ts);
  }
#else
  return CondvarParkUntil(deadline_ns);
#endif
}

void Parker::FutexUnpark() {
#if defined(__linux__)
  // release pairs with the consuming CAS in FutexPark.
  const std::uint32_t old =
      state_.exchange(kNotified, std::memory_order_release);
  if (old == kParked) {
    FutexWakeOne(state_);
  }
#else
  CondvarUnpark();
#endif
}

void Parker::CondvarPark() {
  std::unique_lock<std::mutex> lk(mu_);
  // acquire pairs with CondvarUnpark's release: the park-return edge must
  // carry the unparker's prior writes on the permit word alone (see the
  // header's fence argument), not lean on mu_ happening to synchronize.
  while (state_.load(std::memory_order_acquire) != kNotified) {
    obs::Inc(obs::Counter::kParkCondvarWaits);
    cv_.wait(lk);
  }
  // The reset may stay relaxed: it is a store sequenced after the acquire
  // load above, and only the owning thread's next Park reads it.
  state_.store(kEmpty, std::memory_order_relaxed);
}

bool Parker::CondvarParkUntil(std::uint64_t deadline_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  // Same acquire pairing as CondvarPark (see the header's fence argument).
  while (state_.load(std::memory_order_acquire) != kNotified) {
    const std::uint64_t now = obs::NowNanos();
    if (now >= deadline_ns) {
      return false;
    }
    obs::Inc(obs::Counter::kParkCondvarWaits);
    // obs::NowNanos is steady-clock based, so translating the remaining
    // nanoseconds onto steady_clock keeps wait_until on the same timeline.
    cv_.wait_until(lk, std::chrono::steady_clock::now() +
                           std::chrono::nanoseconds(deadline_ns - now));
  }
  state_.store(kEmpty, std::memory_order_relaxed);
  return true;
}

void Parker::CondvarUnpark() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // release pairs with the acquire load in CondvarPark.
    state_.store(kNotified, std::memory_order_release);
  }
  cv_.notify_one();
}

}  // namespace taos::waitq
