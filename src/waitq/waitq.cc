#include "src/waitq/waitq.h"

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/base/spinlock.h"
#include "src/obs/metrics.h"

namespace taos::waitq {

// ---------------------------------------------------------------------------
// WaitCell
// ---------------------------------------------------------------------------

bool WaitCell::Install(Parker* parker, void* tag) {
  tag_ = tag;  // plain store: published by the CAS-release below
  // Widens the claim-to-install window: an immediate grant (ResumeOne hits
  // the still-EMPTY cell) is only reachable inside it.
  TAOS_CHAOS(kWaitqInstall);
  std::uintptr_t expected = kEmptyBits;
  return state_.compare_exchange_strong(
      expected, reinterpret_cast<std::uintptr_t>(parker),
      std::memory_order_acq_rel, std::memory_order_acquire);
}

WaitCell::CancelOutcome WaitCell::Cancel() {
  TAOS_CHAOS(kWaitqCancel);
  std::uintptr_t cur = state_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur == kResumedBits) {
      return CancelOutcome::kLostToResume;
    }
    // At most one canceller ever names a cell: an alerter reaches it through
    // the published ThreadRecord::wait_cell (record lock held), a claimant
    // backs out only a cell it never published.
    TAOS_DCHECK(cur != kCancelledBits);
    if (state_.compare_exchange_weak(cur, kCancelledBits,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      obs::Inc(obs::Counter::kWaitqCancels);
      return CancelOutcome::kCancelled;
    }
  }
}

WaitCell::State WaitCell::state() const {
  switch (state_.load(std::memory_order_acquire)) {
    case kEmptyBits:
      return State::kEmpty;
    case kResumedBits:
      return State::kResumed;
    case kCancelledBits:
      return State::kCancelled;
    default:
      return State::kWaiting;
  }
}

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

Segment::Segment(std::uint64_t base_index) : base(base_index) {
  for (WaitCell& c : cells) {
    c.segment_ = this;
  }
}

// ---------------------------------------------------------------------------
// WaitQueue
// ---------------------------------------------------------------------------

WaitQueue::~WaitQueue() {
  Segment* s = retired_;
  while (s != nullptr) {
    Segment* next = s->retired_link;
    delete s;
    s = next;
  }
  s = head_.load(std::memory_order_relaxed);
  while (s != nullptr) {
    Segment* next = s->next.load(std::memory_order_relaxed);
    delete s;
    s = next;
  }
}

WaitCell* WaitQueue::Enqueue() {
  obs::Inc(obs::Counter::kWaitqEnqueues);
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  // Snapshot the tail BEFORE claiming: the tail only ever advances to a
  // segment some already-claimed index needed, so a pre-claim snapshot can
  // never lie past our own index's segment. seq_cst (all tail_ accesses
  // are): paired with ReclaimRetired's tail-then-in_flight reads, it
  // guarantees a claimant the reclaimer did not see reads a tail at or past
  // the reclaimer's snapshot — so it never walks into a freed segment.
  Segment* seg = tail_.load(std::memory_order_seq_cst);
  if (seg == nullptr) {
    Segment* fresh = new Segment(0);
    if (tail_.compare_exchange_strong(seg, fresh,
                                      std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      obs::Inc(obs::Counter::kWaitqSegmentsAllocated);
      head_.store(fresh, std::memory_order_release);
      seg = fresh;
    } else {
      delete fresh;  // `seg` now holds the winner's segment
    }
  }
  const std::uint64_t index = enq_.fetch_add(1, std::memory_order_seq_cst);
  TAOS_CHAOS(kWaitqClaim);
  seg = SegmentForIndex(seg, index);
  WaitCell* cell = &seg->cells[index - seg->base];
  in_flight_.fetch_sub(1, std::memory_order_release);
  return cell;
}

Segment* WaitQueue::SegmentForIndex(Segment* seg, std::uint64_t index) {
  TAOS_DCHECK(seg->base <= index);
  while (index >= seg->base + Segment::kCells) {
    Segment* next = seg->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Segment* fresh = new Segment(seg->base + Segment::kCells);
      if (seg->next.compare_exchange_strong(next, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        obs::Inc(obs::Counter::kWaitqSegmentsAllocated);
        next = fresh;
      } else {
        delete fresh;  // `next` now holds the winner's segment
      }
    }
    // Help the tail forward: later claimants start their walk closer, and
    // reclamation's base < tail->base safety bound advances.
    Segment* t = tail_.load(std::memory_order_seq_cst);
    while (t->base < next->base &&
           !tail_.compare_exchange_weak(t, next, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
    }
    seg = next;
  }
  return seg;
}

WaitQueue::Resumed WaitQueue::ResumeOne() {
  Resumed out;
  std::uint64_t deq = deq_.load(std::memory_order_relaxed);
  // seq_cst: pairs with the claimants' seq_cst fetch_add so that a claim the
  // caller's gating load observed (queue_len_ / waiters_) is observed here
  // too (see the Dekker pairings in mutex.cc / condition.cc).
  while (deq < enq_.load(std::memory_order_seq_cst)) {
    Segment* head = head_.load(std::memory_order_acquire);
    while (head == nullptr) {
      // The very first claimant won the tail CAS but has not published the
      // head yet; the window is a few instructions.
      SpinLock::Pause();
      head = head_.load(std::memory_order_acquire);
    }
    while (deq >= head->base + Segment::kCells) {
      Segment* next = head->next.load(std::memory_order_acquire);
      while (next == nullptr) {
        // A claimant of a later index is mid-allocation; its claim is
        // already visible (deq < enq), so the segment is moments away.
        SpinLock::Pause();
        next = head->next.load(std::memory_order_acquire);
      }
      head_.store(next, std::memory_order_release);
      RetireConsumed(head);
      head = next;
    }
    WaitCell& cell = head->cells[deq - head->base];
    ++deq;
    deq_.store(deq, std::memory_order_relaxed);
    // Between picking the cell and the resume CAS: a canceller (alert,
    // timeout) racing for this same cell decides who wins below.
    TAOS_CHAOS(kWaitqResume);
    std::uintptr_t cur = cell.state_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur == WaitCell::kCancelledBits) {
        obs::Inc(obs::Counter::kWaitqCancelSkips);
        break;  // O(1) amortized: each cancelled cell is skipped once, ever
      }
      TAOS_DCHECK(cur != WaitCell::kResumedBits);  // single consumer
      if (cell.state_.compare_exchange_weak(cur, WaitCell::kResumedBits,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        out.resumed = true;
        if (cur == WaitCell::kEmptyBits) {
          // Immediate grant: the claimant is between claim and Install; its
          // Install will fail and it proceeds without parking.
          obs::Inc(obs::Counter::kWaitqImmediateGrants);
        } else {
          out.parker = reinterpret_cast<Parker*>(cur);
          out.tag = cell.tag_;  // published by Install's CAS-release
          obs::Inc(obs::Counter::kWaitqResumes);
        }
        break;
      }
    }
    if (out.resumed) {
      break;
    }
  }
  ReclaimRetired();
  return out;
}

void WaitQueue::Detach(WaitCell* cell) {
  // release: the claimant's last touches happen-before the consumer's
  // acquire load of `detached` in ReclaimRetired, hence before the free.
  cell->segment_->detached.fetch_add(1, std::memory_order_release);
}

void WaitQueue::RetireConsumed(Segment* seg) {
  obs::Inc(obs::Counter::kWaitqSegmentsRetired);
  seg->retired_link = retired_;
  retired_ = seg;
}

void WaitQueue::ReclaimRetired() {
  if (retired_ == nullptr) {
    return;
  }
  // Free a retired segment only when (a) every claimant detached, (b) no
  // claimant is inside the claim/walk window (a stale tail snapshot may
  // still be walking retired segments), and (c) it lies strictly before the
  // tail snapshot below. Order matters and everything is seq_cst: the tail
  // is read BEFORE in_flight, so a claimant whose in_flight increment this
  // load misses ordered its own tail read after ours — it starts at or past
  // our snapshot, walks forward only, and never reaches what we free.
  Segment* tail = tail_.load(std::memory_order_seq_cst);
  if (in_flight_.load(std::memory_order_seq_cst) != 0) {
    return;
  }
  Segment** link = &retired_;
  while (*link != nullptr) {
    Segment* s = *link;
    if (s->base < tail->base &&
        s->detached.load(std::memory_order_acquire) == Segment::kCells) {
      *link = s->retired_link;
      delete s;
    } else {
      link = &s->retired_link;
    }
  }
}

bool WaitQueue::DrainedForDebug() const {
  const std::uint64_t enq = enq_.load(std::memory_order_acquire);
  std::uint64_t deq = deq_.load(std::memory_order_acquire);
  const Segment* seg = head_.load(std::memory_order_acquire);
  for (; deq < enq; ++deq) {
    while (seg != nullptr && deq >= seg->base + Segment::kCells) {
      seg = seg->next.load(std::memory_order_acquire);
    }
    if (seg == nullptr) {
      return false;
    }
    // Claimed-but-unconsumed cells must all be cancelled leftovers; a live
    // waiter (or an undelivered resume) means the queue is not drained.
    if (seg->cells[deq - seg->base].state_.load(std::memory_order_acquire) !=
        WaitCell::kCancelledBits) {
      return false;
    }
  }
  return true;
}

}  // namespace taos::waitq
