// Trace conformance checker.
//
// Replays a serialized trace of atomic actions against the executable
// semantics, verifying for every step:
//   - REQUIRES held (caller obligations),
//   - WHEN held (the action was actually enabled when it fired),
//   - ENSURES holds for the recorded outcome (including the recorded
//     resolution of nondeterminism: Signal/Broadcast removal sets, TestAlert
//     results, RETURNS-vs-RAISES choices),
//   - MODIFIES AT MOST holds (by construction of Apply, and re-verified),
// and, across steps, the COMPOSITION OF structure of the two non-atomic
// procedures: after a thread's Enqueue action its next action must be the
// matching Resume (Wait) or AlertResume (AlertWait) on the same m and c.

#ifndef TAOS_SRC_SPEC_CHECKER_H_
#define TAOS_SRC_SPEC_CHECKER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/spec/semantics.h"
#include "src/spec/trace.h"

namespace taos::spec {

struct CheckResult {
  bool ok = true;
  std::size_t failed_index = 0;  // index of the offending action if !ok
  std::string message;
  SpecState final_state;  // state after the last successfully applied action

  // Statistics useful to experiments.
  std::size_t actions_checked = 0;
  std::size_t signals_removing_many = 0;  // Signal actions removing > 1 thread
};

class TraceChecker {
 public:
  explicit TraceChecker(SpecConfig config = {}) : semantics_(config) {}

  const Semantics& semantics() const { return semantics_; }

  CheckResult CheckTrace(const std::vector<Action>& actions,
                         SpecState initial = {}) const;

  CheckResult CheckTrace(const Trace& trace, SpecState initial = {}) const {
    return CheckTrace(trace.Actions(), std::move(initial));
  }

 private:
  Semantics semantics_;
};

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_CHECKER_H_
