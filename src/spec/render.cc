#include "src/spec/render.h"

#include <sstream>

namespace taos::spec {

std::string RenderMutexSection() {
  return
      "TYPE Mutex = Thread INITIALLY NIL\n"
      "\n"
      "ATOMIC PROCEDURE Acquire(VAR m: Mutex)\n"
      "  MODIFIES AT MOST [ m ]\n"
      "  WHEN m = NIL\n"
      "  ENSURES m_post = SELF\n"
      "\n"
      "ATOMIC PROCEDURE Release(VAR m: Mutex)\n"
      "  REQUIRES m = SELF\n"
      "  MODIFIES AT MOST [ m ]\n"
      "  ENSURES m_post = NIL\n";
}

std::string RenderConditionSection() {
  return
      "TYPE Condition = SET OF Thread INITIALLY {}\n"
      "\n"
      "PROCEDURE Wait(VAR m: Mutex; VAR c: Condition) =\n"
      "  COMPOSITION OF Enqueue; Resume END\n"
      "  REQUIRES m = SELF\n"
      "  MODIFIES AT MOST [ m, c ]\n"
      "  ATOMIC ACTION Enqueue\n"
      "    ENSURES (c_post = insert(c, SELF)) & (m_post = NIL)\n"
      "  ATOMIC ACTION Resume\n"
      "    WHEN (m = NIL) & (SELF NOT-IN c)\n"
      "    ENSURES m_post = SELF & UNCHANGED [ c ]\n"
      "\n"
      "ATOMIC PROCEDURE Signal(VAR c: Condition)\n"
      "  MODIFIES AT MOST [ c ]\n"
      "  ENSURES (c_post = {}) | (c_post PROPER-SUBSET-OF c)\n"
      "\n"
      "ATOMIC PROCEDURE Broadcast(VAR c: Condition)\n"
      "  MODIFIES AT MOST [ c ]\n"
      "  ENSURES c_post = {}\n";
}

std::string RenderSemaphoreSection() {
  return
      "TYPE Semaphore = (available, unavailable) INITIALLY available\n"
      "\n"
      "ATOMIC PROCEDURE P(VAR s: Semaphore)\n"
      "  MODIFIES AT MOST [ s ]\n"
      "  WHEN s = available\n"
      "  ENSURES s_post = unavailable\n"
      "\n"
      "ATOMIC PROCEDURE V(VAR s: Semaphore)\n"
      "  MODIFIES AT MOST [ s ]\n"
      "  ENSURES s_post = available\n";
}

std::string RenderAlertSection(const SpecConfig& config) {
  std::ostringstream os;
  os << "VAR alerts: SET OF Thread INITIALLY {}\n"
        "EXCEPTION Alerted\n"
        "\n"
        "ATOMIC PROCEDURE Alert(t: Thread)\n"
        "  MODIFIES AT MOST [ alerts ]\n"
        "  ENSURES alerts_post = insert(alerts, t)\n"
        "\n"
        "ATOMIC PROCEDURE TestAlert() RETURNS (b: BOOL)\n"
        "  MODIFIES AT MOST [ alerts ]\n"
        "  ENSURES (b = (SELF IN alerts)) &\n"
        "          (alerts_post = delete(alerts, SELF))\n"
        "\n"
        "ATOMIC PROCEDURE AlertP(VAR s: Semaphore) RAISES {Alerted}\n"
        "  MODIFIES AT MOST [ s, alerts ]\n"
        "  RETURNS WHEN s = available\n"
        "    ENSURES (s_post = unavailable) & UNCHANGED [ alerts ]\n"
        "  RAISES Alerted WHEN (SELF IN alerts)\n"
        "    ENSURES (alerts_post = delete(alerts, SELF)) & UNCHANGED [ s ]\n";
  if (config.alert_choice == AlertChoicePolicy::kPreferAlerted) {
    os << "  -- pre-release policy: when both WHEN clauses hold, the\n"
          "  -- exception MUST be raised\n";
  } else {
    os << "  -- the RETURNS and RAISES clauses are not disjoint: when both\n"
          "  -- hold the implementation may choose either outcome\n";
  }
  os << "\n"
        "PROCEDURE AlertWait(VAR m: Mutex; VAR c: Condition)\n"
        "    RAISES {Alerted} =\n"
        "  COMPOSITION OF Enqueue; AlertResume END\n"
        "  REQUIRES m = SELF\n"
        "  MODIFIES AT MOST [ m, c, alerts ]\n"
        "  ATOMIC ACTION Enqueue\n"
        "    ENSURES (c_post = insert(c, SELF)) & (m_post = NIL)\n"
        "            & UNCHANGED [ alerts ]\n"
        "  ATOMIC ACTION AlertResume\n"
        "    RETURNS WHEN (m = NIL) & (SELF NOT-IN c)\n"
        "      ENSURES (m_post = SELF) & UNCHANGED [ c, alerts ]\n"
        "    RAISES Alerted WHEN (m = NIL) & (SELF IN alerts)\n";
  if (config.alert_wait == AlertWaitVariant::kOriginalBuggy) {
    os << "      ENSURES (m_post = SELF)\n"
          "              & (alerts_post = delete(alerts, SELF))\n"
          "              & UNCHANGED [ c ]\n"
          "  -- ORIGINAL RELEASED SPEC: the UNCHANGED [ c ] above is the\n"
          "  -- error found by Greg Nelson — c could contain threads that\n"
          "  -- were no longer blocked on the condition variable\n";
  } else {
    os << "      ENSURES (m_post = SELF) & (c_post = delete(c, SELF))\n"
          "              & (alerts_post = delete(alerts, SELF))\n";
  }
  return os.str();
}

std::string RenderSpecification(const SpecConfig& config) {
  std::ostringstream os;
  os << "-- The Threads synchronization interface, formal specification\n"
        "-- (after Birrell, Guttag, Horning, Levin: SRC Report 20, 1987)\n"
        "--\n"
        "-- variant: AlertWait="
     << (config.alert_wait == AlertWaitVariant::kCorrected
             ? "corrected"
             : "original-buggy")
     << ", alert choice="
     << (config.alert_choice == AlertChoicePolicy::kNondeterministic
             ? "nondeterministic"
             : "prefer-alerted")
     << "\n\n"
     << RenderMutexSection() << "\n"
     << RenderConditionSection() << "\n"
     << RenderSemaphoreSection() << "\n"
     << RenderAlertSection(config);
  return os.str();
}

}  // namespace taos::spec
