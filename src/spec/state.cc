#include "src/spec/state.h"

#include <sstream>

namespace taos::spec {

std::string ThreadSet::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (ThreadId t : elems_) {
    if (!first) {
      os << ", ";
    }
    os << "t" << t;
    first = false;
  }
  os << "}";
  return os.str();
}

std::string ObjIdSet::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (ObjId e : elems_) {
    if (!first) {
      os << ", ";
    }
    os << "e" << e;
    first = false;
  }
  os << "}";
  return os.str();
}

ThreadId SpecState::Mutex(ObjId m) const {
  auto it = mutexes.find(m);
  return it == mutexes.end() ? kNil : it->second;
}

namespace {
const ThreadSet kEmptySet;
}  // namespace

const ThreadSet& SpecState::Condition(ObjId c) const {
  auto it = conditions.find(c);
  return it == conditions.end() ? kEmptySet : it->second;
}

SemState SpecState::Semaphore(ObjId s) const {
  auto it = semaphores.find(s);
  return it == semaphores.end() ? SemState::kAvailable : it->second;
}

namespace {
const RwState kInitialRw;
}  // namespace

const RwState& SpecState::RwLock(ObjId rw) const {
  auto it = rwlocks.find(rw);
  return it == rwlocks.end() ? kInitialRw : it->second;
}

bool SpecState::Event(ObjId e) const {
  auto it = events.find(e);
  return it != events.end() && it->second;
}

void SpecState::SetMutex(ObjId m, ThreadId holder) {
  if (holder == kNil) {
    mutexes.erase(m);
  } else {
    mutexes[m] = holder;
  }
}

void SpecState::SetCondition(ObjId c, ThreadSet value) {
  if (value.Empty()) {
    conditions.erase(c);
  } else {
    conditions[c] = std::move(value);
  }
}

void SpecState::SetSemaphore(ObjId s, SemState value) {
  if (value == SemState::kAvailable) {
    semaphores.erase(s);
  } else {
    semaphores[s] = value;
  }
}

void SpecState::SetRwLock(ObjId rw, RwState value) {
  if (value.Initial()) {
    rwlocks.erase(rw);
  } else {
    rwlocks[rw] = std::move(value);
  }
}

void SpecState::SetEvent(ObjId e, bool value) {
  if (!value) {
    events.erase(e);
  } else {
    events[e] = true;
  }
}

void SpecState::Canonicalize() {
  for (auto it = mutexes.begin(); it != mutexes.end();) {
    it = (it->second == kNil) ? mutexes.erase(it) : std::next(it);
  }
  for (auto it = conditions.begin(); it != conditions.end();) {
    it = it->second.Empty() ? conditions.erase(it) : std::next(it);
  }
  for (auto it = semaphores.begin(); it != semaphores.end();) {
    it = (it->second == SemState::kAvailable) ? semaphores.erase(it)
                                              : std::next(it);
  }
  for (auto it = rwlocks.begin(); it != rwlocks.end();) {
    it = it->second.Initial() ? rwlocks.erase(it) : std::next(it);
  }
  for (auto it = events.begin(); it != events.end();) {
    it = !it->second ? events.erase(it) : std::next(it);
  }
}

bool SpecState::operator==(const SpecState& other) const {
  SpecState a = *this;
  SpecState b = other;
  a.Canonicalize();
  b.Canonicalize();
  return a.mutexes == b.mutexes && a.conditions == b.conditions &&
         a.semaphores == b.semaphores && a.rwlocks == b.rwlocks &&
         a.events == b.events && a.alerts == b.alerts;
}

std::string SpecState::ToString() const {
  std::ostringstream os;
  SpecState canon = *this;
  canon.Canonicalize();
  os << "mutexes:[";
  for (const auto& [id, holder] : canon.mutexes) {
    os << " m" << id << "=t" << holder;
  }
  os << " ] conditions:[";
  for (const auto& [id, set] : canon.conditions) {
    os << " c" << id << "=" << set.ToString();
  }
  os << " ] semaphores:[";
  for (const auto& [id, st] : canon.semaphores) {
    os << " s" << id << "="
       << (st == SemState::kAvailable ? "available" : "unavailable");
  }
  os << " ]";
  if (!canon.rwlocks.empty()) {
    os << " rwlocks:[";
    for (const auto& [id, rw] : canon.rwlocks) {
      os << " rw" << id << "=(writer:t" << rw.writer
         << " readers:" << rw.readers.ToString() << ")";
    }
    os << " ]";
  }
  if (!canon.events.empty()) {
    os << " events:[";
    for (const auto& [id, set] : canon.events) {
      os << " e" << id << "=" << (set ? "set" : "reset");
    }
    os << " ]";
  }
  os << " alerts:" << canon.alerts.ToString();
  return os.str();
}

}  // namespace taos::spec
