// The vocabulary of spec-visible atomic actions.
//
// Each procedure of the Threads interface is either ATOMIC (one action per
// call) or a COMPOSITION OF two named actions (Wait = Enqueue; Resume and
// AlertWait = Enqueue; AlertResume). Procedures whose RETURNS and RAISES
// cases have separate WHEN/ENSURES clauses (AlertP, AlertResume) get one
// action kind per outcome.

#ifndef TAOS_SRC_SPEC_ACTION_H_
#define TAOS_SRC_SPEC_ACTION_H_

#include <string>

#include "src/spec/state.h"

namespace taos::spec {

enum class ActionKind : std::uint8_t {
  kAcquire,             // ATOMIC PROCEDURE Acquire(m)
  kRelease,             // ATOMIC PROCEDURE Release(m)
  kEnqueue,             // Wait's first action
  kResume,              // Wait's second action
  kSignal,              // ATOMIC PROCEDURE Signal(c)
  kBroadcast,           // ATOMIC PROCEDURE Broadcast(c)
  kP,                   // ATOMIC PROCEDURE P(s)
  kV,                   // ATOMIC PROCEDURE V(s)
  kAlert,               // ATOMIC PROCEDURE Alert(t)
  kTestAlert,           // ATOMIC PROCEDURE TestAlert() RETURNS(b)
  kAlertPReturns,       // AlertP, normal outcome
  kAlertPRaises,        // AlertP, Alerted outcome
  kAlertEnqueue,        // AlertWait's first action
  kAlertResumeReturns,  // AlertWait's second action, normal outcome
  kAlertResumeRaises,   // AlertWait's second action, Alerted outcome

  // Timed-wait extension (not in SRC Report 20; see DESIGN.md §11). The
  // timeout outcomes of AcquireFor / PFor are WHEN TRUE no-ops on the
  // object; the timeout outcome of WaitFor / AlertWaitFor is a Resume
  // variant that regains m and leaves c without consuming a signal or an
  // alert.
  kAcquireTimeout,      // AcquireFor, deadline expired (m unchanged)
  kPTimeout,            // PFor, deadline expired (s unchanged)
  kTimeoutResume,       // WaitFor/AlertWaitFor's second action on expiry

  // Reader/writer lock extension (not in SRC Report 20; see rwmutex.h and
  // DESIGN.md §13). All six are ATOMIC; the timeout outcomes of the timed
  // variants are WHEN TRUE no-ops on the rwlock, like kAcquireTimeout.
  kRwAcquire,                // ATOMIC PROCEDURE Acquire(rw), exclusive
  kRwRelease,                // ATOMIC PROCEDURE Release(rw)
  kRwAcquireShared,          // ATOMIC PROCEDURE AcquireShared(rw)
  kRwReleaseShared,          // ATOMIC PROCEDURE ReleaseShared(rw)
  kRwAcquireTimeout,         // AcquireFor(rw), deadline expired
  kRwAcquireSharedTimeout,   // AcquireSharedFor(rw), deadline expired

  // Event / multi-object wait extension (not in SRC Report 20; see
  // DESIGN.md §15). Events are boolean state variables; the Poll actions
  // are the genuinely novel piece: a WHEN clause quantified over a *set*
  // of objects (`wait_set`), the hard case Hayes' "Some Challenges of
  // Specifying Concurrent Program Components" calls out. The performing
  // thread records the resolution of the nondeterminism: which member it
  // granted on (`event`), and which members it consumed (`consumed`).
  kEventSet,        // ATOMIC PROCEDURE Set(e): e := TRUE
  kEventReset,      // ATOMIC PROCEDURE Reset(e): e := FALSE
  kEventWait,       // Wait(e), manual-reset grant: WHEN e, e unchanged
  kEventConsume,    // Wait(e), auto-reset grant: WHEN e ENSURES ~e'
  kPollAny,         // WaitAny: WHEN (E i IN wait_set: i), grants `event`
  kPollAll,         // WaitAll: WHEN (A i IN wait_set: i)
  kPollTimeout,     // WaitAnyFor/WaitAllFor expiry: WHEN TRUE, no-op
  kPollAlertRaises, // alertable WaitAny/WaitAll, Alerted outcome
};

const char* ActionKindName(ActionKind kind);

struct Action {
  ActionKind kind;
  ThreadId self = kNil;  // the thread executing the action (SELF)

  // Object operands; which are meaningful depends on `kind`.
  ObjId mutex = 0;
  ObjId condition = 0;
  ObjId semaphore = 0;
  ObjId rwlock = 0;
  ObjId event = 0;         // kEvent*; for kPollAny, the granted member
  ThreadId target = kNil;  // Alert(t)

  // The multi-object operand: the set of events a Poll action ranges over
  // (kPollAny/kPollAll/kPollTimeout/kPollAlertRaises).
  ObjIdSet wait_set;

  // Resolution of the spec's nondeterminism, recorded by the emitter:
  //  - Signal/Broadcast: the set of threads removed from the condition.
  //  - TestAlert: the returned boolean.
  //  - kPollAny: `result` is true iff the granted event was auto-reset and
  //    therefore consumed (set to FALSE).
  //  - kPollAll: `consumed` lists the (auto-reset) members set to FALSE.
  ThreadSet removed;
  ObjIdSet consumed;
  bool result = false;

  // Serialization stamp. Emitters whose actions commit under different locks
  // (the sharded Nub) draw this from one global counter at commit time;
  // Trace::Actions() orders by it. Emitters that are already serialized
  // (the global-lock Nub emits in stamp order anyway; the simulator runs one
  // fiber at a time) may leave it 0 — the sort is stable.
  std::uint64_t seq = 0;

  std::string ToString() const;
};

// Convenience constructors, named after the interface procedures.
Action MakeAcquire(ThreadId self, ObjId m);
Action MakeRelease(ThreadId self, ObjId m);
Action MakeEnqueue(ThreadId self, ObjId m, ObjId c);
Action MakeResume(ThreadId self, ObjId m, ObjId c);
Action MakeSignal(ThreadId self, ObjId c, ThreadSet removed);
Action MakeBroadcast(ThreadId self, ObjId c, ThreadSet removed);
Action MakeP(ThreadId self, ObjId s);
Action MakeV(ThreadId self, ObjId s);
Action MakeAlert(ThreadId self, ThreadId target);
Action MakeTestAlert(ThreadId self, bool result);
Action MakeAlertPReturns(ThreadId self, ObjId s);
Action MakeAlertPRaises(ThreadId self, ObjId s);
Action MakeAlertEnqueue(ThreadId self, ObjId m, ObjId c);
Action MakeAlertResumeReturns(ThreadId self, ObjId m, ObjId c);
Action MakeAlertResumeRaises(ThreadId self, ObjId m, ObjId c);
Action MakeAcquireTimeout(ThreadId self, ObjId m);
Action MakePTimeout(ThreadId self, ObjId s);
Action MakeTimeoutResume(ThreadId self, ObjId m, ObjId c);
Action MakeRwAcquire(ThreadId self, ObjId rw);
Action MakeRwRelease(ThreadId self, ObjId rw);
Action MakeRwAcquireShared(ThreadId self, ObjId rw);
Action MakeRwReleaseShared(ThreadId self, ObjId rw);
Action MakeRwAcquireTimeout(ThreadId self, ObjId rw);
Action MakeRwAcquireSharedTimeout(ThreadId self, ObjId rw);
Action MakeEventSet(ThreadId self, ObjId e);
Action MakeEventReset(ThreadId self, ObjId e);
Action MakeEventWait(ThreadId self, ObjId e);
Action MakeEventConsume(ThreadId self, ObjId e);
Action MakePollAny(ThreadId self, ObjIdSet wait_set, ObjId granted,
                   bool consumed);
Action MakePollAll(ThreadId self, ObjIdSet wait_set, ObjIdSet consumed);
Action MakePollTimeout(ThreadId self, ObjIdSet wait_set);
Action MakePollAlertRaises(ThreadId self, ObjIdSet wait_set);

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_ACTION_H_
