#include "src/spec/trace.h"

#include <sstream>

namespace taos::spec {

std::string Trace::ToString() const {
  std::ostringstream os;
  std::size_t i = 0;
  for (const Action& a : Actions()) {
    os << i++ << ": " << a.ToString() << "\n";
  }
  return os.str();
}

}  // namespace taos::spec
