// Abstract state of the Threads synchronization interface, straight from the
// specification in SRC Report 20:
//
//   TYPE Mutex     = Thread         INITIALLY NIL
//   TYPE Condition = SET OF Thread  INITIALLY {}
//   TYPE Semaphore = (available, unavailable) INITIALLY available
//   VAR  alerts    : SET OF Thread  INITIALLY {}
//
// Objects are named by small integer ObjIds so that a single SpecState can
// describe a program with any number of mutexes, conditions and semaphores.
// Lookups of never-touched objects yield the INITIALLY value, exactly as the
// spec's per-type initialization clause prescribes.

#ifndef TAOS_SRC_SPEC_STATE_H_
#define TAOS_SRC_SPEC_STATE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace taos::spec {

using ThreadId = std::uint32_t;
using ObjId = std::uint32_t;

// The spec's NIL thread. Real thread ids start at 1.
inline constexpr ThreadId kNil = 0;

enum class SemState : std::uint8_t { kAvailable, kUnavailable };

// SET OF Thread with the Larch handbook's set operations.
class ThreadSet {
 public:
  ThreadSet() = default;
  ThreadSet(std::initializer_list<ThreadId> ids) : elems_(ids) {}

  // insert(s, t) — returns the set with t added (value semantics, like the
  // Larch trait operator).
  ThreadSet Insert(ThreadId t) const {
    ThreadSet r = *this;
    r.elems_.insert(t);
    return r;
  }

  // delete(s, t) — returns the set with t removed.
  ThreadSet Delete(ThreadId t) const {
    ThreadSet r = *this;
    r.elems_.erase(t);
    return r;
  }

  bool Contains(ThreadId t) const { return elems_.count(t) != 0; }
  bool Empty() const { return elems_.empty(); }
  std::size_t Size() const { return elems_.size(); }

  // s1 ⊆ s2
  bool SubsetOf(const ThreadSet& other) const {
    for (ThreadId t : elems_) {
      if (!other.Contains(t)) {
        return false;
      }
    }
    return true;
  }

  // s1 ⊊ s2
  bool ProperSubsetOf(const ThreadSet& other) const {
    return SubsetOf(other) && elems_.size() < other.elems_.size();
  }

  ThreadSet Union(const ThreadSet& other) const {
    ThreadSet r = *this;
    r.elems_.insert(other.elems_.begin(), other.elems_.end());
    return r;
  }

  ThreadSet Minus(const ThreadSet& other) const {
    ThreadSet r;
    for (ThreadId t : elems_) {
      if (!other.Contains(t)) {
        r.elems_.insert(t);
      }
    }
    return r;
  }

  bool operator==(const ThreadSet& other) const = default;

  const std::set<ThreadId>& elements() const { return elems_; }

  std::string ToString() const;

 private:
  std::set<ThreadId> elems_;
};

// SET OF ObjId — the operand of the multi-object Poll actions (the wait
// set a WaitAny/WaitAll WHEN clause quantifies over), and the `consumed`
// resolution of kPollAll. Ordered so ToString is canonical.
class ObjIdSet {
 public:
  ObjIdSet() = default;
  ObjIdSet(std::initializer_list<ObjId> ids) : elems_(ids) {}

  ObjIdSet Insert(ObjId e) const {
    ObjIdSet r = *this;
    r.elems_.insert(e);
    return r;
  }

  ObjIdSet Delete(ObjId e) const {
    ObjIdSet r = *this;
    r.elems_.erase(e);
    return r;
  }

  bool Contains(ObjId e) const { return elems_.count(e) != 0; }
  bool Empty() const { return elems_.empty(); }
  std::size_t Size() const { return elems_.size(); }

  bool SubsetOf(const ObjIdSet& other) const {
    for (ObjId e : elems_) {
      if (!other.Contains(e)) {
        return false;
      }
    }
    return true;
  }

  bool operator==(const ObjIdSet& other) const = default;

  const std::set<ObjId>& elements() const { return elems_; }

  std::string ToString() const;

 private:
  std::set<ObjId> elems_;
};

// Reader/writer lock extension (not in SRC Report 20; DESIGN.md §13):
//
//   TYPE RWLock = RECORD [writer:  Thread        INITIALLY NIL,
//                         readers: SET OF Thread INITIALLY {}]
struct RwState {
  ThreadId writer = kNil;
  ThreadSet readers;

  bool Initial() const { return writer == kNil && readers.Empty(); }
  bool operator==(const RwState& other) const = default;
};

// A snapshot of the entire spec-visible state.
struct SpecState {
  std::map<ObjId, ThreadId> mutexes;      // absent key => NIL
  std::map<ObjId, ThreadSet> conditions;  // absent key => {}
  std::map<ObjId, SemState> semaphores;   // absent key => available
  std::map<ObjId, RwState> rwlocks;       // absent key => INITIALLY record
  std::map<ObjId, bool> events;           // absent key => FALSE (reset)
  ThreadSet alerts;

  ThreadId Mutex(ObjId m) const;
  const ThreadSet& Condition(ObjId c) const;
  SemState Semaphore(ObjId s) const;
  const RwState& RwLock(ObjId rw) const;
  bool Event(ObjId e) const;

  void SetMutex(ObjId m, ThreadId holder);
  void SetCondition(ObjId c, ThreadSet value);
  void SetSemaphore(ObjId s, SemState value);
  void SetRwLock(ObjId rw, RwState value);
  void SetEvent(ObjId e, bool value);

  bool operator==(const SpecState& other) const;

  std::string ToString() const;

 private:
  // Canonicalizes by dropping entries equal to the INITIALLY value, so that
  // operator== is true state equality regardless of touch history.
  void Canonicalize();
};

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_STATE_H_
