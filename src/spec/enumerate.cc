#include "src/spec/enumerate.h"

#include <deque>
#include <set>
#include <sstream>

#include "src/base/check.h"

namespace taos::spec {

bool WorldState::Blocked(ThreadId t) const {
  auto it = pending.find(t);
  return it != pending.end() && it->second.kind != PendingWait::Kind::kNone;
}

std::string WorldState::Key() const {
  std::ostringstream os;
  os << state.ToString() << "|";
  for (const auto& [tid, p] : pending) {
    if (p.kind == PendingWait::Kind::kNone) {
      continue;
    }
    os << "t" << tid << (p.kind == PendingWait::Kind::kWait ? "w" : "a")
       << p.mutex << "." << p.condition << ";";
  }
  return os.str();
}

std::string WorldState::ToString() const { return Key(); }

std::string SpecExploreResult::ToString() const {
  std::ostringstream os;
  os << states << " states, " << edges << " edges, "
     << (complete ? "complete" : "bounded") << ", invariant "
     << (invariant_ok ? "holds" : ("VIOLATED: " + violation));
  return os.str();
}

namespace {

// All nonempty subsets of `elems` (elems is small: |threads| <= ~4).
std::vector<ThreadSet> NonEmptySubsets(const ThreadSet& elems) {
  std::vector<ThreadId> v(elems.elements().begin(), elems.elements().end());
  std::vector<ThreadSet> subsets;
  const std::size_t n = v.size();
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    ThreadSet s;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        s = s.Insert(v[i]);
      }
    }
    subsets.push_back(std::move(s));
  }
  return subsets;
}

// All nonempty subsets of `elems` (the candidate Poll wait sets; the
// universe holds at most a handful of events).
std::vector<ObjIdSet> NonEmptyObjSubsets(const std::vector<ObjId>& elems) {
  std::vector<ObjIdSet> subsets;
  const std::size_t n = elems.size();
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    ObjIdSet s;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        s = s.Insert(elems[i]);
      }
    }
    subsets.push_back(std::move(s));
  }
  return subsets;
}

// All subsets (including {}) of `set` — the candidate `consumed`
// resolutions of a WaitAll grant.
std::vector<ObjIdSet> AllObjSubsets(const ObjIdSet& set) {
  std::vector<ObjId> v(set.elements().begin(), set.elements().end());
  std::vector<ObjIdSet> subsets;
  const std::size_t n = v.size();
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    ObjIdSet s;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        s = s.Insert(v[i]);
      }
    }
    subsets.push_back(std::move(s));
  }
  return subsets;
}

}  // namespace

void SpecEnumerator::AppendIfLegal(
    const WorldState& world, const Action& action,
    std::vector<std::pair<Action, WorldState>>* out) const {
  SpecState post;
  Verdict v = semantics_.Apply(world.state, action, &post);
  if (!v.Ok()) {
    return;  // not enabled / caller-illegal here
  }
  WorldState next;
  next.state = std::move(post);
  next.pending = world.pending;
  switch (action.kind) {
    case ActionKind::kEnqueue:
      next.pending[action.self] = {PendingWait::Kind::kWait, action.mutex,
                                   action.condition};
      break;
    case ActionKind::kAlertEnqueue:
      next.pending[action.self] = {PendingWait::Kind::kAlertWait,
                                   action.mutex, action.condition};
      break;
    case ActionKind::kResume:
    case ActionKind::kAlertResumeReturns:
    case ActionKind::kAlertResumeRaises:
    case ActionKind::kTimeoutResume:
      next.pending[action.self] = {};
      break;
    default:
      break;
  }
  out->emplace_back(action, std::move(next));
}

std::vector<std::pair<Action, WorldState>> SpecEnumerator::Successors(
    const WorldState& world) const {
  std::vector<std::pair<Action, WorldState>> out;
  for (ThreadId t : universe_.threads) {
    auto pit = world.pending.find(t);
    const PendingWait pw =
        pit == world.pending.end() ? PendingWait{} : pit->second;

    if (pw.kind == PendingWait::Kind::kWait) {
      AppendIfLegal(world, MakeResume(t, pw.mutex, pw.condition), &out);
      if (semantics_.config().model_timeouts) {
        // The timer may dequeue the waiter at any moment, even while it is
        // still a member of c (TimeoutResume deletes it itself).
        AppendIfLegal(world, MakeTimeoutResume(t, pw.mutex, pw.condition),
                      &out);
      }
      continue;  // COMPOSITION OF: nothing else until the Resume
    }
    if (pw.kind == PendingWait::Kind::kAlertWait) {
      AppendIfLegal(world, MakeAlertResumeReturns(t, pw.mutex, pw.condition),
                    &out);
      AppendIfLegal(world, MakeAlertResumeRaises(t, pw.mutex, pw.condition),
                    &out);
      if (semantics_.config().model_timeouts) {
        AppendIfLegal(world, MakeTimeoutResume(t, pw.mutex, pw.condition),
                      &out);
      }
      continue;
    }

    for (ObjId m : universe_.mutexes) {
      AppendIfLegal(world, MakeAcquire(t, m), &out);
      if (world.state.Mutex(m) == t) {  // REQUIRES m = SELF
        AppendIfLegal(world, MakeRelease(t, m), &out);
        for (ObjId c : universe_.conditions) {
          AppendIfLegal(world, MakeEnqueue(t, m, c), &out);
          AppendIfLegal(world, MakeAlertEnqueue(t, m, c), &out);
        }
      }
    }
    for (ObjId c : universe_.conditions) {
      const ThreadSet& members = world.state.Condition(c);
      if (members.Empty()) {
        AppendIfLegal(world, MakeSignal(t, c, {}), &out);
        AppendIfLegal(world, MakeBroadcast(t, c, {}), &out);
      } else {
        for (const ThreadSet& removed : NonEmptySubsets(members)) {
          AppendIfLegal(world, MakeSignal(t, c, removed), &out);
        }
        AppendIfLegal(world, MakeBroadcast(t, c, members), &out);
      }
    }
    for (ObjId s : universe_.semaphores) {
      AppendIfLegal(world, MakeP(t, s), &out);
      AppendIfLegal(world, MakeV(t, s), &out);
      AppendIfLegal(world, MakeAlertPReturns(t, s), &out);
      AppendIfLegal(world, MakeAlertPRaises(t, s), &out);
    }
    for (ObjId e : universe_.events) {
      AppendIfLegal(world, MakeEventSet(t, e), &out);
      AppendIfLegal(world, MakeEventReset(t, e), &out);
      AppendIfLegal(world, MakeEventWait(t, e), &out);
      AppendIfLegal(world, MakeEventConsume(t, e), &out);
    }
    // The multi-object Poll actions: every nonempty wait set, every legal
    // resolution of the nondeterminism (which member WaitAny granted on,
    // whether the grant consumed it; which members WaitAll consumed).
    for (const ObjIdSet& ws : NonEmptyObjSubsets(universe_.events)) {
      for (ObjId granted : ws.elements()) {
        AppendIfLegal(world, MakePollAny(t, ws, granted, false), &out);
        AppendIfLegal(world, MakePollAny(t, ws, granted, true), &out);
      }
      for (const ObjIdSet& consumed : AllObjSubsets(ws)) {
        AppendIfLegal(world, MakePollAll(t, ws, consumed), &out);
      }
      if (semantics_.config().model_timeouts) {
        AppendIfLegal(world, MakePollTimeout(t, ws), &out);
      }
      AppendIfLegal(world, MakePollAlertRaises(t, ws), &out);
    }
    for (ThreadId u : universe_.threads) {
      AppendIfLegal(world, MakeAlert(t, u), &out);
    }
    AppendIfLegal(world,
                  MakeTestAlert(t, world.state.alerts.Contains(t)), &out);
  }
  return out;
}

SpecExploreResult SpecEnumerator::Explore(const WorldInvariant& invariant,
                                          std::uint64_t max_states,
                                          WorldState initial) const {
  SpecExploreResult result;
  std::set<std::string> visited;
  std::deque<WorldState> frontier;
  bool bound_hit = false;

  auto visit = [&](const WorldState& w) -> bool {
    const std::string key = w.Key();
    if (visited.count(key) != 0) {
      return true;  // seen
    }
    if (result.states >= max_states) {
      bound_hit = true;
      return true;  // dropped: the space is larger than the bound
    }
    visited.insert(key);
    ++result.states;
    if (result.invariant_ok) {
      std::string err = invariant(w);
      if (!err.empty()) {
        result.invariant_ok = false;
        result.violation = err + " @ " + w.ToString();
        result.bad_state = w;
      }
    }
    frontier.push_back(w);
    return false;
  };

  visit(initial);
  while (!frontier.empty()) {
    WorldState w = std::move(frontier.front());
    frontier.pop_front();
    for (auto& [action, next] : Successors(w)) {
      ++result.edges;
      visit(next);
    }
  }
  result.complete = !bound_hit;
  return result;
}

std::string NoGhostMembers(const WorldState& world) {
  for (const auto& [cid, members] : world.state.conditions) {
    for (ThreadId t : members.elements()) {
      auto it = world.pending.find(t);
      const bool waiting_here =
          it != world.pending.end() &&
          it->second.kind != PendingWait::Kind::kNone &&
          it->second.condition == cid;
      if (!waiting_here) {
        std::ostringstream os;
        os << "ghost: t" << t << " is a member of c" << cid
           << " but is not blocked in a Wait/AlertWait on it";
        return os.str();
      }
    }
  }
  return "";
}

std::string HolderNotBlocked(const WorldState& world) {
  for (const auto& [mid, holder] : world.state.mutexes) {
    if (holder != kNil && world.Blocked(holder)) {
      std::ostringstream os;
      os << "t" << holder << " holds m" << mid
         << " while blocked in a Wait";
      return os.str();
    }
  }
  return "";
}

}  // namespace taos::spec
