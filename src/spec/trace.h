// Trace recording: a serialized log of spec-visible atomic actions emitted by
// an instrumented implementation (src/threads in spec-tracing mode, or the
// Firefly simulator). The checker replays a trace against the executable
// semantics.

#ifndef TAOS_SRC_SPEC_TRACE_H_
#define TAOS_SRC_SPEC_TRACE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/spinlock.h"
#include "src/spec/action.h"

namespace taos::spec {

// Anything that accepts emitted actions. The emitter must guarantee that the
// emitted actions, ordered by their `seq` stamp (ties broken by Emit-call
// order), form a legal serialization. The global-lock Nub and the simulator
// emit while holding the lock that serializes the actions themselves, so
// call order alone suffices; the sharded Nub commits actions under different
// per-object locks and relies on the stamp (see src/threads/nub.h).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const Action& action) = 0;
};

class Trace : public TraceSink {
 public:
  void Emit(const Action& action) override {
    SpinGuard g(lock_);
    actions_.push_back(action);
  }

  // The recorded serialization: the actions so far, in `seq`-stamp order
  // (stable, so unstamped emitters keep their Emit order). Safe to call
  // while emitters are still running, but normally used after they joined.
  std::vector<Action> Actions() const {
    std::vector<Action> sorted;
    {
      SpinGuard g(lock_);
      sorted = actions_;
    }
    std::stable_sort(
        sorted.begin(), sorted.end(),
        [](const Action& a, const Action& b) { return a.seq < b.seq; });
    return sorted;
  }

  std::size_t Size() const {
    SpinGuard g(lock_);
    return actions_.size();
  }

  void Clear() {
    SpinGuard g(lock_);
    actions_.clear();
  }

  std::string ToString() const;

 private:
  mutable SpinLock lock_;
  std::vector<Action> actions_;
};

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_TRACE_H_
