// Trace recording: a serialized log of spec-visible atomic actions emitted by
// an instrumented implementation (src/threads in spec-tracing mode, or the
// Firefly simulator). The checker replays a trace against the executable
// semantics.

#ifndef TAOS_SRC_SPEC_TRACE_H_
#define TAOS_SRC_SPEC_TRACE_H_

#include <string>
#include <vector>

#include "src/base/spinlock.h"
#include "src/spec/action.h"

namespace taos::spec {

// Anything that accepts emitted actions. The emitter must guarantee that the
// order of Emit calls is a legal serialization of the actions (both the
// instrumented Nub and the simulator emit while holding the lock that
// serializes the actions themselves).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const Action& action) = 0;
};

class Trace : public TraceSink {
 public:
  void Emit(const Action& action) override {
    SpinGuard g(lock_);
    actions_.push_back(action);
  }

  // Snapshot of the actions recorded so far. Safe to call while emitters are
  // still running, but normally used after they have joined.
  std::vector<Action> Actions() const {
    SpinGuard g(lock_);
    return actions_;
  }

  std::size_t Size() const {
    SpinGuard g(lock_);
    return actions_.size();
  }

  void Clear() {
    SpinGuard g(lock_);
    actions_.clear();
  }

  std::string ToString() const;

 private:
  mutable SpinLock lock_;
  std::vector<Action> actions_;
};

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_TRACE_H_
