// Executable semantics of the formal specification: given a pre-state, an
// action and a post-state, evaluate every clause the spec attaches to that
// action — REQUIRES, WHEN, ENSURES and the MODIFIES AT MOST frame condition.
//
// Spec variants reproduce the paper's Discussion section:
//  - AlertWaitVariant::kOriginalBuggy is the spec as first released, whose
//    AlertResume RAISES clause said UNCHANGED[c] — the error found by Greg
//    Nelson (a thread that raised Alerted could linger in c and absorb a
//    later Signal).
//  - AlertChoicePolicy::kPreferAlerted is the pre-release rule that AlertP /
//    AlertWait must raise Alerted whenever possible; the released spec made
//    the choice nondeterministic because the implementation was.

#ifndef TAOS_SRC_SPEC_SEMANTICS_H_
#define TAOS_SRC_SPEC_SEMANTICS_H_

#include <string>

#include "src/spec/action.h"
#include "src/spec/state.h"

namespace taos::spec {

enum class AlertWaitVariant : std::uint8_t { kCorrected, kOriginalBuggy };
enum class AlertChoicePolicy : std::uint8_t {
  kNondeterministic,
  kPreferAlerted
};

struct SpecConfig {
  AlertWaitVariant alert_wait = AlertWaitVariant::kCorrected;
  AlertChoicePolicy alert_choice = AlertChoicePolicy::kNondeterministic;
  // When true, the enumerator also explores the timed-wait extension's
  // timeout transitions (a pending waiter may leave c via TimeoutResume as
  // well as Resume). Off by default: the paper's spec has no timeouts, and
  // the baseline state-space counts assume their absence.
  bool model_timeouts = false;
};

// The result of evaluating one action against the spec.
struct Verdict {
  bool requires_ok = true;  // caller obligation (REQUIRES)
  bool when_ok = true;      // enabling condition (WHEN)
  bool ensures_ok = true;   // postcondition (ENSURES)
  bool frame_ok = true;     // MODIFIES AT MOST
  bool choice_ok = true;    // outcome-choice policy (AlertChoicePolicy)
  std::string message;      // first failure, human-readable

  bool Ok() const {
    return requires_ok && when_ok && ensures_ok && frame_ok && choice_ok;
  }
};

class Semantics {
 public:
  explicit Semantics(SpecConfig config = {}) : config_(config) {}

  const SpecConfig& config() const { return config_; }

  // Full two-state check: does the spec allow `action` to take `pre` to
  // `post`? Evaluates every clause independently so tests can probe each.
  Verdict Check(const SpecState& pre, const Action& action,
                const SpecState& post) const;

  // Is the action enabled in `pre` (WHEN clause)? REQUIRES violations do not
  // disable an action — they are caller errors — so this is WHEN only.
  bool Enabled(const SpecState& pre, const Action& action) const;

  // Computes the post-state the spec prescribes for `action` in `pre`, using
  // the nondeterminism choices recorded inside the action (removed set,
  // TestAlert result). The verdict reports whether the step as a whole is
  // legal; `post` is meaningful even on failure (best-effort application)
  // so that checkers can report divergence.
  Verdict Apply(const SpecState& pre, const Action& action,
                SpecState* post) const;

 private:
  Verdict CheckClauses(const SpecState& pre, const Action& action,
                       const SpecState& post, bool check_frame) const;

  SpecConfig config_;
};

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_SEMANTICS_H_
