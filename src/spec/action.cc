#include "src/spec/action.h"

#include <sstream>

namespace taos::spec {

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kAcquire:
      return "Acquire";
    case ActionKind::kRelease:
      return "Release";
    case ActionKind::kEnqueue:
      return "Enqueue";
    case ActionKind::kResume:
      return "Resume";
    case ActionKind::kSignal:
      return "Signal";
    case ActionKind::kBroadcast:
      return "Broadcast";
    case ActionKind::kP:
      return "P";
    case ActionKind::kV:
      return "V";
    case ActionKind::kAlert:
      return "Alert";
    case ActionKind::kTestAlert:
      return "TestAlert";
    case ActionKind::kAlertPReturns:
      return "AlertP/RETURNS";
    case ActionKind::kAlertPRaises:
      return "AlertP/RAISES";
    case ActionKind::kAlertEnqueue:
      return "AlertWait.Enqueue";
    case ActionKind::kAlertResumeReturns:
      return "AlertWait.Resume/RETURNS";
    case ActionKind::kAlertResumeRaises:
      return "AlertWait.Resume/RAISES";
    case ActionKind::kAcquireTimeout:
      return "AcquireFor/TIMEOUT";
    case ActionKind::kPTimeout:
      return "PFor/TIMEOUT";
    case ActionKind::kTimeoutResume:
      return "WaitFor.Resume/TIMEOUT";
    case ActionKind::kRwAcquire:
      return "RWAcquire";
    case ActionKind::kRwRelease:
      return "RWRelease";
    case ActionKind::kRwAcquireShared:
      return "RWAcquireShared";
    case ActionKind::kRwReleaseShared:
      return "RWReleaseShared";
    case ActionKind::kRwAcquireTimeout:
      return "RWAcquireFor/TIMEOUT";
    case ActionKind::kRwAcquireSharedTimeout:
      return "RWAcquireSharedFor/TIMEOUT";
    case ActionKind::kEventSet:
      return "EventSet";
    case ActionKind::kEventReset:
      return "EventReset";
    case ActionKind::kEventWait:
      return "EventWait";
    case ActionKind::kEventConsume:
      return "EventWait/CONSUME";
    case ActionKind::kPollAny:
      return "WaitAny";
    case ActionKind::kPollAll:
      return "WaitAll";
    case ActionKind::kPollTimeout:
      return "WaitFor/TIMEOUT";
    case ActionKind::kPollAlertRaises:
      return "WaitAny/RAISES";
  }
  return "?";
}

std::string Action::ToString() const {
  std::ostringstream os;
  os << "t" << self << ":" << ActionKindName(kind);
  switch (kind) {
    case ActionKind::kAcquire:
    case ActionKind::kRelease:
    case ActionKind::kAcquireTimeout:
      os << "(m" << mutex << ")";
      break;
    case ActionKind::kEnqueue:
    case ActionKind::kResume:
    case ActionKind::kAlertEnqueue:
    case ActionKind::kAlertResumeReturns:
    case ActionKind::kAlertResumeRaises:
    case ActionKind::kTimeoutResume:
      os << "(m" << mutex << ", c" << condition << ")";
      break;
    case ActionKind::kSignal:
    case ActionKind::kBroadcast:
      os << "(c" << condition << ") removed=" << removed.ToString();
      break;
    case ActionKind::kP:
    case ActionKind::kV:
    case ActionKind::kAlertPReturns:
    case ActionKind::kAlertPRaises:
    case ActionKind::kPTimeout:
      os << "(s" << semaphore << ")";
      break;
    case ActionKind::kAlert:
      os << "(t" << target << ")";
      break;
    case ActionKind::kTestAlert:
      os << "() = " << (result ? "true" : "false");
      break;
    case ActionKind::kRwAcquire:
    case ActionKind::kRwRelease:
    case ActionKind::kRwAcquireShared:
    case ActionKind::kRwReleaseShared:
    case ActionKind::kRwAcquireTimeout:
    case ActionKind::kRwAcquireSharedTimeout:
      os << "(rw" << rwlock << ")";
      break;
    case ActionKind::kEventSet:
    case ActionKind::kEventReset:
    case ActionKind::kEventWait:
      os << "(e" << event << ")";
      break;
    case ActionKind::kEventConsume:
      os << "(e" << event << ")";
      break;
    case ActionKind::kPollAny:
      os << "(" << wait_set.ToString() << ") granted=e" << event
         << (result ? " consumed" : "");
      break;
    case ActionKind::kPollAll:
      os << "(" << wait_set.ToString() << ") consumed=" << consumed.ToString();
      break;
    case ActionKind::kPollTimeout:
    case ActionKind::kPollAlertRaises:
      os << "(" << wait_set.ToString() << ")";
      break;
  }
  return os.str();
}

namespace {
Action Base(ActionKind kind, ThreadId self) {
  Action a;
  a.kind = kind;
  a.self = self;
  return a;
}
}  // namespace

Action MakeAcquire(ThreadId self, ObjId m) {
  Action a = Base(ActionKind::kAcquire, self);
  a.mutex = m;
  return a;
}

Action MakeRelease(ThreadId self, ObjId m) {
  Action a = Base(ActionKind::kRelease, self);
  a.mutex = m;
  return a;
}

Action MakeEnqueue(ThreadId self, ObjId m, ObjId c) {
  Action a = Base(ActionKind::kEnqueue, self);
  a.mutex = m;
  a.condition = c;
  return a;
}

Action MakeResume(ThreadId self, ObjId m, ObjId c) {
  Action a = Base(ActionKind::kResume, self);
  a.mutex = m;
  a.condition = c;
  return a;
}

Action MakeSignal(ThreadId self, ObjId c, ThreadSet removed) {
  Action a = Base(ActionKind::kSignal, self);
  a.condition = c;
  a.removed = std::move(removed);
  return a;
}

Action MakeBroadcast(ThreadId self, ObjId c, ThreadSet removed) {
  Action a = Base(ActionKind::kBroadcast, self);
  a.condition = c;
  a.removed = std::move(removed);
  return a;
}

Action MakeP(ThreadId self, ObjId s) {
  Action a = Base(ActionKind::kP, self);
  a.semaphore = s;
  return a;
}

Action MakeV(ThreadId self, ObjId s) {
  Action a = Base(ActionKind::kV, self);
  a.semaphore = s;
  return a;
}

Action MakeAlert(ThreadId self, ThreadId target) {
  Action a = Base(ActionKind::kAlert, self);
  a.target = target;
  return a;
}

Action MakeTestAlert(ThreadId self, bool result) {
  Action a = Base(ActionKind::kTestAlert, self);
  a.result = result;
  return a;
}

Action MakeAlertPReturns(ThreadId self, ObjId s) {
  Action a = Base(ActionKind::kAlertPReturns, self);
  a.semaphore = s;
  return a;
}

Action MakeAlertPRaises(ThreadId self, ObjId s) {
  Action a = Base(ActionKind::kAlertPRaises, self);
  a.semaphore = s;
  return a;
}

Action MakeAlertEnqueue(ThreadId self, ObjId m, ObjId c) {
  Action a = Base(ActionKind::kAlertEnqueue, self);
  a.mutex = m;
  a.condition = c;
  return a;
}

Action MakeAlertResumeReturns(ThreadId self, ObjId m, ObjId c) {
  Action a = Base(ActionKind::kAlertResumeReturns, self);
  a.mutex = m;
  a.condition = c;
  return a;
}

Action MakeAlertResumeRaises(ThreadId self, ObjId m, ObjId c) {
  Action a = Base(ActionKind::kAlertResumeRaises, self);
  a.mutex = m;
  a.condition = c;
  return a;
}

Action MakeAcquireTimeout(ThreadId self, ObjId m) {
  Action a = Base(ActionKind::kAcquireTimeout, self);
  a.mutex = m;
  return a;
}

Action MakePTimeout(ThreadId self, ObjId s) {
  Action a = Base(ActionKind::kPTimeout, self);
  a.semaphore = s;
  return a;
}

Action MakeTimeoutResume(ThreadId self, ObjId m, ObjId c) {
  Action a = Base(ActionKind::kTimeoutResume, self);
  a.mutex = m;
  a.condition = c;
  return a;
}

namespace {
Action RwBase(ActionKind kind, ThreadId self, ObjId rw) {
  Action a = Base(kind, self);
  a.rwlock = rw;
  return a;
}
}  // namespace

Action MakeRwAcquire(ThreadId self, ObjId rw) {
  return RwBase(ActionKind::kRwAcquire, self, rw);
}

Action MakeRwRelease(ThreadId self, ObjId rw) {
  return RwBase(ActionKind::kRwRelease, self, rw);
}

Action MakeRwAcquireShared(ThreadId self, ObjId rw) {
  return RwBase(ActionKind::kRwAcquireShared, self, rw);
}

Action MakeRwReleaseShared(ThreadId self, ObjId rw) {
  return RwBase(ActionKind::kRwReleaseShared, self, rw);
}

Action MakeRwAcquireTimeout(ThreadId self, ObjId rw) {
  return RwBase(ActionKind::kRwAcquireTimeout, self, rw);
}

Action MakeRwAcquireSharedTimeout(ThreadId self, ObjId rw) {
  return RwBase(ActionKind::kRwAcquireSharedTimeout, self, rw);
}

Action MakeEventSet(ThreadId self, ObjId e) {
  Action a = Base(ActionKind::kEventSet, self);
  a.event = e;
  return a;
}

Action MakeEventReset(ThreadId self, ObjId e) {
  Action a = Base(ActionKind::kEventReset, self);
  a.event = e;
  return a;
}

Action MakeEventWait(ThreadId self, ObjId e) {
  Action a = Base(ActionKind::kEventWait, self);
  a.event = e;
  return a;
}

Action MakeEventConsume(ThreadId self, ObjId e) {
  Action a = Base(ActionKind::kEventConsume, self);
  a.event = e;
  return a;
}

Action MakePollAny(ThreadId self, ObjIdSet wait_set, ObjId granted,
                   bool consumed) {
  Action a = Base(ActionKind::kPollAny, self);
  a.wait_set = std::move(wait_set);
  a.event = granted;
  a.result = consumed;
  return a;
}

Action MakePollAll(ThreadId self, ObjIdSet wait_set, ObjIdSet consumed) {
  Action a = Base(ActionKind::kPollAll, self);
  a.wait_set = std::move(wait_set);
  a.consumed = std::move(consumed);
  return a;
}

Action MakePollTimeout(ThreadId self, ObjIdSet wait_set) {
  Action a = Base(ActionKind::kPollTimeout, self);
  a.wait_set = std::move(wait_set);
  return a;
}

Action MakePollAlertRaises(ThreadId self, ObjIdSet wait_set) {
  Action a = Base(ActionKind::kPollAlertRaises, self);
  a.wait_set = std::move(wait_set);
  return a;
}

}  // namespace taos::spec
