#include "src/spec/checker.h"

#include <sstream>

namespace taos::spec {

namespace {

// Per-thread COMPOSITION OF tracking: what the thread's next action must be.
struct PendingResume {
  enum class Kind : std::uint8_t { kNone, kWait, kAlertWait };
  Kind kind = Kind::kNone;
  ObjId mutex = 0;
  ObjId condition = 0;
};

bool IsResumeFor(const Action& a, const PendingResume& p) {
  // TimeoutResume is a legal second half for both compositions: a timed
  // WaitFor is an Enqueue, a timed AlertWaitFor an AlertEnqueue, and either
  // may end by expiry.
  if (p.kind == PendingResume::Kind::kWait) {
    return (a.kind == ActionKind::kResume ||
            a.kind == ActionKind::kTimeoutResume) &&
           a.mutex == p.mutex && a.condition == p.condition;
  }
  if (p.kind == PendingResume::Kind::kAlertWait) {
    return (a.kind == ActionKind::kAlertResumeReturns ||
            a.kind == ActionKind::kAlertResumeRaises ||
            a.kind == ActionKind::kTimeoutResume) &&
           a.mutex == p.mutex && a.condition == p.condition;
  }
  return false;
}

}  // namespace

CheckResult TraceChecker::CheckTrace(const std::vector<Action>& actions,
                                     SpecState initial) const {
  CheckResult result;
  SpecState state = std::move(initial);
  std::map<ThreadId, PendingResume> pending;

  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];

    // COMPOSITION OF: a thread with a pending Resume may do nothing else.
    auto it = pending.find(a.self);
    if (it != pending.end() && it->second.kind != PendingResume::Kind::kNone) {
      if (!IsResumeFor(a, it->second)) {
        result.ok = false;
        result.failed_index = i;
        std::ostringstream os;
        os << "COMPOSITION OF violated: thread t" << a.self
           << " has a pending Resume but performed " << a.ToString();
        result.message = os.str();
        result.final_state = state;
        return result;
      }
      it->second.kind = PendingResume::Kind::kNone;
    }

    SpecState post;
    Verdict v = semantics_.Apply(state, a, &post);
    ++result.actions_checked;
    if (!v.Ok()) {
      result.ok = false;
      result.failed_index = i;
      result.message = v.message;
      result.final_state = state;
      return result;
    }

    if (a.kind == ActionKind::kSignal && a.removed.Size() > 1) {
      ++result.signals_removing_many;
    }

    if (a.kind == ActionKind::kEnqueue) {
      pending[a.self] = {PendingResume::Kind::kWait, a.mutex, a.condition};
    } else if (a.kind == ActionKind::kAlertEnqueue) {
      pending[a.self] = {PendingResume::Kind::kAlertWait, a.mutex,
                         a.condition};
    }

    state = std::move(post);
  }

  result.final_state = std::move(state);
  return result;
}

}  // namespace taos::spec
