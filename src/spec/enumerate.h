// Exhaustive exploration of the *specification's* state space.
//
// Where src/model explores schedules of an implementation, this module
// explores the spec itself: from an initial state, repeatedly fire every
// action the spec enables (with all resolutions of its nondeterminism —
// every legal Signal removal set, both AlertP outcomes, ...) and verify an
// invariant at every reachable state. The state space is finite for a fixed
// universe of threads and objects, so the exploration is complete.
//
// Thread control flow is modelled minimally: the spec's only sequencing
// constraint is COMPOSITION OF (a thread that performed Enqueue does
// nothing until its Resume / AlertResume), tracked as a per-thread pending
// marker alongside the SpecState.
//
// The headline use (experiment E9): under the corrected semantics the
// invariant "every member of a condition's set is a thread blocked in
// Wait/AlertWait" holds over the whole space; under the originally released
// AlertWait spec it is violated — threads that raised Alerted linger in c
// as ghosts, able to absorb Signals.

#ifndef TAOS_SRC_SPEC_ENUMERATE_H_
#define TAOS_SRC_SPEC_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/spec/semantics.h"

namespace taos::spec {

// The fixed set of threads and objects actions range over.
struct Universe {
  std::vector<ThreadId> threads;
  std::vector<ObjId> mutexes;
  std::vector<ObjId> conditions;
  std::vector<ObjId> semaphores;
  // Events also induce the multi-object Poll actions: every nonempty
  // subset of `events` is a candidate wait set for WaitAny/WaitAll, with
  // every legal resolution of the grant/consumption nondeterminism fired.
  std::vector<ObjId> events;
};

// Per-thread COMPOSITION OF status.
struct PendingWait {
  enum class Kind : std::uint8_t { kNone, kWait, kAlertWait };
  Kind kind = Kind::kNone;
  ObjId mutex = 0;
  ObjId condition = 0;

  bool operator==(const PendingWait&) const = default;
};

// A node of the exploration graph.
struct WorldState {
  SpecState state;
  std::map<ThreadId, PendingWait> pending;

  // True if thread t is mid-Wait/AlertWait (Enqueue done, Resume not).
  bool Blocked(ThreadId t) const;

  std::string Key() const;  // canonical encoding for the visited set
  std::string ToString() const;
};

// An invariant over reachable world states; returns "" when satisfied,
// otherwise a description of the violation.
using WorldInvariant = std::function<std::string(const WorldState&)>;

struct SpecExploreResult {
  std::uint64_t states = 0;   // distinct reachable world states
  std::uint64_t edges = 0;    // action firings
  bool complete = false;      // space fully explored (no bound hit)
  bool invariant_ok = true;
  std::string violation;      // first violation, with state + action
  WorldState bad_state;

  std::string ToString() const;
};

class SpecEnumerator {
 public:
  SpecEnumerator(Universe universe, SpecConfig config = {})
      : universe_(std::move(universe)), semantics_(config) {}

  // Every (action, successor) the spec allows from `world`, nondeterminism
  // fully expanded.
  std::vector<std::pair<Action, WorldState>> Successors(
      const WorldState& world) const;

  // Complete BFS from the INITIALLY state (or `initial`), checking
  // `invariant` everywhere. `max_states` is a safety bound; the result
  // reports whether it was hit.
  SpecExploreResult Explore(const WorldInvariant& invariant,
                            std::uint64_t max_states = 2'000'000,
                            WorldState initial = {}) const;

 private:
  void AppendIfLegal(const WorldState& world, const Action& action,
                     std::vector<std::pair<Action, WorldState>>* out) const;

  Universe universe_;
  Semantics semantics_;
};

// Canonical invariants used by the experiments:

// "Every member of every condition's set is a thread blocked in a
// Wait/AlertWait on that condition." Holds under the corrected AlertWait
// spec; fails under the original buggy one (ghost threads).
std::string NoGhostMembers(const WorldState& world);

// "A mutex's holder is never simultaneously blocked on a condition."
std::string HolderNotBlocked(const WorldState& world);

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_ENUMERATE_H_
