#include "src/spec/semantics.h"

#include <set>
#include <sstream>

namespace taos::spec {

namespace {

// Which objects an action's MODIFIES AT MOST clause names.
struct Frame {
  bool mutex = false;
  bool condition = false;
  bool semaphore = false;
  bool rwlock = false;
  bool alerts = false;
  bool event = false;     // MODIFIES AT MOST the single event `a.event`
  bool wait_set = false;  // MODIFIES AT MOST the events in `a.wait_set`
};

Frame FrameOf(const Action& a) {
  Frame f;
  switch (a.kind) {
    case ActionKind::kAcquire:
    case ActionKind::kRelease:
      f.mutex = true;
      break;
    case ActionKind::kEnqueue:
    case ActionKind::kResume:
      f.mutex = true;
      f.condition = true;
      break;
    case ActionKind::kSignal:
    case ActionKind::kBroadcast:
      f.condition = true;
      break;
    case ActionKind::kP:
    case ActionKind::kV:
      f.semaphore = true;
      break;
    case ActionKind::kAlert:
    case ActionKind::kTestAlert:
      f.alerts = true;
      break;
    case ActionKind::kAlertPReturns:
    case ActionKind::kAlertPRaises:
      f.semaphore = true;
      f.alerts = true;
      break;
    case ActionKind::kAlertEnqueue:
    case ActionKind::kAlertResumeReturns:
    case ActionKind::kAlertResumeRaises:
      f.mutex = true;
      f.condition = true;
      f.alerts = true;
      break;
    case ActionKind::kAcquireTimeout:
      f.mutex = true;
      break;
    case ActionKind::kPTimeout:
      f.semaphore = true;
      break;
    case ActionKind::kTimeoutResume:
      // Regains m and leaves c; the alert flag is deliberately NOT in the
      // frame — a timeout never consumes a pending alert.
      f.mutex = true;
      f.condition = true;
      break;
    case ActionKind::kRwAcquire:
    case ActionKind::kRwRelease:
    case ActionKind::kRwAcquireShared:
    case ActionKind::kRwReleaseShared:
    case ActionKind::kRwAcquireTimeout:
    case ActionKind::kRwAcquireSharedTimeout:
      f.rwlock = true;
      break;
    case ActionKind::kEventSet:
    case ActionKind::kEventReset:
    case ActionKind::kEventWait:
    case ActionKind::kEventConsume:
      f.event = true;
      break;
    case ActionKind::kPollAny:
    case ActionKind::kPollAll:
      f.wait_set = true;
      break;
    case ActionKind::kPollTimeout:
      break;  // WHEN TRUE no-op: nothing in the frame
    case ActionKind::kPollAlertRaises:
      // Raising leaves every event untouched — the alert flag is the only
      // state the outcome consumes.
      f.alerts = true;
      break;
  }
  return f;
}

template <typename Map>
void CollectKeys(const Map& a, const Map& b, std::set<ObjId>* out) {
  for (const auto& [k, v] : a) {
    out->insert(k);
  }
  for (const auto& [k, v] : b) {
    out->insert(k);
  }
}

}  // namespace

bool Semantics::Enabled(const SpecState& pre, const Action& a) const {
  switch (a.kind) {
    case ActionKind::kAcquire:
      return pre.Mutex(a.mutex) == kNil;
    case ActionKind::kResume:
      return pre.Mutex(a.mutex) == kNil && !pre.Condition(a.condition).Contains(a.self);
    case ActionKind::kP:
      return pre.Semaphore(a.semaphore) == SemState::kAvailable;
    case ActionKind::kAlertPReturns:
      return pre.Semaphore(a.semaphore) == SemState::kAvailable;
    case ActionKind::kAlertPRaises:
      return pre.alerts.Contains(a.self);
    case ActionKind::kAlertResumeReturns:
      return pre.Mutex(a.mutex) == kNil && !pre.Condition(a.condition).Contains(a.self);
    case ActionKind::kAlertResumeRaises:
      return pre.Mutex(a.mutex) == kNil && pre.alerts.Contains(a.self);
    case ActionKind::kTimeoutResume:
      // Unlike Resume, SELF may still be in c: the timer dequeued the
      // waiter without a Signal, and the action itself deletes it from c.
      return pre.Mutex(a.mutex) == kNil;
    case ActionKind::kRwAcquire:
      return pre.RwLock(a.rwlock).writer == kNil &&
             pre.RwLock(a.rwlock).readers.Empty();
    case ActionKind::kRwAcquireShared:
      return pre.RwLock(a.rwlock).writer == kNil;
    case ActionKind::kEventWait:
    case ActionKind::kEventConsume:
      return pre.Event(a.event);
    case ActionKind::kPollAny: {
      // WHEN (E i IN wait_set: i) — the WHEN clause quantified over a set
      // of objects (DESIGN.md §15; Hayes' hard case).
      for (ObjId e : a.wait_set.elements()) {
        if (pre.Event(e)) {
          return true;
        }
      }
      return false;
    }
    case ActionKind::kPollAll: {
      // WHEN (A i IN wait_set: i).
      for (ObjId e : a.wait_set.elements()) {
        if (!pre.Event(e)) {
          return false;
        }
      }
      return true;
    }
    case ActionKind::kPollAlertRaises:
      return pre.alerts.Contains(a.self);
    default:
      return true;  // omitted WHEN clause == WHEN TRUE
  }
}

Verdict Semantics::CheckClauses(const SpecState& pre, const Action& a,
                                const SpecState& post,
                                bool check_frame) const {
  Verdict v;
  auto fail = [&v](bool* flag, const std::string& why) {
    *flag = false;
    if (v.message.empty()) {
      v.message = why;
    }
  };

  // --- REQUIRES ---
  switch (a.kind) {
    case ActionKind::kRelease:
    case ActionKind::kEnqueue:
    case ActionKind::kAlertEnqueue:
      if (pre.Mutex(a.mutex) != a.self) {
        fail(&v.requires_ok, "REQUIRES m = SELF violated by caller");
      }
      break;
    case ActionKind::kRwRelease:
      if (pre.RwLock(a.rwlock).writer != a.self) {
        fail(&v.requires_ok, "REQUIRES rw.writer = SELF violated by caller");
      }
      break;
    case ActionKind::kRwReleaseShared:
      if (!pre.RwLock(a.rwlock).readers.Contains(a.self)) {
        fail(&v.requires_ok, "REQUIRES SELF IN rw.readers violated by caller");
      }
      break;
    case ActionKind::kRwAcquireShared:
      if (pre.RwLock(a.rwlock).readers.Contains(a.self)) {
        fail(&v.requires_ok,
             "REQUIRES NOT (SELF IN rw.readers) violated by caller");
      }
      break;
    case ActionKind::kPollAny:
    case ActionKind::kPollAll:
    case ActionKind::kPollTimeout:
    case ActionKind::kPollAlertRaises:
      if (a.wait_set.Empty()) {
        fail(&v.requires_ok, "REQUIRES wait_set # {} violated by caller");
      }
      if (a.kind == ActionKind::kPollAny && !a.wait_set.Contains(a.event)) {
        fail(&v.requires_ok, "REQUIRES granted IN wait_set violated");
      }
      if (a.kind == ActionKind::kPollAll &&
          !a.consumed.SubsetOf(a.wait_set)) {
        fail(&v.requires_ok, "REQUIRES consumed SUBSET wait_set violated");
      }
      break;
    default:
      break;
  }

  // --- WHEN ---
  if (!Enabled(pre, a)) {
    fail(&v.when_ok, std::string("WHEN clause of ") + ActionKindName(a.kind) +
                         " does not hold in the pre state");
  }

  // --- ENSURES ---
  const ThreadId m_post = post.Mutex(a.mutex);
  const ThreadSet& c_pre = pre.Condition(a.condition);
  const ThreadSet& c_post = post.Condition(a.condition);
  const SemState s_pre = pre.Semaphore(a.semaphore);
  const SemState s_post = post.Semaphore(a.semaphore);
  const RwState& rw_pre = pre.RwLock(a.rwlock);
  const RwState& rw_post = post.RwLock(a.rwlock);

  auto ensure = [&](bool cond, const char* why) {
    if (!cond) {
      fail(&v.ensures_ok, std::string("ENSURES violated: ") + why);
    }
  };

  switch (a.kind) {
    case ActionKind::kAcquire:
      ensure(m_post == a.self, "mpost = SELF");
      break;
    case ActionKind::kRelease:
      ensure(m_post == kNil, "mpost = NIL");
      break;
    case ActionKind::kEnqueue:
      ensure(c_post == c_pre.Insert(a.self), "cpost = insert(c, SELF)");
      ensure(m_post == kNil, "mpost = NIL");
      break;
    case ActionKind::kResume:
      ensure(m_post == a.self, "mpost = SELF");
      ensure(c_post == c_pre, "UNCHANGED [c]");
      break;
    case ActionKind::kSignal:
      ensure(c_post.Empty() || c_post.ProperSubsetOf(c_pre),
             "(cpost = {}) | (cpost PROPER-SUBSET c)");
      break;
    case ActionKind::kBroadcast:
      ensure(c_post.Empty(), "cpost = {}");
      break;
    case ActionKind::kP:
      ensure(s_post == SemState::kUnavailable, "spost = unavailable");
      break;
    case ActionKind::kV:
      ensure(s_post == SemState::kAvailable, "spost = available");
      break;
    case ActionKind::kAlert:
      ensure(post.alerts == pre.alerts.Insert(a.target),
             "alertspost = insert(alerts, t)");
      break;
    case ActionKind::kTestAlert:
      ensure(a.result == pre.alerts.Contains(a.self), "b = (SELF IN alerts)");
      ensure(post.alerts == pre.alerts.Delete(a.self),
             "alertspost = delete(alerts, SELF)");
      break;
    case ActionKind::kAlertPReturns:
      ensure(s_post == SemState::kUnavailable, "spost = unavailable");
      ensure(post.alerts == pre.alerts, "UNCHANGED [alerts]");
      break;
    case ActionKind::kAlertPRaises:
      ensure(post.alerts == pre.alerts.Delete(a.self),
             "alertspost = delete(alerts, SELF)");
      ensure(s_post == s_pre, "UNCHANGED [s]");
      break;
    case ActionKind::kAlertEnqueue:
      ensure(c_post == c_pre.Insert(a.self), "cpost = insert(c, SELF)");
      ensure(m_post == kNil, "mpost = NIL");
      ensure(post.alerts == pre.alerts, "UNCHANGED [alerts]");
      break;
    case ActionKind::kAlertResumeReturns:
      ensure(m_post == a.self, "mpost = SELF");
      ensure(c_post == c_pre, "UNCHANGED [c]");
      ensure(post.alerts == pre.alerts, "UNCHANGED [alerts]");
      break;
    case ActionKind::kAlertResumeRaises:
      ensure(m_post == a.self, "mpost = SELF");
      ensure(post.alerts == pre.alerts.Delete(a.self),
             "alertspost = delete(alerts, SELF)");
      if (config_.alert_wait == AlertWaitVariant::kCorrected) {
        ensure(c_post == c_pre.Delete(a.self), "cpost = delete(c, SELF)");
      } else {
        // The original (buggy) released spec: UNCHANGED [c].
        ensure(c_post == c_pre, "UNCHANGED [c]  (original buggy spec)");
      }
      break;
    case ActionKind::kAcquireTimeout:
      ensure(m_post == pre.Mutex(a.mutex), "UNCHANGED [m]");
      break;
    case ActionKind::kPTimeout:
      ensure(s_post == s_pre, "UNCHANGED [s]");
      break;
    case ActionKind::kTimeoutResume:
      ensure(m_post == a.self, "mpost = SELF");
      // delete() is a no-op when SELF already left c (a Signal raced the
      // timer and removed it first), so one clause covers both interleavings
      // — the lesson of the corrected AlertResume/RAISES applied from the
      // start.
      ensure(c_post == c_pre.Delete(a.self), "cpost = delete(c, SELF)");
      break;
    case ActionKind::kRwAcquire:
      ensure(rw_post.writer == a.self, "rw.writerpost = SELF");
      ensure(rw_post.readers == rw_pre.readers, "UNCHANGED [rw.readers]");
      break;
    case ActionKind::kRwRelease:
      ensure(rw_post.writer == kNil, "rw.writerpost = NIL");
      ensure(rw_post.readers == rw_pre.readers, "UNCHANGED [rw.readers]");
      break;
    case ActionKind::kRwAcquireShared:
      ensure(rw_post.readers == rw_pre.readers.Insert(a.self),
             "rw.readerspost = insert(rw.readers, SELF)");
      ensure(rw_post.writer == rw_pre.writer, "UNCHANGED [rw.writer]");
      break;
    case ActionKind::kRwReleaseShared:
      ensure(rw_post.readers == rw_pre.readers.Delete(a.self),
             "rw.readerspost = delete(rw.readers, SELF)");
      ensure(rw_post.writer == rw_pre.writer, "UNCHANGED [rw.writer]");
      break;
    case ActionKind::kRwAcquireTimeout:
    case ActionKind::kRwAcquireSharedTimeout:
      ensure(rw_post == rw_pre, "UNCHANGED [rw]");
      break;
    case ActionKind::kEventSet:
      ensure(post.Event(a.event), "epost = TRUE");
      break;
    case ActionKind::kEventReset:
      ensure(!post.Event(a.event), "epost = FALSE");
      break;
    case ActionKind::kEventWait:
      // Manual-reset grant: observing the event leaves it set.
      ensure(post.Event(a.event) == pre.Event(a.event), "UNCHANGED [e]");
      break;
    case ActionKind::kEventConsume:
      // Auto-reset grant: exactly one waiter consumes the pulse.
      ensure(!post.Event(a.event), "epost = FALSE");
      break;
    case ActionKind::kPollAny:
      // The grant names its witness for the existential WHEN; only the
      // witness may change, and only by consumption (auto-reset).
      ensure(pre.Event(a.event), "granted event set in pre state");
      for (ObjId e : a.wait_set.elements()) {
        if (e == a.event) {
          ensure(post.Event(e) == (a.result ? false : pre.Event(e)),
                 a.result ? "granted epost = FALSE (consumed)"
                          : "UNCHANGED [granted e]");
        } else {
          ensure(post.Event(e) == pre.Event(e),
                 "UNCHANGED [wait_set \\ granted]");
        }
      }
      break;
    case ActionKind::kPollAll:
      for (ObjId e : a.wait_set.elements()) {
        if (a.consumed.Contains(e)) {
          ensure(!post.Event(e), "consumed epost = FALSE");
        } else {
          ensure(post.Event(e) == pre.Event(e),
                 "UNCHANGED [wait_set \\ consumed]");
        }
      }
      break;
    case ActionKind::kPollTimeout:
      for (ObjId e : a.wait_set.elements()) {
        ensure(post.Event(e) == pre.Event(e), "UNCHANGED [wait_set]");
      }
      break;
    case ActionKind::kPollAlertRaises:
      ensure(post.alerts == pre.alerts.Delete(a.self),
             "alertspost = delete(alerts, SELF)");
      for (ObjId e : a.wait_set.elements()) {
        ensure(post.Event(e) == pre.Event(e), "UNCHANGED [wait_set]");
      }
      break;
  }

  // --- choice policy (pre-release deterministic alert preference) ---
  if (config_.alert_choice == AlertChoicePolicy::kPreferAlerted) {
    const bool could_raise_p = pre.alerts.Contains(a.self);
    if (a.kind == ActionKind::kAlertPReturns && could_raise_p) {
      fail(&v.choice_ok,
           "policy: AlertP must raise Alerted when SELF IN alerts");
    }
    if (a.kind == ActionKind::kAlertResumeReturns && could_raise_p) {
      fail(&v.choice_ok,
           "policy: AlertWait must raise Alerted when SELF IN alerts");
    }
  }

  // --- MODIFIES AT MOST (frame) ---
  if (check_frame) {
    const Frame f = FrameOf(a);
    std::set<ObjId> keys;
    CollectKeys(pre.mutexes, post.mutexes, &keys);
    for (ObjId id : keys) {
      if ((!f.mutex || id != a.mutex) && pre.Mutex(id) != post.Mutex(id)) {
        fail(&v.frame_ok, "frame: unlisted mutex modified");
      }
    }
    keys.clear();
    CollectKeys(pre.conditions, post.conditions, &keys);
    for (ObjId id : keys) {
      if ((!f.condition || id != a.condition) &&
          !(pre.Condition(id) == post.Condition(id))) {
        fail(&v.frame_ok, "frame: unlisted condition modified");
      }
    }
    keys.clear();
    CollectKeys(pre.semaphores, post.semaphores, &keys);
    for (ObjId id : keys) {
      if ((!f.semaphore || id != a.semaphore) &&
          pre.Semaphore(id) != post.Semaphore(id)) {
        fail(&v.frame_ok, "frame: unlisted semaphore modified");
      }
    }
    keys.clear();
    CollectKeys(pre.rwlocks, post.rwlocks, &keys);
    for (ObjId id : keys) {
      if ((!f.rwlock || id != a.rwlock) &&
          !(pre.RwLock(id) == post.RwLock(id))) {
        fail(&v.frame_ok, "frame: unlisted rwlock modified");
      }
    }
    keys.clear();
    CollectKeys(pre.events, post.events, &keys);
    for (ObjId id : keys) {
      const bool listed = (f.event && id == a.event) ||
                          (f.wait_set && a.wait_set.Contains(id));
      if (!listed && pre.Event(id) != post.Event(id)) {
        fail(&v.frame_ok, "frame: unlisted event modified");
      }
    }
    if (!f.alerts && !(pre.alerts == post.alerts)) {
      fail(&v.frame_ok, "frame: alerts modified by an action not listing it");
    }
  }

  if (!v.Ok() && !v.message.empty()) {
    std::ostringstream os;
    os << v.message << " [action " << a.ToString() << "]";
    v.message = os.str();
  }
  return v;
}

Verdict Semantics::Check(const SpecState& pre, const Action& action,
                         const SpecState& post) const {
  return CheckClauses(pre, action, post, /*check_frame=*/true);
}

Verdict Semantics::Apply(const SpecState& pre, const Action& a,
                         SpecState* post) const {
  *post = pre;
  Verdict choice;

  switch (a.kind) {
    case ActionKind::kAcquire:
      post->SetMutex(a.mutex, a.self);
      break;
    case ActionKind::kRelease:
      post->SetMutex(a.mutex, kNil);
      break;
    case ActionKind::kEnqueue:
    case ActionKind::kAlertEnqueue:
      post->SetCondition(a.condition, pre.Condition(a.condition).Insert(a.self));
      post->SetMutex(a.mutex, kNil);
      break;
    case ActionKind::kResume:
    case ActionKind::kAlertResumeReturns:
      post->SetMutex(a.mutex, a.self);
      break;
    case ActionKind::kSignal:
    case ActionKind::kBroadcast: {
      if (!a.removed.SubsetOf(pre.Condition(a.condition))) {
        choice.choice_ok = false;
        choice.message =
            "recorded removed set is not a subset of c [action " +
            a.ToString() + "]";
      }
      post->SetCondition(a.condition,
                         pre.Condition(a.condition).Minus(a.removed));
      break;
    }
    case ActionKind::kP:
      post->SetSemaphore(a.semaphore, SemState::kUnavailable);
      break;
    case ActionKind::kV:
      post->SetSemaphore(a.semaphore, SemState::kAvailable);
      break;
    case ActionKind::kAlert:
      post->alerts = pre.alerts.Insert(a.target);
      break;
    case ActionKind::kTestAlert:
      post->alerts = pre.alerts.Delete(a.self);
      break;
    case ActionKind::kAlertPReturns:
      post->SetSemaphore(a.semaphore, SemState::kUnavailable);
      break;
    case ActionKind::kAlertPRaises:
      post->alerts = pre.alerts.Delete(a.self);
      break;
    case ActionKind::kAlertResumeRaises:
      post->SetMutex(a.mutex, a.self);
      post->alerts = pre.alerts.Delete(a.self);
      if (config_.alert_wait == AlertWaitVariant::kCorrected) {
        post->SetCondition(a.condition,
                           pre.Condition(a.condition).Delete(a.self));
      }
      break;
    case ActionKind::kAcquireTimeout:
    case ActionKind::kPTimeout:
      break;  // UNCHANGED: a timed-out acquire leaves no trace
    case ActionKind::kTimeoutResume:
      post->SetMutex(a.mutex, a.self);
      post->SetCondition(a.condition,
                         pre.Condition(a.condition).Delete(a.self));
      break;
    case ActionKind::kRwAcquire: {
      RwState rw = pre.RwLock(a.rwlock);
      rw.writer = a.self;
      post->SetRwLock(a.rwlock, rw);
      break;
    }
    case ActionKind::kRwRelease: {
      RwState rw = pre.RwLock(a.rwlock);
      rw.writer = kNil;
      post->SetRwLock(a.rwlock, rw);
      break;
    }
    case ActionKind::kRwAcquireShared: {
      RwState rw = pre.RwLock(a.rwlock);
      rw.readers = rw.readers.Insert(a.self);
      post->SetRwLock(a.rwlock, rw);
      break;
    }
    case ActionKind::kRwReleaseShared: {
      RwState rw = pre.RwLock(a.rwlock);
      rw.readers = rw.readers.Delete(a.self);
      post->SetRwLock(a.rwlock, rw);
      break;
    }
    case ActionKind::kRwAcquireTimeout:
    case ActionKind::kRwAcquireSharedTimeout:
      break;  // UNCHANGED: a timed-out acquire leaves no trace
    case ActionKind::kEventSet:
      post->SetEvent(a.event, true);
      break;
    case ActionKind::kEventReset:
      post->SetEvent(a.event, false);
      break;
    case ActionKind::kEventWait:
      break;  // UNCHANGED [e]: a manual-reset grant only observes
    case ActionKind::kEventConsume:
      post->SetEvent(a.event, false);
      break;
    case ActionKind::kPollAny:
      if (a.result) {
        post->SetEvent(a.event, false);
      }
      break;
    case ActionKind::kPollAll:
      for (ObjId e : a.consumed.elements()) {
        post->SetEvent(e, false);
      }
      break;
    case ActionKind::kPollTimeout:
      break;  // UNCHANGED: an expired poll leaves no trace
    case ActionKind::kPollAlertRaises:
      post->alerts = pre.alerts.Delete(a.self);
      break;
  }

  Verdict v = CheckClauses(pre, a, *post, /*check_frame=*/false);
  if (!choice.choice_ok) {
    v.choice_ok = false;
    if (v.message.empty()) {
      v.message = choice.message;
    }
  }
  return v;
}

}  // namespace taos::spec
