// Renders the formal specification as a document in the paper's notation.
//
// The clause text is derived from the same SpecConfig that drives the
// executable semantics, so the rendered document and the checker can never
// drift apart: selecting the original buggy AlertWait variant renders the
// originally published (wrong) clause, the corrected variant renders the
// fixed one, and the pre-release alert policy renders the old deterministic
// RAISES rule. Used as living documentation and by tests that pin down
// which variant says what.

#ifndef TAOS_SRC_SPEC_RENDER_H_
#define TAOS_SRC_SPEC_RENDER_H_

#include <string>

#include "src/spec/semantics.h"

namespace taos::spec {

// The full interface specification (types, procedures, clauses).
std::string RenderSpecification(const SpecConfig& config = {});

// Individual sections, for targeted documentation embedding.
std::string RenderMutexSection();
std::string RenderConditionSection();
std::string RenderSemaphoreSection();
std::string RenderAlertSection(const SpecConfig& config);

}  // namespace taos::spec

#endif  // TAOS_SRC_SPEC_RENDER_H_
