// Conformance fuzzing: randomly generated programs over the full primitive
// set (mutexes, conditions, semaphores, alerts), run on the simulated
// Firefly under random schedules, with every run's serialization checked
// against the executable specification.
//
// Generated programs respect the callers' obligations (REQUIRES clauses) —
// Wait/AlertWait only under the mutex — but use no predicate discipline, so
// fibers may legally block forever; a deadlocked run is an acceptable
// outcome (the spec has no liveness clauses) and its trace prefix must
// still conform.

#ifndef TAOS_SRC_MODEL_FUZZ_H_
#define TAOS_SRC_MODEL_FUZZ_H_

#include <cstdint>

#include "src/model/explorer.h"

namespace taos::model {

struct FuzzShape {
  int fibers = 3;
  int ops_per_fiber = 6;
  int mutexes = 2;
  int conditions = 2;
  int semaphores = 2;
  bool use_alerts = true;
};

// A litmus whose program is a deterministic function of `seed`.
LitmusFactory FuzzProgramLitmus(std::uint64_t seed, FuzzShape shape = {});

}  // namespace taos::model

#endif  // TAOS_SRC_MODEL_FUZZ_H_
