#include "src/model/litmus.h"

#include <memory>
#include <sstream>

#include "src/base/alerted.h"
#include "src/firefly/naive_condition.h"
#include "src/firefly/sync.h"

namespace taos::model {

namespace {

using firefly::Machine;
using firefly::RunResult;

// ---------------------------------------------------------------------------
// Mutual exclusion
// ---------------------------------------------------------------------------

class MutualExclusionTest : public LitmusTest {
 public:
  MutualExclusionTest(int fibers, int iters) : fibers_(fibers), iters_(iters) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    for (int i = 0; i < fibers_; ++i) {
      machine.Fork([this, &machine] {
        for (int k = 0; k < iters_; ++k) {
          mu_->Acquire();
          machine.Step();
          ++in_cs_;
          if (in_cs_ > 1) {
            overlap_ = true;
          }
          machine.Step();
          ++count_;  // the shared update the critical section protects
          machine.Step();
          --in_cs_;
          mu_->Release();
        }
      });
    }
  }

  std::string Verify(const RunResult& result) override {
    if (overlap_) {
      return "two fibers inside the critical section simultaneously";
    }
    if (!result.completed) {
      return "did not complete: " + result.ToString();
    }
    if (count_ != fibers_ * iters_) {
      std::ostringstream os;
      os << "lost updates: " << count_ << " != " << fibers_ * iters_;
      return os.str();
    }
    return "";
  }

 private:
  const int fibers_;
  const int iters_;
  std::unique_ptr<firefly::Mutex> mu_;
  int in_cs_ = 0;
  int count_ = 0;
  bool overlap_ = false;
};

// ---------------------------------------------------------------------------
// Wakeup-waiting race
// ---------------------------------------------------------------------------

class WakeupRaceTest : public LitmusTest {
 public:
  WakeupRaceTest(bool use_eventcount, Tally* tally)
      : use_eventcount_(use_eventcount), tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    cv_->set_use_eventcount(use_eventcount_);
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          while (!flag_) {
            cv_->Wait(*mu_);
            machine.Step();
          }
          mu_->Release();
        },
        /*priority=*/0, "waiter");
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();  // after exiting the critical section, as the
                          // paradigm allows
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->absorbed_wakeups += cv_->absorbed_wakeups();
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "signal lost, waiter stuck: " + result.ToString();
    }
    return "";
  }

 private:
  const bool use_eventcount_;
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
};

// Wakeup race, AlertWait flavour.
class AlertWaitWakeupRaceTest : public LitmusTest {
 public:
  explicit AlertWaitWakeupRaceTest(bool use_eventcount)
      : use_eventcount_(use_eventcount) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    cv_->set_use_eventcount(use_eventcount_);
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          try {
            while (!flag_) {
              firefly::AlertWait(*mu_, *cv_);
              machine.Step();
            }
          } catch (const Alerted&) {
          }
          mu_->Release();
        },
        /*priority=*/0, "waiter");
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "signal lost, alertable waiter stuck: " + result.ToString();
    }
    return "";
  }

 private:
  const bool use_eventcount_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
};

// ---------------------------------------------------------------------------
// Broadcast: real condition variable vs the naive semaphore encoding
// ---------------------------------------------------------------------------

template <typename ConditionT>
class BroadcastTestBase : public LitmusTest {
 public:
  explicit BroadcastTestBase(int waiters) : waiters_(waiters) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<ConditionT>(machine);
    for (int i = 0; i < waiters_; ++i) {
      machine.Fork(
          [this, &machine] {
            mu_->Acquire();
            machine.Step();
            while (!flag_) {
              cv_->Wait(*mu_);
              machine.Step();
            }
            ++resumed_;
            mu_->Release();
          },
          /*priority=*/0, "waiter" + std::to_string(i));
    }
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Broadcast();
        },
        /*priority=*/0, "broadcaster");
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "a waiter missed the broadcast: " + result.ToString();
    }
    if (resumed_ != waiters_) {
      std::ostringstream os;
      os << "only " << resumed_ << "/" << waiters_ << " waiters resumed";
      return os.str();
    }
    return "";
  }

 private:
  const int waiters_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<ConditionT> cv_;
  bool flag_ = false;
  int resumed_ = 0;
};

// One waiter + one signaller over the naive condition (must always work —
// "the one bit in the semaphore would cover the wakeup-waiting race").
class NaiveSignalTest : public LitmusTest {
 public:
  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::NaiveCondition>(machine);
    machine.Fork([this, &machine] {
      mu_->Acquire();
      machine.Step();
      while (!flag_) {
        cv_->Wait(*mu_);
        machine.Step();
      }
      mu_->Release();
    });
    machine.Fork([this, &machine] {
      mu_->Acquire();
      machine.Step();
      flag_ = true;
      mu_->Release();
      cv_->Signal();
    });
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "naive signal lost with a single waiter: " + result.ToString();
    }
    return "";
  }

 private:
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::NaiveCondition> cv_;
  bool flag_ = false;
};

// ---------------------------------------------------------------------------
// AlertWait racing Signal and Alert
// ---------------------------------------------------------------------------

class AlertWaitRaceTest : public LitmusTest {
 public:
  explicit AlertWaitRaceTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    firefly::FiberHandle waiter = machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          try {
            while (!flag_) {
              firefly::AlertWait(*mu_, *cv_);
              machine.Step();
            }
            normal_ = true;
            mu_->Release();
          } catch (const Alerted&) {
            // AlertWait reacquired the mutex before raising.
            alerted_ = true;
            mu_->Release();
          }
        },
        /*priority=*/0, "waiter");
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();
        },
        /*priority=*/0, "signaller");
    machine.Fork([waiter] { firefly::Alert(waiter); }, /*priority=*/0,
                 "alerter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "waiter exited neither normally nor via Alerted";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
  bool normal_ = false;
  bool alerted_ = false;
};

// ---------------------------------------------------------------------------
// Interrupt-style semaphore handoff
// ---------------------------------------------------------------------------

class SemaphoreHandoffTest : public LitmusTest {
 public:
  void Setup(Machine& machine) override {
    sem_ = std::make_unique<firefly::Semaphore>(machine,
                                                /*initially_available=*/false);
    machine.Fork(
        [this, &machine] {
          data_ = 42;
          machine.Step();
          sem_->V();  // the interrupt routine's unblock
        },
        /*priority=*/0, "device");
    machine.Fork(
        [this, &machine] {
          sem_->P();
          machine.Step();
          observed_ = data_;
        },
        /*priority=*/0, "driver");
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "handoff stuck: " + result.ToString();
    }
    if (observed_ != 42) {
      return "driver ran before the device's data was ready";
    }
    return "";
  }

 private:
  std::unique_ptr<firefly::Semaphore> sem_;
  int data_ = 0;
  int observed_ = -1;
};

// ---------------------------------------------------------------------------
// AlertP racing V and Alert
// ---------------------------------------------------------------------------

class AlertPRaceTest : public LitmusTest {
 public:
  explicit AlertPRaceTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    sem_ = std::make_unique<firefly::Semaphore>(machine,
                                                /*initially_available=*/false);
    firefly::FiberHandle taker = machine.Fork(
        [this] {
          try {
            firefly::AlertP(*sem_);
            normal_ = true;
          } catch (const Alerted&) {
            alerted_ = true;
          }
        },
        /*priority=*/0, "taker");
    machine.Fork([this] { sem_->V(); }, /*priority=*/0, "releaser");
    machine.Fork([taker] { firefly::Alert(taker); }, /*priority=*/0,
                 "alerter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "AlertP stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "AlertP neither returned nor raised";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Semaphore> sem_;
  bool normal_ = false;
  bool alerted_ = false;
};

// ---------------------------------------------------------------------------
// The Greg Nelson AlertWait bug path
// ---------------------------------------------------------------------------

class AlertWaitGhostTest : public LitmusTest {
 public:
  explicit AlertWaitGhostTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    firefly::FiberHandle waiter = machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          try {
            // A single AlertWait, no predicate loop: any wakeup ends it, so
            // every schedule terminates and both exits occur across the
            // exploration.
            firefly::AlertWait(*mu_, *cv_);
            normal_ = true;
          } catch (const Alerted&) {
            alerted_ = true;
          }
          mu_->Release();
        },
        /*priority=*/0, "waiter");
    machine.Fork([waiter] { firefly::Alert(waiter); }, /*priority=*/0,
                 "alerter");
    machine.Fork(
        [this, &machine] {
          machine.Step();  // choice point: the Signal may land after the
                           // waiter's Alerted exit — the ghost probe
          cv_->Signal();
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "waiter exited neither normally nor via Alerted";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool normal_ = false;
  bool alerted_ = false;
};

// ---------------------------------------------------------------------------
// The AlertP RETURNS/RAISES overlap
// ---------------------------------------------------------------------------

class AlertPOverlapTest : public LitmusTest {
 public:
  explicit AlertPOverlapTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    sem_ = std::make_unique<firefly::Semaphore>(machine,
                                                /*initially_available=*/true);
    firefly::FiberHandle taker = machine.Fork(
        [this] {
          try {
            firefly::AlertP(*sem_);
            normal_ = true;
            // An alert still pending after a return means both WHEN clauses
            // held and the implementation chose RETURNS.
            overlap_ = firefly::TestAlert();
          } catch (const Alerted&) {
            alerted_ = true;
          }
        },
        /*priority=*/0, "taker");
    machine.Fork([taker] { firefly::Alert(taker); }, /*priority=*/0,
                 "alerter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->returns_with_alert_pending += overlap_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "AlertP stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "AlertP neither returned nor raised";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Semaphore> sem_;
  bool normal_ = false;
  bool alerted_ = false;
  bool overlap_ = false;
};

// ---------------------------------------------------------------------------
// One Signal may unblock more than one waiter
// ---------------------------------------------------------------------------

class SignalUnblocksManyTest : public LitmusTest {
 public:
  explicit SignalUnblocksManyTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    for (int i = 0; i < 2; ++i) {
      machine.Fork(
          [this, &machine] {
            mu_->Acquire();
            machine.Step();
            if (!flag_) {
              cv_->Wait(*mu_);
            }
            machine.Step();
            ++resumed_;
            mu_->Release();
          },
          /*priority=*/0, "waiter" + std::to_string(i));
    }
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();  // exactly one Signal for two waiters
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
      tally_->multi_unblock_signals += cv_->multi_unblock_signals();
      tally_->absorbed_wakeups += cv_->absorbed_wakeups();
    }
    // The spec promises no liveness: with a single Signal one waiter may
    // stay blocked forever (that is why Broadcast exists). Only safety is
    // checked here; the interesting accounting is in the tally.
    if (result.completed && resumed_ != 2) {
      return "completed but a waiter did not run its epilogue";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
  int resumed_ = 0;
};

// ---------------------------------------------------------------------------
// MCS handoff racing a timed-out waiter's abandon
// ---------------------------------------------------------------------------

// The queue is modelled at the granularity of its two shared words: the
// tail (-1 = null, 0 = holder's node, 1 = waiter's node) and the waiter's
// node state (0 waiting, 1 granted, 2 abandoned). Code between Step()
// boundaries is atomic, which is exactly how the real protocol's exchanges
// and CASes behave; the scenario is loop-free, so DFS exhausts it.
class McsTimeoutAbandonTest : public LitmusTest {
 public:
  McsTimeoutAbandonTest(bool safe_abandon, Tally* tally)
      : safe_abandon_(safe_abandon), tally_(tally) {}

  void Setup(Machine& machine) override {
    machine.Fork(
        [this, &machine] {
          machine.Step();
          // Release. No successor visible: swing the tail to null and exit.
          if (tail_ == 0) {
            tail_ = -1;
            released_free_ = true;
            return;
          }
          // Successor identified, grant not yet written — the seam the
          // runtime marks with chaos point kMcsReleaseToSuccessor.
          machine.Step();
          if (wnode_ == 0) {
            wnode_ = 1;  // the grant: ownership transfers to the waiter
            handed_off_ = true;
          } else {
            // The waiter abandoned first; reclaim the queue.
            tail_ = -1;
            reclaimed_ = true;
          }
        },
        /*priority=*/0, "holder");
    machine.Fork(
        [this, &machine] {
          machine.Step();
          // Enqueue: exchange the tail.
          const int prev = tail_;
          tail_ = 1;
          if (prev == -1) {
            // The holder released before we swapped: the lock was free and
            // the exchange handed it to us directly. Release it.
            took_direct_ = true;
            machine.Step();
            if (tail_ == 1) {
              tail_ = -1;
            }
            return;
          }
          // Queued behind the holder — and the deadline has already passed,
          // so instead of spinning on the node we abandon it.
          machine.Step();
          if (safe_abandon_) {
            if (wnode_ == 0) {
              wnode_ = 2;  // CAS waiting -> abandoned won: we left in time
              abandoned_ = true;
            } else {
              // The grant beat the abandon: we own the lock whether we
              // wanted it or not, and must pass it on, not walk away.
              took_after_grant_ = true;
              machine.Step();
              if (tail_ == 1) {
                tail_ = -1;
              }
            }
          } else {
            // The bug: a blind store, no re-test of the shared state the
            // timeout decision was based on (rule 3's mistake, transplanted
            // to cancellation). If the grant already landed it is erased.
            wnode_ = 2;
            abandoned_ = true;
          }
        },
        /*priority=*/0, "timed-waiter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
      tally_->timeout_abandons += abandoned_ ? 1 : 0;
      tally_->timeout_grant_races += took_after_grant_ ? 1 : 0;
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    if (handed_off_ && abandoned_) {
      return "lost handoff: the release granted the lock to a node whose "
             "waiter abandoned it; no thread holds the lock and none can "
             "acquire it";
    }
    const int dispositions = (released_free_ ? 1 : 0) + (handed_off_ ? 1 : 0) +
                             (reclaimed_ ? 1 : 0);
    if (dispositions != 1) {
      return "the release must end in exactly one disposition";
    }
    if (handed_off_ && !took_after_grant_ && !took_direct_) {
      return "granted lock never accepted";  // unreachable in safe mode
    }
    return "";
  }

 private:
  const bool safe_abandon_;
  Tally* const tally_;
  int tail_ = 0;   // holder's node is the tail: held, uncontended
  int wnode_ = 0;  // waiting
  bool released_free_ = false;
  bool handed_off_ = false;
  bool reclaimed_ = false;
  bool took_direct_ = false;
  bool took_after_grant_ = false;
  bool abandoned_ = false;
};

// ---------------------------------------------------------------------------
// Reader-preference rwlock: safety always, writer starvation tallied
// ---------------------------------------------------------------------------

class RwWriterStarvationTest : public LitmusTest {
 public:
  RwWriterStarvationTest(int readers, int rounds, Tally* tally)
      : readers_(readers), rounds_(rounds), tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    for (int i = 0; i < readers_; ++i) {
      machine.Fork(
          [this, &machine] {
            for (int k = 0; k < rounds_; ++k) {
              mu_->Acquire();
              machine.Step();
              // Reader preference: only an ACTIVE writer blocks admission;
              // a waiting one is streamed past (and tallied).
              while (writer_active_) {
                cv_->Wait(*mu_);
                machine.Step();
              }
              ++readers_active_;
              if (writer_waiting_) {
                ++admitted_past_writer_;
              }
              mu_->Release();
              machine.Step();  // the read section, outside mu
              if (writer_in_cs_) {
                overlap_ = true;
              }
              mu_->Acquire();
              machine.Step();
              if (--readers_active_ == 0) {
                cv_->Broadcast();
              }
              mu_->Release();
            }
          },
          /*priority=*/0, "reader" + std::to_string(i));
    }
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          writer_waiting_ = true;
          while (readers_active_ > 0 || writer_active_) {
            cv_->Wait(*mu_);
            machine.Step();
          }
          writer_waiting_ = false;
          writer_active_ = true;
          mu_->Release();
          machine.Step();  // the write section
          writer_in_cs_ = true;
          if (readers_active_ > 0) {
            overlap_ = true;
          }
          machine.Step();
          writer_in_cs_ = false;
          mu_->Acquire();
          machine.Step();
          writer_active_ = false;
          writer_acquired_ = true;
          cv_->Broadcast();
          mu_->Release();
        },
        /*priority=*/0, "writer");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
      tally_->readers_admitted_past_writer += admitted_past_writer_;
      tally_->writer_acquisitions += writer_acquired_ ? 1 : 0;
    }
    if (overlap_) {
      return "a writer held the lock while a reader was inside its section";
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    if (!writer_acquired_) {
      return "completed but the writer never acquired";
    }
    return "";
  }

 private:
  const int readers_;
  const int rounds_;
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  int readers_active_ = 0;
  std::uint64_t admitted_past_writer_ = 0;
  bool writer_waiting_ = false;
  bool writer_active_ = false;
  bool writer_in_cs_ = false;
  bool writer_acquired_ = false;
  bool overlap_ = false;
};

// ---------------------------------------------------------------------------
// Poll double-grant: two concurrent Sets, one WaitAny, exactly one consume
// ---------------------------------------------------------------------------

// Modelled at the granularity of the protocol's shared words: the two
// auto-reset flags and the waiter's "still parked" state. The scenario is
// loop-free (the waiter performs one registered scan; finding nothing is
// the legal outcome where it would re-park), so DFS exhausts it. The
// property checked is pulse conservation: two Sets were emitted, one
// WaitAny grant can consume at most one, so flags-still-set + grants must
// equal 2 at the end of every schedule.
class PollDoubleGrantTest : public LitmusTest {
 public:
  PollDoubleGrantTest(bool waiter_consumes, Tally* tally)
      : waiter_consumes_(waiter_consumes), tally_(tally) {}

  void Setup(Machine& machine) override {
    auto setter = [this, &machine](bool* flag) {
      machine.Step();
      if (waiter_consumes_) {
        // Notify-only (shipped): publish the flag; the wakeup is a hint.
        *flag = true;
        machine.Step();
        if (parked_) {
          ++notifies_;
        }
      } else {
        // Handoff (buggy): publish, then — if the waiter still looks
        // parked — consume the pulse on its behalf and hand it a grant.
        // The test of parked_ and the consume are separate steps, exactly
        // the window two Sets can both fall into.
        *flag = true;
        machine.Step();
        if (parked_) {
          machine.Step();
          *flag = false;  // consumed for the waiter
          ++handed_;
        }
      }
    };
    machine.Fork([setter, this] { setter(&aflag_); }, /*priority=*/0,
                 "setter-a");
    machine.Fork([setter, this] { setter(&bflag_); }, /*priority=*/0,
                 "setter-b");
    machine.Fork(
        [this, &machine] {
          // One registered scan of a WaitAny round. Claiming unparks.
          machine.Step();
          parked_ = false;
          if (waiter_consumes_) {
            machine.Step();
            if (aflag_) {
              aflag_ = false;  // the waiter's own exchange arbitrates
              ++grants_;
            } else {
              machine.Step();
              if (bflag_) {
                bflag_ = false;
                ++grants_;
              }
            }
          } else {
            machine.Step();
            if (handed_ > 0) {
              ++grants_;  // accepts ONE grant; a second handoff is orphaned
            }
          }
        },
        /*priority=*/0, "waiter");
  }

  std::string Verify(const RunResult& result) override {
    const int remaining = (aflag_ ? 1 : 0) + (bflag_ ? 1 : 0);
    if (tally_ != nullptr) {
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
      if (handed_ == 2 || notifies_ == 2) {
        ++tally_->poll_concurrent_sets;  // both Sets raced this one wait
      }
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    if (waiter_consumes_) {
      // Two pulses were published; one registered scan consumes at most
      // one; the rest must still be on the flags.
      if (remaining + grants_ != 2) {
        return "pulse conservation violated in the notify-only protocol";
      }
    } else if (handed_ > grants_) {
      // A pulse consumed on the waiter's behalf that the single grant
      // never delivered — in the worst schedule both Sets fall into the
      // window (handed_ == 2) and one WaitAny eats two pulses.
      return "double grant: a Set consumed a pulse for a wait that never "
             "received it; no future waiter can observe that pulse";
    }
    return "";
  }

 private:
  const bool waiter_consumes_;
  Tally* const tally_;
  bool aflag_ = false;
  bool bflag_ = false;
  bool parked_ = true;  // the waiter starts registered and parked
  int notifies_ = 0;
  int handed_ = 0;
  int grants_ = 0;
};

// ---------------------------------------------------------------------------
// Poll deregistration racing an in-flight notification
// ---------------------------------------------------------------------------

// A WaitAny waiter just granted on A deregisters from B exactly as Set(B)
// lands. The model gives Set handoff flavour — a pulse delivered INTO a
// registered cell — because that is the design in which the window exists;
// the cell is one shared word (0 waiting, 1 notified-with-pulse, 2
// cancelled), as in McsTimeoutAbandonTest. Safe cancellation is a CAS
// waiting -> cancelled whose loser re-publishes the delivered pulse;
// the buggy variant is the blind store.
class PollDeregLostWakeupTest : public LitmusTest {
 public:
  PollDeregLostWakeupTest(bool safe_cancel, Tally* tally)
      : safe_cancel_(safe_cancel), tally_(tally) {}

  void Setup(Machine& machine) override {
    machine.Fork(
        [this, &machine] {
          // Set(B): deliver into the registered cell, else leave the flag.
          machine.Step();
          if (cell_ == 0) {
            cell_ = 1;  // the pulse now lives in the cell
            delivered_ = true;
          } else {
            bflag_ = true;
          }
        },
        /*priority=*/0, "setter-b");
    machine.Fork(
        [this, &machine] {
          // The granted waiter's deregistration from B.
          machine.Step();
          if (safe_cancel_) {
            if (cell_ == 0) {
              cell_ = 2;  // CAS won: cancelled before any delivery
              cancelled_clean_ = true;
            } else {
              // Lost to the notification: the pulse is in our cell and we
              // no longer want it — put it back where a future waiter can
              // find it.
              lost_to_resume_ = true;
              machine.Step();
              bflag_ = true;
              cell_ = 2;
            }
          } else {
            // The bug: no re-test of the word the decision was based on.
            cell_ = 2;
            cancelled_clean_ = true;
          }
        },
        /*priority=*/0, "granted-waiter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
      tally_->poll_dereg_lost_to_resume += lost_to_resume_ ? 1 : 0;
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    // Pulse conservation: exactly one Set happened, so the pulse must be
    // observable — on the flag, or still in a live (uncancelled) cell.
    const bool observable = bflag_ || cell_ == 1;
    if (!observable) {
      return "lost wakeup: Set(B) delivered its pulse into the waiter's "
             "cell and the deregistration destroyed it; the next wait on B "
             "blocks forever";
    }
    return "";
  }

 private:
  const bool safe_cancel_;
  Tally* const tally_;
  int cell_ = 0;  // the waiter's registration cell on B: waiting
  bool bflag_ = false;
  bool delivered_ = false;
  bool cancelled_clean_ = false;
  bool lost_to_resume_ = false;
};

// ---------------------------------------------------------------------------
// Dining philosophers
// ---------------------------------------------------------------------------

class DiningPhilosophersTest : public LitmusTest {
 public:
  DiningPhilosophersTest(int philosophers, bool ordered)
      : n_(philosophers), ordered_(ordered) {}

  void Setup(Machine& machine) override {
    for (int i = 0; i < n_; ++i) {
      forks_.push_back(std::make_unique<firefly::Mutex>(machine));
    }
    for (int i = 0; i < n_; ++i) {
      machine.Fork(
          [this, &machine, i] {
            int first = i;
            int second = (i + 1) % n_;
            if (ordered_ && second < first) {
              std::swap(first, second);  // total order on fork ids
            }
            forks_[static_cast<std::size_t>(first)]->Acquire();
            machine.Step();  // reach for the other fork
            forks_[static_cast<std::size_t>(second)]->Acquire();
            machine.Step();  // eat
            ++meals_;
            forks_[static_cast<std::size_t>(second)]->Release();
            forks_[static_cast<std::size_t>(first)]->Release();
          },
          /*priority=*/0, "phil" + std::to_string(i));
    }
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "philosophers deadlocked: " + result.ToString();
    }
    if (meals_ != n_) {
      return "not everyone ate";
    }
    return "";
  }

 private:
  const int n_;
  const bool ordered_;
  std::vector<std::unique_ptr<firefly::Mutex>> forks_;
  int meals_ = 0;
};

}  // namespace

LitmusFactory McsTimeoutAbandonLitmus(bool safe_abandon, Tally* tally) {
  return [safe_abandon, tally] {
    return std::make_unique<McsTimeoutAbandonTest>(safe_abandon, tally);
  };
}

LitmusFactory PollDoubleGrantLitmus(bool waiter_consumes, Tally* tally) {
  return [waiter_consumes, tally] {
    return std::make_unique<PollDoubleGrantTest>(waiter_consumes, tally);
  };
}

LitmusFactory PollDeregLostWakeupLitmus(bool safe_cancel, Tally* tally) {
  return [safe_cancel, tally] {
    return std::make_unique<PollDeregLostWakeupTest>(safe_cancel, tally);
  };
}

LitmusFactory RwWriterStarvationLitmus(int readers, int rounds, Tally* tally) {
  return [readers, rounds, tally] {
    return std::make_unique<RwWriterStarvationTest>(readers, rounds, tally);
  };
}

LitmusFactory DiningPhilosophersLitmus(int philosophers, bool ordered) {
  return [philosophers, ordered] {
    return std::make_unique<DiningPhilosophersTest>(philosophers, ordered);
  };
}

LitmusFactory MutualExclusionLitmus(int fibers, int iters) {
  return [fibers, iters] {
    return std::make_unique<MutualExclusionTest>(fibers, iters);
  };
}

LitmusFactory WakeupRaceLitmus(bool use_eventcount, Tally* tally) {
  return [use_eventcount, tally] {
    return std::make_unique<WakeupRaceTest>(use_eventcount, tally);
  };
}

LitmusFactory AlertWaitWakeupRaceLitmus(bool use_eventcount) {
  return [use_eventcount] {
    return std::make_unique<AlertWaitWakeupRaceTest>(use_eventcount);
  };
}

LitmusFactory BroadcastLitmus(int waiters) {
  return [waiters] {
    return std::make_unique<BroadcastTestBase<firefly::Condition>>(waiters);
  };
}

LitmusFactory NaiveBroadcastLitmus(int waiters) {
  return [waiters] {
    return std::make_unique<BroadcastTestBase<firefly::NaiveCondition>>(
        waiters);
  };
}

LitmusFactory NaiveSignalLitmus() {
  return [] { return std::make_unique<NaiveSignalTest>(); };
}

LitmusFactory AlertWaitRaceLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertWaitRaceTest>(tally); };
}

LitmusFactory SemaphoreHandoffLitmus() {
  return [] { return std::make_unique<SemaphoreHandoffTest>(); };
}

LitmusFactory AlertPRaceLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertPRaceTest>(tally); };
}

LitmusFactory AlertWaitGhostLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertWaitGhostTest>(tally); };
}

LitmusFactory AlertPOverlapLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertPOverlapTest>(tally); };
}

LitmusFactory SignalUnblocksManyLitmus(Tally* tally) {
  return [tally] { return std::make_unique<SignalUnblocksManyTest>(tally); };
}

}  // namespace taos::model
