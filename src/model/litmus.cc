#include "src/model/litmus.h"

#include <memory>
#include <sstream>

#include "src/base/alerted.h"
#include "src/firefly/naive_condition.h"
#include "src/firefly/sync.h"

namespace taos::model {

namespace {

using firefly::Machine;
using firefly::RunResult;

// ---------------------------------------------------------------------------
// Mutual exclusion
// ---------------------------------------------------------------------------

class MutualExclusionTest : public LitmusTest {
 public:
  MutualExclusionTest(int fibers, int iters) : fibers_(fibers), iters_(iters) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    for (int i = 0; i < fibers_; ++i) {
      machine.Fork([this, &machine] {
        for (int k = 0; k < iters_; ++k) {
          mu_->Acquire();
          machine.Step();
          ++in_cs_;
          if (in_cs_ > 1) {
            overlap_ = true;
          }
          machine.Step();
          ++count_;  // the shared update the critical section protects
          machine.Step();
          --in_cs_;
          mu_->Release();
        }
      });
    }
  }

  std::string Verify(const RunResult& result) override {
    if (overlap_) {
      return "two fibers inside the critical section simultaneously";
    }
    if (!result.completed) {
      return "did not complete: " + result.ToString();
    }
    if (count_ != fibers_ * iters_) {
      std::ostringstream os;
      os << "lost updates: " << count_ << " != " << fibers_ * iters_;
      return os.str();
    }
    return "";
  }

 private:
  const int fibers_;
  const int iters_;
  std::unique_ptr<firefly::Mutex> mu_;
  int in_cs_ = 0;
  int count_ = 0;
  bool overlap_ = false;
};

// ---------------------------------------------------------------------------
// Wakeup-waiting race
// ---------------------------------------------------------------------------

class WakeupRaceTest : public LitmusTest {
 public:
  WakeupRaceTest(bool use_eventcount, Tally* tally)
      : use_eventcount_(use_eventcount), tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    cv_->set_use_eventcount(use_eventcount_);
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          while (!flag_) {
            cv_->Wait(*mu_);
            machine.Step();
          }
          mu_->Release();
        },
        /*priority=*/0, "waiter");
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();  // after exiting the critical section, as the
                          // paradigm allows
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->absorbed_wakeups += cv_->absorbed_wakeups();
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "signal lost, waiter stuck: " + result.ToString();
    }
    return "";
  }

 private:
  const bool use_eventcount_;
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
};

// Wakeup race, AlertWait flavour.
class AlertWaitWakeupRaceTest : public LitmusTest {
 public:
  explicit AlertWaitWakeupRaceTest(bool use_eventcount)
      : use_eventcount_(use_eventcount) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    cv_->set_use_eventcount(use_eventcount_);
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          try {
            while (!flag_) {
              firefly::AlertWait(*mu_, *cv_);
              machine.Step();
            }
          } catch (const Alerted&) {
          }
          mu_->Release();
        },
        /*priority=*/0, "waiter");
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "signal lost, alertable waiter stuck: " + result.ToString();
    }
    return "";
  }

 private:
  const bool use_eventcount_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
};

// ---------------------------------------------------------------------------
// Broadcast: real condition variable vs the naive semaphore encoding
// ---------------------------------------------------------------------------

template <typename ConditionT>
class BroadcastTestBase : public LitmusTest {
 public:
  explicit BroadcastTestBase(int waiters) : waiters_(waiters) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<ConditionT>(machine);
    for (int i = 0; i < waiters_; ++i) {
      machine.Fork(
          [this, &machine] {
            mu_->Acquire();
            machine.Step();
            while (!flag_) {
              cv_->Wait(*mu_);
              machine.Step();
            }
            ++resumed_;
            mu_->Release();
          },
          /*priority=*/0, "waiter" + std::to_string(i));
    }
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Broadcast();
        },
        /*priority=*/0, "broadcaster");
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "a waiter missed the broadcast: " + result.ToString();
    }
    if (resumed_ != waiters_) {
      std::ostringstream os;
      os << "only " << resumed_ << "/" << waiters_ << " waiters resumed";
      return os.str();
    }
    return "";
  }

 private:
  const int waiters_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<ConditionT> cv_;
  bool flag_ = false;
  int resumed_ = 0;
};

// One waiter + one signaller over the naive condition (must always work —
// "the one bit in the semaphore would cover the wakeup-waiting race").
class NaiveSignalTest : public LitmusTest {
 public:
  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::NaiveCondition>(machine);
    machine.Fork([this, &machine] {
      mu_->Acquire();
      machine.Step();
      while (!flag_) {
        cv_->Wait(*mu_);
        machine.Step();
      }
      mu_->Release();
    });
    machine.Fork([this, &machine] {
      mu_->Acquire();
      machine.Step();
      flag_ = true;
      mu_->Release();
      cv_->Signal();
    });
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "naive signal lost with a single waiter: " + result.ToString();
    }
    return "";
  }

 private:
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::NaiveCondition> cv_;
  bool flag_ = false;
};

// ---------------------------------------------------------------------------
// AlertWait racing Signal and Alert
// ---------------------------------------------------------------------------

class AlertWaitRaceTest : public LitmusTest {
 public:
  explicit AlertWaitRaceTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    firefly::FiberHandle waiter = machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          try {
            while (!flag_) {
              firefly::AlertWait(*mu_, *cv_);
              machine.Step();
            }
            normal_ = true;
            mu_->Release();
          } catch (const Alerted&) {
            // AlertWait reacquired the mutex before raising.
            alerted_ = true;
            mu_->Release();
          }
        },
        /*priority=*/0, "waiter");
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();
        },
        /*priority=*/0, "signaller");
    machine.Fork([waiter] { firefly::Alert(waiter); }, /*priority=*/0,
                 "alerter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "waiter exited neither normally nor via Alerted";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
  bool normal_ = false;
  bool alerted_ = false;
};

// ---------------------------------------------------------------------------
// Interrupt-style semaphore handoff
// ---------------------------------------------------------------------------

class SemaphoreHandoffTest : public LitmusTest {
 public:
  void Setup(Machine& machine) override {
    sem_ = std::make_unique<firefly::Semaphore>(machine,
                                                /*initially_available=*/false);
    machine.Fork(
        [this, &machine] {
          data_ = 42;
          machine.Step();
          sem_->V();  // the interrupt routine's unblock
        },
        /*priority=*/0, "device");
    machine.Fork(
        [this, &machine] {
          sem_->P();
          machine.Step();
          observed_ = data_;
        },
        /*priority=*/0, "driver");
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "handoff stuck: " + result.ToString();
    }
    if (observed_ != 42) {
      return "driver ran before the device's data was ready";
    }
    return "";
  }

 private:
  std::unique_ptr<firefly::Semaphore> sem_;
  int data_ = 0;
  int observed_ = -1;
};

// ---------------------------------------------------------------------------
// AlertP racing V and Alert
// ---------------------------------------------------------------------------

class AlertPRaceTest : public LitmusTest {
 public:
  explicit AlertPRaceTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    sem_ = std::make_unique<firefly::Semaphore>(machine,
                                                /*initially_available=*/false);
    firefly::FiberHandle taker = machine.Fork(
        [this] {
          try {
            firefly::AlertP(*sem_);
            normal_ = true;
          } catch (const Alerted&) {
            alerted_ = true;
          }
        },
        /*priority=*/0, "taker");
    machine.Fork([this] { sem_->V(); }, /*priority=*/0, "releaser");
    machine.Fork([taker] { firefly::Alert(taker); }, /*priority=*/0,
                 "alerter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "AlertP stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "AlertP neither returned nor raised";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Semaphore> sem_;
  bool normal_ = false;
  bool alerted_ = false;
};

// ---------------------------------------------------------------------------
// The Greg Nelson AlertWait bug path
// ---------------------------------------------------------------------------

class AlertWaitGhostTest : public LitmusTest {
 public:
  explicit AlertWaitGhostTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    firefly::FiberHandle waiter = machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          try {
            // A single AlertWait, no predicate loop: any wakeup ends it, so
            // every schedule terminates and both exits occur across the
            // exploration.
            firefly::AlertWait(*mu_, *cv_);
            normal_ = true;
          } catch (const Alerted&) {
            alerted_ = true;
          }
          mu_->Release();
        },
        /*priority=*/0, "waiter");
    machine.Fork([waiter] { firefly::Alert(waiter); }, /*priority=*/0,
                 "alerter");
    machine.Fork(
        [this, &machine] {
          machine.Step();  // choice point: the Signal may land after the
                           // waiter's Alerted exit — the ghost probe
          cv_->Signal();
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "waiter exited neither normally nor via Alerted";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool normal_ = false;
  bool alerted_ = false;
};

// ---------------------------------------------------------------------------
// The AlertP RETURNS/RAISES overlap
// ---------------------------------------------------------------------------

class AlertPOverlapTest : public LitmusTest {
 public:
  explicit AlertPOverlapTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    sem_ = std::make_unique<firefly::Semaphore>(machine,
                                                /*initially_available=*/true);
    firefly::FiberHandle taker = machine.Fork(
        [this] {
          try {
            firefly::AlertP(*sem_);
            normal_ = true;
            // An alert still pending after a return means both WHEN clauses
            // held and the implementation chose RETURNS.
            overlap_ = firefly::TestAlert();
          } catch (const Alerted&) {
            alerted_ = true;
          }
        },
        /*priority=*/0, "taker");
    machine.Fork([taker] { firefly::Alert(taker); }, /*priority=*/0,
                 "alerter");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->normal_exits += normal_ ? 1 : 0;
      tally_->alerted_exits += alerted_ ? 1 : 0;
      tally_->returns_with_alert_pending += overlap_ ? 1 : 0;
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
    }
    if (!result.completed) {
      return "AlertP stuck: " + result.ToString();
    }
    if (!normal_ && !alerted_) {
      return "AlertP neither returned nor raised";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Semaphore> sem_;
  bool normal_ = false;
  bool alerted_ = false;
  bool overlap_ = false;
};

// ---------------------------------------------------------------------------
// One Signal may unblock more than one waiter
// ---------------------------------------------------------------------------

class SignalUnblocksManyTest : public LitmusTest {
 public:
  explicit SignalUnblocksManyTest(Tally* tally) : tally_(tally) {}

  void Setup(Machine& machine) override {
    mu_ = std::make_unique<firefly::Mutex>(machine);
    cv_ = std::make_unique<firefly::Condition>(machine);
    for (int i = 0; i < 2; ++i) {
      machine.Fork(
          [this, &machine] {
            mu_->Acquire();
            machine.Step();
            if (!flag_) {
              cv_->Wait(*mu_);
            }
            machine.Step();
            ++resumed_;
            mu_->Release();
          },
          /*priority=*/0, "waiter" + std::to_string(i));
    }
    machine.Fork(
        [this, &machine] {
          mu_->Acquire();
          machine.Step();
          flag_ = true;
          mu_->Release();
          cv_->Signal();  // exactly one Signal for two waiters
        },
        /*priority=*/0, "signaller");
  }

  std::string Verify(const RunResult& result) override {
    if (tally_ != nullptr) {
      tally_->completions += result.completed ? 1 : 0;
      tally_->deadlocks += result.deadlock ? 1 : 0;
      tally_->multi_unblock_signals += cv_->multi_unblock_signals();
      tally_->absorbed_wakeups += cv_->absorbed_wakeups();
    }
    // The spec promises no liveness: with a single Signal one waiter may
    // stay blocked forever (that is why Broadcast exists). Only safety is
    // checked here; the interesting accounting is in the tally.
    if (result.completed && resumed_ != 2) {
      return "completed but a waiter did not run its epilogue";
    }
    return "";
  }

 private:
  Tally* const tally_;
  std::unique_ptr<firefly::Mutex> mu_;
  std::unique_ptr<firefly::Condition> cv_;
  bool flag_ = false;
  int resumed_ = 0;
};

// ---------------------------------------------------------------------------
// Dining philosophers
// ---------------------------------------------------------------------------

class DiningPhilosophersTest : public LitmusTest {
 public:
  DiningPhilosophersTest(int philosophers, bool ordered)
      : n_(philosophers), ordered_(ordered) {}

  void Setup(Machine& machine) override {
    for (int i = 0; i < n_; ++i) {
      forks_.push_back(std::make_unique<firefly::Mutex>(machine));
    }
    for (int i = 0; i < n_; ++i) {
      machine.Fork(
          [this, &machine, i] {
            int first = i;
            int second = (i + 1) % n_;
            if (ordered_ && second < first) {
              std::swap(first, second);  // total order on fork ids
            }
            forks_[static_cast<std::size_t>(first)]->Acquire();
            machine.Step();  // reach for the other fork
            forks_[static_cast<std::size_t>(second)]->Acquire();
            machine.Step();  // eat
            ++meals_;
            forks_[static_cast<std::size_t>(second)]->Release();
            forks_[static_cast<std::size_t>(first)]->Release();
          },
          /*priority=*/0, "phil" + std::to_string(i));
    }
  }

  std::string Verify(const RunResult& result) override {
    if (!result.completed) {
      return "philosophers deadlocked: " + result.ToString();
    }
    if (meals_ != n_) {
      return "not everyone ate";
    }
    return "";
  }

 private:
  const int n_;
  const bool ordered_;
  std::vector<std::unique_ptr<firefly::Mutex>> forks_;
  int meals_ = 0;
};

}  // namespace

LitmusFactory DiningPhilosophersLitmus(int philosophers, bool ordered) {
  return [philosophers, ordered] {
    return std::make_unique<DiningPhilosophersTest>(philosophers, ordered);
  };
}

LitmusFactory MutualExclusionLitmus(int fibers, int iters) {
  return [fibers, iters] {
    return std::make_unique<MutualExclusionTest>(fibers, iters);
  };
}

LitmusFactory WakeupRaceLitmus(bool use_eventcount, Tally* tally) {
  return [use_eventcount, tally] {
    return std::make_unique<WakeupRaceTest>(use_eventcount, tally);
  };
}

LitmusFactory AlertWaitWakeupRaceLitmus(bool use_eventcount) {
  return [use_eventcount] {
    return std::make_unique<AlertWaitWakeupRaceTest>(use_eventcount);
  };
}

LitmusFactory BroadcastLitmus(int waiters) {
  return [waiters] {
    return std::make_unique<BroadcastTestBase<firefly::Condition>>(waiters);
  };
}

LitmusFactory NaiveBroadcastLitmus(int waiters) {
  return [waiters] {
    return std::make_unique<BroadcastTestBase<firefly::NaiveCondition>>(
        waiters);
  };
}

LitmusFactory NaiveSignalLitmus() {
  return [] { return std::make_unique<NaiveSignalTest>(); };
}

LitmusFactory AlertWaitRaceLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertWaitRaceTest>(tally); };
}

LitmusFactory SemaphoreHandoffLitmus() {
  return [] { return std::make_unique<SemaphoreHandoffTest>(); };
}

LitmusFactory AlertPRaceLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertPRaceTest>(tally); };
}

LitmusFactory AlertWaitGhostLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertWaitGhostTest>(tally); };
}

LitmusFactory AlertPOverlapLitmus(Tally* tally) {
  return [tally] { return std::make_unique<AlertPOverlapTest>(tally); };
}

LitmusFactory SignalUnblocksManyLitmus(Tally* tally) {
  return [tally] { return std::make_unique<SignalUnblocksManyTest>(tally); };
}

}  // namespace taos::model
