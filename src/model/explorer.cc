#include "src/model/explorer.h"

#include <sstream>

#include "src/base/check.h"
#include "src/spec/trace.h"

namespace taos::model {

std::size_t ReplayChooser::Choose(
    const std::vector<firefly::Fiber*>& runnable) {
  TAOS_CHECK(!runnable.empty());
  std::uint32_t pick = 0;
  if (pos_ < prefix_.size()) {
    pick = prefix_[pos_];
    // A mismatched prefix means the machine was not deterministic — a bug.
    TAOS_CHECK(pick < runnable.size());
  } else {
    prefix_.push_back(0);
  }
  alternatives_.push_back(runnable.size());
  ++pos_;
  return pick;
}

std::string ExplorationResult::ToString() const {
  std::ostringstream os;
  os << runs << " runs (" << completions << " completed, " << deadlocks
     << " deadlocked), max depth " << max_depth
     << (exhausted ? ", exhausted" : ", budget hit") << ", " << violations
     << " violations";
  if (violations > 0) {
    os << "; first: " << first_violation;
  }
  return os.str();
}

Explorer::RunOutcome Explorer::RunOnce(
    const LitmusFactory& factory, const std::vector<std::uint32_t>& prefix,
    firefly::Chooser* chooser_override,
    std::vector<spec::Action>* trace_out) const {
  RunOutcome out;
  ReplayChooser replay(prefix);

  spec::Trace trace;  // must outlive the machine (teardown may emit)
  firefly::MachineConfig cfg = options_.machine;
  cfg.chooser = chooser_override != nullptr
                    ? chooser_override
                    : static_cast<firefly::Chooser*>(&replay);
  if (options_.check_traces || trace_out != nullptr) {
    cfg.trace = &trace;
  }

  firefly::Machine machine(cfg);
  std::unique_ptr<LitmusTest> test = factory();
  test->Setup(machine);
  out.result = machine.Run();
  out.verdict = test->Verify(out.result);

  if (out.verdict.empty() && out.result.hit_step_limit) {
    out.verdict = "hit step limit (possible livelock)";
  }
  if (out.verdict.empty() && options_.check_traces) {
    spec::TraceChecker checker(options_.spec_config);
    spec::CheckResult cr = checker.CheckTrace(trace);
    if (!cr.ok) {
      std::ostringstream os;
      os << "spec violation at action " << cr.failed_index << ": "
         << cr.message;
      out.verdict = os.str();
    }
  }
  if (trace_out != nullptr) {
    *trace_out = trace.Actions();
  }
  if (chooser_override == nullptr) {
    out.schedule = replay.schedule();
    out.alternatives = replay.alternatives();
  }
  // The litmus test (owning the sync objects) must be destroyed before the
  // machine, and the machine before the trace.
  test.reset();
  return out;
}

ExplorationResult Explorer::Explore(const LitmusFactory& factory) const {
  ExplorationResult result;
  std::vector<std::uint32_t> prefix;
  for (;;) {
    if (result.runs >= options_.max_runs) {
      break;
    }
    RunOutcome out = RunOnce(factory, prefix, nullptr, nullptr);
    ++result.runs;
    result.max_depth = std::max(result.max_depth, out.schedule.size());
    if (out.result.completed) {
      ++result.completions;
    }
    if (out.result.deadlock) {
      ++result.deadlocks;
    }
    if (!out.verdict.empty()) {
      ++result.violations;
      if (result.violations == 1) {
        result.first_violation = out.verdict;
        result.counterexample = out.schedule;
      }
      if (options_.stop_on_violation) {
        break;
      }
    }
    // Depth-first backtrack: bump the last choice point that still has an
    // unexplored alternative.
    std::size_t i = out.schedule.size();
    while (i > 0 &&
           out.schedule[i - 1] + 1 >= out.alternatives[i - 1]) {
      --i;
    }
    if (i == 0) {
      result.exhausted = true;
      break;
    }
    prefix.assign(out.schedule.begin(),
                  out.schedule.begin() + static_cast<std::ptrdiff_t>(i));
    ++prefix[i - 1];
  }
  return result;
}

ExplorationResult Explorer::ExploreRandom(const LitmusFactory& factory,
                                          std::uint64_t runs,
                                          std::uint64_t base_seed) const {
  ExplorationResult result;
  for (std::uint64_t r = 0; r < runs; ++r) {
    firefly::RandomChooser chooser(base_seed + r);
    RunOutcome out = RunOnce(factory, {}, &chooser, nullptr);
    ++result.runs;
    if (out.result.completed) {
      ++result.completions;
    }
    if (out.result.deadlock) {
      ++result.deadlocks;
    }
    if (!out.verdict.empty()) {
      ++result.violations;
      if (result.violations == 1) {
        result.first_violation = out.verdict;
      }
      if (options_.stop_on_violation) {
        break;
      }
    }
  }
  return result;
}

std::string Explorer::Replay(const LitmusFactory& factory,
                             const std::vector<std::uint32_t>& schedule,
                             std::vector<spec::Action>* trace_out) const {
  RunOutcome out = RunOnce(factory, schedule, nullptr, trace_out);
  return out.verdict;
}

}  // namespace taos::model
