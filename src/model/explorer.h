// Stateless model checking over the Firefly simulator.
//
// A litmus test is run many times; each run follows a recorded schedule
// prefix and then extends it greedily. After a run, the last choice point
// with an unexplored alternative is advanced (depth-first enumeration of the
// schedule tree), until the tree is exhausted or a budget is hit. Because
// the machine is a deterministic function of the choice sequence, any
// violating run is replayable from its schedule.
//
// Each run can also be spec-checked: with check_traces set, the machine
// emits every atomic action into a Trace and the run's serialization is
// verified against the executable specification (src/spec) — over every
// explored interleaving.

#ifndef TAOS_SRC_MODEL_EXPLORER_H_
#define TAOS_SRC_MODEL_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/firefly/machine.h"
#include "src/spec/checker.h"

namespace taos::model {

// One scenario under test. Setup constructs shared objects and forks fibers
// on the machine; Verify inspects the outcome (and any state Setup captured)
// and returns an error description, or "" if the run is acceptable.
class LitmusTest {
 public:
  virtual ~LitmusTest() = default;
  virtual void Setup(firefly::Machine& machine) = 0;
  virtual std::string Verify(const firefly::RunResult& result) = 0;
};

using LitmusFactory = std::function<std::unique_ptr<LitmusTest>()>;

// Chooser that replays a prefix, extends with first-alternative choices, and
// records the branching factor at every choice point.
class ReplayChooser : public firefly::Chooser {
 public:
  explicit ReplayChooser(std::vector<std::uint32_t> prefix)
      : prefix_(std::move(prefix)) {}

  std::size_t Choose(const std::vector<firefly::Fiber*>& runnable) override;

  const std::vector<std::uint32_t>& schedule() const { return prefix_; }
  const std::vector<std::size_t>& alternatives() const {
    return alternatives_;
  }

 private:
  std::vector<std::uint32_t> prefix_;
  std::vector<std::size_t> alternatives_;
  std::size_t pos_ = 0;
};

struct ExplorerOptions {
  std::uint64_t max_runs = 100'000;
  bool stop_on_violation = true;
  bool check_traces = false;        // spec-check every run's serialization
  spec::SpecConfig spec_config;     // semantics used when check_traces
  firefly::MachineConfig machine;   // cpus, time_slice, max_steps
};

struct ExplorationResult {
  std::uint64_t runs = 0;
  bool exhausted = false;           // full schedule tree covered
  std::uint64_t completions = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t violations = 0;
  std::string first_violation;      // description of the first violation
  std::vector<std::uint32_t> counterexample;  // its schedule
  std::size_t max_depth = 0;

  std::string ToString() const;
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options = {}) : options_(options) {}

  // Depth-first exhaustive exploration.
  ExplorationResult Explore(const LitmusFactory& factory) const;

  // Random exploration: `runs` independent seeded-random schedules.
  // Cheaper than DFS for large scenarios; no exhaustiveness claim.
  ExplorationResult ExploreRandom(const LitmusFactory& factory,
                                  std::uint64_t runs,
                                  std::uint64_t base_seed = 1) const;

  // Replays one schedule (e.g. a counterexample) and returns the litmus
  // verdict; fills *trace_out with the run's actions if non-null.
  std::string Replay(const LitmusFactory& factory,
                     const std::vector<std::uint32_t>& schedule,
                     std::vector<spec::Action>* trace_out = nullptr) const;

 private:
  struct RunOutcome {
    firefly::RunResult result;
    std::string verdict;  // "" if acceptable
    std::vector<std::uint32_t> schedule;
    std::vector<std::size_t> alternatives;
  };

  RunOutcome RunOnce(const LitmusFactory& factory,
                     const std::vector<std::uint32_t>& prefix,
                     firefly::Chooser* chooser_override,
                     std::vector<spec::Action>* trace_out) const;

  ExplorerOptions options_;
};

}  // namespace taos::model

#endif  // TAOS_SRC_MODEL_EXPLORER_H_
