// Litmus scenarios for the model checker: each is a small concurrent program
// over the simulated Firefly primitives, with a per-run verdict. The
// interesting properties (e.g. "some schedule deadlocks the naive
// broadcast") are established by tests in tests/ running these through the
// Explorer.
//
// Factories may be given a Tally to accumulate per-outcome counts across the
// many runs of an exploration (the LitmusTest object itself is per-run).

#ifndef TAOS_SRC_MODEL_LITMUS_H_
#define TAOS_SRC_MODEL_LITMUS_H_

#include <cstdint>

#include "src/model/explorer.h"

namespace taos::model {

struct Tally {
  std::uint64_t normal_exits = 0;
  std::uint64_t alerted_exits = 0;
  std::uint64_t completions = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t absorbed_wakeups = 0;
  std::uint64_t multi_unblock_signals = 0;
  // AlertP returned with the caller's alert still pending: both of the
  // spec's WHEN clauses held and the implementation chose RETURNS.
  std::uint64_t returns_with_alert_pending = 0;
  // Queue-lock timeout litmus: runs where the waiter's abandon won the race
  // (it left the queue before the releaser's grant) vs runs where the grant
  // landed first and the timed-out waiter had to accept the lock anyway.
  std::uint64_t timeout_abandons = 0;
  std::uint64_t timeout_grant_races = 0;
  // Rwlock starvation accounting: readers admitted while a writer was
  // already waiting (the reader-preference mechanism that starves writers),
  // and writer acquisitions that did eventually happen.
  std::uint64_t readers_admitted_past_writer = 0;
  std::uint64_t writer_acquisitions = 0;
  // Poll litmus accounting: runs where both Sets raced into one WaitAny
  // (the double-grant window actually exercised), and runs where the
  // deregistration lost to an in-flight notification (the lost-wakeup
  // window actually exercised).
  std::uint64_t poll_concurrent_sets = 0;
  std::uint64_t poll_dereg_lost_to_resume = 0;
};

// N fibers each perform `iters` critical sections (with explicit internal
// step boundaries so a mutual-exclusion failure is visible). Violations:
// overlap in the critical section, lost updates, deadlock.
LitmusFactory MutualExclusionLitmus(int fibers, int iters);

// The wakeup-waiting race (paper, Informal Description): one waiter on a
// predicate, one setter+signaller. With the eventcount (use_eventcount =
// true) every schedule completes; without it the signal can be lost between
// Wait's critical-section exit and its Block, deadlocking the waiter.
LitmusFactory WakeupRaceLitmus(bool use_eventcount, Tally* tally = nullptr);

// The same race with the waiter in AlertWait: the eventcount protects the
// alertable wait identically.
LitmusFactory AlertWaitWakeupRaceLitmus(bool use_eventcount);

// `waiters` fibers wait for a flag; one fiber sets it and Broadcasts. All
// waiters must resume (the paper's reader-lock release example).
LitmusFactory BroadcastLitmus(int waiters);

// Same program over the semaphore-encoded NaiveCondition (paper's strawman).
// The exploration is expected to FIND deadlocking schedules.
LitmusFactory NaiveBroadcastLitmus(int waiters);

// One waiter + one signaller over NaiveCondition: the paper notes the one
// bit in the semaphore covers the race, so every schedule must complete.
LitmusFactory NaiveSignalLitmus();

// A waiter in an AlertWait predicate loop, racing a signaller and an
// alerter. Either exit (normal or Alerted) is legal; the point is that every
// interleaving is deadlock-free and spec-conformant (run with check_traces).
LitmusFactory AlertWaitRaceLitmus(Tally* tally = nullptr);

// Interrupt-style handoff: a "device" fiber produces data then Vs a
// semaphore; a waiter Ps and must observe the data.
LitmusFactory SemaphoreHandoffLitmus();

// AlertP racing a V and an Alert: both outcomes (return, raise) are legal
// and both must occur across schedules (tallied).
LitmusFactory AlertPRaceLitmus(Tally* tally = nullptr);

// Greg Nelson's AlertWait bug, as a checkable scenario: a waiter that exits
// AlertWait via Alerted while a Signal races in. Under the corrected spec
// (AlertResume/RAISES deletes SELF from c) every serialization conforms;
// under AlertWaitVariant::kOriginalBuggy (UNCHANGED [c] on the raising exit)
// the raised waiter lingers in c as a ghost and a later Signal's ENSURES —
// cpost empty or a proper subset — fails. Explore with check_traces and the
// two spec configs to reproduce both halves of the paper's Discussion.
LitmusFactory AlertWaitGhostLitmus(Tally* tally = nullptr);

// The RETURNS/RAISES overlap of AlertP, isolated: the semaphore starts
// available and only an Alert races the AlertP, so in some schedules both
// WHEN clauses hold at once and this implementation's test-and-set picks
// RETURNS (tallied via returns_with_alert_pending). The released spec
// accepts every schedule; AlertChoicePolicy::kPreferAlerted — the
// pre-release deterministic rule — flags exactly the overlap runs.
LitmusFactory AlertPOverlapLitmus(Tally* tally = nullptr);

// Two waiters, one Signal: at least one waiter must resume; with the
// signaller racing the waiters' windows, some schedules legally unblock
// both (tallied via multi_unblock_signals).
LitmusFactory SignalUnblocksManyLitmus(Tally* tally = nullptr);

// The MCS release-to-successor handoff racing a timed-out waiter's abandon
// — the timeout-cancellation analogue of the paper's rule 3 (a decision
// made from a stale test of shared state). The releaser has identified its
// successor and is about to write the grant; the successor's deadline has
// passed and it wants to leave the queue. With `safe_abandon` the waiter
// abandons by CAS (waiting -> abandoned) and, when the CAS loses because
// the grant already landed, accepts the lock and releases it — every
// schedule keeps the lock alive. With `safe_abandon` false the waiter
// blindly marks its node abandoned, and the schedule where the grant landed
// first loses the handoff: the lock is granted to a node nobody watches.
LitmusFactory McsTimeoutAbandonLitmus(bool safe_abandon,
                                      Tally* tally = nullptr);

// Two auto-reset events, one WaitAny waiter, two concurrent Sets — the
// double-grant window of the multi-object wait. With `waiter_consumes`
// (the shipped notify-latch protocol, poll.h) Set only notifies; the
// waiter's own atomic exchange arbitrates, so one WaitAny consumes exactly
// one pulse and the other stays observable — every schedule conserves
// pulses. With `waiter_consumes` false the granter consumes on the
// waiter's behalf (handoff-style), and the schedule where both Sets see
// the waiter still parked consumes BOTH pulses for the single grant: a
// pulse is destroyed.
LitmusFactory PollDoubleGrantLitmus(bool waiter_consumes,
                                    Tally* tally = nullptr);

// The deregistration lost-wakeup window: a WaitAny waiter, granted on A,
// deregisters from B exactly as Set(B) lands. Modelled at the granularity
// of B's registration cell (0 waiting, 1 notified, 2 cancelled) with a
// handoff-flavoured Set that delivers the pulse INTO a registered cell.
// With `safe_cancel` the deregistration is a CAS waiting -> cancelled, and
// when it loses (the pulse is already in the cell) the waiter re-publishes
// it — every schedule conserves the pulse. With `safe_cancel` false the
// waiter blindly marks the cell cancelled (the rule-3 mistake,
// transplanted to deregistration), and the schedule where Set delivered
// first destroys the pulse: whoever waits on B next waits forever. The
// shipped protocol avoids the window entirely by never putting the pulse
// in the cell (notify-only; the flag carries the state) — the safe variant
// here shows the repair a handoff design would need instead.
LitmusFactory PollDeregLostWakeupLitmus(bool safe_cancel,
                                        Tally* tally = nullptr);

// A reader-preference readers-writer lock (the policy of
// taos::ReaderWriterMutex: readers are admitted whenever no writer is
// *active*, ignoring waiters) under a stream of readers with one writer.
// Safety — no reader/writer overlap — must hold in every schedule; the
// tally records readers admitted past the already-waiting writer, the
// mechanism by which a continuous reader stream starves writers (the writer
// here escapes only because the stream is finite).
LitmusFactory RwWriterStarvationLitmus(int readers, int rounds,
                                       Tally* tally = nullptr);

// Dining philosophers over simulated mutexes. With `ordered` false every
// philosopher takes left-then-right (the checker finds the circular-wait
// deadlock); with `ordered` true forks are acquired in global id order (no
// schedule deadlocks — the standard total-order fix).
LitmusFactory DiningPhilosophersLitmus(int philosophers, bool ordered);

}  // namespace taos::model

#endif  // TAOS_SRC_MODEL_LITMUS_H_
