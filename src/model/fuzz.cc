#include "src/model/fuzz.h"

#include <memory>
#include <vector>

#include "src/base/alerted.h"
#include "src/base/xorshift.h"
#include "src/firefly/sync.h"

namespace taos::model {

namespace {

enum class OpKind : std::uint8_t {
  kLockedSection,  // Acquire; a few steps; Release
  kWait,           // Acquire; Wait; Release   (no predicate: may sleep)
  kAlertWait,      // Acquire; AlertWait (catch Alerted); Release
  kSignal,
  kBroadcast,
  kPV,             // P; V
  kP,              // unbalanced P (a deliberate deadlock source)
  kV,
  kAlertPThenV,    // AlertP (catch); V if it returned normally
  kAlert,          // Alert a random fiber
  kTestAlert,
  kSteps,          // plain computation steps
};

struct Op {
  OpKind kind;
  int a = 0;  // object index / target fiber / step count
  int b = 0;  // secondary object index
};

std::vector<std::vector<Op>> GenerateProgram(std::uint64_t seed,
                                             const FuzzShape& shape) {
  XorShift rng(seed);
  std::vector<std::vector<Op>> fibers;
  for (int f = 0; f < shape.fibers; ++f) {
    std::vector<Op> ops;
    for (int i = 0; i < shape.ops_per_fiber; ++i) {
      Op op;
      const std::uint32_t roll = rng.Below(100);
      const int m = static_cast<int>(rng.Below(
          static_cast<std::uint32_t>(shape.mutexes)));
      const int c = static_cast<int>(rng.Below(
          static_cast<std::uint32_t>(shape.conditions)));
      const int s = static_cast<int>(rng.Below(
          static_cast<std::uint32_t>(shape.semaphores)));
      if (roll < 25) {
        op = {OpKind::kLockedSection, m, static_cast<int>(rng.Below(3))};
      } else if (roll < 35) {
        op = {OpKind::kWait, m, c};
      } else if (roll < 45 && shape.use_alerts) {
        op = {OpKind::kAlertWait, m, c};
      } else if (roll < 57) {
        op = {OpKind::kSignal, c};
      } else if (roll < 65) {
        op = {OpKind::kBroadcast, c};
      } else if (roll < 75) {
        op = {OpKind::kPV, s};
      } else if (roll < 78) {
        op = {OpKind::kP, s};
      } else if (roll < 85) {
        op = {OpKind::kV, s};
      } else if (roll < 90 && shape.use_alerts) {
        op = {OpKind::kAlertPThenV, s};
      } else if (roll < 95 && shape.use_alerts) {
        op = {OpKind::kAlert,
              static_cast<int>(rng.Below(
                  static_cast<std::uint32_t>(shape.fibers)))};
      } else if (roll < 98 && shape.use_alerts) {
        op = {OpKind::kTestAlert};
      } else {
        op = {OpKind::kSteps, static_cast<int>(rng.Below(4)) + 1};
      }
      ops.push_back(op);
    }
    fibers.push_back(std::move(ops));
  }
  return fibers;
}

class FuzzProgramTest : public LitmusTest {
 public:
  FuzzProgramTest(std::uint64_t seed, FuzzShape shape)
      : program_(GenerateProgram(seed, shape)), shape_(shape) {}

  void Setup(firefly::Machine& machine) override {
    for (int i = 0; i < shape_.mutexes; ++i) {
      mutexes_.push_back(std::make_unique<firefly::Mutex>(machine));
    }
    for (int i = 0; i < shape_.conditions; ++i) {
      conditions_.push_back(std::make_unique<firefly::Condition>(machine));
    }
    for (int i = 0; i < shape_.semaphores; ++i) {
      semaphores_.push_back(std::make_unique<firefly::Semaphore>(machine));
    }
    for (std::size_t f = 0; f < program_.size(); ++f) {
      handles_.push_back(machine.Fork(
          [this, &machine, f] { RunFiber(machine, program_[f]); },
          /*priority=*/0, "fuzz" + std::to_string(f)));
    }
  }

  std::string Verify(const firefly::RunResult& result) override {
    // Deadlock is legal (no liveness in the spec); livelock is not — the
    // explorer flags hit_step_limit itself. Trace conformance is checked
    // by the explorer when enabled.
    (void)result;
    return "";
  }

 private:
  void RunFiber(firefly::Machine& machine, const std::vector<Op>& ops) {
    for (const Op& op : ops) {
      switch (op.kind) {
        case OpKind::kLockedSection: {
          firefly::Lock lock(*mutexes_[static_cast<std::size_t>(op.a)]);
          for (int i = 0; i < op.b; ++i) {
            machine.Step();
          }
          break;
        }
        case OpKind::kWait: {
          firefly::Mutex& m = *mutexes_[static_cast<std::size_t>(op.a)];
          firefly::Condition& c =
              *conditions_[static_cast<std::size_t>(op.b)];
          m.Acquire();
          c.Wait(m);
          m.Release();
          break;
        }
        case OpKind::kAlertWait: {
          firefly::Mutex& m = *mutexes_[static_cast<std::size_t>(op.a)];
          firefly::Condition& c =
              *conditions_[static_cast<std::size_t>(op.b)];
          m.Acquire();
          try {
            firefly::AlertWait(m, c);
          } catch (const Alerted&) {
          }
          m.Release();
          break;
        }
        case OpKind::kSignal:
          conditions_[static_cast<std::size_t>(op.a)]->Signal();
          break;
        case OpKind::kBroadcast:
          conditions_[static_cast<std::size_t>(op.a)]->Broadcast();
          break;
        case OpKind::kPV:
          semaphores_[static_cast<std::size_t>(op.a)]->P();
          semaphores_[static_cast<std::size_t>(op.a)]->V();
          break;
        case OpKind::kP:
          semaphores_[static_cast<std::size_t>(op.a)]->P();
          break;
        case OpKind::kV:
          semaphores_[static_cast<std::size_t>(op.a)]->V();
          break;
        case OpKind::kAlertPThenV: {
          firefly::Semaphore& s =
              *semaphores_[static_cast<std::size_t>(op.a)];
          try {
            firefly::AlertP(s);
            s.V();
          } catch (const Alerted&) {
          }
          break;
        }
        case OpKind::kAlert:
          firefly::Alert(handles_[static_cast<std::size_t>(op.a)]);
          break;
        case OpKind::kTestAlert:
          (void)firefly::TestAlert();
          break;
        case OpKind::kSteps:
          for (int i = 0; i < op.a; ++i) {
            machine.Step();
          }
          break;
      }
    }
  }

  const std::vector<std::vector<Op>> program_;
  const FuzzShape shape_;
  std::vector<std::unique_ptr<firefly::Mutex>> mutexes_;
  std::vector<std::unique_ptr<firefly::Condition>> conditions_;
  std::vector<std::unique_ptr<firefly::Semaphore>> semaphores_;
  std::vector<firefly::FiberHandle> handles_;
};

}  // namespace

LitmusFactory FuzzProgramLitmus(std::uint64_t seed, FuzzShape shape) {
  return [seed, shape] {
    return std::make_unique<FuzzProgramTest>(seed, shape);
  };
}

}  // namespace taos::model
