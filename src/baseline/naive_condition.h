// The paper's strawman condition variable on real threads (baseline for
// experiments E4/E8): each condition variable is a binary semaphore;
// Wait(m, c) = Release(m); P(c); Acquire(m) and Signal(c) = V(c).
//
// "The one bit in the semaphore c would cover the wakeup-waiting race.
//  Unfortunately, this implementation does not generalize to Broadcast(c)."
//
// Broadcast below issues one V per counted waiter — the strongest broadcast
// a binary semaphore admits — and still collapses consecutive Vs while
// waiters sit between Release(m) and P(c). Use only in benchmarks and in
// tests that demonstrate the failure; the deterministic demonstration is the
// simulator twin (src/firefly/naive_condition.h) under the model checker.

#ifndef TAOS_SRC_BASELINE_NAIVE_CONDITION_H_
#define TAOS_SRC_BASELINE_NAIVE_CONDITION_H_

#include <atomic>

#include "src/threads/mutex.h"
#include "src/threads/semaphore.h"

namespace taos::baseline {

class NaiveCondition {
 public:
  NaiveCondition() {
    sem_.P();  // start unavailable: a Wait's P sleeps until a Signal's V
  }

  void Wait(Mutex& m) {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    m.Release();
    sem_.P();
    m.Acquire();
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  void Signal() { sem_.V(); }

  void Broadcast() {
    const int n = waiters_.load(std::memory_order_seq_cst);
    for (int i = 0; i < n; ++i) {
      sem_.V();
    }
  }

 private:
  Semaphore sem_;
  std::atomic<int> waiters_{0};
};

}  // namespace taos::baseline

#endif  // TAOS_SRC_BASELINE_NAIVE_CONDITION_H_
