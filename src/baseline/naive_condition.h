// The paper's strawman condition variable on real threads (baseline for
// experiments E4/E8). The algorithm — and the quotation explaining why its
// Broadcast loses wakeups — lives in src/base/naive_condition_core.h; this
// layer supplies the real-thread glue: no step hook and an atomic waiter
// count. Use only in benchmarks and in tests that demonstrate the failure;
// the deterministic demonstration is the simulator twin
// (src/firefly/naive_condition.h) under the model checker.

#ifndef TAOS_SRC_BASELINE_NAIVE_CONDITION_H_
#define TAOS_SRC_BASELINE_NAIVE_CONDITION_H_

#include "src/base/naive_condition_core.h"
#include "src/threads/mutex.h"
#include "src/threads/semaphore.h"

namespace taos::baseline {

class NaiveCondition {
 public:
  NaiveCondition() : core_(sem_, NoStep{}) {
    sem_.P();  // start unavailable: a Wait's P sleeps until a Signal's V
  }

  void Wait(Mutex& m) { core_.Wait(m); }
  void Signal() { core_.Signal(); }
  void Broadcast() { core_.Broadcast(); }

 private:
  struct NoStep {
    void operator()() const {}
  };

  Semaphore sem_;
  base::NaiveConditionCore<Mutex, Semaphore, base::AtomicWaiterCount, NoStep>
      core_;
};

}  // namespace taos::baseline

#endif  // TAOS_SRC_BASELINE_NAIVE_CONDITION_H_
