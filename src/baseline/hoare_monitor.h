// A Hoare monitor (Hoare 1974), the semantics the paper contrasts with:
//
//   "By contrast, with Hoare's condition variables threads are guaranteed
//    that the predicate is true on return from Wait. Our looser
//    specification reduces the obligations of the signalling thread and
//    leads to a more efficient implementation on our multiprocessor."
//
// Signal hands the monitor directly to one waiter (the signaller blocks on
// the `urgent` semaphore until the waiter leaves), so a waiter resumes with
// the predicate exactly as the signaller established it — no re-check loop
// is needed, at the cost of two extra context switches per signal. Built,
// as in Hoare's paper, from binary semaphores — here the Taos ones.

#ifndef TAOS_SRC_BASELINE_HOARE_MONITOR_H_
#define TAOS_SRC_BASELINE_HOARE_MONITOR_H_

#include "src/base/check.h"
#include "src/threads/semaphore.h"

namespace taos::baseline {

class HoareMonitor {
 public:
  HoareMonitor() {
    urgent_.P();  // no one is waiting to re-enter yet
  }

  void Enter() { mutex_.P(); }

  void Exit() {
    // Prefer a signaller waiting to resume over new entrants.
    if (urgent_count_ > 0) {
      urgent_.V();
    } else {
      mutex_.V();
    }
  }

  class Condition {
   public:
    explicit Condition(HoareMonitor& monitor) : monitor_(monitor) {
      sem_.P();  // start unavailable
    }

    // Caller must be inside the monitor. Releases it, sleeps, and returns
    // inside the monitor with the signaller's state intact.
    void Wait() {
      ++count_;
      monitor_.Exit();
      sem_.P();
      --count_;
      // The monitor was handed to us by Signal; do not re-Enter.
    }

    // Caller must be inside the monitor. If a thread is waiting, passes the
    // monitor to it and blocks until the monitor is handed back.
    void Signal() {
      if (count_ > 0) {
        ++monitor_.urgent_count_;
        sem_.V();
        monitor_.urgent_.P();
        --monitor_.urgent_count_;
      }
    }

    int WaiterCountForDebug() const { return count_; }

   private:
    HoareMonitor& monitor_;
    Semaphore sem_;
    int count_ = 0;  // guarded by the monitor
  };

 private:
  friend class Condition;

  Semaphore mutex_;   // available: the monitor lock
  Semaphore urgent_;  // signallers waiting to resume
  int urgent_count_ = 0;  // guarded by the monitor
};

}  // namespace taos::baseline

#endif  // TAOS_SRC_BASELINE_HOARE_MONITOR_H_
