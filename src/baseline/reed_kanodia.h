// Eventcounts and sequencers, after Reed & Kanodia (SOSP 1977) — the
// paper's citation for the eventcount inside its condition variables
// ("Our implementation uses an eventcount [Reed 77] to resolve this
// problem"). This module implements the original discipline in full, as a
// baseline: synchronization without mutual exclusion primitives, ordered by
// a monotone counter (await/advance) and tickets (sequencers).
//
//   WaitableEventCount   read / advance / await(v): block until count >= v
//   Sequencer            ticket(): unique, dense, ordered
//   EventcountMutex      Reed-Kanodia mutual exclusion: take a ticket,
//                        await your turn, advance on exit — strict FIFO
//   RKBoundedBuffer      the classic single-producer/single-consumer
//                        bounded buffer from two eventcounts, no mutex at
//                        all on the data path
//
// The blocking inside Await uses the Taos primitives (one Mutex + one
// Condition per eventcount, Broadcast on advance), so this module is also
// an integration workout for them.

#ifndef TAOS_SRC_BASELINE_REED_KANODIA_H_
#define TAOS_SRC_BASELINE_REED_KANODIA_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/threads/condition.h"
#include "src/threads/lock.h"
#include "src/threads/mutex.h"

namespace taos::baseline {

class WaitableEventCount {
 public:
  using Value = std::uint64_t;

  Value Read() const { return count_.load(std::memory_order_acquire); }

  // Monotone increment; wakes every awaiter (their thresholds differ, so
  // Broadcast is required for correctness — the paper's Signal rule).
  void Advance() {
    {
      Lock lock(mutex_);
      count_.fetch_add(1, std::memory_order_acq_rel);
    }
    reached_.Broadcast();
  }

  // Blocks until the count reaches `value`.
  void Await(Value value) {
    if (Read() >= value) {
      return;  // fast path, no lock
    }
    Lock lock(mutex_);
    while (count_.load(std::memory_order_acquire) < value) {
      reached_.Wait(mutex_);
    }
  }

 private:
  std::atomic<Value> count_{0};
  Mutex mutex_;
  Condition reached_;
};

class Sequencer {
 public:
  using Ticket = std::uint64_t;

  // Returns 0, 1, 2, ... — unique and ordered across threads.
  Ticket NextTicket() {
    return next_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<Ticket> next_{0};
};

// Mutual exclusion in the Reed-Kanodia style: strictly FIFO, no barging —
// the opposite ordering policy from the Taos mutex, implemented from the
// same eventcount idea.
class EventcountMutex {
 public:
  void Acquire() {
    const Sequencer::Ticket ticket = sequencer_.NextTicket();
    turn_.Await(ticket);  // count == ticket means it is our turn
  }

  void Release() { turn_.Advance(); }

 private:
  Sequencer sequencer_;
  WaitableEventCount turn_;
};

// Reed & Kanodia's bounded buffer: one producer, one consumer, two
// eventcounts, zero locks on the data path. Item i (1-based) may be
// written once `out >= i - capacity` and read once `in >= i`.
class RKBoundedBuffer {
 public:
  explicit RKBoundedBuffer(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    TAOS_CHECK(capacity_ > 0);
  }

  void Put(std::uint64_t item) {
    const std::uint64_t i = ++produced_;  // single producer
    if (i > capacity_) {
      out_.Await(i - capacity_);  // wait for a free slot
    }
    slots_[(i - 1) % capacity_] = item;
    in_.Advance();  // item i is now readable
  }

  std::uint64_t Get() {
    const std::uint64_t i = ++consumed_;  // single consumer
    in_.Await(i);
    const std::uint64_t item = slots_[(i - 1) % capacity_];
    out_.Advance();  // slot freed
    return item;
  }

 private:
  const std::size_t capacity_;
  std::vector<std::uint64_t> slots_;
  WaitableEventCount in_;   // items produced
  WaitableEventCount out_;  // items consumed
  std::uint64_t produced_ = 0;  // producer-private
  std::uint64_t consumed_ = 0;  // consumer-private
};

}  // namespace taos::baseline

#endif  // TAOS_SRC_BASELINE_REED_KANODIA_H_
