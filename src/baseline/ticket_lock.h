// Ticket spin-lock baseline: FIFO-fair pure spinning, no parking. The
// opposite design point from the Taos mutex (which barges but de-schedules
// blocked threads); the contention benchmark (E3) shows where each wins.

#ifndef TAOS_SRC_BASELINE_TICKET_LOCK_H_
#define TAOS_SRC_BASELINE_TICKET_LOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace taos::baseline {

class TicketSpinMutex {
 public:
  void Acquire() {
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t spins = 0;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      if (++spins > kYieldThreshold) {
        // On an oversubscribed host (more threads than cores) pure spinning
        // can starve the lock holder; politely give up the processor.
        std::this_thread::yield();
      } else {
        Pause();
      }
    }
  }

  void Release() { serving_.fetch_add(1, std::memory_order_release); }

 private:
  static constexpr std::uint32_t kYieldThreshold = 64;

  static void Pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> serving_{0};
};

}  // namespace taos::baseline

#endif  // TAOS_SRC_BASELINE_TICKET_LOCK_H_
