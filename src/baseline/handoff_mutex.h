// Direct-handoff mutex: the ablation of the Taos mutex's barging design.
//
// The paper's Nub Acquire re-tests the lock bit after enqueueing and
// "the entire Acquire operation (beginning at the test-and-set) is
// retried" after a wakeup — so a released mutex can be barged by any
// passing thread, and the spec deliberately does not say which blocked
// thread acquires next. This variant instead *transfers* ownership to the
// oldest queued waiter inside Release (the lock bit never clears while the
// queue is non-empty): strict FIFO among waiters, no retry loop, but every
// contended release forces a full park/unpark round trip even when the
// waker would immediately reacquire — the classic convoy cost the barging
// design avoids. bench_contention compares the two.

#ifndef TAOS_SRC_BASELINE_HANDOFF_MUTEX_H_
#define TAOS_SRC_BASELINE_HANDOFF_MUTEX_H_

#include <atomic>

#include "src/base/check.h"
#include "src/base/intrusive_queue.h"
#include "src/base/spinlock.h"
#include "src/threads/nub.h"
#include "src/threads/thread_record.h"

namespace taos::baseline {

class HandoffMutex {
 public:
  HandoffMutex() = default;
  ~HandoffMutex() { TAOS_CHECK(queue_.Empty()); }
  HandoffMutex(const HandoffMutex&) = delete;
  HandoffMutex& operator=(const HandoffMutex&) = delete;

  void Acquire() {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    // Same user-code fast path as the Taos mutex.
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      holder_.store(self->id, std::memory_order_relaxed);
      return;
    }
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      std::uint32_t expected = 0;
      if (!bit_.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire)) {
        queue_.PushBack(self);
        MarkBlocked(self, ThreadRecord::BlockKind::kMutex, this, /*obj_id=*/0, &nub_lock_,
                    /*alertable=*/false);
        parked = true;
      }
    }
    if (parked) {
      self->parks.fetch_add(1, std::memory_order_relaxed);
      self->park.Park();
      // Ownership was handed to us inside Release: the bit never cleared.
    }
    holder_.store(self->id, std::memory_order_relaxed);
  }

  void Release() {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    TAOS_CHECK(holder_.load(std::memory_order_relaxed) == self->id);
    holder_.store(spec::kNil, std::memory_order_relaxed);
    ThreadRecord* next = nullptr;
    {
      NubGuard g(nub_lock_);
      next = queue_.PopFront();
      if (next != nullptr) {
        MarkUnblocked(next);
        // The bit stays 1: ownership transfers; no thread can barge in.
      } else {
        bit_.store(0, std::memory_order_release);
      }
    }
    if (next != nullptr) {
      next->park.Unpark();
    }
  }

  spec::ThreadId HolderForDebug() const {
    return holder_.load(std::memory_order_relaxed);
  }

  std::size_t WaitersForDebug() {
    NubGuard g(nub_lock_);
    return queue_.Size();
  }

 private:
  std::atomic<std::uint32_t> bit_{0};
  ObjLock nub_lock_;                    // guards queue_
  IntrusiveQueue<ThreadRecord> queue_;
  std::atomic<spec::ThreadId> holder_{spec::kNil};
};

}  // namespace taos::baseline

#endif  // TAOS_SRC_BASELINE_HANDOFF_MUTEX_H_
