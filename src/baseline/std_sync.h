// Modern-baseline wrappers: the C++ standard library's mutex and condition
// variable (the direct descendants of the semantics this paper specified —
// std::condition_variable is Mesa-style, wakeups are hints, Broadcast is
// notify_all) behind the Taos method names, so every workload template runs
// unchanged over them.

#ifndef TAOS_SRC_BASELINE_STD_SYNC_H_
#define TAOS_SRC_BASELINE_STD_SYNC_H_

#include <condition_variable>
#include <mutex>

namespace taos::baseline {

class StdCondition;

class StdMutex {
 public:
  void Acquire() { m_.lock(); }
  void Release() { m_.unlock(); }
  bool TryAcquire() { return m_.try_lock(); }

 private:
  friend class StdCondition;
  std::mutex m_;
};

class StdCondition {
 public:
  void Wait(StdMutex& m) {
    std::unique_lock<std::mutex> lock(m.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller keeps holding the mutex
  }

  void Signal() { cv_.notify_one(); }
  void Broadcast() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Binary semaphore with V-idempotence (V on an available semaphore stays
// available), matching the paper's Semaphore type. std::binary_semaphore
// forbids over-release, so this is mutex+cv based.
class StdSemaphore {
 public:
  void P() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [this] { return available_; });
    available_ = false;
  }

  void V() {
    {
      std::lock_guard<std::mutex> lock(m_);
      available_ = true;
    }
    cv_.notify_one();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool available_ = true;
};

}  // namespace taos::baseline

#endif  // TAOS_SRC_BASELINE_STD_SYNC_H_
