// A fixed-size worker pool over the Threads primitives — the kind of
// component Taos clients built from this interface. Demonstrates the whole
// vocabulary working together:
//
//  - a Mutex + two Conditions guard the bounded task queue (the normal
//    paradigm: predicates re-evaluated in while loops),
//  - shutdown uses Broadcast (all workers must resume — the correctness
//    rule for multiple distinct waiters),
//  - Cancel uses Alert: workers park in AlertWait, so a pending or blocked
//    worker is interrupted mid-wait and drains out via the Alerted
//    exception, without the pool touching the condition it sleeps on.

#ifndef TAOS_SRC_WORKLOAD_THREAD_POOL_H_
#define TAOS_SRC_WORKLOAD_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/threads/threads.h"

namespace taos::workload {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Starts `workers` threads; at most `queue_capacity` tasks may be queued.
  ThreadPool(int workers, std::size_t queue_capacity);

  // Drains remaining tasks, then stops the workers (unless Cancel ran).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks while the queue is full. Returns false after Shutdown/Cancel.
  bool Submit(Task task);

  // Stops accepting work; workers finish everything already queued.
  // Idempotent. Blocks until the workers have exited.
  void Shutdown();

  // Stops accepting work and interrupts the workers via Alert: queued
  // tasks that have not started are dropped. Blocks until exit.
  void Cancel();

  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerBody();
  void JoinAll();

  const std::size_t capacity_;
  Mutex mutex_;
  Condition not_empty_;
  Condition not_full_;
  std::deque<Task> queue_;  // guarded by mutex_
  bool shutdown_ = false;   // guarded by mutex_
  bool cancel_ = false;     // guarded by mutex_
  std::vector<Thread> workers_;
  bool joined_ = false;  // main-thread-only
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// A cyclic barrier from one Mutex and one Condition: the paper's Broadcast
// in its purest form — the last arriver wakes the whole generation.
class Barrier {
 public:
  explicit Barrier(int parties);

  // Blocks until `parties` threads have arrived; returns the generation
  // index (0-based) that just completed. Reusable.
  std::uint64_t ArriveAndWait();

 private:
  const int parties_;
  Mutex mutex_;
  Condition released_;
  int waiting_ = 0;            // guarded by mutex_
  std::uint64_t generation_ = 0;  // guarded by mutex_
};

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_THREAD_POOL_H_
