// Mutex contention driver (experiment E3): N threads each perform `iters`
// critical sections of `cs_work` work units, with `outside_work` units
// between them. Templated over any mutex exposing Acquire/Release.

#ifndef TAOS_SRC_WORKLOAD_CONTENTION_H_
#define TAOS_SRC_WORKLOAD_CONTENTION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/stopwatch.h"
#include "src/threads/thread.h"
#include "src/workload/work.h"

namespace taos::workload {

struct ContentionResult {
  std::uint64_t total_sections = 0;
  std::uint64_t nanos = 0;
  std::uint64_t shared_counter = 0;  // must equal total_sections

  double SectionsPerSecond() const {
    return nanos == 0 ? 0.0
                      : static_cast<double>(total_sections) * 1e9 /
                            static_cast<double>(nanos);
  }
};

template <typename MutexT>
ContentionResult RunContention(int threads, std::uint64_t iters,
                               std::uint64_t cs_work,
                               std::uint64_t outside_work) {
  MutexT mutex;
  std::uint64_t counter = 0;  // protected by mutex
  std::atomic<std::uint64_t> sink{0};

  Stopwatch watch;
  std::vector<Thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.push_back(
        Thread::Fork([&mutex, &counter, &sink, iters, cs_work, outside_work] {
          std::uint64_t local = 0;
          for (std::uint64_t i = 0; i < iters; ++i) {
            mutex.Acquire();
            counter += 1;
            local ^= DoWork(cs_work);
            mutex.Release();
            local ^= DoWork(outside_work);
          }
          sink.fetch_add(local, std::memory_order_relaxed);
        }));
  }
  for (Thread& w : workers) {
    w.Join();
  }

  ContentionResult result;
  result.total_sections = static_cast<std::uint64_t>(threads) * iters;
  result.nanos = watch.ElapsedNanos();
  result.shared_counter = counter;
  return result;
}

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_CONTENTION_H_
