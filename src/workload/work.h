// Calibrated-free busy work for benchmarks: DoWork(n) performs n dependent
// integer operations the optimizer cannot elide or vectorize away, modelling
// "time spent inside/outside the critical section".

#ifndef TAOS_SRC_WORKLOAD_WORK_H_
#define TAOS_SRC_WORKLOAD_WORK_H_

#include <cstdint>

namespace taos::workload {

// Defined out of line and never inlined, so the loop survives -O2.
std::uint64_t DoWork(std::uint64_t units);

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_WORK_H_
