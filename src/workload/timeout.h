// Timeouts — the use case the paper names for Alert: "typically to
// implement things such as timeouts and aborts [...] at an abstraction
// level higher than that in which the thread is blocked."
//
// WaitWithTimeout is the predicate-guarded timed wait. Historically it was
// built the way the quote suggests: a watchdog thread per call that
// Alert()ed the waiter when the deadline passed — one thread creation, one
// join, and a 1 ms polling loop per timed wait. Deadlines are now
// first-class in the Nub (src/threads/timer.h), so the same contract rides
// on AlertWaitFor: zero threads per call, no polling, and the expiry-vs-
// signal race arbitrated by the wheel's cancellation protocol instead of by
// alert-flag accounting. Returns true if the predicate came true, false on
// timeout. The caller must hold the mutex; it is held again on return
// either way.

#ifndef TAOS_SRC_WORKLOAD_TIMEOUT_H_
#define TAOS_SRC_WORKLOAD_TIMEOUT_H_

#include <chrono>
#include <functional>

#include "src/threads/threads.h"

namespace taos::workload {

inline bool WaitWithTimeout(Mutex& m, Condition& c,
                            const std::function<bool()>& predicate,
                            std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate()) {
    const auto remaining = deadline - std::chrono::steady_clock::now();
    switch (AlertWaitFor(
        m, c,
        std::chrono::duration_cast<std::chrono::nanoseconds>(remaining))) {
      case WaitResult::kSatisfied:
        break;  // a wakeup is a hint; loop to re-evaluate the predicate
      case WaitResult::kTimeout:
        return predicate();
      case WaitResult::kAlerted:
        // The alert belongs to a third party — this wait's deadline is the
        // timer's, not an Alert. AlertWaitFor consumed it to report
        // kAlerted; re-post so the caller's next alertable wait still
        // raises, and report the wait's own outcome.
        Alert(Thread::Self());
        return predicate();
    }
  }
  return true;
}

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_TIMEOUT_H_
