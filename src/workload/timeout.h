// Timeouts via alerting — the use case the paper names for Alert:
// "typically to implement things such as timeouts and aborts [...] at an
// abstraction level higher than that in which the thread is blocked."
//
// WaitWithTimeout runs `predicate`-guarded AlertWait, with a watchdog thread
// that Alerts the waiter when the deadline passes. Returns true if the
// predicate came true, false on timeout. The caller must hold the mutex;
// it is held again on return either way.

#ifndef TAOS_SRC_WORKLOAD_TIMEOUT_H_
#define TAOS_SRC_WORKLOAD_TIMEOUT_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "src/threads/threads.h"

namespace taos::workload {

inline bool WaitWithTimeout(Mutex& m, Condition& c,
                            const std::function<bool()>& predicate,
                            std::chrono::milliseconds timeout) {
  if (predicate()) {
    return true;
  }
  std::atomic<bool> done{false};
  const ThreadHandle waiter = Thread::Self();
  // The watchdog lives above the blocking abstraction: it knows nothing of
  // m or c, only the thread to interrupt.
  std::thread watchdog([&done, waiter, timeout] {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!done.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        Alert(waiter);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  bool satisfied = true;
  try {
    while (!predicate()) {
      AlertWait(m, c);
    }
  } catch (const Alerted&) {
    satisfied = predicate();  // the predicate may have just come true
  }
  done.store(true, std::memory_order_release);
  watchdog.join();
  // A stale alert may still be pending (posted after we stopped waiting);
  // absorb it so it cannot leak into the caller's next alertable wait.
  (void)TestAlert();
  return satisfied;
}

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_TIMEOUT_H_
