// Timeouts via alerting — the use case the paper names for Alert:
// "typically to implement things such as timeouts and aborts [...] at an
// abstraction level higher than that in which the thread is blocked."
//
// WaitWithTimeout runs `predicate`-guarded AlertWait, with a watchdog thread
// that Alerts the waiter when the deadline passes. Returns true if the
// predicate came true, false on timeout. The caller must hold the mutex;
// it is held again on return either way.

#ifndef TAOS_SRC_WORKLOAD_TIMEOUT_H_
#define TAOS_SRC_WORKLOAD_TIMEOUT_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "src/threads/threads.h"

namespace taos::workload {

inline bool WaitWithTimeout(Mutex& m, Condition& c,
                            const std::function<bool()>& predicate,
                            std::chrono::milliseconds timeout) {
  if (predicate()) {
    return true;
  }
  std::atomic<bool> done{false};
  std::atomic<bool> fired{false};
  const ThreadHandle waiter = Thread::Self();
  // The watchdog lives above the blocking abstraction: it knows nothing of
  // m or c, only the thread to interrupt.
  std::thread watchdog([&done, &fired, waiter, timeout] {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!done.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        fired.store(true, std::memory_order_release);
        Alert(waiter);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  bool satisfied = true;
  bool alerted_raised = false;
  try {
    while (!predicate()) {
      AlertWait(m, c);
    }
  } catch (const Alerted&) {
    alerted_raised = true;
    satisfied = predicate();  // the predicate may have just come true
  }
  done.store(true, std::memory_order_release);
  // Join outside the critical section: the watchdog sleeps in 1 ms slices,
  // so joining under m would extend every caller's hold time by up to that.
  m.Release();
  watchdog.join();
  m.Acquire();
  if (!satisfied) {
    satisfied = predicate();  // may have come true while m was released
  }
  // Alert accounting. The raise consumed one pending alert; it was ours to
  // consume only if the watchdog genuinely fired and the wait was not
  // satisfied (the timeout outcome). In every other raise the alert belongs
  // to a third party (or is ambiguous) — re-post it so the caller's next
  // alertable wait still raises. Never drain the flag: an alert posted after
  // we stopped waiting is not ours either.
  const bool timed_out =
      fired.load(std::memory_order_acquire) && !satisfied;
  if (alerted_raised && !timed_out) {
    Alert(Thread::Self());
  }
  return satisfied;
}

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_TIMEOUT_H_
