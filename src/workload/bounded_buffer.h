// The bounded buffer: the canonical producer-consumer structure from the
// paper's normal paradigm for condition variables. Two predicates ("not
// full", "not empty"), each with its own condition variable; every Get/Put
// re-evaluates its predicate on return from Wait, as Mesa semantics demand.
//
// Templated over the mutex/condition types so the identical workload runs
// over taos::, baseline::Naive*, and baseline::Std* primitives.

#ifndef TAOS_SRC_WORKLOAD_BOUNDED_BUFFER_H_
#define TAOS_SRC_WORKLOAD_BOUNDED_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/baseline/hoare_monitor.h"

namespace taos::workload {

template <typename MutexT, typename ConditionT>
class BoundedBuffer {
 public:
  explicit BoundedBuffer(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    TAOS_CHECK(capacity_ > 0);
  }

  void Put(std::uint64_t item) {
    mutex_.Acquire();
    while (count_ == capacity_) {
      not_full_.Wait(mutex_);
    }
    slots_[(head_ + count_) % capacity_] = item;
    ++count_;
    mutex_.Release();
    not_empty_.Signal();
  }

  std::uint64_t Get() {
    mutex_.Acquire();
    while (count_ == 0) {
      not_empty_.Wait(mutex_);
    }
    const std::uint64_t item = slots_[head_];
    head_ = (head_ + 1) % capacity_;
    --count_;
    mutex_.Release();
    not_full_.Signal();
    return item;
  }

  // Racy size snapshot; for teardown assertions.
  std::size_t SizeForDebug() {
    mutex_.Acquire();
    const std::size_t n = count_;
    mutex_.Release();
    return n;
  }

  ConditionT& not_empty() { return not_empty_; }
  ConditionT& not_full() { return not_full_; }

 private:
  const std::size_t capacity_;
  MutexT mutex_;
  ConditionT not_full_;
  ConditionT not_empty_;
  std::vector<std::uint64_t> slots_;  // FIFO ring, guarded by mutex_
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

// The same buffer under Hoare semantics: signalled waiters are guaranteed
// their predicate, so `while` becomes `if`-free straight-line code — the
// classic illustration of what the guarantee buys and what it costs.
class HoareBoundedBuffer {
 public:
  explicit HoareBoundedBuffer(std::size_t capacity)
      : capacity_(capacity),
        slots_(capacity),
        not_full_(monitor_),
        not_empty_(monitor_) {
    TAOS_CHECK(capacity_ > 0);
  }

  void Put(std::uint64_t item) {
    monitor_.Enter();
    if (count_ == capacity_) {
      not_full_.Wait();
      TAOS_CHECK(count_ < capacity_);  // Hoare's guarantee
    }
    slots_[(head_ + count_) % capacity_] = item;
    ++count_;
    not_empty_.Signal();
    monitor_.Exit();
  }

  std::uint64_t Get() {
    monitor_.Enter();
    if (count_ == 0) {
      not_empty_.Wait();
      TAOS_CHECK(count_ > 0);
    }
    const std::uint64_t item = slots_[head_];
    head_ = (head_ + 1) % capacity_;
    --count_;
    not_full_.Signal();
    monitor_.Exit();
    return item;
  }

 private:
  const std::size_t capacity_;
  std::vector<std::uint64_t> slots_;  // FIFO ring, guarded by the monitor
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  baseline::HoareMonitor monitor_;
  baseline::HoareMonitor::Condition not_full_;
  baseline::HoareMonitor::Condition not_empty_;
};

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_BOUNDED_BUFFER_H_
