#include "src/workload/work.h"

namespace taos::workload {

__attribute__((noinline)) std::uint64_t DoWork(std::uint64_t units) {
  std::uint64_t x = units + 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < units; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  // The result is returned so callers can feed it to a sink; the data
  // dependency keeps the loop alive.
  return x;
}

}  // namespace taos::workload
