// A readers-writer lock built from one mutex and two condition variables —
// the paper's own motivating example for Broadcast:
//
//   "Broadcast is necessary (for correctness) if multiple threads should
//    resume (for example, when releasing a 'writer' lock on a file might
//    permit all 'readers' to resume)."
//
// Readers waiting for a writer to finish all wait on `readable_`; the
// writer's release Broadcasts so every reader resumes. Writers queue on
// `writable_`, released by Signal (one at a time — the paper's rule that
// Signal requires all waiters to share one predicate holds per condition
// variable).

#ifndef TAOS_SRC_WORKLOAD_RWLOCK_H_
#define TAOS_SRC_WORKLOAD_RWLOCK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/stopwatch.h"
#include "src/threads/rwmutex.h"
#include "src/threads/thread.h"
#include "src/workload/work.h"

namespace taos::workload {

// The real primitive (taos::ReaderWriterMutex, src/threads/rwmutex.h)
// behind the same interface as the condvar construction below, so
// RunReadersWriters can A/B the paper's Broadcast workload against the
// first-class two-layer rwlock. This is the default lock for the workload;
// the condvar RWLock remains as the paper's motivating Broadcast example.
class NativeRWLock {
 public:
  void AcquireRead() { rw_.AcquireShared(); }
  void ReleaseRead() { rw_.ReleaseShared(); }
  void AcquireWrite() { rw_.Acquire(); }
  void ReleaseWrite() { rw_.Release(); }

  int ReadersActiveForDebug() const {
    return static_cast<int>(rw_.ReadersForDebug());
  }

 private:
  ReaderWriterMutex rw_;
};

template <typename MutexT, typename ConditionT>
class RWLock {
 public:
  void AcquireRead() {
    mutex_.Acquire();
    while (writer_active_ || writers_waiting_ > 0) {  // writer preference
      readable_.Wait(mutex_);
    }
    ++readers_active_;
    mutex_.Release();
  }

  void ReleaseRead() {
    mutex_.Acquire();
    TAOS_CHECK(readers_active_ > 0);
    const bool last = (--readers_active_ == 0);
    mutex_.Release();
    if (last) {
      writable_.Signal();
    }
  }

  void AcquireWrite() {
    mutex_.Acquire();
    ++writers_waiting_;
    while (writer_active_ || readers_active_ > 0) {
      writable_.Wait(mutex_);
    }
    --writers_waiting_;
    writer_active_ = true;
    mutex_.Release();
  }

  void ReleaseWrite() {
    mutex_.Acquire();
    TAOS_CHECK(writer_active_);
    writer_active_ = false;
    const bool writers_pending = writers_waiting_ > 0;
    mutex_.Release();
    if (writers_pending) {
      writable_.Signal();
    } else {
      readable_.Broadcast();  // all readers may resume
    }
  }

  int ReadersActiveForDebug() const { return readers_active_; }

 private:
  MutexT mutex_;
  ConditionT readable_;
  ConditionT writable_;
  int readers_active_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

struct RWResult {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t nanos = 0;
  bool invariant_ok = true;  // never a writer with readers / two writers

  double OpsPerSecond() const {
    return nanos == 0 ? 0.0
                      : static_cast<double>(reads + writes) * 1e9 /
                            static_cast<double>(nanos);
  }
};

template <typename LockT>
RWResult RunReadersWriters(LockT& lock, int readers, int writers,
                           std::uint64_t iters, std::uint64_t read_work,
                           std::uint64_t write_work) {
  std::atomic<int> readers_in{0};
  std::atomic<int> writers_in{0};
  std::atomic<bool> ok{true};
  std::atomic<std::uint64_t> sink{0};

  Stopwatch watch;
  std::vector<Thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.push_back(Thread::Fork([&, iters, read_work] {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < iters; ++i) {
        lock.AcquireRead();
        readers_in.fetch_add(1, std::memory_order_relaxed);
        if (writers_in.load(std::memory_order_relaxed) != 0) {
          ok.store(false, std::memory_order_relaxed);
        }
        local ^= DoWork(read_work);
        readers_in.fetch_sub(1, std::memory_order_relaxed);
        lock.ReleaseRead();
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    }));
  }
  for (int w = 0; w < writers; ++w) {
    threads.push_back(Thread::Fork([&, iters, write_work] {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < iters; ++i) {
        lock.AcquireWrite();
        if (writers_in.fetch_add(1, std::memory_order_relaxed) != 0 ||
            readers_in.load(std::memory_order_relaxed) != 0) {
          ok.store(false, std::memory_order_relaxed);
        }
        local ^= DoWork(write_work);
        writers_in.fetch_sub(1, std::memory_order_relaxed);
        lock.ReleaseWrite();
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }

  RWResult result;
  result.reads = static_cast<std::uint64_t>(readers) * iters;
  result.writes = static_cast<std::uint64_t>(writers) * iters;
  result.nanos = watch.ElapsedNanos();
  result.invariant_ok = ok.load(std::memory_order_relaxed);
  return result;
}

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_RWLOCK_H_
