// Producer-consumer driver (experiment E4): P producers push N items each
// through a bounded buffer to C consumers. Works over any buffer exposing
// Put/Get (BoundedBuffer instantiations and HoareBoundedBuffer).

#ifndef TAOS_SRC_WORKLOAD_PRODCONS_H_
#define TAOS_SRC_WORKLOAD_PRODCONS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/stopwatch.h"
#include "src/threads/thread.h"

namespace taos::workload {

struct ProdConsResult {
  std::uint64_t items = 0;
  std::uint64_t nanos = 0;
  std::uint64_t checksum = 0;  // sum of consumed items (validates delivery)

  double ItemsPerSecond() const {
    return nanos == 0 ? 0.0
                      : static_cast<double>(items) * 1e9 /
                            static_cast<double>(nanos);
  }
};

template <typename BufferT>
ProdConsResult RunProducerConsumer(BufferT& buffer, int producers,
                                   int consumers, std::uint64_t items_each) {
  TAOS_CHECK(producers > 0 && consumers > 0);
  const std::uint64_t total = static_cast<std::uint64_t>(producers) *
                              items_each;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> checksum{0};

  Stopwatch watch;
  std::vector<Thread> threads;
  threads.reserve(static_cast<std::size_t>(producers + consumers));
  for (int p = 0; p < producers; ++p) {
    threads.push_back(Thread::Fork([&buffer, items_each, p] {
      for (std::uint64_t i = 0; i < items_each; ++i) {
        buffer.Put(static_cast<std::uint64_t>(p) * items_each + i + 1);
      }
    }));
  }
  for (int c = 0; c < consumers; ++c) {
    // Consumers share the total; each takes items until the global count is
    // exhausted. The count is claimed before the Get so exactly `total`
    // Gets happen overall.
    threads.push_back(Thread::Fork([&buffer, &consumed, &checksum, total] {
      for (;;) {
        const std::uint64_t claimed =
            consumed.fetch_add(1, std::memory_order_relaxed);
        if (claimed >= total) {
          return;
        }
        checksum.fetch_add(buffer.Get(), std::memory_order_relaxed);
      }
    }));
  }
  for (Thread& t : threads) {
    t.Join();
  }

  ProdConsResult result;
  result.items = total;
  result.nanos = watch.ElapsedNanos();
  result.checksum = checksum.load(std::memory_order_relaxed);
  return result;
}

// The checksum every run must produce: sum of 1..(producers*items_each).
inline std::uint64_t ExpectedChecksum(int producers,
                                      std::uint64_t items_each) {
  const std::uint64_t n = static_cast<std::uint64_t>(producers) * items_each;
  return n * (n + 1) / 2;
}

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_PRODCONS_H_
