// Monitor<T>: the monitor discipline the paper says mutexes exist to build
// ("A mutex is normally used to achieve an effect similar to monitors"),
// packaged: the protected state, its mutex and its condition variable in
// one object, with the signalling automated.
//
// Every mutating entry (`With`) broadcasts on exit, so `Await(pred)` never
// misses a change — the *automatic-signal monitor* variant of Hoare's
// proposal. That trades signal precision for impossibility of lost-wakeup
// bugs: exactly the "weaker but simpler to use correctly" end of the design
// space whose other end (manual Signal with the Mesa re-check rule) the
// paper specifies. The cost of the extra broadcasts is visible in
// bench_signal's no-waiter fast path: ~8 ns per entry when nobody waits.
//
//   Monitor<std::deque<int>> q;
//   q.With([](auto& access) { access->push_back(1); });
//   int v = q.With([](auto& access) {
//     access.Await([](const std::deque<int>& d) { return !d.empty(); });
//     int x = access->front();
//     access->pop_front();
//     return x;
//   });

#ifndef TAOS_SRC_WORKLOAD_MONITOR_H_
#define TAOS_SRC_WORKLOAD_MONITOR_H_

#include <type_traits>
#include <utility>

#include "src/threads/condition.h"
#include "src/threads/lock.h"
#include "src/threads/mutex.h"

namespace taos::workload {

template <typename T>
class Monitor {
 public:
  class Access {
   public:
    T& operator*() { return monitor_->data_; }
    T* operator->() { return &monitor_->data_; }

    // Blocks (releasing the monitor) until pred(state) holds. Mesa rules
    // applied internally: the predicate is re-evaluated on every wakeup.
    template <typename Pred>
    void Await(Pred&& pred) {
      while (!pred(static_cast<const T&>(monitor_->data_))) {
        monitor_->changed_.Wait(monitor_->mutex_);
      }
    }

   private:
    friend class Monitor;
    explicit Access(Monitor* monitor) : monitor_(monitor) {}
    Monitor* monitor_;
  };

  template <typename... Args>
  explicit Monitor(Args&&... args) : data_(std::forward<Args>(args)...) {}

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // Runs fn inside the monitor and broadcasts on the way out — also when fn
  // exits via an exception (the TRY...FINALLY discipline of the LOCK
  // clause, plus the automatic signal). Returns fn's result (by value).
  template <typename Fn>
  auto With(Fn&& fn) {
    // Declared before the Lock so it runs after the release.
    Notifier notifier{changed_};
    Lock lock(mutex_);
    Access access(this);
    return fn(access);
  }

  // Read-only entry: no broadcast on exit.
  template <typename Fn>
  auto Read(Fn&& fn) {
    Lock lock(mutex_);
    return fn(static_cast<const T&>(data_));
  }

  // Convenience: block until pred holds, then run fn (one atomic entry).
  template <typename Pred, typename Fn>
  auto When(Pred&& pred, Fn&& fn) {
    return With([&](Access& access) {
      access.Await(pred);
      return fn(access);
    });
  }

 private:
  struct Notifier {
    Condition& changed;
    ~Notifier() { changed.Broadcast(); }
  };

  Mutex mutex_;
  Condition changed_;
  T data_;
};

}  // namespace taos::workload

#endif  // TAOS_SRC_WORKLOAD_MONITOR_H_
