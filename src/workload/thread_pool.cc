#include "src/workload/thread_pool.h"

#include "src/base/check.h"

namespace taos::workload {

ThreadPool::ThreadPool(int workers, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  TAOS_CHECK(workers > 0);
  TAOS_CHECK(capacity_ > 0);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(Thread::Fork([this] { WorkerBody(); }));
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerBody() {
  try {
    for (;;) {
      Task task;
      {
        Lock lock(mutex_);
        while (queue_.empty() && !shutdown_) {
          // AlertWait, not Wait: Cancel interrupts us here.
          AlertWait(mutex_, not_empty_);
        }
        if (queue_.empty()) {
          return;  // shutdown with nothing left to do
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      not_full_.Signal();
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const Alerted&) {
    // Cancelled. AlertWait reacquired the mutex before raising; the Lock
    // guard released it during unwinding. Nothing else to clean up.
  }
}

bool ThreadPool::Submit(Task task) {
  {
    Lock lock(mutex_);
    while (queue_.size() >= capacity_ && !shutdown_ && !cancel_) {
      not_full_.Wait(mutex_);
    }
    if (shutdown_ || cancel_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.Signal();
  return true;
}

void ThreadPool::Shutdown() {
  {
    Lock lock(mutex_);
    shutdown_ = true;
  }
  // Every worker's predicate changed: all must re-evaluate.
  not_empty_.Broadcast();
  not_full_.Broadcast();
  JoinAll();
}

void ThreadPool::Cancel() {
  std::size_t dropped = 0;
  {
    Lock lock(mutex_);
    shutdown_ = true;
    cancel_ = true;
    dropped = queue_.size();
    queue_.clear();
  }
  dropped_.fetch_add(dropped, std::memory_order_relaxed);
  not_full_.Broadcast();
  // The polite interrupt: each worker raises Alerted at its next (or
  // current) AlertWait. A worker mid-task finishes that task first.
  for (Thread& w : workers_) {
    Alert(w.Handle());
  }
  JoinAll();
  // Absorb the alert for workers that exited via the shutdown path before
  // their alert arrived: clear nothing here — pending alerts die with the
  // worker records, which are never reused for other threads.
}

void ThreadPool::JoinAll() {
  if (joined_) {
    return;
  }
  joined_ = true;
  for (Thread& w : workers_) {
    w.Join();
  }
}

Barrier::Barrier(int parties) : parties_(parties) {
  TAOS_CHECK(parties_ > 0);
}

std::uint64_t Barrier::ArriveAndWait() {
  Lock lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    released_.Broadcast();  // the whole generation resumes
    return my_generation;
  }
  while (generation_ == my_generation) {
    released_.Wait(mutex_);
  }
  return my_generation;
}

}  // namespace taos::workload
