#include "src/threads/rwmutex.h"

#include <vector>

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"
#include "src/threads/timer.h"

namespace taos {

ReaderWriterMutex::ReaderWriterMutex() : id_(Nub::Get().NextObjId()) {}

ReaderWriterMutex::~ReaderWriterMutex() {
  TAOS_CHECK(readers_queue_.Empty());
  TAOS_CHECK(writers_queue_.Empty());
  TAOS_CHECK(wreaders_.DrainedForDebug());
  TAOS_CHECK(wwriters_.DrainedForDebug());
  TAOS_CHECK(word_.load(std::memory_order_relaxed) == 0);
}

bool ReaderWriterMutex::SharedCasLoop() {
  std::uint32_t w = word_.load(std::memory_order_relaxed);
  while ((w & kWriterBit) == 0) {
    if (word_.compare_exchange_weak(w, w + 1, std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
      // The reader-admission commit point: a writer's enqueue-then-test may
      // be racing this CAS.
      TAOS_CHAOS(kRwlockReaderCas);
      return true;
    }
  }
  return false;
}

// --- exclusive (writer) mode ---

void ReaderWriterMutex::Acquire() {
  obs::WithEvent(obs::Op::kAcquire, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubAcquire);
      TracedAcquire(self);
      return;
    }
    // User-code fast path: one CAS of 0 -> writer-bit when uncontended.
    std::uint32_t expected = 0;
    if (word_.compare_exchange_strong(expected, kWriterBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      fast_acquires_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastMutexAcquire);
      NoteAcquired(self);
      return;
    }
    NubAcquire(self);
    NoteAcquired(self);
  });
}

bool ReaderWriterMutex::TryAcquire() {
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  if (nub.tracing()) {
    NubGuard g(nub_lock_);
    if (word_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    word_.store(kWriterBit, std::memory_order_relaxed);
    NoteAcquired(self);
    nub.EmitTraced(spec::MakeRwAcquire(self->id, id_));
    return true;
  }
  std::uint32_t expected = 0;
  if (word_.compare_exchange_strong(expected, kWriterBit,
                                    std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
    fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(obs::Counter::kFastMutexAcquire);
    NoteAcquired(self);
    return true;
  }
  return false;
}

WaitResult ReaderWriterMutex::AcquireFor(std::chrono::nanoseconds timeout) {
  WaitResult result = WaitResult::kSatisfied;
  obs::WithEvent(obs::Op::kAcquire, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    std::uint32_t expected = 0;
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubAcquire);
      const std::uint64_t deadline =
          timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
      result = TracedAcquireFor(self, deadline) ? WaitResult::kSatisfied
                                                : WaitResult::kTimeout;
    } else if (word_.compare_exchange_strong(expected, kWriterBit,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
      fast_acquires_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastMutexAcquire);
      NoteAcquired(self);
    } else if (timeout.count() <= 0) {
      result = WaitResult::kTimeout;
    } else if (NubAcquireFor(self, DeadlineAfter(timeout))) {
      NoteAcquired(self);
    } else {
      result = WaitResult::kTimeout;
    }
  });
  obs::Inc(result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return result;
}

void ReaderWriterMutex::Release() {
  obs::WithEvent(obs::Op::kRelease, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    // REQUIRES rw.writer = SELF (library extension; the spec trusts the
    // caller, the implementation does not).
    TAOS_CHECK(holder_.load(std::memory_order_relaxed) == self->id);
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubRelease);
      TracedRelease(self);
      return;
    }
    NoteReleased();
    // User code: clear the word; call the Nub only if someone is queued.
    // The seq_cst store/load pairs with the enqueue-then-test in the
    // acquire slow paths (both reader and writer sides), so no waiter is
    // left parked with the lock free.
    word_.store(0, std::memory_order_seq_cst);
    if (reader_q_len_.load(std::memory_order_seq_cst) > 0 ||
        writer_q_len_.load(std::memory_order_seq_cst) > 0) {
      NubReleaseExclusive();
    } else {
      obs::Inc(obs::Counter::kFastMutexRelease);
    }
  });
}

// --- shared (reader) mode ---

void ReaderWriterMutex::AcquireShared() {
  obs::WithEvent(obs::Op::kAcquire, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubAcquire);
      TracedAcquireShared(self);
      return;
    }
    if (SharedCasLoop()) {
      fast_acquires_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastMutexAcquire);
      return;
    }
    NubAcquireShared(self);
  });
}

bool ReaderWriterMutex::TryAcquireShared() {
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  if (nub.tracing()) {
    NubGuard g(nub_lock_);
    const std::uint32_t w = word_.load(std::memory_order_relaxed);
    if ((w & kWriterBit) != 0) {
      return false;
    }
    word_.store(w + 1, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeRwAcquireShared(self->id, id_));
    return true;
  }
  if (SharedCasLoop()) {
    fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(obs::Counter::kFastMutexAcquire);
    return true;
  }
  return false;
}

WaitResult ReaderWriterMutex::AcquireSharedFor(
    std::chrono::nanoseconds timeout) {
  WaitResult result = WaitResult::kSatisfied;
  obs::WithEvent(obs::Op::kAcquire, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubAcquire);
      const std::uint64_t deadline =
          timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
      result = TracedAcquireSharedFor(self, deadline)
                   ? WaitResult::kSatisfied
                   : WaitResult::kTimeout;
    } else if (SharedCasLoop()) {
      fast_acquires_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastMutexAcquire);
    } else if (timeout.count() <= 0) {
      result = WaitResult::kTimeout;
    } else if (NubAcquireSharedFor(self, DeadlineAfter(timeout))) {
      // Admitted by the retried CAS inside the slow path.
    } else {
      result = WaitResult::kTimeout;
    }
  });
  obs::Inc(result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return result;
}

void ReaderWriterMutex::ReleaseShared() {
  obs::WithEvent(obs::Op::kRelease, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubRelease);
      TracedReleaseShared(self);
      return;
    }
    // REQUIRES SELF IN rw.readers: the word cannot show a writer and must
    // count at least this reader (set membership proper is the trace
    // checker's job; the count catches both misuse death-test shapes).
    const std::uint32_t prev = word_.fetch_sub(1, std::memory_order_seq_cst);
    TAOS_CHECK((prev & kWriterBit) == 0 && prev != 0);
    if (prev == 1) {
      // Last reader out: wake one queued writer. The seq_cst fetch_sub
      // above against the writer's enqueue-then-test is the same Dekker
      // pairing as Release's clear-then-scan.
      TAOS_CHAOS(kRwlockLastReaderWake);
      if (writer_q_len_.load(std::memory_order_seq_cst) > 0) {
        NubWakeOneWriter();
      } else {
        obs::Inc(obs::Counter::kFastMutexRelease);
      }
    } else {
      obs::Inc(obs::Counter::kFastMutexRelease);
    }
  });
}

// --- Nub (slow-path) subroutines, untimed ---

void ReaderWriterMutex::NubAcquire(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubAcquire);
  if (nub.waitq_mode()) {
    WaitqAcquire(self);
    return;
  }
  for (;;) {
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      // Enqueue on the writer queue, then re-test the whole word: a writer
      // is excluded by the writer bit or any nonzero reader count.
      writers_queue_.PushBack(self);
      writer_q_len_.fetch_add(1, std::memory_order_seq_cst);
      if (word_.load(std::memory_order_seq_cst) != 0) {
        MarkBlocked(self, ThreadRecord::BlockKind::kRwExclusive, this, id_,
                    &nub_lock_, /*alertable=*/false);
        parked = true;
      } else {
        writers_queue_.Remove(self);
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      ParkBlocked(self);
    }
    // Retry the entire acquisition from the CAS; barging is possible
    // exactly as in Mutex.
    std::uint32_t expected = 0;
    if (word_.compare_exchange_strong(expected, kWriterBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

void ReaderWriterMutex::WaitqAcquire(ThreadRecord* self) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wwriters_.Enqueue();
    writer_q_len_.fetch_add(1, std::memory_order_seq_cst);
    if (word_.load(std::memory_order_seq_cst) != 0) {
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kRwExclusive,
                                      this, id_, &nub_lock_, /*alertable=*/false);
      }
      if (parked) {
        ParkBlocked(self);
      }
      FinishWaitCell(self, cell);
    } else {
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    std::uint32_t expected = 0;
    if (word_.compare_exchange_strong(expected, kWriterBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

void ReaderWriterMutex::NubAcquireShared(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubAcquire);
  if (nub.waitq_mode()) {
    WaitqAcquireShared(self);
    return;
  }
  for (;;) {
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      // Enqueue on the reader queue, then re-test the writer bit only —
      // other readers never exclude a reader.
      readers_queue_.PushBack(self);
      reader_q_len_.fetch_add(1, std::memory_order_seq_cst);
      if ((word_.load(std::memory_order_seq_cst) & kWriterBit) != 0) {
        MarkBlocked(self, ThreadRecord::BlockKind::kRwShared, this, id_,
                    &nub_lock_, /*alertable=*/false);
        parked = true;
      } else {
        readers_queue_.Remove(self);
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      ParkBlocked(self);
    }
    if (SharedCasLoop()) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

void ReaderWriterMutex::WaitqAcquireShared(ThreadRecord* self) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wreaders_.Enqueue();
    reader_q_len_.fetch_add(1, std::memory_order_seq_cst);
    if ((word_.load(std::memory_order_seq_cst) & kWriterBit) != 0) {
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kRwShared,
                                      this, id_, &nub_lock_, /*alertable=*/false);
      }
      if (parked) {
        ParkBlocked(self);
      }
      FinishWaitCell(self, cell);
    } else {
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    if (SharedCasLoop()) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

// --- Nub (slow-path) subroutines, timed ---

bool ReaderWriterMutex::NubAcquireFor(ThreadRecord* self,
                                      std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubAcquire);
  if (nub.waitq_mode()) {
    return WaitqAcquireFor(self, deadline_ns);
  }
  for (;;) {
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      writers_queue_.PushBack(self);
      writer_q_len_.fetch_add(1, std::memory_order_seq_cst);
      if (word_.load(std::memory_order_seq_cst) != 0) {
        gen = ++self->next_timer_gen;
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kRwExclusive, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
        parked = true;
      } else {
        writers_queue_.Remove(self);
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    // CAS first, deadline second: a wake delivered because the lock was
    // released must never be thrown away on a co-incident expiry.
    std::uint32_t expected = 0;
    if (word_.compare_exchange_strong(expected, kWriterBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

bool ReaderWriterMutex::WaitqAcquireFor(ThreadRecord* self,
                                        std::uint64_t deadline_ns) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wwriters_.Enqueue();
    writer_q_len_.fetch_add(1, std::memory_order_seq_cst);
    if (word_.load(std::memory_order_seq_cst) != 0) {
      std::uint64_t gen = 0;
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kRwExclusive,
                                      this, id_, &nub_lock_, /*alertable=*/false);
        if (parked) {
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
        }
      }
      if (parked) {
        Timer::Get().Arm(self, gen, deadline_ns);
        ParkBlocked(self);
        Timer::Get().Cancel(self, gen);
      }
      FinishWaitCell(self, cell);
    } else {
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    std::uint32_t expected = 0;
    if (word_.compare_exchange_strong(expected, kWriterBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

bool ReaderWriterMutex::NubAcquireSharedFor(ThreadRecord* self,
                                            std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubAcquire);
  if (nub.waitq_mode()) {
    return WaitqAcquireSharedFor(self, deadline_ns);
  }
  for (;;) {
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      readers_queue_.PushBack(self);
      reader_q_len_.fetch_add(1, std::memory_order_seq_cst);
      if ((word_.load(std::memory_order_seq_cst) & kWriterBit) != 0) {
        gen = ++self->next_timer_gen;
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kRwShared, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
        parked = true;
      } else {
        readers_queue_.Remove(self);
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    if (SharedCasLoop()) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

bool ReaderWriterMutex::WaitqAcquireSharedFor(ThreadRecord* self,
                                              std::uint64_t deadline_ns) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wreaders_.Enqueue();
    reader_q_len_.fetch_add(1, std::memory_order_seq_cst);
    if ((word_.load(std::memory_order_seq_cst) & kWriterBit) != 0) {
      std::uint64_t gen = 0;
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kRwShared,
                                      this, id_, &nub_lock_, /*alertable=*/false);
        if (parked) {
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
        }
      }
      if (parked) {
        Timer::Get().Arm(self, gen, deadline_ns);
        ParkBlocked(self);
        Timer::Get().Cancel(self, gen);
      }
      FinishWaitCell(self, cell);
    } else {
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    if (SharedCasLoop()) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

// --- Nub (slow-path) subroutines, release side ---

void ReaderWriterMutex::NubReleaseExclusive() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubRelease);
  // An exclusive release wakes EVERY queued reader plus one queued writer:
  // the readers can all be admitted together, and the writer contends with
  // them (barging decides the rest).
  std::vector<waitq::Parker*> unparks;
  {
    NubGuard g(nub_lock_);
    if (nub.waitq_mode()) {
      for (;;) {
        const waitq::WaitQueue::Resumed r = wreaders_.ResumeOne();
        if (!r.resumed) {
          break;
        }
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
        if (r.parker != nullptr) {
          unparks.push_back(r.parker);
        }
      }
      const waitq::WaitQueue::Resumed r = wwriters_.ResumeOne();
      if (r.resumed) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
        if (r.parker != nullptr) {
          unparks.push_back(r.parker);
        }
      }
    } else {
      for (ThreadRecord* wake = readers_queue_.PopFront(); wake != nullptr;
           wake = readers_queue_.PopFront()) {
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        unparks.push_back(&wake->park);
      }
      ThreadRecord* wake = writers_queue_.PopFront();
      if (wake != nullptr) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        unparks.push_back(&wake->park);
      }
    }
  }
  for (waitq::Parker* p : unparks) {
    obs::Inc(obs::Counter::kHandoffs);
    p->Unpark();
  }
}

void ReaderWriterMutex::NubWakeOneWriter() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubRelease);
  waitq::Parker* unpark = nullptr;
  {
    NubGuard g(nub_lock_);
    if (nub.waitq_mode()) {
      const waitq::WaitQueue::Resumed r = wwriters_.ResumeOne();
      if (r.resumed) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
        unpark = r.parker;
      }
    } else {
      ThreadRecord* wake = writers_queue_.PopFront();
      if (wake != nullptr) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        unpark = &wake->park;
      }
    }
  }
  if (unpark != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    unpark->Unpark();
  }
}

// --- traced (spec-emitting) paths ---

void ReaderWriterMutex::TracedAcquire(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      // WHEN rw.writer = NIL AND rw.readers = {}: the whole word is zero.
      if (word_.load(std::memory_order_relaxed) == 0) {
        word_.store(kWriterBit, std::memory_order_relaxed);
        NoteAcquired(self);
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeRwAcquire(self->id, id_));
        return;
      }
      if (nub.waitq_mode()) {
        cell = wwriters_.Enqueue();
        writer_q_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(
            self, cell, ThreadRecord::BlockKind::kRwExclusive, this, id_,
            &nub_lock_, /*alertable=*/false));
      } else {
        writers_queue_.PushBack(self);
        writer_q_len_.fetch_add(1, std::memory_order_relaxed);
        MarkBlocked(self, ThreadRecord::BlockKind::kRwExclusive, this, id_,
                    &nub_lock_, /*alertable=*/false);
      }
      parked = true;
    }
    if (parked) {
      ParkBlocked(self);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
    }
  }
}

void ReaderWriterMutex::TracedAcquireShared(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      // WHEN rw.writer = NIL. (REQUIRES NOT (SELF IN rw.readers) is the
      // trace checker's to verify — the word holds no membership.)
      const std::uint32_t w = word_.load(std::memory_order_relaxed);
      if ((w & kWriterBit) == 0) {
        word_.store(w + 1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeRwAcquireShared(self->id, id_));
        return;
      }
      if (nub.waitq_mode()) {
        cell = wreaders_.Enqueue();
        reader_q_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        TAOS_CHECK(InstallBlockedLocked(
            self, cell, ThreadRecord::BlockKind::kRwShared, this, id_, &nub_lock_,
            /*alertable=*/false));
      } else {
        readers_queue_.PushBack(self);
        reader_q_len_.fetch_add(1, std::memory_order_relaxed);
        MarkBlocked(self, ThreadRecord::BlockKind::kRwShared, this, id_,
                    &nub_lock_, /*alertable=*/false);
      }
      parked = true;
    }
    if (parked) {
      ParkBlocked(self);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
    }
  }
}

bool ReaderWriterMutex::TracedAcquireFor(ThreadRecord* self,
                                         std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      // The acquire test comes before the deadline test, so a grant always
      // beats a co-incident expiry.
      if (word_.load(std::memory_order_relaxed) == 0) {
        word_.store(kWriterBit, std::memory_order_relaxed);
        NoteAcquired(self);
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeRwAcquire(self->id, id_));
        return true;
      }
      if (obs::NowNanos() >= deadline_ns) {
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeRwAcquireTimeout(self->id, id_));
        return false;
      }
      gen = ++self->next_timer_gen;
      if (nub.waitq_mode()) {
        cell = wwriters_.Enqueue();
        writer_q_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        TAOS_CHECK(InstallBlockedLocked(
            self, cell, ThreadRecord::BlockKind::kRwExclusive, this, id_,
            &nub_lock_, /*alertable=*/false));
        PublishTimedLocked(self, gen);
      } else {
        writers_queue_.PushBack(self);
        writer_q_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kRwExclusive, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
      }
      parked = true;
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
      ConsumeTimeoutWoken(self);  // loop-top deadline check decides
    }
  }
}

bool ReaderWriterMutex::TracedAcquireSharedFor(ThreadRecord* self,
                                               std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      const std::uint32_t w = word_.load(std::memory_order_relaxed);
      if ((w & kWriterBit) == 0) {
        word_.store(w + 1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeRwAcquireShared(self->id, id_));
        return true;
      }
      if (obs::NowNanos() >= deadline_ns) {
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeRwAcquireSharedTimeout(self->id, id_));
        return false;
      }
      gen = ++self->next_timer_gen;
      if (nub.waitq_mode()) {
        cell = wreaders_.Enqueue();
        reader_q_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        TAOS_CHECK(InstallBlockedLocked(
            self, cell, ThreadRecord::BlockKind::kRwShared, this, id_, &nub_lock_,
            /*alertable=*/false));
        PublishTimedLocked(self, gen);
      } else {
        readers_queue_.PushBack(self);
        reader_q_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kRwShared, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
      }
      parked = true;
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
      ConsumeTimeoutWoken(self);
    }
  }
}

void ReaderWriterMutex::TracedRelease(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  std::vector<ThreadRecord*> wakes;
  {
    NubGuard g(nub_lock_);
    TAOS_CHECK(holder_.load(std::memory_order_relaxed) == self->id);
    NoteReleased();
    word_.store(0, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeRwRelease(self->id, id_));
    if (nub.waitq_mode()) {
      for (;;) {
        const waitq::WaitQueue::Resumed r = wreaders_.ResumeOne();
        if (!r.resumed) {
          break;
        }
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
        // Immediate grants are impossible in traced mode (install happens
        // under this ObjLock), so the tag is always a published record.
        ThreadRecord* wake = static_cast<ThreadRecord*>(r.tag);
        TAOS_CHECK(wake != nullptr);
        wakes.push_back(wake);
      }
      const waitq::WaitQueue::Resumed r = wwriters_.ResumeOne();
      if (r.resumed) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
        ThreadRecord* wake = static_cast<ThreadRecord*>(r.tag);
        TAOS_CHECK(wake != nullptr);
        wakes.push_back(wake);
      }
    } else {
      for (ThreadRecord* wake = readers_queue_.PopFront(); wake != nullptr;
           wake = readers_queue_.PopFront()) {
        reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        wakes.push_back(wake);
      }
      ThreadRecord* wake = writers_queue_.PopFront();
      if (wake != nullptr) {
        writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        wakes.push_back(wake);
      }
    }
  }
  for (ThreadRecord* wake : wakes) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.Unpark();
  }
}

void ReaderWriterMutex::TracedReleaseShared(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    const std::uint32_t w = word_.load(std::memory_order_relaxed);
    // REQUIRES SELF IN rw.readers, as far as the word can tell; the trace
    // checker verifies exact membership.
    TAOS_CHECK((w & kWriterBit) == 0 && w != 0);
    word_.store(w - 1, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeRwReleaseShared(self->id, id_));
    if (w == 1) {
      if (nub.waitq_mode()) {
        const waitq::WaitQueue::Resumed r = wwriters_.ResumeOne();
        if (r.resumed) {
          writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
          wake = static_cast<ThreadRecord*>(r.tag);
          TAOS_CHECK(wake != nullptr);
        }
      } else {
        wake = writers_queue_.PopFront();
        if (wake != nullptr) {
          writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
          MarkUnblocked(wake);
        }
      }
    }
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.Unpark();
  }
}

}  // namespace taos
